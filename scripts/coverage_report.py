#!/usr/bin/env python3
"""Per-directory line-coverage report from a MEMFSS_COVERAGE build tree.

Walks the build tree for .gcda files (written when the instrumented tests
run), asks gcov for JSON intermediate output, and aggregates executed /
executable lines per source directory under src/. Exits non-zero when a
directory named with --require falls below its threshold, which is how
scripts/check.sh --coverage enforces the src/obs/ floor.

Usage:
  scripts/coverage_report.py BUILD_DIR [--require DIR=PCT ...]

Example:
  scripts/coverage_report.py build-cov --require src/obs=90
"""
import argparse
import json
import os
import subprocess
import sys

def repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

def find_gcda(build_dir: str):
    for dirpath, _dirnames, filenames in os.walk(build_dir):
        for name in filenames:
            if name.endswith(".gcda"):
                yield os.path.join(dirpath, name)

def gcov_json(gcda: str):
    """Run gcov on one .gcda; yield the per-file dicts of its JSON report."""
    proc = subprocess.run(
        ["gcov", "--json-format", "--stdout", os.path.abspath(gcda)],
        capture_output=True, text=True, cwd=os.path.dirname(gcda))
    if proc.returncode != 0:
        return
    # One JSON document per translation unit, newline-separated.
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            continue
        yield from doc.get("files", [])

def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("build_dir")
    ap.add_argument("--require", action="append", default=[],
                    metavar="DIR=PCT",
                    help="fail if repo-relative DIR is below PCT%% lines")
    args = ap.parse_args()

    root = repo_root()
    # line -> executed?, keyed by (relpath, lineno) so the same header or
    # source seen from several translation units is counted once, and a
    # line counts as covered if *any* unit executed it.
    lines: dict[tuple, bool] = {}
    gcda_seen = 0
    for gcda in sorted(find_gcda(args.build_dir)):
        gcda_seen += 1
        for f in gcov_json(gcda):
            path = os.path.realpath(
                os.path.join(args.build_dir, f.get("file", "")))
            if not path.startswith(root + os.sep):
                continue  # system and third-party headers
            rel = os.path.relpath(path, root)
            for ln in f.get("lines", []):
                key = (rel, ln.get("line_number"))
                lines[key] = lines.get(key, False) or ln.get("count", 0) > 0

    if gcda_seen == 0:
        print(f"error: no .gcda files under {args.build_dir}; "
              "configure with -DMEMFSS_COVERAGE=ON and run the tests first",
              file=sys.stderr)
        return 2

    # Aggregate per source directory (and total over src/).
    per_dir: dict[str, list] = {}
    for (rel, _line), hit in lines.items():
        d = os.path.dirname(rel)
        stats = per_dir.setdefault(d, [0, 0])
        stats[1] += 1
        if hit:
            stats[0] += 1

    def pct(stats):
        return 100.0 * stats[0] / stats[1] if stats[1] else 0.0

    print(f"{'directory':32} {'lines':>8} {'covered':>8} {'%':>7}")
    total = [0, 0]
    for d in sorted(per_dir):
        stats = per_dir[d]
        print(f"{d:32} {stats[1]:8} {stats[0]:8} {pct(stats):6.1f}%")
        if d.startswith("src" + os.sep) or d == "src":
            total[0] += stats[0]
            total[1] += stats[1]
    print(f"{'TOTAL (src/)':32} {total[1]:8} {total[0]:8} {pct(total):6.1f}%")

    # Per-file aggregation so --require can also name a source stem
    # (e.g. src/kvstore/tier covers tier.cpp + tier.hpp).
    per_file: dict[str, list] = {}
    for (rel, _line), hit in lines.items():
        stats = per_file.setdefault(rel, [0, 0])
        stats[1] += 1
        if hit:
            stats[0] += 1

    failed = False
    for req in args.require:
        want_dir, _, want_pct = req.partition("=")
        want_dir = want_dir.rstrip("/")
        threshold = float(want_pct)
        # Sum the directory and everything nested under it; if the name
        # is not a directory, fall back to files sharing the stem.
        agg = [0, 0]
        for d, stats in per_dir.items():
            if d == want_dir or d.startswith(want_dir + os.sep):
                agg[0] += stats[0]
                agg[1] += stats[1]
        if agg[1] == 0:
            for rel, stats in per_file.items():
                if os.path.splitext(rel)[0] == want_dir:
                    agg[0] += stats[0]
                    agg[1] += stats[1]
        if agg[1] == 0:
            print(f"FAIL {want_dir}: no coverage data", file=sys.stderr)
            failed = True
        elif pct(agg) < threshold:
            print(f"FAIL {want_dir}: {pct(agg):.1f}% < {threshold:.1f}%",
                  file=sys.stderr)
            failed = True
        else:
            print(f"OK   {want_dir}: {pct(agg):.1f}% >= {threshold:.1f}%")
    return 1 if failed else 0

if __name__ == "__main__":
    sys.exit(main())
