#!/usr/bin/env bash
# Regenerate every paper table/figure plus the ablations and
# micro-benchmarks. Run from the repository root.
#
#   scripts/run_all_experiments.sh [--fast]
#
# --fast sets MEMFSS_FAST=1 (small clusters / short workloads) for a
# quick smoke pass. Figure-level slowdown cells are cached in
# bench/memfss_slowdown_cache.csv (override with MEMFSS_SLOWDOWN_CACHE)
# so Fig. 6 reuses the Fig. 3-5 sweeps; delete that file to force fresh
# runs.
set -euo pipefail

if [[ "${1:-}" == "--fast" ]]; then
  export MEMFSS_FAST=1
  echo "== fast mode (MEMFSS_FAST=1) =="
fi

cmake -B build -G Ninja
cmake --build build

echo "== tests =="
ctest --test-dir build --timeout 300 | tee test_output.txt

echo "== benches =="
: > bench_output.txt
for b in build/bench/*; do
  [[ -x "$b" && -f "$b" ]] || continue
  echo "=== $(basename "$b") ===" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
  echo | tee -a bench_output.txt
done

echo "done: see test_output.txt and bench_output.txt"
