#!/usr/bin/env bash
# Re-bless the golden trace in tests/golden/ after an *intended* change
# to placement, retry ordering, repair scheduling, or the tracer itself.
# Run from the repository root; then review the diff like any other code
# change before committing.
set -euo pipefail

cmake -B build -G Ninja -DMEMFSS_WERROR=OFF >/dev/null
cmake --build build --target test_golden_trace >/dev/null
MEMFSS_REGEN_GOLDEN=1 ./build/tests/test_golden_trace \
  --gtest_filter='GoldenTrace.MatchesCheckedInGolden'
# Sanity: the regenerated file must immediately pass.
./build/tests/test_golden_trace
git --no-pager diff --stat -- tests/golden || true
