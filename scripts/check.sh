#!/usr/bin/env bash
# CI-style check: build and test the plain configuration, then the
# sanitized one (ASan + UBSan via -DMEMFSS_SANITIZE=address,undefined).
# Run from the repository root.
#
#   scripts/check.sh [--plain-only|--sanitize-only]
#
# The sanitized pass uses its own build tree (build-san/) so it never
# perturbs incremental state in build/.
set -euo pipefail

run_plain=1
run_san=1
case "${1:-}" in
  --plain-only) run_san=0 ;;
  --sanitize-only) run_plain=0 ;;
  "") ;;
  *) echo "usage: $0 [--plain-only|--sanitize-only]" >&2; exit 2 ;;
esac

# MEMFSS_WERROR stays off: GCC 12's libstdc++ emits -Wrestrict false
# positives from std::string concatenation at -O2, which -Werror turns
# into hard errors unrelated to this codebase.
if [[ $run_plain -eq 1 ]]; then
  echo "== plain build =="
  cmake -B build -G Ninja -DMEMFSS_WERROR=OFF
  cmake --build build
  ctest --test-dir build --output-on-failure
fi

if [[ $run_san -eq 1 ]]; then
  echo "== sanitized build (address,undefined) =="
  cmake -B build-san -G Ninja \
    -DCMAKE_BUILD_TYPE=Debug \
    -DMEMFSS_SANITIZE=address,undefined
  cmake --build build-san
  # abort_on_error gives ctest a hard failure instead of a hang on leak
  # reports; detect_leaks stays on (the sim owns everything by value).
  ASAN_OPTIONS=abort_on_error=1 UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-san --output-on-failure
fi

echo "== all checks passed =="
