#!/usr/bin/env bash
# CI-style check: build and test the plain configuration, then the
# sanitized one (ASan + UBSan via -DMEMFSS_SANITIZE=address,undefined).
# Run from the repository root. Every mode runs as a named phase and a
# one-line PASS/FAIL per phase prints on exit, so a long multi-phase
# run ends with an at-a-glance verdict.
#
#   scripts/check.sh [--plain-only|--sanitize-only|--coverage|--perf|
#                     --chaos|--tsan|--qos|--net|--netchaos|--tier]
#
# --coverage builds with gcov instrumentation (-DMEMFSS_COVERAGE=ON) in
# build-cov/, runs the tests, prints per-directory line coverage, and
# fails if src/obs/ or the tiered-memory sources (src/kvstore/tier,
# src/exp/tier) fall below 90% -- the observability layer is the
# regression oracle for everything else and the tiering policy guards
# data placement, so both stay fully tested.
#
# --perf builds Release in build-perf/, runs bench/perf_hotpath, and
# fails if sim events/sec or the SIMD byte-pump rows (erasure GB/s, batch
# hash MB/s) regress more than 20% against the committed
# BENCH_hotpath.json, or if RS(8,3) encode falls under 5x the committed
# pre-SIMD scalar baseline (erasure_prepr) while a SIMD kernel is
# selected. Only meaningful on the machine that produced the committed
# numbers (wall-clock benches don't transfer across hosts).
#
# --tsan builds with ThreadSanitizer (-DMEMFSS_SANITIZE=thread) in
# build-tsan/ and runs only the `concurrency`-labeled ctest targets --
# the multithreaded runtime suite (src/rt) plus the network chaos
# suites. TSan is mutually exclusive with ASan, so this is a separate
# mode rather than part of the default sanitize pass; only the
# concurrency targets are built since the single-threaded sim suite has
# nothing for TSan to find.
#
# --qos runs the adversarial multi-tenant isolation scenario
# (bench/loadgen --qos: 8 small tenants + 1 abusive tenant at >= 10x its
# rate quota, compared against a no-abuser baseline) at three fixed
# seeds with a fixed isolation factor. Fails if any small tenant's p99
# degrades past the factor, the abuser is shed by queue-full rejection
# instead of Errc::overloaded, or the memory-accounting invariants trip.
#
# --net exercises the TCP serving path (DESIGN.md §13): builds the
# plain tree, runs the protocol codec + socket test suites, then a
# 3-seed loopback loadgen smoke (bench/loadgen --net) with request-id
# accounting and a throughput sanity floor. Fails if any response is
# lost or duplicated, a transport error occurs, or throughput lands
# under the floor.
#
# --netchaos runs the network chaos soak (DESIGN.md §15) under the
# sanitizer build: resilient clients drive seeded op streams through
# the in-process chaos proxy (resets, blackholes, torn frames,
# corruption, delays) at three fixed seeds, each with a faulted and a
# clean arm. Fails if any acknowledged op is lost or duplicated, a read
# escapes the per-key possibility model, accounting breaks after
# quiesce, the clean arm's digest differs from the in-process replay,
# the faulted arm injected no faults, or ASan/UBSan reports anything.
#
# --tier runs the tiered hot/cold memory suite (DESIGN.md §16) under
# the sanitizer build: the tiering invariant/property tests plus
# bench/tier_pressure at three fixed seeds. The bench exits nonzero if
# any arm fails, a tiered arm records zero demotions, or the p99
# victim-reclaim-stall reduction lands under 2x, so regressions in the
# demote-coldest-first path fail the phase. (The tiering suites are
# single-threaded sim code, so they are deliberately absent from the
# --tsan concurrency label list.)
#
# --chaos runs the full-size chaos soak (bench/chaos_soak: randomized
# partitions + crashes + revocation + pressure evictions, then heal and
# check durability / accounting / recovery invariants) at three fixed
# seeds under the sanitizer build, so memory errors surface alongside
# invariant violations. Fails on either.
#
# The sanitized and coverage passes use their own build trees
# (build-san/, build-cov/) so they never perturb incremental state in
# build/.
set -euo pipefail

run_plain=1
run_san=1
run_cov=0
run_perf=0
run_chaos=0
run_tsan=0
run_qos=0
run_net=0
run_netchaos=0
run_tier=0
case "${1:-}" in
  --plain-only) run_san=0 ;;
  --sanitize-only) run_plain=0 ;;
  --coverage) run_plain=0; run_san=0; run_cov=1 ;;
  --perf) run_plain=0; run_san=0; run_perf=1 ;;
  --chaos) run_plain=0; run_san=0; run_chaos=1 ;;
  --tsan) run_plain=0; run_san=0; run_tsan=1 ;;
  --qos) run_plain=0; run_san=0; run_qos=1 ;;
  --net) run_plain=0; run_san=0; run_net=1 ;;
  --netchaos) run_plain=0; run_san=0; run_netchaos=1 ;;
  --tier) run_plain=0; run_san=0; run_tier=1 ;;
  "") ;;
  *) echo "usage: $0 [--plain-only|--sanitize-only|--coverage|--perf|--chaos|--tsan|--qos|--net|--netchaos|--tier]" >&2
     exit 2 ;;
esac

# Phase bookkeeping: every mode runs through phase(), and the EXIT trap
# prints one PASS/FAIL line per attempted phase whatever happens (a
# failing phase aborts the script via set -e with its row marked FAIL).
phase_names=()
phase_results=()
summary() {
  local status=$?
  if [[ ${#phase_names[@]} -gt 0 ]]; then
    echo "== phase summary =="
    local i
    for i in "${!phase_names[@]}"; do
      printf '  %-34s %s\n' "${phase_names[$i]}" "${phase_results[$i]}"
    done
  fi
  if [[ $status -eq 0 ]]; then
    echo "== all checks passed =="
  else
    echo "== FAILED (exit $status) ==" >&2
  fi
  exit "$status"
}
trap summary EXIT

phase() {
  local name=$1; shift
  phase_names+=("$name")
  phase_results+=("FAIL")
  echo "== $name =="
  "$@"
  phase_results[$((${#phase_results[@]} - 1))]="PASS"
}

# MEMFSS_WERROR stays off: GCC 12's libstdc++ emits -Wrestrict false
# positives from std::string concatenation at -O2, which -Werror turns
# into hard errors unrelated to this codebase.
do_plain() {
  cmake -B build -G Ninja -DMEMFSS_WERROR=OFF
  cmake --build build
  ctest --test-dir build --output-on-failure
}

do_san() {
  cmake -B build-san -G Ninja \
    -DCMAKE_BUILD_TYPE=Debug \
    -DMEMFSS_SANITIZE=address,undefined
  cmake --build build-san
  # abort_on_error gives ctest a hard failure instead of a hang on leak
  # reports; detect_leaks stays on (the sim owns everything by value).
  ASAN_OPTIONS=abort_on_error=1 UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-san --output-on-failure
  # Second arm of the GF(2^8) dispatch: rerun the coding/hash/EC suites
  # with the env override pinning the portable kernel, so both sides of
  # the runtime dispatch stay sanitized (DESIGN.md §14).
  echo "== sanitized rerun, MEMFSS_FORCE_SCALAR=1 =="
  MEMFSS_FORCE_SCALAR=1 \
  ASAN_OPTIONS=abort_on_error=1 UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-san --output-on-failure \
      -R 'GF256|ReedSolomon|Fnv|Hrw|RtEc'
}

do_cov() {
  cmake -B build-cov -G Ninja \
    -DCMAKE_BUILD_TYPE=Debug \
    -DMEMFSS_WERROR=OFF \
    -DMEMFSS_COVERAGE=ON
  cmake --build build-cov
  # Stale .gcda from a previous run would inflate the numbers.
  find build-cov -name '*.gcda' -delete
  ctest --test-dir build-cov --output-on-failure
  python3 scripts/coverage_report.py build-cov --require src/obs=90 \
    --require src/kvstore/tier=90 --require src/exp/tier=90
}

do_perf() {
  cmake -B build-perf -G Ninja -DCMAKE_BUILD_TYPE=Release -DMEMFSS_WERROR=OFF
  cmake --build build-perf --target perf_hotpath
  local fresh
  fresh=$(mktemp)
  ./build-perf/bench/perf_hotpath "$fresh"
  # Compare the scalars least prone to run-to-run noise: event-loop
  # throughput plus the byte-pump rows (coding GB/s, batch-hash MB/s).
  # A >20% drop against any committed number is a regression, and the
  # SIMD encode path must hold >= 5x the committed pre-SIMD scalar
  # baseline whenever a vector kernel is active.
  python3 - "$fresh" BENCH_hotpath.json <<'EOF'
import json, sys
def row(path, bench, metric):
    for r in json.load(open(path)):
        if r["bench"] == bench and r["metric"] == metric:
            return r["value"]
    sys.exit(f"{path}: no {bench} {metric} row")
fresh_path, committed_path = sys.argv[1], sys.argv[2]
failures = []
for bench, metric in [("sim", "events_per_sec"),
                      ("erasure", "rs_encode_GBps"),
                      ("erasure", "rs_decode_loss_GBps"),
                      ("hash", "fnv_batch_MBps")]:
    fresh = row(fresh_path, bench, metric)
    committed = row(committed_path, bench, metric)
    ratio = fresh / committed
    print(f"{bench}.{metric}: fresh {fresh:.3g} vs committed "
          f"{committed:.3g} (ratio {ratio:.2f})")
    if ratio < 0.8:
        failures.append(f"{bench}.{metric} dropped more than 20%")
# The dispatch win itself: SIMD encode vs the committed pre-SIMD scalar
# baseline. Skipped when the host pinned/selected the scalar kernel
# (fresh active row ~ fresh scalar row), since the 5x claim is about the
# vector backends.
enc = row(fresh_path, "erasure", "rs_encode_GBps")
enc_scalar = row(fresh_path, "erasure", "rs_encode_scalar_GBps")
prepr = row(committed_path, "erasure_prepr", "rs_encode_GBps")
if enc > 1.5 * enc_scalar:
    speedup = enc / prepr
    print(f"erasure.rs_encode_GBps: {speedup:.1f}x over pre-SIMD baseline "
          f"{prepr:.3g}")
    if speedup < 5.0:
        failures.append("SIMD rs_encode under 5x the pre-SIMD baseline")
else:
    print("scalar kernel active; skipping 5x dispatch-win check")
if failures:
    sys.exit("perf regression: " + "; ".join(failures))
EOF
  rm -f "$fresh"
}

do_tsan() {
  cmake -B build-tsan -G Ninja \
    -DCMAKE_BUILD_TYPE=Debug \
    -DMEMFSS_WERROR=OFF \
    -DMEMFSS_SANITIZE=thread
  # Build only the concurrency-labeled test binaries; the rest of the
  # tree is single-threaded and not what this pass is for.
  cmake --build build-tsan --target \
    test_rt_sharded_store test_rt_server test_rt_linearizability \
    test_rt_stress test_rt_loadgen test_rt_qos test_rt_tcp test_rt_ec \
    test_netio_chaos test_rt_net_chaos
  TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-tsan -L concurrency --output-on-failure
}

do_net() {
  cmake -B build -G Ninja -DMEMFSS_WERROR=OFF
  cmake --build build --target test_netio_codec test_rt_tcp loadgen
  ctest --test-dir build --output-on-failure -R 'NetioCodec|RtTcp'
  # Loopback smoke: 4 client threads x 2 pipelined connections over 2
  # reactors, 3 seeds; loadgen exits nonzero on any lost/duplicated
  # response or if throughput lands under the sanity floor (loopback
  # with zero service time clears 20k ops/s with an order of magnitude
  # to spare on any host).
  ./build/bench/loadgen --net --threads 4 --ops 5000 --service-us 0 \
    --connections 2 --reactors 2 --seeds 3 --min-ops-per-sec 20000
}

do_netchaos() {
  cmake -B build-san -G Ninja \
    -DCMAKE_BUILD_TYPE=Debug \
    -DMEMFSS_SANITIZE=address,undefined
  cmake --build build-san --target loadgen test_netio_chaos test_rt_net_chaos
  # The focused suites first (proxy transparency, torn frames, breaker,
  # corruption-never-surfaces), then the 3-seed soak: faulted + clean
  # arm per seed, acked-op invariants and digest checks inside.
  ASAN_OPTIONS=abort_on_error=1 UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-san --output-on-failure -R 'NetioChaos|RtNetChaos'
  ASAN_OPTIONS=abort_on_error=1 UBSAN_OPTIONS=halt_on_error=1 \
    ./build-san/bench/loadgen --netchaos --seeds 3 --ops 600
}

do_qos() {
  cmake -B build -G Ninja -DMEMFSS_WERROR=OFF
  cmake --build build --target loadgen
  local seed
  for seed in 1 2 3; do
    echo "-- qos seed $seed --"
    ./build/bench/loadgen --qos --tenants 8 --seed "$seed" \
      --isolation-factor 5.0
  done
}

do_tier() {
  cmake -B build-san -G Ninja \
    -DCMAKE_BUILD_TYPE=Debug \
    -DMEMFSS_SANITIZE=address,undefined
  cmake --build build-san --target test_tiering test_tiering_props \
    tier_pressure
  ASAN_OPTIONS=abort_on_error=1 UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-san --output-on-failure \
      -R 'Tiering|TieringFs|TierPressure|HeatDecay|HeatOrder'
  ASAN_OPTIONS=abort_on_error=1 UBSAN_OPTIONS=halt_on_error=1 \
    ./build-san/bench/tier_pressure 1 2 3
}

do_chaos() {
  cmake -B build-san -G Ninja \
    -DCMAKE_BUILD_TYPE=Debug \
    -DMEMFSS_SANITIZE=address,undefined
  cmake --build build-san --target chaos_soak
  ASAN_OPTIONS=abort_on_error=1 UBSAN_OPTIONS=halt_on_error=1 \
    ./build-san/bench/chaos_soak 1 2 3
}

[[ $run_plain -eq 1 ]] && phase "plain build + tests" do_plain
[[ $run_san -eq 1 ]] && phase "sanitized (address,undefined)" do_san
[[ $run_cov -eq 1 ]] && phase "coverage (gcov)" do_cov
[[ $run_perf -eq 1 ]] && phase "perf check (Release)" do_perf
[[ $run_tsan -eq 1 ]] && phase "thread-sanitized concurrency suite" do_tsan
[[ $run_net -eq 1 ]] && phase "tcp serving path (--net)" do_net
[[ $run_netchaos -eq 1 ]] && phase "network chaos soak (--netchaos)" do_netchaos
[[ $run_qos -eq 1 ]] && phase "qos adversarial isolation" do_qos
[[ $run_tier -eq 1 ]] && phase "tiered memory suite (--tier)" do_tier
[[ $run_chaos -eq 1 ]] && phase "chaos soak (sanitized)" do_chaos
true
