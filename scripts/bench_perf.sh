#!/usr/bin/env bash
# Regenerate BENCH_hotpath.json from a Release build of bench/perf_hotpath.
# Run from the repository root.
#
# The committed file holds two kinds of rows:
#   - live rows (bench: "fabric", "placement", "sim", "erasure", "hash",
#     "fig2_ddbag"): rewritten by this script from a fresh run on this
#     machine;
#   - baseline rows (bench suffixed "_prepr"): the pre-optimization
#     numbers captured when the hot-path work landed. They are *preserved*
#     verbatim so the speedup over the original implementation stays
#     readable in the file, and scripts/check.sh --perf has a fixed
#     reference for regression checks.
#
# Wall-clock values are machine-dependent; compare rows only within one
# machine's history.
set -euo pipefail

out=BENCH_hotpath.json
tmp=$(mktemp)
trap 'rm -f "$tmp" "$out.new"' EXIT

echo "== Release build =="
cmake -B build-perf -G Ninja -DCMAKE_BUILD_TYPE=Release -DMEMFSS_WERROR=OFF
cmake --build build-perf --target perf_hotpath

echo "== bench run =="
./build-perf/bench/perf_hotpath "$tmp"

# Splice: fresh live rows + preserved *_prepr baseline rows.
python3 - "$tmp" "$out" <<'EOF'
import json, sys
fresh_path, out_path = sys.argv[1], sys.argv[2]
fresh = json.load(open(fresh_path))
try:
    old = json.load(open(out_path))
except FileNotFoundError:
    old = []
baseline = [r for r in old if r["bench"].endswith("_prepr")]
rows = fresh + baseline
with open(out_path + ".new", "w") as f:
    f.write("[\n")
    f.write(",\n".join(
        '  {"bench": "%s", "metric": "%s", "value": %.6g, '
        '"unit": "%s", "seed": %d}'
        % (r["bench"], r["metric"], r["value"], r["unit"], r["seed"])
        for r in rows))
    f.write("\n]\n")
EOF
mv "$out.new" "$out"
echo "== wrote $out =="
