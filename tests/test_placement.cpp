#include "fs/placement.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/str.hpp"
#include "hash/weight_solver.hpp"

namespace memfss::fs {
namespace {

std::vector<NodeId> iota_nodes(std::size_t n, NodeId base) {
  std::vector<NodeId> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = base + NodeId(i);
  return v;
}

TEST(ClassMembership, Basics) {
  ClassMembership m;
  EXPECT_FALSE(m.has_class(0));
  m.set_members(0, {1, 2, 3});
  EXPECT_TRUE(m.has_class(0));
  m.add_member(0, 4);
  m.add_member(0, 4);  // idempotent
  EXPECT_EQ(m.members(0).size(), 4u);
  m.remove_member(0, 2);
  EXPECT_EQ(m.members(0), (std::vector<NodeId>{1, 3, 4}));
  m.remove_member(9, 1);  // unknown class: no-op
  m.set_members(1, {10});
  EXPECT_EQ(m.all_members().size(), 4u);
}

TEST(ClassHrwPolicy, TracksLiveMembership) {
  ClassMembership members;
  members.set_members(0, iota_nodes(4, 0));
  const auto w = hash::two_class_weights(0.5);
  members.set_members(1, iota_nodes(8, 100));
  PlacementEpoch epoch{1, {{0, w.own}, {1, w.victim}}};
  ClassHrwPolicy policy(epoch, members);

  // Find a key placed on a victim node, then remove that node: the key
  // must move to another node of the SAME class (minimal disruption).
  for (int k = 0; k < 200; ++k) {
    const std::string key = strformat("key-%d", k);
    const auto before = policy.place(key, 1);
    ASSERT_EQ(before.size(), 1u);
    if (before[0] < 100) continue;  // want a victim-class key
    members.remove_member(1, before[0]);
    const auto after = policy.place(key, 1);
    EXPECT_NE(after[0], before[0]);
    EXPECT_GE(after[0], 100u);  // stayed in the victim class
    members.add_member(1, before[0]);
    break;
  }
}

TEST(ClassHrwPolicy, EpochsResolveIndependently) {
  ClassMembership members;
  members.set_members(0, iota_nodes(4, 0));
  members.set_members(1, iota_nodes(8, 100));
  PlacementEpoch own_only{0, {{0, 0.0}}};
  const auto w = hash::two_class_weights(0.25);
  PlacementEpoch both{1, {{0, w.own}, {1, w.victim}}};

  ClassHrwPolicy p0(own_only, members);
  ClassHrwPolicy p1(both, members);
  int victim_hits_p0 = 0, victim_hits_p1 = 0;
  for (int k = 0; k < 2000; ++k) {
    const std::string key = strformat("e-%d", k);
    if (p0.place(key, 1)[0] >= 100) ++victim_hits_p0;
    if (p1.place(key, 1)[0] >= 100) ++victim_hits_p1;
  }
  EXPECT_EQ(victim_hits_p0, 0);             // epoch 0: own only
  EXPECT_NEAR(victim_hits_p1, 1500, 120);   // epoch 1: ~75% to victims
}

TEST(ClassHrwPolicy, ProbeOrderStartsAtPrimaryAndCoversClass) {
  ClassMembership members;
  members.set_members(0, iota_nodes(8, 0));
  PlacementEpoch epoch{0, {{0, 0.0}}};
  ClassHrwPolicy policy(epoch, members);
  for (int k = 0; k < 50; ++k) {
    const std::string key = strformat("p-%d", k);
    const auto order = policy.probe_order(key);
    EXPECT_EQ(order.size(), 8u);
    EXPECT_EQ(order[0], policy.place(key, 1)[0]);
    EXPECT_EQ(std::set<NodeId>(order.begin(), order.end()).size(), 8u);
  }
}

TEST(ClassHrwPolicy, DescribeMentionsWeights) {
  ClassMembership members;
  members.set_members(0, {1});
  PlacementEpoch epoch{3, {{0, 0.25}}};
  ClassHrwPolicy policy(epoch, members);
  const auto d = policy.describe();
  EXPECT_NE(d.find("epoch=3"), std::string::npos);
  EXPECT_NE(d.find("0.2500"), std::string::npos);
}

TEST(UniformHrwPolicy, SpreadsAcrossAllNodes) {
  UniformHrwPolicy policy(iota_nodes(10, 0));
  std::map<NodeId, int> counts;
  for (int k = 0; k < 10000; ++k)
    ++counts[policy.place(strformat("u-%d", k), 1)[0]];
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [n, c] : counts) EXPECT_NEAR(c, 1000, 200);
}

TEST(ConsistentHashPolicy, ReplicasDistinct) {
  ConsistentHashPolicy policy(iota_nodes(6, 0));
  for (int k = 0; k < 100; ++k) {
    const auto reps = policy.place(strformat("c-%d", k), 3);
    EXPECT_EQ(std::set<NodeId>(reps.begin(), reps.end()).size(), 3u);
  }
}

TEST(ModuloPolicy, DeterministicSpread) {
  ModuloPolicy policy(iota_nodes(5, 0));
  std::map<NodeId, int> counts;
  for (int k = 0; k < 5000; ++k)
    ++counts[policy.place(strformat("m-%d", k), 1)[0]];
  EXPECT_EQ(counts.size(), 5u);
  for (const auto& [n, c] : counts) EXPECT_NEAR(c, 1000, 200);
  // Successive copies go to successive nodes.
  const auto two = policy.place("key", 2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ((two[0] + 1) % 5, two[1] % 5);
}

}  // namespace
}  // namespace memfss::fs
