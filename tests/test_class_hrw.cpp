#include "hash/class_hrw.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/str.hpp"
#include "hash/weight_solver.hpp"

namespace memfss::hash {
namespace {

std::vector<NodeId> make_nodes(std::size_t n, NodeId base) {
  std::vector<NodeId> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = base + static_cast<NodeId>(i);
  return v;
}

std::vector<NodeClass> paper_classes(double alpha, std::size_t own = 8,
                                     std::size_t victims = 32) {
  const auto w = two_class_weights(alpha);
  return {
      NodeClass{0, w.own, make_nodes(own, 0)},
      NodeClass{1, w.victim, make_nodes(victims, 100)},
  };
}

// The paper's alpha sweep: fraction of keys landing in the own class must
// track the target within sampling noise.
class AlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(AlphaSweep, ClassFractionMatchesTarget) {
  const double alpha = GetParam();
  const auto classes = paper_classes(alpha);
  const int keys = 40000;
  int own_hits = 0;
  for (int k = 0; k < keys; ++k) {
    const auto p = place(strformat("stripe-%d", k), classes);
    if (p.class_id == 0) ++own_hits;
  }
  EXPECT_NEAR(own_hits / double(keys), alpha, 0.012) << "alpha=" << alpha;
}

TEST_P(AlphaSweep, NodeLayerBalancedWithinClasses) {
  const double alpha = GetParam();
  if (alpha == 0.0 || alpha == 1.0) return;  // degenerate splits
  const auto classes = paper_classes(alpha);
  std::map<NodeId, int> counts;
  const int keys = 60000;
  for (int k = 0; k < keys; ++k)
    ++counts[place(strformat("s-%d", k), classes).node];
  const double own_total = alpha * keys;
  const double victim_total = (1 - alpha) * keys;
  for (const auto& [node, c] : counts) {
    if (node < 100) {
      EXPECT_NEAR(c, own_total / 8, own_total / 8 * 0.2) << "own " << node;
    } else {
      EXPECT_NEAR(c, victim_total / 32, victim_total / 32 * 0.3)
          << "victim " << node;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PaperAlphas, AlphaSweep,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0),
                         [](const auto& info) {
                           return "alpha" +
                                  std::to_string(int(info.param * 100));
                         });

TEST(ClassHrw, EmptyClassesAreSkipped) {
  std::vector<NodeClass> classes{
      NodeClass{0, 0.0, {}},           // no members
      NodeClass{1, 0.0, {5, 6, 7}},
  };
  for (int k = 0; k < 100; ++k) {
    const auto p = place(strformat("k%d", k), classes);
    EXPECT_EQ(p.class_id, 1u);
  }
}

TEST(ClassHrw, ReplicasStayInWinningClass) {
  const auto classes = paper_classes(0.5);
  for (int k = 0; k < 300; ++k) {
    const std::string key = strformat("r%d", k);
    const auto reps = place_replicas(key, classes, 3);
    ASSERT_EQ(reps.size(), 3u);
    const auto cls = reps[0].class_id;
    for (const auto& r : reps) EXPECT_EQ(r.class_id, cls);
    // Distinct nodes.
    EXPECT_NE(reps[0].node, reps[1].node);
    EXPECT_NE(reps[1].node, reps[2].node);
    EXPECT_NE(reps[0].node, reps[2].node);
  }
}

TEST(ClassHrw, RankInWinningClassStartsWithPrimary) {
  const auto classes = paper_classes(0.25);
  for (int k = 0; k < 200; ++k) {
    const std::string key = strformat("x%d", k);
    const auto rank = rank_in_winning_class(key, classes);
    const auto p = place(key, classes);
    ASSERT_FALSE(rank.empty());
    EXPECT_EQ(rank[0], p.node);
    const std::size_t class_size = p.class_id == 0 ? 8u : 32u;
    EXPECT_EQ(rank.size(), class_size);
  }
}

TEST(ClassHrw, ClassDecisionIndependentOfMembership) {
  // The class layer hashes class ids, not node lists: changing victim
  // membership must not re-shuffle keys between classes (the property
  // that makes intra-class eviction safe).
  auto classes = paper_classes(0.25);
  std::vector<std::uint32_t> before;
  for (int k = 0; k < 500; ++k)
    before.push_back(
        classes[select_class(strformat("m%d", k), classes)].class_id);
  classes[1].nodes.pop_back();
  classes[1].nodes.pop_back();
  for (int k = 0; k < 500; ++k) {
    EXPECT_EQ(before[size_t(k)],
              classes[select_class(strformat("m%d", k), classes)].class_id);
  }
}

TEST(ClassHrw, GeneralizesToThreeClasses) {
  // Paper §III-B: "can be generalized to an arbitrary number of classes".
  const auto weights = solve_class_weights({0.5, 0.3, 0.2});
  std::vector<NodeClass> classes{
      NodeClass{0, weights[0], make_nodes(4, 0)},
      NodeClass{1, weights[1], make_nodes(8, 100)},
      NodeClass{2, weights[2], make_nodes(8, 200)},
  };
  std::map<std::uint32_t, int> hits;
  const int keys = 60000;
  for (int k = 0; k < keys; ++k)
    ++hits[place(strformat("t%d", k), classes).class_id];
  EXPECT_NEAR(hits[0] / double(keys), 0.5, 0.02);
  EXPECT_NEAR(hits[1] / double(keys), 0.3, 0.02);
  EXPECT_NEAR(hits[2] / double(keys), 0.2, 0.02);
}

TEST(ClassHrw, TrScoreFnAlsoTracksAlpha) {
  const double alpha = 0.25;
  const auto classes = paper_classes(alpha);
  int own_hits = 0;
  const int keys = 40000;
  for (int k = 0; k < keys; ++k) {
    if (place(strformat("tr%d", k), classes, ScoreFn::thaler_ravishankar)
            .class_id == 0)
      ++own_hits;
  }
  EXPECT_NEAR(own_hits / double(keys), alpha, 0.02);
}

}  // namespace
}  // namespace memfss::hash
