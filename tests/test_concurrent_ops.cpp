// Concurrency stress tests: operations racing membership changes --
// reads during evacuation, writes during own-class shrink, evacuation
// during an active workflow. The system's liveness guarantees (probing,
// draining-node fallback, bounded retries) must hold under all of them.
#include <gtest/gtest.h>

#include "co_test.hpp"
#include "common/str.hpp"
#include "fs/client.hpp"
#include "fs/filesystem.hpp"
#include "sim/sync.hpp"

namespace memfss::fs {
namespace {

std::vector<cluster::ScavengeOffer> offers(std::vector<NodeId> nodes) {
  std::vector<cluster::ScavengeOffer> out;
  for (NodeId n : nodes) out.push_back({n, units::GiB, 200e6, "t"});
  return out;
}

struct Rig {
  sim::Simulator sim;
  cluster::Cluster cl;
  FileSystem fs;

  Rig() : cl(sim, 12), fs(cl, make_cfg()) {}

  static FileSystemConfig make_cfg() {
    FileSystemConfig cfg;
    cfg.own_nodes = {0, 1, 2, 3};
    cfg.own_store_capacity = 4 * units::GiB;
    cfg.stripe_size = 1 * units::MiB;
    return cfg;
  }
};

sim::Task<> write_files(Rig& r, int count, Bytes size, Status& out) {
  Client c = r.fs.client(0);
  for (int i = 0; i < count; ++i) {
    auto st = co_await c.write_file(strformat("/w%d", i), size);
    if (!st.ok() && out.ok()) out = st;
  }
}

sim::Task<> read_files_loop(Rig& r, int count, Bytes size, int rounds,
                            Status& out) {
  Client c = r.fs.client(1);
  for (int round = 0; round < rounds; ++round) {
    for (int i = 0; i < count; ++i) {
      auto bytes = co_await c.read_file(strformat("/w%d", i));
      if (!bytes.ok()) {
        if (out.ok()) out = bytes.error();
      } else if (bytes.value() != size && out.ok()) {
        out = Status{Errc::corruption, "short read"};
      }
    }
  }
}

TEST(Concurrent, ReadsSurviveEvacuationMidFlight) {
  Rig rig;
  ASSERT_TRUE(
      rig.fs.add_victim_class(1, offers({4, 5, 6, 7, 8, 9, 10, 11}), 0.25)
          .ok());
  Status write_st, read_st, evac_st{Errc::io_error, "unset"};
  bool all_done = false;
  rig.sim.spawn([](Rig& r, Status& ws, Status& rs, Status& es,
                   bool& done) -> sim::Task<> {
    co_await write_files(r, 12, 8 * units::MiB, ws);
    // Readers hammer the files while two victims evacuate.
    std::vector<sim::Task<>> work;
    work.push_back(read_files_loop(r, 12, 8 * units::MiB, 3, rs));
    work.push_back([](Rig& rr, Status& e) -> sim::Task<> {
      auto st1 = co_await rr.fs.evacuate_victim(5);
      auto st2 = co_await rr.fs.evacuate_victim(9);
      e = st1.ok() ? st2 : st1;
    }(r, es));
    co_await sim::when_all(r.sim, std::move(work));
    done = true;
  }(rig, write_st, read_st, evac_st, all_done));
  rig.sim.run();
  ASSERT_TRUE(all_done);
  EXPECT_TRUE(write_st.ok()) << write_st.error().to_string();
  EXPECT_TRUE(read_st.ok()) << read_st.error().to_string();
  EXPECT_TRUE(evac_st.ok()) << evac_st.error().to_string();
  EXPECT_EQ(rig.fs.bytes_on(5), 0u);
  EXPECT_EQ(rig.fs.bytes_on(9), 0u);
}

TEST(Concurrent, WritesDuringOwnShrinkLandSafely) {
  Rig rig;
  Status write_st, shrink_st{Errc::io_error, "unset"};
  bool all_done = false;
  rig.sim.spawn([](Rig& r, Status& ws, Status& ss,
                   bool& done) -> sim::Task<> {
    std::vector<sim::Task<>> work;
    work.push_back(write_files(r, 20, 4 * units::MiB, ws));
    work.push_back([](Rig& rr, Status& s) -> sim::Task<> {
      co_await rr.sim.delay(0.2);  // let some writes land first
      s = co_await rr.fs.remove_own_node(2);
    }(r, ss));
    co_await sim::when_all(r.sim, std::move(work));
    // Everything written must be fully readable afterwards.
    Client c = r.fs.client(0);
    for (int i = 0; i < 20; ++i) {
      auto bytes = co_await c.read_file(strformat("/w%d", i));
      CO_ASSERT_TRUE(bytes.ok());
      EXPECT_EQ(bytes.value(), 4 * units::MiB) << "file " << i;
    }
    done = true;
  }(rig, write_st, shrink_st, all_done));
  rig.sim.run();
  ASSERT_TRUE(all_done);
  EXPECT_TRUE(write_st.ok()) << write_st.error().to_string();
  EXPECT_TRUE(shrink_st.ok()) << shrink_st.error().to_string();
  EXPECT_EQ(rig.fs.bytes_on(2), 0u);
}

TEST(Concurrent, ParallelClientsOnDistinctNodes) {
  Rig rig;
  ASSERT_TRUE(
      rig.fs.add_victim_class(1, offers({4, 5, 6, 7}), 0.5).ok());
  std::vector<Status> sts(4);
  bool all_done = false;
  rig.sim.spawn([](Rig& r, std::vector<Status>& out,
                   bool& done) -> sim::Task<> {
    std::vector<sim::Task<>> work;
    for (int n = 0; n < 4; ++n) {
      work.push_back([](Rig& rr, NodeId node, Status& st) -> sim::Task<> {
        Client c = rr.fs.client(node);
        for (int i = 0; i < 6; ++i) {
          auto s = co_await c.write_file(
              strformat("/n%u-f%d", node, i), 4 * units::MiB);
          if (!s.ok() && st.ok()) st = s;
        }
        for (int i = 0; i < 6; ++i) {
          auto bytes =
              co_await c.read_file(strformat("/n%u-f%d", node, i));
          if (!bytes.ok() && st.ok()) st = bytes.error();
        }
      }(r, NodeId(n), out[std::size_t(n)]));
    }
    co_await sim::when_all(r.sim, std::move(work));
    done = true;
  }(rig, sts, all_done));
  rig.sim.run();
  ASSERT_TRUE(all_done);
  for (const auto& st : sts) EXPECT_TRUE(st.ok()) << st.error().to_string();
  EXPECT_EQ(rig.fs.meta().ns().file_count(), 24u);
}

TEST(Concurrent, UnlinkRacingReadsNeverCorrupts) {
  // Readers may see not_found once the unlink wins, but never a short
  // read or a stuck probe.
  Rig rig;
  bool all_done = false;
  rig.sim.spawn([](Rig& r, bool& done) -> sim::Task<> {
    Client writer = r.fs.client(0);
    CO_ASSERT_TRUE(
        (co_await writer.write_file("/target", 16 * units::MiB)).ok());
    std::vector<sim::Task<>> work;
    work.push_back([](Rig& rr) -> sim::Task<> {
      Client c = rr.fs.client(1);
      for (int i = 0; i < 5; ++i) {
        auto bytes = co_await c.read_file("/target");
        if (bytes.ok()) {
          EXPECT_EQ(bytes.value(), 16 * units::MiB);
        } else {
          EXPECT_EQ(bytes.code(), Errc::not_found);
        }
      }
    }(r));
    work.push_back([](Rig& rr) -> sim::Task<> {
      co_await rr.sim.delay(0.05);
      Client c = rr.fs.client(2);
      auto st = co_await c.unlink("/target");
      EXPECT_TRUE(st.ok()) << st.error().to_string();
    }(r));
    co_await sim::when_all(r.sim, std::move(work));
    done = true;
  }(rig, all_done));
  rig.sim.run();
  ASSERT_TRUE(all_done);
  EXPECT_EQ(rig.fs.total_bytes(), 0u);
}

}  // namespace
}  // namespace memfss::fs
