// ClassHrwPolicy caches its class-membership snapshot behind
// ClassMembership::generation(); these tests lock down the invalidation
// contract. The failure mode that matters is a *stale read after
// revocation*: if a victim node is evicted (remove_member) and a cached
// policy keeps serving the old snapshot, reads get routed to a node that
// no longer holds data. Every mutation must therefore be visible through
// every live policy on the very next placement call.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "fs/namespace.hpp"
#include "fs/placement.hpp"

namespace memfss::fs {
namespace {

PlacementEpoch two_class_epoch() {
  PlacementEpoch e;
  e.id = 1;
  e.weights = {{0, 0.5}, {1, 0.25}};
  return e;
}

std::vector<std::string> some_keys(int n) {
  std::vector<std::string> keys;
  for (int i = 0; i < n; ++i)
    keys.push_back(Namespace::stripe_key(42 + i, static_cast<std::size_t>(i)));
  return keys;
}

// The cached policy must agree with a policy constructed from scratch
// (which cannot have a stale snapshot) on every key, after any mutation.
void expect_matches_fresh(const ClassHrwPolicy& cached,
                          const PlacementEpoch& epoch,
                          const ClassMembership& members) {
  const ClassHrwPolicy fresh(epoch, members);
  for (const auto& key : some_keys(64)) {
    EXPECT_EQ(cached.place(key, 3), fresh.place(key, 3)) << key;
    EXPECT_EQ(cached.probe_order(key), fresh.probe_order(key)) << key;
  }
}

TEST(SnapshotCache, GenerationBumpsOnMutation) {
  ClassMembership m;
  EXPECT_EQ(m.generation(), 0u);
  m.set_members(0, {1, 2, 3});
  const auto g1 = m.generation();
  EXPECT_GT(g1, 0u);
  m.add_member(0, 4);
  const auto g2 = m.generation();
  EXPECT_GT(g2, g1);
  m.remove_member(0, 4);
  EXPECT_GT(m.generation(), g2);
}

TEST(SnapshotCache, NoOpMutationsDoNotInvalidate) {
  ClassMembership m;
  m.set_members(0, {1, 2, 3});
  const auto g = m.generation();
  m.add_member(0, 2);     // already a member
  EXPECT_EQ(m.generation(), g);
  m.remove_member(0, 9);  // not a member
  EXPECT_EQ(m.generation(), g);
  m.remove_member(7, 1);  // class does not exist
  EXPECT_EQ(m.generation(), g);
}

TEST(SnapshotCache, StaleReadAfterRevocationIsImpossible) {
  ClassMembership m;
  m.set_members(0, {0, 1, 2, 3});
  m.set_members(1, {10, 11, 12, 13, 14, 15});
  const auto epoch = two_class_epoch();
  const ClassHrwPolicy policy(epoch, m);

  // Warm the cache, then revoke every node of the victim class one by one;
  // none of them may ever be placed again.
  (void)policy.place(Namespace::stripe_key(2, 0), 3);
  for (NodeId revoked : {10, 11, 12, 13}) {
    m.remove_member(1, revoked);
    for (const auto& key : some_keys(96)) {
      for (NodeId n : policy.probe_order(key))
        EXPECT_NE(n, revoked) << "revoked node still probed for " << key;
    }
    expect_matches_fresh(policy, epoch, m);
  }
}

TEST(SnapshotCache, AddMemberVisibleImmediately) {
  ClassMembership m;
  m.set_members(0, {0, 1});
  m.set_members(1, {10});
  const auto epoch = two_class_epoch();
  const ClassHrwPolicy policy(epoch, m);
  (void)policy.place(Namespace::stripe_key(2, 0), 2);  // warm cache

  // Grow the victim class; the new nodes must start winning stripes.
  for (NodeId added : {11, 12, 13, 14, 15, 16, 17, 18}) m.add_member(1, added);
  bool new_node_used = false;
  for (const auto& key : some_keys(128)) {
    for (NodeId n : policy.place(key, 2)) new_node_used |= n >= 11;
  }
  EXPECT_TRUE(new_node_used) << "cache never picked up added members";
  expect_matches_fresh(policy, epoch, m);
}

TEST(SnapshotCache, AddVictimClassVisibleThroughNewEpochPolicy) {
  // Adding a whole victim class is: set_members of a fresh class + a new
  // epoch carrying its weight. Epoch weights are captured per policy
  // object, so the new class shows up via a new policy over the same
  // membership -- and the old-epoch policy keeps resolving without it
  // (files remember the epoch they were written under).
  ClassMembership m;
  m.set_members(0, {0, 1, 2});
  PlacementEpoch e1;
  e1.id = 1;
  e1.weights = {{0, 0.5}};
  const ClassHrwPolicy old_policy(e1, m);
  const auto before = old_policy.place(Namespace::stripe_key(2, 0), 2);

  m.set_members(1, {20, 21, 22, 23});
  PlacementEpoch e2;
  e2.id = 2;
  e2.weights = {{0, 0.5}, {1, 0.9}};
  const ClassHrwPolicy new_policy(e2, m);

  // Old-epoch placements are unchanged (weight set has no class 1)...
  EXPECT_EQ(old_policy.place(Namespace::stripe_key(2, 0), 2), before);
  for (const auto& key : some_keys(64)) {
    for (NodeId n : old_policy.probe_order(key)) EXPECT_LT(n, 20u);
  }
  // ...while the new epoch routes some stripes to the new class.
  bool class1_used = false;
  for (const auto& key : some_keys(128))
    class1_used |= new_policy.winning_class(key) == 1;
  EXPECT_TRUE(class1_used);
  expect_matches_fresh(new_policy, e2, m);
}

TEST(SnapshotCache, EpochWeightChangeNeedsNewPolicyNotNewMembership) {
  // Two policies over the same membership with different weights must not
  // share cached state: each caches its own snapshot, both track the same
  // generation counter independently.
  ClassMembership m;
  m.set_members(0, {0, 1, 2, 3});
  m.set_members(1, {10, 11, 12, 13});
  PlacementEpoch light = two_class_epoch();
  PlacementEpoch heavy = two_class_epoch();
  heavy.weights[1].weight = 0.95;  // subtractive: larger => fewer keys
  const ClassHrwPolicy p_light(light, m);
  const ClassHrwPolicy p_heavy(heavy, m);

  std::size_t victim_light = 0, victim_heavy = 0;
  for (const auto& key : some_keys(256)) {
    victim_light += p_light.winning_class(key) == 1;
    victim_heavy += p_heavy.winning_class(key) == 1;
  }
  EXPECT_LT(victim_heavy, victim_light);

  // Mutate after both caches are warm; both must see it.
  m.remove_member(1, 13);
  expect_matches_fresh(p_light, light, m);
  expect_matches_fresh(p_heavy, heavy, m);
  for (const auto& key : some_keys(96)) {
    for (NodeId n : p_light.probe_order(key)) EXPECT_NE(n, 13u);
    for (NodeId n : p_heavy.probe_order(key)) EXPECT_NE(n, 13u);
  }
}

TEST(SnapshotCache, DigestAndStringPathsShareInvalidation) {
  // The digest fast path reads the same cached snapshot; a mutation must
  // invalidate it for both entry points.
  ClassMembership m;
  m.set_members(0, {0, 1, 2, 3, 4});
  PlacementEpoch e;
  e.id = 1;
  e.weights = {{0, 0.5}};
  const ClassHrwPolicy policy(e, m);
  const std::string key = Namespace::stripe_key(7, 3);
  const std::uint64_t digest = Namespace::stripe_key_digest(7, 3);
  EXPECT_EQ(policy.place(key, 3), policy.place(digest, 3));  // warm via both
  m.remove_member(0, policy.place(digest, 1).front());
  EXPECT_EQ(policy.place(key, 3), policy.place(digest, 3));
  expect_matches_fresh(policy, e, m);
}

}  // namespace
}  // namespace memfss::fs
