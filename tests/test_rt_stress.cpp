// Stress test: racing put/get/del/evict/close/clear across shards under
// a deliberately tight aggregate cap, asserting the accounting
// invariants from DESIGN.md §11 the whole time:
//
//   1. used() never exceeds capacity() at any sampled instant (the
//      reserve-before-insert gate);
//   2. used() never goes negative -- Bytes is unsigned, so an
//      underflow would wrap far past the cap and trip invariant 1;
//   3. after quiesce, used() equals the sum of per-shard accounting,
//      and each shard's accounting equals a recomputation from its
//      surviving keys.
//
// The cap is sized so out_of_memory rejections fire constantly
// (exercising the reserve/release path), and a chaos thread clears and
// closes shards mid-run so the eviction/unavailable paths race the
// writers too.
// Op streams come from the shared seed-deterministic generator
// (rt/opstream.hpp) -- the same one the in-process loadgen and the
// socket replay client use -- so the put/get/del mix here is the same
// reproducible stream family every other harness replays; only the
// evict/clear/close chaos stays locally randomized.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "rt/opstream.hpp"
#include "rt/sharded_store.hpp"

namespace memfss::rt {
namespace {

constexpr std::size_t kShards = 8;
constexpr std::size_t kThreads = 4;
constexpr std::size_t kOpsPerThread = 30000;
constexpr std::size_t kKeySpace = 128;
constexpr Bytes kMaxValue = 512;
// Roughly a third of the worst-case live set: ooms are routine.
constexpr Bytes kCap =
    kKeySpace * (kMaxValue + kvstore::Store::kPerKeyOverhead) / 3;

/// Stream shape shared with the loadgen/socket harnesses: the put/get/
/// del mix and key popularity are a pure function of (seed, thread).
StreamOptions stress_stream(std::size_t ops) {
  StreamOptions s;
  s.seed = 0xabcdef;
  s.ops_per_thread = ops;
  s.get_fraction = 0.25;
  s.del_fraction = 0.20;
  s.key_space = kKeySpace;
  return s;
}

TEST(RtStress, AccountingInvariantsUnderRacingMutators) {
  ShardedStore store({kShards, kCap, ""});
  std::atomic<std::uint64_t> cap_violations{0};
  std::atomic<std::uint64_t> ooms{0};

  auto sample = [&] {
    // Relaxed sample mid-race: an underflow wraps Bytes to ~2^64 and an
    // over-admission lands above the cap; both trip this.
    if (store.used() > store.capacity()) cap_violations.fetch_add(1);
  };

  auto mutator = [&](std::size_t t) {
    const auto stream = generate_stream(stress_stream(kOpsPerThread), t);
    Rng rng(0xabcdef + t);  // sizes + evict interleave only
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const GenOp& g = stream[i];
      const std::string key = loadgen_key(g.key_index);
      switch (g.type) {
        case Op::Type::put: {
          const auto st = store.put("", key,
                                    kvstore::Blob::ghost(
                                        rng.uniform_u64(0, kMaxValue), i));
          if (st.code() == Errc::out_of_memory) ooms.fetch_add(1);
          break;
        }
        case Op::Type::get: (void)store.get("", key); break;
        case Op::Type::del: (void)store.del("", key); break;
        default: break;
      }
      if (rng.chance(0.10)) (void)store.evict(key);
      sample();
    }
  };

  std::atomic<bool> done{false};
  auto chaos = [&] {
    Rng rng(99);
    std::size_t round = 0;
    while (!done.load()) {
      const auto victim = rng.uniform_u64(0, kShards - 1);
      if (round % 3 == 0) (void)store.clear_shard(victim);
      sample();
      std::this_thread::yield();
      ++round;
      // One shard goes down for good mid-run; ops on it must fail
      // unavailable without disturbing anyone's accounting.
      if (round == 50) store.close_shard(rng.uniform_u64(0, kShards - 1));
    }
  };

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) threads.emplace_back(mutator, t);
  std::thread chaos_thread(chaos);
  for (auto& th : threads) th.join();
  done.store(true);
  chaos_thread.join();

  EXPECT_EQ(cap_violations.load(), 0u);
  EXPECT_GT(ooms.load(), 0u) << "cap never bound; stress has no teeth";

  // Quiesced: the atomic aggregate, the per-shard tallies, and a
  // recomputation from surviving keys must all agree.
  Bytes shard_sum = 0, recomputed = 0;
  for (std::size_t s = 0; s < store.shard_count(); ++s) {
    shard_sum += store.shard_used(s);
    recomputed += store.shard_recomputed_used(s);
  }
  EXPECT_EQ(store.used(), shard_sum);
  EXPECT_EQ(shard_sum, recomputed);
  EXPECT_LE(store.used(), store.capacity());
}

// Same invariants with every op forced through one overloaded shard:
// maximal contention on a single mutex + the atomic gate.
TEST(RtStress, SingleShardContention) {
  ShardedStore store({1, 32 * (kMaxValue + kvstore::Store::kPerKeyOverhead),
                      ""});
  auto mutator = [&](std::size_t t) {
    StreamOptions so = stress_stream(10000);
    so.seed = 7;
    so.get_fraction = 0.20;
    so.key_space = 64;
    const auto stream = generate_stream(so, t);
    Rng rng(7 + t);  // value sizes only
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const GenOp& g = stream[i];
      const std::string key = loadgen_key(g.key_index);
      switch (g.type) {
        case Op::Type::put:
          (void)store.put("", key, kvstore::Blob::ghost(
                                       rng.uniform_u64(0, kMaxValue), i));
          break;
        case Op::Type::del: (void)store.del("", key); break;
        default: (void)store.get("", key); break;
      }
      ASSERT_LE(store.used(), store.capacity());
    }
  };
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) threads.emplace_back(mutator, t);
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.used(), store.shard_used(0));
  EXPECT_EQ(store.shard_used(0), store.shard_recomputed_used(0));
}

}  // namespace
}  // namespace memfss::rt
