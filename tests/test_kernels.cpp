#include "tenant/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace memfss::tenant::kernels {
namespace {

TEST(Stream, ReportsPositiveBandwidth) {
  const double bps = stream_triad(1 << 16, 4);
  EXPECT_GT(bps, 1e6);  // any machine moves > 1 MB/s
}

TEST(Fft, MatchesDirectDftOnRandomInput) {
  Rng rng(31);
  std::vector<std::complex<double>> a(64);
  for (auto& x : a) x = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  auto expect = dft_reference(a);
  auto got = a;
  fft_radix2(got);
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].real(), expect[i].real(), 1e-9) << i;
    EXPECT_NEAR(got[i].imag(), expect[i].imag(), 1e-9) << i;
  }
}

TEST(Fft, InverseRecoversSignal) {
  Rng rng(32);
  std::vector<std::complex<double>> a(256);
  for (auto& x : a) x = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  auto sig = a;
  fft_radix2(sig, false);
  fft_radix2(sig, true);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(sig[i].real() / 256.0, a[i].real(), 1e-9);
    EXPECT_NEAR(sig[i].imag() / 256.0, a[i].imag(), 1e-9);
  }
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<std::complex<double>> a(16, {0, 0});
  a[0] = {1, 0};
  fft_radix2(a);
  for (const auto& x : a) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(Dgemm, BlockedMatchesNaive) {
  const std::size_t n = 48;  // not a multiple of the block size
  Rng rng(33);
  std::vector<double> a(n * n), b(n * n), c1(n * n, 0.0), c2(n * n, 0.0);
  for (auto& x : a) x = rng.uniform(-1, 1);
  for (auto& x : b) x = rng.uniform(-1, 1);
  dgemm_blocked(n, a.data(), b.data(), c1.data(), 16);
  dgemm_naive(n, a.data(), b.data(), c2.data());
  for (std::size_t i = 0; i < n * n; ++i) EXPECT_NEAR(c1[i], c2[i], 1e-9);
}

TEST(Dgemm, AccumulatesIntoC) {
  const std::size_t n = 8;
  std::vector<double> a(n * n, 0.0), b(n * n, 0.0), c(n * n, 5.0);
  dgemm_blocked(n, a.data(), b.data(), c.data());
  for (double x : c) EXPECT_EQ(x, 5.0);  // A=B=0: C unchanged
}

TEST(RandomAccess, DeterministicDigest) {
  std::vector<std::uint64_t> t1(1 << 10, 0), t2(1 << 10, 0);
  const auto d1 = random_access(t1, 100000, 7);
  const auto d2 = random_access(t2, 100000, 7);
  EXPECT_EQ(d1, d2);
  std::vector<std::uint64_t> t3(1 << 10, 0);
  EXPECT_NE(random_access(t3, 100000, 8), d1);
}

TEST(RandomAccess, TouchesManySlots) {
  std::vector<std::uint64_t> t(1 << 10, 0);
  random_access(t, 1 << 16, 1);
  std::size_t touched = 0;
  for (auto v : t)
    if (v != 0) ++touched;
  EXPECT_GT(touched, t.size() / 2);
}

}  // namespace
}  // namespace memfss::tenant::kernels
