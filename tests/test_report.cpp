#include "exp/report.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace memfss::exp {
namespace {

TEST(CsvEscape, QuotingRules) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(csv_escape("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(csv_escape("multi\nline"), "\"multi\nline\"");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(Fig2Csv, HeaderAndRows) {
  Fig2Row r;
  r.alpha = 0.25;
  r.own.cpu = 0.256;
  r.victim.nic_down = 0.142;
  r.victim_nic_rate = 427e6;
  r.runtime = 15.1;
  r.own_bytes = 100;
  r.victim_bytes = 300;
  const auto csv = fig2_csv({r});
  std::istringstream in(csv);
  std::string header, row;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, row));
  EXPECT_EQ(header.substr(0, 6), "alpha,");
  EXPECT_NE(row.find("0.2500"), std::string::npos);
  EXPECT_NE(row.find("427.000"), std::string::npos);
  EXPECT_NE(row.find(",100,300"), std::string::npos);
}

TEST(SlowdownCsv, RoundTripValues) {
  SlowdownCell c;
  c.tenant = "TeraSort";
  c.workload = Workload::dd;
  c.alpha = 0.25;
  c.slowdown = 0.281;
  const auto csv = slowdown_csv({c});
  EXPECT_NE(csv.find("TeraSort,dd,0.2500,0.281000"), std::string::npos);
}

TEST(Table2Csv, EncodesFeasibility) {
  Table2Row ok;
  ok.label = "Montage, scavenging (4 own + 36 victims)";  // comma: quoted
  ok.nodes = 4;
  ok.runtime = 6299;
  ok.node_hours = 7.0;
  ok.data_footprint = 12345;
  Table2Row bad;
  bad.label = "Montage standalone, 16 nodes";
  bad.nodes = 16;
  bad.feasible = false;
  const auto csv = table2_csv({ok, bad});
  EXPECT_NE(csv.find("\"Montage, scavenging (4 own + 36 victims)\",4,1,"),
            std::string::npos);
  EXPECT_NE(csv.find(",16,0,"), std::string::npos);
}

TEST(WriteTextFile, WritesAndFails) {
  const std::string path = "/tmp/memfss_report_test.csv";
  ASSERT_TRUE(write_text_file(path, "a,b\n1,2\n").ok());
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(all, "a,b\n1,2\n");
  EXPECT_EQ(write_text_file("/nonexistent-dir/x.csv", "x").code(),
            Errc::io_error);
}

}  // namespace
}  // namespace memfss::exp
