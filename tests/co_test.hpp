// Coroutine-safe gtest assertions.
//
// gtest's ASSERT_* macros expand to a bare `return;` on failure, which
// does not compile inside a coroutine (and could not abort it correctly
// anyway). CO_ASSERT_* records the failure and co_returns instead. Use
// them inside sim::Task<> test bodies; plain ASSERT_*/EXPECT_* elsewhere.
#pragma once

#include <gtest/gtest.h>

#define CO_ASSERT_TRUE(cond)                               \
  if (!(cond)) {                                           \
    ADD_FAILURE() << "CO_ASSERT_TRUE failed: " << #cond;   \
    co_return;                                             \
  }                                                        \
  static_assert(true, "")

#define CO_ASSERT_FALSE(cond) CO_ASSERT_TRUE(!(cond))

#define CO_ASSERT_OK(expr)                                        \
  if (const auto& co_assert_res_ = (expr); !co_assert_res_.ok()) { \
    ADD_FAILURE() << "CO_ASSERT_OK failed: " << #expr << " -> "    \
                  << co_assert_res_.error().to_string();           \
    co_return;                                                     \
  }                                                                \
  static_assert(true, "")
