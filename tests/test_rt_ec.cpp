// Erasure-coded storage over ShardedStore (rt/ec.hpp, DESIGN.md §14):
// sibling layout, roundtrips, reconstruction after evictions, sweep
// semantics, the RuntimeServer dispatch for EC tenants, and concurrent
// EC traffic (this file carries the `concurrency` ctest label so the
// TSan pass covers the multi-sibling composite ops).
#include "rt/ec.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "rt/server.hpp"
#include "rt/sharded_store.hpp"
#include "rt/tenant_registry.hpp"

namespace memfss::rt {
namespace {

kvstore::Blob payload_blob(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = std::uint8_t(rng.next_u64());
  return kvstore::Blob::materialized(std::move(v));
}

kvstore::Blob bytes_blob(std::string_view s) {
  return kvstore::Blob::materialized(
      std::vector<std::uint8_t>(s.begin(), s.end()));
}

ShardedStore::Options store_opts(Bytes capacity = 64 * units::MiB) {
  return {8, capacity, "tok"};
}

// --- manifest codec ---------------------------------------------------------

TEST(RtEcManifest, RoundtripsAllFields) {
  const ec::Manifest mf{8, 3, 123456789, 0xfeedfacecafebeefull};
  const auto blob = ec::encode_manifest(mf);
  const auto back = ec::parse_manifest(blob.bytes());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->k, 8u);
  EXPECT_EQ(back->m, 3u);
  EXPECT_EQ(back->len, 123456789u);
  EXPECT_EQ(back->checksum, 0xfeedfacecafebeefull);
}

TEST(RtEcManifest, RejectsGarbage) {
  EXPECT_FALSE(ec::parse_manifest({}).has_value());
  std::vector<std::uint8_t> junk(24, 0xAB);
  EXPECT_FALSE(ec::parse_manifest(junk).has_value());
  auto good = ec::encode_manifest({4, 2, 10, 1});
  std::vector<std::uint8_t> short_buf(good.bytes().begin(),
                                      good.bytes().end() - 1);
  EXPECT_FALSE(ec::parse_manifest(short_buf).has_value());
  // k == 0 is structurally invalid even with good magic.
  auto zero_k = ec::encode_manifest({0, 2, 10, 1});
  EXPECT_FALSE(ec::parse_manifest(zero_k.bytes()).has_value());
}

TEST(RtEcManifest, SiblingKeyNamesAreDistinct) {
  EXPECT_NE(ec::shard_key("k", 0), ec::shard_key("k", 1));
  EXPECT_NE(ec::shard_key("k", 0), ec::manifest_key("k"));
  EXPECT_NE(ec::manifest_key("k"), ec::manifest_key("k2"));
  // Sibling names of different logical keys never collide.
  EXPECT_NE(ec::shard_key("k", 12), ec::shard_key("k1", 2));
}

// --- put / get / del over the store -----------------------------------------

TEST(RtEc, PutGetRoundtripVariousSizes) {
  ShardedStore store(store_opts());
  const erasure::ReedSolomon rs(4, 2);
  for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                          std::size_t{4096}, std::size_t{100001}}) {
    const std::string key = "obj-" + std::to_string(len);
    const auto value = payload_blob(len, 7 + len);
    ASSERT_TRUE(ec::put(store, "tok", key, value, rs).ok()) << len;
    bool reconstructed = true;
    auto got = ec::get(store, "tok", key, nullptr, &reconstructed);
    ASSERT_TRUE(got.ok()) << len;
    EXPECT_EQ(got.value().bytes().size(), len);
    EXPECT_TRUE(std::equal(value.bytes().begin(), value.bytes().end(),
                           got.value().bytes().begin()))
        << len;
    EXPECT_FALSE(reconstructed) << len;  // nothing lost: fast path
  }
}

TEST(RtEc, StripeLayoutAndOverhead) {
  ShardedStore store(store_opts());
  const erasure::ReedSolomon rs(4, 2);
  const std::size_t len = 40000;
  ASSERT_TRUE(ec::put(store, "tok", "obj", payload_blob(len, 11), rs).ok());
  // Exactly k+m shard siblings plus the manifest; no plain key.
  EXPECT_EQ(store.key_count(), 7u);
  EXPECT_FALSE(store.exists("tok", "obj").value());
  EXPECT_TRUE(store.exists("tok", ec::manifest_key("obj")).value());
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_TRUE(store.exists("tok", ec::shard_key("obj", i)).value()) << i;
  EXPECT_FALSE(store.exists("tok", ec::shard_key("obj", 6)).value());
  // Stored payload bytes are len * (k+m)/k: the m/k EC overhead the
  // paper trades against full replication.
  std::size_t shard_bytes = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    auto s = store.get("tok", ec::shard_key("obj", i));
    ASSERT_TRUE(s.ok()) << i;
    shard_bytes += s.value().bytes().size();
  }
  EXPECT_EQ(shard_bytes, len * 6 / 4);
}

TEST(RtEc, GetReconstructsAfterDataShardEviction) {
  ShardedStore store(store_opts());
  const erasure::ReedSolomon rs(4, 2);
  const auto value = payload_blob(9999, 13);
  ASSERT_TRUE(ec::put(store, "tok", "obj", value, rs).ok());
  // Evict two data siblings -- within the parity budget.
  ASSERT_TRUE(store.evict(ec::shard_key("obj", 0)).has_value());
  ASSERT_TRUE(store.evict(ec::shard_key("obj", 2)).has_value());
  bool reconstructed = false;
  auto got = ec::get(store, "tok", "obj", nullptr, &reconstructed);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(reconstructed);
  EXPECT_TRUE(std::equal(value.bytes().begin(), value.bytes().end(),
                         got.value().bytes().begin()));
}

TEST(RtEc, GetSurvivesParityEvictionWithoutReconstruct) {
  ShardedStore store(store_opts());
  const erasure::ReedSolomon rs(4, 2);
  const auto value = payload_blob(5000, 17);
  ASSERT_TRUE(ec::put(store, "tok", "obj", value, rs).ok());
  ASSERT_TRUE(store.evict(ec::shard_key("obj", 4)).has_value());
  ASSERT_TRUE(store.evict(ec::shard_key("obj", 5)).has_value());
  bool reconstructed = true;
  auto got = ec::get(store, "tok", "obj", nullptr, &reconstructed);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(reconstructed);  // all data siblings intact: fast path
}

TEST(RtEc, GetFailsBeyondParityBudget) {
  ShardedStore store(store_opts());
  const erasure::ReedSolomon rs(4, 2);
  ASSERT_TRUE(ec::put(store, "tok", "obj", payload_blob(5000, 19), rs).ok());
  for (std::size_t i : {0, 1, 2})  // 3 losses > m = 2
    ASSERT_TRUE(store.evict(ec::shard_key("obj", i)).has_value());
  auto got = ec::get(store, "tok", "obj");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.code(), Errc::corruption);
}

TEST(RtEc, DelSweepsEverySiblingAndAccounting) {
  TenantRegistry tenants;
  auto opts = store_opts();
  opts.tenants = &tenants;
  ShardedStore store(opts);
  const erasure::ReedSolomon rs(4, 2);
  ASSERT_TRUE(ec::put(store, "tok", "obj", payload_blob(8192, 23), rs,
                      nullptr, 0).ok());
  EXPECT_GT(store.used(), 0u);
  EXPECT_GT(tenants.memory_used(0), 0u);
  std::uint64_t seq = 0;
  ASSERT_TRUE(ec::del(store, "tok", "obj", &seq).ok());
  EXPECT_GT(seq, 0u);
  EXPECT_EQ(store.key_count(), 0u);
  EXPECT_EQ(store.used(), 0u);
  EXPECT_EQ(tenants.memory_used(0), 0u);
  // Second delete: nothing left.
  EXPECT_EQ(ec::del(store, "tok", "obj").code(), Errc::not_found);
}

TEST(RtEc, ExistsSeesStripesAndPlainKeys) {
  ShardedStore store(store_opts());
  const erasure::ReedSolomon rs(4, 2);
  EXPECT_FALSE(ec::exists(store, "tok", "obj").value());
  ASSERT_TRUE(ec::put(store, "tok", "obj", payload_blob(100, 29), rs).ok());
  EXPECT_TRUE(ec::exists(store, "tok", "obj").value());
  ASSERT_TRUE(store.put("tok", "plain", bytes_blob("v")).ok());
  EXPECT_TRUE(ec::exists(store, "tok", "plain").value());
}

TEST(RtEc, GetFallsBackToPlainPrePolicyKeys) {
  // Keys written before the tenant's policy was enabled have no
  // manifest; get must serve them verbatim.
  ShardedStore store(store_opts());
  ASSERT_TRUE(store.put("tok", "old", bytes_blob("legacy-value")).ok());
  auto got = ec::get(store, "tok", "old");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), bytes_blob("legacy-value"));
}

TEST(RtEc, OverwriteReplacesStripeAndSweepsWiderStale) {
  ShardedStore store(store_opts());
  const erasure::ReedSolomon wide(6, 3), narrow(2, 1);
  ASSERT_TRUE(ec::put(store, "tok", "obj", payload_blob(6000, 31), wide).ok());
  EXPECT_EQ(store.key_count(), 10u);  // 9 shards + manifest
  const auto value = payload_blob(500, 37);
  ASSERT_TRUE(ec::put(store, "tok", "obj", value, narrow).ok());
  // Old stripe's siblings beyond the new width are swept.
  EXPECT_EQ(store.key_count(), 4u);  // 3 shards + manifest
  for (std::size_t i = 3; i < 9; ++i)
    EXPECT_FALSE(store.exists("tok", ec::shard_key("obj", i)).value()) << i;
  auto got = ec::get(store, "tok", "obj");
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(std::equal(value.bytes().begin(), value.bytes().end(),
                         got.value().bytes().begin()));
}

TEST(RtEc, PutReplacesPlainValueUnderSameKey) {
  ShardedStore store(store_opts());
  const erasure::ReedSolomon rs(4, 2);
  ASSERT_TRUE(store.put("tok", "obj", bytes_blob("plain-old")).ok());
  const auto value = payload_blob(1000, 41);
  ASSERT_TRUE(ec::put(store, "tok", "obj", value, rs).ok());
  EXPECT_FALSE(store.exists("tok", "obj").value());  // plain copy gone
  auto got = ec::get(store, "tok", "obj");
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(std::equal(value.bytes().begin(), value.bytes().end(),
                         got.value().bytes().begin()));
}

TEST(RtEc, FailedPutRollsBackPartialStripe) {
  // Capacity fits only part of the stripe: the put must fail with
  // out_of_memory and leave no sibling behind.
  const erasure::ReedSolomon rs(4, 2);
  const std::size_t len = 64 * 1024;
  ShardedStore store(store_opts(3 * rs.shard_size(len)));
  auto st = ec::put(store, "tok", "obj", payload_blob(len, 43), rs);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Errc::out_of_memory);
  EXPECT_EQ(store.key_count(), 0u);
  EXPECT_EQ(store.used(), 0u);
  EXPECT_FALSE(ec::exists(store, "tok", "obj").value());
}

TEST(RtEc, BadTokenIsPermissionEverywhere) {
  ShardedStore store(store_opts());
  const erasure::ReedSolomon rs(4, 2);
  ASSERT_TRUE(ec::put(store, "tok", "obj", payload_blob(100, 47), rs).ok());
  EXPECT_EQ(ec::put(store, "bad", "obj", payload_blob(100, 47), rs).code(),
            Errc::permission);
  EXPECT_EQ(ec::get(store, "bad", "obj").code(), Errc::permission);
  EXPECT_EQ(ec::del(store, "bad", "obj").code(), Errc::permission);
  EXPECT_EQ(ec::exists(store, "bad", "obj").code(), Errc::permission);
}

// --- RuntimeServer dispatch -------------------------------------------------

TEST(RtEc, ServerRoutesEcTenantThroughStripes) {
  TenantRegistry tenants;
  TenantConfig cfg;
  cfg.name = "ec-tenant";
  cfg.rs = {4, 2};
  const auto id = tenants.register_tenant(cfg);
  ASSERT_TRUE(id.ok());

  auto opts = store_opts();
  opts.tenants = &tenants;
  ShardedStore store(opts);
  RuntimeServer::Options sopt;
  sopt.threads = 2;
  sopt.tenants = &tenants;
  RuntimeServer server(store, sopt);

  const auto value = payload_blob(10000, 53);
  Op put{Op::Type::put, "obj", value, id.value()};
  auto pr = server.submit("tok", std::move(put)).get();
  ASSERT_EQ(pr.code, Errc::ok);
  ASSERT_TRUE(pr.seq.has_value());

  // The stripe, not the plain key, landed in the store.
  EXPECT_FALSE(store.exists("tok", "obj").value());
  EXPECT_TRUE(store.exists("tok", ec::manifest_key("obj")).value());

  // Knock out a data sibling; the EC get still serves the bytes.
  ASSERT_TRUE(store.evict(ec::shard_key("obj", 1)).has_value());
  auto gr = server.submit("tok", Op{Op::Type::get, "obj", {}, id.value()})
                .get();
  ASSERT_EQ(gr.code, Errc::ok);
  EXPECT_TRUE(std::equal(value.bytes().begin(), value.bytes().end(),
                         gr.value.bytes().begin()));

  auto er = server.submit("tok", Op{Op::Type::exists, "obj", {}, id.value()})
                .get();
  EXPECT_EQ(er.code, Errc::ok);
  EXPECT_TRUE(er.found);

  auto dr = server.submit("tok", Op{Op::Type::del, "obj", {}, id.value()})
                .get();
  EXPECT_EQ(dr.code, Errc::ok);
  EXPECT_EQ(store.key_count(), 0u);
}

TEST(RtEc, ServerGhostPutsBypassCoding) {
  // Ghost blobs carry no bytes to code; EC tenants store them plainly.
  TenantRegistry tenants;
  TenantConfig cfg;
  cfg.rs = {4, 2};
  const auto id = tenants.register_tenant(cfg);
  ASSERT_TRUE(id.ok());
  auto opts = store_opts();
  opts.tenants = &tenants;
  ShardedStore store(opts);
  RuntimeServer::Options sopt;
  sopt.tenants = &tenants;
  RuntimeServer server(store, sopt);

  auto pr = server
                .submit("tok", Op{Op::Type::put, "ghost",
                                  kvstore::Blob::ghost(4096, 9), id.value()})
                .get();
  ASSERT_EQ(pr.code, Errc::ok);
  EXPECT_TRUE(store.exists("tok", "ghost").value());
  EXPECT_FALSE(store.exists("tok", ec::manifest_key("ghost")).value());
}

TEST(RtEc, RegistryRejectsHalfOrOversizedPolicies) {
  TenantRegistry tenants;
  TenantConfig half;
  half.rs = {4, 0};
  EXPECT_EQ(tenants.register_tenant(half).code(), Errc::invalid_argument);
  half.rs = {0, 2};
  EXPECT_EQ(tenants.register_tenant(half).code(), Errc::invalid_argument);
  TenantConfig big;
  big.rs = {250, 6};  // k + m > 255
  EXPECT_EQ(tenants.register_tenant(big).code(), Errc::invalid_argument);
  TenantConfig ok;
  ok.rs = {4, 2};
  auto id = tenants.register_tenant(ok);
  ASSERT_TRUE(id.ok());
  EXPECT_NE(tenants.rs_coder(id.value()), nullptr);
  EXPECT_EQ(tenants.rs_coder(0), nullptr);  // default tenant stays plain
}

// --- concurrency (the TSan target) ------------------------------------------

TEST(RtEc, ConcurrentPutGetDelDistinctKeys) {
  // Distinct logical keys from many threads: composite ops interleave
  // across shards; every thread must read back exactly what it wrote.
  ShardedStore store(store_opts());
  const erasure::ReedSolomon rs(4, 2);
  constexpr int kThreads = 4, kKeysPerThread = 16;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kKeysPerThread; ++i) {
        const std::string key =
            "t" + std::to_string(t) + "-k" + std::to_string(i);
        const auto value = payload_blob(512 + 97 * i, 59 + t * 1000 + i);
        if (!ec::put(store, "tok", key, value, rs).ok()) {
          failures.fetch_add(1);
          continue;
        }
        auto got = ec::get(store, "tok", key);
        if (!got.ok() ||
            !std::equal(value.bytes().begin(), value.bytes().end(),
                        got.value().bytes().begin())) {
          failures.fetch_add(1);
          continue;
        }
        if (i % 2 == 0 && !ec::del(store, "tok", key).ok())
          failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  // Odd-indexed keys survive; all even ones were deleted.
  EXPECT_EQ(store.key_count(),
            std::size_t(kThreads) * (kKeysPerThread / 2) * 7);
}

TEST(RtEc, ConcurrentSameKeyReadersSeeCoherentGenerations) {
  // Writers overwrite one logical key while readers hammer it: every
  // successful read must return exactly one writer's generation, never
  // a torn mix (the manifest checksum is what enforces this).
  ShardedStore store(store_opts());
  const erasure::ReedSolomon rs(4, 2);
  constexpr std::size_t kLen = 2048;
  auto generation_value = [](int g) {
    std::vector<std::uint8_t> v(kLen, std::uint8_t(g));
    return kvstore::Blob::materialized(std::move(v));
  };
  ASSERT_TRUE(ec::put(store, "tok", "hot", generation_value(0), rs).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::thread writer([&] {
    for (int g = 1; g <= 60; ++g)
      (void)ec::put(store, "tok", "hot", generation_value(g % 250), rs);
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto got = ec::get(store, "tok", "hot");
        // Failed reads (torn race detected and retries exhausted) are
        // legal under concurrent overwrite; *mixed-generation bytes*
        // are not.
        if (!got.ok()) continue;
        const auto b = got.value().bytes();
        if (b.size() != kLen) {
          torn.fetch_add(1);
          continue;
        }
        for (std::size_t i = 1; i < b.size(); ++i) {
          if (b[i] != b[0]) {
            torn.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();
  EXPECT_EQ(torn.load(), 0);
}

TEST(RtEc, ConcurrentServerTrafficMixedTenants) {
  // EC tenant and plain tenant traffic through the full server stack at
  // once -- the TSan surface for the dispatch path.
  TenantRegistry tenants;
  TenantConfig cfg;
  cfg.name = "ec";
  cfg.rs = {3, 2};
  const auto ec_id = tenants.register_tenant(cfg);
  ASSERT_TRUE(ec_id.ok());
  auto opts = store_opts();
  opts.tenants = &tenants;
  ShardedStore store(opts);
  RuntimeServer::Options sopt;
  sopt.threads = 3;
  sopt.tenants = &tenants;
  RuntimeServer server(store, sopt);

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      const std::uint32_t tid = c % 2 == 0 ? ec_id.value() : 0;
      for (int i = 0; i < 24; ++i) {
        const std::string key =
            "c" + std::to_string(c) + "-" + std::to_string(i);
        const auto value = payload_blob(300 + i, 61 + c * 100 + i);
        auto pr =
            server.submit("tok", Op{Op::Type::put, key, value, tid}).get();
        if (pr.code != Errc::ok) {
          failures.fetch_add(1);
          continue;
        }
        auto gr = server.submit("tok", Op{Op::Type::get, key, {}, tid}).get();
        if (gr.code != Errc::ok ||
            !std::equal(value.bytes().begin(), value.bytes().end(),
                        gr.value.bytes().begin()))
          failures.fetch_add(1);
      }
    });
  }
  for (auto& th : clients) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace memfss::rt
