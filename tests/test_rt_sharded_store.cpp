#include "rt/sharded_store.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "hash/hashes.hpp"

namespace memfss::rt {
namespace {

kvstore::Blob bytes_blob(std::string_view s) {
  return kvstore::Blob::materialized(
      std::vector<std::uint8_t>(s.begin(), s.end()));
}

constexpr Bytes kOverhead = kvstore::Store::kPerKeyOverhead;

TEST(ShardedStore, ShardOfMatchesFnvDigest) {
  ShardedStore st({4, 1 << 20, ""});
  for (const auto* key : {"a", "stripe:0", "k1234", ""}) {
    EXPECT_EQ(st.shard_of(key), hash::key_digest(key) % 4) << key;
  }
}

TEST(ShardedStore, PutGetDelRoundtripAcrossShards) {
  ShardedStore st({8, 1 << 20, "tok"});
  std::set<std::size_t> shards_hit;
  for (int i = 0; i < 64; ++i) {
    const std::string key = "k" + std::to_string(i);
    shards_hit.insert(st.shard_of(key));
    ASSERT_TRUE(st.put("tok", key, bytes_blob("v" + std::to_string(i))).ok());
  }
  EXPECT_GT(shards_hit.size(), 1u);  // keys actually spread out
  EXPECT_EQ(st.key_count(), 64u);
  for (int i = 0; i < 64; ++i) {
    const std::string key = "k" + std::to_string(i);
    auto r = st.get("tok", key);
    ASSERT_TRUE(r.ok()) << key;
    EXPECT_EQ(r.value(), bytes_blob("v" + std::to_string(i)));
    ASSERT_TRUE(st.del("tok", key).ok());
  }
  EXPECT_EQ(st.key_count(), 0u);
  EXPECT_EQ(st.used(), 0u);
}

TEST(ShardedStore, AuthEnforcedPerOp) {
  ShardedStore st({2, 1 << 20, "tok"});
  EXPECT_EQ(st.put("bad", "k", bytes_blob("v")).code(), Errc::permission);
  EXPECT_TRUE(st.check_token("tok").ok());
  EXPECT_EQ(st.check_token("bad").code(), Errc::permission);
  ShardedStore open({2, 1 << 20, ""});
  EXPECT_TRUE(open.check_token("anything").ok());
}

TEST(ShardedStore, AggregateCapHeldAcrossShards) {
  // Cap fits exactly 4 values; per-shard caps never bind (they equal the
  // aggregate), so only the atomic gate can refuse the 5th.
  const Bytes val = 1024;
  ShardedStore st({4, 4 * (val + kOverhead), ""});
  int stored = 0;
  int i = 0;
  for (; stored < 4; ++i) {
    ASSERT_LT(i, 64) << "could not place 4 values";
    if (st.put("", "k" + std::to_string(i),
               kvstore::Blob::ghost(val, i)).ok())
      ++stored;
  }
  EXPECT_EQ(st.used(), st.capacity());
  EXPECT_EQ(st.put("", "overflow", kvstore::Blob::ghost(val, 99)).code(),
            Errc::out_of_memory);
  // Freeing one value on any shard re-admits one value on any other.
  ASSERT_TRUE(st.del("", "k0").ok());
  EXPECT_TRUE(st.put("", "overflow", kvstore::Blob::ghost(val, 99)).ok());
}

TEST(ShardedStore, OverwriteAdjustsAggregateBothWays) {
  ShardedStore st({2, 1 << 20, ""});
  ASSERT_TRUE(st.put("", "k", kvstore::Blob::ghost(1000, 1)).ok());
  EXPECT_EQ(st.used(), 1000 + kOverhead);
  ASSERT_TRUE(st.put("", "k", kvstore::Blob::ghost(4000, 2)).ok());  // grow
  EXPECT_EQ(st.used(), 4000 + kOverhead);
  ASSERT_TRUE(st.put("", "k", kvstore::Blob::ghost(500, 3)).ok());  // shrink
  EXPECT_EQ(st.used(), 500 + kOverhead);
}

TEST(ShardedStore, FailedPutReleasesReservation) {
  ShardedStore st({2, 1 << 20, "tok"});
  EXPECT_EQ(st.put("bad", "k", kvstore::Blob::ghost(1000, 1)).code(),
            Errc::permission);
  EXPECT_EQ(st.used(), 0u);
}

TEST(ShardedStore, CloseShardFailsOnlyThatShard) {
  ShardedStore st({4, 1 << 20, ""});
  // Find keys on two different shards.
  std::string on0, other;
  for (int i = 0; i < 64 && (on0.empty() || other.empty()); ++i) {
    const std::string key = "k" + std::to_string(i);
    if (st.shard_of(key) == 0) on0 = key;
    else other = key;
  }
  ASSERT_FALSE(on0.empty());
  ASSERT_FALSE(other.empty());
  st.close_shard(0);
  EXPECT_TRUE(st.shard_closed(0));
  EXPECT_EQ(st.put("", on0, bytes_blob("v")).code(), Errc::unavailable);
  EXPECT_TRUE(st.put("", other, bytes_blob("v")).ok());
}

TEST(ShardedStore, EvictReleasesAccounting) {
  ShardedStore st({2, 1 << 20, "tok"});
  ASSERT_TRUE(st.put("tok", "k", bytes_blob("value")).ok());
  const Bytes before = st.used();
  auto b = st.evict("k");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->size(), 5u);
  EXPECT_EQ(st.used(), before - (5 + kOverhead));
  EXPECT_FALSE(st.evict("k").has_value());
}

TEST(ShardedStore, ClearShardReleasesOnlyItsBytes) {
  ShardedStore st({2, 1 << 20, ""});
  for (int i = 0; i < 32; ++i)
    ASSERT_TRUE(st.put("", "k" + std::to_string(i),
                       kvstore::Blob::ghost(100, i)).ok());
  const Bytes s0 = st.shard_used(0);
  const Bytes s1 = st.shard_used(1);
  EXPECT_EQ(st.used(), s0 + s1);
  EXPECT_EQ(st.clear_shard(0), s0);
  EXPECT_EQ(st.used(), s1);
  EXPECT_EQ(st.shard_used(0), 0u);
  EXPECT_EQ(st.shard_used(1), s1);
}

TEST(ShardedStore, UsedEqualsSumOfShardsAndRecomputation) {
  ShardedStore st({4, 1 << 20, ""});
  for (int i = 0; i < 100; ++i)
    ASSERT_TRUE(st.put("", "k" + std::to_string(i),
                       kvstore::Blob::ghost(64 + i, i)).ok());
  for (int i = 0; i < 100; i += 3)
    ASSERT_TRUE(st.del("", "k" + std::to_string(i)).ok());
  Bytes sum = 0, recomputed = 0;
  for (std::size_t s = 0; s < st.shard_count(); ++s) {
    sum += st.shard_used(s);
    recomputed += st.shard_recomputed_used(s);
  }
  EXPECT_EQ(st.used(), sum);
  EXPECT_EQ(sum, recomputed);
}

TEST(ShardedStore, StatsAggregateOverShards) {
  ShardedStore st({4, 1 << 20, "tok"});
  ASSERT_TRUE(st.put("tok", "a", bytes_blob("1")).ok());
  ASSERT_TRUE(st.put("tok", "b", bytes_blob("2")).ok());
  (void)st.get("tok", "a");
  (void)st.get("tok", "missing");
  (void)st.del("tok", "b");
  const auto s = st.stats();
  EXPECT_EQ(s.puts, 2u);
  EXPECT_EQ(s.gets, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.dels, 1u);
}

// Two threads hammering disjoint keys on all shards: the atomic
// aggregate must equal the per-shard sum once both joined.
TEST(ShardedStore, ConcurrentPutsKeepAccountingConsistent) {
  ShardedStore st({4, 8 << 20, ""});
  auto writer = [&](int base) {
    for (int i = 0; i < 2000; ++i) {
      const std::string key = "t" + std::to_string(base) + ":" +
                              std::to_string(i % 97);
      (void)st.put("", key, kvstore::Blob::ghost(128, i));
      if (i % 7 == 0) (void)st.del("", key);
    }
  };
  std::thread a(writer, 0), b(writer, 1);
  a.join();
  b.join();
  Bytes sum = 0;
  for (std::size_t s = 0; s < st.shard_count(); ++s) sum += st.shard_used(s);
  EXPECT_EQ(st.used(), sum);
  EXPECT_LE(st.used(), st.capacity());
}

}  // namespace
}  // namespace memfss::rt
