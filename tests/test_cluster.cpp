#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include "cluster/monitor.hpp"
#include "cluster/reservation.hpp"

namespace memfss::cluster {
namespace {

TEST(Cluster, NodesGetDefaultSpec) {
  sim::Simulator sim;
  Cluster c(sim, 4);
  EXPECT_EQ(c.node_count(), 4u);
  EXPECT_EQ(c.node(0).spec().cores, 16.0);
  EXPECT_EQ(c.node(3).memory().capacity(), 64 * units::GiB);
  EXPECT_EQ(c.fabric().node_count(), 4u);
  EXPECT_EQ(c.all_nodes().size(), 4u);
}

TEST(Reservation, ReserveAndRelease) {
  sim::Simulator sim;
  ReservationSystem rs(sim, 10);
  auto r = rs.reserve("alice", 4);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().nodes.size(), 4u);
  EXPECT_EQ(rs.free_nodes(), 6u);
  sim.schedule(7200.0, [] {});
  sim.run();  // two hours pass
  const double hours = rs.release(r.value());
  EXPECT_NEAR(hours, 8.0, 1e-9);  // 4 nodes x 2 h
  EXPECT_EQ(rs.free_nodes(), 10u);
  EXPECT_NEAR(rs.consumed_node_hours("alice"), 8.0, 1e-9);
}

TEST(Reservation, RejectsOversizedRequest) {
  sim::Simulator sim;
  ReservationSystem rs(sim, 5);
  auto a = rs.reserve("a", 3);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(rs.reserve("b", 3).code(), Errc::unavailable);
  EXPECT_EQ(rs.reserve("b", 0).code(), Errc::invalid_argument);
}

TEST(Reservation, NodesAreExclusive) {
  sim::Simulator sim;
  ReservationSystem rs(sim, 6);
  auto a = rs.reserve("a", 3);
  auto b = rs.reserve("b", 3);
  ASSERT_TRUE(a.ok() && b.ok());
  for (NodeId n : a.value().nodes)
    for (NodeId m : b.value().nodes) EXPECT_NE(n, m);
}

TEST(ScavengeQueue, OfferLifecycle) {
  sim::Simulator sim;
  ReservationSystem rs(sim, 4);
  auto r = rs.reserve("tenant", 2);
  ASSERT_TRUE(r.ok());
  const NodeId node = r.value().nodes[0];

  ASSERT_TRUE(rs.register_offer(r.value(), node, 10 * units::GiB, 5e8).ok());
  EXPECT_EQ(rs.register_offer(r.value(), node, 1, 1).code(),
            Errc::already_exists);
  EXPECT_EQ(rs.offers().size(), 1u);

  auto claimed = rs.claim_offer(node);
  ASSERT_TRUE(claimed.ok());
  EXPECT_EQ(claimed.value().memory_cap, 10 * units::GiB);
  EXPECT_EQ(claimed.value().tenant, "tenant");
  EXPECT_TRUE(rs.offers().empty());
  EXPECT_EQ(rs.claim_offer(node).code(), Errc::not_found);
}

TEST(ScavengeQueue, OfferRequiresOwnership) {
  sim::Simulator sim;
  ReservationSystem rs(sim, 4);
  auto a = rs.reserve("a", 2);
  auto b = rs.reserve("b", 2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(
      rs.register_offer(a.value(), b.value().nodes[0], 1, 1).code(),
      Errc::permission);
}

TEST(ScavengeQueue, WithdrawRemovesOffer) {
  sim::Simulator sim;
  ReservationSystem rs(sim, 2);
  auto r = rs.reserve("t", 1);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(rs.register_offer(r.value(), r.value().nodes[0], 1, 1).ok());
  ASSERT_TRUE(rs.withdraw_offer(r.value().nodes[0]).ok());
  EXPECT_EQ(rs.withdraw_offer(r.value().nodes[0]).code(), Errc::not_found);
}

TEST(ScavengeQueue, OffersDieWithReservation) {
  sim::Simulator sim;
  ReservationSystem rs(sim, 2);
  auto r = rs.reserve("t", 1);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(rs.register_offer(r.value(), r.value().nodes[0], 1, 1).ok());
  rs.release(r.value());
  EXPECT_TRUE(rs.offers().empty());
}

TEST(VictimMonitor, FiresOnPressureViaScheduler) {
  sim::Simulator sim;
  sim::MemoryPool pool(100);
  int evicted = -1;
  VictimMonitor mon(sim, pool, 7, 0.8, [&](NodeId n) { evicted = int(n); });
  (void)pool.try_alloc(85);  // crosses 80%
  EXPECT_EQ(evicted, -1);    // handler is deferred to the event queue
  sim.run();
  EXPECT_EQ(evicted, 7);
  EXPECT_TRUE(mon.fired());
}

TEST(VictimMonitor, ManualDemand) {
  sim::Simulator sim;
  sim::MemoryPool pool(100);
  int count = 0;
  VictimMonitor mon(sim, pool, 3, 0.9, [&](NodeId) { ++count; });
  mon.demand_memory();
  sim.run();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(mon.fire_count(), 1u);
}

// The header promises the monitor re-arms when pressure recedes below the
// threshold: cross, free back under, cross again -- two firings, not one.
TEST(VictimMonitor, ReArmsAfterPressureRecedes) {
  sim::Simulator sim;
  sim::MemoryPool pool(100);
  int evictions = 0;
  VictimMonitor mon(sim, pool, 5, 0.8, [&](NodeId) { ++evictions; });

  ASSERT_TRUE(pool.try_alloc(85));  // first upward crossing
  sim.run();
  EXPECT_EQ(evictions, 1);
  EXPECT_EQ(mon.fire_count(), 1u);

  // Still above threshold: further allocations must NOT re-fire.
  ASSERT_TRUE(pool.try_alloc(5));
  sim.run();
  EXPECT_EQ(mon.fire_count(), 1u);

  // Recede below the threshold, then cross again.
  pool.free(50);  // used 40 < 80
  ASSERT_TRUE(pool.try_alloc(45));  // used 85: second crossing
  sim.run();
  EXPECT_EQ(evictions, 2);
  EXPECT_EQ(mon.fire_count(), 2u);
  EXPECT_TRUE(mon.fired());

  // Freeing down to exactly the threshold does not re-arm (< is strict).
  pool.free(5);  // used 80 == threshold
  pool.free(1);  // used 79 < 80: re-armed
  ASSERT_TRUE(pool.try_alloc(10));  // used 89: third crossing
  sim.run();
  EXPECT_EQ(mon.fire_count(), 3u);
}

}  // namespace
}  // namespace memfss::cluster
