// Multi-tenant QoS suite (DESIGN.md §12): token buckets, the tenant
// registry, deficit-weighted round-robin dispatch, the server's
// admission ladder (rate -> pressure -> lane), per-tenant memory
// accounting in the sharded store, drain-on-shutdown with queued
// multi-tenant ops, and a small end-to-end adversarial scenario.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "netio/client.hpp"
#include "rt/loadgen.hpp"
#include "rt/server.hpp"
#include "rt/tcp_server.hpp"
#include "rt/tenant_registry.hpp"
#include "rt/thread_pool.hpp"
#include "rt/token_bucket.hpp"

namespace memfss::rt {
namespace {

kvstore::Blob bytes_blob(std::string_view s) {
  return kvstore::Blob::materialized(
      std::vector<std::uint8_t>(s.begin(), s.end()));
}

kvstore::Blob sized_blob(std::size_t n) {
  return kvstore::Blob::materialized(std::vector<std::uint8_t>(n, 0xab));
}

// --- TokenBucket ----------------------------------------------------------

TEST(TokenBucket, TakesUpToBurstThenRefillsAtRate) {
  TokenBucket b(10.0, 5.0);  // 10 tokens/s, depth 5
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(b.try_take(0.0)) << i;
  EXPECT_FALSE(b.try_take(0.0));
  // One token refills every 0.1s.
  EXPECT_FALSE(b.try_take(0.05));
  EXPECT_TRUE(b.try_take(0.1));
  EXPECT_FALSE(b.try_take(0.1));
  // Idle long enough to refill past the burst: capped at 5, not 100.
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(b.try_take(10.0)) << i;
  EXPECT_FALSE(b.try_take(10.0));
}

TEST(TokenBucket, DelayUntilPredictsNextAdmission) {
  TokenBucket b(10.0, 1.0);
  EXPECT_DOUBLE_EQ(b.delay_until(0.0), 0.0);
  EXPECT_TRUE(b.try_take(0.0));
  const double d = b.delay_until(0.0);
  EXPECT_GT(d, 0.0);
  EXPECT_FALSE(b.try_take(d * 0.5));
  EXPECT_TRUE(b.try_take(d));
}

TEST(TokenBucket, ZeroRateIsUnlimited) {
  TokenBucket b(0.0, 0.0);
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(b.try_take(0.0));
  EXPECT_DOUBLE_EQ(b.delay_until(0.0, 1e9), 0.0);
}

TEST(TokenBucket, RequestPastBurstIsNeverCovered) {
  // The raw bucket refuses an n it can never hold; the *registry*
  // clamps oversized payloads to one full bucket (tested below) so
  // they drain it instead of being unadmittable forever.
  TokenBucket b(100.0, 10.0);
  EXPECT_FALSE(b.try_take(0.0, 1000.0));
  EXPECT_TRUE(b.try_take(0.0, 10.0));
  // delay_until clamps the same way: it quotes the refill horizon for
  // a full bucket, not infinity.
  const double d = b.delay_until(0.0, 1000.0);
  EXPECT_GT(d, 0.0);
  EXPECT_LE(d, 10.0 / 100.0 + 1e-9);
}

TEST(TenantRegistry, OversizedPayloadCostsOneFullBucket) {
  TenantRegistry reg;
  TenantConfig cfg;
  cfg.name = "t";
  cfg.bytes_per_s = 100.0;
  cfg.bytes_burst = 50.0;
  const auto id = reg.register_tenant(cfg).value();
  // A payload 20x the burst still gets admitted (costing the whole
  // bucket) rather than being rejected forever.
  EXPECT_EQ(reg.admit(id, 1000, 0.0).code, Errc::ok);
  const auto shed = reg.admit(id, 1, 0.0);
  EXPECT_EQ(shed.code, Errc::overloaded);
  EXPECT_GT(shed.retry_after_s, 0.0);
}

// --- TenantRegistry -------------------------------------------------------

TEST(TenantRegistry, DefaultTenantIsUnlimitedTopPriority) {
  TenantRegistry reg;
  ASSERT_TRUE(reg.valid(0));
  EXPECT_EQ(reg.name(0), "default");
  EXPECT_EQ(reg.priority(0), kTopPriority);
  for (int i = 0; i < 100; ++i)
    ASSERT_EQ(reg.admit(0, 1 << 20, 0.0).code, Errc::ok);
}

TEST(TenantRegistry, RegisterHandsOutDenseIdsAndRejectsOverflow) {
  TenantRegistry reg(3);  // default + 2
  auto a = reg.register_tenant({.name = "a"});
  auto b = reg.register_tenant({.name = "b"});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), 1u);
  EXPECT_EQ(b.value(), 2u);
  EXPECT_EQ(reg.register_tenant({.name = "c"}).code(),
            Errc::invalid_argument);
  EXPECT_FALSE(reg.valid(3));
  TenantConfig bad;
  bad.priority = kTopPriority + 1;
  EXPECT_EQ(TenantRegistry(8).register_tenant(bad).code(),
            Errc::invalid_argument);
}

TEST(TenantRegistry, AdmitShedsOverRateWithRetryHint) {
  TenantRegistry reg;
  TenantConfig cfg;
  cfg.name = "t";
  cfg.ops_per_s = 10.0;
  cfg.ops_burst = 2.0;
  const auto id = reg.register_tenant(cfg).value();
  EXPECT_EQ(reg.admit(id, 0, 0.0).code, Errc::ok);
  EXPECT_EQ(reg.admit(id, 0, 0.0).code, Errc::ok);
  const auto shed = reg.admit(id, 0, 0.0);
  EXPECT_EQ(shed.code, Errc::overloaded);
  EXPECT_GT(shed.retry_after_s, 0.0);
  // Waiting out the hint admits again.
  EXPECT_EQ(reg.admit(id, 0, shed.retry_after_s).code, Errc::ok);
}

TEST(TenantRegistry, AdmitChecksBothBucketsAndReportsWorstHint) {
  TenantRegistry reg;
  TenantConfig cfg;
  cfg.name = "t";
  cfg.ops_per_s = 1000.0;   // effectively unconstrained here
  cfg.bytes_per_s = 100.0;  // the binding bucket
  cfg.bytes_burst = 100.0;
  const auto id = reg.register_tenant(cfg).value();
  EXPECT_EQ(reg.admit(id, 100, 0.0).code, Errc::ok);
  const auto shed = reg.admit(id, 100, 0.0);
  EXPECT_EQ(shed.code, Errc::overloaded);
  // The byte bucket needs a full second to refill 100 tokens.
  EXPECT_GT(shed.retry_after_s, 0.5);
  // A failed admit must not consume the other bucket: the op tokens
  // taken so far are exactly the two admit attempts... only successful
  // ones. After the hint, both buckets cover the op again.
  EXPECT_EQ(reg.admit(id, 100, shed.retry_after_s).code, Errc::ok);
}

TEST(TenantRegistry, MemoryQuotaChargesAndReleases) {
  TenantRegistry reg;
  TenantConfig cfg;
  cfg.name = "t";
  cfg.memory_quota = 100;
  const auto id = reg.register_tenant(cfg).value();
  EXPECT_TRUE(reg.try_charge_memory(id, 60));
  EXPECT_FALSE(reg.try_charge_memory(id, 50));  // 110 > 100
  EXPECT_TRUE(reg.try_charge_memory(id, 40));
  EXPECT_EQ(reg.memory_used(id), 100u);
  reg.release_memory(id, 100);
  EXPECT_EQ(reg.memory_used(id), 0u);
  EXPECT_EQ(reg.total_resident(), 0u);
}

// --- ThreadPool: per-tenant lanes + DWRR ----------------------------------

TEST(ThreadPoolLanes, LaneCapacityIsolatesTenants) {
  ThreadPool pool({1, 64});
  std::atomic<bool> release{false};
  ASSERT_TRUE(pool.try_post(0, 1, 1, 2, [&] {
    while (!release.load()) std::this_thread::yield();
  }));
  // Wait until the blocker is executing (out of the queue).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (pool.queue_depth(0) > 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::yield();
  // Tenant 1's lane holds 2; the third post bounces...
  ASSERT_TRUE(pool.try_post(0, 1, 1, 2, [] {}));
  ASSERT_TRUE(pool.try_post(0, 1, 1, 2, [] {}));
  EXPECT_FALSE(pool.try_post(0, 1, 1, 2, [] {}));
  // ...while tenant 2 still gets in: the worker is nowhere near its
  // aggregate bound.
  EXPECT_TRUE(pool.try_post(0, 2, 1, 2, [] {}));
  EXPECT_EQ(pool.queue_depth(0, 1), 2u);
  EXPECT_EQ(pool.queue_depth(0, 2), 1u);
  release.store(true);
  pool.stop();
}

TEST(ThreadPoolLanes, DeficitRoundRobinHonorsWeights) {
  ThreadPool pool({1, 256});
  std::atomic<bool> release{false};
  ASSERT_TRUE(pool.try_post(0, 0, 1, 256, [&] {
    while (!release.load()) std::this_thread::yield();
  }));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (pool.queue_depth(0) > 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::yield();
  // Two contending lanes, weights 3:1, queued while the worker is
  // blocked; the drain order must interleave ~3 of A per 1 of B rather
  // than emptying whichever lane was posted first.
  std::mutex mu;
  std::vector<char> order;
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(pool.try_post(0, 1, 3, 64, [&] {
      std::lock_guard lk(mu);
      order.push_back('A');
    }));
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pool.try_post(0, 2, 1, 64, [&] {
      std::lock_guard lk(mu);
      order.push_back('B');
    }));
  }
  release.store(true);
  pool.stop();
  ASSERT_EQ(order.size(), 40u);
  // After any prefix, lane A (weight 3) has run at most 3 more than
  // 3x lane B's count + its quantum; concretely: the first 8 jobs must
  // already contain both tenants (FIFO would run 8 A's), and every
  // B must appear before 3*(its index+2) A's.
  std::size_t b_seen = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::size_t a_seen = i + 1 - (b_seen + (order[i] == 'B'));
    if (order[i] == 'B') ++b_seen;
    if (b_seen == 0) {
      ASSERT_LE(a_seen, 3u) << "lane B starved for " << i + 1 << " jobs";
    } else {
      ASSERT_LE(a_seen, 3 * (b_seen + 1))
          << "weight ratio violated at job " << i;
    }
  }
}

// --- RuntimeServer admission ladder ---------------------------------------

TEST(QosServer, RateLimitedTenantIsShedWithHintAndNoSeq) {
  ShardedStore store({4, 1 << 20, ""});
  TenantRegistry reg;
  TenantConfig cfg;
  cfg.name = "limited";
  cfg.ops_per_s = 1.0;
  cfg.ops_burst = 1.0;
  const auto id = reg.register_tenant(cfg).value();
  RuntimeServer::Options opt;
  opt.threads = 1;
  opt.queue_capacity = 64;
  opt.tenants = &reg;
  RuntimeServer server(store, opt);

  Op put{Op::Type::put, "k", bytes_blob("v"), id};
  auto first = server.submit("", std::move(put)).get();
  EXPECT_EQ(first.code, Errc::ok);

  Op put2{Op::Type::put, "k2", bytes_blob("v"), id};
  auto shed = server.submit("", std::move(put2)).get();
  EXPECT_EQ(shed.code, Errc::overloaded);
  EXPECT_GT(shed.retry_after_s, 0.0);
  EXPECT_FALSE(shed.seq.has_value());
  EXPECT_EQ(server.metrics().counter_value("rt.tenant.limited.overloaded"),
            1u);
}

// The same shed observed over the TCP serving path (DESIGN.md §13):
// the OVERLOADED frame carries the Errc and a nonzero retry-after hint
// in microseconds -- the QoS contract is not an in-process artifact.
TEST(QosServer, RateLimitShedSurvivesTheWire) {
  ShardedStore store({4, 1 << 20, ""});
  TenantRegistry reg;
  TenantConfig cfg;
  cfg.name = "limited";
  cfg.ops_per_s = 1.0;
  cfg.ops_burst = 1.0;
  const auto id = reg.register_tenant(cfg).value();
  RuntimeServer::Options opt;
  opt.threads = 1;
  opt.queue_capacity = 64;
  opt.tenants = &reg;
  RuntimeServer server(store, opt);
  TcpServer tcp(server, {});

  netio::NetClient c;
  ASSERT_TRUE(c.connect(tcp.port()).ok());
  ASSERT_TRUE(c.set_recv_timeout(10.0).ok());

  ASSERT_TRUE(c.send(netio::NetClient::make_put(1, id, "k", {1})).ok());
  auto first = c.recv();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().status, static_cast<std::uint8_t>(Errc::ok));

  ASSERT_TRUE(c.send(netio::NetClient::make_put(2, id, "k2", {1})).ok());
  auto shed = c.recv();
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed.value().status,
            static_cast<std::uint8_t>(Errc::overloaded));
  EXPECT_GT(shed.value().retry_after_us, 0u);
  EXPECT_FALSE(shed.value().flags & netio::kFlagHasSeq);
  EXPECT_EQ(server.metrics().counter_value("rt.tenant.limited.overloaded"),
            1u);
}

TEST(QosServer, PressureShedsLowPriorityNeverTop) {
  ShardedStore store({1, 1 << 20, ""});
  TenantRegistry reg;
  TenantConfig low;
  low.name = "low";
  low.priority = 0;
  TenantConfig top;
  top.name = "top";
  top.priority = kTopPriority;
  const auto low_id = reg.register_tenant(low).value();
  const auto top_id = reg.register_tenant(top).value();

  RuntimeServer::Options opt;
  opt.threads = 1;
  opt.queue_capacity = 16;
  opt.service_time = std::chrono::milliseconds(5);
  opt.tenants = &reg;
  opt.degrade_at = 2.0;  // isolate the shed gate from degradation
  opt.shed_at = 0.25;    // 4 queued ops put the worker in the shed zone
  RuntimeServer server(store, opt);

  // Fill the single worker's queue with default-tenant ops (top
  // priority: never shed) to push occupancy past shed_at.
  std::vector<std::future<OpResult>> fill;
  for (int i = 0; i < 12; ++i)
    fill.push_back(server.submit("", {Op::Type::get, "k", {}, 0}));

  // With the queue deep, a best-effort tenant is shed by policy while a
  // top-priority tenant still gets through.
  std::size_t low_shed = 0, top_overloaded = 0;
  for (int i = 0; i < 8; ++i) {
    auto r_low = server.submit("", {Op::Type::get, "k", {}, low_id});
    auto r_top = server.submit("", {Op::Type::get, "k", {}, top_id});
    const auto rl = r_low.get();
    const auto rt = r_top.get();
    if (rl.code == Errc::overloaded) {
      ++low_shed;
      EXPECT_GT(rl.retry_after_s, 0.0);
    }
    if (rt.code == Errc::overloaded) ++top_overloaded;
  }
  for (auto& f : fill) f.get();
  EXPECT_GT(low_shed, 0u);
  EXPECT_EQ(top_overloaded, 0u);  // kTopPriority is never pressure-shed
}

TEST(QosServer, DegradedPathSkipsServiceTimeUnderLoad) {
  ShardedStore store({1, 1 << 20, ""});
  RuntimeServer::Options opt;
  opt.threads = 1;
  opt.queue_capacity = 64;
  opt.service_time = std::chrono::milliseconds(20);
  opt.degrade_at = 0.05;  // degrade almost immediately
  opt.shed_at = 2.0;      // never shed
  RuntimeServer server(store, opt);
  // 32 ops at 20ms each would take 640ms; with the cheap path kicking
  // in after the first few queued ops the batch finishes far faster.
  std::vector<Op> ops;
  for (int i = 0; i < 32; ++i)
    ops.push_back({Op::Type::get, "k" + std::to_string(i), {}, 0});
  const auto t0 = std::chrono::steady_clock::now();
  const auto rs = server.run_batch("", std::move(ops));
  const auto wall = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - t0).count();
  for (const auto& r : rs) EXPECT_EQ(r.code, Errc::not_found);
  EXPECT_LT(wall, 0.5);
  EXPECT_GT(server.metrics().counter_value("rt.ops.degraded"), 0u);
}

TEST(QosServer, InvalidTenantFailsFast) {
  ShardedStore store({1, 1 << 20, ""});
  RuntimeServer server(store, {1, 8, {}});
  auto r = server.submit("", {Op::Type::get, "k", {}, 77}).get();
  EXPECT_EQ(r.code, Errc::invalid_argument);
  EXPECT_FALSE(r.seq.has_value());
}

// --- Per-tenant memory accounting in ShardedStore -------------------------

TEST(QosAccounting, QuotaBindsPerTenantAndReleasesOnDelete) {
  TenantRegistry reg;
  TenantConfig cfg;
  cfg.name = "boxed";
  cfg.memory_quota = 3 * (64 + kvstore::Store::kPerKeyOverhead);
  const auto id = reg.register_tenant(cfg).value();
  ShardedStore store({2, 1 << 20, "", &reg});

  for (int i = 0; i < 3; ++i)
    ASSERT_TRUE(store.put("", "k" + std::to_string(i), sized_blob(64),
                          nullptr, id).ok());
  auto st = store.put("", "k3", sized_blob(64), nullptr, id);
  EXPECT_EQ(st.code(), Errc::out_of_memory);  // quota, not aggregate
  EXPECT_EQ(reg.memory_used(id), store.used());

  // Deleting releases the recorded owner's bytes; the quota frees up.
  ASSERT_TRUE(store.del("", "k0").ok());
  EXPECT_TRUE(store.put("", "k3", sized_blob(64), nullptr, id).ok());
  EXPECT_EQ(reg.memory_used(id), store.used());
  EXPECT_EQ(reg.total_resident(), store.used());
}

TEST(QosAccounting, CrossTenantOverwriteTransfersOwnership) {
  TenantRegistry reg;
  const auto a = reg.register_tenant({.name = "a"}).value();
  const auto b = reg.register_tenant({.name = "b"}).value();
  ShardedStore store({1, 1 << 20, "", &reg});

  ASSERT_TRUE(store.put("", "k", sized_blob(100), nullptr, a).ok());
  const Bytes held_a = reg.memory_used(a);
  EXPECT_GT(held_a, 0u);
  // Tenant b overwrites the key: a's bytes are released, b is charged.
  ASSERT_TRUE(store.put("", "k", sized_blob(200), nullptr, b).ok());
  EXPECT_EQ(reg.memory_used(a), 0u);
  EXPECT_EQ(reg.memory_used(b), store.used());
  // Deleting releases to the *current* owner.
  ASSERT_TRUE(store.del("", "k").ok());
  EXPECT_EQ(reg.memory_used(b), 0u);
  EXPECT_EQ(store.used(), 0u);
}

TEST(QosAccounting, SameOwnerOverwriteChargesOnlyGrowth) {
  TenantRegistry reg;
  TenantConfig cfg;
  cfg.name = "t";
  cfg.memory_quota = 150 + kvstore::Store::kPerKeyOverhead;
  const auto id = reg.register_tenant(cfg).value();
  ShardedStore store({1, 1 << 20, "", &reg});

  ASSERT_TRUE(store.put("", "k", sized_blob(100), nullptr, id).ok());
  // Overwriting 100 -> 140 charges the 40-byte growth, not a fresh 140
  // (which would exceed the quota).
  ASSERT_TRUE(store.put("", "k", sized_blob(140), nullptr, id).ok());
  EXPECT_EQ(reg.memory_used(id), store.used());
  // Shrinking releases the slack.
  ASSERT_TRUE(store.put("", "k", sized_blob(10), nullptr, id).ok());
  EXPECT_EQ(reg.memory_used(id), store.used());
  EXPECT_EQ(store.used(), 10 + kvstore::Store::kPerKeyOverhead);
}

TEST(QosAccounting, ConcurrentMixedTenantsSumToAggregateAtQuiesce) {
  TenantRegistry reg;
  std::vector<std::uint32_t> ids;
  for (int t = 0; t < 4; ++t) {
    TenantConfig cfg;
    cfg.name = "t" + std::to_string(t);
    cfg.memory_quota = 256 * 1024;
    ids.push_back(reg.register_tenant(cfg).value());
  }
  ShardedStore store({8, 1 << 20, "", &reg});

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      const auto id = ids[t];
      for (int i = 0; i < 400; ++i) {
        const std::string key = "t" + std::to_string(t % 2) +  // shared keys
                                ":k" + std::to_string(i % 37);
        if (i % 5 == 4) {
          store.del("", key);
        } else {
          store.put("", key, sized_blob(16 + (i % 64)), nullptr, id);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  Bytes shard_sum = 0;
  for (std::size_t s = 0; s < store.shard_count(); ++s)
    shard_sum += store.shard_recomputed_used(s);
  EXPECT_EQ(store.used(), shard_sum);
  EXPECT_EQ(reg.total_resident(), store.used());
  EXPECT_LE(store.used(), store.capacity());
}

// --- Shutdown with queued multi-tenant ops --------------------------------

TEST(QosShutdown, QueuedOpsFromEveryTenantResolveOnShutdown) {
  TenantRegistry reg;
  std::vector<std::uint32_t> ids{0};
  for (int t = 0; t < 3; ++t) {
    TenantConfig cfg;
    cfg.name = "t" + std::to_string(t);
    cfg.weight = static_cast<std::uint32_t>(t + 1);
    ids.push_back(reg.register_tenant(cfg).value());
  }
  ShardedStore store({4, 1 << 20, ""});
  RuntimeServer::Options opt;
  opt.threads = 2;
  opt.queue_capacity = 512;
  opt.service_time = std::chrono::microseconds(200);
  opt.tenants = &reg;
  RuntimeServer server(store, opt);

  // Queue a pile of ops across all tenants, then shut down while most
  // are still pending: every future must still resolve (drain
  // semantics), with every admitted op executed, none lost.
  std::vector<std::future<OpResult>> futs;
  for (int i = 0; i < 200; ++i) {
    Op op;
    op.type = i % 3 == 0 ? Op::Type::put : Op::Type::get;
    op.key = "k" + std::to_string(i % 17);
    if (op.type == Op::Type::put) op.value = bytes_blob("v");
    op.tenant = ids[i % ids.size()];
    futs.push_back(server.submit("", std::move(op)));
  }
  server.shutdown();

  std::size_t executed = 0, shed = 0;
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
              std::future_status::ready);
    const auto r = f.get();
    switch (r.code) {
      case Errc::ok:
      case Errc::not_found:
        ++executed;
        EXPECT_TRUE(r.seq.has_value());
        break;
      case Errc::rejected:
      case Errc::overloaded:
        ++shed;
        EXPECT_FALSE(r.seq.has_value());
        break;
      default:
        FAIL() << "unexpected code " << errc_name(r.code);
    }
  }
  EXPECT_EQ(executed + shed, futs.size());
  EXPECT_GT(executed, 0u);
  // Post-shutdown submissions are rejected, not lost.
  auto late = server.submit("", {Op::Type::get, "k", {}, 0}).get();
  EXPECT_EQ(late.code, Errc::rejected);
}

// --- End-to-end adversarial scenario (small) ------------------------------

TEST(QosScenario, AbuserIsShedAndAccountingHolds) {
  QosOptions opt = default_qos_options(2, 7);
  // Shrink to test size: a few hundred ops per tenant.
  for (auto& t : opt.tenants) {
    t.ops_per_thread = t.abusive ? 400 : 150;
    if (!t.abusive) t.pace_us = 300;
  }
  opt.service_time_us = 100;
  const auto run = run_qos_scenario(opt);
  EXPECT_TRUE(run.accounting_ok) << run.accounting_msg;
  ASSERT_EQ(run.tenants.size(), opt.tenants.size());
  for (std::size_t i = 0; i < run.tenants.size(); ++i) {
    const auto& tr = run.tenants[i];
    EXPECT_EQ(tr.submitted, tr.ok + tr.not_found + tr.rejected +
                                tr.overloaded + tr.errors)
        << tr.name;
    EXPECT_EQ(tr.errors, 0u) << tr.name;
    EXPECT_EQ(static_cast<std::uint64_t>(tr.latency.count),
              tr.ok + tr.not_found)
        << tr.name;  // shed ops stay out of the histogram
  }
  // The abuser offered far past its ops/s bucket: most of its traffic
  // is policy-shed with hints, not queue-full noise.
  const auto& abuser = run.tenants.back();
  EXPECT_GT(abuser.overloaded, abuser.submitted / 2) << abuser.name;
  EXPECT_GT(abuser.retry_after_hints, 0u);
  EXPECT_GE(abuser.overloaded, abuser.rejected);
  // Small tenants ran under quota: nothing shed by rate.
  for (std::size_t i = 0; i + 1 < run.tenants.size(); ++i)
    EXPECT_EQ(run.tenants[i].errors, 0u);
}

}  // namespace
}  // namespace memfss::rt
