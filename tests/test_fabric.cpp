#include "net/fabric.hpp"

#include <gtest/gtest.h>

namespace memfss::net {
namespace {

NicSpec test_nic() {
  NicSpec n;
  n.up = 100.0;  // small round numbers: timing math is exact
  n.down = 100.0;
  n.latency = 0.1;
  return n;
}

TEST(Fabric, SingleTransferTiming) {
  sim::Simulator sim;
  Fabric fab(sim, 4, test_nic());
  SimTime done = -1;
  sim.spawn([](sim::Simulator& s, Fabric& f, SimTime& d) -> sim::Task<> {
    co_await f.transfer(0, 1, 1000);  // 0.1 latency + 1000/100 = 10.1
    d = s.now();
  }(sim, fab, done));
  sim.run();
  EXPECT_NEAR(done, 10.1, 1e-9);
  EXPECT_NEAR(fab.total_bytes_moved(), 1000.0, 1e-9);
}

TEST(Fabric, LoopbackIsLatencyOnly) {
  sim::Simulator sim;
  Fabric fab(sim, 2, test_nic());
  SimTime done = -1;
  sim.spawn([](sim::Simulator& s, Fabric& f, SimTime& d) -> sim::Task<> {
    co_await f.transfer(1, 1, 1000000);
    d = s.now();
  }(sim, fab, done));
  sim.run();
  EXPECT_NEAR(done, 0.1, 1e-9);
}

TEST(Fabric, SharedDownlinkSplitsFairly) {
  sim::Simulator sim;
  Fabric fab(sim, 3, test_nic());
  SimTime d1 = -1, d2 = -1;
  auto xfer = [](sim::Simulator& s, Fabric& f, NodeId src,
                 SimTime& d) -> sim::Task<> {
    co_await f.transfer(src, 2, 500);  // both into node 2
    d = s.now();
  };
  sim.spawn(xfer(sim, fab, 0, d1));
  sim.spawn(xfer(sim, fab, 1, d2));
  sim.run();
  // Each gets 50/s on the shared downlink: 0.1 + 10s.
  EXPECT_NEAR(d1, 10.1, 1e-6);
  EXPECT_NEAR(d2, 10.1, 1e-6);
}

TEST(Fabric, DistinctPathsDoNotInterfere) {
  sim::Simulator sim;
  Fabric fab(sim, 4, test_nic());
  SimTime d1 = -1, d2 = -1;
  sim.spawn([](sim::Simulator& s, Fabric& f, SimTime& d) -> sim::Task<> {
    co_await f.transfer(0, 1, 1000);
    d = s.now();
  }(sim, fab, d1));
  sim.spawn([](sim::Simulator& s, Fabric& f, SimTime& d) -> sim::Task<> {
    co_await f.transfer(2, 3, 1000);
    d = s.now();
  }(sim, fab, d2));
  sim.run();
  EXPECT_NEAR(d1, 10.1, 1e-6);
  EXPECT_NEAR(d2, 10.1, 1e-6);
}

TEST(Fabric, FlowCapLimitsRate) {
  sim::Simulator sim;
  Fabric fab(sim, 2, test_nic());
  SimTime done = -1;
  sim.spawn([](sim::Simulator& s, Fabric& f, SimTime& d) -> sim::Task<> {
    co_await f.transfer(0, 1, 1000, 10.0);  // capped at 10/s
    d = s.now();
  }(sim, fab, done));
  sim.run();
  EXPECT_NEAR(done, 100.1, 1e-6);
}

TEST(Fabric, CapGroupSharesCeiling) {
  sim::Simulator sim;
  Fabric fab(sim, 3, test_nic());
  CapGroup group(20.0);  // container cap on node 2's scavenger
  SimTime d1 = -1, d2 = -1;
  auto xfer = [](sim::Simulator& s, Fabric& f, CapGroup& g, NodeId src,
                 SimTime& d) -> sim::Task<> {
    co_await f.transfer(src, 2, 100, Fabric::kUncapped, &g);
    d = s.now();
  };
  sim.spawn(xfer(sim, fab, group, 0, d1));
  sim.spawn(xfer(sim, fab, group, 1, d2));
  sim.run();
  // Both flows share the 20/s group: 10/s each -> 0.1 + 10s.
  EXPECT_NEAR(d1, 10.1, 1e-6);
  EXPECT_NEAR(d2, 10.1, 1e-6);
}

TEST(Fabric, GroupLeavesUngroupedTrafficAlone) {
  sim::Simulator sim;
  Fabric fab(sim, 4, test_nic());
  CapGroup group(10.0);
  SimTime capped = -1, free_flow = -1;
  sim.spawn([](sim::Simulator& s, Fabric& f, CapGroup& g,
               SimTime& d) -> sim::Task<> {
    co_await f.transfer(0, 2, 100, Fabric::kUncapped, &g);
    d = s.now();
  }(sim, fab, group, capped));
  sim.spawn([](sim::Simulator& s, Fabric& f, SimTime& d) -> sim::Task<> {
    co_await f.transfer(1, 3, 100);
    d = s.now();
  }(sim, fab, free_flow));
  sim.run();
  EXPECT_NEAR(capped, 10.1, 1e-6);
  EXPECT_NEAR(free_flow, 1.1, 1e-6);
}

TEST(Fabric, MaxMinWithHeterogeneousDemand) {
  // Three flows into node 0; one is capped low, the others split the rest.
  sim::Simulator sim;
  Fabric fab(sim, 4, test_nic());
  std::vector<SimTime> done(3, -1);
  sim.spawn([](sim::Simulator& s, Fabric& f, SimTime& d) -> sim::Task<> {
    co_await f.transfer(1, 0, 100, 10.0);  // 10/s cap, 10s
    d = s.now();
  }(sim, fab, done[0]));
  auto big = [](sim::Simulator& s, Fabric& f, NodeId src,
                SimTime& d) -> sim::Task<> {
    co_await f.transfer(src, 0, 450);  // share (100-10)/2 = 45/s
    d = s.now();
  };
  sim.spawn(big(sim, fab, 2, done[1]));
  sim.spawn(big(sim, fab, 3, done[2]));
  sim.run();
  EXPECT_NEAR(done[0], 10.1, 1e-6);
  EXPECT_NEAR(done[1], 10.1, 1e-6);
  EXPECT_NEAR(done[2], 10.1, 1e-6);
}

TEST(Fabric, PeakUtilizationTracksFullRate) {
  sim::Simulator sim;
  Fabric fab(sim, 2, test_nic());
  sim.spawn([](Fabric& f) -> sim::Task<> {
    co_await f.transfer(0, 1, 1000);  // full rate for 10s after latency
  }(fab));
  sim.run();
  EXPECT_NEAR(fab.peak_up_utilization(0), 1.0, 1e-9);
  EXPECT_NEAR(fab.peak_down_utilization(1), 1.0, 1e-9);
}

TEST(Fabric, ZeroByteTransferIsLatencyOnly) {
  sim::Simulator sim;
  Fabric fab(sim, 2, test_nic());
  SimTime done = -1;
  sim.spawn([](sim::Simulator& s, Fabric& f, SimTime& d) -> sim::Task<> {
    co_await f.transfer(0, 1, 0);
    d = s.now();
  }(sim, fab, done));
  sim.run();
  EXPECT_NEAR(done, 0.1, 1e-9);
  EXPECT_EQ(fab.active_flows(), 0u);
}

TEST(Fabric, AverageUtilizationWindow) {
  sim::Simulator sim;
  Fabric fab(sim, 2, test_nic());
  sim.spawn([](Fabric& f) -> sim::Task<> {
    co_await f.transfer(0, 1, 1000);
  }(fab));
  sim.run();
  const SimTime end = sim.now();
  // Uplink of node 0 ran at 100% for 10 of ~10.1 seconds.
  EXPECT_NEAR(fab.avg_up_utilization(0, end), 10.0 / 10.1, 1e-6);
  EXPECT_NEAR(fab.avg_down_utilization(1, end), 10.0 / 10.1, 1e-6);
  EXPECT_NEAR(fab.avg_down_utilization(0, end), 0.0, 1e-9);
}

}  // namespace
}  // namespace memfss::net
