#include "net/fabric.hpp"

#include <gtest/gtest.h>

namespace memfss::net {
namespace {

NicSpec test_nic() {
  NicSpec n;
  n.up = 100.0;  // small round numbers: timing math is exact
  n.down = 100.0;
  n.latency = 0.1;
  return n;
}

TEST(Fabric, SingleTransferTiming) {
  sim::Simulator sim;
  Fabric fab(sim, 4, test_nic());
  SimTime done = -1;
  sim.spawn([](sim::Simulator& s, Fabric& f, SimTime& d) -> sim::Task<> {
    co_await f.transfer(0, 1, 1000);  // 0.1 latency + 1000/100 = 10.1
    d = s.now();
  }(sim, fab, done));
  sim.run();
  EXPECT_NEAR(done, 10.1, 1e-9);
  EXPECT_NEAR(fab.total_bytes_moved(), 1000.0, 1e-9);
}

TEST(Fabric, LoopbackIsLatencyOnly) {
  sim::Simulator sim;
  Fabric fab(sim, 2, test_nic());
  SimTime done = -1;
  sim.spawn([](sim::Simulator& s, Fabric& f, SimTime& d) -> sim::Task<> {
    co_await f.transfer(1, 1, 1000000);
    d = s.now();
  }(sim, fab, done));
  sim.run();
  EXPECT_NEAR(done, 0.1, 1e-9);
}

TEST(Fabric, SharedDownlinkSplitsFairly) {
  sim::Simulator sim;
  Fabric fab(sim, 3, test_nic());
  SimTime d1 = -1, d2 = -1;
  auto xfer = [](sim::Simulator& s, Fabric& f, NodeId src,
                 SimTime& d) -> sim::Task<> {
    co_await f.transfer(src, 2, 500);  // both into node 2
    d = s.now();
  };
  sim.spawn(xfer(sim, fab, 0, d1));
  sim.spawn(xfer(sim, fab, 1, d2));
  sim.run();
  // Each gets 50/s on the shared downlink: 0.1 + 10s.
  EXPECT_NEAR(d1, 10.1, 1e-6);
  EXPECT_NEAR(d2, 10.1, 1e-6);
}

TEST(Fabric, DistinctPathsDoNotInterfere) {
  sim::Simulator sim;
  Fabric fab(sim, 4, test_nic());
  SimTime d1 = -1, d2 = -1;
  sim.spawn([](sim::Simulator& s, Fabric& f, SimTime& d) -> sim::Task<> {
    co_await f.transfer(0, 1, 1000);
    d = s.now();
  }(sim, fab, d1));
  sim.spawn([](sim::Simulator& s, Fabric& f, SimTime& d) -> sim::Task<> {
    co_await f.transfer(2, 3, 1000);
    d = s.now();
  }(sim, fab, d2));
  sim.run();
  EXPECT_NEAR(d1, 10.1, 1e-6);
  EXPECT_NEAR(d2, 10.1, 1e-6);
}

TEST(Fabric, FlowCapLimitsRate) {
  sim::Simulator sim;
  Fabric fab(sim, 2, test_nic());
  SimTime done = -1;
  sim.spawn([](sim::Simulator& s, Fabric& f, SimTime& d) -> sim::Task<> {
    co_await f.transfer(0, 1, 1000, 10.0);  // capped at 10/s
    d = s.now();
  }(sim, fab, done));
  sim.run();
  EXPECT_NEAR(done, 100.1, 1e-6);
}

TEST(Fabric, CapGroupSharesCeiling) {
  sim::Simulator sim;
  Fabric fab(sim, 3, test_nic());
  CapGroup group(20.0);  // container cap on node 2's scavenger
  SimTime d1 = -1, d2 = -1;
  auto xfer = [](sim::Simulator& s, Fabric& f, CapGroup& g, NodeId src,
                 SimTime& d) -> sim::Task<> {
    co_await f.transfer(src, 2, 100, Fabric::kUncapped, &g);
    d = s.now();
  };
  sim.spawn(xfer(sim, fab, group, 0, d1));
  sim.spawn(xfer(sim, fab, group, 1, d2));
  sim.run();
  // Both flows share the 20/s group: 10/s each -> 0.1 + 10s.
  EXPECT_NEAR(d1, 10.1, 1e-6);
  EXPECT_NEAR(d2, 10.1, 1e-6);
}

TEST(Fabric, GroupLeavesUngroupedTrafficAlone) {
  sim::Simulator sim;
  Fabric fab(sim, 4, test_nic());
  CapGroup group(10.0);
  SimTime capped = -1, free_flow = -1;
  sim.spawn([](sim::Simulator& s, Fabric& f, CapGroup& g,
               SimTime& d) -> sim::Task<> {
    co_await f.transfer(0, 2, 100, Fabric::kUncapped, &g);
    d = s.now();
  }(sim, fab, group, capped));
  sim.spawn([](sim::Simulator& s, Fabric& f, SimTime& d) -> sim::Task<> {
    co_await f.transfer(1, 3, 100);
    d = s.now();
  }(sim, fab, free_flow));
  sim.run();
  EXPECT_NEAR(capped, 10.1, 1e-6);
  EXPECT_NEAR(free_flow, 1.1, 1e-6);
}

TEST(Fabric, MaxMinWithHeterogeneousDemand) {
  // Three flows into node 0; one is capped low, the others split the rest.
  sim::Simulator sim;
  Fabric fab(sim, 4, test_nic());
  std::vector<SimTime> done(3, -1);
  sim.spawn([](sim::Simulator& s, Fabric& f, SimTime& d) -> sim::Task<> {
    co_await f.transfer(1, 0, 100, 10.0);  // 10/s cap, 10s
    d = s.now();
  }(sim, fab, done[0]));
  auto big = [](sim::Simulator& s, Fabric& f, NodeId src,
                SimTime& d) -> sim::Task<> {
    co_await f.transfer(src, 0, 450);  // share (100-10)/2 = 45/s
    d = s.now();
  };
  sim.spawn(big(sim, fab, 2, done[1]));
  sim.spawn(big(sim, fab, 3, done[2]));
  sim.run();
  EXPECT_NEAR(done[0], 10.1, 1e-6);
  EXPECT_NEAR(done[1], 10.1, 1e-6);
  EXPECT_NEAR(done[2], 10.1, 1e-6);
}

TEST(Fabric, PeakUtilizationTracksFullRate) {
  sim::Simulator sim;
  Fabric fab(sim, 2, test_nic());
  sim.spawn([](Fabric& f) -> sim::Task<> {
    co_await f.transfer(0, 1, 1000);  // full rate for 10s after latency
  }(fab));
  sim.run();
  EXPECT_NEAR(fab.peak_up_utilization(0), 1.0, 1e-9);
  EXPECT_NEAR(fab.peak_down_utilization(1), 1.0, 1e-9);
}

TEST(Fabric, ZeroByteTransferIsLatencyOnly) {
  sim::Simulator sim;
  Fabric fab(sim, 2, test_nic());
  SimTime done = -1;
  sim.spawn([](sim::Simulator& s, Fabric& f, SimTime& d) -> sim::Task<> {
    co_await f.transfer(0, 1, 0);
    d = s.now();
  }(sim, fab, done));
  sim.run();
  EXPECT_NEAR(done, 0.1, 1e-9);
  EXPECT_EQ(fab.active_flows(), 0u);
}

TEST(Fabric, AverageUtilizationWindow) {
  sim::Simulator sim;
  Fabric fab(sim, 2, test_nic());
  sim.spawn([](Fabric& f) -> sim::Task<> {
    co_await f.transfer(0, 1, 1000);
  }(fab));
  sim.run();
  const SimTime end = sim.now();
  // Uplink of node 0 ran at 100% for 10 of ~10.1 seconds.
  EXPECT_NEAR(fab.avg_up_utilization(0, end), 10.0 / 10.1, 1e-6);
  EXPECT_NEAR(fab.avg_down_utilization(1, end), 10.0 / 10.1, 1e-6);
  EXPECT_NEAR(fab.avg_down_utilization(0, end), 0.0, 1e-9);
}

TEST(FabricPartition, ReachabilityTracksCutAndHeal) {
  sim::Simulator sim;
  Fabric fab(sim, 4, test_nic());
  EXPECT_TRUE(fab.reachable(0, 1));
  fab.cut_link(0, 1);
  EXPECT_FALSE(fab.reachable(0, 1));
  EXPECT_FALSE(fab.reachable(1, 0));  // symmetric by default
  EXPECT_TRUE(fab.reachable(0, 2));
  EXPECT_EQ(fab.cut_link_count(), 2u);
  fab.heal_link(0, 1);
  EXPECT_TRUE(fab.reachable(0, 1));
  EXPECT_TRUE(fab.reachable(1, 0));
  EXPECT_EQ(fab.cut_link_count(), 0u);
}

TEST(FabricPartition, OneWayCutIsAsymmetric) {
  sim::Simulator sim;
  Fabric fab(sim, 2, test_nic());
  fab.cut_link(0, 1, /*oneway=*/true);
  EXPECT_FALSE(fab.reachable(0, 1));
  EXPECT_TRUE(fab.reachable(1, 0));
  // Loopback is always reachable, even under full isolation.
  fab.isolate(0);
  EXPECT_TRUE(fab.reachable(0, 0));
  fab.heal_all();
  EXPECT_EQ(fab.cut_link_count(), 0u);
}

TEST(FabricPartition, CutStallsInFlightFlowAndHealResumes) {
  sim::Simulator sim;
  Fabric fab(sim, 2, test_nic());
  SimTime done = -1;
  sim.spawn([](sim::Simulator& s, Fabric& f, SimTime& d) -> sim::Task<> {
    co_await f.transfer(0, 1, 1000);  // 10.1s unimpeded
    d = s.now();
  }(sim, fab, done));
  sim.schedule(5.1, [&] { fab.cut_link(0, 1); });
  sim.schedule(7.1, [&] { fab.heal_link(0, 1); });
  sim.run();
  // Frozen at rate 0 for 2s mid-flight: 10.1 + 2.
  EXPECT_NEAR(done, 12.1, 1e-6);
  EXPECT_NEAR(fab.total_bytes_moved(), 1000.0, 1e-9);
}

TEST(FabricPartition, UnhealedCutStallsFlowIndefinitely) {
  sim::Simulator sim;
  Fabric fab(sim, 2, test_nic());
  SimTime done = -1;
  sim.spawn([](sim::Simulator& s, Fabric& f, SimTime& d) -> sim::Task<> {
    co_await f.transfer(0, 1, 1000);
    d = s.now();
  }(sim, fab, done));
  sim.schedule(5.1, [&] { fab.cut_link(0, 1); });
  sim.run();  // event queue drains with the flow still frozen
  EXPECT_EQ(done, -1);
  EXPECT_EQ(fab.active_flows(), 1u);
  // Healing re-schedules the completion horizon; the flow finishes.
  fab.heal_link(0, 1);
  sim.run();
  EXPECT_NEAR(done, 10.1, 1e-6);  // resumed where it left off at t=5.1
}

TEST(FabricPartition, OneWayCutLeavesReverseTrafficAlone) {
  sim::Simulator sim;
  Fabric fab(sim, 2, test_nic());
  fab.cut_link(0, 1, /*oneway=*/true);
  SimTime fwd = -1, rev = -1;
  sim.spawn([](sim::Simulator& s, Fabric& f, SimTime& d) -> sim::Task<> {
    co_await f.transfer(0, 1, 1000);
    d = s.now();
  }(sim, fab, fwd));
  sim.spawn([](sim::Simulator& s, Fabric& f, SimTime& d) -> sim::Task<> {
    co_await f.transfer(1, 0, 1000);
    d = s.now();
  }(sim, fab, rev));
  sim.run();
  EXPECT_EQ(fwd, -1);  // stalled on the cut direction
  EXPECT_NEAR(rev, 10.1, 1e-6);
  // Drain the stalled coroutine (it would otherwise leak its frame): the
  // heal lands at t=10.1 and the flow runs its full course from there.
  fab.heal_link(0, 1);
  sim.run();
  EXPECT_NEAR(fwd, 20.1, 1e-6);
}

TEST(FabricPartition, BisectionCutsEveryCrossLink) {
  sim::Simulator sim;
  Fabric fab(sim, 4, test_nic());
  fab.cut_bisection({0, 1}, {2, 3});
  for (NodeId a : {NodeId(0), NodeId(1)})
    for (NodeId b : {NodeId(2), NodeId(3)}) {
      EXPECT_FALSE(fab.reachable(a, b));
      EXPECT_FALSE(fab.reachable(b, a));
    }
  EXPECT_TRUE(fab.reachable(0, 1));  // intra-side links survive
  EXPECT_TRUE(fab.reachable(2, 3));
  fab.heal_all();
  EXPECT_TRUE(fab.reachable(0, 3));
}

TEST(FabricPartition, OverlappingCutsHealAtFirstHeal) {
  // Cuts form a set, not a count: isolate(0) then cut_link(0,1) is one
  // membership for the 0<->1 links, and a single heal clears them.
  sim::Simulator sim;
  Fabric fab(sim, 3, test_nic());
  fab.isolate(0);
  fab.cut_link(0, 1);
  EXPECT_EQ(fab.cut_link_count(), 4u);  // 0<->1 and 0<->2
  fab.heal_link(0, 1);
  EXPECT_TRUE(fab.reachable(0, 1));
  EXPECT_FALSE(fab.reachable(0, 2));
  fab.heal_node(0);
  EXPECT_EQ(fab.cut_link_count(), 0u);
}

}  // namespace
}  // namespace memfss::net
