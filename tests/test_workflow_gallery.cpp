// Shape tests for the real-world workflow generators the paper cites
// (§II-A): CyberShake, LIGO, SIPHT, Epigenomics. Each must be a valid
// DAG whose structure shows the limited-parallelism pattern the paper
// argues from: wide stages (high max width) combined with aggregation
// bottlenecks (fan-in tasks) and deterministic generation per seed.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "workflow/generators.hpp"

namespace memfss::workflow {
namespace {

struct GalleryCase {
  std::string name;
  Workflow wf;
  std::size_t min_tasks;
  std::size_t min_width;
};

std::vector<GalleryCase> gallery(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<GalleryCase> out;
  out.push_back({"cybershake",
                 make_cybershake(CyberShakeParams{}, rng),
                 8 * (1 + 2 * 48) + 1, 48});
  out.push_back({"ligo", make_ligo(LigoParams{}, rng), 64 * 2 + 2 + 32 + 1,
                 32});
  out.push_back({"sipht", make_sipht(SiphtParams{}, rng), 32 * 3 + 2, 32});
  out.push_back({"epigenomics",
                 make_epigenomics(EpigenomicsParams{}, rng),
                 4 * (32 * 3 + 1) + 1, 32});
  return out;
}

TEST(Gallery, AllAreValidDags) {
  for (const auto& c : gallery(1)) {
    auto dag = Dag::build(c.wf);
    ASSERT_TRUE(dag.ok()) << c.name << ": " << dag.error().to_string();
    EXPECT_GE(c.wf.tasks.size(), c.min_tasks) << c.name;
    EXPECT_GT(c.wf.total_output_bytes(), 0u) << c.name;
    EXPECT_GT(c.wf.total_cpu_seconds(), 0.0) << c.name;
  }
}

TEST(Gallery, WideStagesAndBottlenecks) {
  for (const auto& c : gallery(2)) {
    auto dag = Dag::build(c.wf).value();
    // Wide parallel stages...
    EXPECT_GE(dag.max_stage_width(c.wf), c.min_width) << c.name;
    // ...and at least one aggregation task with wide fan-in.
    std::size_t max_fanin = 0;
    for (std::size_t t = 0; t < c.wf.tasks.size(); ++t)
      max_fanin = std::max(max_fanin, dag.dependencies(t).size());
    EXPECT_GE(max_fanin, c.min_width / 2) << c.name;
    // Critical path far below total work: that gap is the scalability
    // ceiling scavenging exploits.
    EXPECT_LT(dag.critical_path_seconds(c.wf),
              c.wf.total_cpu_seconds() / 4)
        << c.name;
  }
}

TEST(Gallery, DeterministicPerSeed) {
  const auto a = gallery(7);
  const auto b = gallery(7);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].wf.total_output_bytes(), b[i].wf.total_output_bytes());
    EXPECT_EQ(a[i].wf.tasks.size(), b[i].wf.tasks.size());
  }
}

TEST(Gallery, SiphtTasksAreChatty) {
  Rng rng(3);
  const auto wf = make_sipht(SiphtParams{}, rng);
  std::size_t chatty = 0;
  for (const auto& t : wf.tasks)
    if (t.io.extra_requests_per_mib > 0) ++chatty;
  EXPECT_EQ(chatty, 96u);  // the BLAST-family searches
}

TEST(Gallery, EpigenomicsIsDeepAndNarrow) {
  Rng rng(4);
  EpigenomicsParams p;
  p.lanes = 1;
  p.chunks_per_lane = 4;
  const auto wf = make_epigenomics(p, rng);
  auto dag = Dag::build(wf).value();
  // Chain depth: filter -> fastq2bfq -> map -> merge -> index = 5 levels.
  std::vector<std::size_t> level(wf.tasks.size(), 0);
  std::size_t depth = 0;
  for (std::size_t t : dag.topo_order()) {
    for (std::size_t d : dag.dependencies(t))
      level[t] = std::max(level[t], level[d] + 1);
    depth = std::max(depth, level[t] + 1);
  }
  EXPECT_EQ(depth, 5u);
}

}  // namespace
}  // namespace memfss::workflow
