#include "kvstore/server.hpp"

#include <gtest/gtest.h>

#include "kvstore/rate_meter.hpp"
#include "sim/sync.hpp"

namespace memfss::kvstore {
namespace {

struct Rig {
  sim::Simulator sim;
  net::Fabric fabric;
  sim::FluidResource cpu;
  sim::FluidResource membw;
  sim::MemoryPool mem;

  Rig()
      : fabric(sim, 4, net::NicSpec{1000.0, 1000.0, 0.01}),
        cpu(sim, 16.0),
        membw(sim, 1e6),
        mem(1 << 30) {}

  ResourceHooks hooks() {
    return ResourceHooks{&cpu, &membw, &mem, nullptr};
  }
};

TEST(RateMeter, DecaysOverTime) {
  RateMeter m(1.0);  // 1 s halflife
  m.record(0.0, 100.0);
  const double r0 = m.rate(0.0);
  const double r1 = m.rate(1.0);
  EXPECT_NEAR(r1, r0 / 2.0, 1e-9);
  EXPECT_GT(r0, 0.0);
  EXPECT_DOUBLE_EQ(m.total(), 100.0);
}

TEST(RateMeter, SteadyStreamApproximatesRate) {
  RateMeter m(2.0);
  for (int i = 0; i < 2000; ++i) m.record(i * 0.01);  // 100 events/s
  EXPECT_NEAR(m.rate(20.0), 100.0, 10.0);
}

TEST(Server, PutGetRoundtripWithCosts) {
  Rig rig;
  Server srv(rig.sim, rig.fabric, 1, 1 << 30, "tok", rig.hooks());
  Status put_st{Errc::io_error, "unset"};
  Result<Blob> got = Error{Errc::io_error, "unset"};
  rig.sim.spawn([](Server& s, Status& pst, Result<Blob>& g) -> sim::Task<> {
    pst = co_await s.put(0, "tok", "key", Blob::ghost(1000));
    g = co_await s.get(0, "tok", "key");
  }(srv, put_st, got));
  rig.sim.run();
  EXPECT_TRUE(put_st.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().size(), 1000u);
  EXPECT_GT(rig.sim.now(), 0.04);  // >= 4 message latencies
  EXPECT_EQ(rig.mem.used(), 1000u + Store::kPerKeyOverhead);
}

TEST(Server, AuthFailureStillChargesWire) {
  Rig rig;
  Server srv(rig.sim, rig.fabric, 1, 1 << 30, "secret", rig.hooks());
  Status st;
  rig.sim.spawn([](Server& s, Status& out) -> sim::Task<> {
    out = co_await s.put(0, "wrong", "k", Blob::ghost(10));
  }(srv, st));
  rig.sim.run();
  EXPECT_EQ(st.code(), Errc::permission);
  EXPECT_EQ(rig.mem.used(), 0u);
}

TEST(Server, DelFreesNodeMemory) {
  Rig rig;
  Server srv(rig.sim, rig.fabric, 1, 1 << 30, "t", rig.hooks());
  rig.sim.spawn([](Server& s, Rig& r) -> sim::Task<> {
    co_await s.put(0, "t", "k", Blob::ghost(500));
    EXPECT_GT(r.mem.used(), 0u);
    co_await s.del(0, "t", "k");
  }(srv, rig));
  rig.sim.run();
  EXPECT_EQ(rig.mem.used(), 0u);
}

TEST(Server, ExistsDoesNotMoveData) {
  Rig rig;
  Server srv(rig.sim, rig.fabric, 1, 1 << 30, "t", rig.hooks());
  Result<bool> r = Error{Errc::io_error, ""};
  rig.sim.spawn([](Server& s, Result<bool>& out) -> sim::Task<> {
    co_await s.put(0, "t", "k", Blob::ghost(100000));
    out = co_await s.exists(0, "t", "k");
  }(srv, r));
  rig.sim.run();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value());
}

TEST(Server, EngineLimitsIngestRate) {
  // Two big puts to the same server serialize on the single-core engine
  // even with ample NIC bandwidth.
  Rig rig;
  ServerCosts costs;
  costs.cpu_per_request = 0.0;
  costs.cpu_per_byte = 0.01;  // engine rate: 100 bytes/s
  costs.membw_per_byte = 0.0;
  Server srv(rig.sim, rig.fabric, 1, 1 << 30, "t", rig.hooks(), costs);
  SimTime done = -1;
  rig.sim.spawn([](sim::Simulator& s, Server& srv, SimTime& d) -> sim::Task<> {
    std::vector<sim::Task<>> ops;
    for (int i = 0; i < 2; ++i) {
      ops.push_back([](Server& sv, int idx) -> sim::Task<> {
        co_await sv.put(0, "t", "k" + std::to_string(idx),
                        Blob::ghost(100));
      }(srv, i));
    }
    co_await sim::when_all(s, std::move(ops));
    d = s.now();
  }(rig.sim, srv, done));
  rig.sim.run();
  // 200 bytes of engine work at 100 B/s ~ 2s, plus ~1s of request and
  // response envelopes on the slow test NIC.
  EXPECT_GT(done, 1.9);
  EXPECT_LT(done, 3.5);
}

TEST(Server, RequestBurstRaisesMeter) {
  // Fast NIC so the envelope transfer is instantaneous and the meter is
  // sampled before the decayed mass fades.
  sim::Simulator sim;
  net::Fabric fabric(sim, 4, net::NicSpec{1e12, 1e12, 1e-6});
  Server srv(sim, fabric, 1, 1 << 30, "t", {});
  sim.spawn([](Server& s) -> sim::Task<> {
    co_await s.request_burst(0, 500.0);
  }(srv));
  sim.run();
  EXPECT_GT(srv.request_rate(), 50.0);
}

TEST(Server, ByteRateTracksTraffic) {
  Rig rig;
  Server srv(rig.sim, rig.fabric, 1, 1 << 30, "t", rig.hooks());
  rig.sim.spawn([](Server& s) -> sim::Task<> {
    co_await s.put(0, "t", "k", Blob::ghost(50000));
  }(srv));
  rig.sim.run();
  EXPECT_GT(srv.byte_rate(), 0.0);
}

TEST(Server, MigrateKeyMovesDataBetweenServers) {
  Rig rig;
  Server a(rig.sim, rig.fabric, 1, 1 << 30, "t", rig.hooks());
  Server b(rig.sim, rig.fabric, 2, 1 << 30, "t", {});
  Status mig{Errc::io_error, ""};
  rig.sim.spawn([](Server& src, Server& dst, Status& out) -> sim::Task<> {
    co_await src.put(0, "t", "k", Blob::ghost(1234));
    out = co_await src.migrate_key("t", "k", dst);
  }(a, b, mig));
  rig.sim.run();
  EXPECT_TRUE(mig.ok());
  EXPECT_EQ(a.store().key_count(), 0u);
  EXPECT_EQ(b.store().key_count(), 1u);
  EXPECT_EQ(rig.mem.used(), 0u);  // node-1 memory released
}

TEST(Server, MigrateMissingKeyIsNotFound) {
  Rig rig;
  Server a(rig.sim, rig.fabric, 1, 1 << 30, "t", {});
  Server b(rig.sim, rig.fabric, 2, 1 << 30, "t", {});
  Status mig;
  rig.sim.spawn([](Server& src, Server& dst, Status& out) -> sim::Task<> {
    out = co_await src.migrate_key("t", "nope", dst);
  }(a, b, mig));
  rig.sim.run();
  EXPECT_EQ(mig.code(), Errc::not_found);
}

TEST(Server, WipeReleasesMemory) {
  Rig rig;
  Server srv(rig.sim, rig.fabric, 1, 1 << 30, "t", rig.hooks());
  rig.sim.spawn([](Server& s) -> sim::Task<> {
    co_await s.put(0, "t", "a", Blob::ghost(100));
    co_await s.put(0, "t", "b", Blob::ghost(200));
  }(srv));
  rig.sim.run();
  EXPECT_GT(rig.mem.used(), 0u);
  srv.wipe();
  EXPECT_EQ(rig.mem.used(), 0u);
  EXPECT_EQ(srv.store().key_count(), 0u);
}

}  // namespace
}  // namespace memfss::kvstore
