#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/task.hpp"

namespace memfss::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3.0);
}

TEST(Simulator, SameTimeIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule(1.0, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule(1.0, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.now(), 0.0);  // cancelled events do not advance time
}

TEST(Simulator, CancelAfterFireIsHarmless) {
  Simulator sim;
  const auto id = sim.schedule(1.0, [] {});
  sim.run();
  sim.cancel(id);  // no crash, no effect
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  double inner_time = -1;
  sim.schedule(1.0, [&] {
    sim.schedule(2.0, [&] { inner_time = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner_time, 3.0);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int count = 0;
  for (double t : {1.0, 2.0, 3.0, 4.0}) sim.schedule(t, [&] { ++count; });
  sim.run_until(2.5);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), 2.5);
  sim.run();
  EXPECT_EQ(count, 4);
}

TEST(Simulator, StepExecutesOne) {
  Simulator sim;
  int count = 0;
  sim.schedule(1.0, [&] { ++count; });
  sim.schedule(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

// --- coroutine tasks --------------------------------------------------------

Task<int> value_task() { co_return 41; }

Task<int> adder() {
  const int v = co_await value_task();
  co_return v + 1;
}

Task<> record_times(Simulator& sim, std::vector<SimTime>& out) {
  out.push_back(sim.now());
  co_await sim.delay(5.0);
  out.push_back(sim.now());
  co_await sim.delay(0.5);
  out.push_back(sim.now());
}

TEST(TaskCoro, AwaitChainPropagatesValues) {
  Simulator sim;
  int result = 0;
  sim.spawn([](int& out) -> Task<> { out = co_await adder(); }(result));
  sim.run();
  EXPECT_EQ(result, 42);
}

TEST(TaskCoro, DelayAdvancesClock) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.spawn(record_times(sim, times));
  sim.run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_EQ(times[0], 0.0);
  EXPECT_EQ(times[1], 5.0);
  EXPECT_EQ(times[2], 5.5);
}

TEST(TaskCoro, SpawnedTasksInterleave) {
  Simulator sim;
  std::vector<std::string> log;
  auto proc = [](Simulator& s, std::vector<std::string>& l,
                 std::string name, double step) -> Task<> {
    for (int i = 0; i < 3; ++i) {
      co_await s.delay(step);
      l.push_back(name);
    }
  };
  sim.spawn(proc(sim, log, "a", 1.0));
  sim.spawn(proc(sim, log, "b", 1.5));
  sim.run();
  // a at 1,2,3; b at 1.5,3.0,4.5. At t=3 both fire: b's event was
  // scheduled first (at t=1.5, vs a's at t=2), so FIFO puts b ahead.
  EXPECT_EQ(log, (std::vector<std::string>{"a", "b", "a", "b", "a", "b"}));
}

TEST(TaskCoro, ExceptionPropagatesToAwaiter) {
  Simulator sim;
  bool caught = false;
  auto thrower = []() -> Task<> {
    throw std::runtime_error("boom");
    co_return;
  };
  sim.spawn([](bool& c, Task<> inner) -> Task<> {
    try {
      co_await std::move(inner);
    } catch (const std::runtime_error&) {
      c = true;
    }
  }(caught, thrower()));
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(TaskCoro, UnawaitedTaskIsDestroyedSafely) {
  Simulator sim;
  {
    Task<int> t = value_task();
    EXPECT_TRUE(t.valid());
  }  // destroyed without running: no leak, no crash (ASAN would catch)
  sim.run();
}

TEST(TaskCoro, MoveTransfersOwnership) {
  Task<int> a = value_task();
  Task<int> b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
}

}  // namespace
}  // namespace memfss::sim
