// Property tests for obs::Histogram and MetricsRegistry snapshots, in the
// style of test_fabric_props.cpp: randomized inputs, algebraic invariants.
//
//   - merge is associative and commutative (same layout);
//   - quantile(q) is monotone in q and bounded by [min, max];
//   - splitting a sample stream across histograms and merging conserves
//     count, sum, min, max, and every bucket exactly;
//   - a snapshot is a consistent point-in-time copy: mutating the
//     registry afterwards does not change it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/str.hpp"
#include "obs/metrics.hpp"

namespace memfss::obs {
namespace {

std::vector<double> random_samples(Rng& rng, std::size_t n) {
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Log-uniform over ~10 decades, hitting below-lo and above-top too.
    const double mag = rng.uniform(-9.0, 3.0);
    xs.push_back(rng.uniform(0.1, 1.0) * std::pow(10.0, mag));
  }
  return xs;
}

void expect_same(const Histogram& a, const Histogram& b) {
  EXPECT_EQ(a.count(), b.count());
  // Sums are accumulated in different orders, so allow FP rounding slack.
  EXPECT_NEAR(a.sum(), b.sum(), 1e-9 * std::max(1.0, std::abs(a.sum())));
  EXPECT_DOUBLE_EQ(a.min(), b.min());
  EXPECT_DOUBLE_EQ(a.max(), b.max());
  ASSERT_EQ(a.buckets().size(), b.buckets().size());
  for (std::size_t i = 0; i < a.buckets().size(); ++i)
    EXPECT_EQ(a.buckets()[i], b.buckets()[i]) << "bucket " << i;
}

class HistogramProps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HistogramProps, QuantileMonotoneAndBounded) {
  Rng rng(GetParam());
  Histogram h;
  for (double x : random_samples(rng, 1 + rng.uniform_u64(0, 500))) h.add(x);
  double prev = h.quantile(0.0);
  EXPECT_GE(prev, h.min());
  for (int i = 1; i <= 100; ++i) {
    const double q = static_cast<double>(i) / 100.0;
    const double v = h.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  EXPECT_LE(prev, h.max());
  // q=1 lands at the top of max's bucket, clamped to max -- so it equals
  // max up to one bucket of relative error, except when max overflowed
  // the bucketed range (then it reports the range cap, still <= max).
  const double q1 = h.quantile(1.0);
  EXPECT_LE(q1, h.max());
  if (h.max() < h.bucket_hi(h.buckets().size() - 1))
    EXPECT_GE(q1, h.max() / h.layout().growth * (1.0 - 1e-12));
}

TEST_P(HistogramProps, SplitMergeConservesEverything) {
  Rng rng(GetParam());
  const auto xs = random_samples(rng, 2 + rng.uniform_u64(0, 400));

  Histogram whole;
  for (double x : xs) whole.add(x);

  // Split the same stream across k histograms, then merge them back.
  const std::size_t k = 2 + rng.uniform_u64(0, 4);
  std::vector<Histogram> parts(k);
  for (double x : xs) parts[rng.uniform_u64(0, k - 1)].add(x);
  Histogram merged;
  for (const auto& p : parts) merged.merge(p);

  expect_same(whole, merged);
  // Quantiles agree too: they are a pure function of the state above.
  for (double q : {0.0, 0.25, 0.5, 0.95, 1.0})
    EXPECT_DOUBLE_EQ(whole.quantile(q), merged.quantile(q)) << "q=" << q;
}

TEST_P(HistogramProps, MergeAssociativeAndCommutative) {
  Rng rng(GetParam());
  Histogram a, b, c;
  for (double x : random_samples(rng, rng.uniform_u64(0, 200))) a.add(x);
  for (double x : random_samples(rng, rng.uniform_u64(0, 200))) b.add(x);
  for (double x : random_samples(rng, rng.uniform_u64(0, 200))) c.add(x);

  // (a + b) + c
  Histogram ab_c;
  ab_c.merge(a);
  ab_c.merge(b);
  ab_c.merge(c);
  // a + (b + c)
  Histogram bc;
  bc.merge(b);
  bc.merge(c);
  Histogram a_bc;
  a_bc.merge(a);
  a_bc.merge(bc);
  expect_same(ab_c, a_bc);

  // c + b + a (commutativity)
  Histogram cba;
  cba.merge(c);
  cba.merge(b);
  cba.merge(a);
  expect_same(ab_c, cba);

  // Identity: merging an empty histogram changes nothing.
  Histogram with_empty;
  with_empty.merge(a);
  with_empty.merge(Histogram{});
  expect_same(with_empty, a);
}

TEST_P(HistogramProps, CountEqualsBucketTotal) {
  Rng rng(GetParam());
  Histogram h;
  const auto xs = random_samples(rng, rng.uniform_u64(0, 300));
  for (double x : xs) h.add(x);
  std::uint64_t total = 0;
  for (auto c : h.buckets()) total += c;
  EXPECT_EQ(total, h.count());
  EXPECT_EQ(h.count(), xs.size());
}

TEST_P(HistogramProps, SnapshotIsConsistentPointInTime) {
  Rng rng(GetParam());
  MetricsRegistry reg;
  static const char* const kCounters[] = {"c0", "c1", "c2", "c3"};
  static const char* const kGauges[] = {"g0", "g1", "g2", "g3"};
  static const char* const kHists[] = {"h0", "h1", "h2", "h3"};
  const std::size_t n_ops = 1 + rng.uniform_u64(0, 300);
  for (std::size_t i = 0; i < n_ops; ++i) {
    switch (rng.uniform_u64(0, 2)) {
      case 0: reg.counter(kCounters[rng.uniform_u64(0, 3)]).inc(); break;
      case 1: reg.gauge(kGauges[rng.uniform_u64(0, 3)])
            .set(rng.uniform(0.0, 10.0));
        break;
      default: reg.histogram(kHists[rng.uniform_u64(0, 3)])
            .add(rng.uniform(1e-6, 1.0));
        break;
    }
  }
  const auto snap = reg.snapshot(1.0);
  EXPECT_EQ(snap.rows.size(), reg.size());
  const std::string csv_before = snap.to_csv();

  // Mutate the registry heavily; the snapshot must not move.
  for (int i = 0; i < 100; ++i) {
    reg.counter("c0").inc();
    reg.gauge("g0").set(999.0);
    reg.histogram("h0").add(123.0);
    reg.counter(strformat("new%d", i)).inc();
  }
  EXPECT_EQ(snap.to_csv(), csv_before);

  // A fresh snapshot sees the mutations.
  const auto snap2 = reg.snapshot(2.0);
  EXPECT_GT(snap2.rows.size(), snap.rows.size());
  // Every row of the old snapshot still names a live instrument whose
  // counts only grew (monotonicity of counters/histogram counts).
  for (const auto& r : snap.rows) {
    const MetricRow* now = snap2.find(r.name);
    ASSERT_NE(now, nullptr) << r.name;
    EXPECT_GE(now->count, r.count) << r.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramProps,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace memfss::obs
