#include <gtest/gtest.h>

#include "co_test.hpp"
#include "tenant/runner.hpp"
#include "tenant/suites.hpp"

namespace memfss::tenant {
namespace {

TEST(Suites, HpccHasPaperCategories) {
  const auto suite = hpcc_suite();
  ASSERT_EQ(suite.size(), 8u);
  std::vector<std::string> names;
  for (const auto& a : suite) names.push_back(a.name);
  EXPECT_EQ(names, (std::vector<std::string>{
                       "DGEMM", "STREAM", "FFT", "PTRANS", "RandomAccess",
                       "Latency", "Bandwidth", "HPL"}));
  for (const auto& a : suite) {
    EXPECT_EQ(a.suite, "hpcc");
    EXPECT_EQ(a.resident_memory, 48 * units::GiB);
    EXPECT_FALSE(a.phases.empty());
  }
}

TEST(Suites, HadoopHasSixRepresentativeBenchmarks) {
  const auto suite = hibench_hadoop_suite();
  ASSERT_EQ(suite.size(), 6u);
  EXPECT_EQ(suite[3].name, "TeraSort");
  // DFSIO-read depends on the page cache.
  bool cache_sensitive = false;
  for (const auto& p : suite[4].phases)
    if (p.cache_working_set > 0) cache_sensitive = true;
  EXPECT_TRUE(cache_sensitive);
}

TEST(Suites, SparkExcludesDfsioAndPinsExecutors) {
  const auto suite = hibench_spark_suite();
  ASSERT_EQ(suite.size(), 4u);
  for (const auto& a : suite) {
    EXPECT_EQ(a.resident_memory, 48 * units::GiB);
    EXPECT_TRUE(a.name.find("DFSIO") == std::string::npos);
  }
}

TEST(Suites, FindAppLocatesByName) {
  EXPECT_TRUE(find_app("STREAM").has_value());
  EXPECT_TRUE(find_app("TeraSort").has_value());
  EXPECT_FALSE(find_app("DoesNotExist").has_value());
}

TEST(App, DeclaredBaseSecondsSumsSections) {
  TenantApp a;
  a.iterations = 2;
  Phase p;
  p.sensitive.base_seconds = 3.0;
  p.cache_bound_seconds = 2.0;
  a.phases = {p};
  EXPECT_DOUBLE_EQ(a.declared_base_seconds(), 10.0);
}

struct Rig {
  sim::Simulator sim;
  cluster::Cluster cl{sim, 4};

  TenantResult run_app(TenantApp app, std::vector<NodeId> nodes,
                       fs::FileSystem* scavenger = nullptr) {
    TenantRunner runner(cl, std::move(nodes), scavenger);
    TenantResult out;
    sim.spawn([](TenantRunner& r, TenantApp a, TenantResult& o) -> sim::Task<> {
      o = co_await r.run(std::move(a));
    }(runner, std::move(app), out));
    sim.run();
    return out;
  }
};

TEST(Runner, CpuPhaseDurationMatchesDemand) {
  Rig rig;
  TenantApp app;
  app.name = "cpu-only";
  Phase p;
  p.cpu_core_seconds = 32.0;  // 16 cores -> 2s
  p.cpu_cores = 16.0;
  app.phases = {p};
  auto res = rig.run_app(app, {0, 1});
  EXPECT_NEAR(res.duration, 2.0, 0.01);
}

TEST(Runner, PhasesBarrierAcrossNodes) {
  // Nothing distinguishes the nodes here, but iterations multiply.
  Rig rig;
  TenantApp app;
  Phase p;
  p.cpu_core_seconds = 16.0;
  p.cpu_cores = 16.0;
  app.phases = {p, p};
  app.iterations = 3;
  auto res = rig.run_app(app, {0, 1, 2});
  EXPECT_NEAR(res.duration, 6.0, 0.05);
}

TEST(Runner, NetworkPhaseMovesBytes) {
  Rig rig;
  TenantApp app;
  Phase p;
  p.net_bytes = 3ull << 30;  // 3 GiB at ~3 GB/s NIC -> ~1.07s
  app.phases = {p};
  auto res = rig.run_app(app, {0, 1, 2, 3});
  EXPECT_GT(res.duration, 0.9);
  EXPECT_LT(res.duration, 2.0);
  EXPECT_GT(rig.cl.fabric().total_bytes_moved(), 3.0 * (3ull << 30));
}

TEST(Runner, AllToAllUsesEveryPeer) {
  Rig rig;
  TenantApp app;
  Phase p;
  p.net_bytes = 3ull << 30;
  p.pattern = NetPattern::alltoall;
  app.phases = {p};
  (void)rig.run_app(app, {0, 1, 2, 3});
  for (NodeId n = 0; n < 4; ++n)
    EXPECT_GT(rig.cl.fabric().avg_down_utilization(n, rig.sim.now()), 0.0);
}

TEST(Runner, ResidentMemoryPinnedAndReleased) {
  Rig rig;
  TenantApp app;
  app.resident_memory = 10 * units::GiB;
  Phase p;
  p.cpu_core_seconds = 1.0;
  app.phases = {p};
  auto res = rig.run_app(app, {0, 1});
  EXPECT_TRUE(res.resident_memory_ok);
  EXPECT_EQ(rig.cl.node(0).memory().used(), 0u);
  EXPECT_EQ(rig.cl.node(0).memory().high_water(), 10 * units::GiB);
}

TEST(Runner, ResidentMemoryFailureIsReported) {
  Rig rig;
  ASSERT_TRUE(rig.cl.node(0).memory().try_alloc(60 * units::GiB));
  TenantApp app;
  app.resident_memory = 10 * units::GiB;  // does not fit on node 0
  Phase p;
  p.cpu_core_seconds = 1.0;
  app.phases = {p};
  auto res = rig.run_app(app, {0, 1});
  EXPECT_FALSE(res.resident_memory_ok);
}

TEST(Runner, CacheSectionSlowsWhenMemoryIsScarce) {
  Rig rig;
  TenantApp app;
  Phase p;
  p.cache_bound_seconds = 10.0;
  p.cache_working_set = 32 * units::GiB;
  p.cache_miss_penalty = 2.0;
  app.phases = {p};

  // Plenty of free memory: clean duration.
  auto clean = rig.run_app(app, {0});
  EXPECT_NEAR(clean.duration, 10.0, 0.01);

  // Eat memory so only ~16 GiB remain: penalty kicks in.
  Rig rig2;
  ASSERT_TRUE(rig2.cl.node(0).memory().try_alloc(48 * units::GiB));
  auto squeezed = rig2.run_app(app, {0});
  EXPECT_GT(squeezed.duration, 10.5);
}

TEST(Runner, SensitiveSectionUnaffectedWithoutScavenger) {
  Rig rig;
  TenantApp app;
  Phase p;
  p.sensitive.base_seconds = 5.0;
  p.sensitive.to_krequests = 100.0;
  app.phases = {p};
  auto res = rig.run_app(app, {0, 1});
  EXPECT_NEAR(res.duration, 5.0, 0.01);
}

TEST(Runner, StandaloneSuitesFinishInPlausibleTime) {
  // Every catalog entry must run clean in, say, under an hour of
  // simulated time and over 10 seconds (sanity band for calibration).
  for (const auto& suite :
       {hpcc_suite(), hibench_hadoop_suite(), hibench_spark_suite()}) {
    for (const auto& app : suite) {
      Rig rig;
      auto res = rig.run_app(app, {0, 1, 2, 3});
      EXPECT_GT(res.duration, 10.0) << app.suite << "/" << app.name;
      EXPECT_LT(res.duration, 3600.0) << app.suite << "/" << app.name;
      EXPECT_TRUE(res.resident_memory_ok) << app.suite << "/" << app.name;
    }
  }
}

}  // namespace
}  // namespace memfss::tenant
