// Model-based fuzzing of the Namespace: random operation sequences are
// applied both to the real tree and to a trivial reference model (a map
// of paths); results must agree operation by operation, and the final
// states must coincide.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "common/rng.hpp"
#include "common/str.hpp"
#include "fs/namespace.hpp"

namespace memfss::fs {
namespace {

/// Reference model: flat path -> kind map with the same rules.
class ModelFs {
 public:
  enum class Kind { file, dir };

  ModelFs() { entries_["/"] = Kind::dir; }

  static std::string parent_of(const std::string& path) {
    const auto pos = path.find_last_of('/');
    return pos == 0 ? "/" : path.substr(0, pos);
  }

  bool exists(const std::string& p) const { return entries_.count(p) > 0; }
  bool is_dir(const std::string& p) const {
    auto it = entries_.find(p);
    return it != entries_.end() && it->second == Kind::dir;
  }
  bool has_children(const std::string& p) const {
    for (const auto& [path, kind] : entries_) {
      if (path.size() > p.size() && path.compare(0, p.size(), p) == 0 &&
          path[p.size()] == '/')
        return true;
    }
    return false;
  }

  bool mkdir(const std::string& p) {
    if (exists(p) || !is_dir(parent_of(p))) return false;
    entries_[p] = Kind::dir;
    return true;
  }
  bool create(const std::string& p) {
    if (exists(p) || !is_dir(parent_of(p))) return false;
    entries_[p] = Kind::file;
    return true;
  }
  bool unlink(const std::string& p) {
    if (!exists(p) || is_dir(p)) return false;
    entries_.erase(p);
    return true;
  }
  bool rmdir(const std::string& p) {
    if (p == "/" || !exists(p) || !is_dir(p) || has_children(p))
      return false;
    entries_.erase(p);
    return true;
  }

  std::set<std::string> files() const {
    std::set<std::string> out;
    for (const auto& [path, kind] : entries_)
      if (kind == Kind::file) out.insert(path);
    return out;
  }
  std::size_t dir_count() const {
    std::size_t n = 0;
    for (const auto& [path, kind] : entries_)
      if (kind == Kind::dir) ++n;
    return n;
  }

 private:
  std::map<std::string, Kind> entries_;
};

std::string random_path(Rng& rng) {
  // Small vocabularies make collisions (the interesting cases) common.
  static constexpr const char* kNames[] = {"a", "b", "c", "d"};
  std::string p;
  const std::size_t depth = 1 + rng.uniform_u64(0, 2);
  for (std::size_t i = 0; i < depth; ++i) {
    p += "/";
    p += kNames[rng.uniform_u64(0, 3)];
  }
  return p;
}

class NamespaceFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NamespaceFuzz, AgreesWithReferenceModel) {
  Rng rng(GetParam());
  Namespace ns;
  ModelFs model;
  FileAttr attr;
  attr.stripe_size = 4096;

  for (int op = 0; op < 400; ++op) {
    const std::string p = random_path(rng);
    switch (rng.uniform_u64(0, 3)) {
      case 0: {  // mkdir
        const bool model_ok = model.mkdir(p);
        EXPECT_EQ(ns.mkdir(p).ok(), model_ok) << "mkdir " << p;
        break;
      }
      case 1: {  // create
        const bool model_ok = model.create(p);
        EXPECT_EQ(ns.create(p, attr).ok(), model_ok) << "create " << p;
        break;
      }
      case 2: {  // unlink
        const bool model_ok = model.unlink(p);
        EXPECT_EQ(ns.unlink(p).ok(), model_ok) << "unlink " << p;
        break;
      }
      case 3: {  // rmdir
        const bool model_ok = model.rmdir(p);
        EXPECT_EQ(ns.rmdir(p).ok(), model_ok) << "rmdir " << p;
        break;
      }
    }
  }

  // Final states coincide.
  std::set<std::string> ns_files;
  for (const auto& [path, st] : ns.list_files()) ns_files.insert(path);
  EXPECT_EQ(ns_files, model.files());
  EXPECT_EQ(ns.dir_count(), model.dir_count());
  EXPECT_EQ(ns.file_count(), model.files().size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, NamespaceFuzz,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace memfss::fs
