// Tests for the network chaos soak harness (rt::run_net_chaos,
// DESIGN.md §15): the clean arm must be bit-identical to the in-process
// replay, the faulted arm must hold its acked-op invariants while real
// faults fire, and the CSV surface must stay consistent with its
// header.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "rt/net_chaos.hpp"

namespace memfss::rt {
namespace {

NetChaosOptions small_options(std::uint64_t seed, bool faults) {
  NetChaosOptions opt;
  opt.seed = seed;
  opt.faults = faults;
  opt.plan = netio::ChaosPlan::faulty(seed);
  opt.client_threads = 2;
  opt.ops_per_thread = 250;
  opt.key_space = 48;
  return opt;
}

std::size_t count_columns(const std::string& csv) {
  std::size_t n = 1;
  for (const char c : csv)
    if (c == ',') ++n;
  return n;
}

TEST(RtNetChaos, CleanArmReproducesInProcessDigest) {
  for (const std::uint64_t seed : {1ull, 2ull}) {
    const NetChaosResult r = run_net_chaos(small_options(seed, false));
    EXPECT_TRUE(r.passed) << "seed " << seed << ": " << r.fail_reason;
    EXPECT_EQ(r.failed_calls, 0u) << "seed " << seed;
    EXPECT_EQ(r.acked, r.calls) << "seed " << seed;
    EXPECT_TRUE(r.digest_ok)
        << "seed " << seed << ": wire digest " << r.read_digest
        << " != oracle " << r.oracle_digest;
    EXPECT_EQ(r.lost_acks, 0u);
    EXPECT_EQ(r.duplicated_acks, 0u);
    EXPECT_EQ(r.consistency_violations, 0u);
    EXPECT_TRUE(r.accounting_ok) << r.accounting_msg;
    // With faults disabled the proxy must not have injected anything.
    EXPECT_EQ(r.chaos.resets_injected, 0u);
    EXPECT_EQ(r.chaos.chunks_corrupted, 0u);
  }
}

TEST(RtNetChaos, FaultedRunHoldsAckedOpInvariants) {
  const NetChaosResult r = run_net_chaos(small_options(1, true));
  EXPECT_TRUE(r.passed) << r.fail_reason;
  EXPECT_EQ(r.calls, 500u);
  EXPECT_GT(r.acked, 0u);
  EXPECT_EQ(r.lost_acks, 0u);
  EXPECT_EQ(r.duplicated_acks, 0u);
  EXPECT_EQ(r.consistency_violations, 0u);
  EXPECT_TRUE(r.accounting_ok) << r.accounting_msg;
  // Integrity failures are allowed to *happen* under corruption -- they
  // must surface as retries/fatal calls, never as wrong data, which the
  // invariants above already pin down.
  EXPECT_EQ(r.mismatched_ids, 0u);
  EXPECT_EQ(r.value_checksum_failures, 0u);
}

TEST(RtNetChaos, CsvRowMatchesHeader) {
  const std::string header = net_chaos_csv_header();
  const NetChaosResult r = run_net_chaos(small_options(4, false));
  const std::string row = net_chaos_csv_row(r);
  EXPECT_EQ(count_columns(row), count_columns(header));
  std::istringstream first(row);
  std::string seed;
  std::getline(first, seed, ',');
  EXPECT_EQ(seed, "4");
  EXPECT_NE(header.find("lost_acks"), std::string::npos);
  EXPECT_NE(header.find("digest_ok"), std::string::npos);
}

}  // namespace
}  // namespace memfss::rt
