#include "kvstore/store.hpp"

#include <gtest/gtest.h>

namespace memfss::kvstore {
namespace {

Blob bytes_blob(std::string_view s) {
  return Blob::materialized(
      std::vector<std::uint8_t>(s.begin(), s.end()));
}

TEST(Blob, MaterializedProperties) {
  auto b = bytes_blob("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_FALSE(b.is_ghost());
  EXPECT_EQ(bytes_blob("hello").checksum(), b.checksum());
  EXPECT_NE(bytes_blob("hellp").checksum(), b.checksum());
}

TEST(Blob, GhostProperties) {
  auto g = Blob::ghost(1 << 20, 42);
  EXPECT_EQ(g.size(), 1u << 20);
  EXPECT_TRUE(g.is_ghost());
  EXPECT_EQ(Blob::ghost(1 << 20, 42), g);
  EXPECT_FALSE(Blob::ghost(1 << 20, 43) == g);
}

TEST(Store, PutGetRoundtrip) {
  Store st(1 << 20, "tok");
  ASSERT_TRUE(st.put("tok", "k", bytes_blob("v")).ok());
  auto r = st.get("tok", "k");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), bytes_blob("v"));
  EXPECT_EQ(st.key_count(), 1u);
}

TEST(Store, GetMissingIsNotFound) {
  Store st(1 << 20, "tok");
  EXPECT_EQ(st.get("tok", "nope").code(), Errc::not_found);
  EXPECT_EQ(st.stats().misses, 1u);
}

TEST(Store, AuthRejectsBadToken) {
  Store st(1 << 20, "secret");
  EXPECT_EQ(st.put("wrong", "k", bytes_blob("v")).code(), Errc::permission);
  EXPECT_EQ(st.get("wrong", "k").code(), Errc::permission);
  EXPECT_EQ(st.stats().auth_failures, 2u);
}

TEST(Store, EmptyTokenDisablesAuth) {
  Store st(1 << 20);
  EXPECT_TRUE(st.put("anything", "k", bytes_blob("v")).ok());
}

TEST(Store, CapacityEnforced) {
  Store st(Store::kPerKeyOverhead + 10, "t");
  EXPECT_TRUE(st.put("t", "a", Blob::ghost(10)).ok());
  EXPECT_EQ(st.put("t", "b", Blob::ghost(1)).code(), Errc::out_of_memory);
  EXPECT_EQ(st.key_count(), 1u);
}

TEST(Store, OverwriteReusesSpace) {
  Store st(Store::kPerKeyOverhead + 10, "t");
  ASSERT_TRUE(st.put("t", "a", Blob::ghost(10)).ok());
  // Same key, same size: allowed even though the store is full.
  EXPECT_TRUE(st.put("t", "a", Blob::ghost(10)).ok());
  EXPECT_TRUE(st.put("t", "a", Blob::ghost(4)).ok());
  EXPECT_EQ(st.used(), Store::kPerKeyOverhead + 4);
}

TEST(Store, DeleteFreesSpace) {
  Store st(1 << 20, "t");
  ASSERT_TRUE(st.put("t", "a", Blob::ghost(100)).ok());
  const auto used = st.used();
  EXPECT_GT(used, 100u);
  ASSERT_TRUE(st.del("t", "a").ok());
  EXPECT_EQ(st.used(), 0u);
  EXPECT_EQ(st.del("t", "a").code(), Errc::not_found);
}

TEST(Store, ExistsAndValueSize) {
  Store st(1 << 20, "t");
  ASSERT_TRUE(st.put("t", "a", Blob::ghost(77)).ok());
  EXPECT_TRUE(st.exists("t", "a").value());
  EXPECT_FALSE(st.exists("t", "b").value());
  EXPECT_EQ(st.value_size("t", "a").value(), 77u);
  EXPECT_EQ(st.value_size("t", "b").code(), Errc::not_found);
}

TEST(Store, KeysListsEverything) {
  Store st(1 << 20, "t");
  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(st.put("t", "k" + std::to_string(i), Blob::ghost(1)).ok());
  auto keys = st.keys();
  EXPECT_EQ(keys.size(), 5u);
}

TEST(Store, CloseMakesUnavailableButDrainable) {
  Store st(1 << 20, "t");
  ASSERT_TRUE(st.put("t", "a", bytes_blob("data")).ok());
  st.close();
  EXPECT_EQ(st.get("t", "a").code(), Errc::unavailable);
  EXPECT_EQ(st.put("t", "b", Blob::ghost(1)).code(), Errc::unavailable);
  auto drained = st.drain("a");
  ASSERT_TRUE(drained.has_value());
  EXPECT_EQ(*drained, bytes_blob("data"));
  EXPECT_EQ(st.used(), 0u);
  EXPECT_FALSE(st.drain("a").has_value());
}

TEST(Store, ClearReturnsAccountedBytes) {
  Store st(1 << 20, "t");
  ASSERT_TRUE(st.put("t", "a", Blob::ghost(100)).ok());
  ASSERT_TRUE(st.put("t", "b", Blob::ghost(50)).ok());
  const auto freed = st.clear();
  EXPECT_EQ(freed, 150u + 2 * Store::kPerKeyOverhead);
  EXPECT_EQ(st.used(), 0u);
  EXPECT_EQ(st.key_count(), 0u);
}

TEST(Store, StatsAccumulate) {
  Store st(1 << 20, "t");
  ASSERT_TRUE(st.put("t", "a", Blob::ghost(10)).ok());
  (void)st.get("t", "a");
  (void)st.get("t", "zzz");
  EXPECT_EQ(st.stats().puts, 1u);
  EXPECT_EQ(st.stats().gets, 2u);
  EXPECT_EQ(st.stats().hits, 1u);
  EXPECT_EQ(st.stats().misses, 1u);
  EXPECT_EQ(st.stats().bytes_in, 10u);
  EXPECT_EQ(st.stats().bytes_out, 10u);
}

}  // namespace
}  // namespace memfss::kvstore
