#include "exp/timeseries.hpp"

#include <gtest/gtest.h>

#include "sim/fluid.hpp"

namespace memfss::exp {
namespace {

struct Rig {
  sim::Simulator sim;
  cluster::Cluster cl{sim, 2};
};

TEST(TimeSeriesProbe, SamplesAtInterval) {
  Rig rig;
  TimeSeriesProbe probe(rig.cl, {0, 1}, 1.0);
  probe.start();
  rig.sim.schedule(5.5, [&] { probe.stop(); });
  // Keep a timer alive so run() covers the full window.
  rig.sim.schedule(10.0, [] {});
  rig.sim.run();
  // Stopped after the sample covering [5, 6): 6 samples.
  EXPECT_EQ(probe.samples().size(), 6u);
  EXPECT_DOUBLE_EQ(probe.samples()[0].t, 1.0);
  EXPECT_DOUBLE_EQ(probe.samples()[5].t, 6.0);
}

TEST(TimeSeriesProbe, CapturesLoadWindow) {
  Rig rig;
  TimeSeriesProbe probe(rig.cl, {0}, 1.0);
  probe.start();
  // CPU busy (8 of 16 cores) from t=2 to t=4.
  rig.sim.schedule(2.0, [&] {
    rig.sim.spawn([](Rig& r) -> sim::Task<> {
      co_await r.cl.node(0).cpu().consume(16.0, 8.0);
    }(rig));
  });
  rig.sim.schedule(6.0, [&] { probe.stop(); });
  rig.sim.run();
  ASSERT_GE(probe.samples().size(), 4u);
  EXPECT_NEAR(probe.samples()[0].util.cpu, 0.0, 1e-9);   // [0,1)
  EXPECT_NEAR(probe.samples()[2].util.cpu, 0.5, 1e-9);   // [2,3): 8/16
  EXPECT_NEAR(probe.peak(&GroupUtilization::cpu), 0.5, 1e-9);
}

TEST(TimeSeriesProbe, SparklineShapesFollowLoad) {
  Rig rig;
  TimeSeriesProbe probe(rig.cl, {0}, 1.0);
  probe.start();
  rig.sim.schedule(5.0, [&] {
    rig.sim.spawn([](Rig& r) -> sim::Task<> {
      co_await r.cl.node(0).cpu().consume(80.0, 16.0);  // full load 5s
    }(rig));
  });
  rig.sim.schedule(10.0, [&] { probe.stop(); });
  rig.sim.run();
  const auto line = probe.sparkline(&GroupUtilization::cpu, 10);
  ASSERT_EQ(line.size(), 10u);
  EXPECT_EQ(line[0], ' ');   // idle start
  EXPECT_EQ(line[7], '@');   // saturated middle
}

TEST(TimeSeriesProbe, EmptySeriesRendersEmpty) {
  Rig rig;
  TimeSeriesProbe probe(rig.cl, {0}, 1.0);
  EXPECT_TRUE(probe.sparkline(&GroupUtilization::cpu).empty());
  EXPECT_EQ(probe.peak(&GroupUtilization::cpu), 0.0);
}

}  // namespace
}  // namespace memfss::exp
