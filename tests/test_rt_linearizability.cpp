// Linearizability-lite property test for the sharded runtime store.
//
// Method (DESIGN.md §11): every ShardedStore operation is stamped with a
// per-shard serialization index (`seq`) inside the shard's critical
// section, and a key lives on exactly one shard -- so sorting the
// completed operations of a shard by seq recovers the order in which
// they really executed. Racing threads record (op, seq, outcome)
// histories; afterwards each shard's merged history is replayed, in seq
// order, against a sequential kvstore::Store model. If the concurrent
// store is a linearizable composition of its shards, every recorded
// outcome (result code, fetched checksum) must match the model exactly.
//
// Values are ghost blobs (size + tag checksum, no payload) so the test
// can push >=4 threads x >=10k ops through quickly even under TSan, and
// the aggregate capacity is ample so the only cross-shard coupling (the
// atomic memory gate, which a per-shard model cannot replay) never
// fires.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "kvstore/store.hpp"
#include "rt/sharded_store.hpp"

namespace memfss::rt {
namespace {

enum class Kind : std::uint8_t { put, get, del };

struct Record {
  Kind kind;
  std::uint32_t key_index;
  std::uint64_t seq;
  Errc code;
  Bytes size;              // put: stored size
  std::uint64_t tag;       // put: ghost tag
  std::uint64_t checksum;  // get: fetched checksum
};

constexpr std::size_t kThreads = 4;
constexpr std::size_t kOpsPerThread = 12000;
constexpr std::size_t kKeySpace = 64;  // small => heavy cross-thread races
constexpr char kToken[] = "tok";

std::string key_name(std::uint32_t i) { return "k" + std::to_string(i); }

std::vector<Record> run_thread(ShardedStore& store, std::uint64_t seed,
                               std::size_t thread_index) {
  Rng rng(seed * 1000003 + thread_index);
  std::vector<Record> hist;
  hist.reserve(kOpsPerThread);
  for (std::size_t i = 0; i < kOpsPerThread; ++i) {
    Record rec{};
    rec.key_index = static_cast<std::uint32_t>(
        rng.uniform_u64(0, kKeySpace - 1));
    const std::string key = key_name(rec.key_index);
    const double u = rng.next_double();
    if (u < 0.45) {
      rec.kind = Kind::put;
      rec.size = rng.uniform_u64(0, 256);
      rec.tag = rng.next_u64();
      rec.code = store.put(kToken, key,
                           kvstore::Blob::ghost(rec.size, rec.tag),
                           &rec.seq).code();
    } else if (u < 0.85) {
      rec.kind = Kind::get;
      auto r = store.get(kToken, key, &rec.seq);
      rec.code = r.code();
      if (r.ok()) rec.checksum = r.value().checksum();
    } else {
      rec.kind = Kind::del;
      rec.code = store.del(kToken, key, &rec.seq).code();
    }
    hist.push_back(rec);
  }
  return hist;
}

void check_seed(std::uint64_t seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  ShardedStore store({8, 64 * units::MiB, kToken});  // cap never binds

  std::vector<std::vector<Record>> histories(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] { histories[t] = run_thread(store, seed, t); });
  for (auto& th : threads) th.join();

  // Merge histories per shard and order by the shard serialization seq.
  std::vector<std::vector<Record>> by_shard(store.shard_count());
  for (const auto& hist : histories)
    for (const auto& rec : hist)
      by_shard[store.shard_of(key_name(rec.key_index))].push_back(rec);
  for (auto& recs : by_shard)
    std::sort(recs.begin(), recs.end(),
              [](const Record& a, const Record& b) { return a.seq < b.seq; });

  std::size_t replayed = 0;
  for (std::size_t s = 0; s < by_shard.size(); ++s) {
    kvstore::Store model(64 * units::MiB, kToken);
    std::uint64_t prev_seq = 0;
    for (const auto& rec : by_shard[s]) {
      ASSERT_GT(rec.seq, prev_seq)
          << "shard " << s << ": serialization indices not unique";
      prev_seq = rec.seq;
      const std::string key = key_name(rec.key_index);
      switch (rec.kind) {
        case Kind::put:
          ASSERT_EQ(model.put(kToken, key,
                              kvstore::Blob::ghost(rec.size, rec.tag)).code(),
                    rec.code)
              << "shard " << s << " seq " << rec.seq;
          break;
        case Kind::get: {
          auto m = model.get(kToken, key);
          ASSERT_EQ(m.code(), rec.code) << "shard " << s << " seq " << rec.seq;
          if (m.ok()) {
            ASSERT_EQ(m.value().checksum(), rec.checksum)
                << "shard " << s << " seq " << rec.seq
                << ": fetched a value no sequential witness explains";
          }
          break;
        }
        case Kind::del:
          ASSERT_EQ(model.del(kToken, key).code(), rec.code)
              << "shard " << s << " seq " << rec.seq;
          break;
      }
      ++replayed;
    }
  }
  EXPECT_EQ(replayed, kThreads * kOpsPerThread);
}

TEST(RtLinearizability, ConcurrentHistoriesHaveSequentialWitness) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) check_seed(seed);
}

}  // namespace
}  // namespace memfss::rt
