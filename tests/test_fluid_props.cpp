// Property tests for FluidResource: randomized job mixes must satisfy
// the conservation and fairness invariants of processor sharing,
// independent of arrival pattern.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "sim/fluid.hpp"

namespace memfss::sim {
namespace {

struct JobPlan {
  double arrival;
  double work;
  double cap;
};

struct JobDone {
  double finish = -1;
};

Task<> run_job(Simulator& sim, FluidResource& res, JobPlan plan,
               JobDone& done) {
  co_await sim.delay(plan.arrival);
  co_await res.consume(plan.work, plan.cap);
  done.finish = sim.now();
}

class FluidRandomMix : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FluidRandomMix, ConservationAndOrderInvariants) {
  Rng rng(GetParam());
  Simulator sim;
  const double capacity = rng.uniform(1.0, 20.0);
  FluidResource res(sim, capacity);

  const std::size_t n = 3 + std::size_t(rng.uniform_u64(0, 17));
  std::vector<JobPlan> plans(n);
  std::vector<JobDone> done(n);
  double total_work = 0.0;
  double first_arrival = 1e300;
  for (auto& p : plans) {
    p.arrival = rng.uniform(0.0, 5.0);
    p.work = rng.uniform(0.1, 30.0);
    p.cap = rng.chance(0.5) ? rng.uniform(0.2, capacity * 1.5)
                            : FluidResource::kUncapped;
    total_work += p.work;
    first_arrival = std::min(first_arrival, p.arrival);
  }
  for (std::size_t i = 0; i < n; ++i)
    sim.spawn(run_job(sim, res, plans[i], done[i]));
  sim.run();

  double last_finish = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_GE(done[i].finish, 0.0) << "job " << i << " never finished";
    // A job cannot finish faster than running alone at min(cap, capacity).
    const double solo_rate = std::min(plans[i].cap, capacity);
    EXPECT_GE(done[i].finish + 1e-6,
              plans[i].arrival + plans[i].work / solo_rate)
        << "job " << i;
    last_finish = std::max(last_finish, done[i].finish);
  }
  // Conservation: the resource cannot process work faster than capacity.
  EXPECT_GE(last_finish + 1e-6, first_arrival + total_work / capacity);
  // All resources drained.
  EXPECT_EQ(res.active_jobs(), 0u);
  EXPECT_NEAR(res.allocated_rate(), 0.0, 1e-9);
  // Utilization average is a valid fraction.
  const double u = res.average_utilization(last_finish);
  EXPECT_GE(u, 0.0);
  EXPECT_LE(u, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FluidRandomMix,
                         ::testing::Range<std::uint64_t>(1, 25));

TEST(FluidProps, IdenticalJobsFinishTogether) {
  Simulator sim;
  FluidResource res(sim, 6.0);
  std::vector<JobDone> done(4);
  for (auto& d : done)
    sim.spawn(run_job(sim, res, {0.0, 12.0, FluidResource::kUncapped}, d));
  sim.run();
  for (const auto& d : done) EXPECT_NEAR(d.finish, done[0].finish, 1e-9);
  EXPECT_NEAR(done[0].finish, 8.0, 1e-9);  // 48 work at 6/s
}

TEST(FluidProps, SmallerJobNeverFinishesAfterBiggerEqualArrival) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    Simulator sim;
    FluidResource res(sim, rng.uniform(1.0, 10.0));
    const double small_work = rng.uniform(0.1, 5.0);
    const double big_work = small_work + rng.uniform(0.1, 10.0);
    JobDone small, big;
    sim.spawn(run_job(sim, res, {0.0, small_work, 1e18}, small));
    sim.spawn(run_job(sim, res, {0.0, big_work, 1e18}, big));
    sim.run();
    EXPECT_LE(small.finish, big.finish + 1e-9);
  }
}

}  // namespace
}  // namespace memfss::sim
