// Tests for active rebalance and redundancy repair (fs/maintenance.cpp).
#include <gtest/gtest.h>

#include "co_test.hpp"
#include "common/rng.hpp"
#include "common/str.hpp"
#include "fs/client.hpp"
#include "fs/filesystem.hpp"

namespace memfss::fs {
namespace {

std::vector<cluster::ScavengeOffer> offers(std::vector<NodeId> nodes) {
  std::vector<cluster::ScavengeOffer> out;
  for (NodeId n : nodes) out.push_back({n, units::GiB, 500e6, "t"});
  return out;
}

struct Rig {
  sim::Simulator sim;
  cluster::Cluster cl;
  FileSystem fs;

  explicit Rig(FileSystemConfig cfg = base_config())
      : cl(sim, 12), fs(cl, std::move(cfg)) {}

  static FileSystemConfig base_config() {
    FileSystemConfig cfg;
    cfg.own_nodes = {0, 1, 2, 3};
    cfg.own_store_capacity = 4 * units::GiB;
    cfg.stripe_size = 1 * units::MiB;
    return cfg;
  }

  template <typename F>
  void run(F&& body) {
    bool finished = false;
    sim.spawn([](Rig& r, F fn, bool& done) -> sim::Task<> {
      co_await fn(r);
      done = true;
    }(*this, std::forward<F>(body), finished));
    sim.run();
    ASSERT_TRUE(finished);
  }
};

TEST(Rebalance, MovesOldEpochFilesToVictims) {
  Rig rig;
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    // Written under epoch 0: everything on own nodes.
    CO_ASSERT_TRUE((co_await c.write_file("/old", 64 * units::MiB)).ok());
    CO_ASSERT_TRUE(
        r.fs.add_victim_class(1, offers({4, 5, 6, 7, 8, 9, 10, 11}), 0.25)
            .ok());
    const auto report = co_await r.fs.rebalance_all();
    CO_ASSERT_OK(report.status);
    EXPECT_EQ(report.files_scanned, 1u);
    EXPECT_EQ(report.files_updated, 1u);
    EXPECT_GT(report.stripes_moved, 30u);  // ~75% of 64 stripes
    EXPECT_GT(report.bytes_moved, 30 * units::MiB);
    // Metadata epoch advanced...
    auto st = co_await c.stat("/old");
    CO_ASSERT_TRUE(st.ok());
    EXPECT_EQ(st.value().attr.epoch, r.fs.current_epoch());
    // ...and reads hit rank-0 directly with no further lazy moves.
    const auto relocs = r.fs.counters().lazy_relocations;
    auto bytes = co_await c.read_file("/old");
    CO_ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(bytes.value(), 64 * units::MiB);
    co_await r.sim.delay(5.0);
    EXPECT_EQ(r.fs.counters().lazy_relocations, relocs);
    EXPECT_EQ(r.fs.counters().read_retries, 0u);
  });
  Bytes victim_bytes = 0;
  for (NodeId v = 4; v < 12; ++v) victim_bytes += rig.fs.bytes_on(v);
  EXPECT_GT(victim_bytes, 30 * units::MiB);
}

TEST(Rebalance, CurrentEpochFilesUntouched) {
  Rig rig;
  ASSERT_TRUE(rig.fs.add_victim_class(1, offers({4, 5, 6, 7}), 0.5).ok());
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    CO_ASSERT_TRUE((co_await c.write_file("/new", 16 * units::MiB)).ok());
    const auto report = co_await r.fs.rebalance_all();
    CO_ASSERT_OK(report.status);
    EXPECT_EQ(report.files_scanned, 1u);
    EXPECT_EQ(report.files_updated, 0u);
    EXPECT_EQ(report.stripes_moved, 0u);
  });
}

TEST(Rebalance, ReplicatedFilesKeepAllCopies) {
  auto cfg = Rig::base_config();
  cfg.redundancy = RedundancyMode::replicated;
  cfg.copies = 2;
  Rig rig(std::move(cfg));
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    CO_ASSERT_TRUE((co_await c.write_file("/rep", 16 * units::MiB)).ok());
    const Bytes before = r.fs.total_bytes();
    CO_ASSERT_TRUE(
        r.fs.add_victim_class(1, offers({4, 5, 6, 7}), 0.25).ok());
    const auto report = co_await r.fs.rebalance_all();
    CO_ASSERT_OK(report.status);
    // Storage volume unchanged: copies moved, not duplicated or dropped.
    EXPECT_EQ(r.fs.total_bytes(), before);
    auto bytes = co_await c.read_file("/rep");
    CO_ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(bytes.value(), 16 * units::MiB);
  });
}

TEST(Repair, RestoresMissingReplicas) {
  auto cfg = Rig::base_config();
  cfg.redundancy = RedundancyMode::replicated;
  cfg.copies = 2;
  Rig rig(std::move(cfg));
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    CO_ASSERT_TRUE((co_await c.write_file("/f", 16 * units::MiB)).ok());
    const Bytes before = r.fs.total_bytes();
    r.fs.server(1).wipe();  // crash one own node's store
    EXPECT_LT(r.fs.total_bytes(), before);
    const auto report = co_await r.fs.repair_all();
    CO_ASSERT_OK(report.status);
    EXPECT_GT(report.stripes_repaired, 0u);
    EXPECT_EQ(r.fs.total_bytes(), before);  // full redundancy restored
    // A second crash of a *different* node is now survivable again.
    r.fs.server(2).wipe();
    auto bytes = co_await c.read_file("/f");
    CO_ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(bytes.value(), 16 * units::MiB);
  });
}

TEST(Repair, ReportsUnrecoverableLoss) {
  auto cfg = Rig::base_config();
  cfg.redundancy = RedundancyMode::replicated;
  cfg.copies = 2;
  Rig rig(std::move(cfg));
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    CO_ASSERT_TRUE((co_await c.write_file("/f", 8 * units::MiB)).ok());
    // Lose every store: nothing left to repair from.
    for (NodeId n = 0; n < 4; ++n) r.fs.server(n).wipe();
    const auto report = co_await r.fs.repair_all();
    EXPECT_EQ(report.status.code(), Errc::corruption);
    EXPECT_EQ(report.stripes_repaired, 0u);
  });
}

TEST(Repair, RebuildsErasureShards) {
  auto cfg = Rig::base_config();
  cfg.redundancy = RedundancyMode::erasure;
  cfg.ec_k = 3;
  cfg.ec_m = 2;
  Rig rig(std::move(cfg));
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    Rng rng(4);
    std::vector<std::uint8_t> payload(2 * units::MiB + 17);
    for (auto& b : payload) b = std::uint8_t(rng.next_u64());
    CO_ASSERT_TRUE((co_await c.write_file_bytes("/ec", payload)).ok());
    const Bytes before = r.fs.total_bytes();
    r.fs.server(2).wipe();
    const auto report = co_await r.fs.repair_all();
    CO_ASSERT_OK(report.status);
    EXPECT_GT(report.stripes_repaired, 0u);
    EXPECT_EQ(r.fs.total_bytes(), before);
    // Two further losses exceed m = 2 only if repair had not happened;
    // after repair one more loss is fine.
    r.fs.server(3).wipe();
    auto back = co_await c.read_file_bytes("/ec");
    CO_ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), payload);
  });
}

TEST(Repair, SkipsUnredundantFiles) {
  Rig rig;
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    CO_ASSERT_TRUE((co_await c.write_file("/plain", 4 * units::MiB)).ok());
    const auto report = co_await r.fs.repair_all();
    CO_ASSERT_OK(report.status);
    EXPECT_EQ(report.files_scanned, 1u);
    EXPECT_EQ(report.stripes_repaired, 0u);
  });
}

TEST(ListFiles, WalksTreeInOrder) {
  Namespace ns;
  FileAttr a;
  a.stripe_size = 1;
  ASSERT_TRUE(ns.mkdirs("/b/sub").ok());
  ASSERT_TRUE(ns.create("/b/sub/y", a).ok());
  ASSERT_TRUE(ns.create("/a", a).ok());
  ASSERT_TRUE(ns.create("/b/x", a).ok());
  const auto files = ns.list_files();
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(files[0].first, "/a");
  EXPECT_EQ(files[1].first, "/b/sub/y");
  EXPECT_EQ(files[2].first, "/b/x");
}

}  // namespace
}  // namespace memfss::fs
