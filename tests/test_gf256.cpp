#include "erasure/gf256.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "erasure/gf256_simd.hpp"

namespace memfss::erasure {
namespace {

TEST(GF256, AdditionIsXor) {
  EXPECT_EQ(GF256::add(0x57, 0x83), 0x57 ^ 0x83);
  EXPECT_EQ(GF256::sub(0x57, 0x83), 0x57 ^ 0x83);
}

TEST(GF256, KnownProduct) {
  // Classic AES example: 0x57 * 0x83 = 0xc1 under 0x11b.
  EXPECT_EQ(GF256::mul(0x57, 0x83), 0xc1);
  EXPECT_EQ(GF256::mul(0x02, 0x80), 0x1b ^ 0x00);  // reduction kicks in
}

TEST(GF256, MulByZeroAndOne) {
  for (unsigned a = 0; a < 256; ++a) {
    EXPECT_EQ(GF256::mul(std::uint8_t(a), 0), 0);
    EXPECT_EQ(GF256::mul(std::uint8_t(a), 1), a);
  }
}

TEST(GF256, MultiplicationCommutesAndAssociates) {
  // Property sweep over a sample grid (full 256^3 is excessive).
  for (unsigned a = 1; a < 256; a += 7) {
    for (unsigned b = 1; b < 256; b += 11) {
      EXPECT_EQ(GF256::mul(a, b), GF256::mul(b, a));
      for (unsigned c = 1; c < 256; c += 53) {
        EXPECT_EQ(GF256::mul(GF256::mul(a, b), c),
                  GF256::mul(a, GF256::mul(b, c)));
      }
    }
  }
}

TEST(GF256, DistributesOverAddition) {
  for (unsigned a = 1; a < 256; a += 13) {
    for (unsigned b = 0; b < 256; b += 17) {
      for (unsigned c = 0; c < 256; c += 19) {
        EXPECT_EQ(GF256::mul(a, b ^ c),
                  GF256::mul(a, b) ^ GF256::mul(a, c));
      }
    }
  }
}

TEST(GF256, EveryNonzeroHasInverse) {
  for (unsigned a = 1; a < 256; ++a) {
    const auto inv = GF256::inv(std::uint8_t(a));
    EXPECT_EQ(GF256::mul(std::uint8_t(a), inv), 1) << "a=" << a;
  }
}

TEST(GF256, DivisionInvertsMultiplication) {
  for (unsigned a = 0; a < 256; a += 5) {
    for (unsigned b = 1; b < 256; b += 9) {
      const auto q = GF256::div(std::uint8_t(a), std::uint8_t(b));
      EXPECT_EQ(GF256::mul(q, std::uint8_t(b)), a);
    }
  }
}

TEST(GF256, PowMatchesRepeatedMul) {
  for (unsigned a : {2u, 3u, 0x53u}) {
    std::uint8_t acc = 1;
    for (unsigned e = 0; e < 20; ++e) {
      EXPECT_EQ(GF256::pow(std::uint8_t(a), e), acc);
      acc = GF256::mul(acc, std::uint8_t(a));
    }
  }
}

TEST(GF256, GeneratorHasFullOrder) {
  // exp cycles through all 255 nonzero elements.
  std::vector<bool> seen(256, false);
  for (unsigned e = 0; e < 255; ++e) {
    const auto v = GF256::exp(e);
    EXPECT_NE(v, 0);
    EXPECT_FALSE(seen[v]) << "repeat at e=" << e;
    seen[v] = true;
  }
}

TEST(GF256, MulAccMatchesScalarLoop) {
  std::vector<std::uint8_t> dst(64, 0), src(64);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = std::uint8_t(i * 7 + 1);
  auto expect = dst;
  const std::uint8_t c = 0x39;
  for (std::size_t i = 0; i < src.size(); ++i)
    expect[i] ^= GF256::mul(c, src[i]);
  GF256::mul_acc(dst, src, c);
  EXPECT_EQ(dst, expect);
}

TEST(GF256, MulAccSpecialCoefficients) {
  std::vector<std::uint8_t> dst(8, 0xAA), src(8, 0x0F);
  auto before = dst;
  GF256::mul_acc(dst, src, 0);  // no-op
  EXPECT_EQ(dst, before);
  GF256::mul_acc(dst, src, 1);  // xor
  for (std::size_t i = 0; i < dst.size(); ++i)
    EXPECT_EQ(dst[i], 0xAA ^ 0x0F);
}

// --- SIMD backend equivalence (DESIGN.md §14) -------------------------------
//
// The scalar backend is the oracle; every backend the host can run must
// produce byte-for-byte identical output for every length (SIMD blocks,
// half-blocks, scalar tails) and every pointer misalignment.

std::vector<const GF256Kernels*> simd_backends() {
  std::vector<const GF256Kernels*> v;
  for (const char* name : {"ssse3", "avx2"}) {
    if (const GF256Kernels* k = gf256_kernels_by_name(name)) v.push_back(k);
  }
  return v;
}

TEST(GF256Simd, ScalarBackendAlwaysAvailable) {
  const GF256Kernels* sc = gf256_kernels_by_name("scalar");
  ASSERT_NE(sc, nullptr);
  EXPECT_STREQ(sc->name, "scalar");
}

TEST(GF256Simd, UnknownBackendIsNull) {
  EXPECT_EQ(gf256_kernels_by_name("avx512vbmi"), nullptr);
  EXPECT_EQ(gf256_kernels_by_name(""), nullptr);
}

TEST(GF256Simd, ActiveKernelIsFetchableByName) {
  const GF256Kernels& active = gf256_active_kernels();
  EXPECT_STREQ(active.name, gf256_kernel_name());
  const GF256Kernels* by_name = gf256_kernels_by_name(active.name);
  ASSERT_NE(by_name, nullptr);
  EXPECT_EQ(by_name, &active);
}

TEST(GF256Simd, MulAccMatchesScalarAllLengthsAndOffsets) {
  const GF256Kernels* sc = gf256_kernels_by_name("scalar");
  ASSERT_NE(sc, nullptr);
  Rng rng(101);
  for (const GF256Kernels* kn : simd_backends()) {
    for (std::size_t len = 0; len <= 257; ++len) {
      // Offset sweep at small lengths covers every (alignment, tail)
      // pair; beyond that a rotating offset keeps the test fast.
      const std::size_t off = len % 32;
      std::vector<std::uint8_t> src(len + 64), a(len + 64), b(len + 64);
      for (auto& x : src) x = std::uint8_t(rng.next_u64());
      for (std::size_t i = 0; i < a.size(); ++i)
        a[i] = b[i] = std::uint8_t(rng.next_u64());
      const std::uint8_t c = std::uint8_t(rng.next_u64());
      kn->mul_acc(a.data() + off, src.data() + off, len, c);
      sc->mul_acc(b.data() + off, src.data() + off, len, c);
      ASSERT_EQ(a, b) << kn->name << " len=" << len << " off=" << off
                      << " c=" << unsigned(c);
    }
    // Full offset sweep at one SIMD-block-straddling length.
    for (std::size_t off = 0; off <= 31; ++off) {
      const std::size_t len = 97;
      std::vector<std::uint8_t> src(len + 64), a(len + 64), b(len + 64);
      for (auto& x : src) x = std::uint8_t(rng.next_u64());
      for (std::size_t i = 0; i < a.size(); ++i)
        a[i] = b[i] = std::uint8_t(rng.next_u64());
      const std::uint8_t c = std::uint8_t(rng.next_u64());
      kn->mul_acc(a.data() + off, src.data() + off, len, c);
      sc->mul_acc(b.data() + off, src.data() + off, len, c);
      ASSERT_EQ(a, b) << kn->name << " off=" << off;
    }
  }
}

TEST(GF256Simd, MulAccSpecialCoefficientsEveryBackend) {
  const GF256Kernels* sc = gf256_kernels_by_name("scalar");
  ASSERT_NE(sc, nullptr);
  Rng rng(103);
  std::vector<const GF256Kernels*> all = simd_backends();
  all.push_back(sc);
  for (const GF256Kernels* kn : all) {
    std::vector<std::uint8_t> src(100), dst(100), before(100);
    for (auto& x : src) x = std::uint8_t(rng.next_u64());
    for (std::size_t i = 0; i < dst.size(); ++i)
      before[i] = dst[i] = std::uint8_t(rng.next_u64());
    kn->mul_acc(dst.data(), src.data(), dst.size(), 0);  // c==0: no-op
    EXPECT_EQ(dst, before) << kn->name;
    kn->mul_acc(dst.data(), src.data(), dst.size(), 1);  // c==1: plain xor
    for (std::size_t i = 0; i < dst.size(); ++i)
      ASSERT_EQ(dst[i], before[i] ^ src[i]) << kn->name << " i=" << i;
  }
}

TEST(GF256Simd, MulRowAccMatchesScalarRandomized) {
  const GF256Kernels* sc = gf256_kernels_by_name("scalar");
  ASSERT_NE(sc, nullptr);
  Rng rng(107);
  for (const GF256Kernels* kn : simd_backends()) {
    for (int iter = 0; iter < 400; ++iter) {
      const std::size_t k = 1 + rng.next_u64() % 17;
      const std::size_t len = rng.next_u64() % 300;
      const bool accumulate = rng.next_u64() % 2 != 0;
      std::vector<std::vector<std::uint8_t>> srcs(
          k, std::vector<std::uint8_t>(len));
      std::vector<const std::uint8_t*> ptrs(k);
      std::vector<std::uint8_t> coeffs(k);
      for (std::size_t j = 0; j < k; ++j) {
        for (auto& x : srcs[j]) x = std::uint8_t(rng.next_u64());
        ptrs[j] = srcs[j].data();
        // Bias toward the special-cased coefficients 0 and 1.
        const std::uint64_t roll = rng.next_u64();
        coeffs[j] = roll % 4 == 0 ? std::uint8_t(roll % 2)
                                  : std::uint8_t(roll >> 32);
      }
      std::vector<std::uint8_t> a(len), b(len);
      for (std::size_t i = 0; i < len; ++i)
        a[i] = b[i] = std::uint8_t(rng.next_u64());
      kn->mul_row_acc(a.data(), ptrs.data(), coeffs.data(), k, len,
                      accumulate);
      sc->mul_row_acc(b.data(), ptrs.data(), coeffs.data(), k, len,
                      accumulate);
      ASSERT_EQ(a, b) << kn->name << " iter=" << iter << " k=" << k
                      << " len=" << len << " acc=" << accumulate;
    }
  }
}

TEST(GF256Simd, MulRowAccZeroSourcesZeroFillsOrKeeps) {
  std::vector<const GF256Kernels*> all = simd_backends();
  all.push_back(gf256_kernels_by_name("scalar"));
  for (const GF256Kernels* kn : all) {
    std::vector<std::uint8_t> dst(80, 0x5A);
    kn->mul_row_acc(dst.data(), nullptr, nullptr, 0, dst.size(), true);
    EXPECT_EQ(dst, std::vector<std::uint8_t>(80, 0x5A)) << kn->name;
    kn->mul_row_acc(dst.data(), nullptr, nullptr, 0, dst.size(), false);
    EXPECT_EQ(dst, std::vector<std::uint8_t>(80, 0x00)) << kn->name;
  }
}

TEST(GF256Simd, MulRowAccMatchesManualMulAccChain) {
  // Cross-check the fused row pass against the composition it replaces:
  // mul_row_acc(dst, srcs, coeffs) == k mul_acc calls into dst.
  Rng rng(109);
  const GF256Kernels& kn = gf256_active_kernels();
  const std::size_t k = 6, len = 211;
  std::vector<std::vector<std::uint8_t>> srcs(k,
                                              std::vector<std::uint8_t>(len));
  std::vector<const std::uint8_t*> ptrs(k);
  std::vector<std::uint8_t> coeffs(k);
  for (std::size_t j = 0; j < k; ++j) {
    for (auto& x : srcs[j]) x = std::uint8_t(rng.next_u64());
    ptrs[j] = srcs[j].data();
    coeffs[j] = std::uint8_t(rng.next_u64());
  }
  std::vector<std::uint8_t> fused(len, 0), chained(len, 0);
  kn.mul_row_acc(fused.data(), ptrs.data(), coeffs.data(), k, len, false);
  for (std::size_t j = 0; j < k; ++j)
    kn.mul_acc(chained.data(), ptrs[j], len, coeffs[j]);
  EXPECT_EQ(fused, chained);
}

TEST(MatrixInvert, IdentityStaysIdentity) {
  std::vector<std::uint8_t> m{1, 0, 0, 0, 1, 0, 0, 0, 1};
  ASSERT_TRUE(gf256_invert_matrix(m, 3));
  EXPECT_EQ(m, (std::vector<std::uint8_t>{1, 0, 0, 0, 1, 0, 0, 0, 1}));
}

TEST(MatrixInvert, InverseTimesOriginalIsIdentity) {
  const std::vector<std::uint8_t> orig{1, 2, 3, 4, 5, 6, 7, 8, 10};
  auto inv = orig;
  ASSERT_TRUE(gf256_invert_matrix(inv, 3));
  // Multiply orig * inv.
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      std::uint8_t acc = 0;
      for (std::size_t k = 0; k < 3; ++k)
        acc ^= GF256::mul(orig[r * 3 + k], inv[k * 3 + c]);
      EXPECT_EQ(acc, r == c ? 1 : 0) << r << "," << c;
    }
  }
}

TEST(MatrixInvert, SingularDetected) {
  // Two identical rows.
  std::vector<std::uint8_t> m{1, 2, 3, 1, 2, 3, 0, 1, 1};
  EXPECT_FALSE(gf256_invert_matrix(m, 3));
}

}  // namespace
}  // namespace memfss::erasure
