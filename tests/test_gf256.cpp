#include "erasure/gf256.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace memfss::erasure {
namespace {

TEST(GF256, AdditionIsXor) {
  EXPECT_EQ(GF256::add(0x57, 0x83), 0x57 ^ 0x83);
  EXPECT_EQ(GF256::sub(0x57, 0x83), 0x57 ^ 0x83);
}

TEST(GF256, KnownProduct) {
  // Classic AES example: 0x57 * 0x83 = 0xc1 under 0x11b.
  EXPECT_EQ(GF256::mul(0x57, 0x83), 0xc1);
  EXPECT_EQ(GF256::mul(0x02, 0x80), 0x1b ^ 0x00);  // reduction kicks in
}

TEST(GF256, MulByZeroAndOne) {
  for (unsigned a = 0; a < 256; ++a) {
    EXPECT_EQ(GF256::mul(std::uint8_t(a), 0), 0);
    EXPECT_EQ(GF256::mul(std::uint8_t(a), 1), a);
  }
}

TEST(GF256, MultiplicationCommutesAndAssociates) {
  // Property sweep over a sample grid (full 256^3 is excessive).
  for (unsigned a = 1; a < 256; a += 7) {
    for (unsigned b = 1; b < 256; b += 11) {
      EXPECT_EQ(GF256::mul(a, b), GF256::mul(b, a));
      for (unsigned c = 1; c < 256; c += 53) {
        EXPECT_EQ(GF256::mul(GF256::mul(a, b), c),
                  GF256::mul(a, GF256::mul(b, c)));
      }
    }
  }
}

TEST(GF256, DistributesOverAddition) {
  for (unsigned a = 1; a < 256; a += 13) {
    for (unsigned b = 0; b < 256; b += 17) {
      for (unsigned c = 0; c < 256; c += 19) {
        EXPECT_EQ(GF256::mul(a, b ^ c),
                  GF256::mul(a, b) ^ GF256::mul(a, c));
      }
    }
  }
}

TEST(GF256, EveryNonzeroHasInverse) {
  for (unsigned a = 1; a < 256; ++a) {
    const auto inv = GF256::inv(std::uint8_t(a));
    EXPECT_EQ(GF256::mul(std::uint8_t(a), inv), 1) << "a=" << a;
  }
}

TEST(GF256, DivisionInvertsMultiplication) {
  for (unsigned a = 0; a < 256; a += 5) {
    for (unsigned b = 1; b < 256; b += 9) {
      const auto q = GF256::div(std::uint8_t(a), std::uint8_t(b));
      EXPECT_EQ(GF256::mul(q, std::uint8_t(b)), a);
    }
  }
}

TEST(GF256, PowMatchesRepeatedMul) {
  for (unsigned a : {2u, 3u, 0x53u}) {
    std::uint8_t acc = 1;
    for (unsigned e = 0; e < 20; ++e) {
      EXPECT_EQ(GF256::pow(std::uint8_t(a), e), acc);
      acc = GF256::mul(acc, std::uint8_t(a));
    }
  }
}

TEST(GF256, GeneratorHasFullOrder) {
  // exp cycles through all 255 nonzero elements.
  std::vector<bool> seen(256, false);
  for (unsigned e = 0; e < 255; ++e) {
    const auto v = GF256::exp(e);
    EXPECT_NE(v, 0);
    EXPECT_FALSE(seen[v]) << "repeat at e=" << e;
    seen[v] = true;
  }
}

TEST(GF256, MulAccMatchesScalarLoop) {
  std::vector<std::uint8_t> dst(64, 0), src(64);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = std::uint8_t(i * 7 + 1);
  auto expect = dst;
  const std::uint8_t c = 0x39;
  for (std::size_t i = 0; i < src.size(); ++i)
    expect[i] ^= GF256::mul(c, src[i]);
  GF256::mul_acc(dst, src, c);
  EXPECT_EQ(dst, expect);
}

TEST(GF256, MulAccSpecialCoefficients) {
  std::vector<std::uint8_t> dst(8, 0xAA), src(8, 0x0F);
  auto before = dst;
  GF256::mul_acc(dst, src, 0);  // no-op
  EXPECT_EQ(dst, before);
  GF256::mul_acc(dst, src, 1);  // xor
  for (std::size_t i = 0; i < dst.size(); ++i)
    EXPECT_EQ(dst[i], 0xAA ^ 0x0F);
}

TEST(MatrixInvert, IdentityStaysIdentity) {
  std::vector<std::uint8_t> m{1, 0, 0, 0, 1, 0, 0, 0, 1};
  ASSERT_TRUE(gf256_invert_matrix(m, 3));
  EXPECT_EQ(m, (std::vector<std::uint8_t>{1, 0, 0, 0, 1, 0, 0, 0, 1}));
}

TEST(MatrixInvert, InverseTimesOriginalIsIdentity) {
  const std::vector<std::uint8_t> orig{1, 2, 3, 4, 5, 6, 7, 8, 10};
  auto inv = orig;
  ASSERT_TRUE(gf256_invert_matrix(inv, 3));
  // Multiply orig * inv.
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      std::uint8_t acc = 0;
      for (std::size_t k = 0; k < 3; ++k)
        acc ^= GF256::mul(orig[r * 3 + k], inv[k * 3 + c]);
      EXPECT_EQ(acc, r == c ? 1 : 0) << r << "," << c;
    }
  }
}

TEST(MatrixInvert, SingularDetected) {
  // Two identical rows.
  std::vector<std::uint8_t> m{1, 2, 3, 1, 2, 3, 0, 1, 1};
  EXPECT_FALSE(gf256_invert_matrix(m, 3));
}

}  // namespace
}  // namespace memfss::erasure
