// Property/fuzz coverage for the access-heat model (DESIGN.md §16).
//
// The heat counter is pure integer math inside kvstore::Store -- no
// simulator needed -- so these tests hammer it with random access traces
// and check the ordering laws the demotion policy depends on:
//   - halving decay: one access is worth kHeatQuantum >> elapsed epochs;
//   - add-access monotonicity: a trace with extra accesses is never
//     colder than the original;
//   - shift-later monotonicity: the same accesses closer to the query
//     epoch are never colder;
//   - extreme sim-time deltas (epoch 0 vs UINT64_MAX, epochs running
//     backwards) neither underflow, overflow, nor shift out of range --
//     the UBSan build of this suite is the proof.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "kvstore/store.hpp"

namespace memfss::kvstore {
namespace {

constexpr std::uint64_t kMaxEpoch = std::numeric_limits<std::uint64_t>::max();

/// Fresh store with one resident key per name in `keys` (heat tracking
/// only covers resident keys).
Store store_with(const std::vector<std::string>& keys) {
  Store s(1 << 20, "t");
  for (const auto& k : keys) {
    const auto st = s.put("t", k, Blob::ghost(16));
    EXPECT_TRUE(st.ok());
  }
  return s;
}

/// Apply an epoch-sorted access trace to one key.
void apply(Store& s, const std::string& key,
           const std::vector<std::uint64_t>& trace) {
  for (const auto e : trace) s.touch_heat(key, e);
}

std::vector<std::uint64_t> random_trace(Rng& rng, std::size_t len,
                                        std::uint64_t max_epoch) {
  std::vector<std::uint64_t> t(len);
  for (auto& e : t) e = rng.uniform_u64(0, max_epoch);
  std::sort(t.begin(), t.end());
  return t;
}

TEST(HeatDecay, HalvesPerEpochExactly) {
  Store s = store_with({"k"});
  s.touch_heat("k", 0);
  for (std::uint64_t e = 0; e < 64; ++e)
    EXPECT_EQ(s.heat_of("k", e), Store::kHeatQuantum >> e) << "epoch " << e;
  EXPECT_EQ(s.heat_of("k", 64), 0u);
  EXPECT_EQ(s.heat_of("k", kMaxEpoch), 0u);
}

TEST(HeatDecay, NeverTouchedIsColdZero) {
  Store s = store_with({"k"});
  EXPECT_EQ(s.heat_of("k", 0), 0u);
  EXPECT_EQ(s.heat_of("absent", 123), 0u);
}

TEST(HeatDecay, BackwardsEpochsClampWithoutUnderflow) {
  Store s = store_with({"k"});
  s.touch_heat("k", 1000);
  // Querying or touching at an earlier epoch must not decay (or wrap).
  EXPECT_EQ(s.heat_of("k", 500), Store::kHeatQuantum);
  EXPECT_EQ(s.heat_of("k", 0), Store::kHeatQuantum);
  s.touch_heat("k", 0);  // out-of-order access accumulates, never wraps
  EXPECT_EQ(s.heat_of("k", 1000), 2 * Store::kHeatQuantum);
}

TEST(HeatDecay, ExtremeDeltasAreSafe) {
  Store s = store_with({"a", "b", "c"});
  s.touch_heat("a", 0);
  EXPECT_EQ(s.heat_of("a", kMaxEpoch), 0u);  // 2^64-epoch decay flushes
  s.touch_heat("b", kMaxEpoch);
  EXPECT_EQ(s.heat_of("b", kMaxEpoch), Store::kHeatQuantum);
  EXPECT_EQ(s.heat_of("b", 0), Store::kHeatQuantum);  // clamped, no wrap
  s.touch_heat("c", 0);
  s.touch_heat("c", kMaxEpoch);  // fold across the full epoch range
  EXPECT_EQ(s.heat_of("c", kMaxEpoch), Store::kHeatQuantum);
}

TEST(HeatDecay, CounterStaysBelowCapUnderHammering) {
  Store s = store_with({"k"});
  for (int i = 0; i < 100000; ++i) s.touch_heat("k", 5);
  const auto h = s.heat_of("k", 5);
  EXPECT_EQ(h, 100000u * Store::kHeatQuantum);
  EXPECT_LE(h, Store::kHeatCap);
}

TEST(HeatDecayFuzz, AddingAccessesNeverColder) {
  Rng rng(0x48454154ull);
  for (int round = 0; round < 200; ++round) {
    const auto base = random_trace(rng, rng.uniform_u64(1, 24), 1 << 20);
    auto extended = base;
    const auto extras = random_trace(rng, rng.uniform_u64(1, 8), 1 << 20);
    extended.insert(extended.end(), extras.begin(), extras.end());
    std::sort(extended.begin(), extended.end());

    Store s = store_with({"base", "ext"});
    apply(s, "base", base);
    apply(s, "ext", extended);
    const std::uint64_t q = std::max(base.back(), extended.back()) +
                            rng.uniform_u64(0, 8);
    EXPECT_GE(s.heat_of("ext", q), s.heat_of("base", q))
        << "round " << round << " query " << q;
  }
}

TEST(HeatDecayFuzz, ShiftingAccessesLaterNeverColder) {
  Rng rng(0x48454155ull);
  for (int round = 0; round < 200; ++round) {
    const auto base = random_trace(rng, rng.uniform_u64(1, 24), 1 << 20);
    const std::uint64_t shift = rng.uniform_u64(0, 64);
    std::vector<std::uint64_t> later;
    for (const auto e : base) later.push_back(e + shift);

    Store s = store_with({"base", "late"});
    apply(s, "base", base);
    apply(s, "late", later);
    const std::uint64_t q = later.back() + rng.uniform_u64(0, 8);
    EXPECT_GE(s.heat_of("late", q), s.heat_of("base", q))
        << "round " << round << " shift " << shift;
  }
}

TEST(HeatDecayFuzz, DecayIsMonotoneInQueryEpoch) {
  Rng rng(0x48454156ull);
  for (int round = 0; round < 100; ++round) {
    const auto trace = random_trace(rng, rng.uniform_u64(1, 24), 1 << 16);
    Store s = store_with({"k"});
    apply(s, "k", trace);
    std::uint64_t prev = s.heat_of("k", trace.back());
    EXPECT_LE(prev, Store::kHeatCap);
    std::uint64_t q = trace.back();
    for (int step = 0; step < 80; ++step) {
      q += rng.uniform_u64(1, 4);
      const auto h = s.heat_of("k", q);
      EXPECT_LE(h, prev) << "round " << round << " query " << q;
      prev = h;
    }
    EXPECT_EQ(s.heat_of("k", trace.back() + (std::uint64_t{1} << 40)), 0u);
  }
}

TEST(HeatOrder, ColdestFirstIsDeterministicAcrossInsertionOrders) {
  // Same keys, same touches, different map insertion orders: the
  // coldest-first scan must not depend on unordered_map iteration.
  std::vector<std::string> names;
  for (int i = 0; i < 32; ++i) names.push_back("key" + std::to_string(i));
  auto build = [&](Rng order_rng) {
    auto shuffled = names;
    order_rng.shuffle(shuffled);
    Store s = store_with(shuffled);
    for (std::size_t i = 0; i < names.size(); ++i)
      for (std::size_t t = 0; t < i % 7; ++t)
        s.touch_heat(names[i], 10 + (i % 3));
    return s.keys_by_heat(20);
  };
  const auto a = build(Rng(7));
  const auto b = build(Rng(99));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), names.size());
}

TEST(HeatOrder, RecencyBreaksFrequencyTies) {
  Store s = store_with({"old", "new"});
  s.touch_heat("old", 10);
  s.touch_heat("new", 10);  // same heat, later access sequence
  const auto order = s.keys_by_heat(10);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "old");  // colder: same counter, earlier touch
  EXPECT_EQ(order[1], "new");
}

TEST(HeatOrder, DeletedKeysLeaveTheOrder) {
  Store s = store_with({"a", "b"});
  s.touch_heat("a", 0);
  s.touch_heat("b", 0);
  EXPECT_TRUE(s.del("t", "a").ok());
  const auto order = s.keys_by_heat(0);
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], "b");
  // Reinserting starts cold again (no stale heat).
  EXPECT_TRUE(s.put("t", "a", Blob::ghost(16)).ok());
  EXPECT_EQ(s.heat_of("a", 0), 0u);
}

}  // namespace
}  // namespace memfss::kvstore
