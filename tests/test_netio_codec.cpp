// Protocol codec property tests (DESIGN.md §13): the FrameDecoder must
// be the exact inverse of encode() no matter how the byte stream is
// sliced, and must *never* crash or over-allocate on adversarial
// input -- every feed ends in need_more, a decoded frame, or a sticky
// error, nothing else.
//
//   1. Round-trip: random frames (both kinds, all opcodes, empty and
//      large keys/values) encode -> decode to equal frames.
//   2. Split-feed: the same byte stream fed 1 byte at a time, and in
//      random-sized slices, decodes to the identical frame sequence.
//   3. Mutation fuzz: >= 100k random byte mutations over valid streams;
//      the decoder must always return need_more/frame/error and never
//      read out of bounds (ASan is the referee) or allocate from a
//      length prefix beyond its bound.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "netio/frame.hpp"

namespace memfss::netio {
namespace {

Frame random_request(Rng& rng) {
  Frame f;
  f.kind = Frame::Kind::request;
  f.opcode = static_cast<std::uint8_t>(rng.uniform_u64(1, 5));
  f.tenant = static_cast<std::uint32_t>(rng.uniform_u64(0, 1u << 20));
  f.request_id = rng.next_u64();
  const std::size_t klen = rng.uniform_u64(0, 64);
  for (std::size_t i = 0; i < klen; ++i)
    f.key.push_back(static_cast<char>(rng.uniform_u64(0, 255)));
  if (f.opcode == static_cast<std::uint8_t>(Opcode::put)) {
    const std::size_t vlen = rng.uniform_u64(0, 4096);
    f.value.resize(vlen);
    for (auto& b : f.value)
      b = static_cast<std::uint8_t>(rng.uniform_u64(0, 255));
  }
  return f;
}

Frame random_response(Rng& rng) {
  Frame f;
  f.kind = Frame::Kind::response;
  f.status = static_cast<std::uint8_t>(rng.uniform_u64(0, 16));
  f.flags = static_cast<std::uint8_t>(rng.uniform_u64(0, 7));
  f.retry_after_us = static_cast<std::uint32_t>(rng.uniform_u64(0, 1u << 30));
  f.request_id = rng.next_u64();
  f.seq = rng.next_u64();
  f.checksum = rng.next_u64();
  if (rng.chance(0.25)) {
    // Ghost-style response: logical size + checksum, no payload bytes.
    f.value_size = static_cast<std::uint32_t>(rng.uniform_u64(1, 1u << 24));
  } else {
    const std::size_t vlen = rng.uniform_u64(0, 4096);
    f.value.resize(vlen);
    for (auto& b : f.value)
      b = static_cast<std::uint8_t>(rng.uniform_u64(0, 255));
    f.value_size = static_cast<std::uint32_t>(f.value.size());
  }
  return f;
}

Frame random_frame(Rng& rng) {
  return rng.chance(0.5) ? random_request(rng) : random_response(rng);
}

TEST(NetioCodec, RoundTripRandomFrames) {
  Rng rng(1);
  for (int iter = 0; iter < 2000; ++iter) {
    const Frame in = random_frame(rng);
    FrameDecoder dec;
    const auto bytes = encode(in);
    dec.feed(bytes.data(), bytes.size());
    Frame out;
    ASSERT_EQ(dec.next(out), Decode::frame) << "iter " << iter;
    EXPECT_EQ(out, in) << "iter " << iter;
    EXPECT_EQ(dec.next(out), Decode::need_more);
    EXPECT_EQ(dec.buffered(), 0u);
  }
}

TEST(NetioCodec, OneByteAtATimeDecoding) {
  Rng rng(2);
  std::vector<Frame> frames;
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 64; ++i) {
    frames.push_back(random_frame(rng));
    encode_frame(frames.back(), stream);
  }
  FrameDecoder dec;
  std::size_t decoded = 0;
  for (const std::uint8_t b : stream) {
    dec.feed(&b, 1);
    Frame out;
    Decode d;
    while ((d = dec.next(out)) == Decode::frame) {
      ASSERT_LT(decoded, frames.size());
      EXPECT_EQ(out, frames[decoded]);
      ++decoded;
    }
    ASSERT_EQ(d, Decode::need_more);
  }
  EXPECT_EQ(decoded, frames.size());
}

TEST(NetioCodec, RandomSplitDecoding) {
  Rng rng(3);
  for (int round = 0; round < 50; ++round) {
    std::vector<Frame> frames;
    std::vector<std::uint8_t> stream;
    const int n = static_cast<int>(rng.uniform_u64(1, 32));
    for (int i = 0; i < n; ++i) {
      frames.push_back(random_frame(rng));
      encode_frame(frames.back(), stream);
    }
    FrameDecoder dec;
    std::size_t decoded = 0, off = 0;
    while (off < stream.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(rng.uniform_u64(1, 300), stream.size() - off);
      dec.feed(stream.data() + off, chunk);
      off += chunk;
      Frame out;
      Decode d;
      while ((d = dec.next(out)) == Decode::frame) {
        ASSERT_LT(decoded, frames.size());
        EXPECT_EQ(out, frames[decoded]);
        ++decoded;
      }
      ASSERT_EQ(d, Decode::need_more);
    }
    EXPECT_EQ(decoded, frames.size());
  }
}

// Decoder bound: a length prefix past max_body must be a protocol
// error, not a 2 GiB allocation.
TEST(NetioCodec, OversizedLengthPrefixIsError) {
  std::vector<std::uint8_t> bytes;
  const std::uint32_t magic = kRequestMagic;
  const std::uint32_t body = 1u << 31;
  bytes.resize(8);
  std::memcpy(bytes.data(), &magic, 4);
  std::memcpy(bytes.data() + 4, &body, 4);
  FrameDecoder dec(1u << 20);
  dec.feed(bytes.data(), bytes.size());
  Frame out;
  EXPECT_EQ(dec.next(out), Decode::error);
  EXPECT_TRUE(dec.failed());
  // Sticky: more bytes never resurrect the stream.
  dec.feed(bytes.data(), bytes.size());
  EXPECT_EQ(dec.next(out), Decode::error);
}

TEST(NetioCodec, BadMagicIsError) {
  Rng rng(4);
  auto bytes = encode(random_frame(rng));
  bytes[0] ^= 0xff;
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  Frame out;
  EXPECT_EQ(dec.next(out), Decode::error);
  EXPECT_FALSE(dec.error().empty());
}

// The acceptance-criteria fuzz loop: >= 100k mutated frames, decoder
// never crashes, every next() is need_more/frame/error.
TEST(NetioCodec, MutationFuzzNeverCrashes) {
  Rng rng(5);
  std::uint64_t mutations = 0, decoded = 0, errors = 0;
  while (mutations < 120000) {
    // A small valid stream, then 1-4 byte mutations anywhere in it.
    std::vector<std::uint8_t> stream;
    const int n = static_cast<int>(rng.uniform_u64(1, 4));
    for (int i = 0; i < n; ++i) encode_frame(random_frame(rng), stream);
    const int flips = static_cast<int>(rng.uniform_u64(1, 4));
    for (int i = 0; i < flips; ++i, ++mutations) {
      const std::size_t pos = rng.uniform_u64(0, stream.size() - 1);
      switch (rng.uniform_u64(0, 2)) {
        case 0: stream[pos] ^= 1u << rng.uniform_u64(0, 7); break;
        case 1: stream[pos] = static_cast<std::uint8_t>(
                    rng.uniform_u64(0, 255)); break;
        default: stream[pos] = 0xff; break;
      }
    }
    // Also fuzz truncation: sometimes drop a tail.
    if (rng.chance(0.3))
      stream.resize(rng.uniform_u64(0, stream.size()));

    FrameDecoder dec(1u << 20);
    std::size_t off = 0;
    while (off < stream.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(rng.uniform_u64(1, 4096), stream.size() - off);
      dec.feed(stream.data() + off, chunk);
      off += chunk;
      Frame out;
      for (;;) {
        const Decode d = dec.next(out);
        if (d == Decode::frame) { ++decoded; continue; }
        ASSERT_TRUE(d == Decode::need_more || d == Decode::error);
        if (d == Decode::error) ++errors;
        break;
      }
      if (dec.failed()) break;
    }
  }
  ASSERT_GE(mutations, 100000u);
  // Both outcomes must actually occur or the fuzz has no teeth.
  EXPECT_GT(decoded, 0u);
  EXPECT_GT(errors, 0u);
}

// Torn-frame delivery (ISSUE 9 satellite): a valid multi-frame stream
// fed through *every* split point -- including splits inside the 8-byte
// length prefix and inside a body -- must decode to the exact frame
// sequence, never a partial frame, never a stuck stream. Each split
// point gets the stream twice: once torn at the split, then the whole
// stream again through the same decoder (a decoder that survives a torn
// delivery must keep decoding the connection afterwards).
TEST(NetioCodec, TornFrameEverySplitPointTwice) {
  Rng rng(6);
  std::vector<Frame> frames;
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 4; ++i) {
    Frame f = random_frame(rng);
    // Keep payloads small so every-split-point stays fast.
    if (f.value.size() > 48) f.value.resize(48);
    if (f.kind == Frame::Kind::response)
      f.value_size = static_cast<std::uint32_t>(f.value.size());
    frames.push_back(f);
    encode_frame(frames.back(), stream);
  }
  const auto drain = [&](FrameDecoder& dec, std::size_t& decoded) {
    Frame out;
    Decode d;
    while ((d = dec.next(out)) == Decode::frame) {
      EXPECT_EQ(out, frames[decoded % frames.size()]);
      ++decoded;
    }
    ASSERT_EQ(d, Decode::need_more);
  };
  for (std::size_t split = 0; split <= stream.size(); ++split) {
    FrameDecoder dec;
    std::size_t decoded = 0;
    // Pass 1: torn at `split` (split == 0 / size() degenerate to one
    // feed; interior splits land inside the prefix and inside bodies).
    dec.feed(stream.data(), split);
    ASSERT_NO_FATAL_FAILURE(drain(dec, decoded));
    if (split < kHeaderLen)
      EXPECT_EQ(decoded, 0u) << "partial frame yielded at split " << split;
    dec.feed(stream.data() + split, stream.size() - split);
    ASSERT_NO_FATAL_FAILURE(drain(dec, decoded));
    ASSERT_EQ(decoded, frames.size()) << "stuck at split " << split;
    // Pass 2: the same decoder keeps working on an untorn replay.
    dec.feed(stream.data(), stream.size());
    ASSERT_NO_FATAL_FAILURE(drain(dec, decoded));
    ASSERT_EQ(decoded, 2 * frames.size()) << "stuck after split " << split;
    EXPECT_FALSE(dec.failed());
    EXPECT_EQ(dec.buffered(), 0u);
  }
}

// Integrity property behind the chaos layer: flipping any single bit of
// an encoded frame must never decode to a (wrong) frame. Body flips are
// caught by the body checksum, so they must report a hard error; header
// flips may instead leave the decoder waiting for a longer body
// (need_more), which is equally safe -- no wrong data is surfaced.
TEST(NetioCodec, SingleBitFlipNeverYieldsAFrame) {
  Rng rng(7);
  std::uint64_t body_flips = 0, header_errors = 0;
  for (int iter = 0; iter < 24; ++iter) {
    Frame f = random_frame(rng);
    if (f.value.size() > 128) f.value.resize(128);
    if (f.kind == Frame::Kind::response && !f.value.empty())
      f.value_size = static_cast<std::uint32_t>(f.value.size());
    const auto bytes = encode(f);
    for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
      for (int bit = 0; bit < 8; ++bit) {
        auto mutated = bytes;
        mutated[pos] ^= static_cast<std::uint8_t>(1u << bit);
        FrameDecoder dec;
        dec.feed(mutated.data(), mutated.size());
        Frame out;
        const Decode d = dec.next(out);
        ASSERT_NE(d, Decode::frame)
            << "silent corruption at byte " << pos << " bit " << bit;
        if (pos >= kHeaderLen) {
          // Any body flip shifts the checksum by a nonzero delta.
          ASSERT_EQ(d, Decode::error)
              << "undetected body flip at byte " << pos << " bit " << bit;
          ++body_flips;
        } else if (d == Decode::error) {
          ++header_errors;
        }
      }
    }
  }
  EXPECT_GT(body_flips, 0u);
  EXPECT_GT(header_errors, 0u);
}

}  // namespace
}  // namespace memfss::netio
