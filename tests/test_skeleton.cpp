#include "hash/skeleton.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/str.hpp"

namespace memfss::hash {
namespace {

std::vector<NodeId> make_nodes(std::size_t n) {
  std::vector<NodeId> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<NodeId>(i);
  return v;
}

TEST(SkeletonHrw, Deterministic) {
  SkeletonHrw s(make_nodes(64), 8);
  for (int k = 0; k < 200; ++k) {
    const std::string key = strformat("k%d", k);
    EXPECT_EQ(s.select(key), s.select(key));
  }
}

TEST(SkeletonHrw, ConstructionOrderIrrelevant) {
  auto nodes = make_nodes(30);
  auto reversed = nodes;
  std::reverse(reversed.begin(), reversed.end());
  SkeletonHrw a(nodes, 4), b(reversed, 4);
  for (int k = 0; k < 100; ++k) {
    const std::string key = strformat("o%d", k);
    EXPECT_EQ(a.select(key), b.select(key));
  }
}

TEST(SkeletonHrw, SingleNode) {
  SkeletonHrw s({7}, 8);
  EXPECT_EQ(s.select("x"), 7u);
  EXPECT_EQ(s.node_count(), 1u);
}

TEST(SkeletonHrw, DepthIsLogarithmic) {
  SkeletonHrw s(make_nodes(4096), 8);
  EXPECT_EQ(s.depth(), 4u);  // 8^4 = 4096
  SkeletonHrw t(make_nodes(64), 8);
  EXPECT_EQ(t.depth(), 2u);
}

TEST(SkeletonHrw, RoughlyBalanced) {
  // Hierarchical HRW trades some balance for O(log n) decisions; expect
  // load within a loose band.
  const std::size_t n = 32;
  SkeletonHrw s(make_nodes(n), 4);
  std::map<NodeId, int> counts;
  const int keys = 32000;
  for (int k = 0; k < keys; ++k) ++counts[s.select(strformat("b%d", k))];
  for (const auto& [node, c] : counts)
    EXPECT_NEAR(c, keys / double(n), keys / double(n) * 0.5)
        << "node " << node;
}

TEST(SkeletonHrw, AllNodesReachable) {
  const std::size_t n = 17;  // non-power-of-fanout
  SkeletonHrw s(make_nodes(n), 4);
  std::map<NodeId, int> counts;
  for (int k = 0; k < 20000; ++k) ++counts[s.select(strformat("r%d", k))];
  EXPECT_EQ(counts.size(), n);
}

}  // namespace
}  // namespace memfss::hash
