#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace memfss {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformU64RespectsBounds) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const auto x = r.uniform_u64(10, 20);
    EXPECT_GE(x, 10u);
    EXPECT_LE(x, 20u);
  }
}

TEST(Rng, UniformU64DegenerateRange) {
  Rng r(3);
  EXPECT_EQ(r.uniform_u64(5, 5), 5u);
}

TEST(Rng, UniformU64CoversAllValues) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_u64(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, ExponentialMeanApproximates) {
  Rng r(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng r(6);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, TruncatedNormalStaysInBounds) {
  Rng r(8);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.truncated_normal(5.0, 10.0, 0.0, 6.0);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 6.0);
  }
}

TEST(Rng, LognormalPositive) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(r.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, ChanceExtremes) {
  Rng r(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, WeightedIndexProportions) {
  Rng r(10);
  const std::vector<double> w{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.weighted_index(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / double(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / double(n), 0.6, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(12);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  auto copy = v;
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, sorted);
}

TEST(Rng, ForkIsIndependentButDeterministic) {
  Rng a(99), b(99);
  Rng fa = a.fork(), fb = b.fork();
  EXPECT_EQ(fa.next_u64(), fb.next_u64());
  // Fork stream differs from the parent's continued stream.
  Rng c(99);
  Rng fc = c.fork();
  EXPECT_NE(fc.next_u64(), c.next_u64());
}

TEST(Splitmix, KnownProgression) {
  std::uint64_t s1 = 0, s2 = 0;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
  EXPECT_NE(splitmix64(s1), splitmix64(s2) + 1);
}

}  // namespace
}  // namespace memfss
