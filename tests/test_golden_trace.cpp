// Golden-trace regression test.
//
// Runs one fixed-seed scenario -- write two files, crash a data-holding
// victim, let targeted repair run, read back -- with the tracer enabled
// for the fs and cluster components only, and diffs the deterministic
// text dump against a checked-in golden file. Because the simulation is
// an exact replay (see test_determinism.cpp), any diff means observable
// behaviour changed: placement, retry ordering, repair scheduling, or
// the instrumentation itself. That is exactly what this test is for --
// fail loudly, then either fix the regression or consciously re-bless
// the new behaviour:
//
//   scripts/regen_golden_trace.sh        # rewrites tests/golden/
//
// (or MEMFSS_REGEN_GOLDEN=1 ./build/tests/test_golden_trace).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "cluster/fault.hpp"
#include "co_test.hpp"
#include "fs/client.hpp"
#include "fs/filesystem.hpp"

namespace memfss {
namespace {

const char* golden_path() {
  return MEMFSS_GOLDEN_DIR "/fault_scenario.trace.txt";
}

struct TraceOut {
  std::string text;
  std::string json;
  std::size_t recorded = 0;
  std::size_t dropped = 0;
};

/// The fixed scenario. Everything -- node count, placement seeds, fault
/// target selection, timings -- is deterministic, so the trace is too.
TraceOut run_scenario() {
  sim::Simulator sim;
  cluster::Cluster cl(sim, 12);

  // Only fs + cluster events: the kvstore/net layers emit per-message
  // spans that would bloat the golden file without adding signal here.
  cl.obs().tracer.enable(obs::Component::fs);
  cl.obs().tracer.enable(obs::Component::cluster);

  fs::FileSystemConfig cfg;
  cfg.own_nodes = {0, 1, 2, 3};
  cfg.own_store_capacity = 4 * units::GiB;
  cfg.stripe_size = 1 * units::MiB;
  cfg.redundancy = fs::RedundancyMode::replicated;
  cfg.copies = 2;
  cfg.rpc_timeout = 0.25;
  fs::FileSystem fs(cl, std::move(cfg));

  std::vector<cluster::ScavengeOffer> offers;
  for (NodeId n = 4; n < 12; ++n)
    offers.push_back({n, units::GiB, 500e6, "tenant"});
  EXPECT_TRUE(fs.add_victim_class(1, std::move(offers), 0.25).ok());

  cluster::FaultInjector inj(sim, cl);
  fs.attach_fault_injector(inj);

  bool finished = false;
  sim.spawn([](sim::Simulator& s, fs::FileSystem& f,
               cluster::FaultInjector& i, bool& done) -> sim::Task<> {
    fs::Client c = f.client(0);
    CO_ASSERT_TRUE((co_await c.write_file("/a", 4 * units::MiB)).ok());
    CO_ASSERT_TRUE((co_await c.write_file("/b", 6 * units::MiB)).ok());
    // Crash the first victim holding data; deterministic because the
    // distribution map iterates in node order.
    NodeId victim = kInvalidNode;
    for (const auto& [node, bytes] : f.distribution())
      if (node >= 4 && bytes > 0 && victim == kInvalidNode) victim = node;
    CO_ASSERT_TRUE(victim != kInvalidNode);
    i.crash_now(victim);
    // Detection + targeted repair, then a degraded-turned-clean read.
    co_await s.delay(2.0);
    auto back = co_await c.read_file("/a");
    CO_ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), 4 * units::MiB);
    done = true;
  }(sim, fs, inj, finished));
  sim.run();
  EXPECT_TRUE(finished);

  TraceOut out;
  out.text = cl.obs().tracer.text_dump();
  out.json = cl.obs().tracer.chrome_json();
  out.recorded = cl.obs().tracer.recorded();
  out.dropped = cl.obs().tracer.dropped();
  return out;
}

std::string read_file(const char* path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(GoldenTrace, MatchesCheckedInGolden) {
  const TraceOut got = run_scenario();
  ASSERT_GT(got.recorded, 0u);
  EXPECT_EQ(got.dropped, 0u) << "golden scenario must fit the ring buffer";

  if (std::getenv("MEMFSS_REGEN_GOLDEN")) {
    std::ofstream out(golden_path(), std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << got.text;
    GTEST_SKIP() << "regenerated " << golden_path() << " ("
                 << got.recorded << " events)";
  }

  const std::string want = read_file(golden_path());
  ASSERT_FALSE(want.empty())
      << "missing golden file " << golden_path()
      << "; run scripts/regen_golden_trace.sh";
  // One expectation for the whole diff: gtest prints both strings with a
  // line diff, which is the most useful failure output here.
  EXPECT_EQ(got.text, want)
      << "trace diverged from golden; if the change is intended, re-bless "
         "with scripts/regen_golden_trace.sh";
}

TEST(GoldenTrace, ReplayIsByteIdentical) {
  // Guard against golden-file flakiness at the source: two in-process
  // runs of the scenario must produce byte-identical dumps.
  const TraceOut a = run_scenario();
  const TraceOut b = run_scenario();
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.json, b.json);
}

TEST(GoldenTrace, ChromeJsonIsWellFormed) {
  const TraceOut got = run_scenario();
  const std::string& j = got.json;
  ASSERT_FALSE(j.empty());
  EXPECT_EQ(j.front(), '{');
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(j.find("\"displayTimeUnit\""), std::string::npos);
  // The scenario must actually exercise the fs and cluster span types.
  EXPECT_NE(j.find("fs.write_stripe"), std::string::npos);
  EXPECT_NE(j.find("fs.read_stripe"), std::string::npos);
  EXPECT_NE(j.find("fault.crash"), std::string::npos);
  EXPECT_NE(j.find("fs.recovery"), std::string::npos);
  // Braces and brackets balance (no string in the trace contains them:
  // names are dotted identifiers and details are key=value pairs).
  long depth = 0;
  for (char ch : j) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace memfss
