// Chaos-soak harness: a small composed-fault soak must finish with every
// invariant intact (durability of acked writes, pool/store accounting,
// recovery balance), and two soaks at the same seed must be exact
// replays. The full-size soak runs in bench/chaos_soak via
// scripts/check.sh --chaos; this keeps a scaled-down version in the
// default test suite so regressions surface without the long run.
#include <gtest/gtest.h>

#include "exp/chaos.hpp"

namespace memfss::exp {
namespace {

ChaosSoakOptions small_opts(std::uint64_t seed) {
  ChaosSoakOptions opt;
  opt.seed = seed;
  opt.scenario.total_nodes = 8;
  opt.scenario.own_nodes = 3;
  opt.scenario.victim_memory_cap = 1 * units::GiB;
  opt.scenario.own_store_capacity = 2 * units::GiB;
  opt.scenario.stripe_size = 1 * units::MiB;
  opt.writers = 3;
  opt.files_per_writer = 3;
  opt.file_bytes_min = 1 * units::MiB;
  opt.file_bytes_max = 3 * units::MiB;
  opt.horizon = 20.0;
  return opt;
}

TEST(ChaosSoak, InvariantsHoldUnderComposedFaults) {
  const auto row = run_chaos_soak(small_opts(1));
  for (const auto& v : row.invariants.violations) {
    ADD_FAILURE() << "invariant violation: " << v;
  }
  EXPECT_TRUE(row.ok);
  EXPECT_GT(row.invariants.files_acked, 0u);
  EXPECT_EQ(row.invariants.files_verified, row.invariants.files_acked);
  // The soak actually composed fault classes (seed 1 is pinned; if the
  // rates change these may need re-checking against the new schedule).
  EXPECT_GT(row.injected.partitions, 0u);
  EXPECT_GT(row.injected.heals, 0u);
  EXPECT_EQ(row.injected.revocations, 1u);
  EXPECT_EQ(row.recovery.repairs, row.recovery.failures_handled);
}

TEST(ChaosSoak, ReplaysByteIdentically) {
  const auto a = run_chaos_soak(small_opts(2));
  const auto b = run_chaos_soak(small_opts(2));
  EXPECT_TRUE(a.ok);
  EXPECT_EQ(a.runtime, b.runtime);  // bitwise, not approximate
  // The CSV row flattens every counter the soak tracks -- injector stats,
  // client resilience counters, recovery stats, invariant tallies. Equal
  // rows mean equal fault schedules, hedge decisions, and repairs.
  EXPECT_EQ(chaos_csv_row(a), chaos_csv_row(b));
}

TEST(ChaosSoak, CleanSoakHasNoFaultsAndNoViolations) {
  auto opt = small_opts(3);
  opt.crash_rate = 0.0;
  opt.stall_rate = 0.0;
  opt.partition_rate = 0.0;
  opt.evict_rate = 0.0;
  opt.revoke_mid_run = false;
  const auto row = run_chaos_soak(opt);
  EXPECT_TRUE(row.ok);
  EXPECT_EQ(row.injected.crashes, 0u);
  EXPECT_EQ(row.injected.partitions, 0u);
  EXPECT_EQ(row.injected.evictions, 0u);
  EXPECT_EQ(row.invariants.write_failures, 0u);
  EXPECT_EQ(row.invariants.files_verified, row.invariants.files_acked);
}

// --- tiered arm (DESIGN.md §16) --------------------------------------------
//
// Same composed-fault soak with cold tiers on the victims: pressure
// events demote coldest-first instead of evacuating, and crashes land
// mid-demotion / mid-promotion. The invariant checker gains the tiering
// clauses (tier accounting matches the cold key set, no key resident in
// both tiers, tier capacity respected) on top of durability/accounting/
// recovery-balance.

ChaosSoakOptions tiered_opts(std::uint64_t seed) {
  auto opt = small_opts(seed);
  opt.scenario.victim_tier_capacity = 768 * units::MiB;
  return opt;
}

TEST(ChaosSoakTiered, InvariantsHoldWithCrashesMidDemotion) {
  const auto row = run_chaos_soak(tiered_opts(1));
  for (const auto& v : row.invariants.violations) {
    ADD_FAILURE() << "invariant violation: " << v;
  }
  EXPECT_TRUE(row.ok);
  EXPECT_GT(row.invariants.files_acked, 0u);
  EXPECT_EQ(row.invariants.files_verified, row.invariants.files_acked);
  // The soak actually exercised the tier against the fault mix: pressure
  // events demoted, and crashes overlapped the run (seed 1 is pinned).
  EXPECT_GT(row.tier_demotions, 0u);
  EXPECT_GT(row.injected.crashes + row.injected.evictions, 0u);
  EXPECT_EQ(row.recovery.repairs, row.recovery.failures_handled);
}

TEST(ChaosSoakTiered, ReplaysByteIdentically) {
  const auto a = run_chaos_soak(tiered_opts(2));
  const auto b = run_chaos_soak(tiered_opts(2));
  EXPECT_TRUE(a.ok);
  EXPECT_EQ(a.runtime, b.runtime);
  EXPECT_EQ(chaos_csv_row(a), chaos_csv_row(b));
}

TEST(ChaosSoakTiered, DisabledTierLeavesCleanArmUntouched) {
  // Tiering off is the default: the untiered soak must not record any
  // tier activity, so its replay digest is what it was before tiering
  // existed (the golden-trace suite pins the full metrics dump).
  const auto row = run_chaos_soak(small_opts(1));
  EXPECT_EQ(row.tier_demotions, 0u);
  EXPECT_EQ(row.tier_promotions, 0u);
  EXPECT_EQ(row.tier_cold_hits, 0u);
  EXPECT_EQ(row.tier_cold_bytes, 0u);
}

}  // namespace
}  // namespace memfss::exp
