// Client resilience under partitions: the circuit-breaker state machine
// (unit level), breaker behavior on the live read/write path when a link
// is cut, and hedged reads racing a second replica past a stalled
// primary. Companion to test_fabric.cpp (cut mechanics) and
// test_fault_injector.cpp (partition scheduling).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "co_test.hpp"
#include "common/str.hpp"
#include "fs/client.hpp"
#include "fs/filesystem.hpp"
#include "fs/health.hpp"

namespace memfss::fs {
namespace {

// --- CircuitBreaker state machine (no simulator needed) ---------------------

constexpr BreakerConfig kCfg{/*failure_threshold=*/3, /*cooldown=*/1.0};

TEST(CircuitBreaker, OpensAfterConsecutiveFaults) {
  CircuitBreaker b;
  EXPECT_TRUE(b.allow(kCfg, 0.0));
  EXPECT_FALSE(b.record(kCfg, true, 0.1));
  EXPECT_FALSE(b.record(kCfg, true, 0.2));
  EXPECT_EQ(b.state(), BreakerState::closed);
  EXPECT_TRUE(b.allow(kCfg, 0.2));
  EXPECT_TRUE(b.record(kCfg, true, 0.3));  // third fault: transition
  EXPECT_EQ(b.state(), BreakerState::open);
  EXPECT_FALSE(b.allow(kCfg, 0.5));  // cooldown not elapsed
}

TEST(CircuitBreaker, SuccessResetsTheStreak) {
  CircuitBreaker b;
  b.record(kCfg, true, 0.1);
  b.record(kCfg, true, 0.2);
  b.record(kCfg, false, 0.3);  // success: streak back to zero
  EXPECT_EQ(b.consecutive_failures(), 0);
  b.record(kCfg, true, 0.4);
  b.record(kCfg, true, 0.5);
  EXPECT_EQ(b.state(), BreakerState::closed);
}

TEST(CircuitBreaker, HalfOpenAdmitsOneTrialThenCloses) {
  CircuitBreaker b;
  for (int i = 0; i < 3; ++i) b.record(kCfg, true, 0.1);
  ASSERT_EQ(b.state(), BreakerState::open);
  EXPECT_TRUE(b.allow(kCfg, 1.2));  // cooldown elapsed -> half-open trial
  EXPECT_EQ(b.state(), BreakerState::half_open);
  EXPECT_FALSE(b.allow(kCfg, 1.3));  // only one trial in flight
  b.record(kCfg, false, 1.4);        // trial succeeded
  EXPECT_EQ(b.state(), BreakerState::closed);
  EXPECT_TRUE(b.allow(kCfg, 1.5));
}

TEST(CircuitBreaker, FailedTrialReopensForAnotherCooldown) {
  CircuitBreaker b;
  for (int i = 0; i < 3; ++i) b.record(kCfg, true, 0.0);
  EXPECT_TRUE(b.allow(kCfg, 1.0));             // half-open
  EXPECT_TRUE(b.record(kCfg, true, 1.1));      // trial failed: open again
  EXPECT_EQ(b.state(), BreakerState::open);
  EXPECT_FALSE(b.allow(kCfg, 1.5));   // new cooldown runs from the reopen
  EXPECT_TRUE(b.allow(kCfg, 2.2));    // and eventually admits a new trial
  EXPECT_EQ(b.state(), BreakerState::half_open);
}

TEST(HealthRegistry, DisabledRegistryIsInert) {
  HealthRegistry reg(BreakerConfig{0, 1.0}, nullptr);
  EXPECT_FALSE(reg.enabled());
  for (int i = 0; i < 100; ++i) reg.record(7, Errc::timeout, double(i));
  EXPECT_TRUE(reg.allow(7, 100.0));
  EXPECT_EQ(reg.state(7), BreakerState::closed);
  EXPECT_EQ(reg.opens(), 0u);
}

TEST(HealthRegistry, RejectionsNeverFeedTheBreaker) {
  HealthRegistry reg(BreakerConfig{2, 1.0}, nullptr);
  for (int i = 0; i < 10; ++i) reg.record(3, Errc::rejected, double(i));
  EXPECT_EQ(reg.state(3), BreakerState::closed);
  // ...but real connectivity faults do.
  reg.record(3, Errc::unreachable, 10.0);
  reg.record(3, Errc::timeout, 10.1);
  EXPECT_EQ(reg.state(3), BreakerState::open);
  EXPECT_EQ(reg.opens(), 1u);
  // Application-level answers close it again after the cooldown trial.
  EXPECT_TRUE(reg.allow(3, 11.2));
  reg.record(3, Errc::not_found, 11.3);
  EXPECT_EQ(reg.state(3), BreakerState::closed);
}

// --- end-to-end: breaker + hedging on the client path -----------------------

struct Rig {
  sim::Simulator sim;
  cluster::Cluster cl;
  FileSystem fs;

  explicit Rig(FileSystemConfig cfg, std::size_t nodes = 4)
      : cl(sim, nodes), fs(cl, std::move(cfg)) {}

  static FileSystemConfig replicated_config() {
    FileSystemConfig cfg;
    cfg.own_nodes = {0, 1, 2, 3};
    cfg.own_store_capacity = 4 * units::GiB;
    cfg.stripe_size = 1 * units::MiB;
    cfg.redundancy = RedundancyMode::replicated;
    cfg.copies = 2;
    return cfg;
  }

  template <typename F>
  void run(F&& body) {
    bool finished = false;
    sim.spawn([](Rig& r, F body_fn, bool& done) -> sim::Task<> {
      co_await body_fn(r);
      done = true;
    }(*this, std::forward<F>(body), finished));
    sim.run();
    ASSERT_TRUE(finished) << "test coroutine did not finish";
  }
};

TEST(ClientHealth, BreakerOpensOnPartitionAndRecoversAfterHeal) {
  Rig rig(Rig::replicated_config());
  rig.fs.set_resilience_tuning(/*threshold=*/2, /*cooldown=*/0.5,
                               /*hedge_quantile=*/0.0);
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    for (int i = 0; i < 8; ++i) {
      CO_ASSERT_TRUE(
          (co_await c.write_file(strformat("/f%d", i), 4 * units::MiB)).ok());
    }
    // Sever client <-> node 1. Requests fast-fail Errc::unreachable; after
    // two consecutive faults the breaker opens and later probes to node 1
    // are rejected locally instead of being issued at all.
    r.cl.fabric().cut_link(0, 1);
    for (int pass = 0; pass < 2; ++pass) {
      for (int i = 0; i < 8; ++i) {
        auto res = co_await c.read_file(strformat("/f%d", i));
        CO_ASSERT_TRUE(res.ok());  // the other replica serves every read
      }
    }
    EXPECT_EQ(r.fs.health().state(1), BreakerState::open);
    EXPECT_GE(r.fs.health().opens(), 1u);
    EXPECT_GT(r.fs.counters().breaker_rejections, 0u);
    EXPECT_GT(r.fs.counters().degraded_reads, 0u);

    // Heal, wait out the cooldown: the half-open trial succeeds and the
    // breaker closes again.
    r.cl.fabric().heal_link(0, 1);
    co_await r.sim.delay(1.0);
    for (int i = 0; i < 8; ++i) {
      CO_ASSERT_TRUE((co_await c.read_file(strformat("/f%d", i))).ok());
    }
    EXPECT_EQ(r.fs.health().state(1), BreakerState::closed);
  });
  // The partition never retired the (alive) node: no repairs ran.
  EXPECT_EQ(rig.fs.recovery().failures_handled, 0u);
}

TEST(ClientHealth, WritesRerouteAroundOpenBreaker) {
  Rig rig(Rig::replicated_config());
  rig.fs.set_resilience_tuning(/*threshold=*/2, /*cooldown=*/30.0,
                               /*hedge_quantile=*/0.0);
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    // Open node 1's breaker up front by failing reads against it.
    r.cl.fabric().cut_link(0, 1);
    CO_ASSERT_TRUE((co_await c.write_file("/warm", 8 * units::MiB)).ok());
    for (int i = 0; i < 2 && r.fs.health().state(1) != BreakerState::open;
         ++i) {
      (void)co_await c.read_file("/warm");
    }
    CO_ASSERT_TRUE(r.fs.health().state(1) == BreakerState::open);

    // With the breaker open (30s cooldown outlives the test), writes whose
    // placement targets node 1 reroute to another live node instead of
    // burning an RPC on it.
    const auto rejections_before = r.fs.counters().breaker_rejections;
    for (int i = 0; i < 8; ++i) {
      CO_ASSERT_TRUE(
          (co_await c.write_file(strformat("/w%d", i), 4 * units::MiB)).ok());
    }
    EXPECT_GT(r.fs.counters().breaker_reroutes, 0u);
    // Rerouted writes are still fully replicated and readable.
    for (int i = 0; i < 8; ++i) {
      CO_ASSERT_TRUE((co_await c.read_file(strformat("/w%d", i))).ok());
    }
    (void)rejections_before;
  });
}

TEST(ClientHealth, HedgedReadWinsPastStalledPrimary) {
  Rig rig(Rig::replicated_config());
  // Hedge at the 90th percentile once 8 samples exist; breakers off.
  rig.fs.set_resilience_tuning(/*threshold=*/0, /*cooldown=*/1.0,
                               /*hedge_quantile=*/0.9, /*min_samples=*/8);
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    for (int i = 0; i < 4; ++i) {
      CO_ASSERT_TRUE(
          (co_await c.write_file(strformat("/f%d", i), 4 * units::MiB)).ok());
    }
    // Warm-up pass seeds the fs.read_stripe.latency histogram.
    for (int i = 0; i < 4; ++i) {
      CO_ASSERT_TRUE((co_await c.read_file(strformat("/f%d", i))).ok());
    }
    // Stall node 1 outright: any stripe whose primary replica lives there
    // hangs until the stall ends. The hedge timer fires at the latency
    // quantile, races the second replica, and the backup wins.
    const auto hedges_before = r.fs.counters().hedged_reads;
    const auto wins_before = r.fs.counters().hedge_wins;
    r.fs.server(1).stall_for(120.0);
    const SimTime start = r.sim.now();
    for (int i = 0; i < 4; ++i) {
      CO_ASSERT_TRUE((co_await c.read_file(strformat("/f%d", i))).ok());
    }
    EXPECT_GT(r.fs.counters().hedged_reads, hedges_before);
    EXPECT_GT(r.fs.counters().hedge_wins, wins_before);
    // The reads completed via the backup replica, not the 120s stall.
    EXPECT_LT(r.sim.now() - start, 60.0);
  });
}

TEST(ClientHealth, HedgingDisabledFiresNoSecondArm) {
  Rig rig(Rig::replicated_config());  // hedge_quantile stays 0
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    for (int i = 0; i < 4; ++i) {
      CO_ASSERT_TRUE(
          (co_await c.write_file(strformat("/f%d", i), 4 * units::MiB)).ok());
      CO_ASSERT_TRUE((co_await c.read_file(strformat("/f%d", i))).ok());
    }
  });
  EXPECT_EQ(rig.fs.counters().hedged_reads, 0u);
  EXPECT_EQ(rig.fs.counters().hedge_wins, 0u);
  EXPECT_EQ(rig.fs.health().opens(), 0u);
}

}  // namespace
}  // namespace memfss::fs
