#include "rt/loadgen.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>

namespace memfss::rt {
namespace {

LoadgenOptions small_opts() {
  LoadgenOptions opt;
  opt.client_threads = 1;
  opt.server_threads = 1;
  opt.shards = 4;
  opt.ops_per_thread = 3000;
  opt.batch = 8;
  opt.value_size = 64;
  opt.get_fraction = 0.5;
  opt.del_fraction = 0.1;
  opt.key_space = 100;
  opt.capacity = 8 * units::MiB;
  opt.seed = 7;
  opt.service_time_us = 0;
  return opt;
}

TEST(RtLoadgen, GeneratedStreamsAreDeterministic) {
  const auto opt = small_opts();
  const auto a = generate_ops(opt, 0);
  const auto b = generate_ops(opt, 0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].type, b[i].type) << i;
    EXPECT_EQ(a[i].key_index, b[i].key_index) << i;
  }
}

TEST(RtLoadgen, StreamsDifferByThreadAndSeed) {
  auto opt = small_opts();
  const auto base = generate_ops(opt, 0);
  const auto other_thread = generate_ops(opt, 1);
  opt.seed = 8;
  const auto other_seed = generate_ops(opt, 0);
  auto differs = [&](const std::vector<GenOp>& v) {
    for (std::size_t i = 0; i < base.size(); ++i)
      if (base[i].type != v[i].type || base[i].key_index != v[i].key_index)
        return true;
    return false;
  };
  EXPECT_TRUE(differs(other_thread));
  EXPECT_TRUE(differs(other_seed));
}

TEST(RtLoadgen, ZipfThetaSkewsKeyPopularity) {
  auto opt = small_opts();
  opt.key_space = 1000;
  opt.ops_per_thread = 20000;
  opt.zipf_theta = 0.99;
  std::map<std::uint32_t, std::size_t> freq;
  for (const auto& g : generate_ops(opt, 0)) ++freq[g.key_index];
  const double uniform_share =
      static_cast<double>(opt.ops_per_thread) / opt.key_space;
  // Rank-0 key should be far above a uniform draw's 20 hits.
  EXPECT_GT(freq[0], 5 * uniform_share);
  opt.zipf_theta = 0.0;
  std::map<std::uint32_t, std::size_t> uf;
  for (const auto& g : generate_ops(opt, 0)) ++uf[g.key_index];
  EXPECT_LT(uf[0], 5 * uniform_share);
}

// The deterministic-replay smoke test: a fixed seed with one client
// thread and one worker thread executes the identical op stream, in the
// identical order, with identical results -- twice.
TEST(RtLoadgen, SingleThreadedReplayIsIdentical) {
  const auto opt = small_opts();
  const auto a = run_loadgen(opt);
  const auto b = run_loadgen(opt);
  EXPECT_NE(a.result_digest, 0u);
  EXPECT_EQ(a.result_digest, b.result_digest);
  EXPECT_EQ(a.puts, b.puts);
  EXPECT_EQ(a.gets, b.gets);
  EXPECT_EQ(a.dels, b.dels);
  EXPECT_EQ(a.not_found, b.not_found);
  EXPECT_EQ(a.rejected, 0u);
  EXPECT_EQ(a.errors, 0u);
  // A different seed must not replay to the same digest.
  auto opt2 = opt;
  opt2.seed = 8;
  EXPECT_NE(run_loadgen(opt2).result_digest, a.result_digest);
}

TEST(RtLoadgen, MultithreadedRunAccountsEveryOp) {
  auto opt = small_opts();
  opt.client_threads = 4;
  opt.server_threads = 4;
  opt.ops_per_thread = 2000;
  const auto r = run_loadgen(opt);
  EXPECT_EQ(r.puts + r.gets + r.dels + r.not_found + r.rejected +
                r.overloaded + r.errors,
            opt.client_threads * opt.ops_per_thread);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_GT(r.ops_per_sec, 0.0);
  // Shed ops (rejected or overloaded) never enter the latency
  // histogram -- they would fake sub-microsecond samples.
  EXPECT_EQ(r.latency.count,
            opt.client_threads * opt.ops_per_thread - r.rejected -
                r.overloaded);
}

TEST(RtLoadgen, CsvRowMatchesHeaderSchema) {
  const auto r = run_loadgen(small_opts());
  auto fields = [](const std::string& line) {
    std::size_t n = 1;
    for (const char c : line) n += c == ',';
    return n;
  };
  EXPECT_EQ(fields(loadgen_csv_header()), fields(loadgen_csv_row(r)));
}

}  // namespace
}  // namespace memfss::rt
