#include "fs/namespace.hpp"

#include <gtest/gtest.h>

namespace memfss::fs {
namespace {

FileAttr attr(Bytes stripe = 4096) {
  FileAttr a;
  a.stripe_size = stripe;
  return a;
}

TEST(Namespace, FreshHasOnlyRoot) {
  Namespace ns;
  EXPECT_EQ(ns.dir_count(), 1u);
  EXPECT_EQ(ns.file_count(), 0u);
  EXPECT_TRUE(ns.readdir("/").value().empty());
}

TEST(Namespace, MkdirAndReaddir) {
  Namespace ns;
  ASSERT_TRUE(ns.mkdir("/a").ok());
  ASSERT_TRUE(ns.mkdir("/a/b").ok());
  EXPECT_EQ(ns.readdir("/").value(), (std::vector<std::string>{"a"}));
  EXPECT_EQ(ns.readdir("/a").value(), (std::vector<std::string>{"b"}));
}

TEST(Namespace, MkdirRequiresParent) {
  Namespace ns;
  EXPECT_EQ(ns.mkdir("/x/y").code(), Errc::not_found);
  EXPECT_TRUE(ns.mkdirs("/x/y/z").ok());
  EXPECT_TRUE(ns.exists("/x/y/z"));
}

TEST(Namespace, MkdirsIdempotent) {
  Namespace ns;
  ASSERT_TRUE(ns.mkdirs("/a/b").ok());
  EXPECT_TRUE(ns.mkdirs("/a/b").ok());
  EXPECT_EQ(ns.dir_count(), 3u);
}

TEST(Namespace, MkdirDuplicateFails) {
  Namespace ns;
  ASSERT_TRUE(ns.mkdir("/a").ok());
  EXPECT_EQ(ns.mkdir("/a").code(), Errc::already_exists);
}

TEST(Namespace, CreateAndStat) {
  Namespace ns;
  ASSERT_TRUE(ns.mkdirs("/d").ok());
  auto ino = ns.create("/d/f", attr(100));
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(ns.set_size(ino.value(), 250).ok());
  auto st = ns.stat("/d/f");
  ASSERT_TRUE(st.ok());
  EXPECT_FALSE(st.value().is_directory);
  EXPECT_EQ(st.value().attr.size, 250u);
  EXPECT_EQ(st.value().stripe_count, 3u);
  EXPECT_EQ(st.value().inode, ino.value());
}

TEST(Namespace, CreateRejectsBadInputs) {
  Namespace ns;
  EXPECT_EQ(ns.create("/f", FileAttr{}).code(), Errc::invalid_argument);
  EXPECT_EQ(ns.create("/no/parent", attr()).code(), Errc::not_found);
  ASSERT_TRUE(ns.create("/f", attr()).ok());
  EXPECT_EQ(ns.create("/f", attr()).code(), Errc::already_exists);
}

TEST(Namespace, FileAsDirectoryComponentFails) {
  Namespace ns;
  ASSERT_TRUE(ns.create("/f", attr()).ok());
  EXPECT_EQ(ns.create("/f/sub", attr()).code(), Errc::not_a_directory);
  EXPECT_EQ(ns.readdir("/f").code(), Errc::not_a_directory);
}

TEST(Namespace, UnlinkReturnsStatAndRemoves) {
  Namespace ns;
  auto ino = ns.create("/f", attr(10));
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(ns.set_size(ino.value(), 95).ok());
  auto removed = ns.unlink("/f");
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed.value().stripe_count, 10u);
  EXPECT_FALSE(ns.exists("/f"));
  EXPECT_EQ(ns.unlink("/f").code(), Errc::not_found);
  EXPECT_EQ(ns.file_count(), 0u);
}

TEST(Namespace, UnlinkDirectoryFails) {
  Namespace ns;
  ASSERT_TRUE(ns.mkdir("/d").ok());
  EXPECT_EQ(ns.unlink("/d").code(), Errc::is_a_directory);
}

TEST(Namespace, RmdirOnlyEmpty) {
  Namespace ns;
  ASSERT_TRUE(ns.mkdirs("/d/e").ok());
  EXPECT_EQ(ns.rmdir("/d").code(), Errc::not_empty);
  ASSERT_TRUE(ns.rmdir("/d/e").ok());
  ASSERT_TRUE(ns.rmdir("/d").ok());
  EXPECT_EQ(ns.rmdir("/").code(), Errc::invalid_argument);
}

TEST(Namespace, RenameFileKeepsInode) {
  Namespace ns;
  ASSERT_TRUE(ns.mkdirs("/a").ok());
  ASSERT_TRUE(ns.mkdirs("/b").ok());
  auto ino = ns.create("/a/f", attr());
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(ns.rename("/a/f", "/b/g").ok());
  EXPECT_FALSE(ns.exists("/a/f"));
  auto st = ns.stat("/b/g");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().inode, ino.value());
}

TEST(Namespace, RenameDirectoryMovesSubtree) {
  Namespace ns;
  ASSERT_TRUE(ns.mkdirs("/a/sub").ok());
  ASSERT_TRUE(ns.create("/a/sub/f", attr()).ok());
  ASSERT_TRUE(ns.rename("/a", "/renamed").ok());
  EXPECT_TRUE(ns.exists("/renamed/sub/f"));
}

TEST(Namespace, RenameRejectsBadMoves) {
  Namespace ns;
  ASSERT_TRUE(ns.mkdirs("/a/b").ok());
  ASSERT_TRUE(ns.mkdir("/c").ok());
  EXPECT_EQ(ns.rename("/a", "/a/b/inside").code(), Errc::invalid_argument);
  EXPECT_EQ(ns.rename("/missing", "/x").code(), Errc::not_found);
  EXPECT_EQ(ns.rename("/a", "/c").code(), Errc::already_exists);
}

TEST(Namespace, StripeCountMath) {
  EXPECT_EQ(Namespace::stripe_count(0, 100), 0u);
  EXPECT_EQ(Namespace::stripe_count(1, 100), 1u);
  EXPECT_EQ(Namespace::stripe_count(100, 100), 1u);
  EXPECT_EQ(Namespace::stripe_count(101, 100), 2u);
}

TEST(Namespace, StripeKeyIsInodeBased) {
  EXPECT_EQ(Namespace::stripe_key(7, 3), "i7:3");
  EXPECT_NE(Namespace::stripe_key(7, 3), Namespace::stripe_key(8, 3));
}

TEST(Namespace, ReaddirIsSorted) {
  Namespace ns;
  for (const char* name : {"/zeta", "/alpha", "/mid"})
    ASSERT_TRUE(ns.create(name, attr()).ok());
  EXPECT_EQ(ns.readdir("/").value(),
            (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST(Namespace, StatByUnknownInode) {
  Namespace ns;
  EXPECT_EQ(ns.stat(InodeId{999}).code(), Errc::not_found);
}

}  // namespace
}  // namespace memfss::fs
