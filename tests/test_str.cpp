#include "common/str.hpp"

#include <gtest/gtest.h>

namespace memfss {
namespace {

TEST(Split, KeepsEmptyPieces) {
  const auto v = split("a//b", '/');
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[1], "");
  EXPECT_EQ(v[2], "b");
}

TEST(Split, SingleToken) {
  const auto v = split("abc", '/');
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], "abc");
}

TEST(SplitPath, DropsEmptyAndDot) {
  const auto v = split_path("/a//b/./c/");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[1], "b");
  EXPECT_EQ(v[2], "c");
}

TEST(SplitPath, RootIsEmpty) {
  EXPECT_TRUE(split_path("/").empty());
  EXPECT_TRUE(split_path("").empty());
}

TEST(Join, Basics) {
  EXPECT_EQ(join({"a", "b", "c"}, "/"), "a/b/c");
  EXPECT_EQ(join({}, "/"), "");
  EXPECT_EQ(join({"x"}, ", "), "x");
}

TEST(Strformat, Formats) {
  EXPECT_EQ(strformat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strformat("%.2f", 1.005), "1.00");
  EXPECT_EQ(strformat("empty"), "empty");
}

TEST(FormatBytes, UnitSelection) {
  EXPECT_EQ(format_bytes(17), "17 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KiB");
  EXPECT_EQ(format_bytes(3 * units::MiB), "3.00 MiB");
  EXPECT_EQ(format_bytes(units::GiB + units::GiB / 2), "1.50 GiB");
  EXPECT_EQ(format_bytes(2 * units::TiB), "2.00 TiB");
}

TEST(FormatRate, UnitSelection) {
  EXPECT_EQ(format_rate(500.0), "500 B/s");
  EXPECT_EQ(format_rate(1.5e6), "1.50 MB/s");
  EXPECT_EQ(format_rate(3e9), "3.00 GB/s");
}

TEST(FormatDuration, UnitSelection) {
  EXPECT_EQ(format_duration(42.0), "42.0 s");
  EXPECT_EQ(format_duration(600.0), "10.0 min");
  EXPECT_EQ(format_duration(2.0 * 3600.0 + 1800.0), "2.50 h");
}

}  // namespace
}  // namespace memfss
