// Fault injector: plan building, seed determinism, scheduled delivery,
// NIC degradation/restoration, and the monitor-eviction routing that the
// filesystem subscribes to.
#include "cluster/fault.hpp"

#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace memfss::cluster {
namespace {

TEST(FaultPlan, FluentBuilderAndSortedOrder) {
  FaultPlan plan;
  plan.crash(5.0, 3)
      .stall(1.0, 2, 0.5)
      .revoke_class(3.0, 1)
      .degrade_nic(1.0, 4, 0.25, 2.0);
  EXPECT_EQ(plan.size(), 4u);
  EXPECT_FALSE(plan.empty());

  const auto sorted = plan.sorted();
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[0].kind, FaultKind::stall_node);   // t=1, inserted first
  EXPECT_EQ(sorted[1].kind, FaultKind::degrade_nic);  // t=1, inserted second
  EXPECT_EQ(sorted[2].kind, FaultKind::revoke_class);
  EXPECT_EQ(sorted[3].kind, FaultKind::crash_node);
  EXPECT_EQ(sorted[3].node, 3u);
  EXPECT_EQ(sorted[2].victim_class, 1u);
}

TEST(FaultPlan, RandomIsSeedDeterministic) {
  const std::vector<NodeId> nodes = {4, 5, 6, 7, 8, 9, 10, 11};
  FaultPlan::RandomParams p;
  p.horizon = 100.0;
  p.crash_rate = 0.5;
  p.stall_rate = 1.0;
  p.degrade_rate = 0.5;

  Rng a(42), b(42), c(43);
  const auto pa = FaultPlan::random(a, nodes, p).events();
  const auto pb = FaultPlan::random(b, nodes, p).events();
  const auto pc = FaultPlan::random(c, nodes, p).events();

  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].at, pb[i].at);
    EXPECT_EQ(pa[i].kind, pb[i].kind);
    EXPECT_EQ(pa[i].node, pb[i].node);
    EXPECT_EQ(pa[i].duration, pb[i].duration);
  }
  // A different seed gives a different plan (with these rates the chance
  // of a byte-identical schedule is negligible).
  bool differs = pa.size() != pc.size();
  for (std::size_t i = 0; !differs && i < pa.size(); ++i)
    differs = pa[i].at != pc[i].at || pa[i].node != pc[i].node;
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, RandomRespectsHorizonAndSingleCrashPerNode) {
  const std::vector<NodeId> nodes = {1, 2, 3, 4, 5};
  FaultPlan::RandomParams p;
  p.horizon = 50.0;
  p.crash_rate = 5.0;  // ~certain crash per node, still at most one
  p.stall_rate = 2.0;
  Rng rng(7);
  const auto events = FaultPlan::random(rng, nodes, p).events();
  std::map<NodeId, int> crashes;
  for (const auto& ev : events) {
    EXPECT_GE(ev.at, 0.0);
    EXPECT_LT(ev.at, p.horizon);
    if (ev.kind == FaultKind::crash_node) ++crashes[ev.node];
  }
  for (const auto& [node, n] : crashes) EXPECT_EQ(n, 1) << "node " << node;
  EXPECT_EQ(crashes.size(), nodes.size());  // rate 5 => everyone dies
}

TEST(FaultInjector, ArmDeliversHooksAtScheduledTimes) {
  sim::Simulator sim;
  Cluster cl(sim, 4);
  FaultInjector inj(sim, cl);

  std::vector<std::pair<SimTime, NodeId>> crashes;
  std::vector<std::pair<SimTime, std::uint32_t>> revokes;
  std::vector<SimTime> stall_durations;
  inj.on_crash([&](NodeId n) { crashes.emplace_back(sim.now(), n); });
  inj.on_revoke([&](std::uint32_t c) { revokes.emplace_back(sim.now(), c); });
  inj.on_stall([&](NodeId, SimTime d) { stall_durations.push_back(d); });

  FaultPlan plan;
  plan.crash(2.0, 1).crash(4.0, 2).revoke_class(3.0, 1).stall(1.0, 3, 0.75);
  inj.arm(plan);
  sim.run();

  ASSERT_EQ(crashes.size(), 2u);
  EXPECT_EQ(crashes[0], (std::pair<SimTime, NodeId>{2.0, 1}));
  EXPECT_EQ(crashes[1], (std::pair<SimTime, NodeId>{4.0, 2}));
  ASSERT_EQ(revokes.size(), 1u);
  EXPECT_EQ(revokes[0].first, 3.0);
  EXPECT_EQ(revokes[0].second, 1u);
  ASSERT_EQ(stall_durations.size(), 1u);
  EXPECT_EQ(stall_durations[0], 0.75);

  EXPECT_EQ(inj.stats().crashes, 2u);
  EXPECT_EQ(inj.stats().revocations, 1u);
  EXPECT_EQ(inj.stats().stalls, 1u);
  EXPECT_EQ(inj.injected().size(), 4u);
}

TEST(FaultInjector, DegradeNicScalesAndRestores) {
  sim::Simulator sim;
  Cluster cl(sim, 3);
  FaultInjector inj(sim, cl);
  const auto base = cl.fabric().nic(1);

  FaultPlan plan;
  plan.degrade_nic(1.0, 1, 0.25, 2.0);
  inj.arm(plan);

  sim.schedule(2.0, [&] {  // mid-degradation
    EXPECT_NEAR(cl.fabric().nic(1).up, base.up * 0.25, base.up * 1e-9);
    EXPECT_NEAR(cl.fabric().nic(1).down, base.down * 0.25, base.down * 1e-9);
  });
  sim.run();

  // Past t=3 the rates are back to baseline.
  EXPECT_NEAR(cl.fabric().nic(1).up, base.up, base.up * 1e-9);
  EXPECT_NEAR(cl.fabric().nic(1).down, base.down, base.down * 1e-9);
  EXPECT_EQ(inj.stats().nic_degradations, 1u);
}

TEST(FaultInjector, OverlappingDegradationsCompose) {
  sim::Simulator sim;
  Cluster cl(sim, 2);
  FaultInjector inj(sim, cl);
  const auto base = cl.fabric().nic(0);

  FaultPlan plan;
  plan.degrade_nic(1.0, 0, 0.5, 4.0);   // restores at t=5
  plan.degrade_nic(2.0, 0, 0.25, 1.0);  // restores at t=3
  inj.arm(plan);

  sim.schedule(2.5, [&] {  // both active: 0.5 * 0.25
    EXPECT_NEAR(cl.fabric().nic(0).up, base.up * 0.125, base.up * 1e-9);
  });
  sim.schedule(4.0, [&] {  // inner restored, outer still active
    EXPECT_NEAR(cl.fabric().nic(0).up, base.up * 0.5, base.up * 1e-9);
  });
  sim.run();
  EXPECT_NEAR(cl.fabric().nic(0).up, base.up, base.up * 1e-9);
}

TEST(FaultPlan, PartitionBuildersCarryPeerAndDirection) {
  FaultPlan plan;
  plan.partition(1.0, 2, 3.0)                         // full isolation
      .cut_link(2.0, 0, 1, 4.0, /*oneway=*/true)      // directed single link
      .heal(5.0);                                     // heal-all
  const auto sorted = plan.sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].kind, FaultKind::partition);
  EXPECT_EQ(sorted[0].node, 2u);
  EXPECT_EQ(sorted[0].peer, kInvalidNode);  // isolate-all
  EXPECT_EQ(sorted[0].duration, 3.0);
  EXPECT_EQ(sorted[1].kind, FaultKind::partition);
  EXPECT_EQ(sorted[1].node, 0u);
  EXPECT_EQ(sorted[1].peer, 1u);
  EXPECT_TRUE(sorted[1].oneway);
  EXPECT_EQ(sorted[2].kind, FaultKind::heal);
  EXPECT_EQ(sorted[2].node, kInvalidNode);
}

TEST(FaultPlan, RandomPartitionsAreSeedDeterministic) {
  const std::vector<NodeId> nodes = {0, 1, 2, 3, 4, 5};
  FaultPlan::RandomParams p;
  p.horizon = 100.0;
  p.partition_rate = 2.0;  // high enough that an empty plan is ~impossible
  p.partition_duration = 2.0;

  Rng a(11), b(11);
  const auto pa = FaultPlan::random(a, nodes, p).events();
  const auto pb = FaultPlan::random(b, nodes, p).events();
  ASSERT_EQ(pa.size(), pb.size());
  ASSERT_FALSE(pa.empty());
  std::size_t partitions = 0;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].at, pb[i].at);
    EXPECT_EQ(pa[i].kind, pb[i].kind);
    EXPECT_EQ(pa[i].node, pb[i].node);
    EXPECT_EQ(pa[i].peer, pb[i].peer);
    EXPECT_EQ(pa[i].oneway, pb[i].oneway);
    if (pa[i].kind == FaultKind::partition) {
      ++partitions;
      EXPECT_LT(pa[i].at, p.horizon);
      EXPECT_GT(pa[i].duration, 0.0);
      if (pa[i].peer != kInvalidNode) {
        EXPECT_NE(pa[i].peer, pa[i].node);
      }
    }
  }
  EXPECT_GT(partitions, 0u);
}

TEST(FaultInjector, PartitionCutsFabricAndAutoHeals) {
  sim::Simulator sim;
  Cluster cl(sim, 4);
  FaultInjector inj(sim, cl);
  std::vector<std::pair<NodeId, NodeId>> cut_seen, heal_seen;
  inj.on_partition([&](NodeId n, NodeId p) { cut_seen.emplace_back(n, p); });
  inj.on_heal([&](NodeId n, NodeId p) { heal_seen.emplace_back(n, p); });

  FaultPlan plan;
  plan.cut_link(1.0, 0, 1, 2.0);  // heals itself at t=3
  inj.arm(plan);

  sim.schedule(2.0, [&] {  // mid-partition
    EXPECT_FALSE(cl.fabric().reachable(0, 1));
    EXPECT_FALSE(cl.fabric().reachable(1, 0));
    EXPECT_TRUE(cl.fabric().reachable(0, 2));
  });
  sim.run();

  EXPECT_TRUE(cl.fabric().reachable(0, 1));
  EXPECT_EQ(cl.fabric().cut_link_count(), 0u);
  ASSERT_EQ(cut_seen.size(), 1u);
  EXPECT_EQ(cut_seen[0], (std::pair<NodeId, NodeId>{0, 1}));
  ASSERT_EQ(heal_seen.size(), 1u);
  EXPECT_EQ(inj.stats().partitions, 1u);
  EXPECT_EQ(inj.stats().heals, 1u);
}

TEST(FaultInjector, IsolationPartitionSeversEveryLink) {
  sim::Simulator sim;
  Cluster cl(sim, 3);
  FaultInjector inj(sim, cl);
  inj.partition_now(1, kInvalidNode, /*duration=*/0.0);  // manual heal
  EXPECT_FALSE(cl.fabric().reachable(1, 0));
  EXPECT_FALSE(cl.fabric().reachable(0, 1));
  EXPECT_FALSE(cl.fabric().reachable(1, 2));
  EXPECT_TRUE(cl.fabric().reachable(0, 2));
  inj.heal_now(1);
  EXPECT_EQ(cl.fabric().cut_link_count(), 0u);
  sim.run();  // no auto-heal was scheduled
  EXPECT_EQ(inj.stats().partitions, 1u);
  EXPECT_EQ(inj.stats().heals, 1u);
}

TEST(FaultInjector, EvictRoutesThroughBus) {
  sim::Simulator sim;
  Cluster cl(sim, 2);
  FaultInjector inj(sim, cl);
  std::vector<NodeId> evicted;
  inj.on_evict([&](NodeId n) { evicted.push_back(n); });
  inj.evict_now(1);
  EXPECT_EQ(evicted, std::vector<NodeId>{1});
  EXPECT_EQ(inj.stats().evictions, 1u);
}

}  // namespace
}  // namespace memfss::cluster
