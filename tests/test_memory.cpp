#include "sim/memory.hpp"

#include <gtest/gtest.h>

namespace memfss::sim {
namespace {

TEST(MemoryPool, AllocAndFree) {
  MemoryPool pool(1000);
  EXPECT_TRUE(pool.try_alloc(400));
  EXPECT_EQ(pool.used(), 400u);
  EXPECT_EQ(pool.available(), 600u);
  pool.free(150);
  EXPECT_EQ(pool.used(), 250u);
}

TEST(MemoryPool, RejectsOverflowWithoutChange) {
  MemoryPool pool(100);
  EXPECT_TRUE(pool.try_alloc(80));
  EXPECT_FALSE(pool.try_alloc(21));
  EXPECT_EQ(pool.used(), 80u);
  EXPECT_TRUE(pool.try_alloc(20));  // exact fit
  EXPECT_EQ(pool.available(), 0u);
}

TEST(MemoryPool, HighWaterMark) {
  MemoryPool pool(1000);
  (void)pool.try_alloc(700);
  pool.free(500);
  (void)pool.try_alloc(100);
  EXPECT_EQ(pool.high_water(), 700u);
}

TEST(MemoryPool, UtilizationFraction) {
  MemoryPool pool(200);
  (void)pool.try_alloc(50);
  EXPECT_DOUBLE_EQ(pool.utilization(), 0.25);
}

TEST(MemoryPool, PressureFiresOncePerCrossing) {
  MemoryPool pool(100);
  int fired = 0;
  pool.set_pressure_callback(80, [&] { ++fired; });
  (void)pool.try_alloc(50);
  EXPECT_EQ(fired, 0);
  (void)pool.try_alloc(40);  // crosses 80
  EXPECT_EQ(fired, 1);
  (void)pool.try_alloc(5);  // still above: no re-fire
  EXPECT_EQ(fired, 1);
  pool.free(50);            // drops below: re-arms
  (void)pool.try_alloc(40);  // crosses again (45 -> 85)
  EXPECT_EQ(fired, 2);
}

TEST(MemoryPool, PressureArmedStateRespectsCurrentUsage) {
  MemoryPool pool(100);
  (void)pool.try_alloc(90);
  int fired = 0;
  pool.set_pressure_callback(80, [&] { ++fired; });
  // Already above threshold at registration: fires on the next alloc.
  (void)pool.try_alloc(1);
  EXPECT_EQ(fired, 0);  // was not armed (registered above threshold)
  pool.free(30);
  (void)pool.try_alloc(25);  // crosses 80 from below
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace memfss::sim
