#include "sim/memory.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "cluster/monitor.hpp"
#include "sim/simulator.hpp"

namespace memfss::sim {
namespace {

TEST(MemoryPool, AllocAndFree) {
  MemoryPool pool(1000);
  EXPECT_TRUE(pool.try_alloc(400));
  EXPECT_EQ(pool.used(), 400u);
  EXPECT_EQ(pool.available(), 600u);
  pool.free(150);
  EXPECT_EQ(pool.used(), 250u);
}

TEST(MemoryPool, RejectsOverflowWithoutChange) {
  MemoryPool pool(100);
  EXPECT_TRUE(pool.try_alloc(80));
  EXPECT_FALSE(pool.try_alloc(21));
  EXPECT_EQ(pool.used(), 80u);
  EXPECT_TRUE(pool.try_alloc(20));  // exact fit
  EXPECT_EQ(pool.available(), 0u);
}

TEST(MemoryPool, HighWaterMark) {
  MemoryPool pool(1000);
  (void)pool.try_alloc(700);
  pool.free(500);
  (void)pool.try_alloc(100);
  EXPECT_EQ(pool.high_water(), 700u);
}

TEST(MemoryPool, UtilizationFraction) {
  MemoryPool pool(200);
  (void)pool.try_alloc(50);
  EXPECT_DOUBLE_EQ(pool.utilization(), 0.25);
}

TEST(MemoryPool, PressureFiresOncePerCrossing) {
  MemoryPool pool(100);
  int fired = 0;
  pool.set_pressure_callback(80, [&] { ++fired; });
  (void)pool.try_alloc(50);
  EXPECT_EQ(fired, 0);
  (void)pool.try_alloc(40);  // crosses 80
  EXPECT_EQ(fired, 1);
  (void)pool.try_alloc(5);  // still above: no re-fire
  EXPECT_EQ(fired, 1);
  pool.free(50);            // drops below: re-arms
  (void)pool.try_alloc(40);  // crosses again (45 -> 85)
  EXPECT_EQ(fired, 2);
}

TEST(MemoryPool, PressureArmedStateRespectsCurrentUsage) {
  MemoryPool pool(100);
  (void)pool.try_alloc(90);
  int fired = 0;
  pool.set_pressure_callback(80, [&] { ++fired; });
  // Already above threshold at registration: fires on the next alloc.
  (void)pool.try_alloc(1);
  EXPECT_EQ(fired, 0);  // was not armed (registered above threshold)
  pool.free(30);
  (void)pool.try_alloc(25);  // crosses 80 from below
  EXPECT_EQ(fired, 1);
}

TEST(VictimMonitor, ReArmsAcrossPressureCyclesWithPartialRelief) {
  // The monitor is not one-shot: fire_count() must grow once per upward
  // crossing, and *partial* relief (usage recedes but stays at or above
  // the threshold) must NOT re-arm it -- only dropping below does.
  Simulator simu;
  MemoryPool pool(1000);
  std::vector<SimTime> handler_at;
  cluster::VictimMonitor mon(simu, pool, 7, 0.8, [&](NodeId n) {
    EXPECT_EQ(n, 7u);
    handler_at.push_back(simu.now());
  });
  EXPECT_FALSE(mon.fired());

  ASSERT_TRUE(pool.try_alloc(850));  // first crossing
  EXPECT_EQ(mon.fire_count(), 1u);
  EXPECT_TRUE(handler_at.empty());   // handler is deferred off the alloc path
  simu.run();
  ASSERT_EQ(handler_at.size(), 1u);

  pool.free(30);                     // 820: partial relief, still >= 800
  ASSERT_TRUE(pool.try_alloc(100));  // 920: no new crossing
  EXPECT_EQ(mon.fire_count(), 1u);

  pool.free(200);                    // 720 < 800: re-arms
  ASSERT_TRUE(pool.try_alloc(150));  // 870: second crossing
  EXPECT_EQ(mon.fire_count(), 2u);

  pool.free(71);                     // 799: barely below -- re-arms again
  ASSERT_TRUE(pool.try_alloc(1));    // 800: crossing at the exact threshold
  EXPECT_EQ(mon.fire_count(), 3u);

  simu.run();
  EXPECT_EQ(handler_at.size(), 3u);
  EXPECT_EQ(mon.fire_count(), 3u);
}

TEST(VictimMonitor, ManualDemandFiresRegardlessOfPressureState) {
  Simulator simu;
  MemoryPool pool(100);
  std::size_t handled = 0;
  cluster::VictimMonitor mon(simu, pool, 3, 0.9, [&](NodeId) { ++handled; });
  mon.demand_memory();  // operator-initiated reclaim, pool untouched
  EXPECT_EQ(mon.fire_count(), 1u);
  simu.run();
  EXPECT_EQ(handled, 1u);
}

}  // namespace
}  // namespace memfss::sim
