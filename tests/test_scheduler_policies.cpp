// Tests for the engine's slot policies: every policy must complete the
// workflow; the load-balancing ones must not leave workers idle while
// tasks queue.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "workflow/engine.hpp"
#include "workflow/generators.hpp"

namespace memfss::workflow {
namespace {

struct Rig {
  sim::Simulator sim;
  cluster::Cluster cl{sim, 4};
  fs::FileSystem fs;

  Rig() : fs(cl, make_cfg()) {}

  static fs::FileSystemConfig make_cfg() {
    fs::FileSystemConfig cfg;
    cfg.own_nodes = {0, 1, 2, 3};
    cfg.stripe_size = units::MiB;
    return cfg;
  }

  Report run_wf(Workflow wf, EngineConfig ecfg) {
    Engine engine(cl, fs, {0, 1, 2, 3}, ecfg);
    Report out;
    sim.spawn([](Engine& e, Workflow w, Report& o) -> sim::Task<> {
      o = co_await e.run(std::move(w));
    }(engine, std::move(wf), out));
    sim.run();
    return out;
  }
};

class EveryPolicy : public ::testing::TestWithParam<SlotPolicy> {};

TEST_P(EveryPolicy, CompletesForkJoin) {
  Rig rig;
  EngineConfig cfg;
  cfg.slots_per_node = 4.0;
  cfg.slot_policy = GetParam();
  auto report = rig.run_wf(make_fork_join(40, 1.0, units::KiB), cfg);
  ASSERT_TRUE(report.status.ok());
  EXPECT_EQ(report.tasks_run, 42u);
  // 40 independent 1s tasks over 16 slots: at least 3 waves + endpoints.
  EXPECT_GE(report.makespan, 5.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, EveryPolicy,
    ::testing::Values(SlotPolicy::least_loaded, SlotPolicy::round_robin,
                      SlotPolicy::random, SlotPolicy::pack_first),
    [](const auto& info) {
      switch (info.param) {
        case SlotPolicy::least_loaded: return "least_loaded";
        case SlotPolicy::round_robin: return "round_robin";
        case SlotPolicy::random: return "random";
        case SlotPolicy::pack_first: return "pack_first";
      }
      return "unknown";
    });

TEST(SlotPolicies, WorkConservingPoliciesMatchOnIndependentTasks) {
  // With identical independent tasks every work-conserving policy yields
  // the same makespan (only the assignment differs).
  Workflow wf;
  for (int i = 0; i < 32; ++i) {
    TaskSpec t;
    t.name = "t" + std::to_string(i);
    t.stage = "w";
    t.cpu_seconds = 2.0;
    wf.tasks.push_back(std::move(t));
  }
  double makespans[4];
  int i = 0;
  for (auto policy : {SlotPolicy::least_loaded, SlotPolicy::round_robin,
                      SlotPolicy::random, SlotPolicy::pack_first}) {
    Rig rig;
    EngineConfig cfg;
    cfg.slots_per_node = 2.0;
    cfg.slot_policy = policy;
    auto report = rig.run_wf(wf, cfg);
    ASSERT_TRUE(report.status.ok());
    makespans[i++] = report.makespan;
  }
  for (int k = 1; k < 4; ++k)
    EXPECT_NEAR(makespans[k], makespans[0], 1e-6);
}

TEST(SlotPolicies, RandomIsSeedDeterministic) {
  auto run = [](std::uint64_t seed) {
    Rig rig;
    EngineConfig cfg;
    cfg.slot_policy = SlotPolicy::random;
    cfg.seed = seed;
    Rng rng(5);
    MontageParams p;
    p.tiles = 16;
    p.concat_cpu = 2;
    p.bgmodel_cpu = 2;
    p.imgtbl_cpu = 1;
    p.madd_cpu = 3;
    p.shrink_cpu = 1;
    return rig.run_wf(make_montage(p, rng), cfg).makespan;
  };
  EXPECT_EQ(run(11), run(11));
}

}  // namespace
}  // namespace memfss::workflow
