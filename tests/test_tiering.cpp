// Tiering invariants (DESIGN.md §16): coldest-prefix demotion victims,
// hot+cold conservation, no dual residency, promote∘demote round-trips,
// and seed-deterministic replay of randomized demote/promote/crash
// interleavings. Server-level properties use a bare kvstore rig; the
// demote-coldest-first evacuation property drives the real filesystem
// pressure path through an exp::Scenario.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "exp/scenario.hpp"
#include "exp/tier.hpp"
#include "fs/client.hpp"
#include "kvstore/server.hpp"
#include "kvstore/tier.hpp"
#include "sim/sync.hpp"
#include "co_test.hpp"

namespace memfss::kvstore {
namespace {

struct Rig {
  sim::Simulator sim;
  net::Fabric fabric;
  sim::FluidResource cpu;
  sim::FluidResource membw;
  sim::MemoryPool mem;
  obs::Observability obs;

  Rig()
      : fabric(sim, 4, net::NicSpec{1e9, 1e9, 0.001}),
        cpu(sim, 16.0),
        membw(sim, 1e12),
        mem(1 << 30),
        obs(sim) {}

  ResourceHooks hooks() {
    return ResourceHooks{&cpu, &membw, &mem, nullptr, &obs};
  }
};

std::unique_ptr<StorageTier> make_tier(Bytes cap = 1 << 30) {
  return std::make_unique<ColdTier>(cap, TierCosts{});
}

/// Sum of accounted bytes (payload + per-key overhead) a server would
/// charge for the given keys if they were hot.
Bytes accounted_total(const Server& srv, const std::vector<std::string>& keys) {
  Bytes total = 0;
  for (const auto& k : keys) {
    const auto sz = srv.resident_size("t", k);
    EXPECT_TRUE(sz.ok()) << k;
    if (sz.ok()) total += sz.value() + Store::kPerKeyOverhead;
  }
  return total;
}

/// Invariant: every resident key lives in exactly one tier.
void expect_no_dual_residency(Server& srv) {
  for (const auto& k : srv.all_keys()) {
    const bool hot = srv.store().peek(k) != nullptr;
    const bool cold = srv.tier() && srv.tier()->contains(k);
    EXPECT_TRUE(hot != cold) << "key " << k << " hot=" << hot
                             << " cold=" << cold;
  }
}

/// Invariant: pool + tier accounting matches the resident key set.
void expect_conservation(Rig& rig, Server& srv) {
  Bytes hot = 0, cold = 0;
  for (const auto& k : srv.all_keys()) {
    const auto sz = srv.resident_size("t", k);
    ASSERT_TRUE(sz.ok());
    const Bytes acc = sz.value() + Store::kPerKeyOverhead;
    if (srv.store().peek(k) != nullptr)
      hot += acc;
    else
      cold += acc;
  }
  EXPECT_EQ(srv.store().used(), hot);
  EXPECT_EQ(rig.mem.used(), hot);  // cold bytes live outside the pool
  EXPECT_EQ(srv.tier_bytes(), cold);
}

TEST(Tiering, DemotionVictimsAreColdestPrefix) {
  Rig rig;
  Server srv(rig.sim, rig.fabric, 1, 1 << 30, "t", rig.hooks());
  srv.attach_tier(make_tier(), 1.0);
  rig.sim.spawn([](Rig& r, Server& s) -> sim::Task<> {
    for (int i = 0; i < 8; ++i)
      CO_ASSERT_OK(co_await s.put(0, "t", "k" + std::to_string(i),
                                  Blob::ghost(1000 + i)));
    // Heat a suffix with distinct frequencies so the order is nontrivial.
    for (int i = 4; i < 8; ++i)
      for (int touches = 0; touches < i; ++touches)
        (void)co_await s.get(0, "t", "k" + std::to_string(i));

    const auto order = s.demotion_order();
    CO_ASSERT_TRUE(order.size() == 8u);
    // Demote five; the victims must be exactly the coldest prefix.
    for (std::size_t i = 0; i < 5; ++i)
      CO_ASSERT_OK(co_await s.demote_key(order[i]));
    for (std::size_t i = 0; i < order.size(); ++i) {
      const bool cold = s.tier()->contains(order[i]);
      CO_ASSERT_TRUE(cold == (i < 5));
    }
  }(rig, srv));
  rig.sim.run();
  expect_no_dual_residency(srv);
  expect_conservation(rig, srv);
}

TEST(Tiering, ConservationAcrossDemotePromoteDelete) {
  Rig rig;
  Server srv(rig.sim, rig.fabric, 1, 1 << 30, "t", rig.hooks());
  srv.attach_tier(make_tier(), 1.0);
  rig.sim.spawn([](Rig& r, Server& s) -> sim::Task<> {
    for (int i = 0; i < 6; ++i)
      CO_ASSERT_OK(co_await s.put(0, "t", "k" + std::to_string(i),
                                  Blob::ghost(500 * (i + 1))));
    const Bytes before = r.mem.used();
    CO_ASSERT_OK(co_await s.demote_key("k0"));
    CO_ASSERT_OK(co_await s.demote_key("k3"));
    // Demotion returns pool bytes; total accounted is unchanged.
    CO_ASSERT_TRUE(r.mem.used() < before);
    CO_ASSERT_TRUE(r.mem.used() + s.tier_bytes() == before);
    CO_ASSERT_OK(co_await s.promote_key("k0"));
    CO_ASSERT_OK(co_await s.del(0, "t", "k3"));  // cold delete
    CO_ASSERT_TRUE(s.tier_bytes() == 0u);
  }(rig, srv));
  rig.sim.run();
  expect_no_dual_residency(srv);
  expect_conservation(rig, srv);
}

TEST(Tiering, PromoteDemoteRoundTripsBytes) {
  Rig rig;
  Server srv(rig.sim, rig.fabric, 1, 1 << 30, "t", rig.hooks());
  srv.attach_tier(make_tier(), 1.0);
  std::vector<std::uint8_t> payload(4096);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i * 131 + 7);
  rig.sim.spawn([](Server& s, std::vector<std::uint8_t> bytes) -> sim::Task<> {
    const Blob original = Blob::materialized(bytes);
    CO_ASSERT_OK(co_await s.put(0, "t", "blob", original));
    CO_ASSERT_OK(co_await s.demote_key("blob"));
    CO_ASSERT_TRUE(s.store().peek("blob") == nullptr);
    CO_ASSERT_TRUE(s.tier()->contains("blob"));
    CO_ASSERT_OK(co_await s.promote_key("blob"));
    CO_ASSERT_FALSE(s.tier()->contains("blob"));
    auto got = co_await s.get(0, "t", "blob");
    CO_ASSERT_OK(got);
    CO_ASSERT_TRUE(got.value() == original);
    CO_ASSERT_TRUE(got.value().verify());
  }(srv, payload));
  rig.sim.run();
}

TEST(Tiering, ColdHitPromotesOnAccessAndCounts) {
  Rig rig;
  Server srv(rig.sim, rig.fabric, 1, 1 << 30, "t", rig.hooks());
  srv.attach_tier(make_tier(), 1.0);
  rig.sim.spawn([](Rig& r, Server& s) -> sim::Task<> {
    CO_ASSERT_OK(co_await s.put(0, "t", "k", Blob::ghost(10000)));
    CO_ASSERT_OK(co_await s.demote_key("k"));
    auto got = co_await s.get(0, "t", "k");  // cold hit
    CO_ASSERT_OK(got);
    CO_ASSERT_TRUE(got.value().size() == 10000u);
    // Promote-on-access: the key is hot again and the tier is empty.
    CO_ASSERT_TRUE(s.store().peek("k") != nullptr);
    CO_ASSERT_FALSE(s.tier()->contains("k"));
    CO_ASSERT_TRUE(r.obs.metrics.counter("tier.cold_hits").value() == 1u);
    CO_ASSERT_TRUE(r.obs.metrics.counter("tier.demotions").value() == 1u);
    CO_ASSERT_TRUE(r.obs.metrics.counter("tier.promotions").value() == 1u);
    CO_ASSERT_TRUE(
        r.obs.metrics.histogram_summary("tier.cold_hit_latency").count == 1u);
  }(rig, srv));
  rig.sim.run();
  expect_no_dual_residency(srv);
  expect_conservation(rig, srv);
}

TEST(Tiering, ColdHitIsSlowerThanHotHit) {
  // The cold path pays the device access latency + bandwidth; a hot get
  // of the same size must be strictly cheaper.
  auto timed_get = [](bool demote_first) {
    Rig rig;
    Server srv(rig.sim, rig.fabric, 1, 1 << 30, "t", rig.hooks());
    srv.attach_tier(make_tier(), 1.0);
    SimTime start = 0.0, done = 0.0;
    rig.sim.spawn([](Rig& r, Server& s, bool demote, SimTime& t0,
                     SimTime& t1) -> sim::Task<> {
      CO_ASSERT_OK(co_await s.put(0, "t", "k", Blob::ghost(1 << 20)));
      if (demote) CO_ASSERT_OK(co_await s.demote_key("k"));
      t0 = r.sim.now();
      CO_ASSERT_OK(co_await s.get(0, "t", "k"));
      t1 = r.sim.now();
    }(rig, srv, demote_first, start, done));
    rig.sim.run();
    return done - start;
  };
  const SimTime hot = timed_get(false);
  const SimTime cold = timed_get(true);
  EXPECT_GT(cold, hot);
}

TEST(Tiering, DemoteRefusedWhenTierFull) {
  Rig rig;
  Server srv(rig.sim, rig.fabric, 1, 1 << 30, "t", rig.hooks());
  srv.attach_tier(make_tier(2000), 1.0);  // fits ~1 entry
  rig.sim.spawn([](Server& s) -> sim::Task<> {
    CO_ASSERT_OK(co_await s.put(0, "t", "a", Blob::ghost(1500)));
    CO_ASSERT_OK(co_await s.put(0, "t", "b", Blob::ghost(1500)));
    CO_ASSERT_OK(co_await s.demote_key("a"));
    const Status st = co_await s.demote_key("b");
    CO_ASSERT_TRUE(st.code() == Errc::out_of_memory);
    // A refused demotion leaves the entry hot and intact.
    CO_ASSERT_TRUE(s.store().peek("b") != nullptr);
    CO_ASSERT_FALSE(s.tier()->contains("b"));
  }(srv));
  rig.sim.run();
  expect_no_dual_residency(srv);
  expect_conservation(rig, srv);
}

TEST(Tiering, CrashMidDemotionLosesTierWithNode) {
  Rig rig;
  Server srv(rig.sim, rig.fabric, 1, 1 << 30, "t", rig.hooks());
  // Glacial device: the 1 MiB demotion write takes ~1 s, so a crash at
  // t=0.5 lands mid-flight deterministically.
  TierCosts slow;
  slow.write_bw = 1e6;
  srv.attach_tier(std::make_unique<ColdTier>(1 << 30, slow), 1.0);
  Status demote_st;
  rig.sim.spawn([](Server& s, Status& out) -> sim::Task<> {
    CO_ASSERT_OK(co_await s.put(0, "t", "k", Blob::ghost(1 << 20)));
    out = co_await s.demote_key("k");
  }(srv, demote_st));
  rig.sim.schedule(0.5, [&] {
    ASSERT_TRUE(srv.is_up());
    srv.crash();
  });
  rig.sim.run();
  EXPECT_FALSE(demote_st.ok());
  // The node is gone: nothing resident, nothing charged, either tier.
  EXPECT_EQ(srv.all_keys().size(), 0u);
  EXPECT_EQ(srv.tier_bytes(), 0u);
  EXPECT_EQ(rig.mem.used(), 0u);
}

/// Drive a random trace of puts/gets/demotes/promotes/dels (with an
/// optional crash) and digest every outcome; two runs at the same seed
/// must produce identical digests.
std::string run_interleaving(std::uint64_t seed, bool with_crash) {
  Rig rig;
  Server srv(rig.sim, rig.fabric, 1, 1 << 30, "t", rig.hooks());
  srv.attach_tier(make_tier(), 0.5);
  std::string digest;
  // Three concurrent actors, each with a forked stream, racing demotes
  // and promotes against regular traffic.
  Rng root(seed);
  for (int actor = 0; actor < 3; ++actor) {
    rig.sim.spawn([](Rig& r, Server& s, Rng rng, int id,
                     std::string& out) -> sim::Task<> {
      for (int step = 0; step < 40; ++step) {
        co_await r.sim.delay(rng.exponential(0.01));
        const auto key = "k" + std::to_string(rng.uniform_u64(0, 9));
        Errc code;
        const char* op;
        switch (rng.uniform_u64(0, 4)) {
          case 0:
            op = "put";
            code = (co_await s.put(0, "t", key,
                                   Blob::ghost(rng.uniform_u64(100, 5000))))
                       .code();
            break;
          case 1:
            op = "get";
            code = (co_await s.get(0, "t", key)).code();
            break;
          case 2:
            op = "demote";
            code = (co_await s.demote_key(key)).code();
            break;
          case 3:
            op = "promote";
            code = (co_await s.promote_key(key)).code();
            break;
          default:
            op = "del";
            code = (co_await s.del(0, "t", key)).code();
            break;
        }
        out += std::to_string(id) + op + key + ":" +
               std::to_string(static_cast<int>(code)) + "@" +
               std::to_string(r.sim.now()) + ";";
      }
    }(rig, srv, root.fork(), actor, digest));
  }
  if (with_crash) {
    rig.sim.schedule(0.2, [&] { srv.crash(); });
  }
  rig.sim.run();
  if (srv.is_up()) {
    expect_no_dual_residency(srv);
    expect_conservation(rig, srv);
  } else {
    EXPECT_EQ(rig.mem.used(), 0u);
    EXPECT_EQ(srv.tier_bytes(), 0u);
  }
  digest += "|bytes=" + std::to_string(srv.store().used()) + "+" +
            std::to_string(srv.tier_bytes()) +
            "|t=" + std::to_string(rig.sim.now());
  return digest;
}

TEST(Tiering, RandomInterleavingsReplayBitIdentically) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    EXPECT_EQ(run_interleaving(seed, false), run_interleaving(seed, false));
    EXPECT_EQ(run_interleaving(seed, true), run_interleaving(seed, true));
  }
  // Distinct seeds explore distinct schedules (sanity that the digest
  // actually captures behaviour).
  EXPECT_NE(run_interleaving(1, false), run_interleaving(2, false));
}

}  // namespace
}  // namespace memfss::kvstore

namespace memfss::exp {
namespace {

ScenarioParams tiered_params() {
  ScenarioParams p;
  p.total_nodes = 6;
  p.own_nodes = 2;
  p.own_fraction = 0.1;
  // Small node pools so the demote pass reaches its relief floor before
  // the hot key set runs dry (the partial-prefix property below).
  p.node_spec.memory = 256 * units::MiB;
  p.victim_memory_cap = 256 * units::MiB;
  p.own_store_capacity = 4 * units::GiB;
  p.stripe_size = 4 * units::MiB;
  p.victim_tier_capacity = 1 * units::GiB;
  return p;
}

TEST(TieringFs, PressureDemotesColdestPrefixNotEverything) {
  Scenario sc(tiered_params());
  std::size_t files_failed = 0;
  sc.sim().spawn([](Scenario& s, std::size_t& failed) -> sim::Task<> {
    auto c = s.fs().client(s.own_nodes().front());
    (void)co_await c.mkdirs("/d");
    for (int f = 0; f < 48; ++f) {
      const auto st =
          co_await c.write_file("/d/f" + std::to_string(f), 8 * units::MiB);
      if (!st.ok()) ++failed;
    }
    // Re-read a prefix so those stripes are hot everywhere.
    for (int f = 0; f < 4; ++f)
      (void)co_await c.read_file("/d/f" + std::to_string(f));
  }(sc, files_failed));
  sc.sim().run();
  ASSERT_EQ(files_failed, 0u);

  sc.fs().arm_victim_monitors(0.85);
  const NodeId victim = sc.victim_nodes().front();
  auto& srv = sc.fs().server(victim);
  ASSERT_TRUE(srv.tiered());
  const auto order = srv.demotion_order();
  ASSERT_GT(order.size(), 1u);

  auto& pool = sc.cluster().node(victim).memory();
  const auto want = static_cast<Bytes>(0.95 * pool.capacity());
  ASSERT_TRUE(pool.used() < want && pool.try_alloc(want - pool.used()));
  sc.sim().run();  // drains the demote pass

  // The pass stopped at the relief floor: some keys went cold, the
  // hottest stayed hot, and the cold set is a prefix of the pre-pass
  // coldest-first order.
  const auto* tier = srv.tier();
  std::size_t cold = 0;
  for (const auto& k : order)
    if (tier->contains(k)) ++cold;
  EXPECT_GT(cold, 0u);
  EXPECT_LT(cold, order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(tier->contains(order[i]), i < cold)
        << "demotion victims not a coldest prefix at " << order[i];
  }
  // Relief actually happened without the fabric: node pool dropped below
  // the threshold and no evacuation ran.
  EXPECT_LT(pool.used(), static_cast<Bytes>(0.85 * pool.capacity()));
  EXPECT_TRUE(sc.fs().has_server(victim));
}

// Regression: concurrent evacuations draining a whole victim class.
// `remaining` in FileSystem::evacuate_victim is a live view of the class
// membership; an evacuation that is mid-migration when the last *other*
// member leaves must fall back to the own class for its remaining keys
// instead of HRW-selecting from an empty candidate set (formerly an
// assert under sanitizers, silent UB in release).
TEST(TieringFs, ConcurrentEvacuationsFallBackToOwnClass) {
  ScenarioParams p = tiered_params();
  p.victim_tier_capacity = 0;  // untiered: reclaim == evacuation
  Scenario sc(p);
  std::size_t files_failed = 0;
  sc.sim().spawn([](Scenario& s, std::size_t& failed) -> sim::Task<> {
    auto c = s.fs().client(s.own_nodes().front());
    (void)co_await c.mkdirs("/d");
    for (int f = 0; f < 24; ++f) {
      const auto st =
          co_await c.write_file("/d/f" + std::to_string(f), 8 * units::MiB);
      if (!st.ok()) ++failed;
    }
  }(sc, files_failed));
  sc.sim().run();
  ASSERT_EQ(files_failed, 0u);

  // Stagger the evacuations by 1 ms so the first is still migrating
  // (each stripe takes ~10 ms over the victim NIC) when the rest leave
  // the class out from under it.
  const auto victims = sc.victim_nodes();
  ASSERT_GT(victims.size(), 1u);
  std::vector<Status> sts(victims.size());
  for (std::size_t i = 0; i < victims.size(); ++i) {
    sc.sim().spawn(
        [](Scenario& s, NodeId v, double at, Status& out) -> sim::Task<> {
          if (at > 0) co_await s.sim().delay(at);
          out = co_await s.fs().evacuate_victim(v);
        }(sc, victims[i], static_cast<double>(i) * 0.001, sts[i]));
  }
  sc.sim().run();
  for (std::size_t i = 0; i < sts.size(); ++i)
    EXPECT_TRUE(sts[i].ok()) << "victim " << victims[i] << ": "
                             << sts[i].error().to_string();

  // Every file survived the scramble and reads back intact.
  std::size_t read_failed = 0;
  sc.sim().spawn([](Scenario& s, std::size_t& failed) -> sim::Task<> {
    auto c = s.fs().client(s.own_nodes().front());
    for (int f = 0; f < 24; ++f) {
      const auto st = co_await c.read_file("/d/f" + std::to_string(f));
      if (!st.ok()) ++failed;
    }
  }(sc, read_failed));
  sc.sim().run();
  EXPECT_EQ(read_failed, 0u);
}

// Scaled-down run of the tier-pressure experiment (the full-size version
// lives in bench/tier_pressure and runs via scripts/check.sh --tier):
// both arms complete, the tiered arm actually demotes, and rows replay
// byte-identically at a fixed seed.
TierPressureOptions small_pressure_opts(Bytes tier_capacity) {
  TierPressureOptions opt;
  opt.seed = 1;
  opt.scenario.total_nodes = 6;
  opt.scenario.own_nodes = 2;
  opt.scenario.own_fraction = 0.1;
  opt.scenario.victim_memory_cap = 256 * units::MiB;
  opt.scenario.victim_net_cap = 400e6;
  opt.scenario.own_store_capacity = 2 * units::GiB;
  opt.scenario.stripe_size = 4 * units::MiB;
  opt.scenario.victim_tier_capacity = tier_capacity;
  opt.files = 10;
  opt.file_bytes = 8 * units::MiB;
  return opt;
}

TEST(TierPressure, BothArmsRunAndTieredArmDemotes) {
  const auto baseline = run_tier_pressure(small_pressure_opts(0));
  EXPECT_TRUE(baseline.ok);
  EXPECT_EQ(baseline.arm, "baseline");
  EXPECT_GT(baseline.pressure_events, 0u);
  EXPECT_EQ(baseline.demotions, 0u);

  const auto tiered = run_tier_pressure(small_pressure_opts(1 * units::GiB));
  EXPECT_TRUE(tiered.ok);
  EXPECT_EQ(tiered.arm, "tiered");
  EXPECT_GT(tiered.demotions, 0u);
  EXPECT_GT(tiered.cold_bytes, 0u);
  // Demotion at device bandwidth beats evacuation over the capped fabric.
  EXPECT_LT(tiered.reclaim.p99, baseline.reclaim.p99);

  // Schema sanity: header arity matches row arity.
  const auto header = tier_pressure_csv_header();
  const auto row = tier_pressure_csv_row(tiered);
  EXPECT_EQ(std::count(header.begin(), header.end(), ','),
            std::count(row.begin(), row.end(), ','));
}

TEST(TierPressure, RowsReplayByteIdentically) {
  const auto a = run_tier_pressure(small_pressure_opts(1 * units::GiB));
  const auto b = run_tier_pressure(small_pressure_opts(1 * units::GiB));
  EXPECT_EQ(tier_pressure_csv_row(a), tier_pressure_csv_row(b));
}

}  // namespace
}  // namespace memfss::exp
