#include "sim/sync.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace memfss::sim {
namespace {

TEST(Event, TriggerWakesAllWaiters) {
  Simulator sim;
  Event ev(sim);
  int woken = 0;
  auto waiter = [](Event& e, int& w) -> Task<> {
    co_await e;
    ++w;
  };
  for (int i = 0; i < 3; ++i) sim.spawn(waiter(ev, woken));
  sim.schedule(2.0, [&] { ev.trigger(); });
  sim.run();
  EXPECT_EQ(woken, 3);
  EXPECT_TRUE(ev.triggered());
}

TEST(Event, AwaitAfterTriggerIsImmediate) {
  Simulator sim;
  Event ev(sim);
  ev.trigger();
  SimTime woke_at = -1;
  sim.spawn([](Simulator& s, Event& e, SimTime& t) -> Task<> {
    co_await s.delay(1.0);
    co_await e;  // already triggered: no extra delay
    t = s.now();
  }(sim, ev, woke_at));
  sim.run();
  EXPECT_EQ(woke_at, 1.0);
}

TEST(Event, DoubleTriggerIsIdempotent) {
  Simulator sim;
  Event ev(sim);
  ev.trigger();
  ev.trigger();
  EXPECT_TRUE(ev.triggered());
}

TEST(Semaphore, LimitsConcurrency) {
  Simulator sim;
  Semaphore sem(sim, 2);
  int active = 0, peak = 0;
  auto worker = [](Simulator& s, Semaphore& sm, int& a, int& p) -> Task<> {
    co_await sm.acquire();
    ++a;
    p = std::max(p, a);
    co_await s.delay(1.0);
    --a;
    sm.release();
  };
  for (int i = 0; i < 6; ++i) sim.spawn(worker(sim, sem, active, peak));
  sim.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(active, 0);
  EXPECT_EQ(sim.now(), 3.0);  // 6 jobs, 2 wide, 1s each
}

TEST(Semaphore, FifoHandoff) {
  Simulator sim;
  Semaphore sem(sim, 1);
  std::vector<int> order;
  auto worker = [](Simulator& s, Semaphore& sm, std::vector<int>& o,
                   int id) -> Task<> {
    co_await sm.acquire();
    o.push_back(id);
    co_await s.delay(1.0);
    sm.release();
  };
  for (int i = 0; i < 4; ++i) sim.spawn(worker(sim, sem, order, i));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Channel, PopWaitsForPush) {
  Simulator sim;
  Channel<int> ch(sim);
  int got = 0;
  SimTime when = 0;
  sim.spawn([](Simulator& s, Channel<int>& c, int& g, SimTime& w) -> Task<> {
    g = co_await c.pop();
    w = s.now();
  }(sim, ch, got, when));
  sim.schedule(3.0, [&] { ch.push(7); });
  sim.run();
  EXPECT_EQ(got, 7);
  EXPECT_EQ(when, 3.0);
}

TEST(Channel, BufferedItemsPopInOrder) {
  Simulator sim;
  Channel<std::string> ch(sim);
  ch.push("a");
  ch.push("b");
  std::vector<std::string> got;
  sim.spawn([](Channel<std::string>& c,
               std::vector<std::string>& g) -> Task<> {
    g.push_back(co_await c.pop());
    g.push_back(co_await c.pop());
  }(ch, got));
  sim.run();
  EXPECT_EQ(got, (std::vector<std::string>{"a", "b"}));
}

TEST(WhenAll, WaitsForSlowest) {
  Simulator sim;
  auto sleeper = [](Simulator& s, double d) -> Task<> { co_await s.delay(d); };
  SimTime done_at = 0;
  sim.spawn([](Simulator& s, SimTime& t, Task<> a, Task<> b,
               Task<> c) -> Task<> {
    std::vector<Task<>> v;
    v.push_back(std::move(a));
    v.push_back(std::move(b));
    v.push_back(std::move(c));
    co_await when_all(s, std::move(v));
    t = s.now();
  }(sim, done_at, sleeper(sim, 1.0), sleeper(sim, 5.0), sleeper(sim, 2.0)));
  sim.run();
  EXPECT_EQ(done_at, 5.0);
}

TEST(WhenAll, EmptyCompletesImmediately) {
  Simulator sim;
  bool done = false;
  sim.spawn([](Simulator& s, bool& d) -> Task<> {
    co_await when_all(s, {});
    d = true;
  }(sim, done));
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), 0.0);
}

}  // namespace
}  // namespace memfss::sim
