// Tests for the network chaos layer (DESIGN.md §15): the in-process
// netio::ChaosProxy in front of a live rt::TcpServer, and the
// netio::ResilientClient that is supposed to survive what it injects.
//
//   - NetClient hygiene: move-assignment releases the held fd, and a
//     bounded recv() honors its whole-call deadline through EINTR storms
//     instead of returning early or resetting the clock;
//   - proxy transparency: with faults disabled the proxy is an exact
//     byte pipe (same answers as a direct connection);
//   - torn frames: with every chunk torn into staggered pieces, the
//     decoder reassembles every frame byte-exactly;
//   - resilience: calls succeed across kill_connections(), the breaker
//     opens against a dead port and closes again via half-open once the
//     server appears, and a corrupted response frame is retried --
//     surfacing the *correct* bytes, never the corrupted ones.
#include <gtest/gtest.h>

#include <dirent.h>
#include <netinet/in.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "netio/chaos.hpp"
#include "netio/client.hpp"
#include "netio/frame.hpp"
#include "netio/resilient_client.hpp"
#include "rt/sharded_store.hpp"
#include "rt/server.hpp"
#include "rt/tcp_server.hpp"

namespace memfss::netio {
namespace {

struct Stack {
  rt::ShardedStore store;
  rt::RuntimeServer server;
  rt::TcpServer tcp;

  explicit Stack(rt::TcpServer::Options topt = {})
      : store({4, 64u << 20, "rt"}),
        server(store, {2, 256, std::chrono::microseconds(0)}),
        tcp(server, topt) {}
};

Frame expect_recv(NetClient& c) {
  auto r = c.recv();
  EXPECT_TRUE(r.ok()) << "recv failed";
  return r.ok() ? r.value() : Frame{};
}

void auth_ok(NetClient& c, std::uint64_t id = 1) {
  ASSERT_TRUE(c.send(NetClient::make_auth(id, "rt")).ok());
  const Frame f = expect_recv(c);
  ASSERT_EQ(f.request_id, id);
  ASSERT_EQ(f.status, static_cast<std::uint8_t>(Errc::ok));
}

std::size_t open_fd_count() {
  std::size_t n = 0;
  DIR* d = opendir("/proc/self/fd");
  if (!d) return 0;
  while (readdir(d) != nullptr) ++n;
  closedir(d);
  return n;
}

double mono_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Reserve a loopback port nothing is listening on: bind, read the
/// assigned port, close. Racy in principle, good enough over loopback.
std::uint16_t idle_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

TEST(NetioChaos, MoveAssignmentReleasesTheHeldConnection) {
  Stack fx;
  NetClient a, b;
  ASSERT_TRUE(a.connect(fx.tcp.port()).ok());
  ASSERT_TRUE(b.connect(fx.tcp.port()).ok());
  ASSERT_TRUE(b.set_recv_timeout(10.0).ok());
  auth_ok(b, 7);

  // The server side accepts and closes asynchronously in this process;
  // wait for the fd table to go quiet before measuring, then assert a
  // strict decrease (our fd closes synchronously in the move; the
  // server's half may or may not have been reaped yet).
  std::size_t before = open_fd_count();
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const std::size_t now = open_fd_count();
    if (now == before) break;
    before = now;
  }
  a = std::move(b);  // must close a's old fd, not leak it
  EXPECT_LT(open_fd_count(), before);
  EXPECT_FALSE(b.connected());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(a.connected());

  // The adopted connection keeps its AUTH binding and its timeout.
  ASSERT_TRUE(a.send(NetClient::make_put(8, 0, "k", {1, 2, 3})).ok());
  EXPECT_EQ(expect_recv(a).status, static_cast<std::uint8_t>(Errc::ok));

  // Self-move must not close the fd.
  NetClient& alias = a;
  a = std::move(alias);
  EXPECT_TRUE(a.connected());
  ASSERT_TRUE(a.send(NetClient::make_get(9, 0, "k")).ok());
  EXPECT_EQ(expect_recv(a).status, static_cast<std::uint8_t>(Errc::ok));
}

void sigusr1_noop(int) {}

TEST(NetioChaos, RecvTimeoutSurvivesSignalStorm) {
  Stack fx;
  NetClient c;
  ASSERT_TRUE(c.connect(fx.tcp.port()).ok());
  ASSERT_TRUE(c.set_recv_timeout(0.4).ok());

  // SA_RESTART deliberately off: every signal interrupts recvmsg with
  // EINTR, which naive SO_RCVTIMEO handling turns into either an early
  // Errc::timeout or an infinite restart of the full timeout.
  struct sigaction sa {};
  sa.sa_handler = sigusr1_noop;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  struct sigaction old {};
  ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

  std::atomic<bool> stop{false};
  const pthread_t victim = pthread_self();
  std::thread pepper([&] {
    while (!stop.load()) {
      pthread_kill(victim, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  const double t0 = mono_s();
  auto r = c.recv();  // nothing ever arrives
  const double elapsed = mono_s() - t0;
  stop.store(true);
  pepper.join();
  ASSERT_EQ(sigaction(SIGUSR1, &old, nullptr), 0);

  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::timeout);
  // Neither early (signals must not eat the budget) nor endlessly
  // re-armed (signals must not reset it).
  EXPECT_GE(elapsed, 0.35);
  EXPECT_LT(elapsed, 5.0);
}

TEST(NetioChaos, QuietProxyIsTransparent) {
  Stack fx;
  ChaosProxy proxy(fx.tcp.port(), ChaosPlan::faulty(1));
  ASSERT_TRUE(proxy.ok());
  proxy.set_faults_enabled(false);

  NetClient direct, proxied;
  ASSERT_TRUE(direct.connect(fx.tcp.port()).ok());
  ASSERT_TRUE(proxied.connect(proxy.port()).ok());
  for (NetClient* c : {&direct, &proxied}) {
    ASSERT_TRUE(c->set_recv_timeout(10.0).ok());
    auth_ok(*c);
  }

  for (std::uint64_t i = 0; i < 32; ++i) {
    const std::string key = "t" + std::to_string(i % 5);
    std::vector<std::uint8_t> payload(1 + i * 7 % 200,
                                      static_cast<std::uint8_t>(i));
    Frame da, pr;
    ASSERT_TRUE(
        direct.send(NetClient::make_put(100 + i, 0, key, payload)).ok());
    da = expect_recv(direct);
    ASSERT_TRUE(
        proxied.send(NetClient::make_put(100 + i, 0, key, payload)).ok());
    pr = expect_recv(proxied);
    EXPECT_EQ(da.status, pr.status);
    ASSERT_TRUE(direct.send(NetClient::make_get(200 + i, 0, key)).ok());
    da = expect_recv(direct);
    ASSERT_TRUE(proxied.send(NetClient::make_get(200 + i, 0, key)).ok());
    pr = expect_recv(proxied);
    EXPECT_EQ(da.status, pr.status);
    EXPECT_EQ(da.checksum, pr.checksum);
    EXPECT_EQ(da.value, pr.value);
  }
  EXPECT_EQ(proxy.stats().resets_injected, 0u);
  EXPECT_EQ(proxy.stats().chunks_corrupted, 0u);
  EXPECT_GT(proxy.stats().bytes_forwarded, 0u);
}

TEST(NetioChaos, TornFramesReassembleByteExactly) {
  Stack fx;
  ChaosPlan plan;  // tear every chunk, nothing else
  plan.seed = 7;
  plan.accept_blackhole_p = 0;
  plan.reset_p = 0;
  plan.corrupt_p = 0;
  plan.tear_p = 1.0;
  plan.delay_max_us = 0;
  ChaosProxy proxy(fx.tcp.port(), plan);
  ASSERT_TRUE(proxy.ok());

  NetClient c;
  ASSERT_TRUE(c.connect(proxy.port()).ok());
  ASSERT_TRUE(c.set_recv_timeout(10.0).ok());
  auth_ok(c);
  for (std::uint64_t i = 0; i < 50; ++i) {
    std::vector<std::uint8_t> payload(40 + (i * 31) % 500,
                                      static_cast<std::uint8_t>(i + 1));
    ASSERT_TRUE(c.send(NetClient::make_put(10 + i, 0, "torn", payload)).ok());
    ASSERT_EQ(expect_recv(c).status, static_cast<std::uint8_t>(Errc::ok));
    ASSERT_TRUE(c.send(NetClient::make_get(500 + i, 0, "torn")).ok());
    const Frame got = expect_recv(c);
    ASSERT_EQ(got.status, static_cast<std::uint8_t>(Errc::ok));
    EXPECT_EQ(got.value, payload);
  }
  EXPECT_GT(proxy.stats().chunks_torn, 0u);
}

TEST(NetioChaos, ResilientClientRidesOverKilledConnections) {
  Stack fx;
  ChaosProxy proxy(fx.tcp.port(), ChaosPlan::faulty(3));
  ASSERT_TRUE(proxy.ok());
  proxy.set_faults_enabled(false);

  ResilientOptions opt;
  opt.port = proxy.port();
  opt.auth_token = "rt";
  opt.attempt_recv_timeout_s = 0.2;
  opt.default_deadline_s = 5.0;
  ResilientClient rc(opt);

  auto put = rc.call(NetClient::make_put(1, 0, "k", {9, 9, 9}), true);
  ASSERT_TRUE(put.answered);
  EXPECT_EQ(put.code, Errc::ok);

  for (int round = 0; round < 3; ++round) {
    proxy.kill_connections();
    auto get = rc.call(NetClient::make_get(2 + round, 0, "k"), true);
    ASSERT_TRUE(get.answered) << "round " << round;
    EXPECT_EQ(get.code, Errc::ok);
    EXPECT_EQ(get.response.value, (std::vector<std::uint8_t>{9, 9, 9}));
  }
  EXPECT_GE(rc.stats().reconnects, 3u);
}

TEST(NetioChaos, BreakerOpensOnDeadPortAndRecoversHalfOpen) {
  const std::uint16_t port = idle_port();

  ResilientOptions opt;
  opt.port = port;
  opt.auth_token = "rt";
  opt.attempt_recv_timeout_s = 0.05;
  opt.default_deadline_s = 0.3;
  opt.backoff_base_s = 0.001;
  opt.backoff_max_s = 0.01;
  opt.breaker_threshold = 3;
  opt.breaker_cooldown_s = 0.15;
  ResilientClient rc(opt);

  // Nothing listens: calls fail, faults accumulate, the breaker opens
  // and starts rejecting locally.
  for (int i = 0; i < 4; ++i) {
    auto out = rc.call(NetClient::make_get(1 + i, 0, "k"), true);
    EXPECT_FALSE(out.answered);
  }
  // The breaker may sit in open or half-open at the instant the last
  // deadline expires (the cooldown can elapse mid-call); the durable
  // evidence is that it opened and gated attempts locally.
  EXPECT_GE(rc.stats().breaker_opens, 1u);
  EXPECT_GT(rc.stats().breaker_rejections, 0u);

  // The server appears on that exact port; after the cooldown the
  // half-open trial succeeds and the breaker closes again.
  rt::ShardedStore store({4, 64u << 20, "rt"});
  rt::RuntimeServer server(store, {2, 256, std::chrono::microseconds(0)});
  rt::TcpServer::Options topt;
  topt.port = port;
  rt::TcpServer tcp(server, topt);

  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  auto out = rc.call(NetClient::make_put(100, 0, "k", {1}), true, 5.0);
  ASSERT_TRUE(out.answered);
  EXPECT_EQ(out.code, Errc::ok);
  EXPECT_FALSE(rc.breaker_open());
}

TEST(NetioChaos, CorruptedResponseIsRetriedNeverSurfaced) {
  Stack fx;
  ChaosProxy proxy(fx.tcp.port(), ChaosPlan::faulty(5));
  ASSERT_TRUE(proxy.ok());
  proxy.set_faults_enabled(false);

  ResilientOptions opt;
  opt.port = proxy.port();
  opt.auth_token = "rt";
  opt.attempt_recv_timeout_s = 0.3;
  opt.default_deadline_s = 10.0;
  ResilientClient rc(opt);

  std::vector<std::uint8_t> payload(128);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i * 13 + 1);
  auto put = rc.call(NetClient::make_put(1, 0, "gold", payload), true);
  ASSERT_TRUE(put.answered);
  ASSERT_EQ(put.code, Errc::ok);

  for (int round = 0; round < 8; ++round) {
    proxy.corrupt_next_from_upstream(1);
    auto get = rc.call(NetClient::make_get(10 + round, 0, "gold"), true);
    ASSERT_TRUE(get.answered) << "round " << round;
    ASSERT_EQ(get.code, Errc::ok);
    // The corrupted attempt died inside the decoder; what surfaced is
    // the retried, intact frame.
    EXPECT_EQ(get.response.value, payload);
  }
  EXPECT_GE(rc.stats().corrupt_frames, 1u);
  EXPECT_EQ(rc.stats().value_checksum_failures, 0u);
  EXPECT_GT(proxy.stats().chunks_corrupted, 0u);
}

}  // namespace
}  // namespace memfss::netio
