#include "sim/fluid.hpp"

#include <gtest/gtest.h>

namespace memfss::sim {
namespace {

TEST(Fluid, SingleJobUsesFullCapacity) {
  Simulator sim;
  FluidResource res(sim, 10.0);
  SimTime done = -1;
  sim.spawn([](Simulator& s, FluidResource& r, SimTime& d) -> Task<> {
    co_await r.consume(100.0);  // 100 units at 10/s
    d = s.now();
  }(sim, res, done));
  sim.run();
  EXPECT_NEAR(done, 10.0, 1e-9);
}

TEST(Fluid, PerJobCapBinds) {
  Simulator sim;
  FluidResource res(sim, 10.0);
  SimTime done = -1;
  sim.spawn([](Simulator& s, FluidResource& r, SimTime& d) -> Task<> {
    co_await r.consume(10.0, 2.0);  // capped at 2/s despite free capacity
    d = s.now();
  }(sim, res, done));
  sim.run();
  EXPECT_NEAR(done, 5.0, 1e-9);
}

TEST(Fluid, EqualSharing) {
  Simulator sim;
  FluidResource res(sim, 10.0);
  std::vector<SimTime> done(2, -1);
  auto job = [](Simulator& s, FluidResource& r, SimTime& d) -> Task<> {
    co_await r.consume(50.0);
    d = s.now();
  };
  sim.spawn(job(sim, res, done[0]));
  sim.spawn(job(sim, res, done[1]));
  sim.run();
  // Both share 5/s -> both finish at 10s.
  EXPECT_NEAR(done[0], 10.0, 1e-9);
  EXPECT_NEAR(done[1], 10.0, 1e-9);
}

TEST(Fluid, DepartureSpeedsUpSurvivor) {
  Simulator sim;
  FluidResource res(sim, 10.0);
  SimTime small_done = -1, big_done = -1;
  sim.spawn([](Simulator& s, FluidResource& r, SimTime& d) -> Task<> {
    co_await r.consume(10.0);  // shares 5/s -> done at 2s
    d = s.now();
  }(sim, res, small_done));
  sim.spawn([](Simulator& s, FluidResource& r, SimTime& d) -> Task<> {
    co_await r.consume(50.0);  // 10 units by t=2 (5/s), then 40 at 10/s
    d = s.now();
  }(sim, res, big_done));
  sim.run();
  EXPECT_NEAR(small_done, 2.0, 1e-9);
  EXPECT_NEAR(big_done, 6.0, 1e-9);
}

TEST(Fluid, CappedJobLeavesRestToOthers) {
  Simulator sim;
  FluidResource res(sim, 10.0);
  SimTime capped_done = -1, greedy_done = -1;
  sim.spawn([](Simulator& s, FluidResource& r, SimTime& d) -> Task<> {
    co_await r.consume(10.0, 2.0);  // 2/s cap -> 5s
    d = s.now();
  }(sim, res, capped_done));
  sim.spawn([](Simulator& s, FluidResource& r, SimTime& d) -> Task<> {
    co_await r.consume(50.0);  // gets 8/s while the capped job runs
    d = s.now();
  }(sim, res, greedy_done));
  sim.run();
  EXPECT_NEAR(capped_done, 5.0, 1e-9);
  // 40 units by t=5 (8/s), remaining 10 at 10/s -> 6s.
  EXPECT_NEAR(greedy_done, 6.0, 1e-9);
}

TEST(Fluid, LateArrivalReshares) {
  Simulator sim;
  FluidResource res(sim, 10.0);
  SimTime first_done = -1;
  sim.spawn([](Simulator& s, FluidResource& r, SimTime& d) -> Task<> {
    co_await r.consume(100.0);
    d = s.now();
  }(sim, res, first_done));
  sim.spawn([](Simulator& s, FluidResource& r) -> Task<> {
    co_await s.delay(5.0);
    co_await r.consume(25.0);  // arrives at t=5, shares 5/s -> done t=10
  }(sim, res));
  sim.run();
  // First: 50 units by t=5, then 5/s until the newcomer leaves at t=10
  // (25 more), remaining 25 at 10/s -> t=12.5.
  EXPECT_NEAR(first_done, 12.5, 1e-9);
}

TEST(Fluid, ZeroWorkCompletesInstantly) {
  Simulator sim;
  FluidResource res(sim, 1.0);
  bool done = false;
  sim.spawn([](FluidResource& r, bool& d) -> Task<> {
    co_await r.consume(0.0);
    d = true;
  }(res, done));
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), 0.0);
}

TEST(Fluid, CapacityChangeTakesEffect) {
  Simulator sim;
  FluidResource res(sim, 10.0);
  SimTime done = -1;
  sim.spawn([](Simulator& s, FluidResource& r, SimTime& d) -> Task<> {
    co_await r.consume(100.0);
    d = s.now();
  }(sim, res, done));
  sim.schedule(5.0, [&] { res.set_capacity(5.0); });
  sim.run();
  // 50 units by t=5 at 10/s, remaining 50 at 5/s -> 15s.
  EXPECT_NEAR(done, 15.0, 1e-9);
}

TEST(Fluid, UtilizationAccounting) {
  Simulator sim;
  FluidResource res(sim, 10.0);
  sim.spawn([](FluidResource& r) -> Task<> {
    co_await r.consume(50.0, 5.0);  // 50% utilization for 10s
  }(res));
  sim.run();
  EXPECT_EQ(sim.now(), 10.0);
  EXPECT_NEAR(res.average_utilization(10.0), 0.5, 1e-9);
  EXPECT_NEAR(res.peak_utilization(), 0.5, 1e-9);
  EXPECT_EQ(res.active_jobs(), 0u);
  EXPECT_EQ(res.allocated_rate(), 0.0);
}

TEST(Fluid, ManyJobsAllComplete) {
  Simulator sim;
  FluidResource res(sim, 7.0);
  int completed = 0;
  for (int i = 0; i < 100; ++i) {
    sim.spawn([](FluidResource& r, int& c, double w) -> Task<> {
      co_await r.consume(w);
      ++c;
    }(res, completed, 1.0 + i * 0.1));
  }
  sim.run();
  EXPECT_EQ(completed, 100);
}

}  // namespace
}  // namespace memfss::sim
