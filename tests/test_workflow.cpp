#include <gtest/gtest.h>

#include <set>

#include "co_test.hpp"
#include "common/rng.hpp"
#include "workflow/dag.hpp"
#include "workflow/engine.hpp"
#include "workflow/generators.hpp"

namespace memfss::workflow {
namespace {

// --- Dag ---------------------------------------------------------------------

TEST(Dag, BuildsEdgesFromFiles) {
  Workflow wf;
  wf.tasks.push_back({"a", "s", 1, 1, {}, {{"/x", 10}}, {}});
  wf.tasks.push_back({"b", "s", 1, 1, {"/x"}, {{"/y", 10}}, {}});
  wf.tasks.push_back({"c", "s", 1, 1, {"/x", "/y"}, {}, {}});
  auto dag = Dag::build(wf);
  ASSERT_TRUE(dag.ok());
  EXPECT_TRUE(dag.value().dependencies(0).empty());
  EXPECT_EQ(dag.value().dependencies(1),
            (std::vector<std::size_t>{0}));
  EXPECT_EQ(dag.value().dependencies(2).size(), 2u);
  EXPECT_EQ(dag.value().dependents(0).size(), 2u);
  EXPECT_EQ(dag.value().roots(), (std::vector<std::size_t>{0}));
}

TEST(Dag, ExternalInputsIgnored) {
  Workflow wf;
  wf.tasks.push_back({"a", "s", 1, 1, {"/external"}, {{"/x", 1}}, {}});
  auto dag = Dag::build(wf);
  ASSERT_TRUE(dag.ok());
  EXPECT_TRUE(dag.value().dependencies(0).empty());
}

TEST(Dag, RejectsDuplicateProducers) {
  Workflow wf;
  wf.tasks.push_back({"a", "s", 1, 1, {}, {{"/x", 1}}, {}});
  wf.tasks.push_back({"b", "s", 1, 1, {}, {{"/x", 1}}, {}});
  EXPECT_EQ(Dag::build(wf).code(), Errc::invalid_argument);
}

TEST(Dag, RejectsSelfDependency) {
  Workflow wf;
  wf.tasks.push_back({"a", "s", 1, 1, {"/x"}, {{"/x", 1}}, {}});
  EXPECT_EQ(Dag::build(wf).code(), Errc::invalid_argument);
}

TEST(Dag, TopoOrderRespectsDependencies) {
  Rng rng(3);
  auto wf = make_montage(MontageParams{.tiles = 16}, rng);
  auto dag = Dag::build(wf);
  ASSERT_TRUE(dag.ok());
  std::set<std::size_t> seen;
  for (std::size_t t : dag.value().topo_order()) {
    for (std::size_t d : dag.value().dependencies(t))
      EXPECT_TRUE(seen.count(d)) << "task " << t << " before dep " << d;
    seen.insert(t);
  }
  EXPECT_EQ(seen.size(), wf.tasks.size());
}

TEST(Dag, CriticalPathAndWidth) {
  Workflow wf = make_fork_join(10, 2.0, 100);
  auto dag = Dag::build(wf);
  ASSERT_TRUE(dag.ok());
  EXPECT_NEAR(dag.value().critical_path_seconds(wf), 6.0, 1e-9);
  EXPECT_EQ(dag.value().max_stage_width(wf), 10u);
}

// --- generators ----------------------------------------------------------------

TEST(Generators, DdBagShape) {
  auto wf = make_dd_bag(100, 8 * units::MiB);
  EXPECT_EQ(wf.tasks.size(), 100u);
  EXPECT_EQ(wf.total_output_bytes(), 800 * units::MiB);
  auto dag = Dag::build(wf);
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag.value().roots().size(), 100u);  // fully parallel
}

TEST(Generators, MontageShapeAndDeterminism) {
  MontageParams p;
  p.tiles = 64;
  Rng rng1(9), rng2(9);
  auto wf1 = make_montage(p, rng1);
  auto wf2 = make_montage(p, rng2);
  EXPECT_EQ(wf1.tasks.size(), wf2.tasks.size());
  EXPECT_EQ(wf1.total_output_bytes(), wf2.total_output_bytes());

  auto dag = Dag::build(wf1);
  ASSERT_TRUE(dag.ok()) << dag.error().to_string();
  // Wide stages exist...
  EXPECT_GE(dag.value().max_stage_width(wf1), 64u);
  // ...and the long sequential tail dominates the critical path.
  double serial = p.concat_cpu + p.bgmodel_cpu + p.imgtbl_cpu + p.madd_cpu +
                  p.shrink_cpu;
  EXPECT_GT(dag.value().critical_path_seconds(wf1), serial);
  // File sizes respect the configured band.
  for (const auto& t : wf1.tasks) {
    if (t.stage == "mProject") {
      ASSERT_EQ(t.outputs.size(), 1u);
      EXPECT_GE(t.outputs[0].bytes, p.proj_bytes_min);
      EXPECT_LE(t.outputs[0].bytes, p.proj_bytes_max);
    }
  }
}

TEST(Generators, BlastShape) {
  BlastParams p;
  p.queries = 16;
  Rng rng(11);
  auto wf = make_blast(p, rng);
  // split + 16 blastn + merge
  EXPECT_EQ(wf.tasks.size(), 18u);
  auto dag = Dag::build(wf);
  ASSERT_TRUE(dag.ok());
  // blastn tasks carry the chatty-I/O profile.
  int chatty = 0;
  for (const auto& t : wf.tasks)
    if (t.io.extra_requests_per_mib > 0) ++chatty;
  EXPECT_EQ(chatty, 16);
  // merge depends on all blastn tasks.
  EXPECT_EQ(dag.value().dependencies(17).size(), 16u);
}

// --- engine -----------------------------------------------------------------------

struct EngineRig {
  sim::Simulator sim;
  cluster::Cluster cl{sim, 8};
  fs::FileSystem fs;

  EngineRig() : fs(cl, make_cfg()) {}

  static fs::FileSystemConfig make_cfg() {
    fs::FileSystemConfig cfg;
    cfg.own_nodes = {0, 1, 2, 3};
    cfg.own_store_capacity = 8 * units::GiB;
    cfg.stripe_size = 1 * units::MiB;
    return cfg;
  }

  Report run_wf(Workflow wf, EngineConfig ecfg = {}) {
    Engine engine(cl, fs, {0, 1, 2, 3}, ecfg);
    Report out;
    sim.spawn([](Engine& e, Workflow w, Report& o) -> sim::Task<> {
      o = co_await e.run(std::move(w));
    }(engine, std::move(wf), out));
    sim.run();
    return out;
  }
};

TEST(Engine, RunsForkJoinToCompletion) {
  EngineRig rig;
  auto report = rig.run_wf(make_fork_join(32, 1.0, units::MiB));
  EXPECT_TRUE(report.status.ok());
  EXPECT_EQ(report.tasks_run, 34u);
  EXPECT_GT(report.makespan, 3.0);  // three serial levels of 1s compute
  EXPECT_EQ(report.bytes_written, 65 * units::MiB);
  EXPECT_EQ(report.bytes_read, 64 * units::MiB);  // source outputs + worker outputs read once
  EXPECT_EQ(rig.fs.meta().ns().file_count(), 65u);
}

TEST(Engine, SlotsLimitParallelism) {
  // 8 independent 1s tasks on 1 node with 2 slots -> makespan ~ 4s.
  EngineRig rig;
  Engine engine(rig.cl, rig.fs, {0}, EngineConfig{2.0});
  Workflow wf;
  for (int i = 0; i < 8; ++i) {
    TaskSpec t;
    t.name = "t" + std::to_string(i);
    t.stage = "w";
    t.cpu_seconds = 1.0;
    wf.tasks.push_back(std::move(t));
  }
  Report out;
  rig.sim.spawn([](Engine& e, Workflow w, Report& o) -> sim::Task<> {
    o = co_await e.run(std::move(w));
  }(engine, std::move(wf), out));
  rig.sim.run();
  EXPECT_TRUE(out.status.ok());
  EXPECT_NEAR(out.makespan, 4.0, 0.1);
}

TEST(Engine, StageDurationsRecorded) {
  EngineRig rig;
  auto report = rig.run_wf(make_fork_join(8, 0.5, units::KiB));
  EXPECT_EQ(report.stage_durations.count("worker"), 1u);
  EXPECT_EQ(report.stage_durations.at("worker").count(), 8u);
  EXPECT_GT(report.stage_durations.at("worker").mean(), 0.4);
}

TEST(Engine, CyclicWorkflowReportsError) {
  EngineRig rig;
  Workflow wf;
  wf.tasks.push_back({"a", "s", 1, 1, {"/b"}, {{"/a", 1}}, {}});
  wf.tasks.push_back({"b", "s", 1, 1, {"/a"}, {{"/b", 1}}, {}});
  auto report = rig.run_wf(std::move(wf));
  EXPECT_EQ(report.status.code(), Errc::invalid_argument);
  EXPECT_EQ(report.tasks_run, 0u);
}

TEST(Engine, MontageSmallEndToEnd) {
  EngineRig rig;
  MontageParams p;
  p.tiles = 24;
  p.concat_cpu = 5;
  p.bgmodel_cpu = 8;
  p.imgtbl_cpu = 2;
  p.madd_cpu = 10;
  p.shrink_cpu = 1;
  Rng rng(21);
  auto report = rig.run_wf(make_montage(p, rng));
  EXPECT_TRUE(report.status.ok());
  // Serial tail is a hard lower bound on the makespan.
  EXPECT_GT(report.makespan, 26.0);
  EXPECT_GT(report.bytes_read, report.bytes_written / 2);
}

TEST(Engine, NodeHoursMath) {
  Report r;
  r.makespan = 7200.0;
  EXPECT_NEAR(r.node_hours(4), 8.0, 1e-12);
}

}  // namespace
}  // namespace memfss::workflow
