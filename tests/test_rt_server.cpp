#include "rt/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "rt/thread_pool.hpp"

namespace memfss::rt {
namespace {

kvstore::Blob bytes_blob(std::string_view s) {
  return kvstore::Blob::materialized(
      std::vector<std::uint8_t>(s.begin(), s.end()));
}

// --- ThreadPool -----------------------------------------------------------

TEST(ThreadPool, RunsJobsOnEveryWorker) {
  ThreadPool pool({4, 64});
  std::atomic<int> ran{0};
  for (std::size_t w = 0; w < pool.size(); ++w)
    for (int i = 0; i < 10; ++i)
      ASSERT_TRUE(pool.try_post(w, [&] { ran.fetch_add(1); }));
  pool.stop();  // drains before joining
  EXPECT_EQ(ran.load(), 40);
}

TEST(ThreadPool, TryPostFailsWhenQueueFull) {
  ThreadPool pool({1, 2});
  std::atomic<bool> release{false};
  // Block the single worker so posts pile up in the queue.
  ASSERT_TRUE(pool.try_post(0, [&] {
    while (!release.load()) std::this_thread::yield();
  }));
  // Give the worker a moment to dequeue the blocker; then exactly
  // `queue_capacity` more jobs fit.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (pool.queue_depth(0) > 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::yield();
  ASSERT_TRUE(pool.try_post(0, [] {}));
  ASSERT_TRUE(pool.try_post(0, [] {}));
  EXPECT_FALSE(pool.try_post(0, [] {}));
  release.store(true);
  pool.stop();
}

TEST(ThreadPool, StopDrainsQueuedJobs) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool({2, 128});
    for (int i = 0; i < 100; ++i)
      ASSERT_TRUE(pool.try_post(i, [&] { ran.fetch_add(1); }));
  }  // destructor stops and drains
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, RejectsAfterStop) {
  ThreadPool pool({1, 8});
  pool.stop();
  EXPECT_FALSE(pool.try_post(0, [] {}));
}

// --- RuntimeServer --------------------------------------------------------

TEST(RuntimeServer, PutGetDelEndToEnd) {
  ShardedStore store({8, 1 << 20, "tok"});
  RuntimeServer server(store, {2, 64, {}});

  auto put = server.submit("tok", {Op::Type::put, "k", bytes_blob("v")}).get();
  EXPECT_EQ(put.code, Errc::ok);
  ASSERT_TRUE(put.seq.has_value());
  EXPECT_GT(*put.seq, 0u);

  auto got = server.submit("tok", {Op::Type::get, "k", {}}).get();
  ASSERT_EQ(got.code, Errc::ok);
  EXPECT_EQ(got.value, bytes_blob("v"));
  EXPECT_GE(got.latency_s, 0.0);

  auto ex = server.submit("tok", {Op::Type::exists, "k", {}}).get();
  EXPECT_EQ(ex.code, Errc::ok);
  EXPECT_TRUE(ex.found);

  auto del = server.submit("tok", {Op::Type::del, "k", {}}).get();
  EXPECT_EQ(del.code, Errc::ok);
  EXPECT_EQ(server.submit("tok", {Op::Type::get, "k", {}}).get().code,
            Errc::not_found);
}

TEST(RuntimeServer, AuthVerbChecksToken) {
  ShardedStore store({4, 1 << 20, "tok"});
  RuntimeServer server(store, {2, 64, {}});
  EXPECT_EQ(server.submit("tok", {Op::Type::auth, "", {}}).get().code,
            Errc::ok);
  EXPECT_EQ(server.submit("oops", {Op::Type::auth, "", {}}).get().code,
            Errc::permission);
  EXPECT_EQ(server.submit("oops", {Op::Type::put, "k", bytes_blob("v")})
                .get().code,
            Errc::permission);
}

TEST(RuntimeServer, BatchPreservesInputOrder) {
  ShardedStore store({8, 1 << 20, ""});
  RuntimeServer server(store, {4, 256, {}});
  std::vector<Op> ops;
  for (int i = 0; i < 32; ++i)
    ops.push_back({Op::Type::put, "k" + std::to_string(i),
                   bytes_blob(std::to_string(i))});
  for (int i = 0; i < 32; ++i)
    ops.push_back({Op::Type::get, "k" + std::to_string(i), {}});
  auto results = server.run_batch("", std::move(ops));
  ASSERT_EQ(results.size(), 64u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(results[i].code, Errc::ok) << i;
    ASSERT_EQ(results[32 + i].code, Errc::ok) << i;
    EXPECT_EQ(results[32 + i].value, bytes_blob(std::to_string(i))) << i;
  }
}

TEST(RuntimeServer, BackpressureRejectsWhenQueueFull) {
  ShardedStore store({1, 1 << 20, ""});  // one shard => one worker queue
  RuntimeServer server(store, {1, 4, std::chrono::microseconds(2000)});
  std::vector<std::future<OpResult>> futs;
  for (int i = 0; i < 64; ++i)
    futs.push_back(server.submit("", {Op::Type::put, "k" + std::to_string(i),
                                      bytes_blob("v")}));
  std::size_t rejected = 0, ok = 0;
  for (auto& f : futs) {
    const auto r = f.get();
    if (r.code == Errc::rejected) {
      ++rejected;
      EXPECT_FALSE(r.seq.has_value());  // never reached a shard
    } else if (r.code == Errc::ok) {
      ++ok;
    }
  }
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(ok, 0u);
  EXPECT_EQ(server.metrics().counter_value("rt.ops.rejected"), rejected);
}

TEST(RuntimeServer, MetricsFeedTheSink) {
  ShardedStore store({4, 1 << 20, ""});
  RuntimeServer server(store, {2, 64, {}});
  std::vector<Op> ops;
  for (int i = 0; i < 16; ++i)
    ops.push_back({Op::Type::put, "k" + std::to_string(i), bytes_blob("v")});
  for (int i = 0; i < 16; ++i)
    ops.push_back({Op::Type::get, "k" + std::to_string(i), {}});
  (void)server.run_batch("", std::move(ops));
  EXPECT_EQ(server.metrics().counter_value("rt.ops.put"), 16u);
  EXPECT_EQ(server.metrics().counter_value("rt.ops.get"), 16u);
  const auto lat = server.metrics().histogram_summary("rt.op.latency_s");
  EXPECT_EQ(lat.count, 32u);
  EXPECT_GT(lat.max, 0.0);
  // Snapshot carries the queue-depth gauge too.
  const auto snap = server.metrics().snapshot();
  EXPECT_NE(snap.find("rt.queue.depth"), nullptr);
}

TEST(RuntimeServer, ServiceTimeIsApplied) {
  ShardedStore store({1, 1 << 20, ""});
  RuntimeServer server(store, {1, 64, std::chrono::microseconds(5000)});
  const auto t0 = std::chrono::steady_clock::now();
  (void)server.submit("", {Op::Type::put, "k", bytes_blob("v")}).get();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(elapsed, 0.004);
}

}  // namespace
}  // namespace memfss::rt
