// End-to-end filesystem tests: striping, weighted placement, epochs,
// replication, erasure coding, lazy relocation, evacuation, and the
// scavenging security model -- the paper's core mechanisms, exercised
// through the public Client API on a small simulated cluster.
#include <gtest/gtest.h>

#include "cluster/fault.hpp"
#include "co_test.hpp"
#include "common/rng.hpp"
#include "common/str.hpp"
#include "fs/client.hpp"
#include "fs/filesystem.hpp"

namespace memfss::fs {
namespace {

std::vector<cluster::ScavengeOffer> make_offers(std::vector<NodeId> nodes,
                                                Bytes cap = units::GiB) {
  std::vector<cluster::ScavengeOffer> out;
  for (NodeId n : nodes) out.push_back({n, cap, 500e6, "tenant"});
  return out;
}

struct Rig {
  sim::Simulator sim;
  cluster::Cluster cl;
  FileSystem fs;

  explicit Rig(FileSystemConfig cfg = base_config(), std::size_t nodes = 12)
      : cl(sim, nodes), fs(cl, std::move(cfg)) {}

  static FileSystemConfig base_config() {
    FileSystemConfig cfg;
    cfg.own_nodes = {0, 1, 2, 3};
    cfg.own_store_capacity = 4 * units::GiB;
    cfg.stripe_size = 1 * units::MiB;
    return cfg;
  }

  void add_victims(double alpha, Bytes cap = units::GiB) {
    auto st = fs.add_victim_class(1, make_offers({4, 5, 6, 7, 8, 9, 10, 11},
                                                 cap),
                                  alpha);
    ASSERT_TRUE(st.ok()) << st.error().to_string();
  }

  /// Run a coroutine to completion on the rig's simulator.
  template <typename F>
  void run(F&& body) {
    bool finished = false;
    sim.spawn([](Rig& r, F body_fn, bool& done) -> sim::Task<> {
      co_await body_fn(r);
      done = true;
    }(*this, std::forward<F>(body), finished));
    sim.run();
    ASSERT_TRUE(finished) << "test coroutine did not finish";
  }
};

TEST(FsClient, GhostWriteReadRoundtrip) {
  Rig rig;
  rig.add_victims(0.25);
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    CO_ASSERT_TRUE((co_await c.mkdirs("/data")).ok());
    CO_ASSERT_TRUE((co_await c.write_file("/data/f", 32 * units::MiB)).ok());
    auto st = co_await c.stat("/data/f");
    CO_ASSERT_TRUE(st.ok());
    EXPECT_EQ(st.value().attr.size, 32 * units::MiB);
    EXPECT_EQ(st.value().stripe_count, 32u);
    auto bytes = co_await c.read_file("/data/f");
    CO_ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(bytes.value(), 32 * units::MiB);
  });
  EXPECT_EQ(rig.fs.counters().stripes_written, 32u);
  EXPECT_EQ(rig.fs.counters().stripes_read, 32u);
}

TEST(FsClient, AlphaControlsDistribution) {
  for (double alpha : {0.25, 0.75}) {
    Rig rig;
    rig.add_victims(alpha);
    rig.run([](Rig& r) -> sim::Task<> {
      Client c = r.fs.client(0);
      for (int i = 0; i < 16; ++i) {
        CO_ASSERT_TRUE(
            (co_await c.write_file(strformat("/f%d", i), 16 * units::MiB))
                .ok());
      }
    });
    Bytes own = 0, victim = 0;
    for (const auto& [node, bytes] : rig.fs.distribution()) {
      (node < 4 ? own : victim) += bytes;
    }
    const double total = double(own) + double(victim);
    EXPECT_NEAR(own / total, alpha, 0.12) << "alpha=" << alpha;
  }
}

TEST(FsClient, MaterializedRoundtripPreservesBytes) {
  Rig rig;
  rig.add_victims(0.5);
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(1);
    Rng rng(77);
    std::vector<std::uint8_t> payload(3 * units::MiB + 12345);
    for (auto& b : payload) b = std::uint8_t(rng.next_u64());
    CO_ASSERT_TRUE((co_await c.write_file_bytes("/blob", payload)).ok());
    auto back = co_await c.read_file_bytes("/blob");
    CO_ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), payload);
  });
}

TEST(FsClient, ReadMissingFileFails) {
  Rig rig;
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    auto res = co_await c.read_file("/nope");
    EXPECT_EQ(res.code(), Errc::not_found);
  });
}

TEST(FsClient, ReadFileBytesOnGhostFails) {
  Rig rig;
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    CO_ASSERT_TRUE((co_await c.write_file("/g", units::MiB)).ok());
    auto res = co_await c.read_file_bytes("/g");
    EXPECT_EQ(res.code(), Errc::invalid_argument);
  });
}

TEST(FsClient, UnlinkRemovesAllStripes) {
  Rig rig;
  rig.add_victims(0.25);
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    CO_ASSERT_TRUE((co_await c.write_file("/f", 24 * units::MiB)).ok());
    EXPECT_GT(r.fs.total_bytes(), 24 * units::MiB);  // + key overhead
    CO_ASSERT_TRUE((co_await c.unlink("/f")).ok());
    EXPECT_EQ(r.fs.total_bytes(), 0u);
    auto st = co_await c.stat("/f");
    EXPECT_EQ(st.code(), Errc::not_found);
  });
}

TEST(FsClient, EpochRecordedAtCreationKeepsOldFilesResolvable) {
  Rig rig;
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    // Written before any victim class exists: all stripes on own nodes.
    CO_ASSERT_TRUE((co_await c.write_file("/old", 16 * units::MiB)).ok());
    co_return;
  });
  Bytes victim_before = 0;
  for (NodeId v = 4; v < 12; ++v) victim_before += rig.fs.bytes_on(v);
  EXPECT_EQ(victim_before, 0u);

  rig.add_victims(0.25);
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    // Old file still fully readable (epoch 0 routes to own nodes).
    auto bytes = co_await c.read_file("/old");
    CO_ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(bytes.value(), 16 * units::MiB);
    EXPECT_EQ(r.fs.counters().read_retries, 0u);
    // New file spreads onto victims (epoch 1).
    CO_ASSERT_TRUE((co_await c.write_file("/new", 64 * units::MiB)).ok());
  });
  Bytes victim_after = 0;
  for (NodeId v = 4; v < 12; ++v) victim_after += rig.fs.bytes_on(v);
  EXPECT_GT(victim_after, 0u);
}

TEST(FsClient, ReplicationSurvivesPrimaryLoss) {
  auto cfg = Rig::base_config();
  cfg.redundancy = RedundancyMode::replicated;
  cfg.copies = 2;
  Rig rig(std::move(cfg));
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    CO_ASSERT_TRUE((co_await c.write_file("/r", 8 * units::MiB)).ok());
    // Simulate a crash of one own node's store: wipe it silently.
    r.fs.server(2).wipe();
    auto bytes = co_await c.read_file("/r");
    CO_ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(bytes.value(), 8 * units::MiB);
  });
}

TEST(FsClient, ReplicationStoresCopiesOnDistinctNodes) {
  auto cfg = Rig::base_config();
  cfg.redundancy = RedundancyMode::replicated;
  cfg.copies = 3;
  Rig rig(std::move(cfg));
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    CO_ASSERT_TRUE((co_await c.write_file("/r3", 4 * units::MiB)).ok());
    co_return;
  });
  // 4 MiB x 3 copies stored (plus per-key overhead).
  EXPECT_GE(rig.fs.total_bytes(), 12 * units::MiB);
}

TEST(FsClient, ErasureMaterializedRoundtrip) {
  auto cfg = Rig::base_config();
  cfg.redundancy = RedundancyMode::erasure;
  cfg.ec_k = 4;
  cfg.ec_m = 2;
  Rig rig(std::move(cfg));
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    Rng rng(5);
    std::vector<std::uint8_t> payload(2 * units::MiB + 999);
    for (auto& b : payload) b = std::uint8_t(rng.next_u64());
    CO_ASSERT_TRUE((co_await c.write_file_bytes("/ec", payload)).ok());
    auto back = co_await c.read_file_bytes("/ec");
    CO_ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), payload);
  });
}

TEST(FsClient, ErasureReconstructsAfterNodeLoss) {
  auto cfg = Rig::base_config();
  cfg.redundancy = RedundancyMode::erasure;
  cfg.ec_k = 3;
  cfg.ec_m = 2;
  Rig rig(std::move(cfg));
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    Rng rng(6);
    std::vector<std::uint8_t> payload(1 * units::MiB);
    for (auto& b : payload) b = std::uint8_t(rng.next_u64());
    CO_ASSERT_TRUE((co_await c.write_file_bytes("/ec2", payload)).ok());
    r.fs.server(1).wipe();  // lose whatever shards node 1 held
    auto back = co_await c.read_file_bytes("/ec2");
    CO_ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), payload);
  });
  EXPECT_GT(rig.fs.counters().reconstructions, 0u);
}

TEST(FsClient, LazyRelocationAfterMembershipGrowth) {
  Rig rig;
  rig.fs.add_victim_class(1, make_offers({4, 5, 6, 7}), 0.25);
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    CO_ASSERT_TRUE((co_await c.write_file("/grow", 64 * units::MiB)).ok());
    // New victims join the class: some stripes' HRW primary moves.
    CO_ASSERT_TRUE(
        r.fs.add_victim_nodes(1, make_offers({8, 9, 10, 11})).ok());
    auto bytes = co_await c.read_file("/grow");
    CO_ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(bytes.value(), 64 * units::MiB);
    // Give the background migrations time to drain.
    co_await r.sim.delay(10.0);
    // Second read must hit the new primaries directly.
    const auto relocs = r.fs.counters().lazy_relocations;
    EXPECT_GT(relocs, 0u);
    auto again = co_await c.read_file("/grow");
    CO_ASSERT_TRUE(again.ok());
  });
}

TEST(FsClient, EvacuationMigratesAndPreservesData) {
  Rig rig;
  rig.add_victims(0.25);
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    CO_ASSERT_TRUE((co_await c.write_file("/evac", 64 * units::MiB)).ok());
    const Bytes before = r.fs.bytes_on(5);
    EXPECT_GT(before, 0u);
    auto st = co_await r.fs.evacuate_victim(5);
    CO_ASSERT_OK(st);
    EXPECT_EQ(r.fs.bytes_on(5), 0u);
    EXPECT_TRUE(r.fs.server(5).store().closed());
    EXPECT_FALSE(r.fs.is_draining(5));
    // All data still reachable, with no probing detours.
    auto bytes = co_await c.read_file("/evac");
    CO_ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(bytes.value(), 64 * units::MiB);
    EXPECT_EQ(r.fs.counters().read_retries, 0u);
    // New writes avoid the evacuated node.
    CO_ASSERT_TRUE((co_await c.write_file("/after", 32 * units::MiB)).ok());
    EXPECT_EQ(r.fs.bytes_on(5), 0u);
  });
}

TEST(FsClient, EvacuateOwnNodeRejected) {
  Rig rig;
  rig.run([](Rig& r) -> sim::Task<> {
    auto st = co_await r.fs.evacuate_victim(0);
    EXPECT_EQ(st.code(), Errc::invalid_argument);
    auto st2 = co_await r.fs.evacuate_victim(99);
    EXPECT_EQ(st2.code(), Errc::not_found);
  });
}

TEST(FsClient, MonitorTriggersAutomaticEvacuation) {
  Rig rig;
  rig.add_victims(0.0);  // everything lands on victims
  rig.fs.arm_victim_monitors(0.5);
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    CO_ASSERT_TRUE((co_await c.write_file("/data", 32 * units::MiB)).ok());
    // The tenant on node 4 suddenly needs memory.
    auto& mem = r.cl.node(4).memory();
    CO_ASSERT_TRUE(mem.try_alloc(Bytes(mem.capacity() * 0.6)));
    co_await r.sim.delay(30.0);  // let the evacuation run
    EXPECT_EQ(r.fs.bytes_on(4), 0u);
    auto bytes = co_await c.read_file("/data");
    CO_ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(bytes.value(), 32 * units::MiB);
  });
}

TEST(FsClient, StoreOverflowSurfacesAsError) {
  auto cfg = Rig::base_config();
  cfg.own_store_capacity = 2 * units::MiB;  // 4 nodes x 2 MiB total
  Rig rig(std::move(cfg));
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    auto st = co_await c.write_file("/too-big", 64 * units::MiB);
    EXPECT_EQ(st.code(), Errc::out_of_memory);
  });
}

TEST(FsClient, WipeDataResetsEverything) {
  Rig rig;
  rig.add_victims(0.5);
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    CO_ASSERT_TRUE((co_await c.write_file("/w", 16 * units::MiB)).ok());
    co_return;
  });
  EXPECT_GT(rig.fs.total_bytes(), 0u);
  rig.fs.wipe_data();
  EXPECT_EQ(rig.fs.total_bytes(), 0u);
  EXPECT_EQ(rig.fs.meta().ns().file_count(), 0u);
  for (NodeId n = 0; n < 12; ++n)
    EXPECT_EQ(rig.cl.node(n).memory().used(), 0u) << "node " << n;
}

TEST(FsClient, VictimClassValidation) {
  Rig rig;
  EXPECT_EQ(rig.fs.add_victim_class(0, make_offers({4}), 0.5).code(),
            Errc::invalid_argument);
  EXPECT_EQ(rig.fs.add_victim_class(1, {}, 0.5).code(),
            Errc::invalid_argument);
  EXPECT_EQ(rig.fs.add_victim_class(1, make_offers({4}), 1.5).code(),
            Errc::invalid_argument);
  ASSERT_TRUE(rig.fs.add_victim_class(1, make_offers({4, 5}), 0.5).ok());
  EXPECT_EQ(rig.fs.add_victim_class(1, make_offers({6}), 0.5).code(),
            Errc::already_exists);
  EXPECT_EQ(rig.fs.add_victim_class(2, make_offers({4}), 0.5).code(),
            Errc::already_exists);  // node 4 already participates
  EXPECT_EQ(rig.fs.add_victim_nodes(3, make_offers({6})).code(),
            Errc::not_found);
  ASSERT_TRUE(rig.fs.add_victim_nodes(1, make_offers({6})).ok());
}

TEST(FsClient, SecondVictimClassViaExplicitEpoch) {
  Rig rig;
  ASSERT_TRUE(rig.fs.add_victim_class(1, make_offers({4, 5, 6, 7}), 0.5).ok());
  ASSERT_TRUE(rig.fs.add_victim_nodes(1, {}).ok());
  // Add a second victim class and an epoch splitting 50/30/20.
  ASSERT_TRUE(
      rig.fs.add_victim_class(2, make_offers({8, 9, 10, 11}), 0.5).ok());
  // add_victim_class(2, ...) produced a two-class epoch {own, 2}; install
  // a three-class epoch explicitly.
  ASSERT_TRUE(rig.fs
                  .add_epoch({{kOwnClass, 0.0},
                              {1, 0.2},
                              {2, 0.4}})
                  .ok());
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    for (int i = 0; i < 12; ++i)
      CO_ASSERT_TRUE(
          (co_await c.write_file(strformat("/m%d", i), 8 * units::MiB)).ok());
    auto bytes = co_await c.read_file("/m3");
    CO_ASSERT_TRUE(bytes.ok());
  });
  // All three groups hold some data under the three-class epoch.
  Bytes own = 0, v1 = 0, v2 = 0;
  for (const auto& [node, bytes] : rig.fs.distribution()) {
    if (node < 4) own += bytes;
    else if (node < 8) v1 += bytes;
    else v2 += bytes;
  }
  EXPECT_GT(own, 0u);
  EXPECT_GT(v1, 0u);
  EXPECT_GT(v2, 0u);
}

TEST(FsClient, EpochValidation) {
  Rig rig;
  EXPECT_EQ(rig.fs.add_epoch({}).code(), Errc::invalid_argument);
  EXPECT_EQ(rig.fs.add_epoch({{7, 0.1}}).code(), Errc::invalid_argument);
}

// --- fault handling ----------------------------------------------------------

std::vector<std::uint8_t> make_payload(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out(size);
  for (auto& b : out) b = std::uint8_t(rng.next_u64());
  return out;
}

/// First victim node (id >= 4 in the Rig) currently holding data.
NodeId victim_with_data(FileSystem& fs) {
  for (const auto& [node, bytes] : fs.distribution())
    if (node >= 4 && bytes > 0) return node;
  return kInvalidNode;
}

/// Rank-0 (primary) node of some stripe of `path` that is a victim, so a
/// fault on it is guaranteed to sit in the read path.
sim::Task<NodeId> primary_victim_of(Rig& r, Client& c, std::string path) {
  auto st = co_await c.stat(std::move(path));
  if (!st.ok()) co_return kInvalidNode;
  const auto policy = r.fs.policy_for_epoch(st.value().attr.epoch);
  for (std::size_t i = 0; i < st.value().stripe_count; ++i) {
    const auto nodes =
        policy.place(Namespace::stripe_key(st.value().inode, i), 2);
    if (!nodes.empty() && nodes[0] >= 4) co_return nodes[0];
  }
  co_return kInvalidNode;
}

TEST(FsClient, CrashDuringWriteRetriesAndSucceeds) {
  auto cfg = Rig::base_config();
  cfg.redundancy = RedundancyMode::replicated;
  cfg.copies = 2;
  cfg.rpc_timeout = 0.25;
  Rig rig(std::move(cfg));
  rig.add_victims(0.25);
  cluster::FaultInjector inj(rig.sim, rig.cl);
  rig.fs.attach_fault_injector(inj);

  const auto payload = make_payload(48 * units::MiB, 11);
  // Two victims die while the write is in flight: stripes routed at them
  // fail (connection refused or mid-transfer), retry, and land on the
  // post-failure membership.
  rig.sim.schedule(0.003, [&] { inj.crash_now(5); });
  rig.sim.schedule(0.006, [&] { inj.crash_now(8); });
  rig.run([&](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    CO_ASSERT_TRUE((co_await c.write_file_bytes("/big", payload)).ok());
    auto back = co_await c.read_file_bytes("/big");
    CO_ASSERT_TRUE(back.ok());
    EXPECT_TRUE(back.value() == payload);
  });
  EXPECT_GT(rig.fs.counters().write_retries, 0u);
  EXPECT_EQ(rig.fs.recovery().failures_handled, 2u);
  EXPECT_EQ(inj.stats().crashes, 2u);
}

TEST(FsClient, DegradedReadAfterCrashThenTargetedRepair) {
  auto cfg = Rig::base_config();
  cfg.redundancy = RedundancyMode::replicated;
  cfg.copies = 2;
  cfg.rpc_timeout = 0.25;
  Rig rig(std::move(cfg));
  rig.add_victims(0.25);
  cluster::FaultInjector inj(rig.sim, rig.cl);
  rig.fs.attach_fault_injector(inj);

  const auto payload = make_payload(8 * units::MiB, 12);
  rig.run([&](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    CO_ASSERT_TRUE((co_await c.write_file_bytes("/f", payload)).ok());
    const NodeId victim = co_await primary_victim_of(r, c, "/f");
    CO_ASSERT_TRUE(victim != kInvalidNode);
    inj.crash_now(victim);
    // Read immediately: the down node makes some probes fail over to the
    // replica rank -- a degraded read, still byte-correct.
    auto back = co_await c.read_file_bytes("/f");
    CO_ASSERT_TRUE(back.ok());
    EXPECT_TRUE(back.value() == payload);
    // Let detection + targeted repair run, then redundancy is whole again.
    co_await r.sim.delay(2.0);
    auto again = co_await c.read_file_bytes("/f");
    CO_ASSERT_TRUE(again.ok());
    EXPECT_TRUE(again.value() == payload);
  });
  EXPECT_GT(rig.fs.counters().degraded_reads, 0u);
  EXPECT_EQ(rig.fs.recovery().failures_handled, 1u);
  EXPECT_GT(rig.fs.recovery().stripes_repaired, 0u);
  EXPECT_GT(rig.fs.recovery().bytes_re_replicated, 0u);
  EXPECT_GT(rig.fs.recovery().mean_time_to_repair(), 0.0);
}

TEST(FsClient, StalledNodeTimesOutButIsNotEvicted) {
  auto cfg = Rig::base_config();
  cfg.redundancy = RedundancyMode::replicated;
  cfg.copies = 2;
  cfg.rpc_timeout = 0.1;
  Rig rig(std::move(cfg));
  rig.add_victims(0.25);
  cluster::FaultInjector inj(rig.sim, rig.cl);
  rig.fs.attach_fault_injector(inj);

  const auto payload = make_payload(4 * units::MiB, 13);
  rig.run([&](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    CO_ASSERT_TRUE((co_await c.write_file_bytes("/s", payload)).ok());
    const NodeId victim = co_await primary_victim_of(r, c, "/s");
    CO_ASSERT_TRUE(victim != kInvalidNode);
    inj.stall_now(victim, 1.0);
    auto back = co_await c.read_file_bytes("/s");
    CO_ASSERT_TRUE(back.ok());
    EXPECT_TRUE(back.value() == payload);
    co_await r.sim.delay(2.0);
    // Slow-but-alive: report_suspect's ground-truth check must have kept
    // the node in the membership (no repair, no failure handled).
    EXPECT_TRUE(r.fs.has_server(victim));
    EXPECT_FALSE(r.fs.server(victim).store().closed());
  });
  EXPECT_GT(rig.fs.counters().rpc_timeouts, 0u);
  EXPECT_EQ(rig.fs.recovery().failures_handled, 0u);
}

TEST(FsClient, RevokedClassDrainsAndStaysReadable) {
  auto cfg = Rig::base_config();
  cfg.redundancy = RedundancyMode::replicated;
  cfg.copies = 2;
  cfg.rpc_timeout = 0.25;
  cfg.revocation_grace = 2.0;
  Rig rig(std::move(cfg));
  rig.add_victims(0.25);
  cluster::FaultInjector inj(rig.sim, rig.cl);
  rig.fs.attach_fault_injector(inj);

  const auto payload = make_payload(16 * units::MiB, 14);
  rig.run([&](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    CO_ASSERT_TRUE((co_await c.write_file_bytes("/rv", payload)).ok());
    inj.revoke_class_now(1);  // tenant takes all 8 victims back
    co_await r.sim.delay(5.0);
    // Every member is out of service: drained + closed, or killed at the
    // grace deadline. (Server objects stay in the map, like evacuation.)
    for (NodeId v = 4; v < 12; ++v) {
      EXPECT_TRUE(r.fs.server(v).store().closed() ||
                  !r.fs.server(v).is_up())
          << "victim " << v << " still serving";
    }
    auto back = co_await c.read_file_bytes("/rv");
    CO_ASSERT_TRUE(back.ok());
    EXPECT_TRUE(back.value() == payload);
  });
  EXPECT_EQ(inj.stats().revocations, 1u);
  EXPECT_GE(rig.fs.recovery().failures_handled, 1u);
  // Everything now lives on the 4 own nodes.
  for (const auto& [node, bytes] : rig.fs.distribution()) {
    if (node >= 4) EXPECT_EQ(bytes, 0u) << "node " << node;
  }
}

/// ISSUE acceptance: a run whose FaultPlan crashes a victim node AND
/// revokes the victim class mid-run completes with byte-identical data
/// and nonzero degraded-read / repair metrics.
void acceptance_run(FileSystemConfig cfg) {
  cfg.rpc_timeout = 0.25;
  cfg.revocation_grace = 2.0;
  Rig rig(std::move(cfg));
  rig.add_victims(0.25, 2 * units::GiB);
  cluster::FaultInjector inj(rig.sim, rig.cl);
  rig.fs.attach_fault_injector(inj);

  std::vector<std::vector<std::uint8_t>> payloads;
  for (std::uint64_t i = 0; i < 4; ++i)
    payloads.push_back(make_payload((4 + i) * units::MiB + 17 * i, 100 + i));

  rig.run([&](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      CO_ASSERT_TRUE(
          (co_await c.write_file_bytes(strformat("/a%zu", i), payloads[i]))
              .ok());
    }
    // Arm the mid-run plan *after* data exists: one victim crash, then
    // the whole class is revoked while reads are in flight.
    const NodeId victim = victim_with_data(r.fs);
    CO_ASSERT_TRUE(victim != kInvalidNode);
    cluster::FaultPlan plan;
    plan.crash(0.05, victim).revoke_class(0.6, 1);
    inj.arm(plan);
    // Read continuously through the fault window.
    for (int round = 0; round < 8; ++round) {
      for (std::size_t i = 0; i < payloads.size(); ++i) {
        auto back = co_await c.read_file_bytes(strformat("/a%zu", i));
        CO_ASSERT_TRUE(back.ok());
        EXPECT_TRUE(back.value() == payloads[i])
            << "file " << i << " round " << round;
      }
      co_await r.sim.delay(0.15);
    }
    co_await r.sim.delay(4.0);  // drain + targeted repair finish
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      auto back = co_await c.read_file_bytes(strformat("/a%zu", i));
      CO_ASSERT_TRUE(back.ok());
      EXPECT_TRUE(back.value() == payloads[i]) << "file " << i << " final";
    }
  });
  EXPECT_EQ(inj.stats().crashes, 1u);
  EXPECT_EQ(inj.stats().revocations, 1u);
  EXPECT_GT(rig.fs.counters().degraded_reads, 0u);
  EXPECT_GE(rig.fs.recovery().failures_handled, 2u);
  EXPECT_GT(rig.fs.recovery().stripes_repaired, 0u);
}

TEST(FsClient, FaultPlanAcceptanceReplicated) {
  auto cfg = Rig::base_config();
  cfg.redundancy = RedundancyMode::replicated;
  cfg.copies = 2;
  acceptance_run(std::move(cfg));
}

TEST(FsClient, FaultPlanAcceptanceErasure) {
  auto cfg = Rig::base_config();
  cfg.redundancy = RedundancyMode::erasure;
  cfg.ec_k = 4;
  cfg.ec_m = 2;
  acceptance_run(std::move(cfg));
}

}  // namespace
}  // namespace memfss::fs
