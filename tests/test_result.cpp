#include "common/result.hpp"

#include <gtest/gtest.h>

#include <string>

namespace memfss {
namespace {

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.code(), Errc::ok);
}

TEST(Result, HoldsError) {
  Result<int> r = Error{Errc::not_found, "missing"};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), Errc::not_found);
  EXPECT_EQ(r.error().message, "missing");
  EXPECT_EQ(r.error().to_string(), "not_found: missing");
}

TEST(Result, ErrcConstructor) {
  Result<std::string> r(Errc::permission, "denied");
  EXPECT_EQ(r.code(), Errc::permission);
}

TEST(Result, ValueOr) {
  Result<int> ok = 1;
  Result<int> bad = Error{Errc::io_error, ""};
  EXPECT_EQ(ok.value_or(9), 1);
  EXPECT_EQ(bad.value_or(9), 9);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(Status, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), Errc::ok);
}

TEST(Status, CarriesError) {
  Status st{Errc::out_of_memory, "cap"};
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Errc::out_of_memory);
  EXPECT_EQ(st.error().message, "cap");
}

TEST(ErrcName, AllNamed) {
  for (auto e : {Errc::ok, Errc::not_found, Errc::already_exists,
                 Errc::out_of_memory, Errc::permission,
                 Errc::invalid_argument, Errc::not_a_directory,
                 Errc::is_a_directory, Errc::not_empty, Errc::unavailable,
                 Errc::io_error, Errc::corruption, Errc::timeout,
                 Errc::unreachable, Errc::rejected, Errc::overloaded,
                 Errc::fatal}) {
    EXPECT_FALSE(errc_name(e).empty());
    EXPECT_NE(errc_name(e), "unknown");
  }
}

TEST(ErrcTaxonomy, ConnectivityVsRetryableVsHealthFault) {
  // Connectivity faults: the peer (or the path to it) is suspect.
  for (auto e : {Errc::timeout, Errc::unreachable, Errc::unavailable,
                 Errc::io_error, Errc::rejected, Errc::overloaded}) {
    EXPECT_TRUE(errc_connectivity(e)) << errc_name(e);
    EXPECT_TRUE(errc_retryable(e)) << errc_name(e);
  }
  // Retryable but not a connectivity problem: capacity may free up.
  EXPECT_TRUE(errc_retryable(Errc::out_of_memory));
  EXPECT_FALSE(errc_connectivity(Errc::out_of_memory));
  // Application-level answers prove the peer is alive: never retryable.
  for (auto e : {Errc::ok, Errc::not_found, Errc::already_exists,
                 Errc::permission, Errc::invalid_argument, Errc::corruption,
                 Errc::fatal}) {
    EXPECT_FALSE(errc_connectivity(e)) << errc_name(e);
    EXPECT_FALSE(errc_retryable(e)) << errc_name(e);
  }
  // Health faults feed the circuit breaker; locally synthesized
  // rejections must not (the breaker would feed itself).
  for (auto e : {Errc::timeout, Errc::unreachable, Errc::unavailable,
                 Errc::io_error}) {
    EXPECT_TRUE(errc_health_fault(e)) << errc_name(e);
  }
  EXPECT_FALSE(errc_health_fault(Errc::rejected));
  // A deliberate QoS shed is the peer *working as designed*, not sick:
  // retryable (honor the hint), but never breaker food.
  EXPECT_FALSE(errc_health_fault(Errc::overloaded));
  EXPECT_TRUE(errc_retryable(Errc::overloaded));
  EXPECT_FALSE(errc_health_fault(Errc::ok));
  EXPECT_FALSE(errc_health_fault(Errc::fatal));
}

}  // namespace
}  // namespace memfss
