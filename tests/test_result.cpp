#include "common/result.hpp"

#include <gtest/gtest.h>

#include <string>

namespace memfss {
namespace {

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.code(), Errc::ok);
}

TEST(Result, HoldsError) {
  Result<int> r = Error{Errc::not_found, "missing"};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), Errc::not_found);
  EXPECT_EQ(r.error().message, "missing");
  EXPECT_EQ(r.error().to_string(), "not_found: missing");
}

TEST(Result, ErrcConstructor) {
  Result<std::string> r(Errc::permission, "denied");
  EXPECT_EQ(r.code(), Errc::permission);
}

TEST(Result, ValueOr) {
  Result<int> ok = 1;
  Result<int> bad = Error{Errc::io_error, ""};
  EXPECT_EQ(ok.value_or(9), 1);
  EXPECT_EQ(bad.value_or(9), 9);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(Status, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), Errc::ok);
}

TEST(Status, CarriesError) {
  Status st{Errc::out_of_memory, "cap"};
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Errc::out_of_memory);
  EXPECT_EQ(st.error().message, "cap");
}

TEST(ErrcName, AllNamed) {
  for (auto e : {Errc::ok, Errc::not_found, Errc::already_exists,
                 Errc::out_of_memory, Errc::permission,
                 Errc::invalid_argument, Errc::not_a_directory,
                 Errc::is_a_directory, Errc::not_empty, Errc::unavailable,
                 Errc::io_error, Errc::corruption}) {
    EXPECT_FALSE(errc_name(e).empty());
    EXPECT_NE(errc_name(e), "unknown");
  }
}

}  // namespace
}  // namespace memfss
