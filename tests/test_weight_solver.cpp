#include "hash/weight_solver.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace memfss::hash {
namespace {

class TwoClassRoundtrip : public ::testing::TestWithParam<double> {};

TEST_P(TwoClassRoundtrip, ClosedFormInvertsItself) {
  const double alpha = GetParam();
  const auto w = two_class_weights(alpha);
  EXPECT_NEAR(two_class_fraction(w), alpha, 1e-12);
  // At least one weight is normalized to zero.
  EXPECT_EQ(std::min(w.own, w.victim), 0.0);
  EXPECT_GE(w.own, 0.0);
  EXPECT_GE(w.victim, 0.0);
  EXPECT_LE(std::max(w.own, w.victim), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Alphas, TwoClassRoundtrip,
                         ::testing::Values(0.0, 0.05, 0.25, 0.5, 0.75, 0.95,
                                           1.0));

TEST(TwoClassWeights, MonotoneInAlpha) {
  // Larger own share -> relatively smaller own weight (subtractive).
  double prev = two_class_weights(0.0).own - two_class_weights(0.0).victim;
  for (double a = 0.1; a <= 1.0; a += 0.1) {
    const auto w = two_class_weights(a);
    const double d = w.own - w.victim;
    EXPECT_LT(d, prev);
    prev = d;
  }
}

TEST(WinFractions, MatchesClosedFormForTwoClasses) {
  for (double alpha : {0.1, 0.3, 0.5, 0.8}) {
    const auto w = two_class_weights(alpha);
    const auto p = win_fractions({w.own, w.victim});
    ASSERT_EQ(p.size(), 2u);
    EXPECT_NEAR(p[0], alpha, 2e-3);
    EXPECT_NEAR(p[1], 1.0 - alpha, 2e-3);
  }
}

TEST(WinFractions, EqualWeightsAreUniform) {
  const auto p = win_fractions({0.2, 0.2, 0.2, 0.2});
  for (double x : p) EXPECT_NEAR(x, 0.25, 2e-3);
}

TEST(WinFractions, SingleClassWinsEverything) {
  const auto p = win_fractions({0.7});
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], 1.0);
}

TEST(WinFractions, SumsToOne) {
  const auto p = win_fractions({0.0, 0.17, 0.42, 0.05});
  double sum = 0.0;
  for (double x : p) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-3);
}

TEST(WinFractions, AgreesWithMonteCarlo) {
  const std::vector<double> weights{0.0, 0.15, 0.35};
  const auto analytic = win_fractions(weights);
  Rng rng(404);
  std::vector<int> wins(weights.size(), 0);
  const int trials = 200000;
  for (int t = 0; t < trials; ++t) {
    std::size_t best = 0;
    double best_score = -1e9;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      const double s = rng.next_double() - weights[i];
      if (s > best_score) {
        best_score = s;
        best = i;
      }
    }
    ++wins[best];
  }
  for (std::size_t i = 0; i < weights.size(); ++i)
    EXPECT_NEAR(wins[i] / double(trials), analytic[i], 5e-3) << "class " << i;
}

TEST(SolveClassWeights, TwoClassesUsesClosedForm) {
  const auto w = solve_class_weights({0.25, 0.75});
  const auto expect = two_class_weights(0.25);
  EXPECT_NEAR(w[0], expect.own, 1e-12);
  EXPECT_NEAR(w[1], expect.victim, 1e-12);
}

TEST(SolveClassWeights, ThreeClassTargetsConverge) {
  const std::vector<double> targets{0.5, 0.3, 0.2};
  const auto w = solve_class_weights(targets);
  const auto p = win_fractions(w);
  for (std::size_t i = 0; i < targets.size(); ++i)
    EXPECT_NEAR(p[i], targets[i], 0.01) << "class " << i;
}

TEST(SolveClassWeights, FourClassSkewedTargets) {
  const std::vector<double> targets{0.70, 0.15, 0.10, 0.05};
  const auto w = solve_class_weights(targets, 400);
  const auto p = win_fractions(w);
  for (std::size_t i = 0; i < targets.size(); ++i)
    EXPECT_NEAR(p[i], targets[i], 0.015) << "class " << i;
}

TEST(SolveClassWeights, ZeroTargetClassNeverWins) {
  const auto w = solve_class_weights({0.6, 0.4, 0.0});
  const auto p = win_fractions(w);
  EXPECT_NEAR(p[2], 0.0, 1e-6);
  EXPECT_NEAR(p[0], 0.6, 0.01);
}

TEST(SolveClassWeights, SingleClass) {
  const auto w = solve_class_weights({1.0});
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0], 0.0);
}

}  // namespace
}  // namespace memfss::hash
