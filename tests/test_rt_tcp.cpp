// End-to-end tests for the TCP serving path (DESIGN.md §13): a real
// rt::TcpServer on a loopback ephemeral port, exercised by blocking
// netio::NetClient connections.
//
//   - pipelined multithreaded clients with request-id accounting
//     (zero lost, zero duplicated responses);
//   - linearizability-lite replay: the 1-thread socket run of a
//     seed-deterministic stream produces the *identical* result digest
//     as the in-process run of the same stream;
//   - slow-client eviction: a client that pipelines requests but never
//     reads responses is disconnected once the server-side write
//     buffer passes its bound;
//   - graceful drain: shutdown() with frames in flight answers every
//     one of them before the connection closes;
//   - negative paths: malformed magic and oversized length prefixes
//     get one protocol-error frame then EOF; a client pushing
//     response-kind frames is treated the same; AUTH gates ops.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "netio/client.hpp"
#include "netio/frame.hpp"
#include "rt/net_loadgen.hpp"
#include "rt/sharded_store.hpp"
#include "rt/server.hpp"
#include "rt/tcp_server.hpp"
#include "rt/tenant_registry.hpp"

namespace memfss::rt {
namespace {

using netio::Frame;
using netio::NetClient;

struct Fixture {
  ShardedStore store;
  RuntimeServer server;
  TcpServer tcp;

  explicit Fixture(RuntimeServer::Options sopt = {},
                   TcpServer::Options topt = {},
                   ShardedStore::Options store_opt = {4, 64u << 20, "rt"})
      : store(store_opt), server(store, sopt), tcp(server, topt) {}
};

Frame expect_recv(NetClient& c) {
  auto r = c.recv();
  EXPECT_TRUE(r.ok()) << "recv failed";
  return r.ok() ? r.value() : Frame{};
}

void auth_ok(NetClient& c, std::uint64_t id = 1,
             const std::string& token = "rt") {
  ASSERT_TRUE(c.send(NetClient::make_auth(id, token)).ok());
  const Frame f = expect_recv(c);
  ASSERT_EQ(f.request_id, id);
  ASSERT_EQ(f.status, static_cast<std::uint8_t>(Errc::ok));
}

TEST(RtTcp, BasicPutGetDelExistsOverOneConnection) {
  Fixture fx;
  NetClient c;
  ASSERT_TRUE(c.connect(fx.tcp.port()).ok());
  ASSERT_TRUE(c.set_recv_timeout(10.0).ok());
  auth_ok(c);

  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  ASSERT_TRUE(c.send(NetClient::make_put(10, 0, "alpha", payload)).ok());
  Frame put = expect_recv(c);
  EXPECT_EQ(put.request_id, 10u);
  EXPECT_EQ(put.status, static_cast<std::uint8_t>(Errc::ok));
  EXPECT_TRUE(put.flags & netio::kFlagHasSeq);

  ASSERT_TRUE(c.send(NetClient::make_get(11, 0, "alpha")).ok());
  Frame get = expect_recv(c);
  EXPECT_EQ(get.request_id, 11u);
  EXPECT_EQ(get.status, static_cast<std::uint8_t>(Errc::ok));
  EXPECT_EQ(get.value, payload);
  EXPECT_EQ(get.value_size, payload.size());

  ASSERT_TRUE(c.send(NetClient::make_exists(12, 0, "alpha")).ok());
  Frame ex = expect_recv(c);
  EXPECT_TRUE(ex.flags & netio::kFlagFound);

  ASSERT_TRUE(c.send(NetClient::make_del(13, 0, "alpha")).ok());
  EXPECT_EQ(expect_recv(c).status, static_cast<std::uint8_t>(Errc::ok));

  ASSERT_TRUE(c.send(NetClient::make_get(14, 0, "alpha")).ok());
  EXPECT_EQ(expect_recv(c).status,
            static_cast<std::uint8_t>(Errc::not_found));
}

TEST(RtTcp, AuthGatesOpsAndTokenSticksToConnection) {
  Fixture fx;
  NetClient c;
  ASSERT_TRUE(c.connect(fx.tcp.port()).ok());
  ASSERT_TRUE(c.set_recv_timeout(10.0).ok());

  // No AUTH yet: the connection token is empty, the store wants "rt".
  ASSERT_TRUE(c.send(NetClient::make_put(1, 0, "k", {1})).ok());
  EXPECT_EQ(expect_recv(c).status,
            static_cast<std::uint8_t>(Errc::permission));

  // Wrong token fails and does not stick a working one.
  ASSERT_TRUE(c.send(NetClient::make_auth(2, "wrong")).ok());
  EXPECT_EQ(expect_recv(c).status,
            static_cast<std::uint8_t>(Errc::permission));
  ASSERT_TRUE(c.send(NetClient::make_put(3, 0, "k", {1})).ok());
  EXPECT_EQ(expect_recv(c).status,
            static_cast<std::uint8_t>(Errc::permission));

  // Right token: everything after it is authorized.
  auth_ok(c, 4);
  ASSERT_TRUE(c.send(NetClient::make_put(5, 0, "k", {1})).ok());
  EXPECT_EQ(expect_recv(c).status, static_cast<std::uint8_t>(Errc::ok));
}

// The tentpole accounting property, in-test: multithreaded pipelined
// clients over several reactors, every request answered exactly once.
TEST(RtTcp, PipelinedMultithreadedClientsLoseNothing) {
  NetLoadgenOptions opt;
  opt.base.client_threads = 4;
  opt.base.server_threads = 2;
  opt.base.ops_per_thread = 3000;
  opt.base.batch = 24;
  opt.base.value_size = 256;
  opt.base.del_fraction = 0.1;
  opt.base.key_space = 512;
  opt.base.seed = 42;
  opt.connections_per_thread = 3;
  opt.reactors = 2;
  const auto r = run_net_loadgen(opt);
  const std::uint64_t total = 4u * 3000u;
  EXPECT_EQ(r.responses, total);
  EXPECT_EQ(r.lost, 0u);
  EXPECT_EQ(r.duplicated, 0u);
  EXPECT_EQ(r.transport_errors, 0u);
  EXPECT_EQ(r.puts + r.gets + r.dels + r.not_found + r.rejected +
                r.overloaded + r.errors,
            total);
  EXPECT_GT(r.bytes_in, 0u);
  EXPECT_GT(r.bytes_out, 0u);
}

// Linearizability-lite replay: one client thread, one worker, one
// connection -- the socket path must produce bit-identical results to
// the in-process path for the same seed-deterministic stream.
TEST(RtTcp, SingleThreadSocketReplayMatchesInProcessDigest) {
  LoadgenOptions base;
  base.client_threads = 1;
  base.server_threads = 1;
  base.ops_per_thread = 4000;
  base.batch = 16;
  base.value_size = 128;
  base.del_fraction = 0.15;
  base.key_space = 1024;
  for (const std::uint64_t seed : {3u, 17u}) {
    base.seed = seed;
    const auto inproc = run_loadgen(base);
    NetLoadgenOptions nopt;
    nopt.base = base;
    nopt.connections_per_thread = 1;
    nopt.reactors = 1;
    const auto net = run_net_loadgen(nopt);
    EXPECT_EQ(net.lost, 0u) << "seed " << seed;
    EXPECT_EQ(net.duplicated, 0u) << "seed " << seed;
    EXPECT_EQ(net.result_digest, inproc.result_digest) << "seed " << seed;
    EXPECT_EQ(net.puts, inproc.puts) << "seed " << seed;
    EXPECT_EQ(net.gets, inproc.gets) << "seed " << seed;
    EXPECT_EQ(net.dels, inproc.dels) << "seed " << seed;
    EXPECT_EQ(net.not_found, inproc.not_found) << "seed " << seed;
  }
}

// A client that pipelines GETs of a large value and never reads its
// responses must be disconnected, not allowed to pin server memory.
TEST(RtTcp, SlowClientIsEvicted) {
  RuntimeServer::Options sopt;
  TcpServer::Options topt;
  topt.max_write_buffer = 64 * 1024;
  topt.so_sndbuf = 4 * 1024;  // tiny socket buffer: EAGAIN fast
  Fixture fx(sopt, topt);

  NetClient writer;
  ASSERT_TRUE(writer.connect(fx.tcp.port()).ok());
  ASSERT_TRUE(writer.set_recv_timeout(10.0).ok());
  auth_ok(writer);
  const std::vector<std::uint8_t> big(64 * 1024, 0x5a);
  ASSERT_TRUE(writer.send(NetClient::make_put(2, 0, "big", big)).ok());
  ASSERT_EQ(expect_recv(writer).status, static_cast<std::uint8_t>(Errc::ok));

  NetClient slow;
  ASSERT_TRUE(slow.connect(fx.tcp.port()).ok());
  ASSERT_TRUE(slow.set_recv_timeout(30.0).ok());
  auth_ok(slow);
  // Pipeline far more response bytes than max_write_buffer without
  // reading any of them.
  std::vector<std::uint8_t> wire;
  for (std::uint64_t i = 0; i < 64; ++i)
    netio::encode_frame(NetClient::make_get(100 + i, 0, "big"), wire);
  ASSERT_TRUE(slow.send_raw(wire).ok());

  // Do NOT read anything: ~4 MiB of responses against a 64 KiB write
  // buffer and a 4 KiB socket buffer must trip the eviction. Poll the
  // server-side counter, then confirm the connection is actually dead.
  bool evicted = false;
  for (int i = 0; i < 2000 && !evicted; ++i) {
    evicted = fx.server.metrics().counter_value(
                  "rt.net.slow_client_disconnects") >= 1;
    if (!evicted) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(evicted);
  bool disconnected = false;
  for (int i = 0; i < 4096 && !disconnected; ++i) {
    auto r = slow.recv();
    if (!r.ok()) disconnected = true;
  }
  EXPECT_TRUE(disconnected);
}

// shutdown() with pipelined frames in flight: every submitted frame is
// answered before the connection closes, and the close is an orderly
// EOF, not a reset with queued data.
TEST(RtTcp, DrainOnShutdownAnswersEveryInFlightFrame) {
  RuntimeServer::Options sopt;
  sopt.threads = 2;
  sopt.service_time = std::chrono::microseconds(500);
  Fixture fx(sopt);

  NetClient c;
  ASSERT_TRUE(c.connect(fx.tcp.port()).ok());
  ASSERT_TRUE(c.set_recv_timeout(30.0).ok());
  auth_ok(c);

  constexpr std::uint64_t kInFlight = 48;
  std::vector<std::uint8_t> wire;
  for (std::uint64_t i = 0; i < kInFlight; ++i)
    netio::encode_frame(
        NetClient::make_put(100 + i, 0, "k" + std::to_string(i),
                            {static_cast<std::uint8_t>(i)}),
        wire);
  ASSERT_TRUE(c.send_raw(wire).ok());

  // Shut down while those ops are (very likely) still in worker
  // queues; drain must answer all of them regardless of timing.
  std::thread stopper([&] { fx.tcp.shutdown(); });
  std::vector<bool> answered(kInFlight, false);
  for (std::uint64_t i = 0; i < kInFlight; ++i) {
    auto r = c.recv();
    ASSERT_TRUE(r.ok()) << "response " << i << " lost in drain";
    const Frame& f = r.value();
    ASSERT_GE(f.request_id, 100u);
    ASSERT_LT(f.request_id, 100u + kInFlight);
    EXPECT_FALSE(answered[f.request_id - 100]) << "duplicated response";
    answered[f.request_id - 100] = true;
    EXPECT_EQ(f.status, static_cast<std::uint8_t>(Errc::ok));
  }
  // After the last response the server closes: orderly EOF.
  auto eof = c.recv();
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.code(), Errc::unavailable);
  stopper.join();
}

TEST(RtTcp, MalformedMagicGetsProtocolErrorFrameThenClose) {
  Fixture fx;
  NetClient c;
  ASSERT_TRUE(c.connect(fx.tcp.port()).ok());
  ASSERT_TRUE(c.set_recv_timeout(10.0).ok());
  const std::uint8_t junk[16] = {'n', 'o', 'p', 'e', 0, 0, 0, 0};
  ASSERT_TRUE(c.send_raw(junk, sizeof(junk)).ok());
  const Frame err = expect_recv(c);
  EXPECT_EQ(err.kind, Frame::Kind::response);
  EXPECT_TRUE(err.flags & netio::kFlagProtocolError);
  EXPECT_EQ(err.status, static_cast<std::uint8_t>(Errc::invalid_argument));
  auto eof = c.recv();
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.code(), Errc::unavailable);
  EXPECT_EQ(fx.server.metrics().counter_value("rt.net.protocol_errors"), 1u);
}

TEST(RtTcp, OversizedLengthPrefixClosesWithoutAllocating) {
  TcpServer::Options topt;
  topt.max_frame_body = 1 << 20;
  Fixture fx({}, topt);
  NetClient c;
  ASSERT_TRUE(c.connect(fx.tcp.port()).ok());
  ASSERT_TRUE(c.set_recv_timeout(10.0).ok());
  // Valid request magic, body length far past the decoder bound: the
  // server must reject on the prefix alone, never buffering 1 GiB.
  std::vector<std::uint8_t> evil;
  const std::uint32_t magic = netio::kRequestMagic;
  const std::uint32_t body = 1u << 30;
  for (int i = 0; i < 4; ++i)
    evil.push_back(static_cast<std::uint8_t>(magic >> (8 * i)));
  for (int i = 0; i < 4; ++i)
    evil.push_back(static_cast<std::uint8_t>(body >> (8 * i)));
  ASSERT_TRUE(c.send_raw(evil).ok());
  const Frame err = expect_recv(c);
  EXPECT_TRUE(err.flags & netio::kFlagProtocolError);
  auto eof = c.recv();
  ASSERT_FALSE(eof.ok());
}

TEST(RtTcp, ClientSentResponseFrameIsAProtocolError) {
  Fixture fx;
  NetClient c;
  ASSERT_TRUE(c.connect(fx.tcp.port()).ok());
  ASSERT_TRUE(c.set_recv_timeout(10.0).ok());
  Frame bogus;
  bogus.kind = Frame::Kind::response;
  bogus.status = 0;
  bogus.request_id = 7;
  ASSERT_TRUE(c.send(bogus).ok());
  const Frame err = expect_recv(c);
  EXPECT_TRUE(err.flags & netio::kFlagProtocolError);
  auto eof = c.recv();
  ASSERT_FALSE(eof.ok());
}

// Errc::overloaded and its retry-after hint survive the wire: a
// rate-limited tenant's second op comes back as an OVERLOADED frame
// with retry_after_us > 0 (microseconds, rounded up -- never a
// truncated-to-zero hint).
TEST(RtTcp, OverloadedShedTravelsWithRetryAfterHint) {
  ShardedStore store({4, 1 << 20, ""});
  TenantRegistry reg;
  TenantConfig cfg;
  cfg.name = "limited";
  cfg.ops_per_s = 1.0;
  cfg.ops_burst = 1.0;
  const auto id = reg.register_tenant(cfg).value();
  RuntimeServer::Options sopt;
  sopt.threads = 1;
  sopt.tenants = &reg;
  RuntimeServer server(store, sopt);
  TcpServer tcp(server, {});

  NetClient c;
  ASSERT_TRUE(c.connect(tcp.port()).ok());
  ASSERT_TRUE(c.set_recv_timeout(10.0).ok());

  ASSERT_TRUE(c.send(NetClient::make_put(1, id, "k", {1})).ok());
  EXPECT_EQ(expect_recv(c).status, static_cast<std::uint8_t>(Errc::ok));

  ASSERT_TRUE(c.send(NetClient::make_put(2, id, "k2", {1})).ok());
  const Frame shed = expect_recv(c);
  EXPECT_EQ(shed.request_id, 2u);
  EXPECT_EQ(shed.status, static_cast<std::uint8_t>(Errc::overloaded));
  EXPECT_GT(shed.retry_after_us, 0u);
  EXPECT_FALSE(shed.flags & netio::kFlagHasSeq);
}

// Connection gauge and byte counters move through the obs sink.
TEST(RtTcp, ConnectionMetricsAreTracked) {
  Fixture fx;
  {
    NetClient a, b;
    ASSERT_TRUE(a.connect(fx.tcp.port()).ok());
    ASSERT_TRUE(b.connect(fx.tcp.port()).ok());
    ASSERT_TRUE(a.set_recv_timeout(10.0).ok());
    auth_ok(a);
    // Both connects observed; gauge is eventually consistent with the
    // counter pair (accepted - closed).
    for (int i = 0; i < 100; ++i) {
      if (fx.server.metrics().counter_value("rt.net.accepted") >= 2) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_GE(fx.server.metrics().counter_value("rt.net.accepted"), 2u);
    EXPECT_GT(fx.server.metrics().counter_value("rt.net.bytes_in"), 0u);
    EXPECT_GT(fx.server.metrics().counter_value("rt.net.frames_in"), 0u);
    EXPECT_GT(fx.server.metrics().counter_value("rt.net.frames_out"), 0u);
  }
  fx.tcp.shutdown();
  EXPECT_EQ(fx.server.metrics().counter_value("rt.net.accepted"),
            fx.server.metrics().counter_value("rt.net.closed"));
}

// Idle reaping (ISSUE 9): a connection with no in-flight ops and no
// traffic past idle_timeout is closed and counted; an active one on the
// same server is left alone.
TEST(RtTcp, IdleConnectionIsReaped) {
  TcpServer::Options topt;
  topt.idle_timeout = std::chrono::milliseconds(100);
  Fixture fx({}, topt);

  NetClient idle, busy;
  ASSERT_TRUE(idle.connect(fx.tcp.port()).ok());
  ASSERT_TRUE(busy.connect(fx.tcp.port()).ok());
  ASSERT_TRUE(idle.set_recv_timeout(5.0).ok());
  ASSERT_TRUE(busy.set_recv_timeout(5.0).ok());
  auth_ok(idle, 1);
  auth_ok(busy, 1);

  // Keep `busy` chatty while `idle` goes silent past the timeout.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  std::uint64_t id = 100;
  while (fx.server.metrics().counter_value("rt.net.idle_reaps") == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    ASSERT_TRUE(busy.send(NetClient::make_exists(++id, 0, "k")).ok());
    EXPECT_EQ(expect_recv(busy).request_id, id);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(fx.server.metrics().counter_value("rt.net.idle_reaps"), 1u);

  // The reaped connection is really gone: the next recv sees EOF.
  auto r = idle.recv();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), Errc::unavailable);
  // The busy connection survived the whole time.
  ASSERT_TRUE(busy.send(NetClient::make_exists(++id, 0, "k")).ok());
  EXPECT_EQ(expect_recv(busy).request_id, id);
}

// A client that aborts (RST) instead of closing cleanly shows up in
// rt.net.resets; the server stays healthy for everyone else.
TEST(RtTcp, AbortedClientCountsAsReset) {
  Fixture fx;
  {
    NetClient c;
    ASSERT_TRUE(c.connect(fx.tcp.port()).ok());
    ASSERT_TRUE(c.set_recv_timeout(5.0).ok());
    auth_ok(c);
    ASSERT_TRUE(c.send(NetClient::make_put(2, 0, "k", {1, 2, 3})).ok());
    c.abort();  // RST with a request possibly still in flight
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fx.server.metrics().counter_value("rt.net.resets") == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(fx.server.metrics().counter_value("rt.net.resets"), 1u);

  NetClient c2;
  ASSERT_TRUE(c2.connect(fx.tcp.port()).ok());
  ASSERT_TRUE(c2.set_recv_timeout(5.0).ok());
  auth_ok(c2);
}

}  // namespace
}  // namespace memfss::rt
