// Tests for the scrubber (checksum verification + corruption recovery)
// and own-class elasticity (grow/shrink the MemFSS reservation).
#include <gtest/gtest.h>

#include "co_test.hpp"
#include "common/rng.hpp"
#include "common/str.hpp"
#include "fs/client.hpp"
#include "fs/filesystem.hpp"

namespace memfss::fs {
namespace {

struct Rig {
  sim::Simulator sim;
  cluster::Cluster cl;
  FileSystem fs;

  explicit Rig(FileSystemConfig cfg = base_config())
      : cl(sim, 12), fs(cl, std::move(cfg)) {}

  static FileSystemConfig base_config() {
    FileSystemConfig cfg;
    cfg.own_nodes = {0, 1, 2, 3};
    cfg.own_store_capacity = 4 * units::GiB;
    cfg.stripe_size = 1 * units::MiB;
    return cfg;
  }

  template <typename F>
  void run(F&& body) {
    bool finished = false;
    sim.spawn([](Rig& r, F fn, bool& done) -> sim::Task<> {
      co_await fn(r);
      done = true;
    }(*this, std::forward<F>(body), finished));
    sim.run();
    ASSERT_TRUE(finished);
  }

  /// Corrupt one stored copy of some stripe on any node; returns the
  /// stripe key or empty.
  std::string corrupt_any() {
    for (NodeId n = 0; n < 12; ++n) {
      if (!fs.has_server(n)) continue;
      auto keys = fs.server(n).store().keys();
      if (keys.empty()) continue;
      EXPECT_TRUE(fs.server(n).store().corrupt_for_test(keys[0]).ok());
      return keys[0];
    }
    return {};
  }
};

TEST(Blob, VerifyDetectsCorruption) {
  auto m = kvstore::Blob::materialized({1, 2, 3, 4, 5});
  EXPECT_TRUE(m.verify());
  m.corrupt_for_test();
  EXPECT_FALSE(m.verify());

  auto g = kvstore::Blob::ghost(1024, 7);
  EXPECT_TRUE(g.verify());
  g.corrupt_for_test();
  EXPECT_FALSE(g.verify());
}

TEST(Scrub, CleanSystemFindsNothing) {
  Rig rig;
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    CO_ASSERT_TRUE((co_await c.write_file("/f", 8 * units::MiB)).ok());
    const auto report = co_await r.fs.scrub_all();
    CO_ASSERT_OK(report.status);
    EXPECT_EQ(report.corruptions_found, 0u);
    EXPECT_EQ(report.stripes_repaired, 0u);
  });
}

TEST(Scrub, RepairsCorruptReplica) {
  auto cfg = Rig::base_config();
  cfg.redundancy = RedundancyMode::replicated;
  cfg.copies = 2;
  Rig rig(std::move(cfg));
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    CO_ASSERT_TRUE((co_await c.write_file("/f", 8 * units::MiB)).ok());
    const Bytes before = r.fs.total_bytes();
    CO_ASSERT_TRUE(!r.corrupt_any().empty());
    const auto report = co_await r.fs.scrub_all();
    CO_ASSERT_OK(report.status);
    EXPECT_EQ(report.corruptions_found, 1u);
    EXPECT_EQ(report.stripes_repaired, 1u);
    EXPECT_EQ(r.fs.total_bytes(), before);
    // Everything verifies again.
    const auto again = co_await r.fs.scrub_all();
    EXPECT_EQ(again.corruptions_found, 0u);
  });
}

TEST(Scrub, UnredundantCorruptionIsReported) {
  Rig rig;
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    CO_ASSERT_TRUE((co_await c.write_file("/f", 4 * units::MiB)).ok());
    CO_ASSERT_TRUE(!r.corrupt_any().empty());
    const auto report = co_await r.fs.scrub_all();
    EXPECT_EQ(report.corruptions_found, 1u);
    EXPECT_EQ(report.status.code(), Errc::corruption);
  });
}

TEST(Scrub, RepairsCorruptErasureShard) {
  auto cfg = Rig::base_config();
  cfg.redundancy = RedundancyMode::erasure;
  cfg.ec_k = 3;
  cfg.ec_m = 2;
  Rig rig(std::move(cfg));
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    Rng rng(9);
    std::vector<std::uint8_t> payload(units::MiB + 77);
    for (auto& b : payload) b = std::uint8_t(rng.next_u64());
    CO_ASSERT_TRUE((co_await c.write_file_bytes("/ec", payload)).ok());
    CO_ASSERT_TRUE(!r.corrupt_any().empty());
    const auto report = co_await r.fs.scrub_all();
    CO_ASSERT_OK(report.status);
    EXPECT_EQ(report.corruptions_found, 1u);
    EXPECT_GE(report.stripes_repaired, 1u);
    auto back = co_await c.read_file_bytes("/ec");
    CO_ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), payload);
  });
}

TEST(Elasticity, GrowOwnClassSpreadsNewData) {
  Rig rig;
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    CO_ASSERT_TRUE((co_await c.write_file("/before", 32 * units::MiB)).ok());
    CO_ASSERT_TRUE(r.fs.add_own_nodes({4, 5}).ok());
    CO_ASSERT_TRUE((co_await c.write_file("/after", 32 * units::MiB)).ok());
    // New nodes hold some data; old file remains readable (lazy moves).
    EXPECT_GT(r.fs.bytes_on(4) + r.fs.bytes_on(5), 0u);
    auto bytes = co_await c.read_file("/before");
    CO_ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(bytes.value(), 32 * units::MiB);
    // Metadata shards now include the new nodes.
    bool shard_on_new = false;
    for (int i = 0; i < 64; ++i) {
      const NodeId s = r.fs.meta().shard_for(strformat("/p%d", i));
      if (s == 4 || s == 5) shard_on_new = true;
    }
    EXPECT_TRUE(shard_on_new);
  });
}

TEST(Elasticity, GrowValidation) {
  Rig rig;
  EXPECT_EQ(rig.fs.add_own_nodes({}).code(), Errc::invalid_argument);
  EXPECT_EQ(rig.fs.add_own_nodes({0}).code(), Errc::already_exists);
  EXPECT_EQ(rig.fs.add_own_nodes({99}).code(), Errc::invalid_argument);
}

TEST(Elasticity, ShrinkMigratesDataAndMetadata) {
  Rig rig;
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    CO_ASSERT_TRUE((co_await c.write_file("/f", 32 * units::MiB)).ok());
    const Bytes total_before = r.fs.total_bytes();
    auto st = co_await r.fs.remove_own_node(3);
    CO_ASSERT_OK(st);
    EXPECT_EQ(r.fs.bytes_on(3), 0u);
    EXPECT_EQ(r.fs.total_bytes(), total_before);
    EXPECT_TRUE(r.fs.server(3).store().closed());
    // Shards avoid the retired node.
    for (int i = 0; i < 64; ++i)
      EXPECT_NE(r.fs.meta().shard_for(strformat("/p%d", i)), 3u);
    auto bytes = co_await c.read_file("/f");
    CO_ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(bytes.value(), 32 * units::MiB);
  });
}

TEST(Elasticity, CannotRemoveLastOwnNode) {
  FileSystemConfig cfg;
  cfg.own_nodes = {0};
  cfg.stripe_size = units::MiB;
  Rig rig(std::move(cfg));
  rig.run([](Rig& r) -> sim::Task<> {
    auto st = co_await r.fs.remove_own_node(0);
    EXPECT_EQ(st.code(), Errc::invalid_argument);
    auto st2 = co_await r.fs.remove_own_node(7);
    EXPECT_EQ(st2.code(), Errc::not_found);
  });
}

TEST(Elasticity, GrowThenRebalanceEvensLoad) {
  Rig rig;
  rig.run([](Rig& r) -> sim::Task<> {
    Client c = r.fs.client(0);
    CO_ASSERT_TRUE((co_await c.write_file("/f", 64 * units::MiB)).ok());
    CO_ASSERT_TRUE(r.fs.add_own_nodes({4, 5, 6, 7}).ok());
    // Rebalance is epoch-based; same epoch, so it reports nothing to do,
    // but reads trigger lazy relocation toward the new HRW primaries.
    auto bytes = co_await c.read_file("/f");
    CO_ASSERT_TRUE(bytes.ok());
    co_await r.sim.delay(10.0);
    EXPECT_GT(r.fs.counters().lazy_relocations, 0u);
    EXPECT_GT(r.fs.bytes_on(4) + r.fs.bytes_on(5) + r.fs.bytes_on(6) +
                  r.fs.bytes_on(7),
              0u);
  });
}

}  // namespace
}  // namespace memfss::fs
