// Determinism properties: identically-seeded simulations must be
// bit-identical. Every stochastic input flows through seeded Rng and the
// event queue breaks time ties FIFO, so reruns of any experiment are
// exact replays -- the property the seed-sweep benches and this whole
// reproduction rely on.
#include <gtest/gtest.h>

#include "exp/experiments.hpp"
#include "fs/client.hpp"
#include "tenant/suites.hpp"
#include "workflow/engine.hpp"
#include "workflow/generators.hpp"

namespace memfss {
namespace {

exp::ScenarioParams tiny() {
  exp::ScenarioParams p;
  p.total_nodes = 8;
  p.own_nodes = 2;
  p.victim_memory_cap = 2 * units::GiB;
  return p;
}

TEST(Determinism, Fig2RunsAreExactReplays) {
  exp::Fig2Options opt;
  opt.scenario = tiny();
  opt.dd_tasks = 32;
  opt.dd_bytes = 16 * units::MiB;
  const auto a = exp::run_fig2(0.25, opt);
  const auto b = exp::run_fig2(0.25, opt);
  EXPECT_EQ(a.runtime, b.runtime);  // bitwise, not approximate
  EXPECT_EQ(a.own_bytes, b.own_bytes);
  EXPECT_EQ(a.victim_bytes, b.victim_bytes);
  EXPECT_EQ(a.victim.nic(), b.victim.nic());
}

TEST(Determinism, WorkflowEngineReplays) {
  auto run_once = [] {
    sim::Simulator sim;
    cluster::Cluster cl(sim, 6);
    fs::FileSystemConfig cfg;
    cfg.own_nodes = {0, 1, 2};
    cfg.stripe_size = units::MiB;
    fs::FileSystem fs(cl, cfg);
    workflow::Engine engine(cl, fs, {0, 1, 2});
    Rng rng(77);
    workflow::MontageParams p;
    p.tiles = 20;
    p.concat_cpu = 3;
    p.bgmodel_cpu = 4;
    p.imgtbl_cpu = 1;
    p.madd_cpu = 5;
    p.shrink_cpu = 1;
    auto wf = workflow::make_montage(p, rng);
    workflow::Report out;
    sim.spawn([](workflow::Engine& e, workflow::Workflow w,
                 workflow::Report& o) -> sim::Task<> {
      o = co_await e.run(std::move(w));
    }(engine, std::move(wf), out));
    sim.run();
    return out;
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_TRUE(a.status.ok());
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.bytes_written, b.bytes_written);
  EXPECT_EQ(a.bytes_read, b.bytes_read);
}

TEST(Determinism, TenantRunsReplay) {
  exp::SlowdownOptions opt;
  opt.scenario = tiny();
  const auto app = tenant::hpcc_suite()[1];  // STREAM
  const auto a = exp::run_tenant_under_scavenging(app, exp::Workload::dd, opt);
  const auto b = exp::run_tenant_under_scavenging(app, exp::Workload::dd, opt);
  EXPECT_EQ(a.duration, b.duration);
}

TEST(Determinism, FaultyRunsAreExactReplays) {
  // A run under an injected fault schedule must replay exactly too: the
  // plan itself is seed-derived, and every retry/backoff/repair decision
  // flows from the same deterministic inputs.
  exp::FaultRecoveryOptions opt;
  opt.scenario = tiny();
  opt.scenario.with_victims = true;
  opt.montage_tiles = 24;
  opt.crash_rate = 0.5;
  opt.revoke_mid_run = true;
  const auto a = exp::run_fault_recovery(opt);
  const auto b = exp::run_fault_recovery(opt);
  EXPECT_EQ(a.runtime, b.runtime);  // bitwise, not approximate
  EXPECT_EQ(a.clean_runtime, b.clean_runtime);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.revocations, b.revocations);
  EXPECT_EQ(a.degraded_reads, b.degraded_reads);
  EXPECT_EQ(a.rpc_timeouts, b.rpc_timeouts);
  EXPECT_EQ(a.read_retries, b.read_retries);
  EXPECT_EQ(a.write_retries, b.write_retries);
  EXPECT_EQ(a.stripes_repaired, b.stripes_repaired);
  EXPECT_EQ(a.bytes_re_replicated, b.bytes_re_replicated);
  EXPECT_EQ(a.mean_time_to_repair, b.mean_time_to_repair);
  EXPECT_TRUE(a.ok && b.ok);
}

TEST(Determinism, FaultyTraceReplaysEventForEvent) {
  // Stronger than comparing aggregate counters: with tracing on, two
  // replays of a faulty run must record the *same event sequence* --
  // every span and instant, same order, same timestamps, same details.
  // This is the property the golden-trace regression test builds on.
  exp::FaultRecoveryOptions opt;
  opt.scenario = tiny();
  opt.scenario.with_victims = true;
  opt.montage_tiles = 24;
  opt.crash_rate = 0.5;
  opt.revoke_mid_run = true;
  opt.capture_trace = true;
  const auto a = exp::run_fault_recovery(opt);
  const auto b = exp::run_fault_recovery(opt);
  ASSERT_FALSE(a.trace_text.empty());
  EXPECT_EQ(a.trace_text, b.trace_text);  // byte-identical event log
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.metrics_csv, b.metrics_csv);
  // The trace actually covers the faulty run: fault instants are there.
  EXPECT_NE(a.trace_text.find("fault.crash"), std::string::npos);
  EXPECT_NE(a.trace_text.find("fault.revoke"), std::string::npos);
}

TEST(Determinism, HedgedReadDecisionsReplay) {
  // Hedged reads key off the observed latency histogram and simulated
  // time only, so two identically-seeded runs must make the same hedge
  // decisions -- same backup arms fired, same winners, and a byte-equal
  // event trace (the property the golden-trace test builds on).
  struct Out {
    std::string trace;
    std::uint64_t hedges = 0, wins = 0;
    SimTime end = 0.0;
  };
  auto run_once = [] {
    sim::Simulator sim;
    cluster::Cluster cl(sim, 6);
    cl.obs().tracer.enable_all(true);
    fs::FileSystemConfig cfg;
    cfg.own_nodes = {0, 1, 2, 3};
    cfg.stripe_size = units::MiB;
    cfg.redundancy = fs::RedundancyMode::replicated;
    cfg.copies = 2;
    fs::FileSystem fs(cl, cfg);
    fs.set_resilience_tuning(/*threshold=*/2, /*cooldown=*/0.5,
                             /*hedge_quantile=*/0.9, /*min_samples=*/8);
    sim.spawn([](fs::FileSystem& f) -> sim::Task<> {
      fs::Client c = f.client(0);
      for (int i = 0; i < 4; ++i)
        (void)co_await c.write_file("/f" + std::to_string(i),
                                    4 * units::MiB);
      for (int i = 0; i < 4; ++i)  // warm the latency histogram
        (void)co_await c.read_file("/f" + std::to_string(i));
      f.server(1).stall_for(60.0);  // force hedges on node-1 primaries
      for (int i = 0; i < 4; ++i)
        (void)co_await c.read_file("/f" + std::to_string(i));
    }(fs));
    sim.run();
    return Out{cl.obs().tracer.text_dump(), fs.counters().hedged_reads,
               fs.counters().hedge_wins, sim.now()};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_GT(a.hedges, 0u);  // the scenario actually hedged
  EXPECT_EQ(a.hedges, b.hedges);
  EXPECT_EQ(a.wins, b.wins);
  EXPECT_EQ(a.end, b.end);      // bitwise, not approximate
  EXPECT_EQ(a.trace, b.trace);  // byte-identical event log
}

TEST(Determinism, DifferentSeedsDifferentWorkflows) {
  Rng a(1), b(2);
  const auto wa = exp::make_workload(exp::Workload::blast, a);
  const auto wb = exp::make_workload(exp::Workload::blast, b);
  EXPECT_NE(wa.total_output_bytes(), wb.total_output_bytes());
}

}  // namespace
}  // namespace memfss
