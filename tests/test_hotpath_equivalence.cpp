// Equivalence oracles for the hot-path optimizations (DESIGN.md §9).
//
// 1. Bundled fabric vs. naive water-filling: the fabric aggregates
//    identical flows into bundles and runs progressive filling over
//    bundle/port/group sets. A literal per-flow reference implementation
//    of the same algorithm must produce the same rate for every flow (to
//    1e-9 relative) across randomized scenarios.
// 2. Digest placement vs. string-key placement: the allocation-free
//    StripeRef digest path must select exactly the same nodes as the
//    legacy strformat-ed key for every (inode, stripe, class-set) probed.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "fs/namespace.hpp"
#include "fs/placement.hpp"
#include "hash/hashes.hpp"
#include "hash/hrw.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"

namespace memfss {
namespace {

// --- naive per-flow water-filling reference ---------------------------------

struct RefFlow {
  NodeId src, dst;
  double cap;                  // per-flow ceiling (may be inf)
  int group;                   // index into group_limits, -1 for none
};

struct RefNic {
  double up, down;
};

// Literal transcription of the pre-bundling Fabric::recompute() filling
// loop (same epsilons, same freeze conditions), used as the oracle.
std::vector<double> naive_waterfill(const std::vector<RefNic>& nics,
                                    const std::vector<RefFlow>& flows,
                                    const std::vector<double>& group_limits) {
  constexpr double kRateEpsilon = 1e-9;
  const std::size_t n = nics.size();
  std::vector<double> up_res(n), down_res(n);
  std::vector<std::size_t> up_cnt(n, 0), down_cnt(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    up_res[i] = nics[i].up;
    down_res[i] = nics[i].down;
  }
  std::vector<double> grp_res(group_limits);
  std::vector<std::size_t> grp_cnt(group_limits.size(), 0);
  for (const auto& f : flows) {
    ++up_cnt[f.src];
    ++down_cnt[f.dst];
    if (f.group >= 0) ++grp_cnt[static_cast<std::size_t>(f.group)];
  }

  std::vector<double> rate(flows.size(), 0.0);
  std::vector<bool> frozen(flows.size(), false);
  std::size_t unfrozen = flows.size();
  double level = 0.0;
  while (unfrozen > 0) {
    double delta = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (up_cnt[i] > 0)
        delta = std::min(delta, up_res[i] / static_cast<double>(up_cnt[i]));
      if (down_cnt[i] > 0)
        delta =
            std::min(delta, down_res[i] / static_cast<double>(down_cnt[i]));
    }
    for (std::size_t g = 0; g < grp_res.size(); ++g) {
      if (grp_cnt[g] > 0)
        delta =
            std::min(delta, grp_res[g] / static_cast<double>(grp_cnt[g]));
    }
    for (std::size_t i = 0; i < flows.size(); ++i) {
      if (!frozen[i] && std::isfinite(flows[i].cap))
        delta = std::min(delta, flows[i].cap - level);
    }
    if (!std::isfinite(delta)) break;
    delta = std::max(delta, 0.0);
    level += delta;
    for (std::size_t i = 0; i < n; ++i) {
      up_res[i] -= delta * static_cast<double>(up_cnt[i]);
      down_res[i] -= delta * static_cast<double>(down_cnt[i]);
    }
    for (std::size_t g = 0; g < grp_res.size(); ++g)
      grp_res[g] -= delta * static_cast<double>(grp_cnt[g]);
    for (std::size_t i = 0; i < flows.size(); ++i) {
      const auto& f = flows[i];
      if (frozen[i]) continue;
      const bool up_sat = up_res[f.src] <= kRateEpsilon * nics[f.src].up;
      const bool down_sat =
          down_res[f.dst] <= kRateEpsilon * nics[f.dst].down;
      const bool grp_sat =
          f.group >= 0 &&
          grp_res[static_cast<std::size_t>(f.group)] <=
              kRateEpsilon *
                  (group_limits[static_cast<std::size_t>(f.group)] + 1.0);
      const bool cap_sat =
          std::isfinite(f.cap) &&
          level >= f.cap - kRateEpsilon * std::max(1.0, f.cap);
      if (up_sat || down_sat || grp_sat || cap_sat) {
        frozen[i] = true;
        rate[i] = level;
        --unfrozen;
        --up_cnt[f.src];
        --down_cnt[f.dst];
        if (f.group >= 0) --grp_cnt[static_cast<std::size_t>(f.group)];
      }
    }
  }
  for (std::size_t i = 0; i < flows.size(); ++i)
    if (!frozen[i]) rate[i] = level;
  return rate;
}

sim::Task<> hold(net::Fabric& fab, RefFlow f, net::CapGroup* grp) {
  co_await fab.transfer(f.src, f.dst, Bytes{1} << 40, f.cap, grp);
}

// One randomized scenario: build the fabric, let all flows arrive, and
// compare every flow's allocated rate with the naive reference.
void check_scenario(Rng& rng) {
  const std::size_t nodes = 2 + rng.uniform_u64(0, 14);
  const std::size_t n_flows = 1 + rng.uniform_u64(0, 149);
  const std::size_t n_groups = rng.uniform_u64(0, 3);

  std::vector<RefNic> nics(nodes);
  sim::Simulator sim;
  net::NicSpec base;
  base.latency = 0.0;
  net::Fabric fab(sim, nodes, base);
  for (std::size_t i = 0; i < nodes; ++i) {
    net::NicSpec spec;
    spec.latency = 0.0;
    spec.up = 1e8 * static_cast<double>(1 + rng.uniform_u64(0, 29));
    spec.down = 1e8 * static_cast<double>(1 + rng.uniform_u64(0, 29));
    fab.set_nic(static_cast<NodeId>(i), spec);
    nics[i] = {spec.up, spec.down};
  }

  std::vector<double> group_limits;
  std::vector<std::unique_ptr<net::CapGroup>> groups;
  for (std::size_t g = 0; g < n_groups; ++g) {
    const double lim = 1e8 * static_cast<double>(1 + rng.uniform_u64(0, 9));
    group_limits.push_back(lim);
    groups.push_back(std::make_unique<net::CapGroup>(lim));
  }

  std::vector<RefFlow> flows;
  for (std::size_t i = 0; i < n_flows; ++i) {
    RefFlow f;
    f.src = static_cast<NodeId>(rng.uniform_u64(0, nodes - 1));
    do {
      f.dst = static_cast<NodeId>(rng.uniform_u64(0, nodes - 1));
    } while (f.dst == f.src);
    // A third uncapped, the rest with a modest per-flow ceiling; caps are
    // drawn from a tiny set so many flows share a bundle.
    f.cap = rng.uniform_u64(0, 2) == 0
                ? net::Fabric::kUncapped
                : 2e8 * static_cast<double>(1 + rng.uniform_u64(0, 3));
    f.group = n_groups > 0 && rng.uniform_u64(0, 1) == 0
                  ? static_cast<int>(rng.uniform_u64(0, n_groups - 1))
                  : -1;
    flows.push_back(f);
    sim.spawn(
        hold(fab, f, f.group >= 0 ? groups[f.group].get() : nullptr));
  }
  sim.run_until(1e-6);  // arrivals processed, nothing completes
  ASSERT_EQ(fab.active_flows(), n_flows);
  EXPECT_LE(fab.active_bundles(), n_flows);

  const auto expect = naive_waterfill(nics, flows, group_limits);
  const auto snap = fab.flow_snapshot();
  ASSERT_EQ(snap.size(), n_flows);
  for (std::size_t i = 0; i < n_flows; ++i) {
    EXPECT_EQ(snap[i].src, flows[i].src);
    EXPECT_EQ(snap[i].dst, flows[i].dst);
    const double tol = 1e-9 * std::max(1.0, expect[i]);
    EXPECT_NEAR(snap[i].rate, expect[i], tol)
        << "flow " << i << " (" << flows[i].src << "->" << flows[i].dst
        << " cap=" << flows[i].cap << " group=" << flows[i].group << ")";
  }
  sim.run();  // drain: every held coroutine completes (no leaked frames)
}

TEST(FabricEquivalence, RandomizedScenariosMatchNaiveWaterfill) {
  Rng rng(20260805);
  for (int s = 0; s < 40; ++s) {
    SCOPED_TRACE(s);
    check_scenario(rng);
  }
}

TEST(FabricEquivalence, DuplicateFlowsShareBundlesAndSplitEvenly) {
  sim::Simulator sim;
  net::NicSpec spec;
  spec.latency = 0.0;
  spec.up = 10e9;
  spec.down = 1e9;
  net::Fabric fab(sim, 4, spec);
  // 8 identical flows 0->1: one bundle, each gets down/8.
  std::vector<RefFlow> flows(8, RefFlow{0, 1, net::Fabric::kUncapped, -1});
  for (const auto& f : flows) sim.spawn(hold(fab, f, nullptr));
  sim.run_until(1e-6);
  ASSERT_EQ(fab.active_flows(), 8u);
  EXPECT_EQ(fab.active_bundles(), 1u);
  for (const auto& fi : fab.flow_snapshot())
    EXPECT_NEAR(fi.rate, 1e9 / 8.0, 1.0);
  EXPECT_NEAR(fab.node_down_rate(1), 1e9, 8.0);
  sim.run();
}

// --- digest placement equivalence -------------------------------------------

TEST(DigestEquivalence, StripeKeyDigestMatchesStringDigest) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const auto ino = rng.next_u64();
    const auto idx = static_cast<std::size_t>(rng.uniform_u64(0, 1u << 20));
    EXPECT_EQ(fs::Namespace::stripe_key_digest(ino, idx),
              hash::key_digest(fs::Namespace::stripe_key(ino, idx)))
        << "ino=" << ino << " idx=" << idx;
  }
  // Boundary values of the decimal rendering.
  for (std::uint64_t ino :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{9},
        std::uint64_t{10}, std::uint64_t{99},
        std::numeric_limits<std::uint64_t>::max()}) {
    for (std::size_t idx : {std::size_t{0}, std::size_t{10},
                            std::numeric_limits<std::size_t>::max()}) {
      EXPECT_EQ(fs::Namespace::stripe_key_digest(ino, idx),
                hash::key_digest(fs::Namespace::stripe_key(ino, idx)));
    }
  }
}

TEST(DigestEquivalence, HrwDigestOverloadsMatchStringForms) {
  Rng rng(11);
  std::vector<NodeId> servers;
  for (NodeId n = 0; n < 25; ++n) servers.push_back(n * 3 + 1);
  for (auto fn : {hash::ScoreFn::mix64, hash::ScoreFn::thaler_ravishankar}) {
    for (int i = 0; i < 200; ++i) {
      const std::string key =
          fs::Namespace::stripe_key(rng.next_u64(), i);
      const std::uint64_t d = hash::key_digest(key);
      EXPECT_EQ(hash::hrw_select(key, servers, fn),
                hash::hrw_select(d, servers, fn));
      EXPECT_EQ(hash::hrw_rank(key, servers, fn),
                hash::hrw_rank(d, servers, fn));
      // Partial selection must equal the matching prefix of the full sort.
      const auto full = hash::hrw_rank(d, servers, fn);
      for (std::size_t count : {std::size_t{1}, std::size_t{3},
                                std::size_t{24}, std::size_t{25},
                                std::size_t{40}}) {
        const auto top = hash::hrw_top(d, servers, count, fn);
        ASSERT_EQ(top.size(), std::min(count, servers.size()));
        for (std::size_t r = 0; r < top.size(); ++r)
          EXPECT_EQ(top[r], full[r]) << "count=" << count << " rank=" << r;
      }
    }
  }
}

TEST(DigestEquivalence, PolicyDigestPathSelectsSameNodes) {
  Rng rng(13);
  for (int setup = 0; setup < 6; ++setup) {
    fs::ClassMembership members;
    const std::size_t n_classes = 1 + rng.uniform_u64(0, 2);
    fs::PlacementEpoch epoch;
    epoch.id = static_cast<std::uint32_t>(setup);
    NodeId next = 0;
    for (std::size_t c = 0; c < n_classes; ++c) {
      std::vector<NodeId> nodes;
      const std::size_t sz = 1 + rng.uniform_u64(0, 11);
      for (std::size_t k = 0; k < sz; ++k) nodes.push_back(next++);
      members.set_members(static_cast<std::uint32_t>(c), nodes);
      epoch.weights.push_back(
          {static_cast<std::uint32_t>(c),
           0.25 * static_cast<double>(rng.uniform_u64(0, 3))});
    }
    const fs::ClassHrwPolicy policy(epoch, members);
    for (int i = 0; i < 300; ++i) {
      const fs::InodeId ino = rng.uniform_u64(2, 5000);
      const std::size_t idx = static_cast<std::size_t>(i);
      const std::string key = fs::Namespace::stripe_key(ino, idx);
      const std::uint64_t d = fs::Namespace::stripe_key_digest(ino, idx);
      EXPECT_EQ(policy.place(key, 3), policy.place(d, 3));
      EXPECT_EQ(policy.probe_order(key), policy.probe_order(d));
      EXPECT_EQ(policy.winning_class(key), policy.winning_class(d));
    }
  }
}

}  // namespace
}  // namespace memfss
