// Unit tests for the observability layer: metrics registry instruments,
// histogram readout, tracer recording/gating/ring-buffer, and both
// exporters (Chrome trace JSON, deterministic text dump, metrics CSV).
#include <gtest/gtest.h>

#include <string>

#include "obs/obs.hpp"
#include "sim/simulator.hpp"

namespace memfss::obs {
namespace {

// --- instruments -------------------------------------------------------------

TEST(Counter, IncrementsByDelta) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, TracksValueAndPeak) {
  Gauge g;
  g.set(3.0);
  g.set(9.0);
  g.set(5.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  EXPECT_DOUBLE_EQ(g.peak(), 9.0);
  g.add(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(Histogram, EmptySummaryIsZero) {
  Histogram h;
  const auto s = h.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(Histogram, SingleObservationQuantilesHitIt) {
  Histogram h;
  h.add(0.125);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.125);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.125);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.125);
  EXPECT_DOUBLE_EQ(h.mean(), 0.125);
}

TEST(Histogram, QuantilesBoundedByObservedRange) {
  Histogram h;
  for (double x : {1e-6, 1e-4, 1e-2, 1.0, 10.0}) h.add(x);
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, h.min());
    EXPECT_LE(v, h.max());
  }
}

TEST(Histogram, QuantileRelativeErrorBoundedByGrowth) {
  Histogram h;
  // All mass at one value: every quantile must land within one bucket
  // (relative error <= growth - 1) of it.
  const double v = 0.0333;
  for (int i = 0; i < 1000; ++i) h.add(v);
  for (double q : {0.1, 0.5, 0.95}) {
    EXPECT_NEAR(h.quantile(q), v, v * (h.layout().growth - 1.0) + 1e-12);
  }
}

TEST(Histogram, OutOfRangeValuesClampNotDrop) {
  Histogram h;
  h.add(-5.0);   // below: bucket 0
  h.add(0.0);    // at/below lo: bucket 0
  h.add(1e12);   // far above the top bound: clamps to the last bucket
  EXPECT_EQ(h.count(), 3u);
  std::uint64_t total = 0;
  for (auto c : h.buckets()) total += c;
  EXPECT_EQ(total, 3u);
}

TEST(Histogram, ResetClearsEverything) {
  Histogram h;
  h.add(1.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  for (auto c : h.buckets()) EXPECT_EQ(c, 0u);
}

TEST(Histogram, BucketBoundsAreContiguous) {
  Histogram h;
  const auto& lay = h.layout();
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), lay.lo);
  for (std::size_t i = 1; i < 10; ++i)
    EXPECT_DOUBLE_EQ(h.bucket_lo(i), h.bucket_hi(i - 1));
}

// --- registry ----------------------------------------------------------------

TEST(MetricsRegistry, SameNameReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(reg.counter_value("x"), 1u);
  EXPECT_EQ(reg.counter_value("missing"), 0u);
}

TEST(MetricsRegistry, InstrumentReferencesSurviveGrowth) {
  // The registry must be usable with cached pointers from hot paths:
  // creating many instruments must not invalidate earlier references.
  MetricsRegistry reg;
  Counter& first = reg.counter("first");
  Histogram& h = reg.histogram("h");
  for (int i = 0; i < 200; ++i) reg.counter("c" + std::to_string(i));
  for (int i = 0; i < 200; ++i) reg.histogram("h" + std::to_string(i));
  first.inc(7);
  h.add(0.5);
  EXPECT_EQ(reg.counter_value("first"), 7u);
  EXPECT_EQ(reg.histogram_summary("h").count, 1u);
}

TEST(MetricsRegistry, HistogramSummaryIsReadOnly) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.histogram_summary("never_created").count, 0u);
  EXPECT_EQ(reg.size(), 0u);  // the read did not create it
}

TEST(MetricsRegistry, SnapshotCoversEveryInstrument) {
  MetricsRegistry reg;
  reg.counter("ops").inc(3);
  reg.gauge("depth").set(2.5);
  reg.histogram("lat").add(0.001);
  const auto snap = reg.snapshot(12.0);
  EXPECT_DOUBLE_EQ(snap.at, 12.0);
  ASSERT_EQ(snap.rows.size(), 3u);
  const MetricRow* ops = snap.find("ops");
  ASSERT_NE(ops, nullptr);
  EXPECT_EQ(ops->kind, MetricRow::Kind::counter);
  EXPECT_EQ(ops->count, 3u);
  const MetricRow* depth = snap.find("depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_DOUBLE_EQ(depth->value, 2.5);
  const MetricRow* lat = snap.find("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->hist.count, 1u);
  EXPECT_EQ(snap.find("absent"), nullptr);
}

TEST(MetricsRegistry, CsvHasHeaderAndOneRowPerInstrument) {
  MetricsRegistry reg;
  reg.counter("a").inc();
  reg.gauge("b").set(1.0);
  reg.histogram("c").add(0.5);
  const std::string csv = reg.snapshot().to_csv();
  EXPECT_NE(csv.find("kind,name,count,value,peak,sum,min,max,p50,p95,p99"),
            std::string::npos);
  std::size_t lines = 0;
  for (char ch : csv)
    if (ch == '\n') ++lines;
  EXPECT_EQ(lines, 4u);  // header + 3 rows
  EXPECT_NE(csv.find("counter,a"), std::string::npos);
  EXPECT_NE(csv.find("gauge,b"), std::string::npos);
  EXPECT_NE(csv.find("histogram,c"), std::string::npos);
}

// --- tracer ------------------------------------------------------------------

TEST(Tracer, DisabledComponentsRecordNothing) {
  sim::Simulator sim;
  Tracer tr(sim);
  EXPECT_FALSE(tr.any_enabled());
  tr.instant(Component::fs, 0, "x");
  tr.span(Component::net, 1, "y", 0.0);
  EXPECT_EQ(tr.events().size(), 0u);
  tr.enable(Component::fs);
  EXPECT_TRUE(tr.enabled(Component::fs));
  EXPECT_FALSE(tr.enabled(Component::net));
  tr.instant(Component::fs, 0, "x");
  tr.span(Component::net, 1, "y", 0.0);  // still gated off
  EXPECT_EQ(tr.events().size(), 1u);
}

TEST(Tracer, SpanMeasuresSimTime) {
  sim::Simulator sim;
  Tracer tr(sim);
  tr.enable_all(true);
  const SimTime t0 = sim.now();
  sim.schedule(2.5, [&] { tr.span(Component::kvstore, 3, "op", t0, "k=v"); });
  sim.run();
  ASSERT_EQ(tr.events().size(), 1u);
  const TraceEvent& ev = tr.events().front();
  EXPECT_EQ(ev.phase, 'X');
  EXPECT_DOUBLE_EQ(ev.ts, 0.0);
  EXPECT_DOUBLE_EQ(ev.dur, 2.5);
  EXPECT_EQ(ev.comp, Component::kvstore);
  EXPECT_EQ(ev.node, 3u);
  EXPECT_EQ(ev.name, "op");
  EXPECT_EQ(ev.detail, "k=v");
}

TEST(Tracer, RingBufferDropsOldest) {
  sim::Simulator sim;
  Tracer tr(sim);
  tr.enable_all(true);
  tr.set_capacity(4);
  for (int i = 0; i < 10; ++i)
    tr.instant(Component::fs, 0, "e" + std::to_string(i));
  EXPECT_EQ(tr.events().size(), 4u);
  EXPECT_EQ(tr.recorded(), 10u);
  EXPECT_EQ(tr.dropped(), 6u);
  EXPECT_EQ(tr.events().front().name, "e6");  // oldest surviving
  EXPECT_EQ(tr.events().back().name, "e9");
}

TEST(Tracer, ChromeJsonIsWellFormed) {
  sim::Simulator sim;
  Tracer tr(sim);
  tr.enable_all(true);
  tr.instant(Component::cluster, kInvalidNode, "fault.crash", "n=2");
  tr.span(Component::fs, 1, "write \"q\"", 0.0, "path\\x");
  const std::string j = tr.chrome_json();
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(j.find("\"cat\":\"cluster\""), std::string::npos);
  EXPECT_NE(j.find("\"tid\":-1"), std::string::npos);  // kInvalidNode
  // Quotes and backslashes in names/details must be escaped.
  EXPECT_NE(j.find("write \\\"q\\\""), std::string::npos);
  EXPECT_NE(j.find("path\\\\x"), std::string::npos);
  // Balanced braces/brackets (crude but catches truncation bugs).
  int braces = 0, brackets = 0;
  bool in_str = false;
  for (std::size_t i = 0; i < j.size(); ++i) {
    const char c = j[i];
    if (in_str) {
      if (c == '\\') ++i;
      else if (c == '"') in_str = false;
      continue;
    }
    if (c == '"') in_str = true;
    else if (c == '{') ++braces;
    else if (c == '}') --braces;
    else if (c == '[') ++brackets;
    else if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Tracer, TextDumpOneLinePerEvent) {
  sim::Simulator sim;
  Tracer tr(sim);
  tr.enable_all(true);
  tr.instant(Component::fs, 2, "a");
  tr.instant(Component::net, kInvalidNode, "b", "d=1");
  const std::string dump = tr.text_dump();
  std::size_t lines = 0;
  for (char c : dump)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(dump.find("fs"), std::string::npos);
  EXPECT_NE(dump.find("n=-"), std::string::npos);  // invalid node marker
}

TEST(Tracer, ClearResetsBufferNotEnableMask) {
  sim::Simulator sim;
  Tracer tr(sim);
  tr.enable(Component::fs);
  tr.instant(Component::fs, 0, "x");
  tr.clear();
  EXPECT_EQ(tr.events().size(), 0u);
  EXPECT_TRUE(tr.enabled(Component::fs));
}

TEST(Observability, BundlesRegistryAndTracer) {
  sim::Simulator sim;
  Observability obs(sim);
  obs.metrics.counter("c").inc();
  obs.tracer.enable(Component::workflow);
  obs.tracer.instant(Component::workflow, 0, "t");
  EXPECT_EQ(obs.metrics.counter_value("c"), 1u);
  EXPECT_EQ(obs.tracer.events().size(), 1u);
}

}  // namespace
}  // namespace memfss::obs
