#include "erasure/reed_solomon.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"
#include "erasure/gf256_simd.hpp"

namespace memfss::erasure {
namespace {

std::vector<std::uint8_t> random_payload(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = std::uint8_t(rng.next_u64());
  return v;
}

TEST(ReedSolomon, EncodeShapes) {
  ReedSolomon rs(4, 2);
  EXPECT_EQ(rs.data_shards(), 4u);
  EXPECT_EQ(rs.parity_shards(), 2u);
  EXPECT_EQ(rs.total_shards(), 6u);
  EXPECT_EQ(rs.shard_size(100), 25u);
  EXPECT_EQ(rs.shard_size(101), 26u);

  const auto data = random_payload(100, 1);
  const auto shards = rs.encode(data);
  ASSERT_EQ(shards.size(), 6u);
  for (const auto& s : shards) EXPECT_EQ(s.size(), 25u);
}

TEST(ReedSolomon, SystematicDataShardsVerbatim) {
  ReedSolomon rs(3, 2);
  const auto data = random_payload(90, 2);
  const auto shards = rs.encode(data);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 30; ++j)
      EXPECT_EQ(shards[i][j], data[i * 30 + j]);
  }
}

TEST(ReedSolomon, DecodeWithNoLoss) {
  ReedSolomon rs(4, 2);
  const auto data = random_payload(1000, 3);
  auto shards = rs.encode(data);
  auto decoded = rs.decode(shards, data.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), data);
}

struct LossCase {
  std::size_t k, m;
  std::vector<std::size_t> lost;
};

class LossRecovery : public ::testing::TestWithParam<LossCase> {};

TEST_P(LossRecovery, RecoversUpToMLosses) {
  const auto& c = GetParam();
  ReedSolomon rs(c.k, c.m);
  const auto data = random_payload(997, 7 + c.k);  // odd size: padding path
  auto shards = rs.encode(data);
  for (auto i : c.lost) shards[i].clear();
  auto decoded = rs.decode(shards, data.size());
  ASSERT_TRUE(decoded.ok()) << "k=" << c.k << " m=" << c.m;
  EXPECT_EQ(decoded.value(), data);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, LossRecovery,
    ::testing::Values(
        LossCase{4, 2, {0}},          // one data shard
        LossCase{4, 2, {4}},          // one parity shard
        LossCase{4, 2, {1, 5}},       // data + parity
        LossCase{4, 2, {0, 1}},       // two data shards
        LossCase{4, 2, {4, 5}},       // both parity shards
        LossCase{6, 3, {0, 3, 7}},    // full parity budget
        LossCase{2, 1, {1}},          // minimal config
        LossCase{8, 4, {0, 2, 9, 11}},
        LossCase{1, 2, {0, 1}}));     // replication-like k=1

TEST(ReedSolomon, FailsBeyondParityBudget) {
  ReedSolomon rs(4, 2);
  const auto data = random_payload(512, 9);
  auto shards = rs.encode(data);
  shards[0].clear();
  shards[1].clear();
  shards[2].clear();  // 3 losses > m=2
  auto decoded = rs.decode(shards, data.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, Errc::corruption);
}

TEST(ReedSolomon, ReconstructRebuildsAllShards) {
  ReedSolomon rs(5, 3);
  const auto data = random_payload(2000, 11);
  const auto original = rs.encode(data);
  auto shards = original;
  shards[1].clear();
  shards[6].clear();
  ASSERT_TRUE(rs.reconstruct(shards).ok());
  for (std::size_t i = 0; i < shards.size(); ++i)
    EXPECT_EQ(shards[i], original[i]) << "shard " << i;
}

TEST(ReedSolomon, ReconstructRejectsBadInput) {
  ReedSolomon rs(4, 2);
  std::vector<std::vector<std::uint8_t>> wrong_count(3);
  EXPECT_EQ(rs.reconstruct(wrong_count).code(), Errc::invalid_argument);

  auto shards = rs.encode(random_payload(64, 13));
  shards[0].resize(3);  // inconsistent shard size
  EXPECT_EQ(rs.reconstruct(shards).code(), Errc::invalid_argument);
}

TEST(ReedSolomon, ZeroParityIsPlainStriping) {
  ReedSolomon rs(4, 0);
  const auto data = random_payload(128, 15);
  auto shards = rs.encode(data);
  EXPECT_EQ(shards.size(), 4u);
  auto decoded = rs.decode(shards, data.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), data);
}

TEST(ReedSolomon, EmptyPayload) {
  ReedSolomon rs(4, 2);
  auto shards = rs.encode({});
  EXPECT_EQ(shards.size(), 6u);
  auto decoded = rs.decode(shards, 0);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().empty());
}

TEST(ReedSolomon, EncodeIntoMatchesEncode) {
  ReedSolomon rs(8, 3);
  for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{97},
                          std::size_t{4096}, std::size_t{100001}}) {
    const auto data = random_payload(len, 21 + len);
    const auto expect = rs.encode(data);
    const std::size_t ss = rs.shard_size(len);
    std::vector<std::uint8_t> arena(rs.total_shards() * ss, 0xEE);
    std::vector<std::uint8_t*> ptrs(rs.total_shards());
    for (std::size_t i = 0; i < ptrs.size(); ++i)
      ptrs[i] = arena.data() + i * ss;
    ASSERT_TRUE(rs.encode_into(data, ptrs.data(), ss).ok()) << len;
    for (std::size_t i = 0; i < rs.total_shards(); ++i)
      ASSERT_TRUE(std::equal(expect[i].begin(), expect[i].end(), ptrs[i]))
          << "len=" << len << " shard=" << i;
  }
}

TEST(ReedSolomon, EncodeIntoRejectsWrongShardSize) {
  ReedSolomon rs(4, 2);
  const auto data = random_payload(100, 23);
  std::vector<std::uint8_t> arena(6 * 26);
  std::vector<std::uint8_t*> ptrs(6);
  for (std::size_t i = 0; i < 6; ++i) ptrs[i] = arena.data() + i * 26;
  EXPECT_EQ(rs.encode_into(data, ptrs.data(), 26).code(),
            Errc::invalid_argument);  // shard_size(100) == 25
}

// --- SIMD-vs-scalar coding equivalence (DESIGN.md §14) ----------------------

TEST(ReedSolomon, KernelPinningIsVisible) {
  const erasure::GF256Kernels* sc = gf256_kernels_by_name("scalar");
  ASSERT_NE(sc, nullptr);
  EXPECT_STREQ(ReedSolomon(4, 2, sc).kernel_name(), "scalar");
  EXPECT_STREQ(ReedSolomon(4, 2).kernel_name(), gf256_kernel_name());
}

TEST(ReedSolomon, EveryBackendEncodesIdentically) {
  const GF256Kernels* sc = gf256_kernels_by_name("scalar");
  ASSERT_NE(sc, nullptr);
  Rng rng(29);
  for (const char* name : {"ssse3", "avx2"}) {
    const GF256Kernels* kn = gf256_kernels_by_name(name);
    if (kn == nullptr) continue;  // host cannot run this backend
    for (int iter = 0; iter < 40; ++iter) {
      const std::size_t k = 1 + rng.next_u64() % 17;
      const std::size_t m = rng.next_u64() % 7;
      const std::size_t len = rng.next_u64() % 3000;
      ReedSolomon simd(k, m, kn), scalar(k, m, sc);
      const auto data = random_payload(len, 31 + std::uint64_t(iter));
      ASSERT_EQ(simd.encode(data), scalar.encode(data))
          << name << " k=" << k << " m=" << m << " len=" << len;
    }
  }
}

TEST(ReedSolomon, EveryBackendDecodesIdentically) {
  const GF256Kernels* sc = gf256_kernels_by_name("scalar");
  ASSERT_NE(sc, nullptr);
  Rng rng(37);
  for (const char* name : {"ssse3", "avx2"}) {
    const GF256Kernels* kn = gf256_kernels_by_name(name);
    if (kn == nullptr) continue;
    for (int iter = 0; iter < 40; ++iter) {
      const std::size_t k = 1 + rng.next_u64() % 17;
      const std::size_t m = 1 + rng.next_u64() % 6;
      const std::size_t len = 1 + rng.next_u64() % 3000;
      ReedSolomon simd(k, m, kn), scalar(k, m, sc);
      const auto data = random_payload(len, 41 + std::uint64_t(iter));
      auto shards = simd.encode(data);
      // Knock out a random subset within the parity budget.
      std::vector<std::size_t> idx(k + m);
      std::iota(idx.begin(), idx.end(), 0);
      for (std::size_t i = idx.size() - 1; i > 0; --i)
        std::swap(idx[i], idx[rng.next_u64() % (i + 1)]);
      const std::size_t losses = rng.next_u64() % (m + 1);
      for (std::size_t l = 0; l < losses; ++l) shards[idx[l]].clear();
      auto a = simd.decode(shards, len);
      auto b = scalar.decode(shards, len);
      ASSERT_TRUE(a.ok() && b.ok()) << name << " iter=" << iter;
      ASSERT_EQ(a.value(), b.value()) << name << " iter=" << iter;
      ASSERT_EQ(a.value(), data) << name << " iter=" << iter;
    }
  }
}

// Randomized reconstruct fuzz: random (k, m) up to (17, 6), random loss
// patterns up to m (must rebuild byte-for-byte) and beyond m (must fail
// with corruption, never crash).
TEST(ReedSolomon, ReconstructFuzzRandomLossPatterns) {
  Rng rng(43);
  for (int iter = 0; iter < 150; ++iter) {
    const std::size_t k = 1 + rng.next_u64() % 17;
    const std::size_t m = rng.next_u64() % 7;
    ReedSolomon rs(k, m);
    const auto data = random_payload(1 + rng.next_u64() % 2048,
                                     53 + std::uint64_t(iter));
    const auto original = rs.encode(data);
    std::vector<std::size_t> idx(k + m);
    std::iota(idx.begin(), idx.end(), 0);
    for (std::size_t i = idx.size() - 1; i > 0; --i)
      std::swap(idx[i], idx[rng.next_u64() % (i + 1)]);

    // Recoverable pattern: <= m losses.
    auto shards = original;
    const std::size_t losses = rng.next_u64() % (m + 1);
    for (std::size_t l = 0; l < losses; ++l) shards[idx[l]].clear();
    ASSERT_TRUE(rs.reconstruct(shards).ok())
        << "k=" << k << " m=" << m << " losses=" << losses;
    for (std::size_t i = 0; i < shards.size(); ++i)
      ASSERT_EQ(shards[i], original[i])
          << "iter=" << iter << " shard=" << i;

    // Unrecoverable pattern: m+1 losses (when that leaves < k shards'
    // worth of information, i.e. always) must fail cleanly.
    auto torn = original;
    for (std::size_t l = 0; l < m + 1 && l < idx.size(); ++l)
      torn[idx[l]].clear();
    if (m + 1 <= k + m) {
      auto st = rs.reconstruct(torn);
      ASSERT_FALSE(st.ok()) << "k=" << k << " m=" << m;
      EXPECT_EQ(st.code(), Errc::corruption);
    }
  }
}

TEST(ReedSolomon, MemoryOverheadIsMOverK) {
  // The paper's motivation for EC over replication: RS(4,2) costs 1.5x,
  // 3-way replication costs 3x.
  ReedSolomon rs(4, 2);
  const std::size_t payload = 1 * 1024 * 1024;
  const auto shards = rs.encode(random_payload(payload, 17));
  std::size_t stored = 0;
  for (const auto& s : shards) stored += s.size();
  EXPECT_NEAR(double(stored) / double(payload), 1.5, 0.01);
}

}  // namespace
}  // namespace memfss::erasure
