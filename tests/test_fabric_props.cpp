// Property tests for the fabric's max-min fair allocation: randomized
// flow sets must respect link capacities, per-flow caps, cap groups, and
// the one-sided fairness criterion (no flow could go faster without
// slowing a smaller-or-equal one).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "net/fabric.hpp"

namespace memfss::net {
namespace {

struct FlowPlan {
  NodeId src, dst;
  Bytes size;
  Rate cap;
  int group;  // -1 = none
};

struct FlowDone {
  double finish = -1;
};

sim::Task<> run_flow(sim::Simulator& sim, Fabric& fab, FlowPlan plan,
                     CapGroup* group, FlowDone& done) {
  co_await fab.transfer(plan.src, plan.dst, plan.size, plan.cap, group);
  done.finish = sim.now();
}

class FabricRandomFlows : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FabricRandomFlows, CapacityAndCapInvariants) {
  Rng rng(GetParam());
  sim::Simulator sim;
  const std::size_t nodes = 4 + std::size_t(rng.uniform_u64(0, 6));
  NicSpec nic;
  nic.up = rng.uniform(50.0, 200.0);
  nic.down = rng.uniform(50.0, 200.0);
  nic.latency = 0.001;
  Fabric fab(sim, nodes, nic);
  std::vector<std::unique_ptr<CapGroup>> groups;
  for (int g = 0; g < 2; ++g)
    groups.push_back(std::make_unique<CapGroup>(rng.uniform(5.0, 50.0)));

  const std::size_t n = 2 + std::size_t(rng.uniform_u64(0, 20));
  std::vector<FlowPlan> plans(n);
  std::vector<FlowDone> done(n);
  double total_bytes = 0.0;
  for (auto& p : plans) {
    p.src = NodeId(rng.uniform_u64(0, nodes - 1));
    do {
      p.dst = NodeId(rng.uniform_u64(0, nodes - 1));
    } while (p.dst == p.src);
    p.size = Bytes(rng.uniform_u64(10, 5000));
    p.cap = rng.chance(0.3) ? rng.uniform(1.0, 40.0) : Fabric::kUncapped;
    p.group = rng.chance(0.3) ? int(rng.uniform_u64(0, 1)) : -1;
    total_bytes += double(p.size);
  }
  for (std::size_t i = 0; i < n; ++i) {
    sim.spawn(run_flow(sim, fab, plans[i],
                       plans[i].group >= 0 ? groups[plans[i].group].get()
                                           : nullptr,
                       done[i]));
  }
  sim.run();

  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_GE(done[i].finish, 0.0) << "flow " << i << " never completed";
    // Lower bound: alone at min(cap, up, down), plus one latency.
    const double best_rate =
        std::min({plans[i].cap, nic.up, nic.down});
    EXPECT_GE(done[i].finish + 1e-6,
              nic.latency + double(plans[i].size) / best_rate)
        << "flow " << i;
  }
  EXPECT_EQ(fab.active_flows(), 0u);
  EXPECT_NEAR(fab.total_bytes_moved(), total_bytes, 1e-6);
  // Per-node telemetry is a sane fraction after drain.
  for (NodeId node = 0; node < nodes; ++node) {
    EXPECT_NEAR(fab.node_up_rate(node), 0.0, 1e-9);
    EXPECT_LE(fab.peak_up_utilization(node), 1.0 + 1e-6);
    EXPECT_LE(fab.peak_down_utilization(node), 1.0 + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FabricRandomFlows,
                         ::testing::Range<std::uint64_t>(1, 25));

TEST(FabricProps, CapGroupNeverExceedsLimit) {
  // Many flows through one group: the group's aggregate rate stays at
  // its ceiling, visible through the completion time of the batch.
  sim::Simulator sim;
  Fabric fab(sim, 6, NicSpec{1000.0, 1000.0, 0.0});
  CapGroup group(50.0);
  std::vector<FlowDone> done(5);
  for (std::size_t i = 0; i < done.size(); ++i) {
    sim.spawn(run_flow(sim, fab,
                       FlowPlan{NodeId(i % 5), 5, 100, Fabric::kUncapped, 0},
                       &group, done[i]));
  }
  sim.run();
  // 500 bytes through a 50/s group: 10s total.
  double last = 0;
  for (const auto& d : done) last = std::max(last, d.finish);
  EXPECT_NEAR(last, 10.0, 0.01);
}

TEST(FabricProps, MaxMinNoFlowStarves) {
  // A pathological hotspot: everyone sends to node 0. Every flow must
  // finish, and equal-size flows finish together (equal shares).
  sim::Simulator sim;
  Fabric fab(sim, 9, NicSpec{100.0, 100.0, 0.0});
  std::vector<FlowDone> done(8);
  for (std::size_t i = 0; i < 8; ++i) {
    sim.spawn(run_flow(sim, fab,
                       FlowPlan{NodeId(i + 1), 0, 125, Fabric::kUncapped, -1},
                       nullptr, done[i]));
  }
  sim.run();
  for (const auto& d : done) EXPECT_NEAR(d.finish, 10.0, 1e-6);
}

}  // namespace
}  // namespace memfss::net
