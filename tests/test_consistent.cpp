#include "hash/consistent.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/str.hpp"

namespace memfss::hash {
namespace {

TEST(ConsistentRing, SelectIsDeterministic) {
  ConsistentRing ring;
  for (NodeId n = 0; n < 8; ++n) ring.add_node(n);
  for (int k = 0; k < 200; ++k) {
    const std::string key = strformat("k%d", k);
    EXPECT_EQ(ring.select(key), ring.select(key));
  }
}

TEST(ConsistentRing, AddIsIdempotent) {
  ConsistentRing ring;
  ring.add_node(3);
  ring.add_node(3);
  EXPECT_EQ(ring.node_count(), 1u);
}

TEST(ConsistentRing, RemoveUnknownIsNoop) {
  ConsistentRing ring;
  ring.add_node(1);
  ring.remove_node(99);
  EXPECT_EQ(ring.node_count(), 1u);
}

TEST(ConsistentRing, BalanceWithVnodes) {
  ConsistentRing ring(128);
  const std::size_t nodes = 10;
  for (NodeId n = 0; n < nodes; ++n) ring.add_node(n);
  std::map<NodeId, int> counts;
  const int keys = 30000;
  for (int k = 0; k < keys; ++k) ++counts[ring.select(strformat("b%d", k))];
  for (const auto& [n, c] : counts)
    EXPECT_NEAR(c, keys / double(nodes), keys / double(nodes) * 0.35)
        << "node " << n;
}

TEST(ConsistentRing, MinimalDisruptionOnRemoval) {
  ConsistentRing ring;
  for (NodeId n = 0; n < 10; ++n) ring.add_node(n);
  std::map<std::string, NodeId> before;
  for (int k = 0; k < 3000; ++k) {
    const std::string key = strformat("d%d", k);
    before[key] = ring.select(key);
  }
  ring.remove_node(4);
  int moved = 0;
  for (const auto& [key, owner] : before) {
    const NodeId now = ring.select(key);
    if (owner != 4) {
      EXPECT_EQ(now, owner);  // unaffected keys must not move
    } else {
      EXPECT_NE(now, 4u);
      ++moved;
    }
  }
  EXPECT_NEAR(moved, 300, 150);
}

TEST(ConsistentRing, ReplicaSetDistinct) {
  ConsistentRing ring;
  for (NodeId n = 0; n < 6; ++n) ring.add_node(n);
  for (int k = 0; k < 200; ++k) {
    const auto reps = ring.select_top(strformat("r%d", k), 3);
    ASSERT_EQ(reps.size(), 3u);
    EXPECT_EQ(std::set<NodeId>(reps.begin(), reps.end()).size(), 3u);
    EXPECT_EQ(reps[0], ring.select(strformat("r%d", k)));
  }
}

TEST(ConsistentRing, ReplicaCountCappedByNodes) {
  ConsistentRing ring;
  ring.add_node(0);
  ring.add_node(1);
  EXPECT_EQ(ring.select_top("x", 5).size(), 2u);
}

TEST(ConsistentRing, ContainsTracksMembership) {
  ConsistentRing ring;
  EXPECT_FALSE(ring.contains(1));
  ring.add_node(1);
  EXPECT_TRUE(ring.contains(1));
  ring.remove_node(1);
  EXPECT_FALSE(ring.contains(1));
}

}  // namespace
}  // namespace memfss::hash
