#include "common/table.hpp"

#include <gtest/gtest.h>

namespace memfss {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const auto s = t.render();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("| alpha"), std::string::npos);
  EXPECT_NE(s.find("| 22"), std::string::npos);
  // Three horizontal rule lines: top, after header, bottom.
  std::size_t rules = 0;
  for (std::size_t pos = 0; pos < s.size();) {
    if (s[pos] == '+') ++rules;
    const auto nl = s.find('\n', pos);
    if (nl == std::string::npos) break;
    pos = nl + 1;
  }
  EXPECT_EQ(rules, 3u);
}

TEST(Table, TitleIsPrinted) {
  Table t({"a"});
  t.set_title("Figure 2f");
  EXPECT_EQ(t.render().rfind("Figure 2f", 0), 0u);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  const auto s = t.render();
  EXPECT_NE(s.find("| only |"), std::string::npos);
}

TEST(Table, NumericRowPrecision) {
  Table t({"label", "x", "y"});
  t.add_row_numeric("r", {1.23456, 2.0}, 3);
  const auto s = t.render();
  EXPECT_NE(s.find("1.235"), std::string::npos);
  EXPECT_NE(s.find("2.000"), std::string::npos);
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table t({"h"});
  t.add_row({"wide-cell-content"});
  const auto s = t.render();
  EXPECT_NE(s.find("| h                 |"), std::string::npos);
}

}  // namespace
}  // namespace memfss
