#include "common/table.hpp"

#include <gtest/gtest.h>

namespace memfss {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const auto s = t.render();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("| alpha"), std::string::npos);
  EXPECT_NE(s.find("| 22"), std::string::npos);
  // Three horizontal rule lines: top, after header, bottom.
  std::size_t rules = 0;
  for (std::size_t pos = 0; pos < s.size();) {
    if (s[pos] == '+') ++rules;
    const auto nl = s.find('\n', pos);
    if (nl == std::string::npos) break;
    pos = nl + 1;
  }
  EXPECT_EQ(rules, 3u);
}

TEST(Table, TitleIsPrinted) {
  Table t({"a"});
  t.set_title("Figure 2f");
  EXPECT_EQ(t.render().rfind("Figure 2f", 0), 0u);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  const auto s = t.render();
  EXPECT_NE(s.find("| only |"), std::string::npos);
}

TEST(Table, NumericRowPrecision) {
  Table t({"label", "x", "y"});
  t.add_row_numeric("r", {1.23456, 2.0}, 3);
  const auto s = t.render();
  EXPECT_NE(s.find("1.235"), std::string::npos);
  EXPECT_NE(s.find("2.000"), std::string::npos);
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table t({"h"});
  t.add_row({"wide-cell-content"});
  const auto s = t.render();
  EXPECT_NE(s.find("| h                 |"), std::string::npos);
}

// --- CSV escaping (RFC 4180) -------------------------------------------------

TEST(CsvEscape, PlainFieldsPassThrough) {
  EXPECT_EQ(csv_escape("alpha"), "alpha");
  EXPECT_EQ(csv_escape("1.25"), "1.25");
  EXPECT_EQ(csv_escape("a b c"), "a b c");  // spaces alone need no quoting
}

TEST(CsvEscape, EmptyFieldStaysEmpty) {
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, CommaTriggersQuoting) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape(","), "\",\"");
}

TEST(CsvEscape, QuotesAreDoubledAndWrapped) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("\""), "\"\"\"\"");
}

TEST(CsvEscape, NewlinesTriggerQuoting) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
  EXPECT_EQ(csv_escape("a\r\nb"), "\"a\r\nb\"");
}

TEST(CsvRow, JoinsEscapedFields) {
  EXPECT_EQ(csv_row({"a", "b", "c"}), "a,b,c");
  EXPECT_EQ(csv_row({"a,x", "b"}), "\"a,x\",b");
}

TEST(CsvRow, EmptyFieldsKeepTheirColumns) {
  // Empty fields must still occupy a column, including at the edges --
  // a parser must see exactly fields.size() columns.
  EXPECT_EQ(csv_row({"", "mid", ""}), ",mid,");
  EXPECT_EQ(csv_row({"", "", ""}), ",,");
}

TEST(CsvRow, SingleAndNoFields) {
  EXPECT_EQ(csv_row({"only"}), "only");
  EXPECT_EQ(csv_row({}), "");
}

}  // namespace
}  // namespace memfss
