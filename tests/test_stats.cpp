#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace memfss {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 3.0);
}

TEST(Percentile, EdgesAndInterpolation) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_EQ(percentile(v, 0), 10.0);
  EXPECT_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
  EXPECT_EQ(percentile({}, 50), 0.0);
  EXPECT_EQ(percentile({7.0}, 99), 7.0);
}

TEST(MeanOf, Basics) {
  EXPECT_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
}

TEST(TimeWeighted, PiecewiseConstantAverage) {
  TimeWeighted tw;
  tw.set(0.0, 1.0);   // 1.0 for [0, 10)
  tw.set(10.0, 3.0);  // 3.0 for [10, 20)
  EXPECT_DOUBLE_EQ(tw.average(20.0), 2.0);
  EXPECT_DOUBLE_EQ(tw.current(), 3.0);
  EXPECT_DOUBLE_EQ(tw.peak(), 3.0);
}

TEST(TimeWeighted, IntegralWindows) {
  TimeWeighted tw;
  tw.set(0.0, 2.0);
  tw.set(5.0, 4.0);
  const double i5 = tw.integral_until(5.0);
  const double i10 = tw.integral_until(10.0);
  EXPECT_DOUBLE_EQ(i5, 10.0);
  EXPECT_DOUBLE_EQ((i10 - i5) / 5.0, 4.0);  // window average [5, 10)
}

TEST(TimeWeighted, BeforeFirstSampleIsZero) {
  TimeWeighted tw;
  EXPECT_EQ(tw.average(10.0), 0.0);
  tw.set(5.0, 1.0);
  EXPECT_EQ(tw.average(5.0), 0.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps to bin 0
  h.add(0.5);
  h.add(9.99);
  h.add(100.0);  // clamps to last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Histogram, RenderContainsBars) {
  Histogram h(0.0, 1.0, 2);
  for (int i = 0; i < 10; ++i) h.add(0.25);
  const auto s = h.render(10);
  EXPECT_NE(s.find("##########"), std::string::npos);
}

}  // namespace
}  // namespace memfss
