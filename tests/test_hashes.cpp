#include "hash/hashes.hpp"

#include <gtest/gtest.h>

#include <set>

namespace memfss::hash {
namespace {

TEST(TrWeight, DeterministicAnd31Bit) {
  for (std::uint32_t s = 0; s < 100; ++s) {
    for (std::uint32_t k = 0; k < 100; k += 7) {
      const auto w1 = tr_weight(s, k);
      const auto w2 = tr_weight(s, k);
      EXPECT_EQ(w1, w2);
      EXPECT_LT(w1, 1u << 31);
    }
  }
}

TEST(TrWeight, SensitiveToBothArguments) {
  EXPECT_NE(tr_weight(1, 100), tr_weight(2, 100));
  EXPECT_NE(tr_weight(1, 100), tr_weight(1, 101));
}

TEST(Fnv1a, KnownVectors) {
  // Standard FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ull);
}

TEST(Mix64, DispersesLowBitChanges) {
  // Flipping one input bit should flip roughly half the output bits.
  int total_flips = 0;
  const int trials = 256;
  for (int i = 0; i < trials; ++i) {
    const auto a = mix64(i, 12345);
    const auto b = mix64(i ^ 1, 12345);
    total_flips += __builtin_popcountll(a ^ b);
  }
  const double avg = double(total_flips) / trials;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(Mix64, NoObviousCollisions) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) seen.insert(mix64(i, 7));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(Fold31, InRange) {
  for (std::uint64_t x : {0ull, 1ull, ~0ull, 0xdeadbeefcafebabeull}) {
    EXPECT_LT(fold31(x), 1u << 31);
  }
}

TEST(KeyDigest, MatchesFnv) {
  EXPECT_EQ(key_digest("stripe-17"), fnv1a("stripe-17"));
}

}  // namespace
}  // namespace memfss::hash
