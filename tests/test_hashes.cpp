#include "hash/hashes.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace memfss::hash {
namespace {

TEST(TrWeight, DeterministicAnd31Bit) {
  for (std::uint32_t s = 0; s < 100; ++s) {
    for (std::uint32_t k = 0; k < 100; k += 7) {
      const auto w1 = tr_weight(s, k);
      const auto w2 = tr_weight(s, k);
      EXPECT_EQ(w1, w2);
      EXPECT_LT(w1, 1u << 31);
    }
  }
}

TEST(TrWeight, SensitiveToBothArguments) {
  EXPECT_NE(tr_weight(1, 100), tr_weight(2, 100));
  EXPECT_NE(tr_weight(1, 100), tr_weight(1, 101));
}

TEST(Fnv1a, KnownVectors) {
  // Standard FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ull);
}

TEST(Mix64, DispersesLowBitChanges) {
  // Flipping one input bit should flip roughly half the output bits.
  int total_flips = 0;
  const int trials = 256;
  for (int i = 0; i < trials; ++i) {
    const auto a = mix64(i, 12345);
    const auto b = mix64(i ^ 1, 12345);
    total_flips += __builtin_popcountll(a ^ b);
  }
  const double avg = double(total_flips) / trials;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(Mix64, NoObviousCollisions) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) seen.insert(mix64(i, 7));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(Fold31, InRange) {
  for (std::uint64_t x : {0ull, 1ull, ~0ull, 0xdeadbeefcafebabeull}) {
    EXPECT_LT(fold31(x), 1u << 31);
  }
}

TEST(KeyDigest, MatchesFnv) {
  EXPECT_EQ(key_digest("stripe-17"), fnv1a("stripe-17"));
}

// The batched digest loop must be bit-identical to fnv1a per key: its
// output feeds placement, where a single differing digest silently
// moves data.
TEST(Fnv1aMany, MatchesSingleShotEveryBatchShape) {
  // Every batch size around the 4-lane grouping (0..9 covers full
  // groups, partial tails, and the empty batch) with mixed-length keys,
  // including empty ones.
  std::vector<std::string> pool;
  for (int i = 0; i < 16; ++i)
    pool.push_back(std::string(std::size_t(i) * 3, char('a' + i)) +
                   std::to_string(i * 131071));
  pool[3].clear();
  pool[11].clear();
  for (std::size_t n = 0; n <= pool.size(); ++n) {
    std::vector<std::string_view> keys(pool.begin(),
                                       pool.begin() + std::ptrdiff_t(n));
    std::vector<std::uint64_t> out(n, 0xDEAD);
    fnv1a_many(keys, out);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(out[i], fnv1a(keys[i])) << "n=" << n << " i=" << i;
  }
}

TEST(Fnv1aMany, MatchesSingleShotLargeUniformBatch) {
  // The bench shape: many keys of identical length, so the interleaved
  // lanes run the full lockstep loop with no serial tail.
  std::vector<std::string> keys;
  for (int i = 0; i < 1000; ++i)
    keys.push_back("i12345:" + std::to_string(1000000 + i) +
                   ":stripe-payload-key");
  std::vector<std::string_view> views(keys.begin(), keys.end());
  std::vector<std::uint64_t> out(views.size());
  fnv1a_many(views, out);
  for (std::size_t i = 0; i < views.size(); ++i)
    ASSERT_EQ(out[i], fnv1a(views[i])) << i;
}

TEST(Fnv1aMany, KnownVectors) {
  const std::vector<std::string_view> keys{"", "a", "foobar"};
  std::vector<std::uint64_t> out(3);
  fnv1a_many(keys, out);
  EXPECT_EQ(out[0], 0xcbf29ce484222325ull);
  EXPECT_EQ(out[1], 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(out[2], 0x85944171f73967e8ull);
}

}  // namespace
}  // namespace memfss::hash
