#include "hash/hrw.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/str.hpp"
#include "hash/hashes.hpp"

namespace memfss::hash {
namespace {

std::vector<NodeId> make_nodes(std::size_t n, NodeId base = 0) {
  std::vector<NodeId> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = base + static_cast<NodeId>(i);
  return v;
}

class HrwScoreFnTest : public ::testing::TestWithParam<ScoreFn> {};

TEST_P(HrwScoreFnTest, SelectIsDeterministicAndOrderIndependent) {
  auto nodes = make_nodes(16);
  for (int k = 0; k < 200; ++k) {
    const std::string key = strformat("key-%d", k);
    const NodeId a = hrw_select(key, nodes, GetParam());
    auto shuffled = nodes;
    std::reverse(shuffled.begin(), shuffled.end());
    EXPECT_EQ(a, hrw_select(key, shuffled, GetParam()));
  }
}

TEST_P(HrwScoreFnTest, TopKAreDistinctAndPrefixConsistent) {
  auto nodes = make_nodes(10);
  for (int k = 0; k < 100; ++k) {
    const std::string key = strformat("k%d", k);
    const auto top3 = hrw_top(key, nodes, 3, GetParam());
    ASSERT_EQ(top3.size(), 3u);
    EXPECT_EQ(std::set<NodeId>(top3.begin(), top3.end()).size(), 3u);
    EXPECT_EQ(top3[0], hrw_select(key, nodes, GetParam()));
    const auto rank = hrw_rank(key, nodes, GetParam());
    ASSERT_EQ(rank.size(), nodes.size());
    for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(rank[i], top3[i]);
  }
}

TEST_P(HrwScoreFnTest, MinimalDisruptionOnRemoval) {
  auto nodes = make_nodes(12);
  std::map<std::string, NodeId> before;
  for (int k = 0; k < 2000; ++k) {
    const std::string key = strformat("obj-%d", k);
    before[key] = hrw_select(key, nodes, GetParam());
  }
  const NodeId removed = 5;
  auto fewer = nodes;
  fewer.erase(std::find(fewer.begin(), fewer.end(), removed));
  int moved = 0;
  for (const auto& [key, owner] : before) {
    const NodeId now = hrw_select(key, fewer, GetParam());
    if (owner == removed) {
      // Keys of the removed node must move to their rank-2 node.
      EXPECT_EQ(now, hrw_rank(key, nodes, GetParam())[1]);
    } else {
      // Everyone else stays put: that is the whole point of HRW.
      EXPECT_EQ(now, owner);
      continue;
    }
    ++moved;
  }
  // About 1/12 of the keys should have moved.
  EXPECT_NEAR(moved, 2000 / 12, 60);
}

TEST_P(HrwScoreFnTest, LoadIsRoughlyUniform) {
  auto nodes = make_nodes(8);
  std::map<NodeId, int> counts;
  const int keys = 16000;
  for (int k = 0; k < keys; ++k)
    ++counts[hrw_select(strformat("u%d", k), nodes, GetParam())];
  for (const auto& [n, c] : counts) {
    EXPECT_NEAR(c, keys / 8, keys / 8 * 0.15) << "node " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(BothScoreFns, HrwScoreFnTest,
                         ::testing::Values(ScoreFn::mix64,
                                           ScoreFn::thaler_ravishankar),
                         [](const auto& info) {
                           return info.param == ScoreFn::mix64
                                      ? "mix64"
                                      : "thaler_ravishankar";
                         });

TEST(Hrw, SingleNodeAlwaysWins) {
  std::vector<NodeId> one{7};
  EXPECT_EQ(hrw_select("anything", one), 7u);
  EXPECT_EQ(hrw_top("anything", one, 3).size(), 1u);
}

TEST(Hrw, TopCountLargerThanNodes) {
  auto nodes = make_nodes(3);
  EXPECT_EQ(hrw_top("k", nodes, 10).size(), 3u);
}

TEST(Hrw, ScoreMatchesSelection) {
  auto nodes = make_nodes(6);
  const std::string key = "score-check";
  const NodeId winner = hrw_select(key, nodes);
  for (NodeId n : nodes) {
    EXPECT_LE(hrw_score(n, key), hrw_score(winner, key));
  }
}

// Batch selection must agree with single-shot selection digest for
// digest -- the interleaved lanes change the evaluation order, never
// the winner (same score function, same lower-id tie-break).
TEST_P(HrwScoreFnTest, SelectManyMatchesSingleShot) {
  for (std::size_t servers : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                              std::size_t{33}}) {
    const auto nodes = make_nodes(servers, 3);
    // Batch sizes straddling the 4-lane grouping, plus a big batch.
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                          std::size_t{4}, std::size_t{5}, std::size_t{8},
                          std::size_t{257}}) {
      std::vector<std::uint64_t> digests(n);
      for (std::size_t i = 0; i < n; ++i)
        digests[i] = key_digest(strformat("batch-%zu-%zu", servers, i));
      std::vector<NodeId> out(n, NodeId(~0u));
      hrw_select_many(digests, nodes, out, GetParam());
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(out[i], hrw_select(digests[i], nodes, GetParam()))
            << "servers=" << servers << " n=" << n << " i=" << i;
    }
  }
}

TEST(Hrw, SelectManyHandlesDuplicateServerIds) {
  // Duplicate ids exercise the tie-break path (identical scores): batch
  // and single-shot must still agree.
  const std::vector<NodeId> nodes{4, 9, 4, 2, 9};
  std::vector<std::uint64_t> digests(16);
  for (std::size_t i = 0; i < digests.size(); ++i)
    digests[i] = key_digest(strformat("dup-%zu", i));
  std::vector<NodeId> out(digests.size());
  hrw_select_many(digests, nodes, out);
  for (std::size_t i = 0; i < digests.size(); ++i)
    EXPECT_EQ(out[i], hrw_select(digests[i], nodes)) << i;
}

}  // namespace
}  // namespace memfss::hash
