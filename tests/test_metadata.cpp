#include "fs/metadata.hpp"

#include <gtest/gtest.h>
#include "co_test.hpp"

#include "common/str.hpp"

namespace memfss::fs {
namespace {

struct Rig {
  sim::Simulator sim;
  cluster::Cluster cl{sim, 4};
  MetadataService meta{cl, {0, 1}};
};

TEST(Metadata, ShardingIsModuloOverOwnNodes) {
  Rig rig;
  bool saw0 = false, saw1 = false;
  for (int i = 0; i < 64; ++i) {
    const NodeId s = rig.meta.shard_for(strformat("/p%d", i));
    EXPECT_TRUE(s == 0 || s == 1);
    saw0 |= s == 0;
    saw1 |= s == 1;
    // Deterministic.
    EXPECT_EQ(s, rig.meta.shard_for(strformat("/p%d", i)));
  }
  EXPECT_TRUE(saw0 && saw1);
}

TEST(Metadata, OperationsChargeLatency) {
  Rig rig;
  SimTime done = -1;
  rig.sim.spawn([](Rig& r, SimTime& d) -> sim::Task<> {
    co_await r.meta.mkdirs(3, "/a/b");
    d = r.sim.now();
  }(rig, done));
  rig.sim.run();
  // At least one request+response round trip through the fabric.
  EXPECT_GT(done, 0.0);
  EXPECT_EQ(rig.meta.operation_count(), 1u);
}

TEST(Metadata, FullLifecycleThroughService) {
  Rig rig;
  rig.sim.spawn([](Rig& r) -> sim::Task<> {
    CO_ASSERT_TRUE((co_await r.meta.mkdirs(2, "/data")).ok());
    FileAttr attr;
    attr.stripe_size = 1024;
    auto ino = co_await r.meta.create(2, "/data/f", attr);
    CO_ASSERT_TRUE(ino.ok());
    CO_ASSERT_TRUE((co_await r.meta.set_size(2, ino.value(), 4096)).ok());
    auto st = co_await r.meta.stat(2, "/data/f");
    CO_ASSERT_TRUE(st.ok());
    EXPECT_EQ(st.value().stripe_count, 4u);
    auto listing = co_await r.meta.readdir(2, "/data");
    CO_ASSERT_TRUE(listing.ok());
    EXPECT_EQ(listing.value().size(), 1u);
    CO_ASSERT_TRUE((co_await r.meta.rename(2, "/data/f", "/data/g")).ok());
    auto gone = co_await r.meta.stat(2, "/data/f");
    EXPECT_EQ(gone.code(), Errc::not_found);
    auto removed = co_await r.meta.unlink(2, "/data/g");
    CO_ASSERT_TRUE(removed.ok());
    EXPECT_EQ(removed.value().inode, ino.value());
  }(rig));
  rig.sim.run();
  EXPECT_GE(rig.meta.operation_count(), 7u);
}

TEST(Metadata, FailsOverToNextShardWhenPrimaryIsCut) {
  Rig rig;
  // Find a path whose primary shard is node 1, then cut client<->1: the
  // operation must succeed via shard 0 and count one failover.
  std::string path;
  for (int i = 0; i < 64 && path.empty(); ++i) {
    auto p = strformat("/p%d", i);
    if (rig.meta.shard_for(p) == 1) path = p;
  }
  ASSERT_FALSE(path.empty());
  rig.cl.fabric().cut_link(3, 1);
  bool finished = false;
  rig.sim.spawn([](Rig& r, std::string p, bool& done) -> sim::Task<> {
    CO_ASSERT_TRUE((co_await r.meta.mkdirs(3, p)).ok());
    done = true;
  }(rig, path, finished));
  rig.sim.run();
  ASSERT_TRUE(finished);
  EXPECT_EQ(rig.meta.failover_count(), 1u);
}

TEST(Metadata, TotalPartitionFailsFastWithUnreachable) {
  Rig rig;
  rig.cl.fabric().isolate(3);  // client can reach neither shard
  Status st;
  bool finished = false;
  rig.sim.spawn([](Rig& r, Status& out, bool& done) -> sim::Task<> {
    out = co_await r.meta.mkdirs(3, "/a");
    done = true;
  }(rig, st, finished));
  rig.sim.run();
  ASSERT_TRUE(finished);  // fails fast, never wedges on a frozen flow
  EXPECT_EQ(st.code(), Errc::unreachable);
  EXPECT_EQ(rig.sim.now(), 0.0);  // zero simulated cost
  // A one-way cut is treated like a dead session too: reply link cut.
  rig.cl.fabric().heal_node(3);
  rig.cl.fabric().cut_link(0, 3, /*oneway=*/true);
  rig.cl.fabric().cut_link(1, 3, /*oneway=*/true);
  bool finished2 = false;
  rig.sim.spawn([](Rig& r, Status& out, bool& done) -> sim::Task<> {
    out = co_await r.meta.mkdirs(3, "/b");
    done = true;
  }(rig, st, finished2));
  rig.sim.run();
  ASSERT_TRUE(finished2);
  EXPECT_EQ(st.code(), Errc::unreachable);
}

TEST(Metadata, ResetClearsNamespace) {
  Rig rig;
  rig.sim.spawn([](Rig& r) -> sim::Task<> {
    FileAttr attr;
    attr.stripe_size = 1;
    co_await r.meta.create(0, "/f", attr);
  }(rig));
  rig.sim.run();
  EXPECT_EQ(rig.meta.ns().file_count(), 1u);
  rig.meta.reset();
  EXPECT_EQ(rig.meta.ns().file_count(), 0u);
}

}  // namespace
}  // namespace memfss::fs
