#include <gtest/gtest.h>

#include "exp/experiments.hpp"
#include "tenant/suites.hpp"

namespace memfss::exp {
namespace {

// Reduced-scale scenarios: same structure as the paper's 8+32 setup but
// small enough for unit-test latency.
ScenarioParams small_scenario() {
  ScenarioParams p;
  p.total_nodes = 10;
  p.own_nodes = 2;
  p.victim_memory_cap = 4 * units::GiB;
  p.stripe_size = 8 * units::MiB;
  return p;
}

TEST(Scenario, BuildsPaperShape) {
  Scenario sc(small_scenario());
  EXPECT_EQ(sc.own_nodes().size(), 2u);
  EXPECT_EQ(sc.victim_nodes().size(), 8u);
  // Victims carry claimed offers -> servers exist on all 10 nodes.
  for (NodeId n = 0; n < 10; ++n) EXPECT_TRUE(sc.fs().has_server(n));
  // The scavenging epoch is installed.
  EXPECT_EQ(sc.fs().current_epoch(), 1u);
}

TEST(Scenario, WithoutVictimsOnlyOwnServers) {
  auto p = small_scenario();
  p.with_victims = false;
  Scenario sc(p);
  EXPECT_TRUE(sc.fs().has_server(0));
  EXPECT_FALSE(sc.fs().has_server(5));
  EXPECT_EQ(sc.fs().current_epoch(), 0u);
}

TEST(Scenario, ReleaseReportsNodeHours) {
  Scenario sc(small_scenario());
  sc.sim().schedule(3600.0, [] {});
  sc.sim().run();
  EXPECT_NEAR(sc.release_own_reservation(), 2.0, 1e-9);  // 2 nodes x 1 h
}

TEST(Fig2, SmallScaleSweepHasPaperShape) {
  Fig2Options opt;
  opt.scenario = small_scenario();
  opt.dd_tasks = 64;
  opt.dd_bytes = 32 * units::MiB;

  const auto r0 = run_fig2(0.0, opt);
  const auto r25 = run_fig2(0.25, opt);
  const auto r100 = run_fig2(1.0, opt);

  // Data distribution follows alpha.
  EXPECT_EQ(r100.victim_bytes, 0u);
  EXPECT_GT(r0.victim_bytes, 9 * r0.own_bytes / 10);
  const double frac25 =
      double(r25.own_bytes) / double(r25.own_bytes + r25.victim_bytes);
  EXPECT_NEAR(frac25, 0.25, 0.1);

  // All runs complete and report utilization.
  for (const auto& r : {r0, r25, r100}) {
    EXPECT_GT(r.runtime, 0.0);
    EXPECT_GE(r.own.cpu, 0.0);
    EXPECT_LE(r.victim.cpu, 1.0);
  }
  // Victims idle when alpha = 1 (all data on own nodes).
  EXPECT_LT(r100.victim.nic(), 0.01);
  EXPECT_GT(r0.victim.nic(), r25.victim.nic());
}

TEST(Fig2, VictimLoadIsBounded) {
  Fig2Options opt;
  opt.scenario = small_scenario();
  opt.dd_tasks = 64;
  opt.dd_bytes = 32 * units::MiB;
  const auto r = run_fig2(0.25, opt);
  // Paper: victim CPU < 5%, victim NIC < ~16% (container cap).
  EXPECT_LT(r.victim.cpu, 0.05);
  EXPECT_LT(r.victim.nic(),
            opt.scenario.victim_net_cap / opt.scenario.node_spec.nic.down +
                0.02);
}

TEST(Workloads, GeneratorsAreDeterministicPerSeed) {
  Rng a(3), b(3);
  const auto w1 = make_workload(Workload::montage, a);
  const auto w2 = make_workload(Workload::montage, b);
  EXPECT_EQ(w1.total_output_bytes(), w2.total_output_bytes());
  EXPECT_EQ(workload_name(Workload::blast), "BLAST");
  EXPECT_EQ(workload_name(Workload::dd), "dd");
}

TEST(Slowdown, CleanBaselineMatchesStandaloneRun) {
  // A tenant with no scavenging runs at its natural duration.
  tenant::TenantApp app;
  app.name = "toy";
  tenant::Phase p;
  p.cpu_core_seconds = 160.0;
  p.cpu_cores = 16.0;
  app.phases = {p};

  SlowdownOptions opt;
  opt.scenario = small_scenario();
  const auto clean = run_tenant_under_scavenging(app, Workload::none, opt);
  EXPECT_NEAR(clean.duration, 10.0, 0.1);
}

TEST(Slowdown, ScavengingSlowsSensitiveTenant) {
  tenant::TenantApp app;
  app.name = "sensitive";
  tenant::Phase p;
  p.sensitive.base_seconds = 30.0;
  p.sensitive.to_net_share = 3.0;
  p.sensitive.to_krequests = 5.0;
  app.phases = {p};

  SlowdownOptions opt;
  opt.scenario = small_scenario();
  opt.scenario.own_fraction = 0.0;  // maximum victim traffic
  const auto clean = run_tenant_under_scavenging(app, Workload::none, opt);
  const auto loaded = run_tenant_under_scavenging(app, Workload::dd, opt);
  EXPECT_NEAR(clean.duration, 30.0, 0.1);
  EXPECT_GT(loaded.duration, clean.duration * 1.01);
}

TEST(Slowdown, SweepProducesOneCellPerPair) {
  tenant::TenantApp app;
  app.name = "toy";
  tenant::Phase p;
  p.cpu_core_seconds = 80.0;
  app.phases = {p};

  SlowdownOptions opt;
  opt.scenario = small_scenario();
  const auto cells =
      run_slowdown_sweep({app}, {Workload::dd, Workload::montage}, 0.25, opt);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].tenant, "toy");
  EXPECT_EQ(cells[0].workload, Workload::dd);
  EXPECT_EQ(cells[1].workload, Workload::montage);
  for (const auto& c : cells) {
    EXPECT_GT(c.slowdown, -0.05);  // no speedup beyond noise
    EXPECT_LT(c.slowdown, 2.0);
  }
}

TEST(Table2, InfeasibleWhenDataDoesNotFit) {
  Table2Options opt;
  opt.tiles = 256;
  opt.proj_bytes_min = 16 * units::MiB;
  opt.proj_bytes_max = 24 * units::MiB;
  opt.own_store_capacity = 2 * units::GiB;
  opt.standalone_store_capacity = 2 * units::GiB;
  opt.cluster_nodes = 10;
  // footprint ~ 256 * 20 MiB * 2 + mosaic ~ 12.5 GiB > 4 x 2 GiB.
  const auto row = run_table2_standalone(4, opt);
  EXPECT_FALSE(row.feasible);
  EXPECT_EQ(row.runtime, 0.0);
  EXPECT_GT(row.data_footprint, 8ull * units::GiB);
}

TEST(Table2, ScavengingRunsWhereStandaloneCannot) {
  Table2Options opt;
  opt.tiles = 128;
  opt.proj_bytes_min = 8 * units::MiB;
  opt.proj_bytes_max = 12 * units::MiB;
  opt.own_store_capacity = 1 * units::GiB;
  opt.standalone_store_capacity = 1 * units::GiB;
  opt.victim_memory_cap = 2 * units::GiB;
  opt.cluster_nodes = 10;

  const auto standalone = run_table2_standalone(2, opt);
  EXPECT_FALSE(standalone.feasible);

  const auto scavenging = run_table2_scavenging(2, opt);
  EXPECT_TRUE(scavenging.feasible);
  EXPECT_GT(scavenging.runtime, 0.0);
  EXPECT_NEAR(scavenging.node_hours,
              2.0 * scavenging.runtime / 3600.0, 1e-9);
}

TEST(Table2, MoreOwnNodesShortenRuntime) {
  Table2Options opt;
  opt.tiles = 128;
  opt.proj_bytes_min = 4 * units::MiB;
  opt.proj_bytes_max = 8 * units::MiB;
  opt.own_store_capacity = 4 * units::GiB;
  opt.victim_memory_cap = 2 * units::GiB;
  opt.cluster_nodes = 10;

  const auto two = run_table2_scavenging(2, opt);
  const auto four = run_table2_scavenging(4, opt);
  ASSERT_TRUE(two.feasible && four.feasible);
  EXPECT_GT(two.runtime, four.runtime);
  // ...but fewer own nodes consume fewer node-hours.
  EXPECT_LT(two.node_hours, four.node_hours);
}

}  // namespace
}  // namespace memfss::exp
