#include "workflow/trace.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "workflow/generators.hpp"

namespace memfss::workflow {
namespace {

TEST(ParseSize, UnitsAndErrors) {
  EXPECT_EQ(parse_size("512").value(), 512u);
  EXPECT_EQ(parse_size("2K").value(), 2048u);
  EXPECT_EQ(parse_size("128M").value(), 128 * units::MiB);
  EXPECT_EQ(parse_size("4G").value(), 4 * units::GiB);
  EXPECT_EQ(parse_size("1T").value(), units::TiB);
  EXPECT_EQ(parse_size("1.5G").value(), units::GiB + units::GiB / 2);
  EXPECT_FALSE(parse_size("").ok());
  EXPECT_FALSE(parse_size("abc").ok());
  EXPECT_FALSE(parse_size("12X").ok());
  EXPECT_FALSE(parse_size("12Mx").ok());
  EXPECT_FALSE(parse_size("-5M").ok());
}

constexpr const char* kSample = R"(
# A two-stage pipeline.
workflow demo
task gen stage=produce cpu=2.5
out /data/a 64M
out /data/b 32M

task crunch stage=consume cpu=10 cores=4 reqs_per_mib=12
in /data/a
in /data/b
out /data/result 1G
)";

TEST(ParseWorkflow, ParsesSample) {
  auto wf = parse_workflow_text(kSample);
  ASSERT_TRUE(wf.ok()) << wf.error().to_string();
  EXPECT_EQ(wf.value().name, "demo");
  ASSERT_EQ(wf.value().tasks.size(), 2u);
  const auto& gen = wf.value().tasks[0];
  EXPECT_EQ(gen.stage, "produce");
  EXPECT_EQ(gen.cpu_seconds, 2.5);
  EXPECT_EQ(gen.outputs.size(), 2u);
  EXPECT_EQ(gen.outputs[0].bytes, 64 * units::MiB);
  const auto& crunch = wf.value().tasks[1];
  EXPECT_EQ(crunch.cores, 4.0);
  EXPECT_EQ(crunch.io.extra_requests_per_mib, 12.0);
  EXPECT_EQ(crunch.inputs.size(), 2u);
  // Dependency derived from the files.
  auto dag = Dag::build(wf.value());
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag.value().dependencies(1), (std::vector<std::size_t>{0}));
}

TEST(ParseWorkflow, DefaultStageIsTaskName) {
  auto wf = parse_workflow_text("task solo cpu=1\n");
  ASSERT_TRUE(wf.ok());
  EXPECT_EQ(wf.value().tasks[0].stage, "solo");
}

TEST(ParseWorkflow, ErrorsNameTheLine) {
  auto r = parse_workflow_text("task a cpu=1\nbogus directive\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("line 2"), std::string::npos);
}

TEST(ParseWorkflow, RejectsOrphanInOut) {
  EXPECT_FALSE(parse_workflow_text("in /x\n").ok());
  EXPECT_FALSE(parse_workflow_text("out /x 1M\n").ok());
}

TEST(ParseWorkflow, RejectsUnknownAttributes) {
  EXPECT_FALSE(parse_workflow_text("task a cpu=1 color=red\n").ok());
}

TEST(ParseWorkflow, RejectsCycles) {
  constexpr const char* kCycle = R"(
task a cpu=1
in /y
out /x 1M
task b cpu=1
in /x
out /y 1M
)";
  auto r = parse_workflow_text(kCycle);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("cycle"), std::string::npos);
}

TEST(ParseWorkflow, RejectsDuplicateProducers) {
  constexpr const char* kDup = R"(
task a cpu=1
out /x 1M
task b cpu=1
out /x 1M
)";
  EXPECT_FALSE(parse_workflow_text(kDup).ok());
}

TEST(Trace, RoundtripsGeneratedWorkflows) {
  Rng rng(17);
  MontageParams p;
  p.tiles = 12;
  const auto original = make_montage(p, rng);
  const auto text = to_trace(original);
  auto parsed = parse_workflow_text(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  ASSERT_EQ(parsed.value().tasks.size(), original.tasks.size());
  EXPECT_EQ(parsed.value().total_output_bytes(),
            original.total_output_bytes());
  for (std::size_t i = 0; i < original.tasks.size(); ++i) {
    EXPECT_EQ(parsed.value().tasks[i].name, original.tasks[i].name);
    EXPECT_EQ(parsed.value().tasks[i].inputs, original.tasks[i].inputs);
    EXPECT_NEAR(parsed.value().tasks[i].cpu_seconds,
                original.tasks[i].cpu_seconds, 1e-6);
  }
}

TEST(Trace, FileRoundtrip) {
  const auto wf = make_fork_join(3, 1.0, units::MiB);
  const std::string path = "/tmp/memfss_trace_test.wf";
  ASSERT_TRUE(save_workflow_file(wf, path).ok());
  auto back = load_workflow_file(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().tasks.size(), wf.tasks.size());
  EXPECT_FALSE(load_workflow_file("/nonexistent/path.wf").ok());
}

}  // namespace
}  // namespace memfss::workflow
