file(REMOVE_RECURSE
  "CMakeFiles/scavenging_workflow.dir/scavenging_workflow.cpp.o"
  "CMakeFiles/scavenging_workflow.dir/scavenging_workflow.cpp.o.d"
  "scavenging_workflow"
  "scavenging_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scavenging_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
