# Empty dependencies file for scavenging_workflow.
# This may be replaced when dependencies are built.
