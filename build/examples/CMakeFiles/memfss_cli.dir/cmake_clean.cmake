file(REMOVE_RECURSE
  "CMakeFiles/memfss_cli.dir/memfss_cli.cpp.o"
  "CMakeFiles/memfss_cli.dir/memfss_cli.cpp.o.d"
  "memfss_cli"
  "memfss_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memfss_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
