# Empty dependencies file for memfss_cli.
# This may be replaced when dependencies are built.
