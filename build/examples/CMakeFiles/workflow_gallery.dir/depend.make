# Empty dependencies file for workflow_gallery.
# This may be replaced when dependencies are built.
