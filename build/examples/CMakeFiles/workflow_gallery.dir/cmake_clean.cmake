file(REMOVE_RECURSE
  "CMakeFiles/workflow_gallery.dir/workflow_gallery.cpp.o"
  "CMakeFiles/workflow_gallery.dir/workflow_gallery.cpp.o.d"
  "workflow_gallery"
  "workflow_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
