file(REMOVE_RECURSE
  "libmemfss_erasure.a"
)
