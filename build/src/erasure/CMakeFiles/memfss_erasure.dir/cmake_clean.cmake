file(REMOVE_RECURSE
  "CMakeFiles/memfss_erasure.dir/gf256.cpp.o"
  "CMakeFiles/memfss_erasure.dir/gf256.cpp.o.d"
  "CMakeFiles/memfss_erasure.dir/reed_solomon.cpp.o"
  "CMakeFiles/memfss_erasure.dir/reed_solomon.cpp.o.d"
  "libmemfss_erasure.a"
  "libmemfss_erasure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memfss_erasure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
