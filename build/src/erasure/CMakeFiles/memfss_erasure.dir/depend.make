# Empty dependencies file for memfss_erasure.
# This may be replaced when dependencies are built.
