file(REMOVE_RECURSE
  "CMakeFiles/memfss_fs.dir/client.cpp.o"
  "CMakeFiles/memfss_fs.dir/client.cpp.o.d"
  "CMakeFiles/memfss_fs.dir/filesystem.cpp.o"
  "CMakeFiles/memfss_fs.dir/filesystem.cpp.o.d"
  "CMakeFiles/memfss_fs.dir/maintenance.cpp.o"
  "CMakeFiles/memfss_fs.dir/maintenance.cpp.o.d"
  "CMakeFiles/memfss_fs.dir/metadata.cpp.o"
  "CMakeFiles/memfss_fs.dir/metadata.cpp.o.d"
  "CMakeFiles/memfss_fs.dir/namespace.cpp.o"
  "CMakeFiles/memfss_fs.dir/namespace.cpp.o.d"
  "CMakeFiles/memfss_fs.dir/placement.cpp.o"
  "CMakeFiles/memfss_fs.dir/placement.cpp.o.d"
  "libmemfss_fs.a"
  "libmemfss_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memfss_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
