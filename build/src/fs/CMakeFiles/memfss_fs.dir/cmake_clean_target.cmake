file(REMOVE_RECURSE
  "libmemfss_fs.a"
)
