# Empty compiler generated dependencies file for memfss_fs.
# This may be replaced when dependencies are built.
