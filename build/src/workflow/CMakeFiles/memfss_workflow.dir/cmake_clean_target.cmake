file(REMOVE_RECURSE
  "libmemfss_workflow.a"
)
