file(REMOVE_RECURSE
  "CMakeFiles/memfss_workflow.dir/dag.cpp.o"
  "CMakeFiles/memfss_workflow.dir/dag.cpp.o.d"
  "CMakeFiles/memfss_workflow.dir/engine.cpp.o"
  "CMakeFiles/memfss_workflow.dir/engine.cpp.o.d"
  "CMakeFiles/memfss_workflow.dir/generators.cpp.o"
  "CMakeFiles/memfss_workflow.dir/generators.cpp.o.d"
  "CMakeFiles/memfss_workflow.dir/trace.cpp.o"
  "CMakeFiles/memfss_workflow.dir/trace.cpp.o.d"
  "libmemfss_workflow.a"
  "libmemfss_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memfss_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
