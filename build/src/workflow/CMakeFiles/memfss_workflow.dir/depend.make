# Empty dependencies file for memfss_workflow.
# This may be replaced when dependencies are built.
