
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workflow/dag.cpp" "src/workflow/CMakeFiles/memfss_workflow.dir/dag.cpp.o" "gcc" "src/workflow/CMakeFiles/memfss_workflow.dir/dag.cpp.o.d"
  "/root/repo/src/workflow/engine.cpp" "src/workflow/CMakeFiles/memfss_workflow.dir/engine.cpp.o" "gcc" "src/workflow/CMakeFiles/memfss_workflow.dir/engine.cpp.o.d"
  "/root/repo/src/workflow/generators.cpp" "src/workflow/CMakeFiles/memfss_workflow.dir/generators.cpp.o" "gcc" "src/workflow/CMakeFiles/memfss_workflow.dir/generators.cpp.o.d"
  "/root/repo/src/workflow/trace.cpp" "src/workflow/CMakeFiles/memfss_workflow.dir/trace.cpp.o" "gcc" "src/workflow/CMakeFiles/memfss_workflow.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fs/CMakeFiles/memfss_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/memfss_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/memfss_common.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/memfss_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/memfss_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/memfss_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/memfss_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/erasure/CMakeFiles/memfss_erasure.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
