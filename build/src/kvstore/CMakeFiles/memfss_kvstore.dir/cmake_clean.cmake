file(REMOVE_RECURSE
  "CMakeFiles/memfss_kvstore.dir/rate_meter.cpp.o"
  "CMakeFiles/memfss_kvstore.dir/rate_meter.cpp.o.d"
  "CMakeFiles/memfss_kvstore.dir/server.cpp.o"
  "CMakeFiles/memfss_kvstore.dir/server.cpp.o.d"
  "CMakeFiles/memfss_kvstore.dir/store.cpp.o"
  "CMakeFiles/memfss_kvstore.dir/store.cpp.o.d"
  "libmemfss_kvstore.a"
  "libmemfss_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memfss_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
