# Empty compiler generated dependencies file for memfss_kvstore.
# This may be replaced when dependencies are built.
