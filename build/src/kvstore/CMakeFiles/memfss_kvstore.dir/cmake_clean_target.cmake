file(REMOVE_RECURSE
  "libmemfss_kvstore.a"
)
