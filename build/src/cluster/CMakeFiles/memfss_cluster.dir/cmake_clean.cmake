file(REMOVE_RECURSE
  "CMakeFiles/memfss_cluster.dir/cluster.cpp.o"
  "CMakeFiles/memfss_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/memfss_cluster.dir/monitor.cpp.o"
  "CMakeFiles/memfss_cluster.dir/monitor.cpp.o.d"
  "CMakeFiles/memfss_cluster.dir/reservation.cpp.o"
  "CMakeFiles/memfss_cluster.dir/reservation.cpp.o.d"
  "libmemfss_cluster.a"
  "libmemfss_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memfss_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
