file(REMOVE_RECURSE
  "libmemfss_cluster.a"
)
