# Empty dependencies file for memfss_cluster.
# This may be replaced when dependencies are built.
