file(REMOVE_RECURSE
  "CMakeFiles/memfss_exp.dir/experiments.cpp.o"
  "CMakeFiles/memfss_exp.dir/experiments.cpp.o.d"
  "CMakeFiles/memfss_exp.dir/metrics.cpp.o"
  "CMakeFiles/memfss_exp.dir/metrics.cpp.o.d"
  "CMakeFiles/memfss_exp.dir/report.cpp.o"
  "CMakeFiles/memfss_exp.dir/report.cpp.o.d"
  "CMakeFiles/memfss_exp.dir/scenario.cpp.o"
  "CMakeFiles/memfss_exp.dir/scenario.cpp.o.d"
  "CMakeFiles/memfss_exp.dir/timeseries.cpp.o"
  "CMakeFiles/memfss_exp.dir/timeseries.cpp.o.d"
  "libmemfss_exp.a"
  "libmemfss_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memfss_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
