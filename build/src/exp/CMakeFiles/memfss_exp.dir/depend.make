# Empty dependencies file for memfss_exp.
# This may be replaced when dependencies are built.
