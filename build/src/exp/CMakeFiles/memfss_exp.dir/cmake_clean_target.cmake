file(REMOVE_RECURSE
  "libmemfss_exp.a"
)
