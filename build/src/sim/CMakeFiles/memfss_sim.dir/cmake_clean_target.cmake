file(REMOVE_RECURSE
  "libmemfss_sim.a"
)
