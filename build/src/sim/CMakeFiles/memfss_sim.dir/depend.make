# Empty dependencies file for memfss_sim.
# This may be replaced when dependencies are built.
