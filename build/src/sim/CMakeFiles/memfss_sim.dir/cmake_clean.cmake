file(REMOVE_RECURSE
  "CMakeFiles/memfss_sim.dir/fluid.cpp.o"
  "CMakeFiles/memfss_sim.dir/fluid.cpp.o.d"
  "CMakeFiles/memfss_sim.dir/memory.cpp.o"
  "CMakeFiles/memfss_sim.dir/memory.cpp.o.d"
  "CMakeFiles/memfss_sim.dir/simulator.cpp.o"
  "CMakeFiles/memfss_sim.dir/simulator.cpp.o.d"
  "libmemfss_sim.a"
  "libmemfss_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memfss_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
