file(REMOVE_RECURSE
  "CMakeFiles/memfss_net.dir/fabric.cpp.o"
  "CMakeFiles/memfss_net.dir/fabric.cpp.o.d"
  "libmemfss_net.a"
  "libmemfss_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memfss_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
