file(REMOVE_RECURSE
  "libmemfss_net.a"
)
