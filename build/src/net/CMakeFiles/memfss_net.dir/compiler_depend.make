# Empty compiler generated dependencies file for memfss_net.
# This may be replaced when dependencies are built.
