
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hash/class_hrw.cpp" "src/hash/CMakeFiles/memfss_hash.dir/class_hrw.cpp.o" "gcc" "src/hash/CMakeFiles/memfss_hash.dir/class_hrw.cpp.o.d"
  "/root/repo/src/hash/consistent.cpp" "src/hash/CMakeFiles/memfss_hash.dir/consistent.cpp.o" "gcc" "src/hash/CMakeFiles/memfss_hash.dir/consistent.cpp.o.d"
  "/root/repo/src/hash/hashes.cpp" "src/hash/CMakeFiles/memfss_hash.dir/hashes.cpp.o" "gcc" "src/hash/CMakeFiles/memfss_hash.dir/hashes.cpp.o.d"
  "/root/repo/src/hash/hrw.cpp" "src/hash/CMakeFiles/memfss_hash.dir/hrw.cpp.o" "gcc" "src/hash/CMakeFiles/memfss_hash.dir/hrw.cpp.o.d"
  "/root/repo/src/hash/skeleton.cpp" "src/hash/CMakeFiles/memfss_hash.dir/skeleton.cpp.o" "gcc" "src/hash/CMakeFiles/memfss_hash.dir/skeleton.cpp.o.d"
  "/root/repo/src/hash/weight_solver.cpp" "src/hash/CMakeFiles/memfss_hash.dir/weight_solver.cpp.o" "gcc" "src/hash/CMakeFiles/memfss_hash.dir/weight_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/memfss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
