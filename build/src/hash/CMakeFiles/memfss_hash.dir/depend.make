# Empty dependencies file for memfss_hash.
# This may be replaced when dependencies are built.
