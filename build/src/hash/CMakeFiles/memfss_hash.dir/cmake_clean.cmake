file(REMOVE_RECURSE
  "CMakeFiles/memfss_hash.dir/class_hrw.cpp.o"
  "CMakeFiles/memfss_hash.dir/class_hrw.cpp.o.d"
  "CMakeFiles/memfss_hash.dir/consistent.cpp.o"
  "CMakeFiles/memfss_hash.dir/consistent.cpp.o.d"
  "CMakeFiles/memfss_hash.dir/hashes.cpp.o"
  "CMakeFiles/memfss_hash.dir/hashes.cpp.o.d"
  "CMakeFiles/memfss_hash.dir/hrw.cpp.o"
  "CMakeFiles/memfss_hash.dir/hrw.cpp.o.d"
  "CMakeFiles/memfss_hash.dir/skeleton.cpp.o"
  "CMakeFiles/memfss_hash.dir/skeleton.cpp.o.d"
  "CMakeFiles/memfss_hash.dir/weight_solver.cpp.o"
  "CMakeFiles/memfss_hash.dir/weight_solver.cpp.o.d"
  "libmemfss_hash.a"
  "libmemfss_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memfss_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
