file(REMOVE_RECURSE
  "libmemfss_hash.a"
)
