file(REMOVE_RECURSE
  "CMakeFiles/memfss_common.dir/log.cpp.o"
  "CMakeFiles/memfss_common.dir/log.cpp.o.d"
  "CMakeFiles/memfss_common.dir/rng.cpp.o"
  "CMakeFiles/memfss_common.dir/rng.cpp.o.d"
  "CMakeFiles/memfss_common.dir/stats.cpp.o"
  "CMakeFiles/memfss_common.dir/stats.cpp.o.d"
  "CMakeFiles/memfss_common.dir/str.cpp.o"
  "CMakeFiles/memfss_common.dir/str.cpp.o.d"
  "CMakeFiles/memfss_common.dir/table.cpp.o"
  "CMakeFiles/memfss_common.dir/table.cpp.o.d"
  "libmemfss_common.a"
  "libmemfss_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memfss_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
