# Empty compiler generated dependencies file for memfss_common.
# This may be replaced when dependencies are built.
