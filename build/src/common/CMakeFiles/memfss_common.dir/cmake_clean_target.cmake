file(REMOVE_RECURSE
  "libmemfss_common.a"
)
