# Empty compiler generated dependencies file for memfss_tenant.
# This may be replaced when dependencies are built.
