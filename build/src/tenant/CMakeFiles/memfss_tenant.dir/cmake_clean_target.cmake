file(REMOVE_RECURSE
  "libmemfss_tenant.a"
)
