file(REMOVE_RECURSE
  "CMakeFiles/memfss_tenant.dir/app.cpp.o"
  "CMakeFiles/memfss_tenant.dir/app.cpp.o.d"
  "CMakeFiles/memfss_tenant.dir/kernels.cpp.o"
  "CMakeFiles/memfss_tenant.dir/kernels.cpp.o.d"
  "CMakeFiles/memfss_tenant.dir/runner.cpp.o"
  "CMakeFiles/memfss_tenant.dir/runner.cpp.o.d"
  "CMakeFiles/memfss_tenant.dir/suites.cpp.o"
  "CMakeFiles/memfss_tenant.dir/suites.cpp.o.d"
  "libmemfss_tenant.a"
  "libmemfss_tenant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memfss_tenant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
