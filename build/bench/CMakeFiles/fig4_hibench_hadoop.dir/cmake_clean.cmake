file(REMOVE_RECURSE
  "CMakeFiles/fig4_hibench_hadoop.dir/fig4_hibench_hadoop.cpp.o"
  "CMakeFiles/fig4_hibench_hadoop.dir/fig4_hibench_hadoop.cpp.o.d"
  "fig4_hibench_hadoop"
  "fig4_hibench_hadoop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_hibench_hadoop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
