# Empty dependencies file for fig4_hibench_hadoop.
# This may be replaced when dependencies are built.
