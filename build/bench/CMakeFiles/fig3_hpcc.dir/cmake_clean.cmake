file(REMOVE_RECURSE
  "CMakeFiles/fig3_hpcc.dir/fig3_hpcc.cpp.o"
  "CMakeFiles/fig3_hpcc.dir/fig3_hpcc.cpp.o.d"
  "fig3_hpcc"
  "fig3_hpcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_hpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
