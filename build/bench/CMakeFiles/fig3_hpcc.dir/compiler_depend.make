# Empty compiler generated dependencies file for fig3_hpcc.
# This may be replaced when dependencies are built.
