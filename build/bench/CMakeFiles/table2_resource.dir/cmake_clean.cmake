file(REMOVE_RECURSE
  "CMakeFiles/table2_resource.dir/table2_resource.cpp.o"
  "CMakeFiles/table2_resource.dir/table2_resource.cpp.o.d"
  "table2_resource"
  "table2_resource.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_resource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
