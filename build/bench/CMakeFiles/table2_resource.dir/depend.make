# Empty dependencies file for table2_resource.
# This may be replaced when dependencies are built.
