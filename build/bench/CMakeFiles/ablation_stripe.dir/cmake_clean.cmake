file(REMOVE_RECURSE
  "CMakeFiles/ablation_stripe.dir/ablation_stripe.cpp.o"
  "CMakeFiles/ablation_stripe.dir/ablation_stripe.cpp.o.d"
  "ablation_stripe"
  "ablation_stripe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stripe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
