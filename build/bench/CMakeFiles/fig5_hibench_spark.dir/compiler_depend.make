# Empty compiler generated dependencies file for fig5_hibench_spark.
# This may be replaced when dependencies are built.
