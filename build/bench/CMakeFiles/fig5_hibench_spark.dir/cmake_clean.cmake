file(REMOVE_RECURSE
  "CMakeFiles/fig5_hibench_spark.dir/fig5_hibench_spark.cpp.o"
  "CMakeFiles/fig5_hibench_spark.dir/fig5_hibench_spark.cpp.o.d"
  "fig5_hibench_spark"
  "fig5_hibench_spark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_hibench_spark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
