file(REMOVE_RECURSE
  "CMakeFiles/fig2_baseline.dir/fig2_baseline.cpp.o"
  "CMakeFiles/fig2_baseline.dir/fig2_baseline.cpp.o.d"
  "fig2_baseline"
  "fig2_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
