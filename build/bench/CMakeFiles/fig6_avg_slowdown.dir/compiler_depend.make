# Empty compiler generated dependencies file for fig6_avg_slowdown.
# This may be replaced when dependencies are built.
