file(REMOVE_RECURSE
  "CMakeFiles/test_hashes.dir/test_hashes.cpp.o"
  "CMakeFiles/test_hashes.dir/test_hashes.cpp.o.d"
  "test_hashes"
  "test_hashes.pdb"
  "test_hashes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hashes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
