file(REMOVE_RECURSE
  "CMakeFiles/test_fs_client.dir/test_fs_client.cpp.o"
  "CMakeFiles/test_fs_client.dir/test_fs_client.cpp.o.d"
  "test_fs_client"
  "test_fs_client.pdb"
  "test_fs_client[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fs_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
