# Empty dependencies file for test_fs_client.
# This may be replaced when dependencies are built.
