file(REMOVE_RECURSE
  "CMakeFiles/test_hrw.dir/test_hrw.cpp.o"
  "CMakeFiles/test_hrw.dir/test_hrw.cpp.o.d"
  "test_hrw"
  "test_hrw.pdb"
  "test_hrw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hrw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
