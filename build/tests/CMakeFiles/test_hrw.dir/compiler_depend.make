# Empty compiler generated dependencies file for test_hrw.
# This may be replaced when dependencies are built.
