# Empty compiler generated dependencies file for test_fluid_props.
# This may be replaced when dependencies are built.
