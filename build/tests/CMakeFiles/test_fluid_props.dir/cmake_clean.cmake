file(REMOVE_RECURSE
  "CMakeFiles/test_fluid_props.dir/test_fluid_props.cpp.o"
  "CMakeFiles/test_fluid_props.dir/test_fluid_props.cpp.o.d"
  "test_fluid_props"
  "test_fluid_props.pdb"
  "test_fluid_props[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fluid_props.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
