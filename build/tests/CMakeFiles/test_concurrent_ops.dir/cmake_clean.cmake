file(REMOVE_RECURSE
  "CMakeFiles/test_concurrent_ops.dir/test_concurrent_ops.cpp.o"
  "CMakeFiles/test_concurrent_ops.dir/test_concurrent_ops.cpp.o.d"
  "test_concurrent_ops"
  "test_concurrent_ops.pdb"
  "test_concurrent_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_concurrent_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
