file(REMOVE_RECURSE
  "CMakeFiles/test_consistent.dir/test_consistent.cpp.o"
  "CMakeFiles/test_consistent.dir/test_consistent.cpp.o.d"
  "test_consistent"
  "test_consistent.pdb"
  "test_consistent[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_consistent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
