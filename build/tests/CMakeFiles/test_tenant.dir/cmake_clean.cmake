file(REMOVE_RECURSE
  "CMakeFiles/test_tenant.dir/test_tenant.cpp.o"
  "CMakeFiles/test_tenant.dir/test_tenant.cpp.o.d"
  "test_tenant"
  "test_tenant.pdb"
  "test_tenant[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tenant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
