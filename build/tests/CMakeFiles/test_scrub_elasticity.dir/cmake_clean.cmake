file(REMOVE_RECURSE
  "CMakeFiles/test_scrub_elasticity.dir/test_scrub_elasticity.cpp.o"
  "CMakeFiles/test_scrub_elasticity.dir/test_scrub_elasticity.cpp.o.d"
  "test_scrub_elasticity"
  "test_scrub_elasticity.pdb"
  "test_scrub_elasticity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scrub_elasticity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
