# Empty compiler generated dependencies file for test_scrub_elasticity.
# This may be replaced when dependencies are built.
