file(REMOVE_RECURSE
  "CMakeFiles/test_scheduler_policies.dir/test_scheduler_policies.cpp.o"
  "CMakeFiles/test_scheduler_policies.dir/test_scheduler_policies.cpp.o.d"
  "test_scheduler_policies"
  "test_scheduler_policies.pdb"
  "test_scheduler_policies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scheduler_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
