# Empty dependencies file for test_scheduler_policies.
# This may be replaced when dependencies are built.
