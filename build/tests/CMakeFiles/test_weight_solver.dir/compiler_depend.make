# Empty compiler generated dependencies file for test_weight_solver.
# This may be replaced when dependencies are built.
