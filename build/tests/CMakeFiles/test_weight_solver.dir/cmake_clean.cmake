file(REMOVE_RECURSE
  "CMakeFiles/test_weight_solver.dir/test_weight_solver.cpp.o"
  "CMakeFiles/test_weight_solver.dir/test_weight_solver.cpp.o.d"
  "test_weight_solver"
  "test_weight_solver.pdb"
  "test_weight_solver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weight_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
