# Empty compiler generated dependencies file for test_fabric_props.
# This may be replaced when dependencies are built.
