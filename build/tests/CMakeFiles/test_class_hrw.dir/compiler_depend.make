# Empty compiler generated dependencies file for test_class_hrw.
# This may be replaced when dependencies are built.
