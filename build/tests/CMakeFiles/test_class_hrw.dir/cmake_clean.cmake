file(REMOVE_RECURSE
  "CMakeFiles/test_class_hrw.dir/test_class_hrw.cpp.o"
  "CMakeFiles/test_class_hrw.dir/test_class_hrw.cpp.o.d"
  "test_class_hrw"
  "test_class_hrw.pdb"
  "test_class_hrw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_class_hrw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
