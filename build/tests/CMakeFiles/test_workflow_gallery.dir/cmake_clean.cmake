file(REMOVE_RECURSE
  "CMakeFiles/test_workflow_gallery.dir/test_workflow_gallery.cpp.o"
  "CMakeFiles/test_workflow_gallery.dir/test_workflow_gallery.cpp.o.d"
  "test_workflow_gallery"
  "test_workflow_gallery.pdb"
  "test_workflow_gallery[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workflow_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
