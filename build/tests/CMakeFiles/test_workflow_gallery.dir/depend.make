# Empty dependencies file for test_workflow_gallery.
# This may be replaced when dependencies are built.
