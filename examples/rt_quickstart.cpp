// Minimal tour of the concurrent runtime (src/rt): stand up a sharded
// store behind a multithreaded RuntimeServer, push a batch of authed
// ops through it, and print the metrics the server collected.
//
//   $ ./rt_quickstart
#include <cstdio>
#include <string>
#include <vector>

#include "rt/server.hpp"

using namespace memfss;

int main() {
  rt::ShardedStore store({/*shards=*/8, /*capacity=*/64 * units::MiB,
                          /*auth_token=*/"secret"});
  rt::RuntimeServer server(store, {/*threads=*/4, /*queue_capacity=*/256,
                                   /*service_time=*/{}});

  // A batch mixing every verb; results come back in input order.
  std::vector<rt::Op> ops;
  for (int i = 0; i < 8; ++i) {
    rt::Op put;
    put.type = rt::Op::Type::put;
    put.key = "user:" + std::to_string(i);
    put.value = kvstore::Blob::materialized(
        std::vector<std::uint8_t>(1024, static_cast<std::uint8_t>(i)));
    ops.push_back(std::move(put));
  }
  {
    rt::Op auth;
    auth.type = rt::Op::Type::auth;
    ops.push_back(std::move(auth));
  }
  for (int i = 0; i < 8; ++i) {
    rt::Op get;
    get.type = rt::Op::Type::get;
    get.key = "user:" + std::to_string(i);
    ops.push_back(std::move(get));
  }

  const auto results = server.run_batch("secret", std::move(ops));
  std::size_t ok = 0;
  for (const auto& r : results) ok += r.code == Errc::ok;
  std::printf("%zu/%zu ops ok, %zu keys over %zu shards, %llu bytes used\n",
              ok, results.size(), store.key_count(), store.shard_count(),
              static_cast<unsigned long long>(store.used()));

  // A bad token is refused per-op, not per-connection.
  auto denied = server.submit("wrong", {rt::Op::Type::get, "user:0", {}}).get();
  std::printf("bad token -> %s\n", errc_name(denied.code).data());

  std::printf("\nmetrics:\n%s", server.metrics().snapshot().to_csv().c_str());
  return 0;
}
