// Fault tolerance: replication vs Reed-Solomon erasure coding.
//
// The paper (§III-E) replicates stripes on the 2nd/3rd-highest HRW ranks
// but notes that full replication is prohibitive for an in-memory store
// and names erasure coding as the in-progress alternative. This example
// exercises both modes: write real data, crash a storage node, read the
// data back intact, and compare the memory overhead of the two schemes.
#include <cstdio>

#include "common/rng.hpp"
#include "common/str.hpp"
#include "exp/scenario.hpp"
#include "fs/client.hpp"

using namespace memfss;

namespace {

std::vector<std::uint8_t> make_payload(std::size_t n) {
  Rng rng(7);
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = std::uint8_t(rng.next_u64());
  return v;
}

struct Outcome {
  bool intact = false;
  Bytes stored = 0;
};

Outcome crash_and_read(fs::RedundancyMode mode) {
  exp::ScenarioParams params;
  params.total_nodes = 8;
  params.own_nodes = 8;
  params.with_victims = false;
  params.stripe_size = 1 * units::MiB;
  params.redundancy = mode;
  params.copies = 2;
  exp::Scenario sc(params);

  const auto payload = make_payload(8 * units::MiB + 4321);
  Outcome out;
  sc.sim().spawn([](exp::Scenario& s, const std::vector<std::uint8_t>& data,
                    Outcome& o) -> sim::Task<> {
    fs::Client c = s.fs().client(0);
    if (auto st = co_await c.write_file_bytes("/survive", data); !st.ok()) {
      std::printf("  write failed: %s\n", st.error().to_string().c_str());
      co_return;
    }
    o.stored = s.fs().total_bytes();
    // Crash node 3: its store loses everything.
    s.fs().server(3).wipe();
    auto back = co_await c.read_file_bytes("/survive");
    o.intact = back.ok() && back.value() == data;
  }(sc, payload, out));
  sc.sim().run();
  return out;
}

}  // namespace

int main() {
  const Bytes payload_size = 8 * units::MiB + 4321;
  std::printf("payload: %s; one storage node crashes after the write\n\n",
              format_bytes(payload_size).c_str());

  struct ModeRow {
    const char* label;
    fs::RedundancyMode mode;
  };
  for (const auto& m :
       {ModeRow{"2-way replication (paper §III-E)",
                fs::RedundancyMode::replicated},
        ModeRow{"Reed-Solomon RS(4,2) (future-work mode)",
                fs::RedundancyMode::erasure}}) {
    const auto out = crash_and_read(m.mode);
    std::printf("%-42s data %s, memory overhead %.2fx\n", m.label,
                out.intact ? "intact" : "LOST",
                double(out.stored) / double(payload_size));
  }
  std::printf(
      "\nRS(4,2) tolerates the same single-node loss at 1.5x memory\n"
      "instead of 2x -- the trade the paper motivates for in-memory\n"
      "storage, where capacity is the scarce resource.\n");
  return 0;
}
