// memfss_cli: command-line driver for one-off simulation runs.
//
//   memfss_cli --workload montage --own 8 --nodes 40 --alpha 0.25
//   memfss_cli --trace my_workflow.wf --own 4 --redundancy ec42
//
// Runs the chosen workload on a MemFSS deployment (own nodes + scavenged
// victims) and prints makespan, node-hours, per-group utilization and the
// data distribution -- the quickest way to explore configurations beyond
// the paper's sweeps.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/rng.hpp"
#include "common/str.hpp"
#include "exp/experiments.hpp"
#include "exp/metrics.hpp"
#include "workflow/engine.hpp"
#include "workflow/trace.hpp"

using namespace memfss;

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --nodes N          cluster size            (default 40)\n"
      "  --own K            own (MemFSS) nodes      (default 8)\n"
      "  --alpha A          data fraction on own    (default 0.25)\n"
      "  --victim-mem GiB   scavenge cap per victim (default 10)\n"
      "  --victim-net MBps  container net cap       (default 500)\n"
      "  --stripe MiB       stripe size             (default 16)\n"
      "  --redundancy M     none|rep2|rep3|ec42     (default none)\n"
      "  --workload W       dd|montage|blast        (default dd)\n"
      "  --trace FILE       run a workflow trace instead\n"
      "  --seed S           workload seed           (default 1)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  exp::ScenarioParams params;
  std::string workload = "dd";
  std::string trace_file;
  std::uint64_t seed = 1;

  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--nodes")) {
      params.total_nodes = std::strtoul(need("--nodes"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--own")) {
      params.own_nodes = std::strtoul(need("--own"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--alpha")) {
      params.own_fraction = std::atof(need("--alpha"));
    } else if (!std::strcmp(argv[i], "--victim-mem")) {
      params.victim_memory_cap =
          static_cast<Bytes>(std::atof(need("--victim-mem")) *
                             double(units::GiB));
    } else if (!std::strcmp(argv[i], "--victim-net")) {
      params.victim_net_cap = std::atof(need("--victim-net")) * 1e6;
    } else if (!std::strcmp(argv[i], "--stripe")) {
      params.stripe_size = static_cast<Bytes>(
          std::atof(need("--stripe")) * double(units::MiB));
    } else if (!std::strcmp(argv[i], "--redundancy")) {
      const std::string m = need("--redundancy");
      if (m == "none") {
        params.redundancy = fs::RedundancyMode::none;
      } else if (m == "rep2" || m == "rep3") {
        params.redundancy = fs::RedundancyMode::replicated;
        params.copies = m == "rep2" ? 2 : 3;
      } else if (m == "ec42") {
        params.redundancy = fs::RedundancyMode::erasure;
      } else {
        std::fprintf(stderr, "unknown redundancy mode: %s\n", m.c_str());
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--workload")) {
      workload = need("--workload");
    } else if (!std::strcmp(argv[i], "--trace")) {
      trace_file = need("--trace");
    } else if (!std::strcmp(argv[i], "--seed")) {
      seed = std::strtoull(need("--seed"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--help")) {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      usage(argv[0]);
      return 2;
    }
  }
  if (params.own_nodes == 0 || params.own_nodes > params.total_nodes) {
    std::fprintf(stderr, "--own must be in [1, --nodes]\n");
    return 2;
  }
  params.with_victims = params.own_nodes < params.total_nodes;

  workflow::Workflow wf;
  if (!trace_file.empty()) {
    auto loaded = workflow::load_workflow_file(trace_file);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", trace_file.c_str(),
                   loaded.error().to_string().c_str());
      return 1;
    }
    wf = std::move(loaded).value();
  } else {
    Rng rng(seed);
    exp::Workload w;
    if (workload == "dd") {
      w = exp::Workload::dd;
    } else if (workload == "montage") {
      w = exp::Workload::montage;
    } else if (workload == "blast") {
      w = exp::Workload::blast;
    } else {
      std::fprintf(stderr, "unknown workload: %s\n", workload.c_str());
      return 2;
    }
    wf = exp::make_workload(w, rng);
  }

  exp::Scenario sc(params);
  std::printf("cluster: %zu nodes (%zu own + %zu victims), alpha=%.2f\n",
              params.total_nodes, sc.own_nodes().size(),
              sc.victim_nodes().size(), params.own_fraction);
  std::printf("workload: %s (%zu tasks, %s intermediate data)\n\n",
              wf.name.c_str(), wf.tasks.size(),
              format_bytes(wf.total_output_bytes()).c_str());

  exp::UtilizationWindow own_w(sc.cluster(), sc.own_nodes());
  own_w.start();
  std::unique_ptr<exp::UtilizationWindow> vic_w;
  if (!sc.victim_nodes().empty()) {
    vic_w = std::make_unique<exp::UtilizationWindow>(sc.cluster(),
                                                     sc.victim_nodes());
    vic_w->start();
  }

  workflow::Engine engine(sc.cluster(), sc.fs(), sc.own_nodes());
  workflow::Report report;
  sc.sim().spawn([](workflow::Engine& e, workflow::Workflow w,
                    workflow::Report& out) -> sim::Task<> {
    out = co_await e.run(std::move(w));
  }(engine, std::move(wf), report));
  sc.sim().run();

  if (!report.status.ok()) {
    std::printf("FAILED: %s\n", report.status.error().to_string().c_str());
    return 1;
  }
  std::printf("makespan:   %s\n", format_duration(report.makespan).c_str());
  std::printf("node-hours: %.2f (own reservation)\n",
              report.node_hours(sc.own_nodes().size()));
  std::printf("I/O:        %s written, %s read\n",
              format_bytes(report.bytes_written).c_str(),
              format_bytes(report.bytes_read).c_str());
  const auto ou = own_w.finish();
  std::printf("own nodes:  CPU %.1f%%, NIC %.1f%%\n", ou.cpu * 100,
              ou.nic() * 100);
  if (vic_w) {
    const auto vu = vic_w->finish();
    std::printf("victims:    CPU %.1f%%, NIC %.1f%% "
                "(cap %s per container)\n",
                vu.cpu * 100, vu.nic() * 100,
                format_rate(params.victim_net_cap).c_str());
  }
  Bytes own_bytes = 0, victim_bytes = 0;
  for (NodeId n : sc.own_nodes()) own_bytes += sc.fs().bytes_on(n);
  for (NodeId n : sc.victim_nodes()) victim_bytes += sc.fs().bytes_on(n);
  const double total = double(own_bytes + victim_bytes);
  std::printf("data split: %s own (%.0f%%), %s scavenged\n",
              format_bytes(own_bytes).c_str(),
              total > 0 ? 100.0 * double(own_bytes) / total : 0.0,
              format_bytes(victim_bytes).c_str());
  return 0;
}
