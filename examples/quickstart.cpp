// Quickstart: bring up MemFSS on a small simulated cluster, scavenge
// memory from other tenants' nodes, and do file I/O through the client.
//
//   1. build a 12-node cluster and a reservation system;
//   2. reserve 4 own nodes for MemFSS, 8 for a tenant;
//   3. the tenant offers 8 GiB per node on the secondary queue;
//   4. MemFSS claims the offers as victim class 1, targeting 25% of the
//      data on own nodes (the paper's best-performing alpha);
//   5. write and read files, then inspect the placement.
#include <cstdio>

#include "common/str.hpp"
#include "exp/scenario.hpp"
#include "fs/client.hpp"

using namespace memfss;

namespace {

sim::Task<> demo(exp::Scenario& sc) {
  fs::Client client = sc.fs().client(sc.own_nodes().front());

  // Directory tree + a few files (sizes are accounted, not materialized).
  (void)co_await client.mkdirs("/results/run-1");
  for (int i = 0; i < 8; ++i) {
    auto st = co_await client.write_file(
        strformat("/results/run-1/part-%d", i), 256 * units::MiB);
    if (!st.ok()) {
      std::printf("write failed: %s\n", st.error().to_string().c_str());
      co_return;
    }
  }

  auto listing = co_await client.readdir("/results/run-1");
  std::printf("/results/run-1 holds %zu files\n", listing.value().size());

  auto bytes = co_await client.read_file("/results/run-1/part-3");
  std::printf("read back part-3: %s\n",
              format_bytes(bytes.value()).c_str());

  // Small real-bytes file: contents survive the placement machinery.
  std::vector<std::uint8_t> payload{'h', 'e', 'l', 'l', 'o'};
  (void)co_await client.write_file_bytes("/results/hello", payload);
  auto back = co_await client.read_file_bytes("/results/hello");
  std::printf("materialized roundtrip: %s\n",
              back.ok() && back.value() == payload ? "ok" : "MISMATCH");
}

}  // namespace

int main() {
  exp::ScenarioParams params;
  params.total_nodes = 12;
  params.own_nodes = 4;
  params.own_fraction = 0.25;  // 25% of data stays on own nodes
  params.victim_memory_cap = 8 * units::GiB;

  exp::Scenario sc(params);
  std::printf("cluster: %zu nodes (%zu own + %zu scavenged victims)\n",
              params.total_nodes, sc.own_nodes().size(),
              sc.victim_nodes().size());

  sc.sim().spawn(demo(sc));
  sc.sim().run();

  std::printf("\nper-node data after the run:\n");
  for (const auto& [node, bytes] : sc.fs().distribution()) {
    std::printf("  node %2u (%s): %s\n", node,
                node < 4 ? "own   " : "victim",
                format_bytes(bytes).c_str());
  }
  std::printf("total stored: %s across %zu files\n",
              format_bytes(sc.fs().total_bytes()).c_str(),
              sc.fs().meta().ns().file_count());
  std::printf("simulated time: %s\n",
              format_duration(sc.sim().now()).c_str());
  return 0;
}
