// Workflow gallery: run every real-world workflow shape the paper cites
// (§II-A) on the same scavenging deployment and compare how far each is
// from perfect scalability -- the utilization argument behind MemFSS.
//
// For each workflow we report the makespan, the critical-path lower
// bound, the achieved parallel efficiency (total CPU work / (makespan x
// cores)), and the I/O volume through the filesystem.
#include <cstdio>

#include "common/rng.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "exp/scenario.hpp"
#include "workflow/engine.hpp"
#include "workflow/generators.hpp"

using namespace memfss;

namespace {

workflow::Report run_on_scenario(workflow::Workflow wf) {
  exp::ScenarioParams params;
  params.total_nodes = 16;
  params.own_nodes = 4;
  params.own_fraction = 0.25;
  params.victim_memory_cap = 8 * units::GiB;
  exp::Scenario sc(params);
  workflow::Engine engine(sc.cluster(), sc.fs(), sc.own_nodes());
  workflow::Report out;
  sc.sim().spawn([](workflow::Engine& e, workflow::Workflow w,
                    workflow::Report& o) -> sim::Task<> {
    o = co_await e.run(std::move(w));
  }(engine, std::move(wf), out));
  sc.sim().run();
  return out;
}

}  // namespace

int main() {
  Rng rng(2016);
  struct Entry {
    const char* name;
    workflow::Workflow wf;
  };
  workflow::MontageParams montage;
  montage.tiles = 256;
  montage.concat_cpu = 20;
  montage.bgmodel_cpu = 30;
  montage.imgtbl_cpu = 8;
  montage.madd_cpu = 45;
  montage.shrink_cpu = 5;
  workflow::BlastParams blast;
  blast.queries = 32;

  std::vector<Entry> entries;
  entries.push_back({"Montage", workflow::make_montage(montage, rng)});
  entries.push_back({"BLAST", workflow::make_blast(blast, rng)});
  entries.push_back(
      {"CyberShake",
       workflow::make_cybershake(workflow::CyberShakeParams{}, rng)});
  entries.push_back({"LIGO", workflow::make_ligo(workflow::LigoParams{}, rng)});
  entries.push_back(
      {"SIPHT", workflow::make_sipht(workflow::SiphtParams{}, rng)});
  entries.push_back(
      {"Epigenomics",
       workflow::make_epigenomics(workflow::EpigenomicsParams{}, rng)});

  std::printf("Workflow gallery on 4 own + 12 victim nodes (alpha=25%%)\n\n");
  Table t({"workflow", "tasks", "data", "makespan", "critical path",
           "parallel efficiency %", "widest stage"});
  for (auto& e : entries) {
    auto dag = workflow::Dag::build(e.wf);
    if (!dag.ok()) {
      std::printf("%s: invalid DAG: %s\n", e.name,
                  dag.error().to_string().c_str());
      return 1;
    }
    const double work = e.wf.total_cpu_seconds();
    const double cp = dag.value().critical_path_seconds(e.wf);
    const std::size_t width = dag.value().max_stage_width(e.wf);
    const std::size_t tasks = e.wf.tasks.size();
    const Bytes data = e.wf.total_output_bytes();

    const auto report = run_on_scenario(std::move(e.wf));
    if (!report.status.ok()) {
      std::printf("%s FAILED: %s\n", e.name,
                  report.status.error().to_string().c_str());
      return 1;
    }
    const double efficiency =
        work / (report.makespan * 4.0 * 16.0) * 100.0;
    t.add_row({e.name, strformat("%zu", tasks),
               format_bytes(data),
               format_duration(report.makespan),
               format_duration(cp),
               strformat("%.0f", efficiency),
               strformat("%zu", width)});
  }
  t.print();
  std::printf(
      "\nEfficiency far below 100%% on every workflow is the paper's\n"
      "motivation: the reserved CPUs idle during narrow stages, while\n"
      "memory holds the intermediate data -- so give the memory to a\n"
      "small reservation and scavenge the rest.\n");
  return 0;
}
