// Scavenging workflow: run a Montage-like DAG on a small own-node
// reservation while MemFSS extends its storage over victim nodes -- and
// survive a victim being reclaimed by its tenant mid-run.
//
// Demonstrates:
//   - the workflow engine scheduling wide + serial stages onto own nodes;
//   - placement epochs (all intermediate data striped by weighted HRW);
//   - the victim monitor: when the tenant on one victim node suddenly
//     needs memory, MemFSS evacuates that node without stopping the run.
#include <cstdio>

#include "common/rng.hpp"
#include "common/str.hpp"
#include "exp/scenario.hpp"
#include "workflow/engine.hpp"
#include "workflow/generators.hpp"

using namespace memfss;

int main() {
  exp::ScenarioParams params;
  params.total_nodes = 16;
  params.own_nodes = 4;
  params.own_fraction = 0.25;
  params.victim_memory_cap = 8 * units::GiB;
  exp::Scenario sc(params);

  // Evacuate automatically when a tenant pushes node memory past 60%.
  sc.fs().arm_victim_monitors(0.6);

  Rng rng(2024);
  workflow::MontageParams mp;
  mp.tiles = 128;
  mp.concat_cpu = 20;
  mp.bgmodel_cpu = 30;
  mp.imgtbl_cpu = 8;
  mp.madd_cpu = 45;
  mp.shrink_cpu = 5;
  auto wf = workflow::make_montage(mp, rng);
  std::printf("Montage instance: %zu tasks, %s intermediate data\n",
              wf.tasks.size(),
              format_bytes(wf.total_output_bytes()).c_str());

  workflow::Engine engine(sc.cluster(), sc.fs(), sc.own_nodes());
  workflow::Report report;
  sc.sim().spawn([](workflow::Engine& e, workflow::Workflow w,
                    workflow::Report& out) -> sim::Task<> {
    out = co_await e.run(std::move(w));
  }(engine, std::move(wf), report));

  // 40 simulated seconds in, the tenant on victim node 6 allocates most
  // of its memory: the monitor fires and MemFSS evacuates.
  const NodeId reclaimed = sc.victim_nodes()[2];
  sc.sim().schedule(40.0, [&sc, reclaimed] {
    auto& mem = sc.cluster().node(reclaimed).memory();
    std::printf("[t=%.0fs] tenant on node %u reclaims its memory\n",
                sc.sim().now(), reclaimed);
    (void)mem.try_alloc(static_cast<Bytes>(mem.capacity() * 0.7));
  });

  sc.sim().run();

  std::printf("\nworkflow %s in %s (%zu tasks)\n",
              report.status.ok() ? "completed" : "FAILED",
              format_duration(report.makespan).c_str(), report.tasks_run);
  std::printf("evacuated node %u now holds %s (store %s)\n", reclaimed,
              format_bytes(sc.fs().bytes_on(reclaimed)).c_str(),
              sc.fs().server(reclaimed).store().closed() ? "closed"
                                                         : "open");
  std::printf("stage durations:\n");
  for (const auto& [stage, stats] : report.stage_durations) {
    std::printf("  %-12s x%-5zu mean %s\n", stage.c_str(), stats.count(),
                format_duration(stats.mean()).c_str());
  }
  std::printf("lazy relocations: %llu, read retries: %llu\n",
              (unsigned long long)sc.fs().counters().lazy_relocations,
              (unsigned long long)sc.fs().counters().read_retries);
  return report.status.ok() ? 0 : 1;
}
