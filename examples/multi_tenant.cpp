// Multi-tenant co-location: measure what scavenging costs the victims.
//
// A TeraSort tenant runs on the victim nodes while MemFSS loops a dd
// write workload from its own nodes, scavenging victim memory. The
// example runs the tenant clean, then co-located, and prints the
// slowdown -- the quantity Figures 3-6 of the paper sweep.
#include <cstdio>

#include "exp/experiments.hpp"
#include "tenant/suites.hpp"

using namespace memfss;

int main() {
  exp::SlowdownOptions opt;
  opt.scenario.total_nodes = 20;
  opt.scenario.own_nodes = 4;
  opt.scenario.own_fraction = 0.25;

  const auto app = tenant::find_app("TeraSort");
  if (!app) {
    std::printf("TeraSort not in catalog\n");
    return 1;
  }

  std::printf("tenant: %s (%s) on %zu victim nodes\n", app->name.c_str(),
              app->suite.c_str(),
              opt.scenario.total_nodes - opt.scenario.own_nodes);

  const auto clean =
      exp::run_tenant_under_scavenging(*app, exp::Workload::none, opt);
  std::printf("clean run:      %7.1f s\n", clean.duration);

  for (auto w : {exp::Workload::dd, exp::Workload::montage,
                 exp::Workload::blast}) {
    const auto loaded = exp::run_tenant_under_scavenging(*app, w, opt);
    std::printf("with %-8s : %7.1f s  -> slowdown %+.1f%%\n",
                exp::workload_name(w).c_str(), loaded.duration,
                (loaded.duration / clean.duration - 1.0) * 100.0);
  }
  return 0;
}
