// Hot-path performance harness: the simulator's three inner loops.
//
// Micro benches:
//   - fabric.recompute_per_sec_f<N>: one full max-min water-filling pass
//     over N concurrent flows (the cost every flow arrival/completion
//     pays), N swept 10^2..10^5;
//   - placement.places_per_sec: two-layer class-HRW placements through the
//     policy facade, stripe keys in the namespace's canonical form;
//   - sim.events_per_sec: schedule+dispatch throughput of the event loop
//     under the self-rescheduling-chain pattern every coroutine uses.
//
// Macro bench:
//   - fig2_ddbag.wall_clock_sec: a fig2-shaped dd bag (scaled-down Fig. 2
//     point: own+victim cluster, alpha=0.25, dd tasks writing striped
//     files) timed end-to-end in host wall-clock.
//
// Byte-pump benches (DESIGN.md §14 -- the SIMD-dispatched hot loops):
//   - erasure.rs_encode_GBps / rs_decode_loss_GBps: RS(8, 3) over a 1 MiB
//     payload on the active GF(2^8) kernel, plus *_scalar variants pinned
//     to the portable backend (the dispatch win is the ratio between the
//     two); decode runs with data shards {0, 2} and parity {9} lost, so it
//     pays matrix inversion + reconstruction every stripe.
//   - hash.fnv_batch_MBps / fnv_scalar_MBps: fnv1a_many's interleaved
//     4-lane digest loop vs. one fnv1a call per key over the same 4096
//     placement-shaped keys.
//
// Output: BENCH_hotpath.json (or $MEMFSS_BENCH_OUT) with rows of
//   {"bench", "metric", "value", "unit", "seed"}
// -- the schema scripts/bench_perf.sh commits at the repo root so future
// PRs have a perf trajectory, and scripts/check.sh --perf regresses
// against. Wall-clock numbers are machine-dependent; the trajectory is
// only meaningful within one machine, which is why the committed file is
// regenerated (baseline rows preserved) rather than diffed.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "erasure/gf256_simd.hpp"
#include "erasure/reed_solomon.hpp"
#include "exp/experiments.hpp"
#include "fs/namespace.hpp"
#include "fs/placement.hpp"
#include "hash/hashes.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"

using namespace memfss;

namespace {

constexpr std::uint64_t kSeed = 42;

struct Row {
  std::string bench, metric;
  double value = 0.0;
  std::string unit;
  std::uint64_t seed = kSeed;
};

std::vector<Row> g_rows;

void emit(const std::string& bench, const std::string& metric, double value,
          const std::string& unit) {
  g_rows.push_back({bench, metric, value, unit, kSeed});
  std::printf("  %-14s %-28s %14.1f %s\n", bench.c_str(), metric.c_str(),
              value, unit.c_str());
}

double now_sec() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

// --- fabric: water-filling recompute cost vs. concurrent flow count ---------

sim::Task<> hold_flow(net::Fabric& fab, NodeId src, NodeId dst, Rate cap,
                      net::CapGroup* grp) {
  // Effectively-infinite flows: the bench measures recompute cost at a
  // fixed population, not completions.
  co_await fab.transfer(src, dst, Bytes{1} << 50, cap, grp);
}

void bench_fabric(std::size_t flows) {
  const std::size_t nodes = 64;
  sim::Simulator sim;
  net::Fabric fab(sim, nodes, net::NicSpec{});
  // One shared ceiling per "victim" destination, like the container caps
  // of scavenged stores: exercises the group-constraint path.
  std::vector<std::unique_ptr<net::CapGroup>> groups;
  for (std::size_t g = 0; g < 8; ++g)
    groups.push_back(std::make_unique<net::CapGroup>(500e6));
  Rng rng(kSeed);
  for (std::size_t i = 0; i < flows; ++i) {
    const NodeId src = static_cast<NodeId>(rng.uniform_u64(0, 31));
    const NodeId dst = static_cast<NodeId>(rng.uniform_u64(32, 63));
    net::CapGroup* grp =
        (dst % 8 < 4) ? groups[dst % groups.size()].get() : nullptr;
    sim.spawn(hold_flow(fab, src, dst, net::Fabric::kUncapped, grp));
  }
  sim.run_until(1.0);  // all arrivals processed, nothing completes
  if (fab.active_flows() != flows) {
    std::fprintf(stderr, "fabric bench: %zu flows active, expected %zu\n",
                 fab.active_flows(), flows);
    std::exit(1);
  }
  // set_nic forces settle+recompute: exactly the per-event hot path.
  const std::size_t reps = flows >= 50000 ? 20 : (flows >= 5000 ? 100 : 400);
  const double t0 = now_sec();
  for (std::size_t r = 0; r < reps; ++r) fab.set_nic(0, net::NicSpec{});
  const double dt = now_sec() - t0;
  emit("fabric", "recompute_per_sec_f" + std::to_string(flows),
       static_cast<double>(reps) / dt, "recompute/s");
}

// --- placement: class-HRW placements/sec ------------------------------------

void bench_placement() {
  fs::ClassMembership members;
  std::vector<NodeId> own, victims;
  for (NodeId n = 0; n < 8; ++n) own.push_back(n);
  for (NodeId n = 8; n < 40; ++n) victims.push_back(n);
  members.set_members(0, own);
  members.set_members(1, victims);
  fs::PlacementEpoch epoch;
  epoch.id = 1;
  epoch.weights = {{0, 0.42}, {1, 0.0}};
  fs::ClassHrwPolicy policy(epoch, members);

  const std::size_t n = 200000;
  volatile NodeId sink = 0;
  double t0 = now_sec();
  for (std::size_t i = 0; i < n; ++i) {
    const auto nodes = policy.place(fs::Namespace::stripe_key(7, i), 2);
    sink = nodes[0];
  }
  double dt = now_sec() - t0;
  (void)sink;
  emit("placement", "places_per_sec", static_cast<double>(n) / dt, "place/s");

  t0 = now_sec();
  for (std::size_t i = 0; i < n; ++i) {
    const auto nodes =
        policy.place(fs::Namespace::stripe_key_digest(7, i), 2);
    sink = nodes[0];
  }
  dt = now_sec() - t0;
  emit("placement", "places_digest_per_sec", static_cast<double>(n) / dt,
       "place/s");
}

// --- simulator: event loop throughput ----------------------------------------

void bench_simulator() {
  sim::Simulator sim;
  const std::uint64_t total = 2000000;
  const std::size_t chains = 64;
  std::uint64_t remaining = total;
  std::function<void()> tick;  // self-rescheduling: the coroutine pattern
  tick = [&] {
    if (remaining > 0) {
      --remaining;
      sim.schedule(1e-7, tick);
    }
  };
  const double t0 = now_sec();
  for (std::size_t c = 0; c < chains; ++c) sim.schedule(0.0, tick);
  sim.run();
  const double dt = now_sec() - t0;
  emit("sim", "events_per_sec",
       static_cast<double>(sim.executed_events()) / dt, "event/s");
}

// --- erasure: Reed-Solomon stripe coding GB/s --------------------------------

void bench_erasure_kernel(const char* suffix,
                          const erasure::GF256Kernels* kernels) {
  const std::size_t k = 8, m = 3;
  const erasure::ReedSolomon rs(k, m, kernels);
  Rng rng(kSeed);
  std::vector<std::uint8_t> data(1 << 20);
  for (auto& b : data) b = std::uint8_t(rng.next_u64());

  // Encode into a caller-owned arena: the shape ec::put uses, so the
  // number is pure coding cost, not allocator traffic.
  const std::size_t ss = rs.shard_size(data.size());
  std::vector<std::uint8_t> arena((k + m) * ss);
  std::vector<std::uint8_t*> ptrs(k + m);
  for (std::size_t i = 0; i < k + m; ++i) ptrs[i] = arena.data() + i * ss;
  std::size_t reps = 4;
  double dt = 0.0;
  do {  // grow reps until the sample is long enough to trust
    reps *= 2;
    const double t0 = now_sec();
    for (std::size_t r = 0; r < reps; ++r)
      if (!rs.encode_into(data, ptrs.data(), ss).ok()) std::exit(1);
    dt = now_sec() - t0;
  } while (dt < 0.2);
  emit("erasure", std::string("rs_encode") + suffix + "_GBps",
       static_cast<double>(reps) * static_cast<double>(data.size()) / dt / 1e9,
       "GB/s");

  // Decode with losses straddling data and parity: shards 0 and 2 (data)
  // and 9 (parity) gone, the worst-case repair read.
  auto lossy = rs.encode(data);
  lossy[0].clear();
  lossy[2].clear();
  lossy[9].clear();
  reps = 2;
  do {
    reps *= 2;
    const double t0 = now_sec();
    for (std::size_t r = 0; r < reps; ++r) {
      auto dec = rs.decode(lossy, data.size());
      if (!dec.ok()) std::exit(1);
    }
    dt = now_sec() - t0;
  } while (dt < 0.2);
  emit("erasure", std::string("rs_decode_loss") + suffix + "_GBps",
       static_cast<double>(reps) * static_cast<double>(data.size()) / dt / 1e9,
       "GB/s");
}

void bench_erasure() {
  bench_erasure_kernel("", nullptr);  // active (dispatched) kernel
  bench_erasure_kernel("_scalar", erasure::gf256_kernels_by_name("scalar"));
}

// --- hash: batched FNV-1a digest MB/s ----------------------------------------

void bench_hash_batch() {
  // Placement-shaped keys: the digest batch HRW scoring consumes.
  const std::size_t n = 4096;
  std::vector<std::string> keys;
  keys.reserve(n);
  std::size_t bytes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back("i12345:" + std::to_string(i) + ":stripe-payload-key");
    bytes += keys.back().size();
  }
  std::vector<std::string_view> views(keys.begin(), keys.end());
  std::vector<std::uint64_t> out(n);

  std::size_t reps = 8;
  double dt = 0.0;
  do {
    reps *= 2;
    const double t0 = now_sec();
    for (std::size_t r = 0; r < reps; ++r) hash::fnv1a_many(views, out);
    dt = now_sec() - t0;
  } while (dt < 0.2);
  emit("hash", "fnv_batch_MBps",
       static_cast<double>(reps) * static_cast<double>(bytes) / dt / 1e6,
       "MB/s");

  reps = 8;
  do {
    reps *= 2;
    const double t0 = now_sec();
    for (std::size_t r = 0; r < reps; ++r)
      for (std::size_t i = 0; i < n; ++i) out[i] = hash::fnv1a(views[i]);
    dt = now_sec() - t0;
  } while (dt < 0.2);
  volatile std::uint64_t sink = out[n - 1];
  (void)sink;
  emit("hash", "fnv_scalar_MBps",
       static_cast<double>(reps) * static_cast<double>(bytes) / dt / 1e6,
       "MB/s");
}

// --- macro: fig2-shaped dd bag -----------------------------------------------

void bench_fig2_ddbag() {
  exp::Fig2Options opt;
  opt.dd_tasks = 2048;              // paper-scale Fig. 2 point: a dd bag
  opt.dd_bytes = 128 * units::MiB;  // striped over own+victim nodes
  const double t0 = now_sec();
  const auto row = exp::run_fig2(0.25, opt);
  const double dt = now_sec() - t0;
  emit("fig2_ddbag", "wall_clock_sec", dt, "s");
  emit("fig2_ddbag", "sim_runtime_sec", row.runtime, "sim-s");
}

void write_json(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    std::fprintf(f,
                 "  {\"bench\": \"%s\", \"metric\": \"%s\", \"value\": %.6g, "
                 "\"unit\": \"%s\", \"seed\": %llu}%s\n",
                 r.bench.c_str(), r.metric.c_str(), r.value, r.unit.c_str(),
                 (unsigned long long)r.seed,
                 i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("(wrote %s)\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const char* out = argc > 1 ? argv[1] : std::getenv("MEMFSS_BENCH_OUT");
  if (!out) out = "BENCH_hotpath.json";
  std::printf("perf_hotpath: seed=%llu gf256_kernel=%s\n",
              (unsigned long long)kSeed, erasure::gf256_kernel_name());

  for (std::size_t flows : {100, 1000, 10000, 100000})
    bench_fabric(flows);
  bench_placement();
  bench_simulator();
  bench_erasure();
  bench_hash_batch();
  bench_fig2_ddbag();
  write_json(out);
  return 0;
}
