// Hot-path performance harness: the simulator's three inner loops.
//
// Micro benches:
//   - fabric.recompute_per_sec_f<N>: one full max-min water-filling pass
//     over N concurrent flows (the cost every flow arrival/completion
//     pays), N swept 10^2..10^5;
//   - placement.places_per_sec: two-layer class-HRW placements through the
//     policy facade, stripe keys in the namespace's canonical form;
//   - sim.events_per_sec: schedule+dispatch throughput of the event loop
//     under the self-rescheduling-chain pattern every coroutine uses.
//
// Macro bench:
//   - fig2_ddbag.wall_clock_sec: a fig2-shaped dd bag (scaled-down Fig. 2
//     point: own+victim cluster, alpha=0.25, dd tasks writing striped
//     files) timed end-to-end in host wall-clock.
//
// Output: BENCH_hotpath.json (or $MEMFSS_BENCH_OUT) with rows of
//   {"bench", "metric", "value", "unit", "seed"}
// -- the schema scripts/bench_perf.sh commits at the repo root so future
// PRs have a perf trajectory, and scripts/check.sh --perf regresses
// against. Wall-clock numbers are machine-dependent; the trajectory is
// only meaningful within one machine, which is why the committed file is
// regenerated (baseline rows preserved) rather than diffed.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "exp/experiments.hpp"
#include "fs/namespace.hpp"
#include "fs/placement.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"

using namespace memfss;

namespace {

constexpr std::uint64_t kSeed = 42;

struct Row {
  std::string bench, metric;
  double value = 0.0;
  std::string unit;
  std::uint64_t seed = kSeed;
};

std::vector<Row> g_rows;

void emit(const std::string& bench, const std::string& metric, double value,
          const std::string& unit) {
  g_rows.push_back({bench, metric, value, unit, kSeed});
  std::printf("  %-14s %-28s %14.1f %s\n", bench.c_str(), metric.c_str(),
              value, unit.c_str());
}

double now_sec() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

// --- fabric: water-filling recompute cost vs. concurrent flow count ---------

sim::Task<> hold_flow(net::Fabric& fab, NodeId src, NodeId dst, Rate cap,
                      net::CapGroup* grp) {
  // Effectively-infinite flows: the bench measures recompute cost at a
  // fixed population, not completions.
  co_await fab.transfer(src, dst, Bytes{1} << 50, cap, grp);
}

void bench_fabric(std::size_t flows) {
  const std::size_t nodes = 64;
  sim::Simulator sim;
  net::Fabric fab(sim, nodes, net::NicSpec{});
  // One shared ceiling per "victim" destination, like the container caps
  // of scavenged stores: exercises the group-constraint path.
  std::vector<std::unique_ptr<net::CapGroup>> groups;
  for (std::size_t g = 0; g < 8; ++g)
    groups.push_back(std::make_unique<net::CapGroup>(500e6));
  Rng rng(kSeed);
  for (std::size_t i = 0; i < flows; ++i) {
    const NodeId src = static_cast<NodeId>(rng.uniform_u64(0, 31));
    const NodeId dst = static_cast<NodeId>(rng.uniform_u64(32, 63));
    net::CapGroup* grp =
        (dst % 8 < 4) ? groups[dst % groups.size()].get() : nullptr;
    sim.spawn(hold_flow(fab, src, dst, net::Fabric::kUncapped, grp));
  }
  sim.run_until(1.0);  // all arrivals processed, nothing completes
  if (fab.active_flows() != flows) {
    std::fprintf(stderr, "fabric bench: %zu flows active, expected %zu\n",
                 fab.active_flows(), flows);
    std::exit(1);
  }
  // set_nic forces settle+recompute: exactly the per-event hot path.
  const std::size_t reps = flows >= 50000 ? 20 : (flows >= 5000 ? 100 : 400);
  const double t0 = now_sec();
  for (std::size_t r = 0; r < reps; ++r) fab.set_nic(0, net::NicSpec{});
  const double dt = now_sec() - t0;
  emit("fabric", "recompute_per_sec_f" + std::to_string(flows),
       static_cast<double>(reps) / dt, "recompute/s");
}

// --- placement: class-HRW placements/sec ------------------------------------

void bench_placement() {
  fs::ClassMembership members;
  std::vector<NodeId> own, victims;
  for (NodeId n = 0; n < 8; ++n) own.push_back(n);
  for (NodeId n = 8; n < 40; ++n) victims.push_back(n);
  members.set_members(0, own);
  members.set_members(1, victims);
  fs::PlacementEpoch epoch;
  epoch.id = 1;
  epoch.weights = {{0, 0.42}, {1, 0.0}};
  fs::ClassHrwPolicy policy(epoch, members);

  const std::size_t n = 200000;
  volatile NodeId sink = 0;
  double t0 = now_sec();
  for (std::size_t i = 0; i < n; ++i) {
    const auto nodes = policy.place(fs::Namespace::stripe_key(7, i), 2);
    sink = nodes[0];
  }
  double dt = now_sec() - t0;
  (void)sink;
  emit("placement", "places_per_sec", static_cast<double>(n) / dt, "place/s");

  t0 = now_sec();
  for (std::size_t i = 0; i < n; ++i) {
    const auto nodes =
        policy.place(fs::Namespace::stripe_key_digest(7, i), 2);
    sink = nodes[0];
  }
  dt = now_sec() - t0;
  emit("placement", "places_digest_per_sec", static_cast<double>(n) / dt,
       "place/s");
}

// --- simulator: event loop throughput ----------------------------------------

void bench_simulator() {
  sim::Simulator sim;
  const std::uint64_t total = 2000000;
  const std::size_t chains = 64;
  std::uint64_t remaining = total;
  std::function<void()> tick;  // self-rescheduling: the coroutine pattern
  tick = [&] {
    if (remaining > 0) {
      --remaining;
      sim.schedule(1e-7, tick);
    }
  };
  const double t0 = now_sec();
  for (std::size_t c = 0; c < chains; ++c) sim.schedule(0.0, tick);
  sim.run();
  const double dt = now_sec() - t0;
  emit("sim", "events_per_sec",
       static_cast<double>(sim.executed_events()) / dt, "event/s");
}

// --- macro: fig2-shaped dd bag -----------------------------------------------

void bench_fig2_ddbag() {
  exp::Fig2Options opt;
  opt.dd_tasks = 2048;              // paper-scale Fig. 2 point: a dd bag
  opt.dd_bytes = 128 * units::MiB;  // striped over own+victim nodes
  const double t0 = now_sec();
  const auto row = exp::run_fig2(0.25, opt);
  const double dt = now_sec() - t0;
  emit("fig2_ddbag", "wall_clock_sec", dt, "s");
  emit("fig2_ddbag", "sim_runtime_sec", row.runtime, "sim-s");
}

void write_json(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    std::fprintf(f,
                 "  {\"bench\": \"%s\", \"metric\": \"%s\", \"value\": %.6g, "
                 "\"unit\": \"%s\", \"seed\": %llu}%s\n",
                 r.bench.c_str(), r.metric.c_str(), r.value, r.unit.c_str(),
                 (unsigned long long)r.seed,
                 i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("(wrote %s)\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const char* out = argc > 1 ? argv[1] : std::getenv("MEMFSS_BENCH_OUT");
  if (!out) out = "BENCH_hotpath.json";
  std::printf("perf_hotpath: seed=%llu\n", (unsigned long long)kSeed);

  for (std::size_t flows : {100, 1000, 10000, 100000})
    bench_fabric(flows);
  bench_placement();
  bench_simulator();
  bench_fig2_ddbag();
  write_json(out);
  return 0;
}
