// Ablation: workflow slot policies.
//
// The engine defaults to least-loaded dispatch; this compares the four
// policies on a Montage instance whose wide/narrow stage mix makes the
// choice matter (random/pack-first can pile long tasks onto one node
// while others idle).
#include <cstdio>

#include "common/rng.hpp"
#include "common/str.hpp"
#include "common/table.hpp"
#include "exp/scenario.hpp"
#include "workflow/engine.hpp"
#include "workflow/generators.hpp"

using namespace memfss;

namespace {

workflow::Report run_policy(workflow::SlotPolicy policy) {
  exp::ScenarioParams params;
  params.total_nodes = 12;
  params.own_nodes = 4;
  params.own_fraction = 0.25;
  params.victim_memory_cap = 8 * units::GiB;
  exp::Scenario sc(params);

  Rng rng(7);
  workflow::MontageParams mp;
  mp.tiles = 192;
  mp.concat_cpu = 15;
  mp.bgmodel_cpu = 25;
  mp.imgtbl_cpu = 6;
  mp.madd_cpu = 35;
  mp.shrink_cpu = 4;
  auto wf = workflow::make_montage(mp, rng);

  workflow::EngineConfig ecfg;
  ecfg.slot_policy = policy;
  workflow::Engine engine(sc.cluster(), sc.fs(), sc.own_nodes(), ecfg);
  workflow::Report out;
  sc.sim().spawn([](workflow::Engine& e, workflow::Workflow w,
                    workflow::Report& o) -> sim::Task<> {
    o = co_await e.run(std::move(w));
  }(engine, std::move(wf), out));
  sc.sim().run();
  return out;
}

}  // namespace

int main() {
  std::printf("Slot-policy ablation: Montage (192 tiles) on 4 own nodes\n\n");
  Table t({"policy", "makespan (s)", "node-hours"});
  struct P {
    const char* name;
    workflow::SlotPolicy policy;
  };
  for (const P& p :
       {P{"least-loaded (default)", workflow::SlotPolicy::least_loaded},
        P{"round-robin", workflow::SlotPolicy::round_robin},
        P{"random", workflow::SlotPolicy::random},
        P{"pack-first", workflow::SlotPolicy::pack_first}}) {
    const auto report = run_policy(p.policy);
    if (!report.status.ok()) {
      std::printf("%s FAILED: %s\n", p.name,
                  report.status.error().to_string().c_str());
      return 1;
    }
    t.add_row({p.name, strformat("%.1f", report.makespan),
               strformat("%.2f", report.node_hours(4))});
  }
  t.print();
  return 0;
}
