// Ablation: stripe-size sweep.
//
// The stripe size trades load balance (small stripes spread a file over
// more servers and smooth per-victim traffic) against per-request
// overhead (each stripe pays a metadata/request cost). The dd baseline
// of Fig. 2 is rerun at alpha = 25% for stripe sizes from 1 MiB to
// 64 MiB.
#include <cstdio>
#include <cstdlib>

#include "common/str.hpp"
#include "common/table.hpp"
#include "exp/experiments.hpp"

using namespace memfss;

int main() {
  exp::Fig2Options opt;
  opt.dd_tasks = 512;
  opt.dd_bytes = 128 * units::MiB;
  if (std::getenv("MEMFSS_FAST")) opt.dd_tasks = 128;

  std::printf("Stripe-size ablation: dd bag (%zu tasks x %s), alpha=25%%\n\n",
              opt.dd_tasks, format_bytes(opt.dd_bytes).c_str());
  Table t({"stripe size", "runtime (s)", "victim NIC %", "victim CPU %",
           "per-victim balance"});
  for (Bytes stripe : {1 * units::MiB, 4 * units::MiB, 16 * units::MiB,
                       64 * units::MiB}) {
    opt.scenario.stripe_size = stripe;
    const auto row = exp::run_fig2(0.25, opt);
    t.add_row({format_bytes(stripe), strformat("%.1f", row.runtime),
               strformat("%.1f", row.victim.nic() * 100),
               strformat("%.2f", row.victim.cpu * 100),
               strformat("%s / node avg",
                         format_bytes(row.victim_bytes / 32).c_str())});
  }
  t.print();
  return 0;
}
