// Table II + Figure 7: resource-consumption reduction for Montage.
//
// Paper setup: a Montage instance whose intermediate data footprint is
// ~1 TB. Standalone, 20 nodes are the minimum that hold the data in
// memory (fewer nodes: "Unable to run, data does not fit"). With
// scavenging, MemFSS runs on n in {4, 8, 16} own nodes and borrows the
// rest of the footprint from the other 40-n nodes' tenants.
//
// Expected shape: runtime grows only modestly as own nodes shrink
// (paper: 4521 s -> 4711/5213/5932 s, +4..31%) because Montage's serial
// stages bound the makespan anyway -- but node-hours drop sharply
// (25.11 -> 20.93/11.58/6.59, a 17-74% reduction). Fig. 7 is the same
// data normalized to the 20-node standalone run.
#include <cstdio>
#include <cstdlib>

#include "common/str.hpp"
#include "common/table.hpp"
#include "exp/experiments.hpp"
#include "exp/report.hpp"

using namespace memfss;

int main() {
  exp::Table2Options opt;
  if (std::getenv("MEMFSS_FAST")) {
    opt.tiles = 768;
    opt.proj_bytes_min = 16 * units::MiB;
    opt.proj_bytes_max = 24 * units::MiB;
    opt.cluster_nodes = 16;
  }
  const std::size_t full = std::getenv("MEMFSS_FAST") ? 8 : 20;
  const std::size_t infeasible = std::getenv("MEMFSS_FAST") ? 6 : 16;
  const std::vector<std::size_t> own_counts =
      std::getenv("MEMFSS_FAST") ? std::vector<std::size_t>{2, 4}
                                 : std::vector<std::size_t>{4, 8, 16};

  std::printf("Table II / Fig. 7: Montage resource consumption\n\n");

  Table t({"configuration", "nodes", "runtime (s)", "node-hours",
           "vs standalone"});
  t.set_title("Table II: resource utilization improvement");

  const auto base = exp::run_table2_standalone(full, opt);
  std::printf("Montage instance: data footprint %s\n\n",
              format_bytes(base.data_footprint).c_str());
  t.add_row({base.label, strformat("%zu", base.nodes),
             base.feasible ? strformat("%.0f", base.runtime) : "n/a",
             base.feasible ? strformat("%.2f", base.node_hours) : "n/a",
             "1.00x / 1.00x"});

  const auto small = exp::run_table2_standalone(infeasible, opt);
  t.add_row({small.label, strformat("%zu", small.nodes),
             small.feasible ? strformat("%.0f", small.runtime)
                            : "unable to run, data does not fit",
             "n/a", "n/a"});

  std::vector<exp::Table2Row> scav;
  for (std::size_t n : own_counts) {
    scav.push_back(exp::run_table2_scavenging(n, opt));
    const auto& row = scav.back();
    t.add_row({row.label, strformat("%zu", row.nodes),
               row.feasible ? strformat("%.0f", row.runtime) : "FAILED",
               row.feasible ? strformat("%.2f", row.node_hours) : "n/a",
               row.feasible && base.feasible
                   ? strformat("%.2fx time / %.2fx node-hours",
                               row.runtime / base.runtime,
                               row.node_hours / base.node_hours)
                   : "n/a"});
  }
  t.print();

  if (const char* dir = std::getenv("MEMFSS_CSV_DIR")) {
    std::vector<exp::Table2Row> all{base, small};
    all.insert(all.end(), scav.begin(), scav.end());
    const std::string path = std::string(dir) + "/table2.csv";
    if (exp::write_text_file(path, exp::table2_csv(all)).ok())
      std::printf("(wrote %s)\n", path.c_str());
  }

  if (base.feasible) {
    std::printf("\nFig. 7: normalized to the %zu-node standalone run\n",
                full);
    Table f({"own nodes", "normalized runtime", "normalized node-hours",
             "resource saving %"});
    for (const auto& row : scav) {
      if (!row.feasible) continue;
      f.add_row({strformat("%zu", row.nodes),
                 strformat("%.2f", row.runtime / base.runtime),
                 strformat("%.2f", row.node_hours / base.node_hours),
                 strformat("%.0f",
                           (1.0 - row.node_hours / base.node_hours) * 100)});
    }
    f.print();
  }
  return 0;
}
