// Ablation: placement-scheme comparison (paper §III-B and §V-C).
//
// Quantifies the design choices behind MemFSS's two-layer weighted HRW:
//   1. steering accuracy -- how close each scheme gets to a target
//      own/victim split (only the weighted class layer can steer at all);
//   2. balance -- coefficient of variation of per-node load inside each
//      class (uniform layer-2 keeps victim interference predictable);
//   3. disruption -- fraction of keys that move when one node leaves
//      (HRW/consistent: ~1/n; modulo: nearly everything).
#include <cstdio>

#include <cmath>
#include <map>
#include <vector>

#include "common/str.hpp"
#include "common/table.hpp"
#include "fs/placement.hpp"
#include "hash/weight_solver.hpp"

using namespace memfss;

namespace {

constexpr int kKeys = 60000;

std::vector<NodeId> iota_nodes(std::size_t n, NodeId base = 0) {
  std::vector<NodeId> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = base + NodeId(i);
  return v;
}

std::string key_of(int i) { return strformat("stripe-%d", i); }

double balance_cv(const std::map<NodeId, int>& counts) {
  if (counts.empty()) return 0.0;
  double mean = 0;
  for (const auto& [n, c] : counts) mean += c;
  mean /= double(counts.size());
  double var = 0;
  for (const auto& [n, c] : counts) var += (c - mean) * (c - mean);
  var /= double(counts.size());
  return mean > 0 ? std::sqrt(var) / mean : 0.0;
}

struct SchemeStats {
  double own_fraction = 0;   // achieved share on own nodes
  double cv = 0;             // per-node balance (all nodes)
  double disruption = 0;     // keys moved when one victim leaves
};

SchemeStats evaluate(fs::PlacementPolicy& before,
                     fs::PlacementPolicy& after, std::size_t own_count) {
  SchemeStats s;
  std::map<NodeId, int> counts;
  int own_hits = 0, moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    const auto k = key_of(i);
    const NodeId b = before.place(k, 1)[0];
    ++counts[b];
    if (b < own_count) ++own_hits;
    if (after.place(k, 1)[0] != b) ++moved;
  }
  s.own_fraction = double(own_hits) / kKeys;
  s.cv = balance_cv(counts);
  s.disruption = double(moved) / kKeys;
  return s;
}

}  // namespace

int main() {
  // The paper's shape: 8 own + 32 victims, target 25% on own nodes; the
  // "after" configuration removes victim node 139.
  const std::size_t own_n = 8, victim_n = 32;
  const auto own = iota_nodes(own_n, 0);
  const auto victims = iota_nodes(victim_n, 100);
  auto victims_minus_one = victims;
  victims_minus_one.pop_back();
  auto all = own;
  all.insert(all.end(), victims.begin(), victims.end());
  auto all_minus_one = own;
  all_minus_one.insert(all_minus_one.end(), victims_minus_one.begin(),
                       victims_minus_one.end());

  Table t({"scheme", "target own %", "achieved own %", "balance CV",
           "keys moved on 1-node loss %"});
  t.set_title(
      "Placement ablation: 8 own + 32 victim nodes, 60k stripe keys");

  {  // MemFSS: two-layer weighted HRW.
    const auto w = hash::two_class_weights(0.25);
    fs::ClassMembership m1, m2;
    m1.set_members(0, own);
    m1.set_members(1, victims);
    m2.set_members(0, own);
    m2.set_members(1, victims_minus_one);
    fs::PlacementEpoch e{1, {{0, w.own}, {1, w.victim}}};
    fs::ClassHrwPolicy before(e, m1), after(e, m2);
    const auto s = evaluate(before, after, own_n);
    t.add_row({"two-layer weighted HRW (MemFSS)", "25",
               strformat("%.1f", s.own_fraction * 100),
               strformat("%.3f", s.cv),
               strformat("%.1f", s.disruption * 100)});
  }
  {  // Uniform HRW over all nodes (no steering possible).
    fs::UniformHrwPolicy before(all), after(all_minus_one);
    const auto s = evaluate(before, after, own_n);
    t.add_row({"uniform HRW (no classes)", "n/a",
               strformat("%.1f", s.own_fraction * 100),
               strformat("%.3f", s.cv),
               strformat("%.1f", s.disruption * 100)});
  }
  {  // MemFS baseline: consistent hashing ring.
    fs::ConsistentHashPolicy before(all), after(all_minus_one);
    const auto s = evaluate(before, after, own_n);
    t.add_row({"consistent hashing (MemFS)", "n/a",
               strformat("%.1f", s.own_fraction * 100),
               strformat("%.3f", s.cv),
               strformat("%.1f", s.disruption * 100)});
  }
  {  // Modulo: balanced but catastrophic on membership change.
    fs::ModuloPolicy before(all), after(all_minus_one);
    const auto s = evaluate(before, after, own_n);
    t.add_row({"modulo", "n/a",
               strformat("%.1f", s.own_fraction * 100),
               strformat("%.3f", s.cv),
               strformat("%.1f", s.disruption * 100)});
  }
  t.print();

  // Steering accuracy across the paper's alpha sweep.
  Table steer({"alpha target %", "achieved %", "abs error (pp)"});
  steer.set_title("\nWeighted class layer: steering accuracy");
  for (double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const auto w = hash::two_class_weights(alpha);
    fs::ClassMembership m;
    m.set_members(0, own);
    m.set_members(1, victims);
    fs::PlacementEpoch e{1, {{0, w.own}, {1, w.victim}}};
    fs::ClassHrwPolicy policy(e, m);
    int own_hits = 0;
    for (int i = 0; i < kKeys; ++i)
      if (policy.place(key_of(i), 1)[0] < own_n) ++own_hits;
    const double achieved = double(own_hits) / kKeys;
    steer.add_row({strformat("%.0f", alpha * 100),
                   strformat("%.2f", achieved * 100),
                   strformat("%.2f", std::abs(achieved - alpha) * 100)});
  }
  steer.print();
  return 0;
}
