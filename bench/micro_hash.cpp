// Micro-benchmarks for the placement schemes: decision cost per lookup.
//
// The paper argues HRW's O(n) decision is acceptable because MemFSS
// hashes over *classes* first (two evaluations) and then only over the
// nodes of one class; the hierarchical (skeleton) variant from the cited
// optimization trades weights for O(log n). These benchmarks quantify
// those costs on real hardware.
#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

#include "common/str.hpp"
#include "hash/class_hrw.hpp"
#include "hash/hashes.hpp"
#include "hash/consistent.hpp"
#include "hash/hrw.hpp"
#include "hash/skeleton.hpp"
#include "hash/weight_solver.hpp"

using namespace memfss;

namespace {

std::vector<NodeId> nodes(std::size_t n, NodeId base = 0) {
  std::vector<NodeId> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = base + NodeId(i);
  return v;
}

void BM_HrwSelect(benchmark::State& state) {
  const auto servers = nodes(std::size_t(state.range(0)));
  int k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hash::hrw_select(strformat("key-%d", k++ & 1023), servers));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HrwSelect)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_HrwSelectTr(benchmark::State& state) {
  const auto servers = nodes(std::size_t(state.range(0)));
  int k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::hrw_select(
        strformat("key-%d", k++ & 1023), servers,
        hash::ScoreFn::thaler_ravishankar));
  }
}
BENCHMARK(BM_HrwSelectTr)->Arg(32)->Arg(128);

void BM_TwoLayerClassHrw(benchmark::State& state) {
  // The MemFSS configuration: 8 own + N victims, alpha = 25%.
  const auto w = hash::two_class_weights(0.25);
  const std::vector<hash::NodeClass> classes{
      {0, w.own, nodes(8)},
      {1, w.victim, nodes(std::size_t(state.range(0)), 100)},
  };
  int k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hash::place(strformat("key-%d", k++ & 1023), classes));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TwoLayerClassHrw)->Arg(32)->Arg(128)->Arg(512);

void BM_ConsistentRing(benchmark::State& state) {
  hash::ConsistentRing ring(128);
  for (NodeId n : nodes(std::size_t(state.range(0)))) ring.add_node(n);
  int k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.select(strformat("key-%d", k++ & 1023)));
  }
}
BENCHMARK(BM_ConsistentRing)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_SkeletonHrw(benchmark::State& state) {
  hash::SkeletonHrw skel(nodes(std::size_t(state.range(0))), 8);
  int k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(skel.select(strformat("key-%d", k++ & 1023)));
  }
}
BENCHMARK(BM_SkeletonHrw)->Arg(8)->Arg(32)->Arg(128)->Arg(512)->Arg(4096);

void BM_HrwTop3(benchmark::State& state) {
  const auto servers = nodes(std::size_t(state.range(0)));
  int k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hash::hrw_top(strformat("key-%d", k++ & 1023), servers, 3));
  }
}
BENCHMARK(BM_HrwTop3)->Arg(32)->Arg(128);

// Batched digest + placement loops (DESIGN.md §14): fnv1a_many's
// interleaved lanes vs. one call per key, and the digest-driven
// hrw_select_many sweep vs. per-key hrw_select.
void BM_Fnv1aBatch(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  std::vector<std::string> keys;
  for (std::size_t i = 0; i < n; ++i)
    keys.push_back(strformat("i12345:%zu:stripe-payload-key", i));
  std::vector<std::string_view> views(keys.begin(), keys.end());
  std::vector<std::uint64_t> out(n);
  std::int64_t bytes = 0;
  for (const auto& k : keys) bytes += std::int64_t(k.size());
  for (auto _ : state) {
    hash::fnv1a_many(views, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_Fnv1aBatch)->Arg(64)->Arg(4096);

void BM_Fnv1aPerKey(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  std::vector<std::string> keys;
  for (std::size_t i = 0; i < n; ++i)
    keys.push_back(strformat("i12345:%zu:stripe-payload-key", i));
  std::vector<std::uint64_t> out(n);
  std::int64_t bytes = 0;
  for (const auto& k : keys) bytes += std::int64_t(k.size());
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) out[i] = hash::fnv1a(keys[i]);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_Fnv1aPerKey)->Arg(64)->Arg(4096);

void BM_HrwSelectMany(benchmark::State& state) {
  const auto servers = nodes(std::size_t(state.range(0)));
  const std::size_t n = 1024;
  std::vector<std::uint64_t> digests(n);
  for (std::size_t i = 0; i < n; ++i)
    digests[i] = hash::fnv1a(strformat("key-%zu", i));
  std::vector<NodeId> out(n);
  for (auto _ : state) {
    hash::hrw_select_many(digests, servers, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * std::int64_t(n));
}
BENCHMARK(BM_HrwSelectMany)->Arg(8)->Arg(32)->Arg(128);

void BM_WeightSolver3Class(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hash::solve_class_weights({0.5, 0.3, 0.2}, 100));
  }
}
BENCHMARK(BM_WeightSolver3Class);

}  // namespace

BENCHMARK_MAIN();
