// Shared driver for the tenant-slowdown figures (Fig. 3, 4, 5, 6): runs
// one suite's benchmarks under each MemFSS workload at one alpha and
// prints a paper-style table (one row per benchmark, one slowdown column
// per workload).
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/str.hpp"
#include "common/table.hpp"
#include "exp/experiments.hpp"
#include "tenant/app.hpp"

namespace memfss::bench {

inline exp::SlowdownOptions paper_options() {
  exp::SlowdownOptions opt;
  opt.scenario.total_nodes = 40;
  opt.scenario.own_nodes = 8;
  if (std::getenv("MEMFSS_FAST")) {
    opt.scenario.total_nodes = 16;
    opt.scenario.own_nodes = 4;
  }
  return opt;
}

struct SuiteResult {
  // slowdown[benchmark][workload]
  std::map<std::string, std::map<exp::Workload, double>> cells;
  double average(exp::Workload w) const {
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& [bench, row] : cells) {
      auto it = row.find(w);
      if (it != row.end()) {
        sum += it->second;
        ++n;
      }
    }
    return n ? sum / double(n) : 0.0;
  }
};

inline SuiteResult run_suite(const std::vector<tenant::TenantApp>& suite,
                             const std::vector<exp::Workload>& workloads,
                             double alpha, const exp::SlowdownOptions& opt) {
  SuiteResult out;
  const auto cells = exp::run_slowdown_sweep(suite, workloads, alpha, opt);
  for (const auto& c : cells) out.cells[c.tenant][c.workload] = c.slowdown;
  return out;
}

// --- cross-binary result cache ----------------------------------------------
//
// The Fig. 3/4/5 binaries each sweep one suite; Fig. 6 is their aggregate.
// To avoid re-running ~70 simulations, each sweep appends its cells to a
// cache file in the working directory and Fig. 6 consumes it, recomputing
// only combinations that are missing. Delete the file to force fresh runs.

inline const char* cache_path() {
  if (const char* p = std::getenv("MEMFSS_SLOWDOWN_CACHE")) return p;
  // Repo-root invocations (scripts/run_all_experiments.sh) land on the
  // tracked cache of measured cells; elsewhere the file is created next
  // to the working directory's bench/ if present, else locally.
  return "bench/memfss_slowdown_cache.csv";
}

inline void append_to_cache(const std::string& suite_label, double alpha,
                            const std::vector<exp::Workload>& workloads,
                            const SuiteResult& result) {
  std::ofstream out(cache_path(), std::ios::app);
  if (!out) return;
  for (const auto& [bench, row] : result.cells) {
    for (auto w : workloads) {
      auto it = row.find(w);
      if (it == row.end()) continue;
      // Labels are RFC 4180-escaped through the shared common/table helper
      // (the same one exp::report uses), so a suite or benchmark name
      // containing a comma cannot corrupt the cache.
      out << csv_row({suite_label, strformat("%g", alpha), bench,
                      exp::workload_name(w),
                      strformat("%g", it->second)})
          << '\n';
    }
  }
}

/// Load every cached cell for (suite_label, alpha). Returns an empty
/// result if the cache has no rows for that combination.
inline SuiteResult load_from_cache(const std::string& suite_label,
                                   double alpha) {
  SuiteResult out;
  std::ifstream in(cache_path());
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string suite, alpha_s, bench, workload_s, slowdown_s;
    if (!std::getline(ls, suite, ',') || !std::getline(ls, alpha_s, ',') ||
        !std::getline(ls, bench, ',') ||
        !std::getline(ls, workload_s, ',') ||
        !std::getline(ls, slowdown_s))
      continue;
    if (suite != suite_label || std::abs(std::atof(alpha_s.c_str()) - alpha) >
                                    1e-9)
      continue;
    exp::Workload w;
    if (workload_s == "dd") w = exp::Workload::dd;
    else if (workload_s == "Montage") w = exp::Workload::montage;
    else if (workload_s == "BLAST") w = exp::Workload::blast;
    else continue;
    out.cells[bench][w] = std::atof(slowdown_s.c_str());
  }
  return out;
}

/// True when the cached result covers every (benchmark, workload) cell.
inline bool cache_complete(const SuiteResult& r,
                           const std::vector<tenant::TenantApp>& suite,
                           const std::vector<exp::Workload>& workloads) {
  for (const auto& app : suite) {
    auto it = r.cells.find(app.name);
    if (it == r.cells.end()) return false;
    for (auto w : workloads)
      if (!it->second.count(w)) return false;
  }
  return true;
}

/// Cached run_suite: reuse the cache when it covers the combination,
/// otherwise run the sweep and record it.
inline SuiteResult run_suite_cached(
    const std::string& suite_label,
    const std::vector<tenant::TenantApp>& suite,
    const std::vector<exp::Workload>& workloads, double alpha,
    const exp::SlowdownOptions& opt) {
  auto cached = load_from_cache(suite_label, alpha);
  if (cache_complete(cached, suite, workloads)) {
    std::printf("(using cached cells from %s; delete it to re-run)\n",
                cache_path());
    return cached;
  }
  auto fresh = run_suite(suite, workloads, alpha, opt);
  append_to_cache(suite_label, alpha, workloads, fresh);
  return fresh;
}

inline void print_suite_table(const std::string& title,
                              const std::vector<tenant::TenantApp>& suite,
                              const std::vector<exp::Workload>& workloads,
                              const SuiteResult& result) {
  std::vector<std::string> header{"benchmark"};
  for (auto w : workloads)
    header.push_back(exp::workload_name(w) + " slowdown %");
  Table t(std::move(header));
  t.set_title(title);
  for (const auto& app : suite) {  // preserve suite (paper) order
    std::vector<std::string> row{app.name};
    for (auto w : workloads)
      row.push_back(
          strformat("%.1f", result.cells.at(app.name).at(w) * 100.0));
    t.add_row(std::move(row));
  }
  std::vector<std::string> avg{"AVERAGE"};
  for (auto w : workloads)
    avg.push_back(strformat("%.1f", result.average(w) * 100.0));
  t.add_row(std::move(avg));
  t.print();
  std::printf("\n");
}

}  // namespace memfss::bench
