// Figure 3 (a, b): HPCC slowdown induced by memory scavenging.
//
// Paper setup: the HPCC suite runs on 32 victim nodes while MemFSS
// (8 own nodes) loops one of its applications (Montage, BLAST, dd),
// storing 25% (Fig. 3a) or 50% (Fig. 3b) of the data on own nodes.
//
// Expected shape (§IV-C): most benchmarks < 10%; STREAM and the latency
// probe are hit hardest at alpha = 25% (11-12% in the paper -- memory
// bandwidth and small-message interference); the 50% case is milder than
// the 25% case; BLAST's many small requests disturb the latency-bound
// MPI benchmarks more than bulk-streaming dd does.
#include "bench/slowdown_common.hpp"
#include "tenant/suites.hpp"

using namespace memfss;

int main() {
  const auto suite = tenant::hpcc_suite();
  const std::vector<exp::Workload> workloads{
      exp::Workload::montage, exp::Workload::blast, exp::Workload::dd};
  const auto opt = bench::paper_options();

  std::printf("Figure 3: HPCC slowdown under memory scavenging "
              "(%zu own + %zu victim nodes)\n\n",
              opt.scenario.own_nodes,
              opt.scenario.total_nodes - opt.scenario.own_nodes);
  for (double alpha : {0.25, 0.5}) {
    const auto res = bench::run_suite_cached("hpcc", suite, workloads, alpha, opt);
    bench::print_suite_table(
        strformat("Fig. 3%s: alpha = %.0f%% of data on own nodes",
                  alpha == 0.25 ? "a" : "b", alpha * 100),
        suite, workloads, res);
  }
  return 0;
}
