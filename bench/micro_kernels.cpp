// Real-hardware runs of the HPCC-style microkernels (STREAM triad, FFT,
// DGEMM, RandomAccess). These calibrate the simulated node parameters:
// cluster::NodeSpec defaults to DAS-5-class figures (16 cores, 60 GB/s
// memory bus); comparing the numbers below against that spec tells you
// how this machine relates to the simulated one.
#include <benchmark/benchmark.h>

#include <complex>
#include <vector>

#include "common/rng.hpp"
#include "tenant/kernels.hpp"

using namespace memfss::tenant;

namespace {

void BM_StreamTriad(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::stream_triad(n, 1));
  }
  state.SetBytesProcessed(state.iterations() *
                          std::int64_t(n * 3 * sizeof(double)));
}
BENCHMARK(BM_StreamTriad)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);

void BM_FftRadix2(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  memfss::Rng rng(1);
  std::vector<std::complex<double>> base(n);
  for (auto& x : base) x = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  for (auto _ : state) {
    auto a = base;
    kernels::fft_radix2(a);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * std::int64_t(n));
}
BENCHMARK(BM_FftRadix2)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_DgemmBlocked(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  memfss::Rng rng(2);
  std::vector<double> a(n * n), b(n * n), c(n * n, 0.0);
  for (auto& x : a) x = rng.uniform(-1, 1);
  for (auto& x : b) x = rng.uniform(-1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernels::dgemm_blocked(n, a.data(), b.data(), c.data()));
  }
  state.SetItemsProcessed(state.iterations() * std::int64_t(2 * n * n * n));
}
BENCHMARK(BM_DgemmBlocked)->Arg(128)->Arg(256);

void BM_RandomAccess(benchmark::State& state) {
  std::vector<std::uint64_t> table(std::size_t(state.range(0)), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::random_access(table, 1 << 16));
  }
  state.SetItemsProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_RandomAccess)->Arg(1 << 16)->Arg(1 << 22);

}  // namespace

BENCHMARK_MAIN();
