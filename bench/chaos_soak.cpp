// Chaos soak harness: randomized partitions + crashes + revocation +
// memory-pressure evictions over a live write/read workload, then heal
// everything and check the durability / accounting / recovery invariants
// (see exp/chaos.hpp).
//
// Usage: chaos_soak [seed...]       (default seeds: 1 2 3)
//
// Every seed runs two arms: untiered (pressure => evacuation) and
// tiered (cold tiers on the victims, pressure => coldest-first
// demotion, crashes landing mid-demotion/mid-promotion); the tiered
// arm additionally checks the tier accounting / dual-residency /
// capacity invariants. Prints one CSV row per arm plus a
// human-readable verdict, and exits nonzero if any arm violates an
// invariant -- scripts/check.sh --chaos runs this under the sanitizer
// build.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exp/chaos.hpp"

using namespace memfss;

int main(int argc, char** argv) {
  std::vector<std::uint64_t> seeds;
  for (int i = 1; i < argc; ++i)
    seeds.push_back(std::strtoull(argv[i], nullptr, 10));
  if (seeds.empty()) seeds = {1, 2, 3};

  std::printf("%s\n", exp::chaos_csv_header().c_str());
  bool all_ok = true;
  for (const auto seed : seeds) {
    for (const bool tiered : {false, true}) {
      exp::ChaosSoakOptions opt;
      opt.seed = seed;
      opt.scenario.total_nodes = 12;
      opt.scenario.own_nodes = 4;
      opt.scenario.victim_memory_cap = 2 * units::GiB;
      opt.scenario.own_store_capacity = 4 * units::GiB;
      opt.scenario.stripe_size = 1 * units::MiB;
      if (tiered) opt.scenario.victim_tier_capacity = 3 * units::GiB;
      const auto row = exp::run_chaos_soak(opt);
      std::printf("%s\n", exp::chaos_csv_row(row).c_str());
      if (!row.ok) {
        all_ok = false;
        for (const auto& v : row.invariants.violations)
          std::fprintf(stderr, "seed %llu (%s): VIOLATION: %s\n",
                       (unsigned long long)seed,
                       tiered ? "tiered" : "untiered", v.c_str());
      }
      if (tiered && row.tier_demotions == 0) {
        all_ok = false;
        std::fprintf(stderr,
                     "seed %llu (tiered): zero demotions -- vacuous arm\n",
                     (unsigned long long)seed);
      }
    }
  }
  std::fprintf(stderr, all_ok ? "chaos soak: all invariants held\n"
                              : "chaos soak: INVARIANT VIOLATIONS\n");
  return all_ok ? 0 : 1;
}
