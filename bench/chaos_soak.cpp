// Chaos soak harness: randomized partitions + crashes + revocation +
// memory-pressure evictions over a live write/read workload, then heal
// everything and check the durability / accounting / recovery invariants
// (see exp/chaos.hpp).
//
// Usage: chaos_soak [seed...]       (default seeds: 1 2 3)
//
// Prints one CSV row per seed plus a human-readable verdict, and exits
// nonzero if any seed violates an invariant -- scripts/check.sh --chaos
// runs this under the sanitizer build.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exp/chaos.hpp"

using namespace memfss;

int main(int argc, char** argv) {
  std::vector<std::uint64_t> seeds;
  for (int i = 1; i < argc; ++i)
    seeds.push_back(std::strtoull(argv[i], nullptr, 10));
  if (seeds.empty()) seeds = {1, 2, 3};

  std::printf("%s\n", exp::chaos_csv_header().c_str());
  bool all_ok = true;
  for (const auto seed : seeds) {
    exp::ChaosSoakOptions opt;
    opt.seed = seed;
    opt.scenario.total_nodes = 12;
    opt.scenario.own_nodes = 4;
    opt.scenario.victim_memory_cap = 2 * units::GiB;
    opt.scenario.own_store_capacity = 4 * units::GiB;
    opt.scenario.stripe_size = 1 * units::MiB;
    const auto row = exp::run_chaos_soak(opt);
    std::printf("%s\n", exp::chaos_csv_row(row).c_str());
    if (!row.ok) {
      all_ok = false;
      for (const auto& v : row.invariants.violations)
        std::fprintf(stderr, "seed %llu: VIOLATION: %s\n",
                     (unsigned long long)seed, v.c_str());
    }
  }
  std::fprintf(stderr, all_ok ? "chaos soak: all invariants held\n"
                              : "chaos soak: INVARIANT VIOLATIONS\n");
  return all_ok ? 0 : 1;
}
