// Figure 5: HiBench-on-Spark slowdown at alpha = 50%.
//
// Spark pins 48 GB executors per node and keeps working sets in memory,
// so MemFSS competes with it for memory capacity *and* bandwidth (and
// indirectly the JVM GC) -- the paper reports clearly larger slowdowns
// than Hadoop/HPCC (average ~18%) and therefore only evaluates the
// 50%-on-own-nodes configuration; DFSIO is absent ("not yet implemented
// for Spark").
#include "bench/slowdown_common.hpp"
#include "tenant/suites.hpp"

using namespace memfss;

int main() {
  const auto suite = tenant::hibench_spark_suite();
  const std::vector<exp::Workload> workloads{
      exp::Workload::montage, exp::Workload::blast, exp::Workload::dd};
  const auto opt = bench::paper_options();

  std::printf("Figure 5: HiBench/Spark slowdown under memory scavenging "
              "(%zu own + %zu victim nodes, alpha = 50%%)\n\n",
              opt.scenario.own_nodes,
              opt.scenario.total_nodes - opt.scenario.own_nodes);
  const auto res = bench::run_suite_cached("hibench-spark", suite, workloads, 0.5, opt);
  bench::print_suite_table("Fig. 5: alpha = 50% of data on own nodes",
                           suite, workloads, res);
  return 0;
}
