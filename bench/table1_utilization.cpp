// Table I: CPU / memory / network utilization survey.
//
// The paper's Table I collects utilization figures from six published
// studies to motivate scavenging: clusters run hot on CPU but leave
// large fractions of memory and network idle. We reproduce the table by
// *replaying* each study's reported envelope as a synthetic tenant
// workload on a simulated 8-node cluster and measuring what our
// telemetry reports -- a closed-loop check that the simulator's
// utilization accounting recovers the profiles it is driven with
// (reported vs measured columns should agree).
#include <cstdio>

#include "common/str.hpp"
#include "common/table.hpp"
#include "exp/metrics.hpp"
#include "tenant/runner.hpp"

using namespace memfss;

namespace {

struct Study {
  const char* name;
  const char* reported_cpu;
  const char* reported_mem;
  const char* reported_net;
  double cpu_frac;   // target CPU utilization to replay (0 = n/a)
  double mem_frac;   // target resident memory fraction
  double net_rate;   // target per-node NIC bytes/s (0 = n/a)
};

// Envelope values straight from the paper's Table I (midpoints where a
// range is given).
const Study kStudies[] = {
    {"Google traces", "60%", "50%", "n/a", 0.60, 0.50, 0.0},
    {"Facebook", "n/a", "19% (median)", "n/a", 0.0, 0.19, 0.0},
    {"Taobao", "<=70%", "20-40%", "10-20 MB/s", 0.70, 0.30, 15e6},
    {"Mesos", "<=80%", "<=40%", "n/a", 0.80, 0.40, 0.0},
    {"Graph processing", "<=10%", "<=50% (mean)", "<=128 Mbit/s", 0.10,
     0.50, 16e6},
    {"Commercial cloud DCs", "n/a", "n/a", "<=20% bisection", 0.0, 0.0,
     0.20 * 3e9},
};

struct Measured {
  double cpu = 0, mem = 0;
  Rate net = 0;
};

Measured replay(const Study& s) {
  constexpr double kDuration = 100.0;
  sim::Simulator sim;
  cluster::Cluster cl(sim, 8);
  const auto& spec = cl.node(0).spec();

  tenant::TenantApp app;
  app.name = s.name;
  app.resident_memory =
      static_cast<Bytes>(s.mem_frac * double(spec.memory));
  tenant::Phase p;
  p.cpu_core_seconds = s.cpu_frac * spec.cores * kDuration;
  p.cpu_cores = spec.cores;
  p.net_bytes = static_cast<Bytes>(s.net_rate * kDuration);
  p.pattern = tenant::NetPattern::ring;
  // Pad the phase to the full window so rates, not bursts, are measured.
  p.sensitive.base_seconds = kDuration;
  app.phases = {p};

  exp::UtilizationWindow window(cl, cl.all_nodes());
  window.start();
  // Sample memory utilization mid-run (resident sets are released at the
  // end of the app, so an end-of-run sample would read zero).
  double mem_sample = 0.0;
  sim.schedule(kDuration / 2, [&] {
    for (NodeId n = 0; n < 8; ++n)
      mem_sample += cl.node(n).memory().utilization() / 8.0;
  });

  tenant::TenantRunner runner(cl, cl.all_nodes());
  sim.spawn([](tenant::TenantRunner& r, tenant::TenantApp a) -> sim::Task<> {
    (void)co_await r.run(std::move(a));
  }(runner, std::move(app)));
  sim.run();

  const auto u = window.finish();
  Measured m;
  m.cpu = u.cpu;
  m.mem = mem_sample;
  m.net = u.nic_up * spec.nic.up;
  return m;
}

}  // namespace

int main() {
  std::printf("Table I: cluster utilization survey "
              "(reported figures replayed on the simulator)\n\n");
  Table t({"study", "CPU reported", "CPU measured", "mem reported",
           "mem measured", "net reported", "net measured"});
  t.set_title("Table I: CPU, memory and network utilization");
  for (const auto& s : kStudies) {
    const auto m = replay(s);
    t.add_row({s.name, s.reported_cpu,
               s.cpu_frac > 0 ? strformat("%.0f%%", m.cpu * 100) : "n/a",
               s.reported_mem,
               s.mem_frac > 0 ? strformat("%.0f%%", m.mem * 100) : "n/a",
               s.reported_net,
               s.net_rate > 0 ? format_rate(m.net) : "n/a"});
  }
  t.print();
  std::printf(
      "\nTakeaway (paper §II-B): CPUs run hot while memory and network\n"
      "stay far below capacity -- the idle headroom MemFSS scavenges.\n");
  return 0;
}
