// Figure 2 (a-f): scavenging overhead baseline.
//
// Paper setup: 8 own nodes + 32 victim nodes (no tenant applications); a
// bag of 2048 dd tasks writes 128 MB each (256 GB total). Alpha -- the
// fraction of data kept on own nodes -- sweeps {0, 25, 50, 75, 100}%.
// Reported per alpha: average CPU and NIC utilization of both node
// groups (Fig. 2a-e) and the total runtime (Fig. 2f).
//
// Expected shape (paper §IV-B): victim CPU <= 5%, victim NIC <= ~16%
// (<= 500 MB/s of the 3 GB/s links), both falling as alpha grows; alpha =
// 25% yields the shortest runtime because per-node data loads
// (alpha/8 vs (1-alpha)/32) are then closest to balanced.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/str.hpp"
#include "common/table.hpp"
#include "exp/experiments.hpp"
#include "exp/report.hpp"

using namespace memfss;

int main() {
  exp::Fig2Options opt;
  opt.with_timeseries = true;  // Fig. 2a-e are utilization-vs-time plots
  // Paper scale by default; MEMFSS_FAST=1 shrinks the bag for smoke runs.
  if (std::getenv("MEMFSS_FAST")) {
    opt.dd_tasks = 256;
    opt.dd_bytes = 64 * units::MiB;
  }

  std::printf("Figure 2: scavenging overhead baseline\n");
  std::printf("  setup: %zu own + %zu victim nodes, %zu dd tasks x %s\n\n",
              opt.scenario.own_nodes,
              opt.scenario.total_nodes - opt.scenario.own_nodes,
              opt.dd_tasks, format_bytes(opt.dd_bytes).c_str());

  const char* trace_dir = std::getenv("MEMFSS_TRACE_DIR");
  opt.capture_trace = trace_dir != nullptr;

  Table t({"alpha (% own)", "own CPU %", "victim CPU %", "own NIC %",
           "victim NIC %", "victim NIC MB/s", "runtime (s)",
           "write p50/95/99 (ms)"});
  t.set_title("Fig. 2a-f: group utilization and runtime vs alpha");

  double best_runtime = 1e300;
  double best_alpha = -1;
  std::vector<exp::Fig2Row> rows;
  for (double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const auto row = exp::run_fig2(alpha, opt);
    rows.push_back(row);
    // Per-stripe write latency quantiles from the metrics registry.
    const auto& wl = row.write_latency;
    t.add_row({strformat("%.0f", alpha * 100),
               strformat("%.1f", row.own.cpu * 100),
               strformat("%.1f", row.victim.cpu * 100),
               strformat("%.1f", row.own.nic() * 100),
               strformat("%.1f", row.victim.nic() * 100),
               strformat("%.0f", row.victim_nic_rate / 1e6),
               strformat("%.1f", row.runtime),
               strformat("%.0f/%.0f/%.0f", wl.p50 * 1e3, wl.p95 * 1e3,
                         wl.p99 * 1e3)});
    if (trace_dir) {
      const std::string base = std::string(trace_dir) +
                               strformat("/fig2_alpha%02.0f", alpha * 100);
      if (exp::write_text_file(base + ".trace.json", row.trace_json).ok() &&
          exp::write_text_file(base + ".metrics.csv", row.metrics_csv).ok())
        std::printf("(wrote %s.{trace.json,metrics.csv})\n", base.c_str());
    }
    if (row.runtime < best_runtime) {
      best_runtime = row.runtime;
      best_alpha = alpha;
    }
  }
  t.print();

  std::printf("\nFig. 2a-e: utilization over time "
              "(sparkline scale 0-100%%, one char per time bucket)\n");
  for (const auto& row : rows) {
    std::printf("  alpha=%3.0f%%  own CPU   |%s|\n", row.alpha * 100,
                row.own_cpu_series.c_str());
    std::printf("              own NIC   |%s|\n", row.own_nic_series.c_str());
    std::printf("              victim CPU|%s|\n",
                row.victim_cpu_series.c_str());
    std::printf("              victim NIC|%s| peak %.1f%%\n",
                row.victim_nic_series.c_str(), row.victim_nic_peak * 100);
  }

  std::printf("\nFig. 2f: best runtime at alpha = %.0f%% "
              "(paper: 25%%, by the per-node load-balance argument)\n",
              best_alpha * 100);
  if (const char* dir = std::getenv("MEMFSS_CSV_DIR")) {
    const std::string path = std::string(dir) + "/fig2.csv";
    if (exp::write_text_file(path, exp::fig2_csv(rows)).ok())
      std::printf("(wrote %s)\n", path.c_str());
  }
  return 0;
}
