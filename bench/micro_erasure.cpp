// Reed-Solomon coding throughput: the CPU cost of the rt runtime's
// erasure-coded redundancy mode (DESIGN.md §14), measured on real
// hardware. Encode cost is what a client pays per stripe write;
// decode-with-losses is the repair path after a victim eviction or
// crash. The <name>/<kernel> variants pin a specific GF(2^8) backend so
// the SIMD dispatch win is visible as a ratio on one machine.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "erasure/gf256_simd.hpp"
#include "erasure/reed_solomon.hpp"

using namespace memfss;

namespace {

std::vector<std::uint8_t> payload(std::size_t n) {
  Rng rng(42);
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = std::uint8_t(rng.next_u64());
  return v;
}

void BM_RsEncode(benchmark::State& state) {
  erasure::ReedSolomon rs(std::size_t(state.range(0)),
                          std::size_t(state.range(1)));
  const auto data = payload(1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.encode(data));
  }
  state.SetBytesProcessed(state.iterations() * std::int64_t(data.size()));
}
BENCHMARK(BM_RsEncode)->Args({4, 2})->Args({8, 3})->Args({4, 0});

void BM_RsDecodeClean(benchmark::State& state) {
  erasure::ReedSolomon rs(4, 2);
  const auto data = payload(1 << 20);
  const auto shards = rs.encode(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.decode(shards, data.size()));
  }
  state.SetBytesProcessed(state.iterations() * std::int64_t(data.size()));
}
BENCHMARK(BM_RsDecodeClean);

void BM_RsDecodeWithLosses(benchmark::State& state) {
  erasure::ReedSolomon rs(4, 2);
  const auto data = payload(1 << 20);
  auto shards = rs.encode(data);
  for (std::int64_t i = 0; i < state.range(0); ++i)
    shards[std::size_t(i)].clear();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.decode(shards, data.size()));
  }
  state.SetBytesProcessed(state.iterations() * std::int64_t(data.size()));
}
BENCHMARK(BM_RsDecodeWithLosses)->Arg(1)->Arg(2);

void BM_RsReconstructOneShard(benchmark::State& state) {
  erasure::ReedSolomon rs(4, 2);
  const auto data = payload(1 << 20);
  const auto original = rs.encode(data);
  for (auto _ : state) {
    auto shards = original;
    shards[1].clear();
    benchmark::DoNotOptimize(rs.reconstruct(shards));
  }
  state.SetBytesProcessed(state.iterations() *
                          std::int64_t(original[1].size()));
}
BENCHMARK(BM_RsReconstructOneShard);

// Per-kernel encode_into: the zero-allocation stripe pass ec::put uses,
// pinned to each available backend. Skipped (benchmark error) when the
// host lacks the instruction set.
void BM_RsEncodeIntoKernel(benchmark::State& state, const char* kernel) {
  const erasure::GF256Kernels* kn = erasure::gf256_kernels_by_name(kernel);
  if (kn == nullptr) {
    state.SkipWithError((std::string(kernel) + " unsupported here").c_str());
    return;
  }
  const erasure::ReedSolomon rs(8, 3, kn);
  const auto data = payload(1 << 20);
  const std::size_t ss = rs.shard_size(data.size());
  std::vector<std::uint8_t> arena(rs.total_shards() * ss);
  std::vector<std::uint8_t*> ptrs(rs.total_shards());
  for (std::size_t i = 0; i < ptrs.size(); ++i)
    ptrs[i] = arena.data() + i * ss;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.encode_into(data, ptrs.data(), ss));
  }
  state.SetBytesProcessed(state.iterations() * std::int64_t(data.size()));
}
BENCHMARK_CAPTURE(BM_RsEncodeIntoKernel, scalar, "scalar");
BENCHMARK_CAPTURE(BM_RsEncodeIntoKernel, ssse3, "ssse3");
BENCHMARK_CAPTURE(BM_RsEncodeIntoKernel, avx2, "avx2");

}  // namespace

BENCHMARK_MAIN();
