// Figure 4 (a, b): HiBench-on-Hadoop slowdown induced by scavenging.
//
// Expected shape (§IV-C): most benchmarks < 10%. TeraSort suffers most
// (paper: 26% under dd, 16% under BLAST at alpha = 25%; 15%/8% at 50%)
// because its shuffle competes for both memory and network. DFSIO-read
// exceeds 10% because scavenged bytes shrink the HDFS page cache. The
// 50% case is milder than 25% across the board.
#include "bench/slowdown_common.hpp"
#include "tenant/suites.hpp"

using namespace memfss;

int main() {
  const auto suite = tenant::hibench_hadoop_suite();
  const std::vector<exp::Workload> workloads{
      exp::Workload::montage, exp::Workload::blast, exp::Workload::dd};
  const auto opt = bench::paper_options();

  std::printf("Figure 4: HiBench/Hadoop slowdown under memory scavenging "
              "(%zu own + %zu victim nodes)\n\n",
              opt.scenario.own_nodes,
              opt.scenario.total_nodes - opt.scenario.own_nodes);
  for (double alpha : {0.25, 0.5}) {
    const auto res = bench::run_suite_cached("hibench-hadoop", suite, workloads, alpha, opt);
    bench::print_suite_table(
        strformat("Fig. 4%s: alpha = %.0f%% of data on own nodes",
                  alpha == 0.25 ? "a" : "b", alpha * 100),
        suite, workloads, res);
  }
  return 0;
}
