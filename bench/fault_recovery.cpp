// Fault recovery: workflow slowdown vs victim fault intensity.
//
// Not a paper figure -- the paper assumes victims leave only through the
// revocation protocol. This bench quantifies what the robustness layer
// (ISSUE: crash/revocation recovery, retries, degraded reads) costs when
// victims actually fail: each row runs the same seeded Montage twice,
// once clean and once under a seed-deterministic FaultPlan, and reports
// the slowdown plus the recovery metrics (degraded reads, retries,
// stripes repaired, bytes re-replicated, mean time-to-repair).
//
// Sweeps the per-victim crash rate, then adds a whole-class revocation
// row (the scavenging worst case: every victim leaves mid-run) for both
// replication and Reed-Solomon redundancy.
#include <cstdio>
#include <cstdlib>

#include "common/str.hpp"
#include "common/table.hpp"
#include "exp/experiments.hpp"
#include "exp/report.hpp"

using namespace memfss;

namespace {

std::string fmt_row_label(const exp::FaultRecoveryOptions& opt) {
  std::string label = strformat("%.2f", opt.crash_rate);
  if (opt.revoke_mid_run) label += " +revoke";
  return label;
}

std::string file_label(const exp::FaultRecoveryOptions& opt,
                       const char* redundancy) {
  std::string label = strformat("%s_c%.2f", redundancy, opt.crash_rate);
  if (opt.revoke_mid_run) label += "_revoke";
  return label;
}

void add_row(Table& t, exp::FaultRecoveryOptions opt,
             const char* redundancy) {
  const char* trace_dir = std::getenv("MEMFSS_TRACE_DIR");
  opt.capture_trace = trace_dir != nullptr;
  const auto row = exp::run_fault_recovery(opt);
  // Repair latency quantiles come from the registry's per-stripe
  // "fs.repair.latency" histogram (faulty run).
  const auto& rl = row.repair_latency;
  t.add_row({fmt_row_label(opt),
             strformat("%zu/%zu/%zu", row.crashes, row.revocations,
                       row.stalls),
             strformat("%.1f", row.runtime),
             strformat("%+.1f%%", row.slowdown * 100),
             strformat("%llu", (unsigned long long)row.degraded_reads),
             strformat("%llu", (unsigned long long)(row.read_retries +
                                                    row.write_retries)),
             strformat("%zu", row.stripes_repaired),
             format_bytes(row.bytes_re_replicated),
             strformat("%.2f", row.mean_time_to_repair),
             rl.count ? strformat("%.0f/%.0f/%.0f", rl.p50 * 1e3,
                                  rl.p95 * 1e3, rl.p99 * 1e3)
                      : std::string("-"),
             opt.scenario.victim_tier_capacity > 0
                 ? strformat("%llu/%llu/%llu",
                             (unsigned long long)row.tier_demotions,
                             (unsigned long long)row.tier_promotions,
                             (unsigned long long)row.tier_cold_hits)
                 : std::string("-"),
             row.ok ? "yes" : "NO"});
  if (trace_dir) {
    const std::string base =
        std::string(trace_dir) + "/fault_" + file_label(opt, redundancy);
    if (exp::write_text_file(base + ".trace.json", row.trace_json).ok() &&
        exp::write_text_file(base + ".metrics.csv", row.metrics_csv).ok())
      std::printf("(wrote %s.{trace.json,metrics.csv})\n", base.c_str());
  }
}

}  // namespace

int main() {
  exp::FaultRecoveryOptions opt;
  opt.scenario.with_victims = true;
  opt.scenario.redundancy = fs::RedundancyMode::replicated;
  opt.scenario.copies = 2;
  if (std::getenv("MEMFSS_FAST")) opt.montage_tiles = 192;

  std::printf("Fault recovery: Montage under victim crashes/revocation\n");
  std::printf("  setup: %zu own + %zu victim nodes, %zu tiles, "
              "rpc_timeout=%.2fs, detect=%.2fs, grace=%.1fs\n\n",
              opt.scenario.own_nodes,
              opt.scenario.total_nodes - opt.scenario.own_nodes,
              opt.montage_tiles, opt.rpc_timeout, opt.failure_detect_delay,
              opt.revocation_grace);

  const std::vector<std::string> headers = {
      "crash rate", "crash/rev/stall", "runtime (s)", "slowdown",
      "degraded rd", "retries",        "repaired",    "re-replicated",
      "MTTR (s)",   "repair p50/95/99 (ms)", "tier dem/pro/cold", "ok"};

  {
    Table t(headers);
    t.set_title("replicated x2: slowdown vs per-victim crash rate");
    for (double rate : {0.0, 0.05, 0.1, 0.2, 0.4}) {
      opt.crash_rate = rate;
      opt.revoke_mid_run = false;
      add_row(t, opt, "rep2");
    }
    // Worst case: the tenant takes the whole victim class back mid-run,
    // on top of background crashes.
    opt.crash_rate = 0.1;
    opt.revoke_mid_run = true;
    add_row(t, opt, "rep2");
    t.print();
  }

  {
    Table t(headers);
    t.set_title("Reed-Solomon 4+2: crashes and revocation");
    opt.scenario.redundancy = fs::RedundancyMode::erasure;
    for (double rate : {0.0, 0.2}) {
      opt.crash_rate = rate;
      opt.revoke_mid_run = false;
      add_row(t, opt, "rs42");
    }
    opt.crash_rate = 0.1;
    opt.revoke_mid_run = true;
    add_row(t, opt, "rs42");
    t.print();
  }

  {
    // Tiered arm (DESIGN.md §16): cold tiers on the victims, so
    // pressure during the faulted run demotes coldest-first instead of
    // evacuating, and repair sources cold-resident shards.
    Table t(headers);
    t.set_title("replicated x2 + cold tiers: crashes and revocation");
    opt.scenario.redundancy = fs::RedundancyMode::replicated;
    opt.scenario.victim_tier_capacity = 4 * units::GiB;
    opt.evict_rate = 2.0;  // tenant pressure drives the demote passes
    for (double rate : {0.0, 0.2}) {
      opt.crash_rate = rate;
      opt.revoke_mid_run = false;
      add_row(t, opt, "rep2_tier");
    }
    opt.crash_rate = 0.1;
    opt.revoke_mid_run = true;
    add_row(t, opt, "rep2_tier");
    t.print();
  }
  return 0;
}
