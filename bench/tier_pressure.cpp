// Tier-pressure bench: victim-reclaim stall with and without the cold
// tier (see exp/tier.hpp). For every seed it runs the untiered baseline
// (pressure => full fabric evacuation) and the tiered arm (pressure =>
// coldest-first demotion to the node-local tier) over the same workload,
// prints one CSV row per arm, then a summary with the p99 stall ratio.
//
// Usage: tier_pressure [seed...]       (default seeds: 1 2 3)
//
// Exits nonzero if any run failed, if a tiered arm recorded zero
// demotions, or if the aggregate p99 reduction is below 2x --
// scripts/check.sh --tier runs this under the sanitizer build.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "exp/tier.hpp"

using namespace memfss;

namespace {

exp::TierPressureOptions base_options(std::uint64_t seed) {
  exp::TierPressureOptions opt;
  opt.seed = seed;
  opt.scenario.total_nodes = 8;
  opt.scenario.own_nodes = 2;
  opt.scenario.own_fraction = 0.1;  // most stripes land on victims
  opt.scenario.victim_memory_cap = 512 * units::MiB;
  opt.scenario.victim_net_cap = 400e6;  // container bandwidth cap (B/s)
  opt.scenario.own_store_capacity = 8 * units::GiB;
  opt.scenario.stripe_size = 4 * units::MiB;
  opt.files = 24 + static_cast<std::size_t>(seed % 5);  // vary per seed
  opt.file_bytes = 16 * units::MiB;
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::uint64_t> seeds;
  for (int i = 1; i < argc; ++i)
    seeds.push_back(std::strtoull(argv[i], nullptr, 10));
  if (seeds.empty()) seeds = {1, 2, 3};

  std::printf("%s\n", exp::tier_pressure_csv_header().c_str());
  bool all_ok = true;
  double worst_ratio = -1.0;
  for (const auto seed : seeds) {
    auto baseline_opt = base_options(seed);
    const auto baseline = exp::run_tier_pressure(baseline_opt);
    std::printf("%s\n", exp::tier_pressure_csv_row(baseline).c_str());

    auto tiered_opt = base_options(seed);
    // Tier sized to hold everything hot: demotion never escalates here
    // (escalation behavior is the chaos soak's business).
    tiered_opt.scenario.victim_tier_capacity = 2 * units::GiB;
    const auto tiered = exp::run_tier_pressure(tiered_opt);
    std::printf("%s\n", exp::tier_pressure_csv_row(tiered).c_str());

    if (!baseline.ok || !tiered.ok) {
      all_ok = false;
      std::fprintf(stderr, "seed %llu: run failed (baseline ok=%d tiered ok=%d)\n",
                   (unsigned long long)seed, int(baseline.ok),
                   int(tiered.ok));
      continue;
    }
    if (tiered.demotions == 0) {
      all_ok = false;
      std::fprintf(stderr, "seed %llu: tiered arm recorded zero demotions\n",
                   (unsigned long long)seed);
      continue;
    }
    const double ratio =
        tiered.reclaim.p99 > 0 ? baseline.reclaim.p99 / tiered.reclaim.p99
                               : 0.0;
    worst_ratio = worst_ratio < 0 ? ratio : std::min(worst_ratio, ratio);
    std::fprintf(stderr,
                 "seed %llu: reclaim p99 %.3fs -> %.3fs (%.2fx), "
                 "%llu demotions\n",
                 (unsigned long long)seed, baseline.reclaim.p99,
                 tiered.reclaim.p99, ratio,
                 (unsigned long long)tiered.demotions);
  }
  if (all_ok && worst_ratio < 2.0) {
    all_ok = false;
    std::fprintf(stderr,
                 "tier pressure: p99 reduction %.2fx below the 2x target\n",
                 worst_ratio);
  }
  std::fprintf(stderr, all_ok ? "tier pressure: ok (worst ratio %.2fx)\n"
                              : "tier pressure: FAILED\n",
               worst_ratio);
  return all_ok ? 0 : 1;
}
