// Figure 6: average slowdown per (suite, alpha, workload).
//
// The summary of Figures 3-5: for HPCC and HiBench/Hadoop, at both 25%
// and 50%, the average slowdown stays below 10%; the HiBench/Spark case
// (50% only) is the outlier at ~18% -- Spark is itself an in-memory
// framework, so scavenging competes with it for memory capacity and
// bandwidth.
//
// This binary re-runs the full sweep (it IS the aggregate); expect it to
// be the longest-running bench. MEMFSS_FAST=1 shrinks the cluster.
#include "bench/slowdown_common.hpp"
#include "tenant/suites.hpp"

using namespace memfss;

int main() {
  const std::vector<exp::Workload> workloads{
      exp::Workload::montage, exp::Workload::blast, exp::Workload::dd};
  const auto opt = bench::paper_options();

  std::printf("Figure 6: average slowdown induced by memory scavenging\n\n");
  Table t({"suite", "alpha %", "Montage avg %", "BLAST avg %", "dd avg %",
           "overall avg %"});
  t.set_title("Fig. 6: per-suite average slowdown");

  struct Case {
    const char* label;
    const char* cache_key;
    std::vector<tenant::TenantApp> suite;
    std::vector<double> alphas;
  };
  const std::vector<Case> cases{
      {"HPCC", "hpcc", tenant::hpcc_suite(), {0.25, 0.5}},
      {"HiBench/Hadoop", "hibench-hadoop", tenant::hibench_hadoop_suite(),
       {0.25, 0.5}},
      {"HiBench/Spark", "hibench-spark", tenant::hibench_spark_suite(),
       {0.5}},
  };

  for (const auto& c : cases) {
    for (double alpha : c.alphas) {
      const auto res =
          bench::run_suite_cached(c.cache_key, c.suite, workloads, alpha, opt);
      double overall = 0.0;
      std::vector<std::string> row{c.label,
                                   strformat("%.0f", alpha * 100)};
      for (auto w : workloads) {
        const double avg = res.average(w);
        overall += avg;
        row.push_back(strformat("%.1f", avg * 100));
      }
      row.push_back(strformat("%.1f", overall / workloads.size() * 100));
      t.add_row(std::move(row));
    }
  }
  t.print();
  std::printf("\npaper: HPCC and Hadoop averages < 10%% at both alphas; "
              "Spark ~18%%.\n");
  return 0;
}
