// Closed-loop load generator for the concurrent runtime (src/rt) --
// memtier-style CLI over rt::run_loadgen.
//
// With no arguments it runs the thread-scaling sweep from EXPERIMENTS.md
// ("Concurrent runtime"): the same total op count at 1, 2, 4 and 8
// client+server threads over 16 shards with a 200us simulated
// remote-access service time per op (the latency-bound regime a
// disaggregated deployment lives in), prints one CSV row per point, and
// reports the 8-vs-1-thread speedup on stderr. A single run with
// explicit parameters:
//
//   loadgen --threads N [--server-threads N] [--shards N] [--ops N]
//           [--batch N] [--value-size BYTES] [--get-ratio F] [--del-ratio F]
//           [--skew THETA] [--keys N] [--service-us U] [--seed S]
//
// --qos runs the multi-tenant adversarial isolation scenario instead
// (DESIGN.md §12): N small under-quota tenants plus one abusive tenant,
// run once without and once with the abuser. Prints one per-tenant CSV
// row per scenario (rt::qos_csv_header()), a summary on stderr, and
// exits 1 if isolation breaks: small-tenant p99 degrades past
// --isolation-factor, the abuser is shed by queue-full rejections
// instead of Errc::overloaded, or any accounting invariant trips.
//
//   loadgen --qos [--tenants N] [--seed S] [--isolation-factor F]
//
// --net replays the same seed-deterministic streams over loopback TCP
// against an rt::TcpServer (DESIGN.md §13) instead of calling into the
// runtime in-process: N client threads x M pipelined connections each,
// with request-id accounting. It runs --seeds S seeds (default 3),
// prints one net CSV row per seed, and exits 1 if any response is lost
// or duplicated, any transport error occurs, or throughput lands under
// --min-ops-per-sec.
//
//   loadgen --net [--threads N] [--connections M] [--reactors R]
//           [--ops N] [--seeds S] [--min-ops-per-sec F] [...stream flags]
//
// --netchaos runs the network chaos soak (DESIGN.md §15): the same
// streams through a netio::ChaosProxy injecting resets, blackholes,
// torn frames, corruption and delays, replayed by resilient clients.
// Per seed it runs a faulted arm and a clean arm (proxy in the path,
// faults off) and exits 1 if any acked op is lost or duplicated, any
// read escapes the possibility model, accounting breaks, the clean
// arm's digest differs from the in-process replay, or the faulted arm
// injected no faults at all (a vacuous pass).
//
//   loadgen --netchaos [--threads N] [--ops N] [--seeds S] [--seed S]
//
// CSV schema: see rt::loadgen_csv_header(), rt::net_loadgen_csv_header(),
// rt::net_chaos_csv_header() and EXPERIMENTS.md.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "rt/loadgen.hpp"
#include "rt/net_chaos.hpp"
#include "rt/net_loadgen.hpp"

using namespace memfss;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--threads N] [--server-threads N] [--shards N]\n"
               "          [--ops N] [--batch N] [--value-size BYTES]\n"
               "          [--get-ratio F] [--del-ratio F] [--skew THETA]\n"
               "          [--keys N] [--service-us U] [--seed S]\n"
               "       %s --qos [--tenants N] [--seed S] [--isolation-factor F]\n"
               "       %s --net [--connections M] [--reactors R] [--seeds S]\n"
               "          [--min-ops-per-sec F] [...single-run flags]\n"
               "       %s --netchaos [--threads N] [--ops N] [--seeds S] [--seed S]\n"
               "With no arguments: thread-scaling sweep (1,2,4,8).\n",
               argv0, argv0, argv0, argv0);
}

int run_net(rt::NetLoadgenOptions opt, std::size_t seeds,
            double min_ops_per_sec) {
  std::printf("%s\n", rt::net_loadgen_csv_header().c_str());
  bool ok = true;
  for (std::size_t s = 0; s < seeds; ++s) {
    rt::NetLoadgenOptions o = opt;
    o.base.seed = opt.base.seed + s;
    const auto r = rt::run_net_loadgen(o);
    std::printf("%s\n", rt::net_loadgen_csv_row(r).c_str());
    std::fflush(stdout);
    const std::uint64_t total = static_cast<std::uint64_t>(
        o.base.client_threads) * o.base.ops_per_thread;
    if (r.lost != 0 || r.duplicated != 0 || r.transport_errors != 0 ||
        r.responses != total) {
      std::fprintf(stderr,
                   "net: FAIL seed %llu accounting: %llu/%llu answered, "
                   "%llu lost, %llu duplicated, %llu transport errors\n",
                   static_cast<unsigned long long>(o.base.seed),
                   static_cast<unsigned long long>(r.responses),
                   static_cast<unsigned long long>(total),
                   static_cast<unsigned long long>(r.lost),
                   static_cast<unsigned long long>(r.duplicated),
                   static_cast<unsigned long long>(r.transport_errors));
      ok = false;
    }
    if (min_ops_per_sec > 0.0 && r.ops_per_sec < min_ops_per_sec) {
      std::fprintf(stderr, "net: FAIL seed %llu throughput %.0f < floor %.0f\n",
                   static_cast<unsigned long long>(o.base.seed),
                   r.ops_per_sec, min_ops_per_sec);
      ok = false;
    }
  }
  if (ok)
    std::fprintf(stderr, "net: OK (%zu seeds, zero lost/duplicated)\n", seeds);
  return ok ? 0 : 1;
}

int run_netchaos(rt::NetChaosOptions base, std::size_t seeds) {
  std::printf("%s\n", rt::net_chaos_csv_header().c_str());
  bool ok = true;
  for (std::size_t s = 0; s < seeds; ++s) {
    for (const bool faults : {true, false}) {
      rt::NetChaosOptions o = base;
      o.seed = base.seed + s;
      o.faults = faults;
      o.plan = netio::ChaosPlan::faulty(o.seed);
      const auto r = rt::run_net_chaos(o);
      std::printf("%s\n", rt::net_chaos_csv_row(r).c_str());
      std::fflush(stdout);
      const char* arm = faults ? "faulted" : "clean";
      if (!r.passed) {
        std::fprintf(stderr, "netchaos: FAIL seed %llu (%s arm): %s\n",
                     static_cast<unsigned long long>(o.seed), arm,
                     r.fail_reason.c_str());
        ok = false;
      }
      // A faulted arm that injected nothing proves nothing.
      const std::uint64_t injected = r.chaos.resets_injected +
                                     r.chaos.blackholed +
                                     r.chaos.chunks_corrupted +
                                     r.chaos.chunks_torn;
      if (faults && injected == 0) {
        std::fprintf(stderr,
                     "netchaos: FAIL seed %llu: no faults fired (vacuous)\n",
                     static_cast<unsigned long long>(o.seed));
        ok = false;
      }
      std::fprintf(stderr,
                   "netchaos: seed %llu %s: %llu/%llu acked, %llu retries, "
                   "%llu reconnects, %llu resets, %llu corrupt, p99 %.2fms\n",
                   static_cast<unsigned long long>(o.seed), arm,
                   static_cast<unsigned long long>(r.acked),
                   static_cast<unsigned long long>(r.calls),
                   static_cast<unsigned long long>(r.retries),
                   static_cast<unsigned long long>(r.reconnects),
                   static_cast<unsigned long long>(r.chaos.resets_injected),
                   static_cast<unsigned long long>(r.chaos.chunks_corrupted),
                   r.call_latency.p99 * 1e3);
    }
  }
  if (ok)
    std::fprintf(stderr,
                 "netchaos: OK (%zu seeds x 2 arms, zero lost/duplicated "
                 "acked ops)\n",
                 seeds);
  return ok ? 0 : 1;
}

int run_qos(std::size_t tenants, std::uint64_t seed, double factor) {
  const auto opt = rt::default_qos_options(tenants, seed);
  const auto sc = rt::run_qos_adversarial(opt);

  std::printf("%s\n", rt::qos_csv_header().c_str());
  for (const auto& tr : sc.baseline.tenants)
    std::printf("%s\n", rt::qos_csv_row("baseline", tr).c_str());
  for (const auto& tr : sc.adversarial.tenants) {
    double iso = 0.0;
    for (const auto& base : sc.baseline.tenants)
      if (base.name == tr.name && base.latency.p99 > 0.0)
        iso = tr.latency.p99 / base.latency.p99;
    std::printf("%s\n", rt::qos_csv_row("adversarial", tr, iso).c_str());
  }
  std::fflush(stdout);

  bool ok = true;
  std::fprintf(stderr, "qos: worst small-tenant p99 isolation: %.2fx (limit %.2fx)\n",
               sc.worst_isolation, factor);
  if (sc.worst_isolation > factor) {
    std::fprintf(stderr, "qos: FAIL isolation factor exceeded\n");
    ok = false;
  }
  if (!sc.abuser_shed_via_overload) {
    std::fprintf(stderr, "qos: FAIL abuser not shed via Errc::overloaded\n");
    ok = false;
  }
  for (const auto* run : {&sc.baseline, &sc.adversarial})
    if (!run->accounting_ok) {
      std::fprintf(stderr, "qos: FAIL accounting: %s\n",
                   run->accounting_msg.c_str());
      ok = false;
    }
  if (ok) std::fprintf(stderr, "qos: OK\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  rt::LoadgenOptions opt;
  opt.service_time_us = 200;
  opt.value_size = 1024;
  opt.get_fraction = 0.5;
  bool single = false;
  bool qos = false;
  bool net = false;
  bool netchaos = false;
  std::size_t qos_tenants = 8;
  double isolation_factor = 5.0;
  std::size_t net_connections = 2;
  std::size_t net_reactors = 2;
  std::size_t net_seeds = 3;
  double min_ops_per_sec = 0.0;

  for (int i = 1; i < argc; ++i) {
    auto want = [&](const char* flag) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      if (i + 1 >= argc) { usage(argv[0]); std::exit(2); }
      return true;
    };
    if (std::strcmp(argv[i], "--qos") == 0) { qos = true; }
    else if (std::strcmp(argv[i], "--net") == 0) { net = true; }
    else if (std::strcmp(argv[i], "--netchaos") == 0) { netchaos = true; }
    else if (want("--connections")) { net_connections = std::strtoul(argv[++i], nullptr, 10); }
    else if (want("--reactors")) { net_reactors = std::strtoul(argv[++i], nullptr, 10); }
    else if (want("--seeds")) { net_seeds = std::strtoul(argv[++i], nullptr, 10); }
    else if (want("--min-ops-per-sec")) { min_ops_per_sec = std::strtod(argv[++i], nullptr); }
    else if (want("--tenants")) { qos_tenants = std::strtoul(argv[++i], nullptr, 10); }
    else if (want("--isolation-factor")) { isolation_factor = std::strtod(argv[++i], nullptr); }
    else if (want("--threads")) { opt.client_threads = std::strtoul(argv[++i], nullptr, 10); opt.server_threads = opt.client_threads; single = true; }
    else if (want("--server-threads")) { opt.server_threads = std::strtoul(argv[++i], nullptr, 10); }
    else if (want("--shards")) { opt.shards = std::strtoul(argv[++i], nullptr, 10); }
    else if (want("--ops")) { opt.ops_per_thread = std::strtoul(argv[++i], nullptr, 10); }
    else if (want("--batch")) { opt.batch = std::strtoul(argv[++i], nullptr, 10); }
    else if (want("--value-size")) { opt.value_size = std::strtoull(argv[++i], nullptr, 10); }
    else if (want("--get-ratio")) { opt.get_fraction = std::strtod(argv[++i], nullptr); }
    else if (want("--del-ratio")) { opt.del_fraction = std::strtod(argv[++i], nullptr); }
    else if (want("--skew")) { opt.zipf_theta = std::strtod(argv[++i], nullptr); }
    else if (want("--keys")) { opt.key_space = std::strtoul(argv[++i], nullptr, 10); }
    else if (want("--service-us")) { opt.service_time_us = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10)); }
    else if (want("--seed")) { opt.seed = std::strtoull(argv[++i], nullptr, 10); }
    else { usage(argv[0]); return 2; }
  }

  if (qos) return run_qos(qos_tenants, opt.seed, isolation_factor);
  if (netchaos) {
    rt::NetChaosOptions copt;
    copt.seed = opt.seed;
    if (single) {
      copt.client_threads = opt.client_threads;
      copt.server_threads = opt.server_threads;
    }
    if (opt.ops_per_thread != rt::LoadgenOptions{}.ops_per_thread)
      copt.ops_per_thread = opt.ops_per_thread;
    copt.reactors = net_reactors;
    return run_netchaos(copt, net_seeds);
  }
  if (net) {
    rt::NetLoadgenOptions nopt;
    nopt.base = opt;
    nopt.connections_per_thread = net_connections;
    nopt.reactors = net_reactors;
    return run_net(nopt, net_seeds, min_ops_per_sec);
  }

  std::printf("%s\n", rt::loadgen_csv_header().c_str());

  if (single) {
    const auto r = rt::run_loadgen(opt);
    std::printf("%s\n", rt::loadgen_csv_row(r).c_str());
    return 0;
  }

  // Sweep: fixed total work (16k ops) redistributed over the thread
  // counts so every point does the same job.
  const std::size_t total_ops = 16384;
  double ops_1 = 0.0, ops_8 = 0.0;
  for (const std::size_t n : {1u, 2u, 4u, 8u}) {
    rt::LoadgenOptions o = opt;
    o.client_threads = n;
    o.server_threads = n;
    o.ops_per_thread = total_ops / n;
    const auto r = rt::run_loadgen(o);
    std::printf("%s\n", rt::loadgen_csv_row(r).c_str());
    std::fflush(stdout);
    if (n == 1) ops_1 = r.ops_per_sec;
    if (n == 8) ops_8 = r.ops_per_sec;
  }
  const double speedup = ops_1 > 0.0 ? ops_8 / ops_1 : 0.0;
  std::fprintf(stderr, "loadgen: 8-thread vs 1-thread throughput: %.2fx\n",
               speedup);
  return 0;
}
