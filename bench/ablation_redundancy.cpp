// Ablation: redundancy modes (paper §III-E).
//
// Writes the same dataset without redundancy, with 2-/3-way replication
// on the next HRW ranks, and with Reed-Solomon RS(4,2); then crashes one
// storage node and re-reads everything. Reported: write time (write
// amplification costs wall clock), memory overhead, and whether the data
// survived -- the quantitative version of the paper's argument that
// replication is prohibitive for an in-memory store while RS(4,2) buys
// the same single-loss tolerance at 1.5x.
#include <cstdio>

#include "common/str.hpp"
#include "common/table.hpp"
#include "exp/scenario.hpp"
#include "fs/client.hpp"

using namespace memfss;

namespace {

struct Mode {
  const char* label;
  fs::RedundancyMode mode;
  std::uint8_t copies;
};

struct Outcome {
  SimTime write_time = 0;
  double overhead = 0;
  bool survived = false;
  SimTime read_time = 0;
};

Outcome run_mode(const Mode& m) {
  exp::ScenarioParams p;
  p.total_nodes = 12;
  p.own_nodes = 4;
  p.own_fraction = 0.25;
  p.victim_memory_cap = 8 * units::GiB;
  p.redundancy = m.mode;
  p.copies = m.copies;
  exp::Scenario sc(p);

  constexpr Bytes kFile = 256 * units::MiB;
  constexpr int kFiles = 16;

  Outcome out;
  sc.sim().spawn([](exp::Scenario& s, Outcome& o) -> sim::Task<> {
    fs::Client c = s.fs().client(0);
    const SimTime t0 = s.sim().now();
    for (int i = 0; i < kFiles; ++i) {
      auto st = co_await c.write_file(strformat("/d%d", i), kFile);
      if (!st.ok()) co_return;
    }
    o.write_time = s.sim().now() - t0;
    o.overhead = double(s.fs().total_bytes()) / double(kFiles * kFile);
    // Crash one victim store.
    s.fs().server(s.victim_nodes()[1]).wipe();
    const SimTime t1 = s.sim().now();
    o.survived = true;
    for (int i = 0; i < kFiles; ++i) {
      auto r = co_await c.read_file(strformat("/d%d", i));
      if (!r.ok() || r.value() != kFile) o.survived = false;
    }
    o.read_time = s.sim().now() - t1;
  }(sc, out));
  sc.sim().run();
  return out;
}

}  // namespace

int main() {
  std::printf("Redundancy ablation: 16 x 256 MiB files, alpha = 25%%, one "
              "victim store crashes after the writes\n\n");
  Table t({"mode", "write time (s)", "memory overhead", "data after crash",
           "read time (s)"});
  for (const Mode& m :
       {Mode{"none", fs::RedundancyMode::none, 1},
        Mode{"2-way replication", fs::RedundancyMode::replicated, 2},
        Mode{"3-way replication", fs::RedundancyMode::replicated, 3},
        Mode{"Reed-Solomon RS(4,2)", fs::RedundancyMode::erasure, 2}}) {
    const auto o = run_mode(m);
    t.add_row({m.label, strformat("%.2f", o.write_time),
               strformat("%.2fx", o.overhead),
               o.survived ? "intact" : "LOST",
               strformat("%.2f", o.read_time)});
  }
  t.print();
  return 0;
}
