// Coroutine synchronization primitives for simulation processes:
// one-shot Event, counting Semaphore, unbounded Channel, and when_all.
//
// Lifetime rule: a primitive must outlive every coroutine suspended on it.
// In this codebase primitives live in objects (servers, jobs) that are kept
// alive until the simulation drains, which satisfies the rule by
// construction.
#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace memfss::sim {

/// One-shot broadcast event. Awaiting after trigger() completes instantly.
class Event {
 public:
  explicit Event(Simulator& sim) : sim_(sim) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  bool triggered() const { return triggered_; }

  void trigger() {
    if (triggered_) return;
    triggered_ = true;
    // Resume via the event queue (not inline) so trigger() callers are
    // never re-entered by awaiters.
    for (auto h : waiters_) sim_.schedule(0.0, [h] { h.resume(); });
    waiters_.clear();
  }

  auto operator co_await() {
    struct Awaiter {
      Event& ev;
      bool await_ready() const noexcept { return ev.triggered_; }
      void await_suspend(std::coroutine_handle<> h) {
        ev.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Simulator& sim_;
  bool triggered_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore; acquire suspends while the count is zero.
/// FIFO handoff: release wakes the longest waiter.
class Semaphore {
 public:
  Semaphore(Simulator& sim, std::size_t initial)
      : sim_(sim), count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  std::size_t available() const { return count_; }
  std::size_t waiting() const { return waiters_.size(); }

  auto acquire() {
    struct Awaiter {
      Semaphore& s;
      bool await_ready() {
        if (s.count_ > 0) {
          --s.count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        s.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      // Hand the token directly to the waiter (count stays 0 for it).
      sim_.schedule(0.0, [h] { h.resume(); });
    } else {
      ++count_;
    }
  }

 private:
  Simulator& sim_;
  std::size_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Unbounded MPSC/MPMC channel; pop() suspends while empty.
template <typename T>
class Channel {
 public:
  explicit Channel(Simulator& sim) : sim_(sim) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void push(T item) {
    items_.push_back(std::move(item));
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_.schedule(0.0, [h] { h.resume(); });
    }
  }

  auto pop() {
    struct Awaiter {
      Channel& ch;
      bool await_ready() const noexcept { return !ch.items_.empty(); }
      void await_suspend(std::coroutine_handle<> h) {
        ch.waiters_.push_back(h);
      }
      T await_resume() {
        // A competing consumer may have drained the item that woke us;
        // in this single-threaded simulator consumers are re-queued by
        // push(), so the queue is non-empty here by construction for
        // single-consumer use. Guard for multi-consumer anyway.
        T v = std::move(ch.items_.front());
        ch.items_.pop_front();
        return v;
      }
    };
    return Awaiter{*this};
  }

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }

 private:
  Simulator& sim_;
  std::deque<T> items_;
  std::deque<std::coroutine_handle<>> waiters_;
};

namespace detail {
struct JoinState {
  explicit JoinState(Simulator& sim) : done(sim) {}
  std::size_t remaining = 0;
  Event done;
};

inline Task<> join_wrapper(std::shared_ptr<JoinState> state, Task<> inner) {
  co_await std::move(inner);
  if (--state->remaining == 0) state->done.trigger();
}
}  // namespace detail

/// Await completion of all tasks (they run concurrently).
inline Task<> when_all(Simulator& sim, std::vector<Task<>> tasks) {
  auto state = std::make_shared<detail::JoinState>(sim);
  state->remaining = tasks.size();
  if (state->remaining == 0) co_return;
  for (auto& t : tasks)
    sim.spawn(detail::join_wrapper(state, std::move(t)));
  co_await state->done;
}

namespace detail {
template <typename T>
struct TimeoutState {
  explicit TimeoutState(Simulator& sim) : done(sim) {}
  std::optional<T> result;
  Event done;
};

template <typename T>
Task<> timeout_runner(std::shared_ptr<TimeoutState<T>> state, Task<T> inner) {
  auto value = co_await std::move(inner);
  state->result.emplace(std::move(value));
  state->done.trigger();
}
}  // namespace detail

/// Run `inner` under a deadline. Returns its value if it completes within
/// `timeout` simulated seconds, nullopt otherwise. A timed-out operation
/// is *abandoned, not cancelled*: it keeps running detached and its late
/// result is discarded -- exactly a client walking away from an RPC whose
/// server may still be processing it. The objects `inner` references must
/// therefore outlive the operation, not just the deadline (true for
/// servers/filesystems, which live until the simulation drains).
template <typename T>
Task<std::optional<T>> with_timeout(Simulator& sim, Task<T> inner,
                                    SimTime timeout) {
  static_assert(!std::is_void_v<T>, "use a Status-returning task");
  auto state = std::make_shared<detail::TimeoutState<T>>(sim);
  sim.spawn(detail::timeout_runner<T>(state, std::move(inner)));
  if (state->done.triggered())  // completed synchronously
    co_return std::move(state->result);
  const EventId deadline =
      sim.schedule(timeout, [state] { state->done.trigger(); });
  co_await state->done;
  sim.cancel(deadline);
  co_return std::move(state->result);
}

}  // namespace memfss::sim
