#include "sim/simulator.hpp"

#include <cassert>

namespace memfss::sim {

EventId Simulator::schedule(SimTime delay, std::function<void()> fn) {
  assert(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(SimTime t, std::function<void()> fn) {
  assert(t >= now_);
  const EventId id = next_id_++;
  heap_.push(Ev{t, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

void Simulator::cancel(EventId id) {
  if (handlers_.erase(id) > 0) cancelled_.insert(id);
}

void Simulator::spawn(Task<> t) {
  auto h = t.release();
  if (!h) return;
  h.promise().detached = true;
  schedule(0.0, [h] { h.resume(); });
}

bool Simulator::step() {
  while (!heap_.empty()) {
    const Ev ev = heap_.top();
    heap_.pop();
    if (cancelled_.erase(ev.id) > 0) continue;  // lazily dropped
    auto it = handlers_.find(ev.id);
    assert(it != handlers_.end());
    auto fn = std::move(it->second);
    handlers_.erase(it);
    assert(ev.t >= now_);
    now_ = ev.t;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

SimTime Simulator::run() {
  while (step()) {
  }
  return now_;
}

SimTime Simulator::run_until(SimTime t_end) {
  while (!heap_.empty()) {
    // Peek past cancelled entries.
    while (!heap_.empty() && cancelled_.count(heap_.top().id)) {
      cancelled_.erase(heap_.top().id);
      heap_.pop();
    }
    if (heap_.empty() || heap_.top().t > t_end) break;
    step();
  }
  now_ = std::max(now_, t_end);
  return now_;
}

}  // namespace memfss::sim
