#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>

namespace memfss::sim {

namespace {
constexpr std::uint32_t ev_slot(EventId id) {
  return static_cast<std::uint32_t>(id >> 32);
}
constexpr std::uint32_t ev_gen(EventId id) {
  return static_cast<std::uint32_t>(id);
}
constexpr EventId ev_id(std::uint32_t slot, std::uint32_t gen) {
  return (static_cast<EventId>(slot) << 32) | gen;
}
}  // namespace

EventId Simulator::schedule(SimTime delay, EventFn fn) {
  assert(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(SimTime t, EventFn fn) {
  assert(t >= now_);
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  heap_.push(Ev{t, next_seq_++, slot, s.gen});
  ++live_;
  return ev_id(slot, s.gen);
}

void Simulator::cancel(EventId id) {
  const std::uint32_t slot = ev_slot(id);
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (s.gen != ev_gen(id) || !s.fn) return;  // fired, cancelled, or reused
  s.fn.reset();
  release_slot(slot);  // the heap entry goes stale and is skipped lazily
  --live_;
}

void Simulator::spawn(Task<> t) {
  auto h = t.release();
  if (!h) return;
  h.promise().detached = true;
  schedule(0.0, [h] { h.resume(); });
}

bool Simulator::step() {
  while (!heap_.empty()) {
    const Ev ev = heap_.top();
    heap_.pop();
    Slot& s = slots_[ev.slot];
    if (s.gen != ev.gen) continue;  // cancelled: stale generation
    assert(s.fn);
    EventFn fn = std::move(s.fn);
    release_slot(ev.slot);
    assert(ev.t >= now_);
    now_ = ev.t;
    ++executed_;
    --live_;
    fn();
    return true;
  }
  return false;
}

SimTime Simulator::run() {
  while (step()) {
  }
  return now_;
}

SimTime Simulator::run_until(SimTime t_end) {
  while (!heap_.empty()) {
    // Peek past cancelled (stale-generation) entries.
    while (!heap_.empty() &&
           slots_[heap_.top().slot].gen != heap_.top().gen) {
      heap_.pop();
    }
    if (heap_.empty() || heap_.top().t > t_end) break;
    step();
  }
  now_ = std::max(now_, t_end);
  return now_;
}

}  // namespace memfss::sim
