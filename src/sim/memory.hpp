// MemoryPool: byte-capacity accounting for a simulated node.
//
// Tracks used vs. capacity, the high-water mark, and supports a *pressure
// callback*: when an allocation would exceed a configured threshold the
// pool notifies its observer (the victim-node monitor of the scavenging
// protocol uses this to tell MemFSS to evacuate, paper §III-A).
#pragma once

#include <functional>
#include <string>

#include "common/types.hpp"

namespace memfss::sim {

class MemoryPool {
 public:
  explicit MemoryPool(Bytes capacity, std::string name = {});

  Bytes capacity() const { return capacity_; }
  Bytes used() const { return used_; }
  Bytes available() const { return capacity_ - used_; }
  Bytes high_water() const { return high_water_; }
  double utilization() const {
    return capacity_ ? static_cast<double>(used_) / static_cast<double>(capacity_) : 0.0;
  }

  /// Attempt to reserve bytes; false (and no change) if it would overflow.
  bool try_alloc(Bytes n);

  /// Release bytes (n must not exceed used()).
  void free(Bytes n);

  /// Register a pressure observer: fires (once per crossing) when used()
  /// rises to or above `threshold` bytes.
  void set_pressure_callback(Bytes threshold, std::function<void()> cb);

 private:
  Bytes capacity_;
  Bytes used_ = 0;
  Bytes high_water_ = 0;
  std::string name_;
  Bytes pressure_threshold_ = 0;
  bool pressure_armed_ = false;
  std::function<void()> pressure_cb_;
};

}  // namespace memfss::sim
