// Discrete-event simulation core: a virtual clock and an event queue.
//
// Events at the same timestamp fire in scheduling (FIFO) order, which --
// together with the seeded RNGs -- makes every simulation run
// deterministic and bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"
#include "sim/task.hpp"

namespace memfss::sim {

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule(SimTime delay, std::function<void()> fn);

  /// Schedule at an absolute time (>= now()).
  EventId schedule_at(SimTime t, std::function<void()> fn);

  /// Cancel a pending event; harmless if already fired or cancelled.
  void cancel(EventId id);

  /// Awaitable that resumes the coroutine after `d` simulated seconds.
  auto delay(SimTime d) {
    struct Awaiter {
      Simulator& sim;
      SimTime d;
      bool await_ready() const noexcept { return d <= 0; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.schedule(d, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  /// Detach and start a task. It begins at the current time (queued behind
  /// events already scheduled for `now`).
  void spawn(Task<> t);

  /// Run until the event queue drains. Returns the final time.
  SimTime run();

  /// Run until the clock would pass `t_end`; events at exactly t_end fire.
  SimTime run_until(SimTime t_end);

  /// Execute a single event. Returns false if the queue is empty.
  bool step();

  std::size_t pending_events() const { return heap_.size() - cancelled_.size(); }
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Ev {
    SimTime t;
    EventId id;
    // min-heap: earliest time first; FIFO among equal times via id.
    bool operator>(const Ev& o) const {
      return t != o.t ? t > o.t : id > o.id;
    }
  };

  SimTime now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Ev, std::vector<Ev>, std::greater<Ev>> heap_;
  std::unordered_map<EventId, std::function<void()>> handlers_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace memfss::sim
