// Discrete-event simulation core: a virtual clock and an event queue.
//
// Events at the same timestamp fire in scheduling (FIFO) order, which --
// together with the seeded RNGs -- makes every simulation run
// deterministic and bit-reproducible.
//
// The queue is allocation-free on the steady-state path: handlers live in
// a slab of reusable slots (free-list recycled, generation-counted so
// cancel() is O(1) without touching the heap), and EventFn stores small
// callables -- every lambda the simulation schedules -- inline instead of
// on the heap.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "sim/task.hpp"

namespace memfss::sim {

/// Handle for cancelling a scheduled event. Encodes (slot, generation);
/// 0 is never a valid id (generations start at 1), so callers can keep
/// using 0 as "no event pending".
using EventId = std::uint64_t;

/// Move-only callable with small-buffer storage. Captures up to
/// kInlineBytes (a coroutine handle, a couple of pointers) are stored in
/// place; larger callables fall back to one heap allocation.
class EventFn {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  EventFn() noexcept = default;

  template <typename F, typename D = std::remove_cvref_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& f) {  // NOLINT: implicit by design, mirrors std::function
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& o) noexcept : ops_(o.ops_) {
    if (ops_) ops_->relocate(o.buf_, buf_);
    o.ops_ = nullptr;
  }
  EventFn& operator=(EventFn&& o) noexcept {
    if (this != &o) {
      if (ops_) ops_->destroy(buf_);
      ops_ = o.ops_;
      if (ops_) ops_->relocate(o.buf_, buf_);
      o.ops_ = nullptr;
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() {
    if (ops_) ops_->destroy(buf_);
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() {
    assert(ops_);
    ops_->invoke(buf_);
  }

  void reset() noexcept {
    if (ops_) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* from, void* to) noexcept {
        ::new (to) D(std::move(*static_cast<D*>(from)));
        static_cast<D*>(from)->~D();
      },
      [](void* p) noexcept { static_cast<D*>(p)->~D(); }};

  template <typename D>
  static constexpr Ops kHeapOps{
      [](void* p) { (**static_cast<D**>(p))(); },
      [](void* from, void* to) noexcept {
        ::new (to) D*(*static_cast<D**>(from));
      },
      [](void* p) noexcept { delete *static_cast<D**>(p); }};

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule(SimTime delay, EventFn fn);

  /// Schedule at an absolute time (>= now()).
  EventId schedule_at(SimTime t, EventFn fn);

  /// Cancel a pending event; harmless if already fired or cancelled.
  void cancel(EventId id);

  /// Awaitable that resumes the coroutine after `d` simulated seconds.
  auto delay(SimTime d) {
    struct Awaiter {
      Simulator& sim;
      SimTime d;
      bool await_ready() const noexcept { return d <= 0; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.schedule(d, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  /// Detach and start a task. It begins at the current time (queued behind
  /// events already scheduled for `now`).
  void spawn(Task<> t);

  /// Run until the event queue drains. Returns the final time.
  SimTime run();

  /// Run until the clock would pass `t_end`; events at exactly t_end fire.
  SimTime run_until(SimTime t_end);

  /// Execute a single event. Returns false if the queue is empty.
  bool step();

  std::size_t pending_events() const { return live_; }
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Ev {
    SimTime t;
    std::uint64_t seq;  // monotonic: FIFO among equal times
    std::uint32_t slot;
    std::uint32_t gen;
    // min-heap: earliest time first; FIFO among equal times via seq.
    bool operator>(const Ev& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  /// One reusable handler slot. A slot is live iff its fn is set; the
  /// generation disambiguates heap entries left behind by cancel() or a
  /// later reuse of the slot (bumped on every release, skipping 0 so an
  /// EventId can never be all-zero).
  struct Slot {
    EventFn fn;
    std::uint32_t gen = 1;
  };

  void release_slot(std::uint32_t slot) {
    Slot& s = slots_[slot];
    if (++s.gen == 0) s.gen = 1;
    free_slots_.push_back(slot);
  }

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;  // scheduled, not yet fired or cancelled
  std::priority_queue<Ev, std::vector<Ev>, std::greater<Ev>> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace memfss::sim
