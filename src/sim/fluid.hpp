// FluidResource: a shared-capacity resource with max-min fair allocation.
//
// Jobs arrive with an amount of work (e.g. core-seconds, bytes) and an
// optional per-job rate cap (e.g. a task that can use at most 4 cores, a
// flow capped by a container bandwidth limit). At any instant the resource
// water-fills its capacity across active jobs: every job gets an equal
// share except jobs whose cap is below the share, which get their cap and
// return the remainder to the pool.
//
// This one abstraction models per-node CPU (capacity = cores), memory
// bandwidth (bytes/s), and -- inside net::Fabric -- NIC links. Contention
// between MemFSS and tenant applications, which is what the paper
// measures, emerges from jobs of both sharing the same FluidResource.
#pragma once

#include <limits>
#include <list>
#include <string>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace memfss::sim {

class FluidResource {
 public:
  static constexpr double kUncapped = std::numeric_limits<double>::infinity();

  FluidResource(Simulator& sim, double capacity, std::string name = {});
  ~FluidResource();
  FluidResource(const FluidResource&) = delete;
  FluidResource& operator=(const FluidResource&) = delete;

  /// Consume `work` units at a rate of at most `max_rate` units/s.
  /// Completes when the work has been processed. work >= 0.
  Task<> consume(double work, double max_rate = kUncapped);

  double capacity() const { return capacity_; }

  /// Change capacity at runtime (e.g. container cap tightened); active
  /// jobs are re-shared immediately.
  void set_capacity(double capacity);

  /// Sum of currently allocated rates.
  double allocated_rate() const { return total_rate_; }

  /// Active job count.
  std::size_t active_jobs() const { return jobs_.size(); }

  /// Time-weighted utilization (allocated/capacity) since construction.
  double average_utilization(SimTime t_end) const {
    return util_.average(t_end);
  }
  double current_utilization() const {
    return capacity_ > 0 ? total_rate_ / capacity_ : 0.0;
  }
  double peak_utilization() const { return util_.peak(); }

  /// Utilization integral for window averages (see TimeWeighted).
  double utilization_integral(SimTime t) const {
    return util_.integral_until(t);
  }

 private:
  struct Job {
    double remaining;
    double max_rate;
    double rate = 0.0;
    Event done;
    Job(Simulator& sim, double rem, double cap)
        : remaining(rem), max_rate(cap), done(sim) {}
  };

  void settle();     ///< charge elapsed progress to all jobs
  void recompute();  ///< water-fill rates + reschedule completion

  Simulator& sim_;
  double capacity_;
  std::string name_;
  std::list<Job> jobs_;
  double total_rate_ = 0.0;
  SimTime last_update_ = 0.0;
  EventId completion_event_ = 0;
  TimeWeighted util_;
};

}  // namespace memfss::sim
