// Coroutine task type for simulation processes.
//
// A sim::Task<T> is a lazily-started coroutine. Two ways to run one:
//   - `co_await child()` from another task: starts the child immediately
//     (symmetric transfer) and resumes the parent when it completes,
//     yielding its value. The child's frame is owned by the temporary Task
//     in the co_await expression -- no heap bookkeeping needed.
//   - `Simulator::spawn(task())`: detaches the task; it self-destroys at
//     completion. Used for top-level processes (servers, applications).
//
// Exceptions: propagate to the awaiting parent. A detached task that ends
// with an exception terminates the process -- simulation code treats
// errors as values (Result/Status), so an escaped exception is a bug.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace memfss::sim {

template <typename T>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation = nullptr;
  bool detached = false;
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<P> h) noexcept {
      auto& p = h.promise();
      if (p.continuation) return p.continuation;
      if (p.detached) {
        if (p.exception) std::terminate();  // escaped error in a detached task
        h.destroy();
      }
      return std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { exception = std::current_exception(); }
};

template <typename T>
struct Promise : PromiseBase {
  std::optional<T> value;
  Task<T> get_return_object();
  void return_value(T v) { value.emplace(std::move(v)); }
};

template <>
struct Promise<void> : PromiseBase {
  Task<void> get_return_object();
  void return_void() {}
};

}  // namespace detail

template <typename T = void>
class Task {
 public:
  using promise_type = detail::Promise<T>;
  using handle_t = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(handle_t h) : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return h_ != nullptr; }

  /// Releases ownership (Simulator::spawn marks the promise detached and
  /// takes over via self-destruction).
  handle_t release() { return std::exchange(h_, nullptr); }

  auto operator co_await() && {
    struct Awaiter {
      handle_t h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> parent) noexcept {
        h.promise().continuation = parent;
        return h;  // start the child now (symmetric transfer)
      }
      T await_resume() {
        auto& p = h.promise();
        if (p.exception) std::rethrow_exception(p.exception);
        if constexpr (!std::is_void_v<T>) {
          assert(p.value.has_value());
          return std::move(*p.value);
        }
      }
    };
    return Awaiter{h_};
  }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  handle_t h_ = nullptr;
};

namespace detail {
template <typename T>
Task<T> Promise<T>::get_return_object() {
  return Task<T>{std::coroutine_handle<Promise<T>>::from_promise(*this)};
}
inline Task<void> Promise<void>::get_return_object() {
  return Task<void>{std::coroutine_handle<Promise<void>>::from_promise(*this)};
}
}  // namespace detail

}  // namespace memfss::sim
