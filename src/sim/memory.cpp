#include "sim/memory.hpp"

#include <algorithm>
#include <cassert>

namespace memfss::sim {

MemoryPool::MemoryPool(Bytes capacity, std::string name)
    : capacity_(capacity), name_(std::move(name)) {}

bool MemoryPool::try_alloc(Bytes n) {
  if (n > capacity_ - used_) return false;
  used_ += n;
  high_water_ = std::max(high_water_, used_);
  if (pressure_armed_ && used_ >= pressure_threshold_) {
    pressure_armed_ = false;  // fire once per crossing
    if (pressure_cb_) pressure_cb_();
  }
  return true;
}

void MemoryPool::free(Bytes n) {
  assert(n <= used_);
  used_ -= n;
  if (pressure_cb_ && used_ < pressure_threshold_) pressure_armed_ = true;
}

void MemoryPool::set_pressure_callback(Bytes threshold,
                                       std::function<void()> cb) {
  pressure_threshold_ = threshold;
  pressure_cb_ = std::move(cb);
  pressure_armed_ = used_ < threshold;
}

}  // namespace memfss::sim
