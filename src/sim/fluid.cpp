#include "sim/fluid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace memfss::sim {

namespace {
// Work below this is "done" -- absorbs float error in remaining-work math.
constexpr double kWorkEpsilon = 1e-9;
}  // namespace

FluidResource::FluidResource(Simulator& sim, double capacity,
                             std::string name)
    : sim_(sim), capacity_(capacity), name_(std::move(name)) {
  assert(capacity >= 0.0);
  util_.set(sim_.now(), 0.0);
  last_update_ = sim_.now();
}

FluidResource::~FluidResource() {
  if (completion_event_) sim_.cancel(completion_event_);
}

void FluidResource::set_capacity(double capacity) {
  assert(capacity >= 0.0);
  settle();
  capacity_ = capacity;
  recompute();
}

Task<> FluidResource::consume(double work, double max_rate) {
  assert(work >= 0.0 && max_rate >= 0.0);
  if (work <= 0.0) co_return;
  settle();
  jobs_.emplace_back(sim_, work, max_rate);
  auto it = std::prev(jobs_.end());
  recompute();
  co_await it->done;
  // The completion handler erases the job before triggering `done`, so
  // nothing to clean up here.
}

void FluidResource::settle() {
  const SimTime now = sim_.now();
  const double dt = now - last_update_;
  if (dt > 0.0) {
    for (auto& j : jobs_) j.remaining = std::max(0.0, j.remaining - j.rate * dt);
  }
  last_update_ = now;
}

void FluidResource::recompute() {
  // Pop jobs that finished (remaining ~ 0) and trigger their events.
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if (it->remaining <= kWorkEpsilon) {
      // trigger() hands the waiter's coroutine handle to the scheduler and
      // drops every reference to the Event, so erasing the job (and the
      // Event inside it) immediately afterwards is safe: the resumed
      // consume() coroutine never touches the job again.
      it->done.trigger();
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }

  // Water-fill capacity across the remaining jobs.
  double cap = capacity_;
  std::size_t unfrozen = jobs_.size();
  for (auto& j : jobs_) j.rate = -1.0;  // -1 = unfrozen
  // Iteratively freeze jobs whose cap is below the fair share.
  bool progress = true;
  while (unfrozen > 0 && progress) {
    progress = false;
    const double share = cap / static_cast<double>(unfrozen);
    for (auto& j : jobs_) {
      if (j.rate >= 0.0) continue;
      if (j.max_rate <= share) {
        j.rate = j.max_rate;
        cap -= j.rate;
        --unfrozen;
        progress = true;
      }
    }
    if (!progress) {
      // No caps bind: everyone gets the equal share.
      for (auto& j : jobs_) {
        if (j.rate < 0.0) j.rate = share;
      }
      unfrozen = 0;
    }
  }

  total_rate_ = 0.0;
  for (const auto& j : jobs_) total_rate_ += j.rate;
  util_.set(sim_.now(), capacity_ > 0 ? total_rate_ / capacity_ : 0.0);

  // Schedule the next completion.
  if (completion_event_) {
    sim_.cancel(completion_event_);
    completion_event_ = 0;
  }
  double horizon = std::numeric_limits<double>::infinity();
  for (const auto& j : jobs_) {
    if (j.rate > 0.0) horizon = std::min(horizon, j.remaining / j.rate);
  }
  if (std::isfinite(horizon)) {
    // Clamp to a delay the clock can actually resolve: a horizon below
    // the floating-point granularity of `now` would fire with zero time
    // advance and spin forever. Slightly overshooting just clamps the
    // finishing job's remaining work at zero.
    const double min_dt = std::max(1e-12, sim_.now() * 1e-12);
    horizon = std::max(horizon, min_dt);
    completion_event_ = sim_.schedule(horizon, [this] {
      completion_event_ = 0;
      settle();
      recompute();
    });
  }
}

}  // namespace memfss::sim
