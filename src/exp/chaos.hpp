// Chaos soak: randomized concurrent faults over a live write/read
// workload, then heal everything and check invariants.
//
// The driver composes every fault class the cluster layer can inject --
// network partitions (symmetric, one-way, full isolation), node crashes,
// a mid-run revocation of the victim class, and memory-pressure evictions
// driven through the victim monitors -- all drawn from one fixed seed, so
// a soak replays byte-identically. After the horizon it heals every cut,
// releases the synthetic tenant pressure, lets recovery quiesce, and runs
// the invariant checker:
//
//   1. durability   -- every *acked* write is readable and byte-identical
//                      to the deterministic payload derived from its seed;
//   2. accounting   -- per node, the memory pool's usage equals the
//                      store's accounted bytes (plus tracked tenant
//                      allocations): nothing leaked, no stripe counted
//                      twice;
//   3. recovery     -- RecoveryStats balance: every handled failure
//                      (crash / revocation / eviction) completed exactly
//                      one targeted-repair pass.
//
// Violations are collected as human-readable strings; an empty list is
// the pass condition scripts/check.sh --chaos enforces across seeds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/fault.hpp"
#include "common/types.hpp"
#include "exp/scenario.hpp"
#include "fs/filesystem.hpp"

namespace memfss::exp {

struct ChaosSoakOptions {
  /// Deployment shape. Redundancy defaults to replicated x2 if left
  /// `none` (an unredundant store cannot survive a crash at all).
  ScenarioParams scenario{};
  std::uint64_t seed = 1;

  // Workload: `writers` client coroutines on own nodes, each writing
  // `files_per_writer` checksummable files at random times across the
  // fault horizon, re-reading earlier files in between.
  std::size_t writers = 4;
  std::size_t files_per_writer = 6;
  Bytes file_bytes_min = 2 * units::MiB;
  Bytes file_bytes_max = 6 * units::MiB;

  // Fault mix. Crashes/stalls target victim nodes; partitions may hit any
  // link, including the writers' own nodes.
  SimTime horizon = 40.0;       ///< faults + writes land in [0, horizon)
  double crash_rate = 0.4;      ///< expected crashes per victim node
  double stall_rate = 0.5;      ///< expected stalls per victim node
  SimTime stall_duration = 0.5;
  double partition_rate = 0.8;  ///< expected partitions per node
  SimTime partition_duration = 2.0;
  double partition_link_fraction = 0.6;
  double partition_oneway_fraction = 0.25;
  bool revoke_mid_run = true;
  SimTime revoke_at = 0.0;      ///< <= 0: auto (0.7 * horizon)
  double evict_rate = 0.4;      ///< tenant pressure events per victim node
  double monitor_threshold = 0.85;

  // Client resilience tuning (all exercised by the soak).
  SimTime rpc_timeout = 0.25;
  SimTime failure_detect_delay = 0.2;
  SimTime revocation_grace = 2.0;
  int breaker_failure_threshold = 3;
  SimTime breaker_cooldown = 0.5;
  double hedge_quantile = 0.95;
  std::uint64_t hedge_min_samples = 32;
};

struct ChaosInvariants {
  std::size_t files_acked = 0;     ///< writes that returned ok
  std::size_t files_verified = 0;  ///< read back byte-identical after heal
  std::size_t write_failures = 0;  ///< writes the faults defeated (allowed)
  std::size_t pressure_events = 0; ///< tenant allocations that landed
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }
};

struct ChaosSoakRow {
  std::uint64_t seed = 0;
  SimTime runtime = 0.0;  ///< full soak makespan incl. settle + verify
  cluster::FaultInjectorStats injected;
  fs::FsCounters counters;
  fs::RecoveryStats recovery;
  std::size_t breaker_opens = 0;
  // Tiered arm (scenario.victim_tier_capacity > 0); all zero untiered.
  std::uint64_t tier_demotions = 0;
  std::uint64_t tier_promotions = 0;
  std::uint64_t tier_cold_hits = 0;
  Bytes tier_cold_bytes = 0;  ///< cold-resident at the end of the soak
  ChaosInvariants invariants;
  bool ok = false;  ///< workload finished and invariants all hold
};

/// Run one soak at `opt.seed`. Deterministic: same options => same row.
ChaosSoakRow run_chaos_soak(const ChaosSoakOptions& opt);

/// CSV row schema shared by bench/chaos_soak and EXPERIMENTS.md.
std::string chaos_csv_header();
std::string chaos_csv_row(const ChaosSoakRow& row);

}  // namespace memfss::exp
