#include "exp/metrics.hpp"

#include <cassert>

namespace memfss::exp {

UtilizationWindow::UtilizationWindow(cluster::Cluster& cluster,
                                     std::vector<NodeId> group)
    : cluster_(cluster), group_(std::move(group)) {
  assert(!group_.empty());
}

void UtilizationWindow::start() {
  t0_ = cluster_.sim().now();
  cpu0_.clear();
  up0_.clear();
  down0_.clear();
  membw0_.clear();
  for (NodeId n : group_) {
    cpu0_.push_back(cluster_.node(n).cpu().utilization_integral(t0_));
    membw0_.push_back(cluster_.node(n).membw().utilization_integral(t0_));
    up0_.push_back(cluster_.fabric().up_utilization_integral(n, t0_));
    down0_.push_back(cluster_.fabric().down_utilization_integral(n, t0_));
  }
}

GroupUtilization UtilizationWindow::finish() const {
  const SimTime t1 = cluster_.sim().now();
  GroupUtilization out;
  if (t1 <= t0_) return out;
  const double dt = t1 - t0_;
  for (std::size_t i = 0; i < group_.size(); ++i) {
    const NodeId n = group_[i];
    out.cpu +=
        (cluster_.node(n).cpu().utilization_integral(t1) - cpu0_[i]) / dt;
    out.membw +=
        (cluster_.node(n).membw().utilization_integral(t1) - membw0_[i]) / dt;
    out.nic_up +=
        (cluster_.fabric().up_utilization_integral(n, t1) - up0_[i]) / dt;
    out.nic_down +=
        (cluster_.fabric().down_utilization_integral(n, t1) - down0_[i]) / dt;
  }
  const double k = static_cast<double>(group_.size());
  out.cpu /= k;
  out.membw /= k;
  out.nic_up /= k;
  out.nic_down /= k;
  return out;
}

}  // namespace memfss::exp
