// Utilization measurement windows over node groups.
//
// Fig. 2 reports average CPU% and NIC bandwidth for the own-node group
// and the victim-node group over one experiment run; this helper
// snapshots the time-weighted utilization integrals at start() and turns
// the difference into averages at finish().
#pragma once

#include <vector>

#include "cluster/cluster.hpp"
#include "common/types.hpp"

namespace memfss::exp {

struct GroupUtilization {
  double cpu = 0.0;       ///< mean fraction of cores busy
  double nic_up = 0.0;    ///< mean fraction of uplink used
  double nic_down = 0.0;  ///< mean fraction of downlink used
  double membw = 0.0;     ///< mean fraction of memory bus used

  /// Convenience: NIC utilization as the max of directions (a storage
  /// node's hot direction flips between write- and read-heavy runs).
  double nic() const { return nic_up > nic_down ? nic_up : nic_down; }
};

class UtilizationWindow {
 public:
  UtilizationWindow(cluster::Cluster& cluster, std::vector<NodeId> group);

  /// Snapshot the integrals at the current simulated time.
  void start();

  /// Average utilizations between start() and now.
  GroupUtilization finish() const;

 private:
  cluster::Cluster& cluster_;
  std::vector<NodeId> group_;
  SimTime t0_ = 0.0;
  std::vector<double> cpu0_, up0_, down0_, membw0_;
};

}  // namespace memfss::exp
