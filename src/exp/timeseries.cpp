#include "exp/timeseries.hpp"

#include <algorithm>

namespace memfss::exp {

TimeSeriesProbe::TimeSeriesProbe(cluster::Cluster& cluster,
                                 std::vector<NodeId> group, SimTime interval)
    : cluster_(cluster), group_(std::move(group)), interval_(interval) {}

void TimeSeriesProbe::start() {
  cluster_.sim().spawn(sampler());
}

sim::Task<> TimeSeriesProbe::sampler() {
  UtilizationWindow window(cluster_, group_);
  while (!stopped_) {
    window.start();
    co_await cluster_.sim().delay(interval_);
    samples_.push_back(Sample{cluster_.sim().now(), window.finish()});
  }
}

std::string TimeSeriesProbe::sparkline(double GroupUtilization::*channel,
                                       std::size_t width,
                                       double scale_max) const {
  static constexpr char kLevels[] = " .:-=+*#%@";
  constexpr std::size_t kLevelCount = sizeof(kLevels) - 2;  // max index
  if (samples_.empty() || width == 0) return {};
  std::string out;
  out.reserve(width);
  const std::size_t n = samples_.size();
  for (std::size_t b = 0; b < std::min(width, n); ++b) {
    // Average the samples falling into this bucket.
    const std::size_t lo = b * n / std::min(width, n);
    const std::size_t hi = std::max(lo + 1, (b + 1) * n / std::min(width, n));
    double acc = 0.0;
    for (std::size_t i = lo; i < hi && i < n; ++i)
      acc += samples_[i].util.*channel;
    const double v = acc / double(hi - lo);
    const double frac = scale_max > 0 ? std::clamp(v / scale_max, 0.0, 1.0)
                                      : 0.0;
    out += kLevels[static_cast<std::size_t>(frac * kLevelCount + 0.5)];
  }
  return out;
}

double TimeSeriesProbe::peak(double GroupUtilization::*channel) const {
  double p = 0.0;
  for (const auto& s : samples_) p = std::max(p, s.util.*channel);
  return p;
}

}  // namespace memfss::exp
