// Machine-readable exports of experiment results (CSV), so downstream
// plotting (gnuplot, pandas) can consume the sweeps without scraping the
// ASCII tables.
#pragma once

#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/table.hpp"  // csv_escape / csv_row
#include "exp/experiments.hpp"
#include "obs/metrics.hpp"

namespace memfss::exp {

/// One line per alpha point, header included:
/// alpha,own_cpu,victim_cpu,own_nic,victim_nic,victim_nic_mbps,runtime_s,
/// own_bytes,victim_bytes
std::string fig2_csv(const std::vector<Fig2Row>& rows);

/// suite-agnostic slowdown cells:
/// tenant,workload,alpha,slowdown
std::string slowdown_csv(const std::vector<SlowdownCell>& cells);

/// Table II rows:
/// label,nodes,feasible,runtime_s,node_hours,data_footprint_bytes
std::string table2_csv(const std::vector<Table2Row>& rows);

/// Registry dump (header + one row per instrument), via
/// MetricsSnapshot::to_csv:
/// kind,name,count,value,peak,sum,min,max,p50,p95,p99
std::string metrics_csv(const obs::MetricsSnapshot& snapshot);

/// Write any exported text to a file.
Status write_text_file(const std::string& path, const std::string& text);

}  // namespace memfss::exp
