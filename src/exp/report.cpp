#include "exp/report.hpp"

#include <fstream>

#include "common/str.hpp"

namespace memfss::exp {

std::string fig2_csv(const std::vector<Fig2Row>& rows) {
  std::string out =
      "alpha,own_cpu,victim_cpu,own_nic,victim_nic,victim_nic_mbps,"
      "runtime_s,own_bytes,victim_bytes\n";
  for (const auto& r : rows) {
    out += strformat("%.4f,%.6f,%.6f,%.6f,%.6f,%.3f,%.3f,%llu,%llu\n",
                     r.alpha, r.own.cpu, r.victim.cpu, r.own.nic(),
                     r.victim.nic(), r.victim_nic_rate / 1e6, r.runtime,
                     (unsigned long long)r.own_bytes,
                     (unsigned long long)r.victim_bytes);
  }
  return out;
}

std::string slowdown_csv(const std::vector<SlowdownCell>& cells) {
  std::string out = "tenant,workload,alpha,slowdown\n";
  for (const auto& c : cells) {
    out += csv_escape(c.tenant);
    out += strformat(",%s,%.4f,%.6f\n", workload_name(c.workload).c_str(),
                     c.alpha, c.slowdown);
  }
  return out;
}

std::string table2_csv(const std::vector<Table2Row>& rows) {
  std::string out =
      "label,nodes,feasible,runtime_s,node_hours,data_footprint_bytes\n";
  for (const auto& r : rows) {
    out += csv_escape(r.label);
    out += strformat(",%zu,%d,%.3f,%.4f,%llu\n", r.nodes, int(r.feasible),
                     r.runtime, r.node_hours,
                     (unsigned long long)r.data_footprint);
  }
  return out;
}

std::string metrics_csv(const obs::MetricsSnapshot& snapshot) {
  return snapshot.to_csv();
}

Status write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) return {Errc::io_error, "cannot open " + path};
  out << text;
  return out.good() ? Status{} : Status{Errc::io_error, "write failed"};
}

}  // namespace memfss::exp
