#include "exp/experiments.hpp"

#include <algorithm>
#include <cassert>

#include "cluster/fault.hpp"
#include "common/log.hpp"
#include "common/str.hpp"
#include "exp/timeseries.hpp"
#include "hash/hashes.hpp"
#include "tenant/runner.hpp"
#include "workflow/engine.hpp"
#include "workflow/generators.hpp"

namespace memfss::exp {

std::string workload_name(Workload w) {
  switch (w) {
    case Workload::none: return "none";
    case Workload::dd: return "dd";
    case Workload::montage: return "Montage";
    case Workload::blast: return "BLAST";
  }
  return "?";
}

workflow::Workflow make_workload(Workload w, Rng& rng) {
  switch (w) {
    case Workload::none:
      return {};
    case Workload::dd:
      // Slowdown-experiment scale: half the Fig. 2 bag per iteration so
      // iterations cycle a few times per tenant run.
      return workflow::make_dd_bag(1024, 128 * units::MiB);
    case Workload::montage: {
      // Sized so one iteration moves ~25 GB with the paper's stage shape
      // (wide short tasks, small files, long serial aggregations).
      workflow::MontageParams p;
      p.tiles = 1536;
      p.proj_bytes_min = 8 * units::MiB;
      p.proj_bytes_max = 16 * units::MiB;
      p.concat_cpu = 15.0;
      p.bgmodel_cpu = 25.0;
      p.imgtbl_cpu = 8.0;
      p.madd_cpu = 35.0;
      p.shrink_cpu = 5.0;
      p.small_requests_per_mib = 4.0;  // many-small-files FUSE chatter
      return workflow::make_montage(p, rng);
    }
    case Workload::blast: {
      // Shorter tasks than the headline BLAST numbers so the chatty I/O
      // overlaps the tenant benchmark window.
      workflow::BlastParams p;
      p.queries = 64;
      p.chunk_bytes_min = 64 * units::MiB;
      p.chunk_bytes_max = 128 * units::MiB;
      p.result_bytes_min = 128 * units::MiB;
      p.result_bytes_max = 256 * units::MiB;
      p.task_cpu_min = 15.0;
      p.task_cpu_max = 60.0;
      p.split_cpu = 10.0;
      p.merge_cpu = 30.0;
      return workflow::make_blast(p, rng);
    }
  }
  return {};
}

// --- Fig. 2 -------------------------------------------------------------------

namespace {

struct RunOut {
  workflow::Report report;
};

sim::Task<> run_workflow_once(workflow::Engine& engine,
                              workflow::Workflow wf, RunOut& out) {
  out.report = co_await engine.run(std::move(wf));
}

sim::Task<> run_workflow_then_stop_probes(
    workflow::Engine& engine, workflow::Workflow wf, RunOut& out,
    TimeSeriesProbe& a, TimeSeriesProbe& b) {
  out.report = co_await engine.run(std::move(wf));
  a.stop();
  b.stop();
}

}  // namespace

Fig2Row run_fig2(double alpha, const Fig2Options& opt) {
  ScenarioParams p = opt.scenario;
  p.own_fraction = alpha;
  Scenario sc(p);
  if (opt.capture_trace) sc.cluster().obs().tracer.enable_all(true);

  UtilizationWindow own_w(sc.cluster(), sc.own_nodes());
  UtilizationWindow vic_w(sc.cluster(), sc.victim_nodes());
  workflow::Engine engine(sc.cluster(), sc.fs(), sc.own_nodes());

  TimeSeriesProbe own_probe(sc.cluster(), sc.own_nodes(),
                            opt.sample_interval);
  TimeSeriesProbe vic_probe(sc.cluster(), sc.victim_nodes(),
                            opt.sample_interval);

  RunOut out;
  own_w.start();
  vic_w.start();
  auto wf = workflow::make_dd_bag(opt.dd_tasks, opt.dd_bytes);
  if (opt.with_timeseries) {
    own_probe.start();
    vic_probe.start();
    sc.sim().spawn(run_workflow_then_stop_probes(engine, std::move(wf), out,
                                                 own_probe, vic_probe));
  } else {
    sc.sim().spawn(run_workflow_once(engine, std::move(wf), out));
  }
  sc.sim().run();

  Fig2Row row;
  row.alpha = alpha;
  row.own = own_w.finish();
  row.victim = vic_w.finish();
  row.victim_nic_rate = row.victim.nic() * p.node_spec.nic.down;
  row.runtime = out.report.makespan;
  for (NodeId n : sc.own_nodes()) row.own_bytes += sc.fs().bytes_on(n);
  for (NodeId n : sc.victim_nodes()) row.victim_bytes += sc.fs().bytes_on(n);
  if (opt.with_timeseries) {
    row.own_cpu_series = own_probe.sparkline(&GroupUtilization::cpu);
    row.own_nic_series = own_probe.sparkline(&GroupUtilization::nic_up);
    row.victim_cpu_series = vic_probe.sparkline(&GroupUtilization::cpu);
    row.victim_nic_series = vic_probe.sparkline(&GroupUtilization::nic_down);
    row.victim_nic_peak = vic_probe.peak(&GroupUtilization::nic_down);
  }
  auto& obs = sc.cluster().obs();
  row.write_latency = obs.metrics.histogram_summary("fs.write_stripe.latency");
  row.metrics_csv = obs.metrics.snapshot(sc.sim().now()).to_csv();
  if (opt.capture_trace) row.trace_json = obs.tracer.chrome_json();
  if (!out.report.status.ok()) {
    LOG_WARN("exp") << "fig2 alpha=" << alpha << " workflow error: "
                    << out.report.status.error().to_string();
  }
  return row;
}

// --- Fig. 3-5 -----------------------------------------------------------------

namespace {

struct LoopCtl {
  bool stop = false;
  SimTime tenant_duration = 0.0;
  std::size_t workload_iterations = 0;
};

sim::Task<> workload_loop(Scenario& sc, Workload w, std::uint64_t seed,
                          LoopCtl& ctl) {
  Rng rng(seed);
  workflow::Engine engine(sc.cluster(), sc.fs(), sc.own_nodes());
  while (!ctl.stop) {
    auto wf = make_workload(w, rng);
    auto rep = co_await engine.run(std::move(wf));
    if (!rep.status.ok()) {
      LOG_WARN("exp") << "workload iteration failed: "
                      << rep.status.error().to_string();
    }
    sc.fs().wipe_data();
    ++ctl.workload_iterations;
  }
}

sim::Task<> tenant_once(tenant::TenantRunner& runner, tenant::TenantApp app,
                        LoopCtl& ctl) {
  auto res = co_await runner.run(std::move(app));
  ctl.tenant_duration = res.duration;
  ctl.stop = true;
}

}  // namespace

TenantRun run_tenant_under_scavenging(const tenant::TenantApp& app,
                                      Workload workload,
                                      const SlowdownOptions& opt) {
  ScenarioParams p = opt.scenario;
  if (workload == Workload::none) p.with_victims = false;
  Scenario sc(p);

  tenant::TenantRunner runner(
      sc.cluster(), sc.victim_nodes(),
      workload == Workload::none ? nullptr : &sc.fs());

  LoopCtl ctl;
  if (workload != Workload::none)
    sc.sim().spawn(workload_loop(sc, workload, opt.seed, ctl));
  sc.sim().spawn(tenant_once(runner, app, ctl));
  sc.sim().run();
  return {app.name, ctl.tenant_duration};
}

std::vector<SlowdownCell> run_slowdown_sweep(
    const std::vector<tenant::TenantApp>& suite,
    const std::vector<Workload>& workloads, double alpha,
    const SlowdownOptions& opt) {
  std::vector<SlowdownCell> out;
  for (const auto& app : suite) {
    SlowdownOptions base_opt = opt;
    base_opt.scenario.own_fraction = alpha;
    const TenantRun clean =
        run_tenant_under_scavenging(app, Workload::none, base_opt);
    for (Workload w : workloads) {
      const TenantRun loaded =
          run_tenant_under_scavenging(app, w, base_opt);
      SlowdownCell cell;
      cell.tenant = app.name;
      cell.workload = w;
      cell.alpha = alpha;
      cell.slowdown = clean.duration > 0
                          ? loaded.duration / clean.duration - 1.0
                          : 0.0;
      out.push_back(cell);
    }
  }
  return out;
}

// --- Table II / Fig. 7 --------------------------------------------------------

namespace {

workflow::Workflow make_table2_montage(const Table2Options& opt) {
  Rng rng(opt.seed);
  workflow::MontageParams p;
  p.tiles = opt.tiles;
  p.proj_bytes_min = opt.proj_bytes_min;
  p.proj_bytes_max = opt.proj_bytes_max;
  p.proj_cpu_min = 4.0;
  p.proj_cpu_max = 16.0;
  p.diff_cpu_min = 1.0;
  p.diff_cpu_max = 4.0;
  p.bg_cpu_min = 2.0;
  p.bg_cpu_max = 5.0;
  p.concat_cpu = 500.0;
  p.bgmodel_cpu = 1000.0;
  p.imgtbl_cpu = 200.0;
  p.madd_cpu = 2000.0;
  p.shrink_cpu = 90.0;
  return workflow::make_montage(p, rng);
}

Table2Row run_montage_on(Scenario& sc, workflow::Workflow wf,
                         std::size_t charged_nodes, std::string label) {
  workflow::Engine engine(sc.cluster(), sc.fs(), sc.own_nodes());
  RunOut out;
  sc.sim().spawn(run_workflow_once(engine, std::move(wf), out));
  sc.sim().run();

  Table2Row row;
  row.label = std::move(label);
  row.nodes = charged_nodes;
  row.runtime = out.report.makespan;
  row.node_hours =
      static_cast<double>(charged_nodes) * out.report.makespan / 3600.0;
  row.feasible = out.report.status.ok();
  if (!row.feasible) {
    LOG_WARN("exp") << row.label << " failed: "
                    << out.report.status.error().to_string();
  }
  return row;
}

}  // namespace

Table2Row run_table2_standalone(std::size_t nodes, const Table2Options& opt) {
  auto wf = make_table2_montage(opt);
  const Bytes footprint = wf.total_output_bytes();

  Table2Row row;
  row.label = strformat("Montage standalone (%zu nodes)", nodes);
  row.nodes = nodes;
  row.data_footprint = footprint;
  // Feasibility: all intermediate data must fit into the own stores
  // (with ~5% headroom for per-stripe bookkeeping).
  const auto capacity = static_cast<double>(nodes) *
                        static_cast<double>(opt.standalone_store_capacity);
  if (static_cast<double>(footprint) > 0.95 * capacity) {
    row.feasible = false;
    return row;  // "Unable to run, data does not fit"
  }

  ScenarioParams p;
  p.total_nodes = nodes;
  p.own_nodes = nodes;
  p.with_victims = false;
  p.own_store_capacity = opt.standalone_store_capacity;
  p.stripe_size = opt.stripe_size;
  Scenario sc(p);
  auto out = run_montage_on(sc, std::move(wf), nodes, row.label);
  out.data_footprint = footprint;
  return out;
}

Table2Row run_table2_scavenging(std::size_t own, const Table2Options& opt) {
  auto wf = make_table2_montage(opt);
  const Bytes footprint = wf.total_output_bytes();
  const std::size_t victims = opt.cluster_nodes - own;

  // The own class can only take what its stores hold; cap alpha there.
  const double own_cap_fraction =
      0.85 * static_cast<double>(own) *
      static_cast<double>(opt.own_store_capacity) /
      static_cast<double>(footprint);
  const double alpha = std::min(opt.own_fraction, own_cap_fraction);

  // Victims offer enough memory for the remainder (plus slack): the
  // secondary-queue offers are sized by the tenant's spare memory.
  const auto victim_cap = static_cast<Bytes>(std::max(
      static_cast<double>(opt.victim_memory_cap),
      1.2 * (1.0 - alpha) * static_cast<double>(footprint) /
          static_cast<double>(victims)));

  ScenarioParams p;
  p.total_nodes = opt.cluster_nodes;
  p.own_nodes = own;
  p.with_victims = true;
  p.own_fraction = alpha;
  p.own_store_capacity = opt.own_store_capacity;
  p.victim_memory_cap = victim_cap;
  p.victim_net_cap = opt.victim_net_cap;
  p.stripe_size = opt.stripe_size;
  Scenario sc(p);
  auto out = run_montage_on(
      sc, std::move(wf), own,
      strformat("Montage scavenging (%zu own + %zu victims)", own, victims));
  out.data_footprint = footprint;
  return out;
}

// --- fault recovery ----------------------------------------------------------

namespace {

workflow::Workflow make_fault_workload(const FaultRecoveryOptions& opt,
                                       Rng& rng) {
  if (opt.workload == Workload::montage) {
    // Montage reads every intermediate back (mProject outputs feed
    // mBackground / mAdd), so degraded reads actually happen; the scale
    // knob keeps the fault bench fast.
    workflow::MontageParams p;
    p.tiles = opt.montage_tiles;
    p.proj_bytes_min = opt.proj_bytes_min;
    p.proj_bytes_max = opt.proj_bytes_max;
    // Same I/O-heavy stage shape as the slowdown-scale montage: short
    // serial aggregations so the run is dominated by the data paths the
    // faults hit, not by CPU.
    p.concat_cpu = 15.0;
    p.bgmodel_cpu = 25.0;
    p.imgtbl_cpu = 8.0;
    p.madd_cpu = 35.0;
    p.shrink_cpu = 5.0;
    return workflow::make_montage(p, rng);
  }
  return make_workload(opt.workload, rng);
}

struct FaultRunOut {
  SimTime runtime = 0.0;
  bool ok = true;
  fs::FsCounters counters;
  fs::RecoveryStats recovery;
  cluster::FaultInjectorStats injected;
  obs::HistogramSummary repair_latency;
  std::uint64_t tier_demotions = 0, tier_promotions = 0, tier_cold_hits = 0;
  std::string metrics_csv;
  std::string trace_json;
  std::string trace_text;
};

FaultRunOut fault_run_once(const FaultRecoveryOptions& opt, bool with_faults) {
  ScenarioParams p = opt.scenario;
  if (p.redundancy == fs::RedundancyMode::none) {
    p.redundancy = fs::RedundancyMode::replicated;
    p.copies = 2;
  }
  Scenario sc(p);
  if (opt.capture_trace) sc.cluster().obs().tracer.enable_all(true);
  sc.fs().set_fault_tuning(opt.rpc_timeout, opt.failure_detect_delay,
                           opt.revocation_grace);
  cluster::FaultInjector inj(sc.sim(), sc.cluster());
  sc.fs().attach_fault_injector(inj);

  if (with_faults && !sc.victim_nodes().empty()) {
    Rng fault_rng(hash::mix64(opt.seed, 0xfa117));
    cluster::FaultPlan::RandomParams rp;
    rp.horizon = opt.fault_horizon;
    rp.crash_rate = opt.crash_rate;
    rp.stall_rate = opt.stall_rate;
    rp.stall_duration = opt.stall_duration;
    auto plan =
        cluster::FaultPlan::random(fault_rng, sc.victim_nodes(), rp);
    if (opt.revoke_mid_run) plan.revoke_class(opt.revoke_at, 1);
    inj.arm(plan);
  }

  if (with_faults && opt.evict_rate > 0 && !sc.victim_nodes().empty()) {
    // Synthetic tenant pressure (the chaos soak's mechanism, scaled to
    // the fault window): allocate a victim's pool past the monitor
    // threshold at Poisson arrivals so the reclaim pipeline -- demotion
    // on tiered victims, evacuation otherwise -- runs under the
    // workflow. Allocations are plain pool accounting; they are not
    // released (the bench measures the faulty run only).
    sc.fs().arm_victim_monitors(opt.monitor_threshold);
    for (std::size_t i = 0; i < sc.victim_nodes().size(); ++i) {
      sc.sim().spawn([](Scenario& s, NodeId victim, double horizon,
                        double rate, std::uint64_t seed,
                        std::size_t idx) -> sim::Task<> {
        auto& sim = s.sim();
        auto& pool = s.cluster().node(victim).memory();
        Rng rng(hash::mix64(seed, 0x9e550000u + idx));
        const double mean_gap = horizon / rate;
        double t = rng.exponential(mean_gap);
        while (t < horizon) {
          if (t > sim.now()) co_await sim.delay(t - sim.now());
          const auto over =
              static_cast<Bytes>(0.95 * static_cast<double>(pool.capacity()));
          if (pool.used() < over) (void)pool.try_alloc(over - pool.used());
          t += rng.exponential(mean_gap);
        }
      }(sc, sc.victim_nodes()[i], opt.fault_horizon, opt.evict_rate,
        opt.seed, i));
    }
  }

  Rng rng(opt.seed);
  auto wf = make_fault_workload(opt, rng);
  workflow::Engine engine(sc.cluster(), sc.fs(), sc.own_nodes());
  RunOut out;
  sc.sim().spawn(run_workflow_once(engine, std::move(wf), out));
  sc.sim().run();

  FaultRunOut r;
  r.runtime = out.report.makespan;
  r.ok = out.report.status.ok();
  if (!r.ok) {
    LOG_WARN("exp") << "fault-recovery workflow failed: "
                    << out.report.status.error().to_string();
  }
  r.counters = sc.fs().counters();
  r.recovery = sc.fs().recovery();
  r.injected = inj.stats();
  auto& obs = sc.cluster().obs();
  r.repair_latency = obs.metrics.histogram_summary("fs.repair.latency");
  if (p.victim_tier_capacity > 0) {
    // Guarded: create-or-get on an untiered registry would perturb its
    // metrics dump.
    r.tier_demotions = obs.metrics.counter("tier.demotions").value();
    r.tier_promotions = obs.metrics.counter("tier.promotions").value();
    r.tier_cold_hits = obs.metrics.counter("tier.cold_hits").value();
  }
  r.metrics_csv = obs.metrics.snapshot(sc.sim().now()).to_csv();
  if (opt.capture_trace) {
    r.trace_json = obs.tracer.chrome_json();
    r.trace_text = obs.tracer.text_dump();
  }
  return r;
}

}  // namespace

FaultRecoveryRow run_fault_recovery(const FaultRecoveryOptions& opt) {
  const FaultRunOut clean = fault_run_once(opt, /*with_faults=*/false);
  // Auto-scale the fault window to the workload: faults that all land in
  // the first seconds of a long run measure nothing.
  FaultRecoveryOptions eff = opt;
  if (eff.fault_horizon <= 0) eff.fault_horizon = 0.6 * clean.runtime;
  if (eff.revoke_at <= 0) eff.revoke_at = 0.35 * clean.runtime;
  const FaultRunOut faulty = fault_run_once(eff, /*with_faults=*/true);

  FaultRecoveryRow row;
  row.runtime = faulty.runtime;
  row.clean_runtime = clean.runtime;
  row.slowdown =
      clean.runtime > 0 ? faulty.runtime / clean.runtime - 1.0 : 0.0;
  row.crashes = faulty.injected.crashes;
  row.revocations = faulty.injected.revocations;
  row.stalls = faulty.injected.stalls;
  row.degraded_reads = faulty.counters.degraded_reads;
  row.rpc_timeouts = faulty.counters.rpc_timeouts;
  row.read_retries = faulty.counters.read_retries;
  row.write_retries = faulty.counters.write_retries;
  row.failures_handled = faulty.recovery.failures_handled;
  row.stripes_repaired = faulty.recovery.stripes_repaired;
  row.bytes_re_replicated = faulty.recovery.bytes_re_replicated;
  row.mean_time_to_repair = faulty.recovery.mean_time_to_repair();
  row.tier_demotions = faulty.tier_demotions;
  row.tier_promotions = faulty.tier_promotions;
  row.tier_cold_hits = faulty.tier_cold_hits;
  row.repair_latency = faulty.repair_latency;
  row.metrics_csv = faulty.metrics_csv;
  row.trace_json = faulty.trace_json;
  row.trace_text = faulty.trace_text;
  row.ok = faulty.ok && clean.ok;
  return row;
}

}  // namespace memfss::exp
