// Tier-pressure experiment (DESIGN.md §16, bench/tier_pressure):
// how long does a tenant wait for its memory back when pressure hits a
// scavenged victim node?
//
// Two arms over the same seed and workload:
//   - baseline:  untiered victims; a pressure event triggers the full
//                evacuation protocol -- every resident key migrates over
//                the (container-capped) fabric before the RAM is free;
//   - tiered:    victims carry a cold tier; a pressure event demotes
//                coldest-first into the node-local tier at device
//                bandwidth, touching the fabric not at all.
//
// The measured quantity is the fs.victim_reclaim.latency histogram: one
// sample per reclaim pass, from the pressure event to the point the
// scavenger has given the memory back. The tiered arm's p99 is the
// headline number (EXPERIMENTS.md records the ratio).
#pragma once

#include <cstdint>
#include <string>

#include "exp/scenario.hpp"
#include "obs/histogram.hpp"

namespace memfss::exp {

struct TierPressureOptions {
  /// Deployment shape. victim_tier_capacity here selects the arm: 0 is
  /// the untiered baseline, > 0 the tiered arm.
  ScenarioParams scenario{};
  std::uint64_t seed = 1;

  /// Stripes written before pressure starts (spread over victim stores by
  /// normal HRW placement).
  std::size_t files = 24;
  Bytes file_bytes = 8 * units::MiB;

  /// Fraction of each victim file re-read after the fill: the touched
  /// prefix becomes hot, the rest stays cold -- what makes
  /// coldest-first demotion cheaper than evacuating everything.
  double hot_fraction = 0.25;

  /// Victim-monitor threshold (fraction of the node's memory pool).
  double monitor_threshold = 0.85;
  /// Tenant allocation target when a pressure event fires.
  double pressure_fill = 0.95;
  /// Gap between successive per-node pressure events.
  SimTime pressure_stagger = 0.25;
};

struct TierPressureRow {
  std::string arm;           ///< "baseline" or "tiered"
  std::uint64_t seed = 0;
  std::size_t pressure_events = 0;
  std::uint64_t demotions = 0;
  std::uint64_t promotions = 0;
  std::uint64_t cold_hits = 0;
  Bytes cold_bytes = 0;      ///< cold-resident when the run settles
  obs::HistogramSummary reclaim;  ///< fs.victim_reclaim.latency
  SimTime runtime = 0.0;
  bool ok = false;           ///< every write landed + >=1 reclaim sample
};

/// Run one arm at `opt.seed`. Deterministic: same options => same row.
TierPressureRow run_tier_pressure(const TierPressureOptions& opt);

/// CSV row schema shared by bench/tier_pressure and EXPERIMENTS.md.
std::string tier_pressure_csv_header();
std::string tier_pressure_csv_row(const TierPressureRow& row);

}  // namespace memfss::exp
