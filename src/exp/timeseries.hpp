// TimeSeriesProbe: periodic sampling of a node group's utilization.
//
// Fig. 2a-e of the paper are utilization-vs-time plots; the averages the
// summary table reports hide the burst structure. The probe spawns a
// sampling process that records one window-averaged sample per interval
// and renders compact ASCII sparklines for terminal output.
#pragma once

#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/types.hpp"
#include "exp/metrics.hpp"
#include "sim/task.hpp"

namespace memfss::exp {

class TimeSeriesProbe {
 public:
  struct Sample {
    SimTime t = 0.0;          ///< end of the sampling window
    GroupUtilization util{};  ///< averages over the window
  };

  /// Samples every `interval` seconds until stop() (or simulation drain).
  TimeSeriesProbe(cluster::Cluster& cluster, std::vector<NodeId> group,
                  SimTime interval = 1.0);

  /// Begin sampling (spawns the probe process on the cluster's simulator).
  void start();

  /// Stop after the current interval.
  void stop() { stopped_ = true; }

  const std::vector<Sample>& samples() const { return samples_; }

  /// Render one utilization channel as a sparkline, resampled to `width`
  /// buckets; values are scaled to `scale_max` (e.g. 1.0 = 100%).
  std::string sparkline(double GroupUtilization::*channel,
                        std::size_t width = 60,
                        double scale_max = 1.0) const;

  /// Peak of a channel across all samples.
  double peak(double GroupUtilization::*channel) const;

 private:
  sim::Task<> sampler();

  cluster::Cluster& cluster_;
  std::vector<NodeId> group_;
  SimTime interval_;
  bool stopped_ = false;
  std::vector<Sample> samples_;
};

}  // namespace memfss::exp
