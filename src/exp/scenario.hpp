// Scenario: one self-contained simulated deployment in the paper's shape.
//
// DAS-5-like cluster of `total_nodes`; the first `own_nodes` are reserved
// by the MemFSS user, the rest by a tenant. Tenant nodes register
// scavenge offers (memory cap + container bandwidth cap) in the
// reservation system's secondary queue; MemFSS claims them and forms
// victim class 1 with the weight matching `own_fraction` (alpha).
#pragma once

#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/reservation.hpp"
#include "fs/filesystem.hpp"
#include "sim/simulator.hpp"

namespace memfss::exp {

struct ScenarioParams {
  std::size_t total_nodes = 40;
  std::size_t own_nodes = 8;
  bool with_victims = true;        ///< false: MemFSS uses own nodes only
  double own_fraction = 0.25;      ///< alpha: share of data on own nodes
  Bytes victim_memory_cap = 10 * units::GiB;
  Rate victim_net_cap = 500e6;     ///< container bandwidth ceiling (B/s)
  Bytes own_store_capacity = 48 * units::GiB;
  Bytes stripe_size = 16 * units::MiB;
  fs::RedundancyMode redundancy = fs::RedundancyMode::none;
  std::uint8_t copies = 2;
  cluster::NodeSpec node_spec{};
  /// Cold-tier capacity per victim node; 0 keeps tiering off (untiered
  /// runs stay bit-identical -- see FileSystemConfig::victim_tier_capacity).
  Bytes victim_tier_capacity = 0;
  kvstore::TierCosts tier_costs{};
  SimTime heat_epoch = 1.0;
};

class Scenario {
 public:
  explicit Scenario(const ScenarioParams& params);

  sim::Simulator& sim() { return sim_; }
  cluster::Cluster& cluster() { return *cluster_; }
  cluster::ReservationSystem& reservations() { return *resv_; }
  fs::FileSystem& fs() { return *fs_; }

  const std::vector<NodeId>& own_nodes() const { return own_; }
  const std::vector<NodeId>& victim_nodes() const { return victims_; }
  const ScenarioParams& params() const { return params_; }

  /// Release the MemFSS reservation and return its node-hours.
  double release_own_reservation();

 private:
  ScenarioParams params_;
  sim::Simulator sim_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<cluster::ReservationSystem> resv_;
  cluster::Reservation own_resv_;
  cluster::Reservation tenant_resv_;
  std::vector<NodeId> own_, victims_;
  std::unique_ptr<fs::FileSystem> fs_;
};

}  // namespace memfss::exp
