#include "exp/scenario.hpp"

#include <cassert>

#include "common/log.hpp"

namespace memfss::exp {

Scenario::Scenario(const ScenarioParams& params) : params_(params) {
  assert(params.own_nodes >= 1 && params.own_nodes <= params.total_nodes);
  cluster_ = std::make_unique<cluster::Cluster>(sim_, params.total_nodes,
                                                params.node_spec);
  resv_ = std::make_unique<cluster::ReservationSystem>(sim_,
                                                       params.total_nodes);

  auto own = resv_->reserve("memfss-user", params.own_nodes);
  assert(own.ok());
  own_resv_ = std::move(own).value();
  own_ = own_resv_.nodes;

  fs::FileSystemConfig cfg;
  cfg.own_nodes = own_;
  cfg.own_store_capacity = params.own_store_capacity;
  cfg.stripe_size = params.stripe_size;
  cfg.redundancy = params.redundancy;
  cfg.copies = params.copies;
  cfg.victim_tier_capacity = params.victim_tier_capacity;
  cfg.tier_costs = params.tier_costs;
  cfg.heat_epoch = params.heat_epoch;
  fs_ = std::make_unique<fs::FileSystem>(*cluster_, std::move(cfg));

  const std::size_t tenant_count = params.total_nodes - params.own_nodes;
  if (tenant_count > 0) {
    auto tenant = resv_->reserve("tenant", tenant_count);
    assert(tenant.ok());
    tenant_resv_ = std::move(tenant).value();
    victims_ = tenant_resv_.nodes;
  }

  if (params.with_victims && !victims_.empty()) {
    // Tenants volunteer their nodes into the secondary queue; MemFSS
    // claims every offer and forms victim class 1.
    std::vector<cluster::ScavengeOffer> claimed;
    for (NodeId v : victims_) {
      auto st = resv_->register_offer(tenant_resv_, v,
                                      params.victim_memory_cap,
                                      params.victim_net_cap);
      assert(st.ok());
      auto offer = resv_->claim_offer(v);
      assert(offer.ok());
      claimed.push_back(offer.value());
    }
    auto st = fs_->add_victim_class(1, claimed, params.own_fraction);
    assert(st.ok());
    (void)st;
  }
}

double Scenario::release_own_reservation() {
  return resv_->release(own_resv_);
}

}  // namespace memfss::exp
