#include "exp/chaos.hpp"

#include <cstring>
#include <utility>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/str.hpp"
#include "fs/client.hpp"
#include "fs/health.hpp"
#include "hash/hashes.hpp"
#include "kvstore/store.hpp"

namespace memfss::exp {
namespace {

struct AckedFile {
  std::string path;
  std::uint64_t content_seed = 0;
  Bytes size = 0;
};

/// Deterministic payload: the verifier regenerates it from the seed
/// instead of holding every written byte for the whole soak.
std::vector<std::uint8_t> make_payload(std::uint64_t content_seed,
                                       Bytes size) {
  std::vector<std::uint8_t> out(size);
  Rng rng(content_seed);
  std::size_t i = 0;
  for (; i + 8 <= out.size(); i += 8) {
    const std::uint64_t w = rng.next_u64();
    std::memcpy(&out[i], &w, 8);
  }
  if (i < out.size()) {
    const std::uint64_t w = rng.next_u64();
    std::memcpy(&out[i], &w, out.size() - i);
  }
  return out;
}

struct SoakCtx {
  const ChaosSoakOptions* opt = nullptr;
  Scenario* sc = nullptr;
  std::vector<AckedFile> acked;
  std::vector<std::pair<NodeId, Bytes>> tenant_allocs;
  std::size_t write_failures = 0;
  std::size_t pressure_events = 0;
};

/// One writer: `files_per_writer` checksummable files spread across the
/// fault horizon, with opportunistic re-reads of earlier acks in between
/// (those reads run *during* the faults and exercise hedges, breakers,
/// degraded fallbacks; their failures are tolerated).
sim::Task<> run_writer(SoakCtx& ctx, NodeId node, std::size_t idx) {
  auto& sim = ctx.sc->sim();
  fs::Client c = ctx.sc->fs().client(node);
  Rng rng(hash::mix64(ctx.opt->seed, 0x3a7e0000u + idx));
  (void)co_await c.mkdirs(strformat("/w%zu", idx));
  const double gap =
      ctx.opt->horizon / static_cast<double>(ctx.opt->files_per_writer + 1);
  for (std::size_t f = 0; f < ctx.opt->files_per_writer; ++f) {
    co_await sim.delay(rng.exponential(gap));
    const Bytes size =
        rng.uniform_u64(ctx.opt->file_bytes_min, ctx.opt->file_bytes_max);
    const std::uint64_t cseed =
        hash::mix64(ctx.opt->seed, (std::uint64_t(idx) << 16) | f);
    std::string path = strformat("/w%zu/f%zu", idx, f);
    const Status st =
        co_await c.write_file_bytes(path, make_payload(cseed, size));
    if (st.ok()) {
      ctx.acked.push_back({std::move(path), cseed, size});
    } else {
      ++ctx.write_failures;
      LOG_INFO("chaos") << "write " << path
                        << " defeated: " << st.error().to_string();
    }
    if (!ctx.acked.empty() && rng.chance(0.5)) {
      const auto& back =
          ctx.acked[rng.uniform_u64(0, ctx.acked.size() - 1)];
      (void)co_await c.read_file_bytes(back.path);
    }
  }
}

/// Synthetic tenant on one victim node: at Poisson arrivals, allocate the
/// pool up to just past the monitor threshold so the pressure callback
/// fires and the eviction pipeline runs. Allocations are tracked and
/// released when the soak heals.
sim::Task<> tenant_pressure(SoakCtx& ctx, NodeId victim, std::size_t idx) {
  auto& sim = ctx.sc->sim();
  auto& pool = ctx.sc->cluster().node(victim).memory();
  Rng rng(hash::mix64(ctx.opt->seed, 0x9e550000u + idx));
  if (ctx.opt->evict_rate <= 0.0) co_return;
  const double mean_gap = ctx.opt->horizon / ctx.opt->evict_rate;
  double t = rng.exponential(mean_gap);
  while (t < ctx.opt->horizon) {
    co_await sim.delay(t - sim.now() > 0 ? t - sim.now() : 0.0);
    const auto over = static_cast<Bytes>(
        0.95 * static_cast<double>(pool.capacity()));
    if (pool.used() < over) {
      const Bytes want = over - pool.used();
      if (pool.try_alloc(want)) {
        ctx.tenant_allocs.emplace_back(victim, want);
        ++ctx.pressure_events;
      }
    }
    t += rng.exponential(mean_gap);
  }
}

sim::Task<> verify_acked(SoakCtx& ctx, ChaosInvariants& inv) {
  fs::Client c = ctx.sc->fs().client(ctx.sc->own_nodes().front());
  for (const auto& f : ctx.acked) {
    auto r = co_await c.read_file_bytes(f.path);
    if (!r.ok()) {
      inv.violations.push_back(strformat(
          "acked file %s unreadable after heal: %s", f.path.c_str(),
          r.error().to_string().c_str()));
      continue;
    }
    if (r.value() != make_payload(f.content_seed, f.size)) {
      inv.violations.push_back(
          strformat("acked file %s read back with wrong contents "
                    "(%zu bytes expected %zu)",
                    f.path.c_str(), r.value().size(),
                    std::size_t(f.size)));
      continue;
    }
    ++inv.files_verified;
  }
}

/// Memory-accounting invariant: on every node that still runs a live
/// server, the pool's usage must equal the store's accounted bytes (the
/// synthetic tenant pressure has been released by now), and the store's
/// own accounting must equal the sum of its keys -- a stripe counted
/// twice, or freed twice, breaks one of the two equalities.
void check_accounting(SoakCtx& ctx, ChaosInvariants& inv) {
  auto& fs = ctx.sc->fs();
  const std::size_t total = ctx.sc->params().total_nodes;
  for (NodeId n = 0; n < total; ++n) {
    if (!fs.has_server(n)) continue;
    auto& srv = fs.server(n);
    if (!srv.is_up()) continue;  // crashed: wiped and released
    const auto& store = srv.store();
    Bytes by_keys = 0;
    for (const auto& k : store.keys()) {
      const auto* blob = store.peek(k);
      if (blob != nullptr)
        by_keys += blob->size() + kvstore::Store::kPerKeyOverhead;
    }
    if (by_keys != store.used()) {
      inv.violations.push_back(strformat(
          "node %u store accounting drifted: keys sum to %llu, "
          "used() says %llu",
          unsigned(n), (unsigned long long)by_keys,
          (unsigned long long)store.used()));
    }
    const Bytes pool_used = ctx.sc->cluster().node(n).memory().used();
    if (pool_used != store.used()) {
      inv.violations.push_back(strformat(
          "node %u pool/store mismatch: pool %llu vs store %llu "
          "(stripe double-count or leak)",
          unsigned(n), (unsigned long long)pool_used,
          (unsigned long long)store.used()));
    }
    // Tiering invariants (DESIGN.md §16): the cold tier's accounting must
    // equal the sum of its entries, stay under its capacity, and never
    // share a key with the hot store (no dual residency) -- even after
    // crashes landed mid-demotion or mid-promotion.
    if (srv.tiered()) {
      const auto* tier = srv.tier();
      Bytes cold_by_keys = 0;
      for (const auto& k : tier->keys()) {
        if (auto sz = tier->value_size(k); sz.ok())
          cold_by_keys += sz.value() + kvstore::Store::kPerKeyOverhead;
        if (store.peek(k) != nullptr) {
          inv.violations.push_back(strformat(
              "node %u key %s resident in both tiers", unsigned(n),
              k.c_str()));
        }
      }
      if (cold_by_keys != tier->used()) {
        inv.violations.push_back(strformat(
            "node %u cold-tier accounting drifted: keys sum to %llu, "
            "used() says %llu",
            unsigned(n), (unsigned long long)cold_by_keys,
            (unsigned long long)tier->used()));
      }
      if (tier->used() > tier->capacity()) {
        inv.violations.push_back(strformat(
            "node %u cold tier over capacity: %llu > %llu", unsigned(n),
            (unsigned long long)tier->used(),
            (unsigned long long)tier->capacity()));
      }
    }
  }
}

void check_recovery_balance(const fs::RecoveryStats& rec,
                            ChaosInvariants& inv) {
  if (rec.repairs != rec.failures_handled) {
    inv.violations.push_back(strformat(
        "recovery imbalance: %zu failures handled but %zu repair "
        "passes completed",
        rec.failures_handled, rec.repairs));
  }
  if (rec.total_repair_time < 0.0) {
    inv.violations.push_back("negative total repair time");
  }
}

}  // namespace

ChaosSoakRow run_chaos_soak(const ChaosSoakOptions& opt) {
  ScenarioParams p = opt.scenario;
  if (p.redundancy == fs::RedundancyMode::none) {
    p.redundancy = fs::RedundancyMode::replicated;
    p.copies = 2;
  }
  Scenario sc(p);
  sc.fs().set_fault_tuning(opt.rpc_timeout, opt.failure_detect_delay,
                           opt.revocation_grace);
  sc.fs().set_resilience_tuning(opt.breaker_failure_threshold,
                                opt.breaker_cooldown, opt.hedge_quantile,
                                opt.hedge_min_samples);
  cluster::FaultInjector inj(sc.sim(), sc.cluster());
  sc.fs().attach_fault_injector(inj);
  sc.fs().arm_victim_monitors(opt.monitor_threshold);

  // One RNG stream per concern, all derived from the soak seed: fault
  // schedule, writer behavior, and tenant pressure never perturb each
  // other's draws, so tweaking one knob replays the rest byte-identically.
  Rng fault_rng(hash::mix64(opt.seed, 0xc4a05u));
  cluster::FaultPlan::RandomParams vr;
  vr.horizon = opt.horizon;
  vr.crash_rate = opt.crash_rate;
  vr.stall_rate = opt.stall_rate;
  vr.stall_duration = opt.stall_duration;
  auto plan = cluster::FaultPlan::random(fault_rng, sc.victim_nodes(), vr);

  cluster::FaultPlan::RandomParams pr;
  pr.horizon = opt.horizon;
  pr.partition_rate = opt.partition_rate;
  pr.partition_duration = opt.partition_duration;
  pr.partition_link_fraction = opt.partition_link_fraction;
  pr.partition_oneway_fraction = opt.partition_oneway_fraction;
  std::vector<NodeId> everyone = sc.own_nodes();
  everyone.insert(everyone.end(), sc.victim_nodes().begin(),
                  sc.victim_nodes().end());
  plan.append(cluster::FaultPlan::random(fault_rng, everyone, pr));

  if (opt.revoke_mid_run && !sc.victim_nodes().empty()) {
    const SimTime at =
        opt.revoke_at > 0 ? opt.revoke_at : 0.7 * opt.horizon;
    plan.revoke_class(at, 1);
  }
  inj.arm(plan);

  SoakCtx ctx;
  ctx.opt = &opt;
  ctx.sc = &sc;
  const auto& own = sc.own_nodes();
  for (std::size_t i = 0; i < opt.writers; ++i)
    sc.sim().spawn(run_writer(ctx, own[i % own.size()], i));
  {
    std::size_t i = 0;
    for (NodeId v : sc.victim_nodes())
      sc.sim().spawn(tenant_pressure(ctx, v, i++));
  }

  // End of the chaos window: restore every link and hand the tenant
  // allocations back, then let recovery and stalled flows quiesce (the
  // event queue drains naturally -- nothing recurring is armed).
  sc.sim().schedule(opt.horizon, [&] {
    inj.heal_now();
    for (const auto& [node, bytes] : ctx.tenant_allocs)
      sc.cluster().node(node).memory().free(bytes);
    ctx.tenant_allocs.clear();
  });
  sc.sim().run();

  ChaosSoakRow row;
  row.seed = opt.seed;
  row.invariants.files_acked = ctx.acked.size();
  row.invariants.write_failures = ctx.write_failures;
  row.invariants.pressure_events = ctx.pressure_events;

  // Verification phase: everything is healed and quiescent.
  sc.sim().spawn(verify_acked(ctx, row.invariants));
  sc.sim().run();
  check_accounting(ctx, row.invariants);
  check_recovery_balance(sc.fs().recovery(), row.invariants);

  row.runtime = sc.sim().now();
  row.injected = inj.stats();
  row.counters = sc.fs().counters();
  row.recovery = sc.fs().recovery();
  row.breaker_opens = sc.fs().health().opens();
  if (p.victim_tier_capacity > 0) {
    // Only tiered runs read the tier.* instruments: create-or-get would
    // add them to an untiered registry and perturb its metrics dump.
    auto& m = sc.cluster().obs().metrics;
    row.tier_demotions = m.counter("tier.demotions").value();
    row.tier_promotions = m.counter("tier.promotions").value();
    row.tier_cold_hits = m.counter("tier.cold_hits").value();
    for (NodeId v : sc.victim_nodes())
      if (sc.fs().has_server(v))
        row.tier_cold_bytes += sc.fs().server(v).tier_bytes();
  }
  row.ok = row.invariants.ok();
  for (const auto& v : row.invariants.violations)
    LOG_WARN("chaos") << "invariant violation: " << v;
  return row;
}

std::string chaos_csv_header() {
  return "seed,runtime,crashes,stalls,partitions,heals,revocations,"
         "evictions,pressure_events,files_acked,files_verified,"
         "write_failures,degraded_reads,hedged_reads,hedge_wins,"
         "breaker_opens,breaker_rejections,breaker_reroutes,"
         "failures_handled,repairs,stripes_repaired,"
         "demotions,promotions,cold_hits,cold_bytes,violations,ok";
}

std::string chaos_csv_row(const ChaosSoakRow& r) {
  return strformat(
      "%llu,%.3f,%zu,%zu,%zu,%zu,%zu,%zu,%zu,%zu,%zu,%zu,%llu,%llu,%llu,"
      "%zu,%llu,%llu,%zu,%zu,%zu,%llu,%llu,%llu,%llu,%zu,%d",
      (unsigned long long)r.seed, r.runtime, r.injected.crashes,
      r.injected.stalls, r.injected.partitions, r.injected.heals,
      r.injected.revocations, r.injected.evictions,
      r.invariants.pressure_events, r.invariants.files_acked,
      r.invariants.files_verified, r.invariants.write_failures,
      (unsigned long long)r.counters.degraded_reads,
      (unsigned long long)r.counters.hedged_reads,
      (unsigned long long)r.counters.hedge_wins, r.breaker_opens,
      (unsigned long long)r.counters.breaker_rejections,
      (unsigned long long)r.counters.breaker_reroutes,
      r.recovery.failures_handled, r.recovery.repairs,
      r.recovery.stripes_repaired,
      (unsigned long long)r.tier_demotions,
      (unsigned long long)r.tier_promotions,
      (unsigned long long)r.tier_cold_hits,
      (unsigned long long)r.tier_cold_bytes,
      r.invariants.violations.size(), int(r.ok));
}

}  // namespace memfss::exp
