#include "exp/tier.hpp"

#include <cmath>

#include "common/log.hpp"
#include "common/str.hpp"
#include "fs/client.hpp"

namespace memfss::exp {
namespace {

struct PressureCtx {
  const TierPressureOptions* opt = nullptr;
  Scenario* sc = nullptr;
  std::size_t writes_failed = 0;
  std::size_t pressure_events = 0;
};

/// Fill phase: `files` ghost files through the normal write path, then
/// re-read the first `hot_fraction` of them so a deterministic prefix of
/// the data is hot when pressure arrives.
sim::Task<> fill_and_heat(PressureCtx& ctx) {
  fs::Client c = ctx.sc->fs().client(ctx.sc->own_nodes().front());
  (void)co_await c.mkdirs("/tier");
  for (std::size_t f = 0; f < ctx.opt->files; ++f) {
    const Status st = co_await c.write_file(strformat("/tier/f%zu", f),
                                            ctx.opt->file_bytes);
    if (!st.ok()) ++ctx.writes_failed;
  }
  const auto hot = static_cast<std::size_t>(
      std::ceil(ctx.opt->hot_fraction * static_cast<double>(ctx.opt->files)));
  for (std::size_t f = 0; f < hot && f < ctx.opt->files; ++f)
    (void)co_await c.read_file(strformat("/tier/f%zu", f));
}

/// Pressure phase: one tenant allocation per victim node, staggered so
/// the reclaim passes do not contend with each other on the fabric (the
/// baseline arm's evacuations would otherwise share links and inflate
/// every sample identically).
sim::Task<> apply_pressure(PressureCtx& ctx) {
  auto& sim = ctx.sc->sim();
  for (NodeId v : ctx.sc->victim_nodes()) {
    auto& pool = ctx.sc->cluster().node(v).memory();
    const auto want_total = static_cast<Bytes>(
        ctx.opt->pressure_fill * static_cast<double>(pool.capacity()));
    if (pool.used() < want_total &&
        pool.try_alloc(want_total - pool.used()))
      ++ctx.pressure_events;
    co_await sim.delay(ctx.opt->pressure_stagger);
  }
}

}  // namespace

TierPressureRow run_tier_pressure(const TierPressureOptions& opt) {
  Scenario sc(opt.scenario);

  PressureCtx ctx;
  ctx.opt = &opt;
  ctx.sc = &sc;

  // Fill runs to completion before monitors arm: the measurement is the
  // reclaim stall, not write-vs-evacuation interference.
  sc.sim().spawn(fill_and_heat(ctx));
  sc.sim().run();

  sc.fs().arm_victim_monitors(opt.monitor_threshold);
  sc.sim().spawn(apply_pressure(ctx));
  sc.sim().run();  // drains every demote pass / evacuation

  TierPressureRow row;
  row.arm = opt.scenario.victim_tier_capacity > 0 ? "tiered" : "baseline";
  row.seed = opt.seed;
  row.pressure_events = ctx.pressure_events;
  auto& m = sc.cluster().obs().metrics;
  row.reclaim = m.histogram_summary("fs.victim_reclaim.latency");
  if (opt.scenario.victim_tier_capacity > 0) {
    // Guarded: create-or-get on the baseline registry would perturb its
    // metrics dump.
    row.demotions = m.counter("tier.demotions").value();
    row.promotions = m.counter("tier.promotions").value();
    row.cold_hits = m.counter("tier.cold_hits").value();
    for (NodeId v : sc.victim_nodes())
      if (sc.fs().has_server(v))
        row.cold_bytes += sc.fs().server(v).tier_bytes();
  }
  row.runtime = sc.sim().now();
  row.ok = ctx.writes_failed == 0 && row.reclaim.count > 0;
  if (ctx.writes_failed > 0) {
    LOG_WARN("exp") << "tier-pressure fill: " << ctx.writes_failed
                    << " writes failed";
  }
  return row;
}

std::string tier_pressure_csv_header() {
  return "arm,seed,pressure_events,demotions,promotions,cold_hits,"
         "cold_bytes,reclaim_count,reclaim_p50,reclaim_p99,reclaim_max,"
         "runtime,ok";
}

std::string tier_pressure_csv_row(const TierPressureRow& r) {
  return strformat(
      "%s,%llu,%zu,%llu,%llu,%llu,%llu,%llu,%.6f,%.6f,%.6f,%.3f,%d",
      r.arm.c_str(), (unsigned long long)r.seed, r.pressure_events,
      (unsigned long long)r.demotions, (unsigned long long)r.promotions,
      (unsigned long long)r.cold_hits, (unsigned long long)r.cold_bytes,
      (unsigned long long)r.reclaim.count, r.reclaim.p50, r.reclaim.p99,
      r.reclaim.max, r.runtime, int(r.ok));
}

}  // namespace memfss::exp
