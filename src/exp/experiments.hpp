// Experiment drivers: one function per paper table/figure.
//
// Each driver builds a fresh Scenario, spawns the MemFSS workload and/or
// the tenant application, runs the simulation to completion and returns
// the rows the paper plots. The bench binaries are thin wrappers that
// sweep parameters and print tables.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "exp/metrics.hpp"
#include "exp/scenario.hpp"
#include "obs/histogram.hpp"
#include "tenant/app.hpp"
#include "workflow/dag.hpp"

namespace memfss::exp {

/// The MemFSS application generating scavenging load (paper §IV-A1).
enum class Workload { none, dd, montage, blast };

std::string workload_name(Workload w);

/// Build one instance of a workload at "slowdown experiment" scale --
/// sized so an iteration finishes in tens of simulated seconds and can be
/// looped for the duration of a tenant benchmark.
workflow::Workflow make_workload(Workload w, Rng& rng);

// --- Fig. 2: scavenging overhead baseline ----------------------------------

struct Fig2Options {
  ScenarioParams scenario{};
  std::size_t dd_tasks = 2048;
  Bytes dd_bytes = 128 * units::MiB;
  /// Record utilization-vs-time sparklines (the actual Fig. 2a-e curves).
  bool with_timeseries = false;
  SimTime sample_interval = 1.0;
  /// Enable the event tracer for all components and return the Chrome
  /// trace JSON + metrics CSV in the row (chrome://tracing / Perfetto).
  bool capture_trace = false;
};

struct Fig2Row {
  double alpha = 0.0;
  GroupUtilization own;
  GroupUtilization victim;
  Rate victim_nic_rate = 0.0;  ///< average victim NIC bytes/s (hot dir)
  SimTime runtime = 0.0;
  Bytes own_bytes = 0, victim_bytes = 0;  ///< final data distribution
  /// Sparklines (only when with_timeseries): utilization over the run,
  /// scaled to 100%.
  std::string own_cpu_series, own_nic_series;
  std::string victim_cpu_series, victim_nic_series;
  double victim_nic_peak = 0.0;
  /// Per-stripe write latency from the observability registry.
  obs::HistogramSummary write_latency;
  /// Full metrics dump (always) and Chrome trace (capture_trace only).
  std::string metrics_csv;
  std::string trace_json;
};

/// One alpha point of Fig. 2 (a-f).
Fig2Row run_fig2(double alpha, const Fig2Options& opt);

// --- Fig. 3-5: tenant slowdown ----------------------------------------------

struct SlowdownOptions {
  ScenarioParams scenario{};
  std::uint64_t seed = 1;
};

struct TenantRun {
  std::string tenant;
  SimTime duration = 0.0;
};

/// Duration of `app` on the victim nodes while MemFSS loops `workload`
/// at the scenario's alpha. Workload `none` (with with_victims = false)
/// gives the clean baseline.
TenantRun run_tenant_under_scavenging(const tenant::TenantApp& app,
                                      Workload workload,
                                      const SlowdownOptions& opt);

struct SlowdownCell {
  std::string tenant;
  Workload workload = Workload::none;
  double alpha = 0.0;
  double slowdown = 0.0;  ///< T_scavenged / T_clean - 1
};

/// Full sweep for one tenant suite at one alpha: every benchmark x every
/// MemFSS workload. Baselines are computed once per benchmark.
std::vector<SlowdownCell> run_slowdown_sweep(
    const std::vector<tenant::TenantApp>& suite,
    const std::vector<Workload>& workloads, double alpha,
    const SlowdownOptions& opt);

// --- Fault recovery: workflow robustness under crashes + revocations ---------

struct FaultRecoveryOptions {
  /// Redundancy defaults to replicated x2 if the caller leaves `none`
  /// (an unredundant store cannot survive a crash at all).
  ScenarioParams scenario{};
  Workload workload = Workload::montage;
  std::uint64_t seed = 1;
  /// Montage scale (the read-heavy workload that exercises degraded
  /// reads); ignored for dd/blast, which use make_workload() scale.
  std::size_t montage_tiles = 768;
  Bytes proj_bytes_min = 4 * units::MiB;
  Bytes proj_bytes_max = 8 * units::MiB;

  // Fault plan shaping (victims only; own nodes never crash here).
  // horizon/revoke_at <= 0 auto-scale to the clean run's makespan
  // (0.6x / 0.35x), so faults land while the workflow is active.
  SimTime fault_horizon = 0.0;  ///< faults land in [0, horizon)
  double crash_rate = 0.0;      ///< expected crashes per victim node
  double stall_rate = 0.0;      ///< stalls per victim node over horizon
  SimTime stall_duration = 1.0;
  bool revoke_mid_run = false;  ///< tenant takes victim class 1 back
  SimTime revoke_at = 0.0;
  /// Tenant memory-pressure events per victim node over the fault
  /// horizon (0 = none, the default). Each event allocates the victim's
  /// pool past the monitor threshold: untiered victims evacuate, tiered
  /// victims (scenario.victim_tier_capacity > 0) demote coldest-first.
  double evict_rate = 0.0;
  double monitor_threshold = 0.85;

  // Client fault tuning (see FileSystemConfig). rpc_timeout is ON here,
  // unlike the global default: fault rigs accept the deadline because the
  // scenario is not driven into deep saturation.
  SimTime rpc_timeout = 0.25;
  SimTime failure_detect_delay = 0.2;
  SimTime revocation_grace = 2.0;

  /// Enable the event tracer on the faulty run and return the Chrome
  /// trace JSON and deterministic text dump in the row.
  bool capture_trace = false;
};

struct FaultRecoveryRow {
  SimTime runtime = 0.0;        ///< faulty-run makespan
  SimTime clean_runtime = 0.0;  ///< same seed, no fault plan
  double slowdown = 0.0;        ///< runtime / clean_runtime - 1
  // What the injector actually did.
  std::size_t crashes = 0, revocations = 0, stalls = 0;
  // Client-side robustness counters.
  std::uint64_t degraded_reads = 0, rpc_timeouts = 0;
  std::uint64_t read_retries = 0, write_retries = 0;
  // Recovery-side metrics.
  std::size_t failures_handled = 0, stripes_repaired = 0;
  Bytes bytes_re_replicated = 0;
  double mean_time_to_repair = 0.0;
  // Tiered arm (scenario.victim_tier_capacity > 0); all zero untiered.
  std::uint64_t tier_demotions = 0, tier_promotions = 0, tier_cold_hits = 0;
  /// Per-stripe repair latency quantiles (faulty run, from the registry's
  /// "fs.repair.latency" histogram).
  obs::HistogramSummary repair_latency;
  /// Faulty-run metrics dump; trace_json/trace_text only with
  /// capture_trace (text_dump() is the deterministic replay format).
  std::string metrics_csv;
  std::string trace_json;
  std::string trace_text;
  bool ok = true;  ///< workflow completed without error
};

/// One faulty run + one clean reference run at the same seed.
FaultRecoveryRow run_fault_recovery(const FaultRecoveryOptions& opt);

// --- Table II / Fig. 7: resource consumption reduction ----------------------

struct Table2Options {
  std::size_t cluster_nodes = 40;
  /// Store budget per own node when co-running with tasks (scavenging
  /// setup: tasks + stores share the node).
  Bytes own_store_capacity = 48 * units::GiB;
  /// Store budget per node in the *standalone* reservation: the whole
  /// machine belongs to MemFS, so only OS + task headroom is reserved.
  Bytes standalone_store_capacity = 56 * units::GiB;
  Bytes victim_memory_cap = 24 * units::GiB;
  Rate victim_net_cap = 500e6;
  Bytes stripe_size = 16 * units::MiB;
  double own_fraction = 0.25;
  std::uint64_t seed = 1;
  /// Montage instance scaled so the data footprint is ~1 TB (paper).
  std::size_t tiles = 6144;
  Bytes proj_bytes_min = 56 * units::MiB;
  Bytes proj_bytes_max = 72 * units::MiB;
};

struct Table2Row {
  std::string label;
  std::size_t nodes = 0;    ///< own nodes (scavenging) or all (standalone)
  bool feasible = true;
  SimTime runtime = 0.0;
  double node_hours = 0.0;
  Bytes data_footprint = 0;
};

/// Standalone run on `nodes` nodes (no victims). Emits an infeasible row
/// when the data cannot fit in memory.
Table2Row run_table2_standalone(std::size_t nodes, const Table2Options& opt);

/// Scavenging run with `own` own nodes + (cluster_nodes - own) victims.
Table2Row run_table2_scavenging(std::size_t own, const Table2Options& opt);

}  // namespace memfss::exp
