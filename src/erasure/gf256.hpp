// GF(2^8) arithmetic with the AES polynomial x^8+x^4+x^3+x+1 (0x11b),
// via log/antilog tables built at static-init time. Foundation for the
// Reed-Solomon coder behind the rt runtime's erasure-coded redundancy
// mode (DESIGN.md §14) -- the storage mode the MemFSS paper motivates in
// §III-E, now wired into the serving path rather than future work.
//
// The bulk kernels (mul_acc and the stripe-pass mul_row_acc) dispatch at
// runtime to a SIMD backend (AVX2/SSSE3 nibble shuffle, scalar
// fallback); see gf256_simd.hpp for the dispatch model and the
// MEMFSS_FORCE_SCALAR override.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace memfss::erasure {

class GF256 {
 public:
  static std::uint8_t add(std::uint8_t a, std::uint8_t b) {
    return a ^ b;  // characteristic-2 field: add == subtract == xor
  }
  static std::uint8_t sub(std::uint8_t a, std::uint8_t b) { return a ^ b; }

  static std::uint8_t mul(std::uint8_t a, std::uint8_t b);
  static std::uint8_t div(std::uint8_t a, std::uint8_t b);  ///< b != 0
  static std::uint8_t inv(std::uint8_t a);                  ///< a != 0
  static std::uint8_t exp(unsigned e);                      ///< generator^e
  static std::uint8_t pow(std::uint8_t a, unsigned e);

  /// dst[i] ^= c * src[i] -- the inner loop of encode/decode, routed
  /// through the runtime-dispatched kernel backend (gf256_simd.hpp).
  /// Precondition: dst.size() == src.size() (asserted in debug builds);
  /// in release builds the overlap of the two spans -- min(dst.size(),
  /// src.size()) bytes -- is processed so a mismatch cannot read or
  /// write out of bounds.
  static void mul_acc(std::span<std::uint8_t> dst,
                      std::span<const std::uint8_t> src, std::uint8_t c);

 private:
  struct Tables {
    std::array<std::uint8_t, 256> log;
    std::array<std::uint8_t, 512> alog;  // doubled to skip a mod
    Tables();
  };
  static const Tables& tables();
};

/// Invert a k x k matrix over GF(256) in place (Gauss-Jordan).
/// Returns false if singular. `m` is row-major, size k*k.
bool gf256_invert_matrix(std::span<std::uint8_t> m, std::size_t k);

}  // namespace memfss::erasure
