// Runtime-dispatched SIMD kernels for the GF(2^8) hot loops (DESIGN.md
// §14). The scalar backend is the property-tested oracle; the SSSE3 and
// AVX2 backends implement the ISA-L-style nibble-shuffle multiply: a
// coefficient c becomes two 16-entry tables (products of c with the low
// and high nibble of every byte), applied with PSHUFB so one shuffle
// pair multiplies 16/32 bytes at once.
//
// Selection happens once, at first use, from CPUID -- or is pinned to
// scalar by setting MEMFSS_FORCE_SCALAR to anything but "" / "0" (CI
// uses this to exercise the fallback arm under the sanitizers). Tests
// and benches can also fetch a specific backend by name regardless of
// the host selection and compare backends directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace memfss::erasure {

/// One GF(2^8) backend: raw-pointer kernels so the dispatch indirection
/// sits outside the byte loops. All kernels tolerate n == 0 and
/// arbitrary (unaligned) pointers; dst and src ranges must not overlap.
struct GF256Kernels {
  const char* name;  ///< "scalar", "ssse3", "avx2"

  /// dst[i] ^= c * src[i] for i in [0, n).
  void (*mul_acc)(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                  std::uint8_t c);

  /// One stripe pass: fuse k source rows into one destination row,
  ///   accumulate == false:  dst[i]  = XOR_j coeffs[j] * srcs[j][i]
  ///   accumulate == true :  dst[i] ^= XOR_j coeffs[j] * srcs[j][i]
  /// for i in [0, n), j in [0, k). The destination block is loaded and
  /// stored once per SIMD lane regardless of k (vs. k round trips when
  /// looping mul_acc), which is where the stripe-coding speedup beyond
  /// the multiply itself comes from. k == 0 zero-fills (or leaves) dst.
  void (*mul_row_acc)(std::uint8_t* dst, const std::uint8_t* const* srcs,
                      const std::uint8_t* coeffs, std::size_t k,
                      std::size_t n, bool accumulate);
};

/// The backend selected for this process (CPUID + MEMFSS_FORCE_SCALAR,
/// decided once on first call and stable afterwards).
const GF256Kernels& gf256_active_kernels();

/// Name of the active backend ("scalar", "ssse3", "avx2").
const char* gf256_kernel_name();

/// Fetch a backend by name, independent of the active selection.
/// Returns nullptr if this host cannot run it (or the name is unknown),
/// so tests can iterate every supported backend and compare against the
/// scalar oracle.
const GF256Kernels* gf256_kernels_by_name(std::string_view name);

}  // namespace memfss::erasure
