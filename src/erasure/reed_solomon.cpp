#include "erasure/reed_solomon.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "erasure/gf256.hpp"
#include "erasure/gf256_simd.hpp"

namespace memfss::erasure {

namespace {

// Build the systematic encoding matrix: start from the (k+m) x k
// Vandermonde V[r][c] = r^c (rows are distinct evaluation points, so every
// k x k submatrix is invertible), then right-multiply by inv(top k x k) so
// the top block becomes the identity. The "any k rows invertible" property
// is preserved under right-multiplication by an invertible matrix.
std::vector<std::uint8_t> systematic_matrix(std::size_t k, std::size_t m) {
  const std::size_t n = k + m;
  std::vector<std::uint8_t> v(n * k);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < k; ++c)
      v[r * k + c] = GF256::pow(static_cast<std::uint8_t>(r), static_cast<unsigned>(c));

  std::vector<std::uint8_t> top(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(k * k));
  const bool ok = gf256_invert_matrix(top, k);
  assert(ok && "Vandermonde top block must be invertible");
  (void)ok;

  std::vector<std::uint8_t> out(n * k, 0);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < k; ++c) {
      std::uint8_t acc = 0;
      for (std::size_t i = 0; i < k; ++i)
        acc ^= GF256::mul(v[r * k + i], top[i * k + c]);
      out[r * k + c] = acc;
    }
  return out;
}

}  // namespace

ReedSolomon::ReedSolomon(std::size_t k, std::size_t m,
                         const GF256Kernels* kernels)
    : k_(k), m_(m), kernels_(kernels ? kernels : &gf256_active_kernels()) {
  assert(k_ >= 1 && k_ + m_ <= 255);
  matrix_ = systematic_matrix(k_, m_);
}

const char* ReedSolomon::kernel_name() const { return kernels_->name; }

std::size_t ReedSolomon::shard_size(std::size_t len) const {
  return (len + k_ - 1) / k_;
}

Status ReedSolomon::encode_into(std::span<const std::uint8_t> data,
                                std::uint8_t* const* shards,
                                std::size_t ss) const {
  if (ss != shard_size(data.size()))
    return {Errc::invalid_argument, "shard buffer size mismatch"};
  // Data shards: verbatim slices, zero-padded.
  for (std::size_t i = 0; i < k_; ++i) {
    const std::size_t off = i * ss;
    const std::size_t n =
        off < data.size() ? std::min(ss, data.size() - off) : 0;
    if (n > 0) std::memcpy(shards[i], data.data() + off, n);
    if (n < ss) std::memset(shards[i] + n, 0, ss - n);
  }
  // Parity shards: one fused row pass each over the k data shards
  // (row-major matrix walk; dst loaded/stored once regardless of k).
  for (std::size_t p = 0; p < m_; ++p)
    kernels_->mul_row_acc(shards[k_ + p], shards, row(k_ + p), k_, ss,
                          /*accumulate=*/false);
  return {};
}

std::vector<std::vector<std::uint8_t>> ReedSolomon::encode(
    std::span<const std::uint8_t> data) const {
  const std::size_t ss = shard_size(data.size());
  std::vector<std::vector<std::uint8_t>> shards(total_shards());
  std::vector<std::uint8_t*> ptrs(total_shards());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    shards[i].resize(ss);
    ptrs[i] = shards[i].data();
  }
  const auto st = encode_into(data, ptrs.data(), ss);
  assert(st.ok());
  (void)st;
  return shards;
}

Status ReedSolomon::reconstruct(
    std::vector<std::vector<std::uint8_t>>& shards) const {
  if (shards.size() != total_shards())
    return {Errc::invalid_argument, "wrong shard count"};

  std::vector<std::size_t> present, missing;
  std::size_t ss = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (shards[i].empty()) {
      missing.push_back(i);
    } else {
      if (ss == 0) ss = shards[i].size();
      if (shards[i].size() != ss)
        return {Errc::invalid_argument, "inconsistent shard sizes"};
      present.push_back(i);
    }
  }
  if (missing.empty()) return {};
  if (present.size() < k_)
    return {Errc::corruption, "fewer than k shards survive"};

  // Decode matrix: k of the surviving rows; invert; recovered data shard d
  // = sum_j inv[d][j] * surviving_shard_j.
  std::vector<std::uint8_t> sub(k_ * k_);
  std::vector<const std::uint8_t*> srcs(k_);
  for (std::size_t j = 0; j < k_; ++j) {
    const std::uint8_t* r = row(present[j]);
    for (std::size_t c = 0; c < k_; ++c) sub[j * k_ + c] = r[c];
    srcs[j] = shards[present[j]].data();
  }
  if (!gf256_invert_matrix(sub, k_))
    return {Errc::corruption, "decode matrix singular"};

  // Recover missing *data* shards first: one fused row pass per missing
  // shard over the k surviving sources. Recovered shards are written
  // into place; `srcs` keeps pointing at the original survivors, which
  // is all the inverse matrix refers to.
  for (std::size_t d = 0; d < k_; ++d) {
    if (!shards[d].empty()) continue;
    shards[d].resize(ss);
    kernels_->mul_row_acc(shards[d].data(), srcs.data(), &sub[d * k_], k_, ss,
                          /*accumulate=*/false);
  }

  // Re-encode any missing parity shards from the (now complete) data.
  std::vector<const std::uint8_t*> data_ptrs(k_);
  for (std::size_t d = 0; d < k_; ++d) data_ptrs[d] = shards[d].data();
  for (std::size_t i : missing) {
    if (i < k_) continue;
    shards[i].resize(ss);
    kernels_->mul_row_acc(shards[i].data(), data_ptrs.data(), row(i), k_, ss,
                          /*accumulate=*/false);
  }
  return {};
}

Result<std::vector<std::uint8_t>> ReedSolomon::decode(
    const std::vector<std::vector<std::uint8_t>>& shards,
    std::size_t original_len) const {
  if (original_len == 0) return std::vector<std::uint8_t>{};
  auto copy = shards;
  if (auto st = reconstruct(copy); !st.ok()) return st.error();
  const std::size_t ss = copy[0].size();
  if (original_len > ss * k_)
    return Error{Errc::invalid_argument, "original_len exceeds capacity"};
  std::vector<std::uint8_t> out;
  out.reserve(original_len);
  for (std::size_t i = 0; i < k_ && out.size() < original_len; ++i) {
    const std::size_t n = std::min(ss, original_len - out.size());
    out.insert(out.end(), copy[i].begin(),
               copy[i].begin() + static_cast<std::ptrdiff_t>(n));
  }
  return out;
}

}  // namespace memfss::erasure
