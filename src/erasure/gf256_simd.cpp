#include "erasure/gf256_simd.hpp"

#include <cstdlib>
#include <cstring>

#include "erasure/gf256.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define MEMFSS_GF256_X86 1
#endif

namespace memfss::erasure {

namespace {

// ---------------------------------------------------------------------------
// Nibble product tables: for every coefficient c, 16 products with the
// low nibble and 16 with the high nibble, so mul(c, b) ==
// lo[c][b & 15] ^ hi[c][b >> 4]. 32 bytes per coefficient (one cache
// line pair), 8 KiB total, built once from the log/alog tables. Both
// SIMD backends shuffle straight out of this layout; the scalar row
// kernel uses it too so every backend multiplies through the identical
// tables.
// ---------------------------------------------------------------------------

struct NibbleTables {
  alignas(32) std::uint8_t t[256][32];
  NibbleTables() {
    for (unsigned c = 0; c < 256; ++c) {
      for (unsigned v = 0; v < 16; ++v) {
        t[c][v] = GF256::mul(static_cast<std::uint8_t>(c),
                             static_cast<std::uint8_t>(v));
        t[c][16 + v] = GF256::mul(static_cast<std::uint8_t>(c),
                                  static_cast<std::uint8_t>(v << 4));
      }
    }
  }
};

const std::uint8_t* nibble_tables(std::uint8_t c) {
  static const NibbleTables tables;
  return tables.t[c];
}

// ---------------------------------------------------------------------------
// Scalar backend: the oracle. Byte-at-a-time through the nibble tables.
// ---------------------------------------------------------------------------

void scalar_mul_acc_range(std::uint8_t* dst, const std::uint8_t* src,
                          std::size_t from, std::size_t to, std::uint8_t c) {
  if (c == 0 || from >= to) return;  // c == 0 hoisted out of the table path
  if (c == 1) {                      // c == 1 is a plain xor, no lookups
    for (std::size_t i = from; i < to; ++i) dst[i] ^= src[i];
    return;
  }
  const std::uint8_t* tbl = nibble_tables(c);
  for (std::size_t i = from; i < to; ++i)
    dst[i] ^= tbl[src[i] & 0x0f] ^ tbl[16 + (src[i] >> 4)];
}

void scalar_mul_acc(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                    std::uint8_t c) {
  scalar_mul_acc_range(dst, src, 0, n, c);
}

/// Shared scalar row pass over [from, to) -- also the tail handler for
/// both SIMD backends, so remainders go through the exact same tables.
void scalar_row_range(std::uint8_t* dst, const std::uint8_t* const* srcs,
                      const std::uint8_t* coeffs, std::size_t k,
                      std::size_t from, std::size_t to, bool accumulate) {
  if (from >= to) return;
  if (!accumulate) std::memset(dst + from, 0, to - from);
  for (std::size_t j = 0; j < k; ++j)
    scalar_mul_acc_range(dst, srcs[j], from, to, coeffs[j]);
}

void scalar_mul_row_acc(std::uint8_t* dst, const std::uint8_t* const* srcs,
                        const std::uint8_t* coeffs, std::size_t k,
                        std::size_t n, bool accumulate) {
  scalar_row_range(dst, srcs, coeffs, k, 0, n, accumulate);
}

constexpr GF256Kernels kScalar{"scalar", scalar_mul_acc, scalar_mul_row_acc};

#ifdef MEMFSS_GF256_X86

// ---------------------------------------------------------------------------
// SSSE3 backend: PSHUFB over 16-byte lanes.
// ---------------------------------------------------------------------------

__attribute__((target("ssse3"))) inline __m128i gf_mul16(
    __m128i s, __m128i lo, __m128i hi, __m128i mask) {
  const __m128i l = _mm_shuffle_epi8(lo, _mm_and_si128(s, mask));
  const __m128i h = _mm_shuffle_epi8(
      hi, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
  return _mm_xor_si128(l, h);
}

__attribute__((target("ssse3"))) void ssse3_mul_acc(std::uint8_t* dst,
                                                    const std::uint8_t* src,
                                                    std::size_t n,
                                                    std::uint8_t c) {
  if (c == 0) return;
  std::size_t i = 0;
  if (c == 1) {
    for (; i + 16 <= n; i += 16) {
      const __m128i s =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
      const __m128i d =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                       _mm_xor_si128(d, s));
    }
  } else {
    const std::uint8_t* tbl = nibble_tables(c);
    const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(tbl));
    const __m128i hi =
        _mm_load_si128(reinterpret_cast<const __m128i*>(tbl + 16));
    const __m128i mask = _mm_set1_epi8(0x0f);
    for (; i + 16 <= n; i += 16) {
      const __m128i s =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
      const __m128i d =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                       _mm_xor_si128(d, gf_mul16(s, lo, hi, mask)));
    }
  }
  scalar_mul_acc_range(dst, src, i, n, c);  // unaligned remainder
}

__attribute__((target("ssse3"))) void ssse3_mul_row_acc(
    std::uint8_t* dst, const std::uint8_t* const* srcs,
    const std::uint8_t* coeffs, std::size_t k, std::size_t n,
    bool accumulate) {
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    // Two 16-byte accumulators per block: dst touched once per block
    // no matter how many source rows fuse into it.
    __m128i a0 = _mm_setzero_si128(), a1 = _mm_setzero_si128();
    if (accumulate) {
      a0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
      a1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i + 16));
    }
    for (std::size_t j = 0; j < k; ++j) {
      const std::uint8_t c = coeffs[j];
      if (c == 0) continue;
      const __m128i s0 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(srcs[j] + i));
      const __m128i s1 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(srcs[j] + i + 16));
      if (c == 1) {
        a0 = _mm_xor_si128(a0, s0);
        a1 = _mm_xor_si128(a1, s1);
        continue;
      }
      const std::uint8_t* tbl = nibble_tables(c);
      const __m128i lo =
          _mm_load_si128(reinterpret_cast<const __m128i*>(tbl));
      const __m128i hi =
          _mm_load_si128(reinterpret_cast<const __m128i*>(tbl + 16));
      a0 = _mm_xor_si128(a0, gf_mul16(s0, lo, hi, mask));
      a1 = _mm_xor_si128(a1, gf_mul16(s1, lo, hi, mask));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), a0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 16), a1);
  }
  scalar_row_range(dst, srcs, coeffs, k, i, n, accumulate);
}

constexpr GF256Kernels kSsse3{"ssse3", ssse3_mul_acc, ssse3_mul_row_acc};

// ---------------------------------------------------------------------------
// AVX2 backend: the same nibble shuffle over 32-byte lanes
// (vpshufb shuffles within each 16-byte half, which is exactly what a
// broadcast 16-entry table wants).
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256i gf_mul32(__m256i s, __m256i lo,
                                                        __m256i hi,
                                                        __m256i mask) {
  const __m256i l = _mm256_shuffle_epi8(lo, _mm256_and_si256(s, mask));
  const __m256i h = _mm256_shuffle_epi8(
      hi, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
  return _mm256_xor_si256(l, h);
}

__attribute__((target("avx2"))) void avx2_mul_acc(std::uint8_t* dst,
                                                  const std::uint8_t* src,
                                                  std::size_t n,
                                                  std::uint8_t c) {
  if (c == 0) return;
  std::size_t i = 0;
  if (c == 1) {
    for (; i + 32 <= n; i += 32) {
      const __m256i s =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
      const __m256i d =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                          _mm256_xor_si256(d, s));
    }
  } else {
    const std::uint8_t* tbl = nibble_tables(c);
    const __m256i lo = _mm256_broadcastsi128_si256(
        _mm_load_si128(reinterpret_cast<const __m128i*>(tbl)));
    const __m256i hi = _mm256_broadcastsi128_si256(
        _mm_load_si128(reinterpret_cast<const __m128i*>(tbl + 16)));
    const __m256i mask = _mm256_set1_epi8(0x0f);
    for (; i + 32 <= n; i += 32) {
      const __m256i s =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
      const __m256i d =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                          _mm256_xor_si256(d, gf_mul32(s, lo, hi, mask)));
    }
  }
  scalar_mul_acc_range(dst, src, i, n, c);
}

__attribute__((target("avx2"))) void avx2_mul_row_acc(
    std::uint8_t* dst, const std::uint8_t* const* srcs,
    const std::uint8_t* coeffs, std::size_t k, std::size_t n,
    bool accumulate) {
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    __m256i a0 = _mm256_setzero_si256(), a1 = _mm256_setzero_si256();
    if (accumulate) {
      a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
      a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    }
    for (std::size_t j = 0; j < k; ++j) {
      const std::uint8_t c = coeffs[j];
      if (c == 0) continue;
      const __m256i s0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + i));
      const __m256i s1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(srcs[j] + i + 32));
      if (c == 1) {
        a0 = _mm256_xor_si256(a0, s0);
        a1 = _mm256_xor_si256(a1, s1);
        continue;
      }
      const std::uint8_t* tbl = nibble_tables(c);
      const __m256i lo = _mm256_broadcastsi128_si256(
          _mm_load_si128(reinterpret_cast<const __m128i*>(tbl)));
      const __m256i hi = _mm256_broadcastsi128_si256(
          _mm_load_si128(reinterpret_cast<const __m128i*>(tbl + 16)));
      a0 = _mm256_xor_si256(a0, gf_mul32(s0, lo, hi, mask));
      a1 = _mm256_xor_si256(a1, gf_mul32(s1, lo, hi, mask));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), a0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), a1);
  }
  // 32-byte half-block before falling back to scalar.
  if (i + 32 <= n) {
    __m256i a0 = _mm256_setzero_si256();
    if (accumulate)
      a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    for (std::size_t j = 0; j < k; ++j) {
      const std::uint8_t c = coeffs[j];
      if (c == 0) continue;
      const __m256i s0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + i));
      if (c == 1) {
        a0 = _mm256_xor_si256(a0, s0);
        continue;
      }
      const std::uint8_t* tbl = nibble_tables(c);
      const __m256i lo = _mm256_broadcastsi128_si256(
          _mm_load_si128(reinterpret_cast<const __m128i*>(tbl)));
      const __m256i hi = _mm256_broadcastsi128_si256(
          _mm_load_si128(reinterpret_cast<const __m128i*>(tbl + 16)));
      a0 = _mm256_xor_si256(a0, gf_mul32(s0, lo, hi, mask));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), a0);
    i += 32;
  }
  scalar_row_range(dst, srcs, coeffs, k, i, n, accumulate);
}

constexpr GF256Kernels kAvx2{"avx2", avx2_mul_acc, avx2_mul_row_acc};

bool cpu_has(const char* feature) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_cpu_init();
  if (std::string_view(feature) == "avx2") return __builtin_cpu_supports("avx2");
  if (std::string_view(feature) == "ssse3")
    return __builtin_cpu_supports("ssse3");
#endif
  (void)feature;
  return false;
}

#endif  // MEMFSS_GF256_X86

bool force_scalar_env() {
  const char* v = std::getenv("MEMFSS_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

const GF256Kernels& select_kernels() {
  if (force_scalar_env()) return kScalar;
#ifdef MEMFSS_GF256_X86
  if (cpu_has("avx2")) return kAvx2;
  if (cpu_has("ssse3")) return kSsse3;
#endif
  return kScalar;
}

}  // namespace

const GF256Kernels& gf256_active_kernels() {
  static const GF256Kernels& k = select_kernels();
  return k;
}

const char* gf256_kernel_name() { return gf256_active_kernels().name; }

const GF256Kernels* gf256_kernels_by_name(std::string_view name) {
  if (name == "scalar") return &kScalar;
#ifdef MEMFSS_GF256_X86
  if (name == "ssse3" && cpu_has("ssse3")) return &kSsse3;
  if (name == "avx2" && cpu_has("avx2")) return &kAvx2;
#endif
  return nullptr;
}

}  // namespace memfss::erasure
