#include "erasure/gf256.hpp"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

#include "erasure/gf256_simd.hpp"

namespace memfss::erasure {

GF256::Tables::Tables() {
  // Generator 3 is primitive for 0x11b.
  unsigned x = 1;
  for (unsigned i = 0; i < 255; ++i) {
    alog[i] = static_cast<std::uint8_t>(x);
    log[x] = static_cast<std::uint8_t>(i);
    // multiply x by 3 = x + 2x in GF(2^8)
    unsigned x2 = x << 1;
    if (x2 & 0x100) x2 ^= 0x11b;
    x = x2 ^ x;
  }
  for (unsigned i = 255; i < 512; ++i) alog[i] = alog[i - 255];
  log[0] = 0;  // undefined; guarded by callers
}

const GF256::Tables& GF256::tables() {
  static const Tables t;
  return t;
}

std::uint8_t GF256::mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = tables();
  return t.alog[static_cast<unsigned>(t.log[a]) + t.log[b]];
}

std::uint8_t GF256::div(std::uint8_t a, std::uint8_t b) {
  assert(b != 0);
  if (a == 0) return 0;
  const auto& t = tables();
  return t.alog[static_cast<unsigned>(t.log[a]) + 255 - t.log[b]];
}

std::uint8_t GF256::inv(std::uint8_t a) {
  assert(a != 0);
  const auto& t = tables();
  return t.alog[255 - t.log[a]];
}

std::uint8_t GF256::exp(unsigned e) { return tables().alog[e % 255]; }

std::uint8_t GF256::pow(std::uint8_t a, unsigned e) {
  if (a == 0) return e == 0 ? 1 : 0;
  const auto& t = tables();
  return t.alog[(static_cast<unsigned>(t.log[a]) * e) % 255];
}

void GF256::mul_acc(std::span<std::uint8_t> dst,
                    std::span<const std::uint8_t> src, std::uint8_t c) {
  assert(dst.size() == src.size());
  // c == 0 (no-op) and the release-mode size clamp are handled here so
  // every backend sees only real work; c == 1 is special-cased inside
  // each backend where it turns into a plain vector xor.
  if (c == 0) return;
  const std::size_t n = std::min(dst.size(), src.size());
  gf256_active_kernels().mul_acc(dst.data(), src.data(), n, c);
}

bool gf256_invert_matrix(std::span<std::uint8_t> m, std::size_t k) {
  assert(m.size() == k * k);
  // Augment with identity, run Gauss-Jordan, read out the right half.
  std::vector<std::uint8_t> aug(k * 2 * k, 0);
  for (std::size_t r = 0; r < k; ++r) {
    for (std::size_t c = 0; c < k; ++c) aug[r * 2 * k + c] = m[r * k + c];
    aug[r * 2 * k + k + r] = 1;
  }
  for (std::size_t col = 0; col < k; ++col) {
    // Find a pivot.
    std::size_t pivot = col;
    while (pivot < k && aug[pivot * 2 * k + col] == 0) ++pivot;
    if (pivot == k) return false;  // singular
    if (pivot != col) {
      for (std::size_t c = 0; c < 2 * k; ++c)
        std::swap(aug[pivot * 2 * k + c], aug[col * 2 * k + c]);
    }
    // Normalize the pivot row.
    const std::uint8_t piv = aug[col * 2 * k + col];
    const std::uint8_t piv_inv = GF256::inv(piv);
    for (std::size_t c = 0; c < 2 * k; ++c)
      aug[col * 2 * k + c] = GF256::mul(aug[col * 2 * k + c], piv_inv);
    // Eliminate the column elsewhere.
    for (std::size_t r = 0; r < k; ++r) {
      if (r == col) continue;
      const std::uint8_t f = aug[r * 2 * k + col];
      if (f == 0) continue;
      for (std::size_t c = 0; c < 2 * k; ++c)
        aug[r * 2 * k + c] ^= GF256::mul(f, aug[col * 2 * k + c]);
    }
  }
  for (std::size_t r = 0; r < k; ++r)
    for (std::size_t c = 0; c < k; ++c)
      m[r * k + c] = aug[r * 2 * k + k + c];
  return true;
}

}  // namespace memfss::erasure
