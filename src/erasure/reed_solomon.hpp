// Systematic Reed-Solomon erasure coding over GF(2^8).
//
// Splits a block into k data shards and adds m parity shards; any k of the
// k+m shards reconstruct the original data. The encoding matrix is a
// Vandermonde matrix row-reduced so its top k x k block is the identity
// (data shards are stored verbatim; only parity costs arithmetic).
//
// This is the storage-redundancy mode the MemFSS paper motivates in
// §III-E: full replication doubles/triples memory footprint, which an
// in-memory FS cannot afford; RS(k, m) costs only m/k extra.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.hpp"

namespace memfss::erasure {

class ReedSolomon {
 public:
  /// k data shards, m parity shards; k >= 1, m >= 0, k + m <= 255.
  ReedSolomon(std::size_t k, std::size_t m);

  std::size_t data_shards() const { return k_; }
  std::size_t parity_shards() const { return m_; }
  std::size_t total_shards() const { return k_ + m_; }

  /// Shard size for a payload of `len` bytes (payload zero-padded to a
  /// multiple of k).
  std::size_t shard_size(std::size_t len) const;

  /// Split + encode: returns k+m shards, each shard_size(data.size()) long.
  std::vector<std::vector<std::uint8_t>> encode(
      std::span<const std::uint8_t> data) const;

  /// Reconstruct the original payload from any >= k shards.
  /// `shards[i]` empty => shard i missing. `original_len` trims padding.
  Result<std::vector<std::uint8_t>> decode(
      const std::vector<std::vector<std::uint8_t>>& shards,
      std::size_t original_len) const;

  /// Rebuild every missing shard in place (for repairing a lost node
  /// without reassembling the whole payload). Fails if < k present.
  Status reconstruct(std::vector<std::vector<std::uint8_t>>& shards) const;

 private:
  std::size_t k_, m_;
  // Row-major (k+m) x k systematic encoding matrix.
  std::vector<std::uint8_t> matrix_;

  const std::uint8_t* row(std::size_t r) const { return &matrix_[r * k_]; }
};

}  // namespace memfss::erasure
