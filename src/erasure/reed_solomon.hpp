// Systematic Reed-Solomon erasure coding over GF(2^8).
//
// Splits a block into k data shards and adds m parity shards; any k of the
// k+m shards reconstruct the original data. The encoding matrix is a
// Vandermonde matrix row-reduced so its top k x k block is the identity
// (data shards are stored verbatim; only parity costs arithmetic).
//
// This is the storage-redundancy mode the MemFSS paper motivates in
// §III-E: full replication doubles/triples memory footprint, which an
// in-memory FS cannot afford; RS(k, m) costs only m/k extra. Since the
// SIMD kernel work (DESIGN.md §14) it is cheap enough to serve as the
// rt runtime's per-tenant redundancy mode (rt/ec.hpp), not just a sim
// extension.
//
// Coding is structured as one pass per *output* row: a row-major walk of
// the matrix feeds all k source shards through GF256Kernels::mul_row_acc
// into each destination, so destination bytes are loaded/stored once per
// row instead of once per (row, source) pair.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.hpp"

namespace memfss::erasure {

struct GF256Kernels;

class ReedSolomon {
 public:
  /// k data shards, m parity shards; k >= 1, m >= 0, k + m <= 255.
  /// `kernels` pins a specific GF(2^8) backend (tests/benches comparing
  /// backends); nullptr uses the process-wide runtime selection.
  explicit ReedSolomon(std::size_t k, std::size_t m,
                       const GF256Kernels* kernels = nullptr);

  std::size_t data_shards() const { return k_; }
  std::size_t parity_shards() const { return m_; }
  std::size_t total_shards() const { return k_ + m_; }
  const char* kernel_name() const;

  /// Shard size for a payload of `len` bytes (payload zero-padded to a
  /// multiple of k).
  std::size_t shard_size(std::size_t len) const;

  /// Split + encode: returns k+m shards, each shard_size(data.size()) long.
  std::vector<std::vector<std::uint8_t>> encode(
      std::span<const std::uint8_t> data) const;

  /// Allocation-free encode into caller-owned buffers: `shards` holds
  /// k+m pointers, each to `ss` == shard_size(data.size()) writable
  /// bytes (disjoint from `data` and from each other). Data shards get
  /// the payload slices (zero-padded); parity shards are coded in one
  /// row pass each. This is the path the rt write path uses so a put
  /// can code straight into its shard arena.
  Status encode_into(std::span<const std::uint8_t> data,
                     std::uint8_t* const* shards, std::size_t ss) const;

  /// Reconstruct the original payload from any >= k shards.
  /// `shards[i]` empty => shard i missing. `original_len` trims padding.
  Result<std::vector<std::uint8_t>> decode(
      const std::vector<std::vector<std::uint8_t>>& shards,
      std::size_t original_len) const;

  /// Rebuild every missing shard in place (for repairing a lost node
  /// without reassembling the whole payload). Fails if < k present.
  Status reconstruct(std::vector<std::vector<std::uint8_t>>& shards) const;

 private:
  std::size_t k_, m_;
  const GF256Kernels* kernels_;  ///< never null after construction
  // Row-major (k+m) x k systematic encoding matrix.
  std::vector<std::uint8_t> matrix_;

  const std::uint8_t* row(std::size_t r) const { return &matrix_[r * k_]; }
};

}  // namespace memfss::erasure
