#include "netio/resilient_client.hpp"

#include <algorithm>
#include <chrono>
#include <string_view>
#include <thread>

#include "hash/hashes.hpp"

namespace memfss::netio {

namespace {

double mono_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void sleep_s(double s) {
  if (s > 0)
    std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

/// Failures a fresh attempt cannot fix: retrying the identical request
/// is pointless, surface them immediately.
bool permanent_errc(Errc e) {
  return e == Errc::permission || e == Errc::invalid_argument ||
         e == Errc::fatal;
}

}  // namespace

ResilientClient::ResilientClient(ResilientOptions opts)
    : opts_(std::move(opts)), rng_(opts_.seed) {}

void ResilientClient::disconnect() { net_.close(); }

double ResilientClient::backoff_delay(std::uint32_t fault_streak) {
  double d = opts_.backoff_base_s;
  for (std::uint32_t i = 1; i < fault_streak && d < opts_.backoff_max_s; ++i)
    d *= 2;
  d = std::min(d, opts_.backoff_max_s);
  // Full +/- jitter so a fleet of clients doesn't reconnect in lockstep.
  d *= 1.0 + opts_.backoff_jitter * (2 * rng_.next_double() - 1);
  return std::max(d, 0.0);
}

void ResilientClient::record_fault(Errc e) {
  if (!errc_health_fault(e)) return;
  ++consecutive_faults_;
  if (opts_.breaker_threshold == 0) return;
  // A half-open trial failing re-opens immediately; a closed breaker
  // opens after the configured streak (HealthRegistry semantics).
  if (breaker_ == Breaker::half_open ||
      consecutive_faults_ >= opts_.breaker_threshold) {
    breaker_ = Breaker::open;
    breaker_open_until_s_ = mono_s() + opts_.breaker_cooldown_s;
    ++stats_.breaker_opens;
  }
}

void ResilientClient::record_ok() {
  consecutive_faults_ = 0;
  breaker_ = Breaker::closed;
}

Status ResilientClient::ensure_connected(double remaining_s) {
  if (Status st = net_.connect(opts_.port); !st.ok()) return st;
  net_.set_recv_timeout(
      std::clamp(remaining_s, 1e-3, opts_.attempt_recv_timeout_s));
  if (!opts_.auth_token.empty()) {
    // AUTH ids live in a private high range so they can never collide
    // with caller-chosen request ids.
    const Frame auth = NetClient::make_auth((1ull << 63) | ++auth_id_,
                                            opts_.auth_token);
    if (Status st = net_.send(auth); !st.ok()) {
      net_.abort();
      return st;
    }
    Result<Frame> r = net_.recv();
    if (!r.ok()) {
      net_.abort();
      return r.error();
    }
    const Frame& f = r.value();
    if ((f.flags & kFlagProtocolError) != 0 ||
        f.request_id != auth.request_id) {
      net_.abort();
      return {Errc::io_error, "bad auth response"};
    }
    if (static_cast<Errc>(f.status) != Errc::ok) {
      net_.close();
      return {static_cast<Errc>(f.status), "auth rejected"};
    }
  }
  ++stats_.reconnects;
  return {};
}

CallOutcome ResilientClient::call(const Frame& request, bool idempotent,
                                  double deadline_s) {
  if (deadline_s <= 0) deadline_s = opts_.default_deadline_s;
  const double start = mono_s();
  const auto remaining = [&] { return deadline_s - (mono_s() - start); };

  CallOutcome out;
  Errc last_fail = Errc::timeout;
  std::uint32_t fault_streak = 0;

  // Back off (bounded by the deadline) after a failed attempt; returns
  // false once the budget is spent.
  const auto backoff = [&]() -> bool {
    const double rem = remaining();
    if (rem <= 0) return false;
    sleep_s(std::min(backoff_delay(++fault_streak), rem));
    return remaining() > 0;
  };

  for (;;) {
    // Circuit breaker gate: while open, reject locally (no socket
    // traffic) until the cooldown elapses, then admit one trial.
    if (breaker_ == Breaker::open) {
      const double now = mono_s();
      if (now < breaker_open_until_s_) {
        ++stats_.breaker_rejections;
        const double wait =
            std::min(breaker_open_until_s_ - now, remaining());
        if (wait <= 0 || remaining() - wait <= 0) {
          out.code = Errc::rejected;
          return out;
        }
        sleep_s(wait);
      }
      breaker_ = Breaker::half_open;
    }
    if (remaining() <= 0) {
      out.code = last_fail;
      return out;
    }

    if (!net_.connected()) {
      if (Status st = ensure_connected(remaining()); !st.ok()) {
        ++stats_.connect_failures;
        record_fault(st.code());
        if (permanent_errc(st.code())) {
          out.code = st.code();
          return out;
        }
        last_fail = st.code();
        if (!backoff()) {
          out.code = last_fail;
          return out;
        }
        continue;
      }
    }

    ++out.attempts;
    ++stats_.attempts;
    if (out.attempts > 1) ++stats_.retries;

    // Past this point bytes may reach the server even on failure, so a
    // non-idempotent op can no longer be blindly retried.
    ++out.sends;
    if (Status st = net_.send(request); !st.ok()) {
      net_.abort();
      record_fault(st.code());
      last_fail = st.code();
      if (!idempotent || !backoff()) {
        out.code = last_fail;
        return out;
      }
      continue;
    }

    net_.set_recv_timeout(
        std::clamp(remaining(), 1e-3, opts_.attempt_recv_timeout_s));
    Result<Frame> r = net_.recv();
    if (!r.ok()) {
      const Errc e = r.code();
      // The request may still be in flight server-side: abort with an
      // RST so a late response can't leak into the next call.
      net_.abort();
      if (e == Errc::corruption) {
        ++stats_.corrupt_frames;
        last_fail = Errc::fatal;  // never surface corrupted data softly
      } else {
        if (e == Errc::timeout) ++stats_.timeouts;
        last_fail = e;
      }
      record_fault(e == Errc::corruption ? Errc::io_error : e);
      if (!idempotent || !backoff()) {
        out.code = last_fail;
        return out;
      }
      continue;
    }

    Frame resp = std::move(r).value();
    if ((resp.flags & kFlagProtocolError) != 0) {
      // The server's decoder rejected the stream. With one request in
      // flight ours was never executed, but the channel is gone.
      ++stats_.protocol_errors;
      net_.abort();
      last_fail = Errc::fatal;
      record_fault(Errc::io_error);
      if (!idempotent || !backoff()) {
        out.code = last_fail;
        return out;
      }
      continue;
    }
    if (resp.request_id != request.request_id) {
      ++stats_.mismatched_ids;
      net_.abort();
      last_fail = Errc::fatal;
      record_fault(Errc::io_error);
      if (!idempotent || !backoff()) {
        out.code = last_fail;
        return out;
      }
      continue;
    }

    const Errc code = static_cast<Errc>(resp.status);
    if (code == Errc::overloaded) {
      // A deliberate QoS shed: the server is healthy and nothing was
      // applied, so honoring the hint and retrying is safe for any op.
      ++stats_.overloaded_waits;
      record_ok();
      fault_streak = 0;
      const double hint = resp.retry_after_us > 0
                              ? resp.retry_after_us / 1e6
                              : opts_.backoff_base_s;
      if (remaining() - hint <= 0) {
        out.code = code;
        out.response = std::move(resp);
        out.answered = true;
        return out;
      }
      sleep_s(hint);
      continue;
    }

    if (code == Errc::ok &&
        request.opcode == static_cast<std::uint8_t>(Opcode::get) &&
        !resp.value.empty()) {
      // End-to-end integrity: the payload must hash to the checksum the
      // store computed at PUT time. A mismatch that slipped past the
      // frame checksum is still never surfaced as data.
      const std::uint64_t c = hash::fnv1a(std::string_view(
          reinterpret_cast<const char*>(resp.value.data()),
          resp.value.size()));
      if (c != resp.checksum) {
        ++stats_.value_checksum_failures;
        net_.abort();
        last_fail = Errc::fatal;
        record_fault(Errc::io_error);
        if (!idempotent || !backoff()) {
          out.code = last_fail;
          return out;
        }
        continue;
      }
    }

    record_ok();
    out.code = code;
    out.response = std::move(resp);
    out.answered = true;
    return out;
  }
}

}  // namespace memfss::netio
