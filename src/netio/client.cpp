#include "netio/client.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace memfss::netio {

Status NetClient::connect(std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return {Errc::io_error, "socket: " + std::string(strerror(errno))};
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = strerror(errno);
    close();
    return {Errc::unreachable, "connect: " + why};
  }
  decoder_ = FrameDecoder{};
  timeout_dirty_ = false;
  if (recv_timeout_s_ > 0) {
    if (Status st = apply_recv_timeout(recv_timeout_s_); !st.ok()) {
      close();
      return st;
    }
  }
  return {};
}

void NetClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void NetClient::abort() {
  if (fd_ < 0) return;
  const linger lg{1, 0};  // close() now sends RST, discarding unsent data
  ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  close();
}

Status NetClient::set_recv_timeout(double seconds) {
  if (fd_ < 0) return {Errc::unavailable, "not connected"};
  recv_timeout_s_ = seconds > 0 ? seconds : 0;
  timeout_dirty_ = false;
  return apply_recv_timeout(recv_timeout_s_);
}

Status NetClient::apply_recv_timeout(double seconds) {
  timeval tv{};
  if (seconds > 0) {
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (seconds - std::floor(seconds)) * 1e6);
    // A zero timeval means "block forever"; round a sub-microsecond
    // remainder up so a nearly expired deadline still ticks.
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  }
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0)
    return {Errc::io_error, strerror(errno)};
  return {};
}

Status NetClient::send(const Frame& f) { return send_raw(encode(f)); }

Status NetClient::send_raw(const std::uint8_t* data, std::size_t n) {
  if (fd_ < 0) return {Errc::unavailable, "not connected"};
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd_, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return {Errc::io_error, "send: " + std::string(strerror(errno))};
    }
    off += static_cast<std::size_t>(w);
  }
  return {};
}

Result<Frame> NetClient::recv() {
  if (fd_ < 0) return {Errc::unavailable, "not connected"};
  // A prior recv() may have left a shortened SO_RCVTIMEO behind while
  // chasing its deadline; restore the configured bound first.
  if (timeout_dirty_) {
    timeout_dirty_ = false;
    if (Status st = apply_recv_timeout(recv_timeout_s_); !st.ok())
      return st.error();
  }
  const bool bounded = recv_timeout_s_ > 0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(bounded ? recv_timeout_s_ : 0));
  Frame f;
  for (;;) {
    switch (decoder_.next(f)) {
      case Decode::frame:
        return f;
      case Decode::error:
        return {Errc::corruption, "malformed stream: " + decoder_.error()};
      case Decode::need_more:
        break;
    }
    std::uint8_t buf[64 * 1024];
    const ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
    if (r == 0) return {Errc::unavailable, "connection closed by server"};
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!bounded) {
          if (errno == EINTR) continue;  // signal: just restart the wait
          return {Errc::timeout, "recv timed out"};
        }
        // A signal or an early SO_RCVTIMEO wakeup is only a timeout if
        // the *whole-call* budget is spent; otherwise re-arm the socket
        // timer with the remainder and keep waiting. The per-call timer
        // restarts from the interruption, so without this a signal storm
        // would both fire premature timeouts (EAGAIN after a shortened
        // sleep) and extend the bound indefinitely (EINTR restarts).
        const double remaining =
            std::chrono::duration<double>(deadline -
                                          std::chrono::steady_clock::now())
                .count();
        if (remaining <= 0) return {Errc::timeout, "recv timed out"};
        timeout_dirty_ = true;
        if (Status st = apply_recv_timeout(remaining); !st.ok())
          return st.error();
        continue;
      }
      return {Errc::io_error, "recv: " + std::string(strerror(errno))};
    }
    decoder_.feed(buf, static_cast<std::size_t>(r));
  }
}

namespace {

Frame make_request(Opcode op, std::uint64_t id, std::uint32_t tenant,
                   std::string_view key) {
  Frame f;
  f.kind = Frame::Kind::request;
  f.opcode = static_cast<std::uint8_t>(op);
  f.request_id = id;
  f.tenant = tenant;
  f.key.assign(key);
  return f;
}

}  // namespace

Frame NetClient::make_put(std::uint64_t id, std::uint32_t tenant,
                          std::string_view key,
                          std::vector<std::uint8_t> value) {
  Frame f = make_request(Opcode::put, id, tenant, key);
  f.value = std::move(value);
  return f;
}

Frame NetClient::make_get(std::uint64_t id, std::uint32_t tenant,
                          std::string_view key) {
  return make_request(Opcode::get, id, tenant, key);
}

Frame NetClient::make_del(std::uint64_t id, std::uint32_t tenant,
                          std::string_view key) {
  return make_request(Opcode::del, id, tenant, key);
}

Frame NetClient::make_exists(std::uint64_t id, std::uint32_t tenant,
                             std::string_view key) {
  return make_request(Opcode::exists, id, tenant, key);
}

Frame NetClient::make_auth(std::uint64_t id, std::string_view token) {
  return make_request(Opcode::auth, id, 0, token);
}

}  // namespace memfss::netio
