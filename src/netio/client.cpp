#include "netio/client.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace memfss::netio {

Status NetClient::connect(std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return {Errc::io_error, "socket: " + std::string(strerror(errno))};
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = strerror(errno);
    close();
    return {Errc::unreachable, "connect: " + why};
  }
  decoder_ = FrameDecoder{};
  return {};
}

void NetClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Status NetClient::set_recv_timeout(double seconds) {
  if (fd_ < 0) return {Errc::unavailable, "not connected"};
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - std::floor(seconds)) * 1e6);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0)
    return {Errc::io_error, strerror(errno)};
  return {};
}

Status NetClient::send(const Frame& f) { return send_raw(encode(f)); }

Status NetClient::send_raw(const std::uint8_t* data, std::size_t n) {
  if (fd_ < 0) return {Errc::unavailable, "not connected"};
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd_, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return {Errc::io_error, "send: " + std::string(strerror(errno))};
    }
    off += static_cast<std::size_t>(w);
  }
  return {};
}

Result<Frame> NetClient::recv() {
  if (fd_ < 0) return {Errc::unavailable, "not connected"};
  Frame f;
  for (;;) {
    switch (decoder_.next(f)) {
      case Decode::frame:
        return f;
      case Decode::error:
        return {Errc::corruption, "malformed stream: " + decoder_.error()};
      case Decode::need_more:
        break;
    }
    std::uint8_t buf[64 * 1024];
    const ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
    if (r == 0) return {Errc::unavailable, "connection closed by server"};
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return {Errc::timeout, "recv timed out"};
      return {Errc::io_error, "recv: " + std::string(strerror(errno))};
    }
    decoder_.feed(buf, static_cast<std::size_t>(r));
  }
}

namespace {

Frame make_request(Opcode op, std::uint64_t id, std::uint32_t tenant,
                   std::string_view key) {
  Frame f;
  f.kind = Frame::Kind::request;
  f.opcode = static_cast<std::uint8_t>(op);
  f.request_id = id;
  f.tenant = tenant;
  f.key.assign(key);
  return f;
}

}  // namespace

Frame NetClient::make_put(std::uint64_t id, std::uint32_t tenant,
                          std::string_view key,
                          std::vector<std::uint8_t> value) {
  Frame f = make_request(Opcode::put, id, tenant, key);
  f.value = std::move(value);
  return f;
}

Frame NetClient::make_get(std::uint64_t id, std::uint32_t tenant,
                          std::string_view key) {
  return make_request(Opcode::get, id, tenant, key);
}

Frame NetClient::make_del(std::uint64_t id, std::uint32_t tenant,
                          std::string_view key) {
  return make_request(Opcode::del, id, tenant, key);
}

Frame NetClient::make_exists(std::uint64_t id, std::uint32_t tenant,
                             std::string_view key) {
  return make_request(Opcode::exists, id, tenant, key);
}

Frame NetClient::make_auth(std::uint64_t id, std::string_view token) {
  return make_request(Opcode::auth, id, 0, token);
}

}  // namespace memfss::netio
