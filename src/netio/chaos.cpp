#include "netio/chaos.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <unordered_map>
#include <vector>

namespace memfss::netio {

namespace {

using Clock = std::chrono::steady_clock;

// epoll user-data values. Relay fds encode (relay_id << 1) | side with
// relay ids starting at kFirstRelayId, so they never collide.
constexpr std::uint64_t kListenTag = 1;
constexpr std::uint64_t kWakeTag = 2;
constexpr std::uint64_t kFirstRelayId = 8;

constexpr std::size_t kReadChunk = 64 * 1024;
// Backpressure: past this many queued-but-unsent bytes per direction,
// stop reading the source socket until the destination drains.
constexpr std::size_t kPauseBytes = 1u << 20;

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void rst_close(int fd) {
  const linger lg{1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  ::close(fd);
}

/// One queued stretch of bytes awaiting its due time.
struct Piece {
  Clock::time_point due;
  std::vector<std::uint8_t> bytes;
  std::size_t off = 0;
};

/// One relay direction (client->upstream or upstream->client).
struct Flow {
  std::deque<Piece> q;
  std::size_t queued = 0;        ///< unsent bytes across q
  bool eof = false;              ///< source half-closed
  bool eof_sent = false;         ///< SHUT_WR delivered to destination
  bool want_out = false;         ///< destination write blocked (EAGAIN)
  Clock::time_point avail_at{};  ///< throttle release pointer
};

struct Relay {
  std::uint64_t id = 0;
  int cfd = -1;  ///< client side
  int ufd = -1;  ///< upstream side (-1 for blackholes)
  bool blackhole = false;
  bool connecting = false;  ///< nonblocking upstream connect in flight
  bool c_read_open = true, u_read_open = true;
  Flow c2u, u2c;
};

}  // namespace

ChaosProxy::ChaosProxy(std::uint16_t upstream_port, ChaosPlan plan)
    : plan_(plan) {
  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return;
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  const auto fail = [&] {
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    listen_fd_ = wake_fd_ = epoll_fd_ = -1;
  };
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 128) != 0)
    { fail(); return; }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    { fail(); return; }
  port_ = ntohs(addr.sin_port);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (wake_fd_ < 0 || epoll_fd_ < 0) { fail(); return; }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0)
    { fail(); return; }
  ev.data.u64 = kWakeTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) { fail(); return; }
  upstream_port_ = upstream_port;
  thread_ = std::thread([this] { run(); });
}

ChaosProxy::~ChaosProxy() { shutdown(); }

void ChaosProxy::wake() {
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t w = ::write(wake_fd_, &one, sizeof(one));
  }
}

void ChaosProxy::kill_connections() {
  kill_all_.store(true, std::memory_order_relaxed);
  wake();
}

ChaosStats ChaosProxy::stats() const {
  ChaosStats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.blackholed = blackholed_.load(std::memory_order_relaxed);
  s.resets_injected = resets_injected_.load(std::memory_order_relaxed);
  s.chunks_corrupted = chunks_corrupted_.load(std::memory_order_relaxed);
  s.chunks_torn = chunks_torn_.load(std::memory_order_relaxed);
  s.chunks_delayed = chunks_delayed_.load(std::memory_order_relaxed);
  s.bytes_forwarded = bytes_forwarded_.load(std::memory_order_relaxed);
  s.upstream_connect_failures =
      upstream_connect_failures_.load(std::memory_order_relaxed);
  return s;
}

void ChaosProxy::shutdown() {
  if (stop_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  wake();
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  listen_fd_ = wake_fd_ = epoll_fd_ = -1;
}

void ChaosProxy::run() {
  Rng rng(plan_.seed);
  std::unordered_map<std::uint64_t, Relay> relays;
  std::uint64_t next_id = kFirstRelayId;

  const auto flow_into = [](Relay& r, int side) -> Flow& {
    // The flow whose destination is this side's fd.
    return side == 0 ? r.u2c : r.c2u;
  };
  const auto flow_from = [](Relay& r, int side) -> Flow& {
    return side == 0 ? r.c2u : r.u2c;
  };
  const auto fd_of = [](Relay& r, int side) {
    return side == 0 ? r.cfd : r.ufd;
  };

  // Recompute epoll interest for one side of a relay.
  const auto update_interest = [&](Relay& r, int side) {
    const int fd = fd_of(r, side);
    if (fd < 0) return;
    const bool read_open = side == 0 ? r.c_read_open : r.u_read_open;
    const bool paused = !r.blackhole && flow_from(r, side).queued >= kPauseBytes;
    std::uint32_t events = 0;
    if (read_open && !paused) events |= EPOLLIN;
    if (side == 1 && r.connecting) events |= EPOLLOUT;
    if (flow_into(r, side).want_out) events |= EPOLLOUT;
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = (r.id << 1) | static_cast<std::uint64_t>(side);
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  };

  const auto close_relay = [&](Relay& r, bool rst) {
    for (const int fd : {r.cfd, r.ufd}) {
      if (fd < 0) continue;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
      if (rst)
        rst_close(fd);
      else
        ::close(fd);
    }
    relays.erase(r.id);  // r is dangling after this
  };

  // Flush due pieces of the flow headed *into* `side`. Returns false if
  // the relay died (and was erased).
  const auto flush_into = [&](Relay& r, int side) -> bool {
    Flow& fl = flow_into(r, side);
    const int fd = fd_of(r, side);
    if (fd < 0) {
      // Blackhole: pretend the bytes went somewhere.
      fl.q.clear();
      fl.queued = 0;
      return true;
    }
    if (side == 1 && r.connecting) return true;  // wait for connect
    const auto now = Clock::now();
    fl.want_out = false;
    while (!fl.q.empty()) {
      Piece& p = fl.q.front();
      if (p.due > now) break;  // timer will bring us back
      const ssize_t w = ::send(fd, p.bytes.data() + p.off,
                               p.bytes.size() - p.off, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          fl.want_out = true;
          break;
        }
        close_relay(r, true);  // EPIPE/ECONNRESET: mirror to the other side
        return false;
      }
      fl.queued -= static_cast<std::size_t>(w);
      bytes_forwarded_.fetch_add(static_cast<std::uint64_t>(w),
                                 std::memory_order_relaxed);
      p.off += static_cast<std::size_t>(w);
      if (p.off < p.bytes.size()) {
        fl.want_out = true;  // partial write: wait for EPOLLOUT
        break;
      }
      fl.q.pop_front();
    }
    if (fl.q.empty() && fl.eof && !fl.eof_sent) {
      fl.eof_sent = true;
      ::shutdown(fd, SHUT_WR);
    }
    if (r.c2u.eof_sent && r.u2c.eof_sent) {
      close_relay(r, false);
      return false;
    }
    update_interest(r, side);
    update_interest(r, 1 - side);  // maybe unpause the source
    return true;
  };

  // Apply the chaos plan to one freshly read chunk and enqueue it.
  // Returns false if the relay died (reset fault).
  const auto ingest_chunk = [&](Relay& r, int src_side,
                                std::uint8_t* data, std::size_t n) -> bool {
    Flow& fl = flow_from(r, src_side);
    const bool faults = faults_enabled_.load(std::memory_order_relaxed);
    if (faults && plan_.reset_p > 0 && rng.chance(plan_.reset_p)) {
      resets_injected_.fetch_add(1, std::memory_order_relaxed);
      close_relay(r, true);
      return false;
    }
    bool corrupt = faults && plan_.corrupt_p > 0 && rng.chance(plan_.corrupt_p);
    if (src_side == 1) {
      // Deterministic test hook: forced corruption of server->client.
      std::uint32_t want = corrupt_next_u2c_.load(std::memory_order_relaxed);
      while (want > 0 && !corrupt) {
        if (corrupt_next_u2c_.compare_exchange_weak(
                want, want - 1, std::memory_order_relaxed))
          corrupt = true;
      }
    }
    if (corrupt) {
      // Exactly one byte, flipped by a nonzero mask: the minimal
      // corruption the frame checksum must still catch.
      data[rng.uniform_u64(0, n - 1)] ^=
          static_cast<std::uint8_t>(rng.uniform_u64(1, 255));
      chunks_corrupted_.fetch_add(1, std::memory_order_relaxed);
    }
    auto due = Clock::now();
    if (faults && plan_.delay_max_us > 0) {
      const std::uint64_t d =
          rng.uniform_u64(plan_.delay_min_us, plan_.delay_max_us);
      if (d > 0) {
        chunks_delayed_.fetch_add(1, std::memory_order_relaxed);
        due += std::chrono::microseconds(d);
      }
    }
    if (plan_.throttle_bytes_per_s > 0) {
      if (fl.avail_at < due) fl.avail_at = due;
      due = fl.avail_at;
      fl.avail_at += std::chrono::microseconds(
          n * 1000000 / plan_.throttle_bytes_per_s + 1);
    }
    std::size_t cuts = 0;
    if (faults && plan_.tear_p > 0 && n >= 2 && rng.chance(plan_.tear_p)) {
      cuts = rng.uniform_u64(1, std::min<std::size_t>(3, n - 1));
      chunks_torn_.fetch_add(1, std::memory_order_relaxed);
    }
    // Split at `cuts` random interior points; stagger each later piece
    // so the kernel flushes them as separate segments (TCP_NODELAY).
    std::vector<std::size_t> bounds{0, n};
    for (std::size_t i = 0; i < cuts; ++i)
      bounds.push_back(rng.uniform_u64(1, n - 1));
    std::sort(bounds.begin(), bounds.end());
    for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
      const std::size_t lo = bounds[i], hi = bounds[i + 1];
      if (lo == hi) continue;
      Piece p;
      p.due = due + std::chrono::microseconds(i * rng.uniform_u64(100, 400));
      p.bytes.assign(data + lo, data + hi);
      fl.queued += p.bytes.size();
      fl.q.push_back(std::move(p));
    }
    return true;
  };

  // Drain readable bytes from one side. Returns false if the relay died.
  const auto on_readable = [&](Relay& r, int side) -> bool {
    const int fd = fd_of(r, side);
    std::uint8_t buf[kReadChunk];
    for (int round = 0; round < 8; ++round) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n == 0) {
        if (side == 0)
          r.c_read_open = false;
        else
          r.u_read_open = false;
        if (r.blackhole) {
          close_relay(r, false);
          return false;
        }
        Flow& fl = flow_from(r, side);
        fl.eof = true;
        return flush_into(r, 1 - side);  // propagate after drain
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        // Hard read error (ECONNRESET and friends): mirror it.
        close_relay(r, true);
        return false;
      }
      if (r.blackhole) continue;  // read and forget
      if (!ingest_chunk(r, side, buf, static_cast<std::size_t>(n)))
        return false;
      if (flow_from(r, side).queued >= kPauseBytes) break;  // backpressure
    }
    if (r.blackhole) return true;
    return flush_into(r, 1 - side);
  };

  const auto finish_connect = [&](Relay& r) -> bool {
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(r.ufd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      upstream_connect_failures_.fetch_add(1, std::memory_order_relaxed);
      close_relay(r, true);
      return false;
    }
    r.connecting = false;
    update_interest(r, 1);
    return flush_into(r, 1);
  };

  const auto accept_all = [&] {
    for (;;) {
      const int cfd = ::accept4(listen_fd_, nullptr, nullptr,
                                SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (cfd < 0) return;  // EAGAIN or transient accept failure
      set_nodelay(cfd);
      connections_.fetch_add(1, std::memory_order_relaxed);
      const bool faults = faults_enabled_.load(std::memory_order_relaxed);
      Relay r;
      r.id = next_id++;
      r.cfd = cfd;
      if (faults && plan_.accept_blackhole_p > 0 &&
          rng.chance(plan_.accept_blackhole_p)) {
        r.blackhole = true;
        blackholed_.fetch_add(1, std::memory_order_relaxed);
      } else {
        r.ufd =
            ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
        if (r.ufd < 0) {
          upstream_connect_failures_.fetch_add(1, std::memory_order_relaxed);
          rst_close(cfd);
          continue;
        }
        set_nodelay(r.ufd);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(upstream_port_);
        const int rc =
            ::connect(r.ufd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
        if (rc != 0 && errno != EINPROGRESS) {
          upstream_connect_failures_.fetch_add(1, std::memory_order_relaxed);
          ::close(r.ufd);
          rst_close(cfd);
          continue;
        }
        r.connecting = rc != 0;
      }
      const std::uint64_t id = r.id;
      auto [it, inserted] = relays.emplace(id, std::move(r));
      Relay& rr = it->second;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = (id << 1) | 0u;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, rr.cfd, &ev);
      if (rr.ufd >= 0) {
        ev.events = EPOLLIN | (rr.connecting ? EPOLLOUT : 0u);
        ev.data.u64 = (id << 1) | 1u;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, rr.ufd, &ev);
      }
    }
  };

  epoll_event events[64];
  while (!stop_.load(std::memory_order_relaxed)) {
    // Sleep until the next queued piece comes due (or an event).
    int timeout_ms = 50;
    const auto now = Clock::now();
    for (auto& [id, r] : relays) {
      for (Flow* fl : {&r.c2u, &r.u2c}) {
        if (fl->q.empty() || fl->want_out) continue;
        const auto dt = std::chrono::duration_cast<std::chrono::milliseconds>(
                            fl->q.front().due - now)
                            .count();
        timeout_ms = std::clamp<int>(static_cast<int>(dt) + 1, 1, timeout_ms);
      }
    }
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0 && errno != EINTR) break;

    if (kill_all_.exchange(false, std::memory_order_relaxed)) {
      std::vector<std::uint64_t> ids;
      ids.reserve(relays.size());
      for (auto& [id, r] : relays) ids.push_back(id);
      for (const std::uint64_t id : ids) {
        auto it = relays.find(id);
        if (it != relays.end()) close_relay(it->second, true);
      }
    }

    for (int i = 0; i < std::max(n, 0); ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kListenTag) {
        accept_all();
        continue;
      }
      if (tag == kWakeTag) {
        std::uint64_t junk;
        while (::read(wake_fd_, &junk, sizeof(junk)) > 0) {
        }
        continue;
      }
      const std::uint64_t id = tag >> 1;
      const int side = static_cast<int>(tag & 1);
      auto it = relays.find(id);
      if (it == relays.end()) continue;  // closed earlier this batch
      Relay& r = it->second;
      const std::uint32_t ev = events[i].events;
      if (side == 1 && r.connecting && (ev & (EPOLLOUT | EPOLLERR))) {
        if (!finish_connect(r)) continue;
      }
      if (ev & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
        if (!on_readable(r, side)) continue;
      }
      if (ev & EPOLLOUT) {
        auto it2 = relays.find(id);
        if (it2 == relays.end()) continue;
        if (!flush_into(it2->second, side)) continue;
      }
    }

    // Timer pass: release pieces that came due while we slept.
    std::vector<std::uint64_t> ids;
    ids.reserve(relays.size());
    for (auto& [id, r] : relays) ids.push_back(id);
    for (const std::uint64_t id : ids) {
      auto it = relays.find(id);
      if (it == relays.end()) continue;
      if (!flush_into(it->second, 0)) continue;
      auto it2 = relays.find(id);
      if (it2 == relays.end()) continue;
      flush_into(it2->second, 1);
    }
  }

  std::vector<std::uint64_t> ids;
  ids.reserve(relays.size());
  for (auto& [id, r] : relays) ids.push_back(id);
  for (const std::uint64_t id : ids) {
    auto it = relays.find(id);
    if (it != relays.end()) close_relay(it->second, true);
  }
}

}  // namespace memfss::netio
