// Wire protocol for the rt runtime's TCP serving path (DESIGN.md §13):
// a RESP-like length-prefixed binary framing, pipelined, with explicit
// error frames.
//
// Every frame is `magic(4) | body_len(4) | body`, little-endian, where
// the magic distinguishes requests from responses and the body length
// is bounded by the decoder (oversized prefixes are a protocol error,
// not an allocation). Request bodies carry an opcode
// (PUT/GET/DEL/EXISTS/AUTH), the tenant slot, a client-chosen request
// id echoed back verbatim (pipelining: responses may complete out of
// order, the id is the correlation key), and the key/value payloads.
// Response bodies carry the Errc status, a flags byte (found / has-seq
// / protocol-error), the retry-after hint in microseconds for
// OVERLOADED sheds, the shard serialization index, and the value bytes
// plus their checksum (so a client can fold result digests without
// recomputing, and ghost blobs -- size-only values -- survive the wire
// as size + checksum with no payload).
//
// The decoder is incremental and byte-exact: feed() any split of the
// stream, next() yields need_more, one decoded frame, or a sticky
// error (bad magic, oversized body, short body, unknown opcode/status,
// inconsistent lengths, body checksum mismatch). It never throws and
// never reads past its buffer -- the fuzz suite
// (tests/test_netio_codec.cpp) holds it to that under random mutation.
//
// Integrity: the u16 at body offset 2 (formerly reserved, always
// written as zero) now carries a checksum of the body -- the sum of
// every body byte (with the checksum field itself read as zero) mod
// 65521, with a result of 0 stored as 0xFFFF. A sum detects *every*
// single-byte corruption (a byte delta is in [-255, 255] and never 0
// mod 65521), so a bit-flipped status, request id, or payload byte
// surfaces as a decoder error instead of silently wrong data -- the
// property the chaos layer (netio::ChaosProxy + ResilientClient)
// leans on. Header corruption is caught by the magic and the
// length-consistency checks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace memfss::netio {

/// Frame magics ("MFQ1" requests, "MFS1" responses, as on-wire bytes).
inline constexpr std::uint32_t kRequestMagic = 0x3151464Du;
inline constexpr std::uint32_t kResponseMagic = 0x3153464Du;

/// Default cap on a frame body; an advertised length past the decoder's
/// cap is a protocol error (a malicious 4GiB prefix must not allocate).
inline constexpr std::size_t kDefaultMaxBody = 16u << 20;

/// Request opcodes. 0 is deliberately invalid so a zeroed body decodes
/// to an error, not a PUT.
enum class Opcode : std::uint8_t {
  put = 1,
  get = 2,
  del = 3,
  exists = 4,
  auth = 5,
};

/// Response flag bits.
inline constexpr std::uint8_t kFlagFound = 0x1;     ///< exists: key present
inline constexpr std::uint8_t kFlagHasSeq = 0x2;    ///< seq field is engaged
/// The server detected a malformed stream: this frame is the last one
/// on the connection and carries no request id (there is no longer a
/// trustworthy framing to attribute it to).
inline constexpr std::uint8_t kFlagProtocolError = 0x4;

/// One decoded frame, request or response (kind tells which; the
/// other direction's fields are zero). Field layout documentation --
/// offsets within the body, all little-endian:
///
///   request:  opcode u8 | flags u8 | reserved u16 | tenant u32 |
///             request_id u64 | key_len u32 | value_len u32 |
///             key bytes | value bytes
///   response: status u8 | flags u8 | reserved u16 | retry_after_us u32 |
///             request_id u64 | seq u64 | checksum u64 |
///             value_len u32 | value_size u32 | value bytes
///
/// (request fixed part: 24 bytes; response fixed part: 40 bytes)
struct Frame {
  enum class Kind : std::uint8_t { request, response };
  Kind kind = Kind::request;

  // Request fields.
  std::uint8_t opcode = 0;  ///< Opcode; validated by the decoder
  std::uint32_t tenant = 0;
  std::string key;

  // Response fields.
  std::uint8_t status = 0;  ///< Errc, validated <= last known code
  std::uint8_t flags = 0;
  std::uint32_t retry_after_us = 0;  ///< OVERLOADED: hint, else 0
  std::uint64_t seq = 0;             ///< valid iff kFlagHasSeq
  std::uint64_t checksum = 0;        ///< value checksum (get responses)
  std::uint32_t value_size = 0;      ///< logical size (ghost: > value len)

  // Shared.
  std::uint64_t request_id = 0;
  std::vector<std::uint8_t> value;

  bool operator==(const Frame&) const = default;
};

inline constexpr std::size_t kHeaderLen = 8;        ///< magic + body_len
inline constexpr std::size_t kRequestFixedLen = 24;  ///< body before key
inline constexpr std::size_t kResponseFixedLen = 40;  ///< body before value
/// Body offset of the u16 integrity checksum (both frame kinds).
inline constexpr std::size_t kChecksumOffset = 2;

/// The body integrity checksum: sum of `body[0..n)` with the two
/// checksum bytes read as zero, mod 65521, 0 mapped to 0xFFFF (so a
/// valid encoder never emits 0). Exposed for tests and for tools that
/// patch frames in place.
std::uint16_t body_checksum(const std::uint8_t* body, std::size_t n);

/// Serialize `f` (using the fields of its kind) and append to `out`.
void encode_frame(const Frame& f, std::vector<std::uint8_t>& out);

/// Convenience: encode into a fresh buffer.
std::vector<std::uint8_t> encode(const Frame& f);

enum class Decode : std::uint8_t {
  need_more,  ///< no complete frame buffered yet
  frame,      ///< one frame produced
  error,      ///< malformed stream; sticky, connection must close
};

class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_body = kDefaultMaxBody)
      : max_body_(max_body) {}

  /// Append raw stream bytes in any split.
  void feed(const std::uint8_t* data, std::size_t n);
  void feed(const std::vector<std::uint8_t>& data) {
    feed(data.data(), data.size());
  }

  /// Try to decode the next frame out of the buffered bytes. After an
  /// error every subsequent call returns error (the stream can no
  /// longer be trusted to realign).
  Decode next(Frame& out);

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }
  /// Bytes buffered but not yet consumed by a decoded frame.
  std::size_t buffered() const { return buf_.size() - off_; }

 private:
  Decode fail(const std::string& why);

  std::size_t max_body_;
  std::vector<std::uint8_t> buf_;
  std::size_t off_ = 0;  ///< consumed prefix of buf_
  bool failed_ = false;
  std::string error_;
};

}  // namespace memfss::netio
