// Blocking socket client for the rt TCP serving path: one connection,
// pipelining done by the caller (write as many requests as you like,
// then collect responses; the request id is the correlation key).
// Used by bench/loadgen --net and the socket test suites -- the server
// side is deliberately the only nonblocking piece of the stack, so the
// client stays simple enough to reason about in tests.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "netio/frame.hpp"

namespace memfss::netio {

class NetClient {
 public:
  NetClient() = default;
  ~NetClient() { close(); }
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;
  NetClient(NetClient&& o) noexcept
      : fd_(o.fd_),
        decoder_(std::move(o.decoder_)),
        recv_timeout_s_(o.recv_timeout_s_),
        timeout_dirty_(o.timeout_dirty_) {
    o.fd_ = -1;
  }
  NetClient& operator=(NetClient&& o) noexcept {
    if (this != &o) {
      close();  // drop the held fd before adopting the other's
      fd_ = o.fd_;
      decoder_ = std::move(o.decoder_);
      recv_timeout_s_ = o.recv_timeout_s_;
      timeout_dirty_ = o.timeout_dirty_;
      o.fd_ = -1;
    }
    return *this;
  }

  /// Connect to 127.0.0.1:port (TCP_NODELAY on). A previously
  /// configured recv timeout carries over to the new connection.
  Status connect(std::uint16_t port);
  bool connected() const { return fd_ >= 0; }
  void close();
  /// Close with an RST instead of an orderly FIN (SO_LINGER 0): the
  /// peer sees ECONNRESET. Lets tests and the resilient client abandon
  /// a connection with an in-flight request without leaving the server
  /// a half-open stream to drain.
  void abort();

  /// Bound a recv() in seconds (0 = block forever). The bound covers
  /// the whole recv() call: signals (EINTR) and spurious SO_RCVTIMEO
  /// wakeups re-arm the remaining budget instead of either returning a
  /// premature Errc::timeout or resetting the clock.
  Status set_recv_timeout(double seconds);

  /// Write one encoded frame, handling partial writes.
  Status send(const Frame& f);
  /// Write pre-encoded bytes (several frames at once: pipelining).
  Status send_raw(const std::uint8_t* data, std::size_t n);
  Status send_raw(const std::vector<std::uint8_t>& data) {
    return send_raw(data.data(), data.size());
  }

  /// Block until one full frame decodes (or EOF / malformed stream /
  /// timeout). EOF with no buffered frame is Errc::unavailable.
  Result<Frame> recv();

  // -- request builders -------------------------------------------------
  static Frame make_put(std::uint64_t id, std::uint32_t tenant,
                        std::string_view key,
                        std::vector<std::uint8_t> value);
  static Frame make_get(std::uint64_t id, std::uint32_t tenant,
                        std::string_view key);
  static Frame make_del(std::uint64_t id, std::uint32_t tenant,
                        std::string_view key);
  static Frame make_exists(std::uint64_t id, std::uint32_t tenant,
                           std::string_view key);
  /// AUTH: the token travels in the key field and becomes the
  /// connection's token for every subsequent request.
  static Frame make_auth(std::uint64_t id, std::string_view token);

 private:
  /// Set SO_RCVTIMEO to `seconds` (<= 0 clears the bound).
  Status apply_recv_timeout(double seconds);

  int fd_ = -1;
  FrameDecoder decoder_;
  double recv_timeout_s_ = 0;   ///< configured bound; 0 = unbounded
  bool timeout_dirty_ = false;  ///< socket timer holds a shortened remainder
};

}  // namespace memfss::netio
