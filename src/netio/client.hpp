// Blocking socket client for the rt TCP serving path: one connection,
// pipelining done by the caller (write as many requests as you like,
// then collect responses; the request id is the correlation key).
// Used by bench/loadgen --net and the socket test suites -- the server
// side is deliberately the only nonblocking piece of the stack, so the
// client stays simple enough to reason about in tests.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "netio/frame.hpp"

namespace memfss::netio {

class NetClient {
 public:
  NetClient() = default;
  ~NetClient() { close(); }
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;
  NetClient(NetClient&& o) noexcept : fd_(o.fd_), decoder_(std::move(o.decoder_)) {
    o.fd_ = -1;
  }

  /// Connect to 127.0.0.1:port (TCP_NODELAY on).
  Status connect(std::uint16_t port);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Bound a recv() in seconds (0 = block forever). SO_RCVTIMEO, so a
  /// wedged server turns into Errc::timeout instead of a hung test.
  Status set_recv_timeout(double seconds);

  /// Write one encoded frame, handling partial writes.
  Status send(const Frame& f);
  /// Write pre-encoded bytes (several frames at once: pipelining).
  Status send_raw(const std::uint8_t* data, std::size_t n);
  Status send_raw(const std::vector<std::uint8_t>& data) {
    return send_raw(data.data(), data.size());
  }

  /// Block until one full frame decodes (or EOF / malformed stream /
  /// timeout). EOF with no buffered frame is Errc::unavailable.
  Result<Frame> recv();

  // -- request builders -------------------------------------------------
  static Frame make_put(std::uint64_t id, std::uint32_t tenant,
                        std::string_view key,
                        std::vector<std::uint8_t> value);
  static Frame make_get(std::uint64_t id, std::uint32_t tenant,
                        std::string_view key);
  static Frame make_del(std::uint64_t id, std::uint32_t tenant,
                        std::string_view key);
  static Frame make_exists(std::uint64_t id, std::uint32_t tenant,
                           std::string_view key);
  /// AUTH: the token travels in the key field and becomes the
  /// connection's token for every subsequent request.
  static Frame make_auth(std::uint64_t id, std::string_view token);

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace memfss::netio
