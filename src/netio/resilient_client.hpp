// Fault-tolerant wrapper over NetClient for the rt TCP serving path
// (DESIGN.md §15). The paper's premise is that scavenged memory is
// *volatile*: a donor can reclaim its pages -- and kill its server --
// at any moment, so the client must treat abrupt peer loss as a normal
// event. ResilientClient turns NetClient's single-shot calls into
// deadline-bounded ones:
//
//   - reconnect + exponential backoff with jitter after any transport
//     fault (connect failure, send failure, recv timeout, EOF, reset);
//   - retry of *idempotent* ops keyed on the request id: the same id
//     and bytes are re-sent, so a duplicate application is
//     indistinguishable from the first (PUT of deterministic bytes,
//     GET, EXISTS, DEL);
//   - per-call deadlines: retries stop when the budget is spent, and
//     each attempt's recv timeout is clipped to the remainder;
//   - Errc::overloaded honored as an answer, not a fault: wait the
//     server's retry-after hint, then try again (QoS sheds prove the
//     server healthy, so they never trip the breaker);
//   - a connection-level circuit breaker mirroring fs::HealthRegistry:
//     closed -> open after `breaker_threshold` consecutive health
//     faults (errc_health_fault), open rejects locally for the
//     cooldown, half-open admits one trial whose outcome closes or
//     re-opens it;
//   - integrity: a corrupted frame (decoder checksum failure), a
//     response carrying kFlagProtocolError, a response for a request id
//     we never sent, or a GET payload whose fnv1a disagrees with the
//     frame's checksum field is *never* surfaced as data -- the
//     connection is aborted and, once the deadline is spent, the call
//     fails with Errc::fatal.
//
// One request in flight per client; not thread-safe (use one per
// worker thread, as the loadgen does).
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "netio/client.hpp"

namespace memfss::netio {

struct ResilientOptions {
  std::uint16_t port = 0;
  std::string auth_token;  ///< empty = skip the AUTH handshake
  std::uint64_t seed = 1;  ///< backoff jitter stream

  double attempt_recv_timeout_s = 0.25;  ///< per-attempt recv bound
  double default_deadline_s = 5.0;       ///< per-call budget (call arg wins)
  double backoff_base_s = 0.002;  ///< first retry delay (doubles per fault)
  double backoff_max_s = 0.25;
  double backoff_jitter = 0.5;  ///< +/- fraction of the delay

  std::uint32_t breaker_threshold = 8;  ///< consecutive faults; 0 = disabled
  double breaker_cooldown_s = 0.2;      ///< open -> half-open delay
};

/// Monotonic per-client counters (single-threaded, read between calls).
struct ResilientStats {
  std::uint64_t attempts = 0;    ///< request transmissions tried
  std::uint64_t retries = 0;     ///< attempts after the first, per call
  std::uint64_t reconnects = 0;  ///< successful re-establishments
  std::uint64_t connect_failures = 0;
  std::uint64_t timeouts = 0;          ///< attempt-level recv timeouts
  std::uint64_t corrupt_frames = 0;    ///< decoder integrity failures
  std::uint64_t protocol_errors = 0;   ///< kFlagProtocolError responses
  std::uint64_t mismatched_ids = 0;    ///< response for an unknown id
  std::uint64_t value_checksum_failures = 0;
  std::uint64_t overloaded_waits = 0;  ///< QoS sheds honored
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_rejections = 0;  ///< attempts gated while open
};

/// Result of one resilient call.
struct CallOutcome {
  /// The server's answer (ok / not_found / out_of_memory / ...), or the
  /// final transport failure once the deadline is spent: timeout /
  /// unavailable / rejected (breaker) / fatal (integrity).
  Errc code = Errc::fatal;
  Frame response;  ///< valid iff a server answer was received
  bool answered = false;   ///< response holds a real server frame
  std::uint32_t attempts = 0;
  /// Times the request's bytes were (possibly partially) written to a
  /// socket. > 1 means the op may have been applied more than once and
  /// > 0 with a failed outcome means it may have been applied anyway --
  /// the chaos harness folds both into its unresolved-op model.
  std::uint32_t sends = 0;
};

class ResilientClient {
 public:
  explicit ResilientClient(ResilientOptions opts);

  /// Run one request to completion or deadline. `idempotent` gates
  /// retry-after-send: a non-idempotent op is only retried when we can
  /// prove the server never applied it (connect/send-nothing failures).
  /// `deadline_s` <= 0 uses options.default_deadline_s.
  CallOutcome call(const Frame& request, bool idempotent,
                   double deadline_s = 0);

  const ResilientStats& stats() const { return stats_; }
  bool breaker_open() const { return breaker_ == Breaker::open; }
  /// Drop the connection (orderly). Next call reconnects.
  void disconnect();

 private:
  enum class Breaker : std::uint8_t { closed, open, half_open };

  Status ensure_connected(double remaining_s);
  void record_fault(Errc e);
  void record_ok();
  double backoff_delay(std::uint32_t fault_streak);

  ResilientOptions opts_;
  NetClient net_;
  Rng rng_;
  ResilientStats stats_;
  std::uint64_t auth_id_ = 0;  ///< ids for the AUTH handshake frames

  Breaker breaker_ = Breaker::closed;
  std::uint32_t consecutive_faults_ = 0;
  double breaker_open_until_s_ = 0;  ///< monotonic seconds
};

}  // namespace memfss::netio
