// Socket-level fault injection for the rt TCP serving path (DESIGN.md
// §15): an in-process TCP proxy with its own epoll loop that sits
// between a client and `rt::TcpServer` and misbehaves on purpose,
// driven by a seeded `ChaosPlan`:
//
//   - accept blackholes: the connection is accepted and then ignored --
//     bytes are read and discarded, nothing is ever forwarded or
//     answered (a donor node that vanished mid-handshake);
//   - connection resets: a relayed chunk instead aborts both sides
//     with an RST (SO_LINGER 0);
//   - byte corruption: exactly one byte of a relayed chunk is flipped
//     (the frame checksum must catch every such flip);
//   - torn frames: a chunk is split into several pieces flushed at
//     staggered times, so frames arrive split at arbitrary byte
//     boundaries -- including inside the length prefix;
//   - per-direction delay and throttle: pieces are held until a due
//     time sampled from [delay_min_us, delay_max_us] and released no
//     faster than throttle_bytes_per_s.
//
// Faults are decided per relayed chunk from a deterministic Rng seeded
// by the plan, so a given (seed, byte stream) misbehaves reproducibly
// modulo kernel scheduling. `set_faults_enabled(false)` turns the proxy
// into a transparent relay (used by the chaos bench to quiesce before
// verification). The proxy is test infrastructure: one background
// thread, loopback only, bounded queues (a backlogged direction pauses
// reading its source socket).
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "common/rng.hpp"

namespace memfss::netio {

/// Seeded fault mix for a ChaosProxy. Probabilities are per accepted
/// connection (blackhole) or per relayed chunk (the rest); a chunk is
/// one successful recv() on either side, at most 64 KiB.
struct ChaosPlan {
  std::uint64_t seed = 1;
  double accept_blackhole_p = 0;  ///< accept, then ignore forever
  double reset_p = 0;             ///< RST both sides mid-stream
  double corrupt_p = 0;           ///< flip one byte of the chunk
  double tear_p = 0;              ///< split the chunk into staggered pieces
  std::uint32_t delay_min_us = 0;  ///< per-chunk delay lower bound
  std::uint32_t delay_max_us = 0;  ///< upper bound; 0 = no delay
  std::uint64_t throttle_bytes_per_s = 0;  ///< per-direction; 0 = off

  /// The stock chaos mix used by the --netchaos bench: every fault kind
  /// enabled at rates a resilient client should ride out.
  static ChaosPlan faulty(std::uint64_t seed) {
    ChaosPlan p;
    p.seed = seed;
    p.accept_blackhole_p = 0.04;
    p.reset_p = 0.01;
    p.corrupt_p = 0.02;
    p.tear_p = 0.3;
    p.delay_min_us = 0;
    p.delay_max_us = 2000;
    return p;
  }
};

/// Monotonic fault/traffic counters, readable from any thread.
struct ChaosStats {
  std::uint64_t connections = 0;       ///< accepted client connections
  std::uint64_t blackholed = 0;        ///< of those, accept-blackholed
  std::uint64_t resets_injected = 0;
  std::uint64_t chunks_corrupted = 0;
  std::uint64_t chunks_torn = 0;
  std::uint64_t chunks_delayed = 0;
  std::uint64_t bytes_forwarded = 0;
  std::uint64_t upstream_connect_failures = 0;
};

class ChaosProxy {
 public:
  /// Start listening on an ephemeral loopback port and relaying to
  /// 127.0.0.1:upstream_port. Check ok() before use.
  ChaosProxy(std::uint16_t upstream_port, ChaosPlan plan);
  ~ChaosProxy();
  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  bool ok() const { return listen_fd_ >= 0; }
  std::uint16_t port() const { return port_; }

  /// Toggle fault injection. Off = transparent relay (existing delayed
  /// pieces still drain; new chunks pass through untouched).
  void set_faults_enabled(bool on) {
    faults_enabled_.store(on, std::memory_order_relaxed);
    wake();
  }

  /// Test hook: RST every active relay right now (donor reclaim).
  void kill_connections();

  /// Test hook: corrupt one byte of each of the next `n` chunks relayed
  /// from the upstream (server) to any client, even with faults
  /// disabled. Deterministic trigger for the corruption path.
  void corrupt_next_from_upstream(std::uint32_t n) {
    corrupt_next_u2c_.fetch_add(n, std::memory_order_relaxed);
  }

  ChaosStats stats() const;

  /// Stop the loop, close every socket, join the thread. Idempotent.
  void shutdown();

 private:
  void run();
  void wake();

  ChaosPlan plan_;
  std::uint16_t upstream_port_ = 0;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  int epoll_fd_ = -1;
  std::atomic<bool> faults_enabled_{true};
  std::atomic<bool> stop_{false};
  std::atomic<bool> kill_all_{false};
  std::atomic<std::uint32_t> corrupt_next_u2c_{0};

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> blackholed_{0};
  std::atomic<std::uint64_t> resets_injected_{0};
  std::atomic<std::uint64_t> chunks_corrupted_{0};
  std::atomic<std::uint64_t> chunks_torn_{0};
  std::atomic<std::uint64_t> chunks_delayed_{0};
  std::atomic<std::uint64_t> bytes_forwarded_{0};
  std::atomic<std::uint64_t> upstream_connect_failures_{0};

  std::thread thread_;
};

}  // namespace memfss::netio
