#include "netio/frame.hpp"

#include "common/result.hpp"

namespace memfss::netio {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

}  // namespace

std::uint16_t body_checksum(const std::uint8_t* body, std::size_t n) {
  // Plain byte sum mod 65521 (the largest prime under 2^16): a single
  // corrupted byte shifts the sum by a nonzero delta in [-255, 255],
  // which is never 0 mod 65521, so every one-byte flip is detected.
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i == kChecksumOffset || i == kChecksumOffset + 1) continue;
    sum += body[i];
    if (sum >= 0xfff00000u) sum %= 65521u;
  }
  sum %= 65521u;
  return sum == 0 ? 0xffffu : static_cast<std::uint16_t>(sum);
}

void encode_frame(const Frame& f, std::vector<std::uint8_t>& out) {
  std::size_t body_start = 0;
  if (f.kind == Frame::Kind::request) {
    const std::size_t body =
        kRequestFixedLen + f.key.size() + f.value.size();
    out.reserve(out.size() + kHeaderLen + body);
    put_u32(out, kRequestMagic);
    put_u32(out, static_cast<std::uint32_t>(body));
    body_start = out.size();
    out.push_back(f.opcode);
    out.push_back(f.flags);
    put_u16(out, 0);  // checksum placeholder, patched below
    put_u32(out, f.tenant);
    put_u64(out, f.request_id);
    put_u32(out, static_cast<std::uint32_t>(f.key.size()));
    put_u32(out, static_cast<std::uint32_t>(f.value.size()));
    out.insert(out.end(), f.key.begin(), f.key.end());
    out.insert(out.end(), f.value.begin(), f.value.end());
  } else {
    const std::size_t body = kResponseFixedLen + f.value.size();
    out.reserve(out.size() + kHeaderLen + body);
    put_u32(out, kResponseMagic);
    put_u32(out, static_cast<std::uint32_t>(body));
    body_start = out.size();
    out.push_back(f.status);
    out.push_back(f.flags);
    put_u16(out, 0);  // checksum placeholder, patched below
    put_u32(out, f.retry_after_us);
    put_u64(out, f.request_id);
    put_u64(out, f.seq);
    put_u64(out, f.checksum);
    put_u32(out, static_cast<std::uint32_t>(f.value.size()));
    put_u32(out, f.value_size);
    out.insert(out.end(), f.value.begin(), f.value.end());
  }
  const std::uint16_t sum =
      body_checksum(out.data() + body_start, out.size() - body_start);
  out[body_start + kChecksumOffset] = static_cast<std::uint8_t>(sum);
  out[body_start + kChecksumOffset + 1] = static_cast<std::uint8_t>(sum >> 8);
}

std::vector<std::uint8_t> encode(const Frame& f) {
  std::vector<std::uint8_t> out;
  encode_frame(f, out);
  return out;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t n) {
  if (failed_) return;  // the stream is already dead; don't hoard bytes
  // Compact once the consumed prefix dominates, so a long-lived
  // connection's buffer doesn't grow without bound.
  if (off_ > 0 && (off_ == buf_.size() || off_ >= (1u << 20))) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(off_));
    off_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

Decode FrameDecoder::fail(const std::string& why) {
  failed_ = true;
  error_ = why;
  return Decode::error;
}

Decode FrameDecoder::next(Frame& out) {
  if (failed_) return Decode::error;
  if (buffered() < kHeaderLen) return Decode::need_more;
  const std::uint8_t* h = buf_.data() + off_;
  const std::uint32_t magic = get_u32(h);
  if (magic != kRequestMagic && magic != kResponseMagic)
    return fail("bad magic");
  const std::size_t body = get_u32(h + 4);
  if (body > max_body_) return fail("oversized body length");
  const bool request = magic == kRequestMagic;
  const std::size_t fixed = request ? kRequestFixedLen : kResponseFixedLen;
  if (body < fixed) return fail("short body");
  if (buffered() < kHeaderLen + body) return Decode::need_more;

  const std::uint8_t* b = h + kHeaderLen;
  const std::uint16_t stored =
      static_cast<std::uint16_t>(b[kChecksumOffset]) |
      (static_cast<std::uint16_t>(b[kChecksumOffset + 1]) << 8);
  if (stored != body_checksum(b, body)) return fail("body checksum mismatch");
  out = Frame{};
  if (request) {
    out.kind = Frame::Kind::request;
    out.opcode = b[0];
    if (out.opcode < static_cast<std::uint8_t>(Opcode::put) ||
        out.opcode > static_cast<std::uint8_t>(Opcode::auth))
      return fail("unknown opcode");
    out.flags = b[1];
    out.tenant = get_u32(b + 4);
    out.request_id = get_u64(b + 8);
    const std::size_t key_len = get_u32(b + 16);
    const std::size_t value_len = get_u32(b + 20);
    if (fixed + key_len + value_len != body)
      return fail("inconsistent request lengths");
    out.key.assign(reinterpret_cast<const char*>(b + fixed), key_len);
    out.value.assign(b + fixed + key_len, b + fixed + key_len + value_len);
  } else {
    out.kind = Frame::Kind::response;
    out.status = b[0];
    if (out.status > static_cast<std::uint8_t>(Errc::fatal))
      return fail("unknown status");
    out.flags = b[1];
    out.retry_after_us = get_u32(b + 4);
    out.request_id = get_u64(b + 8);
    out.seq = get_u64(b + 16);
    out.checksum = get_u64(b + 24);
    const std::size_t value_len = get_u32(b + 32);
    out.value_size = get_u32(b + 36);
    if (fixed + value_len != body)
      return fail("inconsistent response length");
    out.value.assign(b + fixed, b + fixed + value_len);
  }
  off_ += kHeaderLen + body;
  return Decode::frame;
}

}  // namespace memfss::netio
