// ASCII table renderer used by the benchmark harness to print the paper's
// tables and figure data series in a readable, diffable form, plus the
// shared CSV quoting helpers every machine-readable export goes through.
#pragma once

#include <string>
#include <vector>

namespace memfss {

/// CSV field quoting per RFC 4180: quotes are doubled and the field is
/// wrapped in quotes when it contains a comma, quote or newline. The one
/// CSV-escaping implementation in the codebase -- exp::report and the
/// bench result caches both route through it.
std::string csv_escape(const std::string& field);

/// Escape and join fields into one CSV line (no trailing newline).
std::string csv_row(const std::vector<std::string>& fields);

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Optional caption printed above the table.
  void set_title(std::string title) { title_ = std::move(title); }

  void add_row(std::vector<std::string> row);

  /// Convenience: formats every cell with strformat-style placeholders is
  /// left to callers; this overload accepts doubles and renders them with
  /// the given precision.
  void add_row_numeric(const std::string& label,
                       const std::vector<double>& values, int precision = 2);

  std::string render() const;

  /// Render and write to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace memfss
