// Statistics helpers: running summaries, percentiles, time-weighted
// utilization accumulators (used by the experiment harness to report the
// CPU% / bandwidth% numbers the paper plots), and fixed-bin histograms.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace memfss {

/// Streaming summary: count / mean / variance (Welford) / min / max.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< sample variance (n-1); 0 if n < 2
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile over a stored sample (linear interpolation, like
/// numpy's default). p in [0, 100].
double percentile(std::vector<double> sample, double p);

/// Mean of a sample (0 for empty).
double mean_of(const std::vector<double>& sample);

/// Time-weighted average of a piecewise-constant signal.
///
/// Feed (time, value) level changes; `average(t_end)` integrates the signal
/// from the first sample to t_end. This is how per-node CPU / NIC
/// utilization is aggregated into the single numbers Fig. 2 reports.
class TimeWeighted {
 public:
  void set(SimTime t, double value);
  double average(SimTime t_end) const;
  double current() const { return value_; }
  double peak() const { return peak_; }

  /// Integral of the signal from the first sample to `t`. Callers compute
  /// window averages as (I(t1) - I(t0)) / (t1 - t0).
  double integral_until(SimTime t) const {
    return integral_ + value_ * std::max(0.0, t - last_t_);
  }

 private:
  bool started_ = false;
  SimTime t0_ = 0.0;
  SimTime last_t_ = 0.0;
  double value_ = 0.0;
  double integral_ = 0.0;
  double peak_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); out-of-range values clamp to the
/// edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_[i]; }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

  /// Multi-line ASCII rendering, for quick eyeballing in bench output.
  std::string render(std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace memfss
