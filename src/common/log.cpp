#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace memfss {

namespace {

std::atomic<LogLevel> g_level{[] {
  if (const char* env = std::getenv("MEMFSS_LOG")) {
    return parse_log_level(env);
  }
  return LogLevel::warn;
}()};

const char* level_tag(LogLevel l) {
  switch (l) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO ";
    case LogLevel::warn: return "WARN ";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF  ";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel parse_log_level(std::string_view name) {
  if (name == "trace") return LogLevel::trace;
  if (name == "debug") return LogLevel::debug;
  if (name == "info") return LogLevel::info;
  if (name == "warn") return LogLevel::warn;
  if (name == "error") return LogLevel::error;
  if (name == "off") return LogLevel::off;
  return LogLevel::info;
}

namespace detail {

void log_emit(LogLevel level, std::string_view component,
              const std::string& message) {
  std::fprintf(stderr, "[%s] %.*s: %s\n", level_tag(level),
               static_cast<int>(component.size()), component.data(),
               message.c_str());
}

}  // namespace detail

}  // namespace memfss
