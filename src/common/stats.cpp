#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace memfss {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> sample, double p) {
  if (sample.empty()) return 0.0;
  assert(p >= 0.0 && p <= 100.0);
  std::sort(sample.begin(), sample.end());
  const double rank = p / 100.0 * static_cast<double>(sample.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sample[lo] + frac * (sample[hi] - sample[lo]);
}

double mean_of(const std::vector<double>& sample) {
  if (sample.empty()) return 0.0;
  double s = 0.0;
  for (double x : sample) s += x;
  return s / static_cast<double>(sample.size());
}

void TimeWeighted::set(SimTime t, double value) {
  if (!started_) {
    started_ = true;
    t0_ = last_t_ = t;
  } else {
    assert(t >= last_t_);
    integral_ += value_ * (t - last_t_);
    last_t_ = t;
  }
  value_ = value;
  peak_ = std::max(peak_, value);
}

double TimeWeighted::average(SimTime t_end) const {
  if (!started_ || t_end <= t0_) return 0.0;
  const double tail = value_ * std::max(0.0, t_end - last_t_);
  return (integral_ + tail) / (t_end - t0_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(frac * static_cast<double>(bins()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(bins()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(bins());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char buf[64];
  for (std::size_t i = 0; i < bins(); ++i) {
    const std::size_t bar =
        peak ? counts_[i] * width / peak : 0;
    std::snprintf(buf, sizeof buf, "[%10.3g,%10.3g) %8zu ", bin_lo(i),
                  bin_hi(i), counts_[i]);
    out += buf;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace memfss
