// Deterministic random number generation.
//
// All stochastic behaviour in the codebase (workload generators, task
// duration jitter, seed sweeps in the benches) flows from Rng so that a run
// with a given seed is bit-reproducible. The engine is xoshiro256**,
// seeded via splitmix64 -- small, fast, and good enough statistically for
// simulation workloads (we are not doing cryptography).
#pragma once

#include <cstdint>
#include <vector>

namespace memfss {

/// splitmix64 step; also used standalone as a cheap mixing function.
std::uint64_t splitmix64(std::uint64_t& state);

/// Deterministic PRNG (xoshiro256**).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi);

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Normal via Box-Muller.
  double normal(double mean, double stddev);

  /// Log-normal parameterised by the mean/sigma of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Truncated normal: resamples until the value lies in [lo, hi].
  double truncated_normal(double mean, double stddev, double lo, double hi);

  /// Bernoulli trial.
  bool chance(double p);

  /// Pick an index according to non-negative weights (at least one > 0).
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_u64(0, i - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child stream (for per-node / per-task RNGs).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace memfss
