#include "common/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace memfss {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed expansion via splitmix64, as recommended by the xoshiro authors.
  for (auto& s : s_) s = splitmix64(seed);
  // Avoid the all-zero state (astronomically unlikely, but cheap to guard).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next_u64();  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = span * (~0ull / span);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return lo + x % span;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::exponential(double mean) {
  assert(mean > 0);
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double mag =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * mag;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::truncated_normal(double mean, double stddev, double lo,
                             double hi) {
  assert(lo <= hi);
  for (int i = 0; i < 1000; ++i) {
    const double x = normal(mean, stddev);
    if (x >= lo && x <= hi) return x;
  }
  // Pathological parameters: clamp instead of spinning forever.
  const double x = normal(mean, stddev);
  return x < lo ? lo : (x > hi ? hi : x);
}

bool Rng::chance(double p) { return next_double() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double x = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: return the last positive slot
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace memfss
