// Minimal leveled logger. Single-threaded contexts (the simulator) use it
// directly; it is also safe from multiple threads (stderr writes are atomic
// per call). Level is process-global and settable from MEMFSS_LOG.
#pragma once

#include <sstream>
#include <string_view>

namespace memfss {

enum class LogLevel { trace = 0, debug, info, warn, error, off };

LogLevel log_level();
void set_log_level(LogLevel level);

/// Parse "trace|debug|info|warn|error|off"; unknown -> info.
LogLevel parse_log_level(std::string_view name);

namespace detail {
void log_emit(LogLevel level, std::string_view component,
              const std::string& message);
}  // namespace detail

/// Streams one log line on destruction. Usage:
///   LOG_INFO("fs") << "mounted " << n << " servers";
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() { detail::log_emit(level_, component_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream os_;
};

}  // namespace memfss

#define MEMFSS_LOG(level, component)              \
  if (::memfss::log_level() > (level)) {          \
  } else                                          \
    ::memfss::LogLine((level), (component))

#define LOG_TRACE(component) MEMFSS_LOG(::memfss::LogLevel::trace, component)
#define LOG_DEBUG(component) MEMFSS_LOG(::memfss::LogLevel::debug, component)
#define LOG_INFO(component) MEMFSS_LOG(::memfss::LogLevel::info, component)
#define LOG_WARN(component) MEMFSS_LOG(::memfss::LogLevel::warn, component)
#define LOG_ERROR(component) MEMFSS_LOG(::memfss::LogLevel::error, component)
