// A small Result<T> type: success value or an error code + message.
// Used across module boundaries where exceptions would obscure control flow
// (the C++ Core Guidelines E.* rules: errors that are expected outcomes of
// an operation -- missing file, out of memory budget -- are values).
#pragma once

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace memfss {

enum class Errc {
  ok = 0,
  not_found,        ///< key / path / inode does not exist
  already_exists,   ///< create on an existing path
  out_of_memory,    ///< store memory cap exceeded
  permission,       ///< auth failure / unauthorized client
  invalid_argument, ///< malformed request
  not_a_directory,  ///< path component is a file
  is_a_directory,   ///< file operation on a directory
  not_empty,        ///< rmdir on a non-empty directory
  unavailable,      ///< node down / evacuated / store closed
  io_error,         ///< transfer failed
  corruption,       ///< checksum / erasure decode failure
};

/// Human-readable name of an error code.
constexpr std::string_view errc_name(Errc e) {
  switch (e) {
    case Errc::ok: return "ok";
    case Errc::not_found: return "not_found";
    case Errc::already_exists: return "already_exists";
    case Errc::out_of_memory: return "out_of_memory";
    case Errc::permission: return "permission";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::not_a_directory: return "not_a_directory";
    case Errc::is_a_directory: return "is_a_directory";
    case Errc::not_empty: return "not_empty";
    case Errc::unavailable: return "unavailable";
    case Errc::io_error: return "io_error";
    case Errc::corruption: return "corruption";
  }
  return "unknown";
}

struct Error {
  Errc code = Errc::ok;
  std::string message;

  std::string to_string() const {
    std::string s{errc_name(code)};
    if (!message.empty()) {
      s += ": ";
      s += message;
    }
    return s;
  }
};

/// Result<T>: holds either a T or an Error.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}              // NOLINT(google-explicit-constructor)
  Result(Error err) : v_(std::move(err)) {}              // NOLINT(google-explicit-constructor)
  Result(Errc code, std::string msg = {}) : v_(Error{code, std::move(msg)}) {}

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(v_);
  }
  Errc code() const { return ok() ? Errc::ok : error().code; }

  const T& value_or(const T& fallback) const {
    return ok() ? std::get<T>(v_) : fallback;
  }

 private:
  std::variant<T, Error> v_;
};

/// Result<void> analogue.
class Status {
 public:
  Status() = default;
  Status(Error err) : err_(std::move(err)) {}  // NOLINT(google-explicit-constructor)
  Status(Errc code, std::string msg = {}) : err_(Error{code, std::move(msg)}) {}

  static Status ok_status() { return Status{}; }

  bool ok() const { return err_.code == Errc::ok; }
  explicit operator bool() const { return ok(); }
  Errc code() const { return err_.code; }
  const Error& error() const { return err_; }

 private:
  Error err_{};
};

}  // namespace memfss
