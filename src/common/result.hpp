// A small Result<T> type: success value or an error code + message.
// Used across module boundaries where exceptions would obscure control flow
// (the C++ Core Guidelines E.* rules: errors that are expected outcomes of
// an operation -- missing file, out of memory budget -- are values).
#pragma once

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace memfss {

enum class Errc {
  ok = 0,
  not_found,        ///< key / path / inode does not exist
  already_exists,   ///< create on an existing path
  out_of_memory,    ///< store memory cap exceeded
  permission,       ///< auth failure / unauthorized client
  invalid_argument, ///< malformed request
  not_a_directory,  ///< path component is a file
  is_a_directory,   ///< file operation on a directory
  not_empty,        ///< rmdir on a non-empty directory
  unavailable,      ///< node down / evacuated / store closed
  io_error,         ///< transfer failed
  corruption,       ///< checksum / erasure decode failure
  timeout,          ///< RPC deadline elapsed (peer may still be working)
  unreachable,      ///< no network route to the peer (link cut / partition)
  rejected,         ///< peer refused admission (breaker open, queue full)
  overloaded,       ///< peer shed the request under load (QoS policy); honor
                    ///< the retry-after hint before trying again
  fatal,            ///< unrecoverable internal error; never retry
};

/// Failure taxonomy for retry policies.  Connectivity faults are
/// transient conditions of the *path or peer* -- another replica, or the
/// same one later, may succeed.  Request faults mean the request itself
/// is wrong (or the data is gone) and retrying the identical request
/// cannot help.
constexpr bool errc_connectivity(Errc e) {
  return e == Errc::timeout || e == Errc::unreachable ||
         e == Errc::unavailable || e == Errc::io_error ||
         e == Errc::rejected || e == Errc::overloaded;
}

/// Whether a failed operation is worth retrying (possibly elsewhere).
/// out_of_memory is retryable: pressure is transient and placement may
/// pick a different node on the next attempt.
constexpr bool errc_retryable(Errc e) {
  return errc_connectivity(e) || e == Errc::out_of_memory;
}

/// Whether a failure should count against a server's health (circuit
/// breaker).  A clean application-level answer such as not_found or
/// permission proves the server is alive and responsive, so only
/// connectivity faults qualify -- except rejected, which the *client*
/// synthesizes without talking to the server, and overloaded, which is
/// a deliberate QoS shed: the server answered, on purpose, while
/// healthy.
constexpr bool errc_health_fault(Errc e) {
  return errc_connectivity(e) && e != Errc::rejected &&
         e != Errc::overloaded;
}

/// Human-readable name of an error code.
constexpr std::string_view errc_name(Errc e) {
  switch (e) {
    case Errc::ok: return "ok";
    case Errc::not_found: return "not_found";
    case Errc::already_exists: return "already_exists";
    case Errc::out_of_memory: return "out_of_memory";
    case Errc::permission: return "permission";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::not_a_directory: return "not_a_directory";
    case Errc::is_a_directory: return "is_a_directory";
    case Errc::not_empty: return "not_empty";
    case Errc::unavailable: return "unavailable";
    case Errc::io_error: return "io_error";
    case Errc::corruption: return "corruption";
    case Errc::timeout: return "timeout";
    case Errc::unreachable: return "unreachable";
    case Errc::rejected: return "rejected";
    case Errc::overloaded: return "overloaded";
    case Errc::fatal: return "fatal";
  }
  return "unknown";
}

struct Error {
  Errc code = Errc::ok;
  std::string message;

  std::string to_string() const {
    std::string s{errc_name(code)};
    if (!message.empty()) {
      s += ": ";
      s += message;
    }
    return s;
  }
};

/// Result<T>: holds either a T or an Error.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}              // NOLINT(google-explicit-constructor)
  Result(Error err) : v_(std::move(err)) {}              // NOLINT(google-explicit-constructor)
  Result(Errc code, std::string msg = {}) : v_(Error{code, std::move(msg)}) {}

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(v_);
  }
  Errc code() const { return ok() ? Errc::ok : error().code; }

  const T& value_or(const T& fallback) const {
    return ok() ? std::get<T>(v_) : fallback;
  }

 private:
  std::variant<T, Error> v_;
};

/// Result<void> analogue.
class Status {
 public:
  Status() = default;
  Status(Error err) : err_(std::move(err)) {}  // NOLINT(google-explicit-constructor)
  Status(Errc code, std::string msg = {}) : err_(Error{code, std::move(msg)}) {}

  static Status ok_status() { return Status{}; }

  bool ok() const { return err_.code == Errc::ok; }
  explicit operator bool() const { return ok(); }
  Errc code() const { return err_.code; }
  const Error& error() const { return err_; }

 private:
  Error err_{};
};

}  // namespace memfss
