#include "common/str.hpp"

#include <cstdarg>
#include <cstdio>

namespace memfss {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_path(std::string_view path) {
  std::vector<std::string> out;
  for (auto& piece : split(path, '/')) {
    if (!piece.empty() && piece != ".") out.push_back(std::move(piece));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += delim;
    out += parts[i];
  }
  return out;
}

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string format_bytes(Bytes n) {
  if (n >= units::TiB)
    return strformat("%.2f TiB", static_cast<double>(n) / static_cast<double>(units::TiB));
  if (n >= units::GiB)
    return strformat("%.2f GiB", static_cast<double>(n) / static_cast<double>(units::GiB));
  if (n >= units::MiB)
    return strformat("%.2f MiB", static_cast<double>(n) / static_cast<double>(units::MiB));
  if (n >= units::KiB)
    return strformat("%.2f KiB", static_cast<double>(n) / static_cast<double>(units::KiB));
  return strformat("%llu B", static_cast<unsigned long long>(n));
}

std::string format_rate(Rate r) {
  if (r >= 1e9) return strformat("%.2f GB/s", r / 1e9);
  if (r >= 1e6) return strformat("%.2f MB/s", r / 1e6);
  if (r >= 1e3) return strformat("%.2f KB/s", r / 1e3);
  return strformat("%.0f B/s", r);
}

std::string format_duration(SimTime s) {
  if (s >= 2 * 3600.0) return strformat("%.2f h", s / 3600.0);
  if (s >= 2 * 60.0) return strformat("%.1f min", s / 60.0);
  return strformat("%.1f s", s);
}

}  // namespace memfss
