// Small string utilities shared by path handling and report formatting.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace memfss {

/// Split on a delimiter; empty pieces are kept ("a//b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view s, char delim);

/// Split a filesystem path into components, dropping empty ones
/// ("/a//b/" -> {"a","b"}). A leading '/' is implied; relative paths are
/// treated the same as absolute ones.
std::vector<std::string> split_path(std::string_view path);

/// Join components with a delimiter.
std::string join(const std::vector<std::string>& parts, std::string_view delim);

/// printf-style formatting into std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// "1.5 GiB", "512 MiB", "3 KiB", "17 B".
std::string format_bytes(Bytes n);

/// "1.50 GB/s", "512 MB/s".
std::string format_rate(Rate bytes_per_sec);

/// "4521.0 s" / "75.3 min" / "1.26 h" picked by magnitude.
std::string format_duration(SimTime seconds);

}  // namespace memfss
