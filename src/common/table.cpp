#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/str.hpp"

namespace memfss {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string csv_row(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out += ',';
    out += csv_escape(fields[i]);
  }
  return out;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void Table::add_row_numeric(const std::string& label,
                            const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(strformat("%.*f", precision, v));
  add_row(std::move(row));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto hline = [&] {
    std::string s = "+";
    for (auto w : widths) {
      s.append(w + 2, '-');
      s += '+';
    }
    s += '\n';
    return s;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      s += ' ';
      s += cell;
      s.append(widths[c] - cell.size() + 1, ' ');
      s += '|';
    }
    s += '\n';
    return s;
  };

  std::string out;
  if (!title_.empty()) {
    out += title_;
    out += '\n';
  }
  out += hline();
  out += line(header_);
  out += hline();
  for (const auto& row : rows_) out += line(row);
  out += hline();
  return out;
}

void Table::print() const {
  const std::string s = render();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

}  // namespace memfss
