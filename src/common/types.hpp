// Basic shared vocabulary types and unit helpers for the MemFSS codebase.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>

namespace memfss {

/// Identifies a physical (simulated) cluster node. Dense, 0-based.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Number of bytes. All storage and network sizes use this.
using Bytes = std::uint64_t;

/// Simulated time, in seconds (double keeps the fluid-flow math simple;
/// experiment horizons are < 1e6 s so precision is ample).
using SimTime = double;

/// Bytes per second.
using Rate = double;

namespace units {
inline constexpr Bytes KiB = 1024ull;
inline constexpr Bytes MiB = 1024ull * KiB;
inline constexpr Bytes GiB = 1024ull * MiB;
inline constexpr Bytes TiB = 1024ull * GiB;

/// 1 Gbit/s in bytes per second.
inline constexpr Rate Gbps = 1e9 / 8.0;
}  // namespace units

}  // namespace memfss
