#include "hash/hrw.hpp"

#include <algorithm>
#include <cassert>

#include "hash/hashes.hpp"

namespace memfss::hash {

std::uint64_t hrw_score(NodeId server, std::uint64_t key_digest, ScoreFn fn) {
  switch (fn) {
    case ScoreFn::mix64:
      return mix64(server, key_digest);
    case ScoreFn::thaler_ravishankar:
      return tr_weight(server, fold31(key_digest));
  }
  return 0;
}

std::uint64_t hrw_score(NodeId server, std::string_view key, ScoreFn fn) {
  return hrw_score(server, key_digest(key), fn);
}

NodeId hrw_select(std::uint64_t key_digest, std::span<const NodeId> servers,
                  ScoreFn fn) {
  assert(!servers.empty());
  NodeId best = servers[0];
  std::uint64_t best_score = 0;
  bool first = true;
  for (NodeId s : servers) {
    const std::uint64_t score = fn == ScoreFn::mix64
                                    ? mix64(s, key_digest)
                                    : tr_weight(s, fold31(key_digest));
    // Deterministic tie-break on the lower node id keeps results stable
    // regardless of input ordering.
    if (first || score > best_score || (score == best_score && s < best)) {
      best = s;
      best_score = score;
      first = false;
    }
  }
  return best;
}

NodeId hrw_select(std::string_view key, std::span<const NodeId> servers,
                  ScoreFn fn) {
  return hrw_select(key_digest(key), servers, fn);
}

void hrw_select_many(std::span<const std::uint64_t> digests,
                     std::span<const NodeId> servers, std::span<NodeId> out,
                     ScoreFn fn) {
  assert(!servers.empty());
  assert(out.size() >= digests.size());
  std::size_t g = 0;
  if (fn == ScoreFn::mix64) {
    // Four lanes share each pass over the server list: one id load
    // feeds four independent mix64 chains, whose multiply latency
    // overlaps across lanes.
    for (; g + 4 <= digests.size(); g += 4) {
      const std::uint64_t d0 = digests[g], d1 = digests[g + 1];
      const std::uint64_t d2 = digests[g + 2], d3 = digests[g + 3];
      NodeId b0 = servers[0], b1 = servers[0], b2 = servers[0],
             b3 = servers[0];
      std::uint64_t s0 = mix64(servers[0], d0), s1 = mix64(servers[0], d1);
      std::uint64_t s2 = mix64(servers[0], d2), s3 = mix64(servers[0], d3);
      for (std::size_t i = 1; i < servers.size(); ++i) {
        const NodeId s = servers[i];
        // Same comparison as hrw_select: higher score wins, lower id
        // breaks ties, so batch and single-shot results are identical.
        const auto step = [s](std::uint64_t score, NodeId& best,
                              std::uint64_t& best_score) {
          if (score > best_score || (score == best_score && s < best)) {
            best = s;
            best_score = score;
          }
        };
        step(mix64(s, d0), b0, s0);
        step(mix64(s, d1), b1, s1);
        step(mix64(s, d2), b2, s2);
        step(mix64(s, d3), b3, s3);
      }
      out[g] = b0;
      out[g + 1] = b1;
      out[g + 2] = b2;
      out[g + 3] = b3;
    }
  }
  for (; g < digests.size(); ++g) out[g] = hrw_select(digests[g], servers, fn);
}

namespace {

std::vector<std::pair<std::uint64_t, NodeId>> scored(
    std::uint64_t digest, std::span<const NodeId> servers, std::size_t count,
    ScoreFn fn) {
  std::vector<std::pair<std::uint64_t, NodeId>> v;
  v.reserve(servers.size());
  for (NodeId s : servers) {
    const std::uint64_t score = fn == ScoreFn::mix64
                                    ? mix64(s, digest)
                                    : tr_weight(s, fold31(digest));
    v.emplace_back(score, s);
  }
  // Descending score, ascending id on ties -- a strict total order, so a
  // partial selection of the leading `count` entries matches the full sort
  // exactly when fewer than all ranks are requested.
  const auto less = [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  };
  if (count < v.size()) {
    std::partial_sort(v.begin(),
                      v.begin() + static_cast<std::ptrdiff_t>(count), v.end(),
                      less);
  } else {
    std::sort(v.begin(), v.end(), less);
  }
  return v;
}

}  // namespace

std::vector<NodeId> hrw_top(std::uint64_t key_digest,
                            std::span<const NodeId> servers, std::size_t count,
                            ScoreFn fn) {
  auto v = scored(key_digest, servers, count, fn);
  std::vector<NodeId> out;
  out.reserve(std::min(count, v.size()));
  for (std::size_t i = 0; i < v.size() && i < count; ++i)
    out.push_back(v[i].second);
  return out;
}

std::vector<NodeId> hrw_top(std::string_view key,
                            std::span<const NodeId> servers, std::size_t count,
                            ScoreFn fn) {
  return hrw_top(key_digest(key), servers, count, fn);
}

std::vector<NodeId> hrw_rank(std::uint64_t key_digest,
                             std::span<const NodeId> servers, ScoreFn fn) {
  return hrw_top(key_digest, servers, servers.size(), fn);
}

std::vector<NodeId> hrw_rank(std::string_view key,
                             std::span<const NodeId> servers, ScoreFn fn) {
  return hrw_rank(key_digest(key), servers, fn);
}

}  // namespace memfss::hash
