#include "hash/hrw.hpp"

#include <algorithm>
#include <cassert>

#include "hash/hashes.hpp"

namespace memfss::hash {

std::uint64_t hrw_score(NodeId server, std::uint64_t key_digest, ScoreFn fn) {
  switch (fn) {
    case ScoreFn::mix64:
      return mix64(server, key_digest);
    case ScoreFn::thaler_ravishankar:
      return tr_weight(server, fold31(key_digest));
  }
  return 0;
}

std::uint64_t hrw_score(NodeId server, std::string_view key, ScoreFn fn) {
  return hrw_score(server, key_digest(key), fn);
}

NodeId hrw_select(std::uint64_t key_digest, std::span<const NodeId> servers,
                  ScoreFn fn) {
  assert(!servers.empty());
  NodeId best = servers[0];
  std::uint64_t best_score = 0;
  bool first = true;
  for (NodeId s : servers) {
    const std::uint64_t score = fn == ScoreFn::mix64
                                    ? mix64(s, key_digest)
                                    : tr_weight(s, fold31(key_digest));
    // Deterministic tie-break on the lower node id keeps results stable
    // regardless of input ordering.
    if (first || score > best_score || (score == best_score && s < best)) {
      best = s;
      best_score = score;
      first = false;
    }
  }
  return best;
}

NodeId hrw_select(std::string_view key, std::span<const NodeId> servers,
                  ScoreFn fn) {
  return hrw_select(key_digest(key), servers, fn);
}

namespace {

std::vector<std::pair<std::uint64_t, NodeId>> scored(
    std::uint64_t digest, std::span<const NodeId> servers, std::size_t count,
    ScoreFn fn) {
  std::vector<std::pair<std::uint64_t, NodeId>> v;
  v.reserve(servers.size());
  for (NodeId s : servers) {
    const std::uint64_t score = fn == ScoreFn::mix64
                                    ? mix64(s, digest)
                                    : tr_weight(s, fold31(digest));
    v.emplace_back(score, s);
  }
  // Descending score, ascending id on ties -- a strict total order, so a
  // partial selection of the leading `count` entries matches the full sort
  // exactly when fewer than all ranks are requested.
  const auto less = [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  };
  if (count < v.size()) {
    std::partial_sort(v.begin(),
                      v.begin() + static_cast<std::ptrdiff_t>(count), v.end(),
                      less);
  } else {
    std::sort(v.begin(), v.end(), less);
  }
  return v;
}

}  // namespace

std::vector<NodeId> hrw_top(std::uint64_t key_digest,
                            std::span<const NodeId> servers, std::size_t count,
                            ScoreFn fn) {
  auto v = scored(key_digest, servers, count, fn);
  std::vector<NodeId> out;
  out.reserve(std::min(count, v.size()));
  for (std::size_t i = 0; i < v.size() && i < count; ++i)
    out.push_back(v[i].second);
  return out;
}

std::vector<NodeId> hrw_top(std::string_view key,
                            std::span<const NodeId> servers, std::size_t count,
                            ScoreFn fn) {
  return hrw_top(key_digest(key), servers, count, fn);
}

std::vector<NodeId> hrw_rank(std::uint64_t key_digest,
                             std::span<const NodeId> servers, ScoreFn fn) {
  return hrw_top(key_digest, servers, servers.size(), fn);
}

std::vector<NodeId> hrw_rank(std::string_view key,
                             std::span<const NodeId> servers, ScoreFn fn) {
  return hrw_rank(key_digest(key), servers, fn);
}

}  // namespace memfss::hash
