#include "hash/hrw.hpp"

#include <algorithm>
#include <cassert>

#include "hash/hashes.hpp"

namespace memfss::hash {

std::uint64_t hrw_score(NodeId server, std::string_view key, ScoreFn fn) {
  const std::uint64_t digest = key_digest(key);
  switch (fn) {
    case ScoreFn::mix64:
      return mix64(server, digest);
    case ScoreFn::thaler_ravishankar:
      return tr_weight(server, fold31(digest));
  }
  return 0;
}

NodeId hrw_select(std::string_view key, std::span<const NodeId> servers,
                  ScoreFn fn) {
  assert(!servers.empty());
  const std::uint64_t digest = key_digest(key);
  NodeId best = servers[0];
  std::uint64_t best_score = 0;
  bool first = true;
  for (NodeId s : servers) {
    const std::uint64_t score = fn == ScoreFn::mix64
                                    ? mix64(s, digest)
                                    : tr_weight(s, fold31(digest));
    // Deterministic tie-break on the lower node id keeps results stable
    // regardless of input ordering.
    if (first || score > best_score || (score == best_score && s < best)) {
      best = s;
      best_score = score;
      first = false;
    }
  }
  return best;
}

namespace {

std::vector<std::pair<std::uint64_t, NodeId>> scored(
    std::string_view key, std::span<const NodeId> servers, ScoreFn fn) {
  const std::uint64_t digest = key_digest(key);
  std::vector<std::pair<std::uint64_t, NodeId>> v;
  v.reserve(servers.size());
  for (NodeId s : servers) {
    const std::uint64_t score = fn == ScoreFn::mix64
                                    ? mix64(s, digest)
                                    : tr_weight(s, fold31(digest));
    v.emplace_back(score, s);
  }
  // Descending score, ascending id on ties.
  std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  return v;
}

}  // namespace

std::vector<NodeId> hrw_top(std::string_view key,
                            std::span<const NodeId> servers, std::size_t count,
                            ScoreFn fn) {
  auto v = scored(key, servers, fn);
  std::vector<NodeId> out;
  out.reserve(std::min(count, v.size()));
  for (std::size_t i = 0; i < v.size() && i < count; ++i)
    out.push_back(v[i].second);
  return out;
}

std::vector<NodeId> hrw_rank(std::string_view key,
                             std::span<const NodeId> servers, ScoreFn fn) {
  return hrw_top(key, servers, servers.size(), fn);
}

}  // namespace memfss::hash
