// Maps target data fractions to class-layer weights.
//
// The class layer scores each class with U_i - w_i, U_i ~ Uniform[0,1)
// i.i.d. per key. This file answers two questions:
//   1. Given weights, what fraction of keys does each class win?
//      (numeric integration of the order statistic)
//   2. Given target fractions, which weights produce them?
//      (closed form for two classes; fixed-point iteration in general)
//
// The experiments sweep alpha = fraction of data on *own* nodes over
// {0, 25, 50, 75, 100}%, so two_class_weights() is the hot path.
#pragma once

#include <vector>

namespace memfss::hash {

struct TwoClassWeights {
  double own = 0.0;
  double victim = 0.0;
};

/// Closed-form weights so that P(own class wins) == alpha_own.
/// alpha_own in [0, 1]. The smaller weight is normalized to 0.
TwoClassWeights two_class_weights(double alpha_own);

/// Probability that the own class wins under the given two weights
/// (closed-form inverse of two_class_weights; used in tests).
double two_class_fraction(const TwoClassWeights& w);

/// P(class i wins) for arbitrary weights, via numeric integration:
///   P_i = integral_0^1 prod_{j != i} F(x - w_i + w_j) dx,
/// where F is the Uniform[0,1) CDF. `grid` = integration resolution.
std::vector<double> win_fractions(const std::vector<double>& weights,
                                  std::size_t grid = 4096);

/// Solve weights for arbitrary per-class target fractions (sum to 1,
/// each > 0 unless exactly 0). Fixed-point: nudge w_i against the error
/// P_i - target_i. Returns weights normalized so min == 0.
std::vector<double> solve_class_weights(const std::vector<double>& targets,
                                        std::size_t iterations = 200,
                                        double tolerance = 1e-4);

}  // namespace memfss::hash
