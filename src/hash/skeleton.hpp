// Hierarchical ("skeleton") HRW, after Wang & Ravishankar 2009 -- the
// O(log n) decision-time optimization the paper cites in §III-B. Nodes are
// grouped into a fanout-f tree; selection HRW-hashes among the children at
// each level, so a lookup costs O(f * log_f n) score evaluations instead
// of O(n). The trade-off (also noted by the paper) is that it does not
// support weights or skewed distributions; MemFSS therefore uses it only
// as a comparison point, which is what the ablation bench does.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "hash/hrw.hpp"

namespace memfss::hash {

class SkeletonHrw {
 public:
  /// Builds the hierarchy over `nodes` with the given fanout (>= 2).
  SkeletonHrw(std::vector<NodeId> nodes, std::size_t fanout = 8,
              ScoreFn fn = ScoreFn::mix64);

  /// Selects a node in O(fanout * depth) score evaluations.
  NodeId select(std::string_view key) const;

  std::size_t depth() const { return levels_.size(); }
  std::size_t node_count() const { return leaves_.size(); }

 private:
  // levels_[0] is the root grouping; each level maps a group index to the
  // range of child group indices (or leaf indices at the last level).
  struct Level {
    std::size_t group_size;  // children per group at this level
    std::size_t groups;      // number of groups
  };
  std::vector<Level> levels_;
  std::vector<NodeId> leaves_;
  std::size_t fanout_;
  ScoreFn fn_;
};

}  // namespace memfss::hash
