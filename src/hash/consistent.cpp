#include "hash/consistent.hpp"

#include <algorithm>
#include <cassert>

#include "hash/hashes.hpp"

namespace memfss::hash {

ConsistentRing::ConsistentRing(std::size_t vnodes) : vnodes_(vnodes) {
  assert(vnodes_ > 0);
}

void ConsistentRing::add_node(NodeId node) {
  if (contains(node)) return;
  nodes_.push_back(node);
  for (std::size_t v = 0; v < vnodes_; ++v) {
    const std::uint64_t point = mix64(node, 0x7261696e626f77ull + v);
    // Collisions across distinct (node, vnode) pairs are ~2^-64; keep the
    // first owner if one ever occurs.
    ring_.emplace(point, node);
  }
}

void ConsistentRing::remove_node(NodeId node) {
  const auto it = std::find(nodes_.begin(), nodes_.end(), node);
  if (it == nodes_.end()) return;
  nodes_.erase(it);
  for (auto rit = ring_.begin(); rit != ring_.end();) {
    if (rit->second == node)
      rit = ring_.erase(rit);
    else
      ++rit;
  }
}

bool ConsistentRing::contains(NodeId node) const {
  return std::find(nodes_.begin(), nodes_.end(), node) != nodes_.end();
}

namespace {
// FNV digests of short keys are not uniform enough across the 64-bit ring
// (they bias arc ownership); one extra mix round fixes dispersion.
std::uint64_t ring_point(std::string_view key) {
  return mix64(key_digest(key), 0x52494e47ull);
}
}  // namespace

NodeId ConsistentRing::select(std::string_view key) const {
  assert(!ring_.empty());
  const std::uint64_t h = ring_point(key);
  auto it = ring_.lower_bound(h);
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

std::vector<NodeId> ConsistentRing::select_top(std::string_view key,
                                               std::size_t count) const {
  assert(!ring_.empty());
  std::vector<NodeId> out;
  const std::uint64_t h = ring_point(key);
  auto it = ring_.lower_bound(h);
  for (std::size_t steps = 0;
       steps < ring_.size() && out.size() < std::min(count, nodes_.size());
       ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(out.begin(), out.end(), it->second) == out.end())
      out.push_back(it->second);
    ++it;
  }
  return out;
}

}  // namespace memfss::hash
