#include "hash/hashes.hpp"

namespace memfss::hash {

std::uint32_t tr_weight(std::uint32_t server, std::uint32_t key) {
  constexpr std::uint32_t A = 1103515245u;
  constexpr std::uint32_t B = 12345u;
  constexpr std::uint32_t M = 0x7fffffffu;  // 2^31 - 1 mask
  const std::uint32_t inner = (A * server + B) ^ key;
  return (A * inner + B) & M;
}

std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  // splitmix64 finalizer over the combination; passes avalanche tests.
  std::uint64_t z = a + 0x9e3779b97f4a7c15ull * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t key_digest(std::string_view key) { return fnv1a(key); }

std::uint64_t fnv1a_decimal(std::uint64_t h, std::uint64_t value) {
  char digits[20];  // 2^64 has at most 20 decimal digits
  int n = 0;
  do {
    digits[n++] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0);
  while (n > 0) h = fnv1a_byte(h, static_cast<unsigned char>(digits[--n]));
  return h;
}

std::uint32_t fold31(std::uint64_t x) {
  return static_cast<std::uint32_t>((x ^ (x >> 31) ^ (x >> 62)) & 0x7fffffffu);
}

}  // namespace memfss::hash
