#include "hash/hashes.hpp"

#include <algorithm>
#include <cassert>

namespace memfss::hash {

std::uint32_t tr_weight(std::uint32_t server, std::uint32_t key) {
  constexpr std::uint32_t A = 1103515245u;
  constexpr std::uint32_t B = 12345u;
  constexpr std::uint32_t M = 0x7fffffffu;  // 2^31 - 1 mask
  const std::uint32_t inner = (A * server + B) ^ key;
  return (A * inner + B) & M;
}

std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  // splitmix64 finalizer over the combination; passes avalanche tests.
  std::uint64_t z = a + 0x9e3779b97f4a7c15ull * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t key_digest(std::string_view key) { return fnv1a(key); }

void fnv1a_many(std::span<const std::string_view> keys,
                std::span<std::uint64_t> out) {
  assert(out.size() >= keys.size());
  constexpr std::uint64_t kSeed = 0xcbf29ce484222325ull;
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  std::size_t g = 0;
  // Four interleaved chains: each iteration advances four *independent*
  // serial dependency chains one byte, so the multiplies pipeline.
  for (; g + 4 <= keys.size(); g += 4) {
    const std::string_view k0 = keys[g], k1 = keys[g + 1];
    const std::string_view k2 = keys[g + 2], k3 = keys[g + 3];
    std::uint64_t h0 = kSeed, h1 = kSeed, h2 = kSeed, h3 = kSeed;
    const std::size_t common =
        std::min(std::min(k0.size(), k1.size()), std::min(k2.size(), k3.size()));
    for (std::size_t i = 0; i < common; ++i) {
      h0 = (h0 ^ static_cast<unsigned char>(k0[i])) * kPrime;
      h1 = (h1 ^ static_cast<unsigned char>(k1[i])) * kPrime;
      h2 = (h2 ^ static_cast<unsigned char>(k2[i])) * kPrime;
      h3 = (h3 ^ static_cast<unsigned char>(k3[i])) * kPrime;
    }
    // Uneven tails finish serially (stripe/sibling keys in one batch
    // share a prefix shape, so the common run covers nearly everything).
    for (std::size_t i = common; i < k0.size(); ++i)
      h0 = (h0 ^ static_cast<unsigned char>(k0[i])) * kPrime;
    for (std::size_t i = common; i < k1.size(); ++i)
      h1 = (h1 ^ static_cast<unsigned char>(k1[i])) * kPrime;
    for (std::size_t i = common; i < k2.size(); ++i)
      h2 = (h2 ^ static_cast<unsigned char>(k2[i])) * kPrime;
    for (std::size_t i = common; i < k3.size(); ++i)
      h3 = (h3 ^ static_cast<unsigned char>(k3[i])) * kPrime;
    out[g] = h0;
    out[g + 1] = h1;
    out[g + 2] = h2;
    out[g + 3] = h3;
  }
  for (; g < keys.size(); ++g) out[g] = fnv1a(keys[g]);
}

std::uint64_t fnv1a_decimal(std::uint64_t h, std::uint64_t value) {
  char digits[20];  // 2^64 has at most 20 decimal digits
  int n = 0;
  do {
    digits[n++] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0);
  while (n > 0) h = fnv1a_byte(h, static_cast<unsigned char>(digits[--n]));
  return h;
}

std::uint32_t fold31(std::uint64_t x) {
  return static_cast<std::uint32_t>((x ^ (x >> 31) ^ (x >> 62)) & 0x7fffffffu);
}

}  // namespace memfss::hash
