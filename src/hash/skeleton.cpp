#include "hash/skeleton.hpp"

#include <algorithm>
#include <cassert>

#include "hash/hashes.hpp"

namespace memfss::hash {

SkeletonHrw::SkeletonHrw(std::vector<NodeId> nodes, std::size_t fanout,
                         ScoreFn fn)
    : leaves_(std::move(nodes)), fanout_(std::max<std::size_t>(2, fanout)),
      fn_(fn) {
  assert(!leaves_.empty());
  // Sort so the implicit hierarchy is independent of construction order.
  std::sort(leaves_.begin(), leaves_.end());
  // Record level metadata for depth() reporting.
  std::size_t n = leaves_.size();
  while (n > 1) {
    const std::size_t groups = (n + fanout_ - 1) / fanout_;
    levels_.push_back({fanout_, groups});
    n = groups;
  }
  std::reverse(levels_.begin(), levels_.end());
}

NodeId SkeletonHrw::select(std::string_view key) const {
  const std::uint64_t digest = key_digest(key);
  std::size_t lo = 0;
  std::size_t hi = leaves_.size();
  // Descend: split [lo, hi) into up to `fanout_` near-equal sub-ranges and
  // HRW-pick among them, identifying each sub-range by its bounds.
  while (hi - lo > 1) {
    const std::size_t span = hi - lo;
    const std::size_t parts = std::min(fanout_, span);
    std::size_t best_lo = lo, best_hi = hi;
    std::uint64_t best_score = 0;
    bool first = true;
    for (std::size_t p = 0; p < parts; ++p) {
      const std::size_t a = lo + span * p / parts;
      const std::size_t b = lo + span * (p + 1) / parts;
      const std::uint64_t ident = mix64(a, b);
      const std::uint64_t score =
          fn_ == ScoreFn::mix64
              ? mix64(ident, digest)
              : tr_weight(fold31(ident), fold31(digest));
      if (first || score > best_score) {
        best_score = score;
        best_lo = a;
        best_hi = b;
        first = false;
      }
    }
    lo = best_lo;
    hi = best_hi;
  }
  return leaves_[lo];
}

}  // namespace memfss::hash
