#include "hash/class_hrw.hpp"

#include <cassert>
#include <limits>

#include "hash/hashes.hpp"

namespace memfss::hash {

namespace {
// Distinct salt so class-layer scores are independent of node-layer scores
// even when a class_id collides numerically with a node id.
constexpr std::uint64_t kClassSalt = 0xc1a55c1a55c1a55cull;

double unit_hash(std::uint32_t class_id, std::uint64_t digest, ScoreFn fn) {
  if (fn == ScoreFn::mix64) {
    const std::uint64_t h = mix64(kClassSalt ^ class_id, digest);
    return static_cast<double>(h >> 11) * 0x1.0p-53;
  }
  const std::uint32_t h =
      tr_weight(class_id ^ 0x5c1a55u, fold31(digest));
  return static_cast<double>(h) / 2147483648.0;  // / 2^31
}
}  // namespace

double class_score(const NodeClass& c, std::uint64_t key_digest, ScoreFn fn) {
  return unit_hash(c.class_id, key_digest, fn) - c.weight;
}

double class_score(const NodeClass& c, std::string_view key, ScoreFn fn) {
  return class_score(c, key_digest(key), fn);
}

std::size_t select_class(std::uint64_t key_digest,
                         std::span<const NodeClass> classes, ScoreFn fn) {
  std::size_t best = classes.size();
  double best_score = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < classes.size(); ++i) {
    if (classes[i].nodes.empty()) continue;
    const double s = class_score(classes[i], key_digest, fn);
    // Ties broken on the lower class_id for determinism.
    if (best == classes.size() || s > best_score ||
        (s == best_score && classes[i].class_id < classes[best].class_id)) {
      best = i;
      best_score = s;
    }
  }
  assert(best < classes.size() && "at least one class must have nodes");
  return best;
}

std::size_t select_class(std::string_view key,
                         std::span<const NodeClass> classes, ScoreFn fn) {
  return select_class(key_digest(key), classes, fn);
}

Placement place(std::uint64_t key_digest, std::span<const NodeClass> classes,
                ScoreFn fn) {
  const std::size_t ci = select_class(key_digest, classes, fn);
  const NodeId node = hrw_select(key_digest, classes[ci].nodes, fn);
  return {classes[ci].class_id, node};
}

Placement place(std::string_view key, std::span<const NodeClass> classes,
                ScoreFn fn) {
  return place(key_digest(key), classes, fn);
}

std::vector<Placement> place_replicas(std::uint64_t key_digest,
                                      std::span<const NodeClass> classes,
                                      std::size_t count, ScoreFn fn) {
  const std::size_t ci = select_class(key_digest, classes, fn);
  auto nodes = hrw_top(key_digest, classes[ci].nodes, count, fn);
  std::vector<Placement> out;
  out.reserve(nodes.size());
  for (NodeId n : nodes) out.push_back({classes[ci].class_id, n});
  return out;
}

std::vector<Placement> place_replicas(std::string_view key,
                                      std::span<const NodeClass> classes,
                                      std::size_t count, ScoreFn fn) {
  return place_replicas(key_digest(key), classes, count, fn);
}

std::vector<NodeId> rank_in_winning_class(std::uint64_t key_digest,
                                          std::span<const NodeClass> classes,
                                          ScoreFn fn) {
  const std::size_t ci = select_class(key_digest, classes, fn);
  return hrw_rank(key_digest, classes[ci].nodes, fn);
}

std::vector<NodeId> rank_in_winning_class(std::string_view key,
                                          std::span<const NodeClass> classes,
                                          ScoreFn fn) {
  return rank_in_winning_class(key_digest(key), classes, fn);
}

}  // namespace memfss::hash
