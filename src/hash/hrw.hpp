// Highest Random Weight (rendezvous) hashing [Thaler & Ravishankar 1998].
//
// Given a key and a set of server ids, every server is scored with a
// pseudo-random function of (server, key); the highest score wins. Adding
// or removing a server remaps only the keys that ranked it first --
// the same minimal-disruption property as consistent hashing, with no
// token ring to maintain.
//
// Every entry point exists in two forms: one taking the string key (which
// digests it first) and one taking a precomputed 64-bit digest. Callers
// that resolve the same key through several layers (class HRW, retry
// loops) digest once and pass the digest down, so the key is hashed
// exactly once per logical lookup.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace memfss::hash {

/// Score function selector. `mix64` is the library default;
/// `thaler_ravishankar` is the paper-faithful 31-bit LCG.
enum class ScoreFn { mix64, thaler_ravishankar };

/// Score of one (server, key) pair under the chosen function.
std::uint64_t hrw_score(NodeId server, std::string_view key,
                        ScoreFn fn = ScoreFn::mix64);
std::uint64_t hrw_score(NodeId server, std::uint64_t key_digest,
                        ScoreFn fn = ScoreFn::mix64);

/// The server with the highest score for `key`. Requires non-empty span.
NodeId hrw_select(std::string_view key, std::span<const NodeId> servers,
                  ScoreFn fn = ScoreFn::mix64);
NodeId hrw_select(std::uint64_t key_digest, std::span<const NodeId> servers,
                  ScoreFn fn = ScoreFn::mix64);

/// The top-`count` servers in descending score order (for replica
/// placement: primary, then 2nd/3rd highest per the paper's §III-E).
/// Returns min(count, servers.size()) ids.
std::vector<NodeId> hrw_top(std::string_view key,
                            std::span<const NodeId> servers, std::size_t count,
                            ScoreFn fn = ScoreFn::mix64);
std::vector<NodeId> hrw_top(std::uint64_t key_digest,
                            std::span<const NodeId> servers, std::size_t count,
                            ScoreFn fn = ScoreFn::mix64);

/// Batch selection: out[i] = hrw_select(digests[i], servers, fn) for
/// every i, bit-identical result (same score function, same tie-break).
/// The server list is walked once per *four* digests with four
/// interleaved best-trackers, so server ids stay in registers and the
/// mixer's multiply chains pipeline across lanes -- the digest-based
/// scoring loop batched for callers that place many stripe keys at
/// once. Requires out.size() >= digests.size().
void hrw_select_many(std::span<const std::uint64_t> digests,
                     std::span<const NodeId> servers,
                     std::span<NodeId> out, ScoreFn fn = ScoreFn::mix64);

/// Full ranking, descending. Used by lazy data movement: if the data is
/// not on rank 0, probe rank 1, 2, ... and relocate when found.
std::vector<NodeId> hrw_rank(std::string_view key,
                             std::span<const NodeId> servers,
                             ScoreFn fn = ScoreFn::mix64);
std::vector<NodeId> hrw_rank(std::uint64_t key_digest,
                             std::span<const NodeId> servers,
                             ScoreFn fn = ScoreFn::mix64);

}  // namespace memfss::hash
