// Hash functions used by the placement schemes.
//
// Two families:
//  - tr_weight(): the 31-bit linear-congruential "random weight" function
//    from Thaler & Ravishankar (1998), the function the MemFSS paper says
//    it keeps for its weighted scheme.
//  - mix64()/hash_bytes(): a 64-bit finalizer-based mixer (xxhash/splitmix
//    style) used as the default score function; better dispersion, same
//    API.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace memfss::hash {

/// Thaler-Ravishankar random-weight function:
///   W(S, K) = (A * ((A * S + B) xor K) + B) mod 2^31
/// with A = 1103515245, B = 12345 (the classic C LCG constants).
/// `server` and `key` are 31-bit quantities; higher bits are folded in.
std::uint32_t tr_weight(std::uint32_t server, std::uint32_t key);

/// 64-bit mix of two values (server id, key digest) into a score.
std::uint64_t mix64(std::uint64_t a, std::uint64_t b);

/// FNV-1a over bytes; stable across platforms.
std::uint64_t fnv1a(std::string_view bytes);

/// Batch FNV-1a: out[i] = fnv1a(keys[i]) for every i, bit-identical to
/// the one-at-a-time call. Four independent hash chains are advanced in
/// lockstep so the 64-bit multiply latency of one chain hides behind
/// the other three -- FNV's byte-serial dependency chain is the
/// throughput limiter, not memory. Requires out.size() >= keys.size().
/// This is the per-stripe-key digest path batched: hashing many sibling
/// /stripe keys per call instead of one per lookup (DESIGN.md §14).
void fnv1a_many(std::span<const std::string_view> keys,
                std::span<std::uint64_t> out);

/// Digest a string key for use with mix64/tr_weight.
std::uint64_t key_digest(std::string_view key);

/// Incremental FNV-1a: start from fnv1a_seed(), fold bytes (or the decimal
/// rendering of an integer) in one at a time. Folding the same byte
/// sequence yields exactly fnv1a() of the equivalent string, so composite
/// keys ("i<ino>:<idx>") can be digested without materializing the string.
constexpr std::uint64_t fnv1a_seed() { return 0xcbf29ce484222325ull; }
constexpr std::uint64_t fnv1a_byte(std::uint64_t h, unsigned char c) {
  return (h ^ c) * 0x100000001b3ull;
}

/// Fold the decimal digits of `value` (no sign, no padding) into `h`.
std::uint64_t fnv1a_decimal(std::uint64_t h, std::uint64_t value);

/// Fold a 64-bit digest to the 31-bit domain tr_weight expects.
std::uint32_t fold31(std::uint64_t x);

}  // namespace memfss::hash
