#include "hash/weight_solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace memfss::hash {

// For two classes the winning probability has a closed form. Let
// d = w_own - w_victim. The difference U_own - U_victim is triangular on
// [-1, 1], so
//   P(own wins) = P(U_own - U_victim > d)
//               = (1 - d)^2 / 2          for d in [0, 1]
//               = 1 - (1 + d)^2 / 2      for d in [-1, 0).
TwoClassWeights two_class_weights(double alpha_own) {
  assert(alpha_own >= 0.0 && alpha_own <= 1.0);
  double d;
  if (alpha_own <= 0.5) {
    d = 1.0 - std::sqrt(2.0 * alpha_own);
  } else {
    d = std::sqrt(2.0 * (1.0 - alpha_own)) - 1.0;
  }
  if (d >= 0.0) return {d, 0.0};
  return {0.0, -d};
}

double two_class_fraction(const TwoClassWeights& w) {
  const double d = std::clamp(w.own - w.victim, -1.0, 1.0);
  if (d >= 0.0) return (1.0 - d) * (1.0 - d) / 2.0;
  return 1.0 - (1.0 + d) * (1.0 + d) / 2.0;
}

namespace {
// CDF of Uniform[0,1).
inline double ucdf(double y) { return std::clamp(y, 0.0, 1.0); }
}  // namespace

std::vector<double> win_fractions(const std::vector<double>& weights,
                                  std::size_t grid) {
  const std::size_t k = weights.size();
  std::vector<double> p(k, 0.0);
  if (k == 0) return p;
  if (k == 1) {
    p[0] = 1.0;
    return p;
  }
  // Midpoint rule on P_i = int_0^1 prod_{j!=i} F(x - w_i + w_j) dx.
  const double h = 1.0 / static_cast<double>(grid);
  for (std::size_t i = 0; i < k; ++i) {
    double acc = 0.0;
    for (std::size_t g = 0; g < grid; ++g) {
      const double x = (static_cast<double>(g) + 0.5) * h;
      double prod = 1.0;
      for (std::size_t j = 0; j < k; ++j) {
        if (j == i) continue;
        prod *= ucdf(x - weights[i] + weights[j]);
        if (prod == 0.0) break;
      }
      acc += prod;
    }
    p[i] = acc * h;
  }
  return p;
}

std::vector<double> solve_class_weights(const std::vector<double>& targets,
                                        std::size_t iterations,
                                        double tolerance) {
  const std::size_t k = targets.size();
  assert(k >= 1);
#ifndef NDEBUG
  double sum = 0.0;
  for (double t : targets) {
    assert(t >= 0.0 && t <= 1.0);
    sum += t;
  }
  assert(std::abs(sum - 1.0) < 1e-6 && "targets must sum to 1");
#endif
  std::vector<double> w(k, 0.0);
  if (k == 1) return w;
  if (k == 2) {
    const auto two = two_class_weights(targets[0]);
    return {two.own, two.victim};
  }
  // A class with target 0 gets weight >= 1 (can never win against a
  // zero-weight class); exclude it from the iteration.
  for (std::size_t i = 0; i < k; ++i)
    if (targets[i] == 0.0) w[i] = 1.0;

  double step = 0.5;
  for (std::size_t it = 0; it < iterations; ++it) {
    const auto p = win_fractions(w, 1024);
    double max_err = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      if (targets[i] == 0.0) continue;
      const double err = p[i] - targets[i];
      max_err = std::max(max_err, std::abs(err));
      // More wins than wanted -> raise the subtractive weight.
      w[i] = std::clamp(w[i] + step * err, 0.0, 1.0);
    }
    if (max_err < tolerance) break;
    step *= 0.98;  // cool down to damp oscillation
  }
  // Normalize: only weight differences matter, so shift min to 0
  // (but keep the >=1 sentinel for zero-target classes meaningful).
  double mn = 1.0;
  for (std::size_t i = 0; i < k; ++i)
    if (targets[i] > 0.0) mn = std::min(mn, w[i]);
  for (std::size_t i = 0; i < k; ++i)
    w[i] = std::max(0.0, w[i] - mn);
  return w;
}

}  // namespace memfss::hash
