// Consistent hashing ring with virtual nodes [Karger et al. 1997].
//
// This is the placement scheme of the original MemFS (the uniform
// baseline MemFSS replaces): every node is mapped to `vnodes` points on a
// 64-bit ring; a key is stored on the first node clockwise of its hash.
// Kept here both as the baseline for ablation benches and to demonstrate
// the operational difference the paper argues for (ring data must move
// eagerly on membership change; HRW supports lazy movement).
#pragma once

#include <cstdint>
#include <map>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace memfss::hash {

class ConsistentRing {
 public:
  /// `vnodes`: virtual points per physical node (more -> better balance,
  /// larger ring). 128 is a common production default.
  explicit ConsistentRing(std::size_t vnodes = 128);

  void add_node(NodeId node);
  void remove_node(NodeId node);
  bool contains(NodeId node) const;
  std::size_t node_count() const { return nodes_.size(); }

  /// First node clockwise of hash(key). Requires a non-empty ring.
  NodeId select(std::string_view key) const;

  /// The first `count` *distinct* nodes clockwise (replica set).
  std::vector<NodeId> select_top(std::string_view key,
                                 std::size_t count) const;

 private:
  std::size_t vnodes_;
  std::map<std::uint64_t, NodeId> ring_;   // point -> node
  std::vector<NodeId> nodes_;
};

}  // namespace memfss::hash
