// The MemFSS two-layer weighted HRW placement scheme (paper §III-B).
//
// Layer 1 (class layer): every node class (own, victim, victim-2, ...)
// gets a score H(class_id, key) - weight, where H is uniform on [0,1) and
// `weight` is the class's subtractive weight. The class with the highest
// score stores the key. Larger weight => lower share of keys: this is the
// knob that caps how much data (and network traffic) flows to victims.
//
// Layer 2 (node layer): plain, unweighted HRW over the nodes of the
// winning class distributes keys uniformly inside the class, which keeps
// per-node load (and hence per-victim interference) balanced and
// predictable.
//
// The scheme generalizes to any number of classes; weights for target data
// fractions are produced by hash/weight_solver.hpp.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "hash/hrw.hpp"

namespace memfss::hash {

/// One class of nodes with a placement weight.
struct NodeClass {
  std::uint32_t class_id = 0;  ///< stable id, hashed in the class layer
  double weight = 0.0;         ///< subtractive weight in [0, 1]
  std::vector<NodeId> nodes;   ///< members; uniform HRW inside
};

struct Placement {
  std::uint32_t class_id = 0;
  NodeId node = kInvalidNode;
};

/// Layer-1 score of a class for a key: H(class_id, key) - weight, with H
/// uniform on [0, 1).
///
/// Every function below also takes a precomputed `key_digest` so the key
/// is hashed exactly once per placement: the digest flows through both
/// the class layer and the node layer (hrw.hpp digest overloads). The
/// string forms digest and delegate.
double class_score(const NodeClass& c, std::string_view key,
                   ScoreFn fn = ScoreFn::mix64);
double class_score(const NodeClass& c, std::uint64_t key_digest,
                   ScoreFn fn = ScoreFn::mix64);

/// Winning class index for `key` among `classes` (layer 1 only).
/// Classes with no nodes are skipped. Requires at least one non-empty class.
std::size_t select_class(std::string_view key,
                         std::span<const NodeClass> classes,
                         ScoreFn fn = ScoreFn::mix64);
std::size_t select_class(std::uint64_t key_digest,
                         std::span<const NodeClass> classes,
                         ScoreFn fn = ScoreFn::mix64);

/// Full two-layer placement: class by weighted score, node by plain HRW.
Placement place(std::string_view key, std::span<const NodeClass> classes,
                ScoreFn fn = ScoreFn::mix64);
Placement place(std::uint64_t key_digest, std::span<const NodeClass> classes,
                ScoreFn fn = ScoreFn::mix64);

/// Primary + (count-1) replicas: the top-`count` nodes of the winning
/// class (paper §III-E replication on 2nd/3rd highest scores).
std::vector<Placement> place_replicas(std::string_view key,
                                      std::span<const NodeClass> classes,
                                      std::size_t count,
                                      ScoreFn fn = ScoreFn::mix64);
std::vector<Placement> place_replicas(std::uint64_t key_digest,
                                      std::span<const NodeClass> classes,
                                      std::size_t count,
                                      ScoreFn fn = ScoreFn::mix64);

/// Descending node ranking within the winning class -- the probe order for
/// lazy data movement after membership changes (paper §V-C).
std::vector<NodeId> rank_in_winning_class(std::string_view key,
                                          std::span<const NodeClass> classes,
                                          ScoreFn fn = ScoreFn::mix64);
std::vector<NodeId> rank_in_winning_class(std::uint64_t key_digest,
                                          std::span<const NodeClass> classes,
                                          ScoreFn fn = ScoreFn::mix64);

}  // namespace memfss::hash
