// RateMeter: estimates the recent event rate (requests/s) of a server.
//
// The victim-interference model needs "how many small I/O requests per
// second is the scavenged store handling on this node" -- the quantity the
// paper blames for BLAST slowing latency-sensitive MPI tenants more than
// the bulk-writing dd does. Exponentially-decayed counting gives a smooth,
// O(1) estimate without storing timestamps.
#pragma once

#include "common/types.hpp"

namespace memfss::kvstore {

class RateMeter {
 public:
  /// `halflife`: seconds after which an event's contribution halves.
  explicit RateMeter(double halflife = 2.0);

  /// Record `count` events at simulated time `t` (monotone per meter).
  void record(SimTime t, double count = 1.0);

  /// Estimated events/s at time `t`.
  double rate(SimTime t) const;

  double total() const { return total_; }

 private:
  double decay_factor(SimTime dt) const;
  double halflife_;
  double weight_ = 0.0;   // decayed event mass
  SimTime last_ = 0.0;
  double total_ = 0.0;
};

}  // namespace memfss::kvstore
