// Blob: a stored value that is either materialized (real bytes, used by
// unit tests and the standalone examples) or *ghost* (size-only
// accounting, used by cluster experiments where simulated datasets reach
// hundreds of GB and holding real payloads would be absurd). Both kinds
// carry a checksum so corruption tests work uniformly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace memfss::kvstore {

class Blob {
 public:
  Blob() = default;

  /// A blob backed by real bytes.
  static Blob materialized(std::vector<std::uint8_t> bytes);

  /// A size-only blob; `tag` stands in for the content (checksummed).
  static Blob ghost(Bytes size, std::uint64_t tag = 0);

  Bytes size() const { return size_; }
  bool is_ghost() const { return data_.empty() && size_ > 0; }
  std::uint64_t checksum() const { return checksum_; }
  std::span<const std::uint8_t> bytes() const { return data_; }

  bool operator==(const Blob& o) const {
    return size_ == o.size_ && checksum_ == o.checksum_ && data_ == o.data_;
  }

  /// Whether the stored checksum still matches the content. Ghost blobs
  /// are checksum-carrying only (nothing to recompute), so they always
  /// verify unless corrupt_for_test() was called.
  bool verify() const;

  /// Test hook: damage the blob (bit-flip for materialized data, checksum
  /// scramble for ghosts) so scrubbing/fault-injection tests have
  /// something to find.
  void corrupt_for_test();

 private:
  Bytes size_ = 0;
  std::uint64_t checksum_ = 0;
  bool corrupted_ = false;  ///< test-injection flag (ghost corruption)
  std::vector<std::uint8_t> data_;
};

}  // namespace memfss::kvstore
