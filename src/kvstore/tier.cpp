#include "kvstore/tier.hpp"

namespace memfss::kvstore {

ColdTier::ColdTier(Bytes capacity, TierCosts costs)
    : capacity_(capacity), costs_(costs) {}

Status ColdTier::put(std::string_view key, Blob value) {
  ++stats_.puts;
  const Bytes incoming = value.size() + Store::kPerKeyOverhead;
  Bytes outgoing = 0;
  auto it = map_.find(key);
  if (it != map_.end()) outgoing = it->second.size() + Store::kPerKeyOverhead;
  if (used_ - outgoing + incoming > capacity_)
    return {Errc::out_of_memory, "cold tier capacity exceeded"};
  stats_.bytes_in += value.size();
  used_ = used_ - outgoing + incoming;
  if (it != map_.end())
    it->second = std::move(value);
  else
    map_.emplace(std::string(key), std::move(value));
  return {};
}

Result<Blob> ColdTier::get(std::string_view key) const {
  ++stats_.gets;
  auto it = map_.find(key);
  if (it == map_.end()) return Error{Errc::not_found, std::string(key)};
  stats_.bytes_out += it->second.size();
  return it->second;
}

std::optional<Blob> ColdTier::take(std::string_view key) {
  auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  Blob b = std::move(it->second);
  used_ -= b.size() + Store::kPerKeyOverhead;
  map_.erase(it);
  return b;
}

Status ColdTier::del(std::string_view key) {
  ++stats_.dels;
  auto it = map_.find(key);
  if (it == map_.end()) return {Errc::not_found, std::string(key)};
  used_ -= it->second.size() + Store::kPerKeyOverhead;
  map_.erase(it);
  return {};
}

bool ColdTier::contains(std::string_view key) const {
  return map_.find(key) != map_.end();
}

Result<Bytes> ColdTier::value_size(std::string_view key) const {
  auto it = map_.find(key);
  if (it == map_.end()) return Error{Errc::not_found, std::string(key)};
  return it->second.size();
}

std::vector<std::string> ColdTier::keys() const {
  std::vector<std::string> out;
  out.reserve(map_.size());
  for (const auto& [k, v] : map_) out.push_back(k);
  return out;
}

Bytes ColdTier::clear() {
  const Bytes freed = used_;
  map_.clear();
  used_ = 0;
  return freed;
}

SimTime ColdTier::read_cost(Bytes n) const {
  return costs_.access_latency +
         (costs_.read_bw > 0
              ? static_cast<double>(n) / costs_.read_bw
              : 0.0);
}

SimTime ColdTier::write_cost(Bytes n) const {
  return costs_.access_latency +
         (costs_.write_bw > 0
              ? static_cast<double>(n) / costs_.write_bw
              : 0.0);
}

}  // namespace memfss::kvstore
