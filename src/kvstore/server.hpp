// Simulated kvstore server: one per cluster node running a Store, charging
// the node's simulated resources for every request.
//
// Cost model (paper-relevant behaviour it produces):
//   - per-request CPU cost + per-byte CPU cost: many small requests are
//     disproportionately expensive -- this is why BLAST (many small I/O
//     requests) disturbs latency-sensitive MPI tenants more than the
//     bulk-streaming dd does (paper §IV-C);
//   - per-byte memory bandwidth: scavenged stores compete with STREAM-like
//     tenant phases for memory bandwidth;
//   - transfers tagged with the node's scavenge CapGroup: the container
//     bandwidth cap of §III-F.
// CPU / memory-bandwidth / wire charges overlap (when_all), as they do in
// a pipelined server.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "common/result.hpp"
#include "common/types.hpp"
#include "kvstore/rate_meter.hpp"
#include "kvstore/store.hpp"
#include "kvstore/tier.hpp"
#include "net/fabric.hpp"
#include "obs/obs.hpp"
#include "sim/fluid.hpp"
#include "sim/memory.hpp"
#include "sim/task.hpp"

namespace memfss::kvstore {

/// Liveness lifecycle of a simulated server process.
///
///   up      -- serving normally;
///   stalled -- transient straggler: requests hang until the stall ends
///              (clients are expected to time out and fail over);
///   down    -- crashed or revoked: the in-memory store is gone, new
///              requests fail fast (connection refused) and transfers
///              in flight at crash time fail rather than complete.
enum class Liveness { up, stalled, down };

constexpr std::string_view liveness_name(Liveness l) {
  switch (l) {
    case Liveness::up: return "up";
    case Liveness::stalled: return "stalled";
    case Liveness::down: return "down";
  }
  return "?";
}

/// Resource hooks the server charges; any may be null (not charged).
struct ResourceHooks {
  sim::FluidResource* cpu = nullptr;     ///< node CPU (capacity = cores)
  sim::FluidResource* membw = nullptr;   ///< node memory bandwidth (B/s)
  sim::MemoryPool* mem = nullptr;        ///< node memory capacity
  net::CapGroup* net_cap = nullptr;      ///< container bandwidth ceiling
  obs::Observability* obs = nullptr;     ///< metrics + tracing sink
};

struct ServerCosts {
  double cpu_per_request = 30e-6;   ///< core-seconds per operation
  double cpu_per_byte = 1.25e-9;    ///< core-seconds per payload byte
  double membw_per_byte = 2.0;      ///< memory-bus bytes per payload byte
  /// The store engine is single-threaded like Redis: all request CPU work
  /// funnels through `engine_cores` worth of cores, capping per-server
  /// ingest at engine_cores / cpu_per_byte bytes/s (~0.8 GB/s at the
  /// defaults) -- the paper's load-balance argument for Fig. 2f depends
  /// on this per-node service limit.
  double engine_cores = 1.0;
};

class Server {
 public:
  Server(sim::Simulator& sim, net::Fabric& fabric, NodeId node,
         Bytes store_capacity, std::string auth_token,
         ResourceHooks hooks = {}, ServerCosts costs = {});

  NodeId node() const { return node_; }
  Store& store() { return store_; }
  const Store& store() const { return store_; }

  /// Requests/s seen recently (victim-interference telemetry).
  double request_rate() const;

  /// Payload bytes/s moved recently (in + out).
  double byte_rate() const;

  const ServerCosts& costs() const { return costs_; }

  // --- client-side operations (invoked from `client`'s node) -------------

  sim::Task<Status> put(NodeId client, std::string_view token,
                        std::string key, Blob value);
  sim::Task<Result<Blob>> get(NodeId client, std::string_view token,
                              std::string key);
  sim::Task<Result<bool>> exists(NodeId client, std::string_view token,
                                 std::string key);
  sim::Task<Status> del(NodeId client, std::string_view token,
                        std::string key);

  /// Charge the cost of `count` additional small requests accompanying a
  /// bulk operation (chatty clients like BLAST issue many sub-stripe
  /// reads/writes; volume-wise they are covered by the bulk transfer, but
  /// their per-request CPU and request-rate footprint -- what disturbs
  /// latency-sensitive tenants -- must still land on the server).
  sim::Task<> request_burst(NodeId client, double count);

  /// Server-to-server bulk copy of one key (migration/evacuation path).
  /// Reads locally, ships the bytes, writes into `dst`.
  sim::Task<Status> migrate_key(std::string_view token, std::string key,
                                Server& dst);

  /// Like migrate_key but keeps the local copy (repair / re-replication).
  sim::Task<Status> replicate_key(std::string_view token, std::string key,
                                  Server& dst);

  // --- tiered hot/cold memory (DESIGN.md §16) -----------------------------

  /// Attach a cold tier; `heat_epoch` is the decay epoch length in sim
  /// seconds (heat counters halve per epoch). Only tiered servers track
  /// heat, serve cold hits, or accept demote/promote -- an untiered
  /// server behaves bit-identically to builds without tiering.
  void attach_tier(std::unique_ptr<StorageTier> tier, SimTime heat_epoch);
  bool tiered() const { return tier_ != nullptr; }
  StorageTier* tier() { return tier_.get(); }
  const StorageTier* tier() const { return tier_.get(); }

  /// Current heat-decay epoch (floor of sim time / epoch length).
  std::uint64_t heat_epoch_now() const;

  /// Key resident on this node, hot or cold (repair / drain scans).
  bool holds(std::string_view key) const;

  /// Size of a resident value, hot or cold, with the store's auth check.
  Result<Bytes> resident_size(std::string_view token,
                              std::string_view key) const;

  /// Hot + cold keys (evacuation and crash-snapshot scans).
  std::vector<std::string> all_keys() const;

  /// Hot keys coldest-first at the current epoch (demotion scan order).
  std::vector<std::string> demotion_order() const;

  /// Bytes accounted in the cold tier (0 when untiered).
  Bytes tier_bytes() const { return tier_ ? tier_->used() : 0; }

  /// Move one hot key to the cold tier, charging the tier write cost and
  /// releasing its node memory. The move itself is atomic: a crash during
  /// the device write leaves the entry hot, never in both tiers.
  sim::Task<Status> demote_key(std::string key);

  /// Move one cold key back to the hot store, charging the tier read
  /// cost and re-charging node memory. out_of_memory if the pool or the
  /// store cannot take the bytes back (the entry stays cold).
  sim::Task<Status> promote_key(std::string key);

  /// Stop serving (store turns unavailable); in-flight ops complete.
  void close();

  /// Administrative reset: drop all keys and release the node memory they
  /// charged. Used by experiment harnesses between repetitions.
  void wipe();

  // --- liveness lifecycle (fault injection) -------------------------------

  Liveness liveness() const { return live_; }
  bool is_up() const { return live_ == Liveness::up; }

  /// Hard failure: the process dies, its in-memory data is lost, and every
  /// operation in flight fails instead of completing. Irreversible (a
  /// restarted store would come back empty under a new identity; the
  /// filesystem treats the node as gone).
  void crash();

  /// Transient straggler: requests arriving (or already queued) during the
  /// stall are held until it ends. Overlapping stalls extend the window.
  void stall_for(SimTime duration);

  SimTime stalled_until() const { return stalled_until_; }

 private:
  /// Hold the calling operation while the server is stalled.
  sim::Task<> stall_gate();
  /// Charge request bookkeeping + overlapped CPU/membw/wire costs.
  sim::Task<> charge(NodeId client, Bytes payload, bool to_client);
  /// Charge a cold-tier device pass (device time + engine + CPU + membw).
  sim::Task<> charge_tier(Bytes payload, bool write);
  /// Synchronous cold->hot move (costs already charged by the caller):
  /// take from the tier, re-charge node memory, restore into the store.
  /// False (entry stays cold) if pool or store cannot take the bytes.
  bool reinstall_hot(const std::string& key);
  /// Record one access for heat tracking (no-op when untiered).
  void touch_heat(const std::string& key);

  // put/get split into timing shells + _impl bodies: the impls have
  // several early co_return paths (down, died mid-transfer) and the
  // service-time histogram must see all of them.
  sim::Task<Status> put_impl(NodeId client, std::string_view token,
                             std::string key, Blob value);
  sim::Task<Result<Blob>> get_impl(NodeId client, std::string_view token,
                                   std::string key);

  /// Bump/drop the in-flight request count and refresh the queue-depth
  /// and memory-watermark gauges (no-ops when obs is not attached).
  void enter_request();
  void leave_request();

  sim::Simulator& sim_;
  net::Fabric& fabric_;
  NodeId node_;
  Store store_;
  ResourceHooks hooks_;
  ServerCosts costs_;
  RateMeter meter_;        ///< requests/s
  RateMeter byte_meter_;   ///< payload bytes/s
  sim::FluidResource engine_;  ///< single-threaded store engine
  Liveness live_ = Liveness::up;
  SimTime stalled_until_ = 0.0;
  /// Bumped by crash(); an operation that observes a different value after
  /// a resource charge knows its transfer raced the failure.
  std::uint64_t incarnation_ = 0;

  // Observability handles (null when hooks_.obs is not set).
  obs::Histogram* h_put_ = nullptr;    ///< kv.put.service (s)
  obs::Histogram* h_get_ = nullptr;    ///< kv.get.service (s)
  obs::Gauge* g_queue_ = nullptr;      ///< kv.n<id>.queue_depth
  obs::Gauge* g_mem_ = nullptr;        ///< kv.n<id>.mem_bytes (watermark)
  std::size_t inflight_ = 0;

  // Tiered memory (all null/empty until attach_tier; the instruments are
  // only created on tiered servers so untiered metric registries stay
  // byte-identical to builds without tiering).
  std::unique_ptr<StorageTier> tier_;
  SimTime heat_epoch_len_ = 1.0;
  obs::Counter* c_demotions_ = nullptr;   ///< tier.demotions (shared)
  obs::Counter* c_promotions_ = nullptr;  ///< tier.promotions (shared)
  obs::Counter* c_cold_hits_ = nullptr;   ///< tier.cold_hits (shared)
  obs::Gauge* g_tier_bytes_ = nullptr;    ///< tier.resident_bytes (shared)
  obs::Histogram* h_cold_ = nullptr;      ///< tier.cold_hit_latency (s)
};

}  // namespace memfss::kvstore
