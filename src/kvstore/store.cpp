#include "kvstore/store.hpp"

#include "hash/hashes.hpp"

namespace memfss::kvstore {

// --- Blob -----------------------------------------------------------------

Blob Blob::materialized(std::vector<std::uint8_t> bytes) {
  Blob b;
  b.size_ = bytes.size();
  b.checksum_ = memfss::hash::fnv1a(
      {reinterpret_cast<const char*>(bytes.data()), bytes.size()});
  b.data_ = std::move(bytes);
  return b;
}

Blob Blob::ghost(Bytes size, std::uint64_t tag) {
  Blob b;
  b.size_ = size;
  b.checksum_ = memfss::hash::mix64(size, tag);
  return b;
}

bool Blob::verify() const {
  if (data_.empty()) return !corrupted_;
  const auto actual = memfss::hash::fnv1a(
      {reinterpret_cast<const char*>(data_.data()), data_.size()});
  return actual == checksum_ && !corrupted_;
}

void Blob::corrupt_for_test() {
  corrupted_ = true;
  if (!data_.empty()) data_[data_.size() / 2] ^= 0x5a;
}

// --- Store ----------------------------------------------------------------

Store::Store(Bytes capacity, std::string auth_token)
    : capacity_(capacity), token_(std::move(auth_token)) {}

Status Store::check(std::string_view token) const {
  if (closed_) return {Errc::unavailable, "store closed"};
  if (!token_.empty() && token != token_) {
    ++stats_.auth_failures;
    return {Errc::permission, "bad auth token"};
  }
  return {};
}

Status Store::put(std::string_view token, std::string_view key, Blob value) {
  if (auto st = check(token); !st.ok()) return st;
  ++stats_.puts;
  const Bytes incoming = value.size() + kPerKeyOverhead;
  Bytes outgoing = 0;
  auto it = map_.find(std::string(key));
  if (it != map_.end()) outgoing = it->second.size() + kPerKeyOverhead;
  if (used_ - outgoing + incoming > capacity_)
    return {Errc::out_of_memory, "store capacity exceeded"};
  stats_.bytes_in += value.size();
  used_ = used_ - outgoing + incoming;
  map_[std::string(key)] = std::move(value);
  return {};
}

Result<Blob> Store::get(std::string_view token, std::string_view key) {
  if (auto st = check(token); !st.ok()) return st.error();
  ++stats_.gets;
  auto it = map_.find(std::string(key));
  if (it == map_.end()) {
    ++stats_.misses;
    return Error{Errc::not_found, std::string(key)};
  }
  ++stats_.hits;
  stats_.bytes_out += it->second.size();
  return it->second;
}

Result<bool> Store::exists(std::string_view token,
                           std::string_view key) const {
  if (auto st = check(token); !st.ok()) return st.error();
  return map_.count(std::string(key)) > 0;
}

Status Store::del(std::string_view token, std::string_view key) {
  if (auto st = check(token); !st.ok()) return st;
  ++stats_.dels;
  auto it = map_.find(std::string(key));
  if (it == map_.end()) return {Errc::not_found, std::string(key)};
  used_ -= it->second.size() + kPerKeyOverhead;
  map_.erase(it);
  return {};
}

Result<Bytes> Store::value_size(std::string_view token,
                                std::string_view key) const {
  if (auto st = check(token); !st.ok()) return st.error();
  auto it = map_.find(std::string(key));
  if (it == map_.end()) return Error{Errc::not_found, std::string(key)};
  return it->second.size();
}

std::vector<std::string> Store::keys() const {
  std::vector<std::string> out;
  out.reserve(map_.size());
  for (const auto& [k, v] : map_) out.push_back(k);
  return out;
}

Bytes Store::clear() {
  const Bytes freed = used_;
  map_.clear();
  used_ = 0;
  return freed;
}

const Blob* Store::peek(std::string_view key) const {
  auto it = map_.find(std::string(key));
  return it == map_.end() ? nullptr : &it->second;
}

Status Store::corrupt_for_test(std::string_view key) {
  auto it = map_.find(std::string(key));
  if (it == map_.end()) return {Errc::not_found, std::string(key)};
  it->second.corrupt_for_test();
  return {};
}

std::optional<Blob> Store::drain(std::string_view key) {
  auto it = map_.find(std::string(key));
  if (it == map_.end()) return std::nullopt;
  Blob b = std::move(it->second);
  used_ -= b.size() + kPerKeyOverhead;
  map_.erase(it);
  return b;
}

Status Store::restore(std::string_view key, Blob value) {
  const Bytes incoming = value.size() + kPerKeyOverhead;
  Bytes outgoing = 0;
  auto it = map_.find(std::string(key));
  if (it != map_.end()) outgoing = it->second.size() + kPerKeyOverhead;
  if (used_ - outgoing + incoming > capacity_)
    return {Errc::out_of_memory, "store capacity exceeded"};
  used_ = used_ - outgoing + incoming;
  map_[std::string(key)] = std::move(value);
  return {};
}

}  // namespace memfss::kvstore
