#include "kvstore/store.hpp"

#include <algorithm>

#include "hash/hashes.hpp"

namespace memfss::kvstore {

// --- Blob -----------------------------------------------------------------

Blob Blob::materialized(std::vector<std::uint8_t> bytes) {
  Blob b;
  b.size_ = bytes.size();
  b.checksum_ = memfss::hash::fnv1a(
      {reinterpret_cast<const char*>(bytes.data()), bytes.size()});
  b.data_ = std::move(bytes);
  return b;
}

Blob Blob::ghost(Bytes size, std::uint64_t tag) {
  Blob b;
  b.size_ = size;
  b.checksum_ = memfss::hash::mix64(size, tag);
  return b;
}

bool Blob::verify() const {
  if (data_.empty()) return !corrupted_;
  const auto actual = memfss::hash::fnv1a(
      {reinterpret_cast<const char*>(data_.data()), data_.size()});
  return actual == checksum_ && !corrupted_;
}

void Blob::corrupt_for_test() {
  corrupted_ = true;
  if (!data_.empty()) data_[data_.size() / 2] ^= 0x5a;
}

// --- Store ----------------------------------------------------------------

Store::Store(Bytes capacity, std::string auth_token)
    : capacity_(capacity), token_(std::move(auth_token)) {}

Status Store::check(std::string_view token) const {
  if (closed_) return {Errc::unavailable, "store closed"};
  if (!token_.empty() && token != token_) {
    ++stats_.auth_failures;
    return {Errc::permission, "bad auth token"};
  }
  return {};
}

Status Store::put(std::string_view token, std::string_view key, Blob value) {
  if (auto st = check(token); !st.ok()) return st;
  ++stats_.puts;
  const Bytes incoming = value.size() + kPerKeyOverhead;
  Bytes outgoing = 0;
  auto it = map_.find(std::string(key));
  if (it != map_.end()) outgoing = it->second.size() + kPerKeyOverhead;
  if (used_ - outgoing + incoming > capacity_)
    return {Errc::out_of_memory, "store capacity exceeded"};
  stats_.bytes_in += value.size();
  used_ = used_ - outgoing + incoming;
  map_[std::string(key)] = std::move(value);
  return {};
}

Result<Blob> Store::get(std::string_view token, std::string_view key) {
  if (auto st = check(token); !st.ok()) return st.error();
  ++stats_.gets;
  auto it = map_.find(std::string(key));
  if (it == map_.end()) {
    ++stats_.misses;
    return Error{Errc::not_found, std::string(key)};
  }
  ++stats_.hits;
  stats_.bytes_out += it->second.size();
  return it->second;
}

Result<bool> Store::exists(std::string_view token,
                           std::string_view key) const {
  if (auto st = check(token); !st.ok()) return st.error();
  return map_.count(std::string(key)) > 0;
}

Status Store::del(std::string_view token, std::string_view key) {
  if (auto st = check(token); !st.ok()) return st;
  ++stats_.dels;
  auto it = map_.find(std::string(key));
  if (it == map_.end()) return {Errc::not_found, std::string(key)};
  used_ -= it->second.size() + kPerKeyOverhead;
  map_.erase(it);
  heat_.erase(std::string(key));
  return {};
}

Result<Bytes> Store::value_size(std::string_view token,
                                std::string_view key) const {
  if (auto st = check(token); !st.ok()) return st.error();
  auto it = map_.find(std::string(key));
  if (it == map_.end()) return Error{Errc::not_found, std::string(key)};
  return it->second.size();
}

std::vector<std::string> Store::keys() const {
  std::vector<std::string> out;
  out.reserve(map_.size());
  for (const auto& [k, v] : map_) out.push_back(k);
  return out;
}

Bytes Store::clear() {
  const Bytes freed = used_;
  map_.clear();
  heat_.clear();
  used_ = 0;
  return freed;
}

const Blob* Store::peek(std::string_view key) const {
  auto it = map_.find(std::string(key));
  return it == map_.end() ? nullptr : &it->second;
}

Status Store::corrupt_for_test(std::string_view key) {
  auto it = map_.find(std::string(key));
  if (it == map_.end()) return {Errc::not_found, std::string(key)};
  it->second.corrupt_for_test();
  return {};
}

std::optional<Blob> Store::drain(std::string_view key) {
  auto it = map_.find(std::string(key));
  if (it == map_.end()) return std::nullopt;
  Blob b = std::move(it->second);
  used_ -= b.size() + kPerKeyOverhead;
  map_.erase(it);
  heat_.erase(std::string(key));
  return b;
}

// --- access heat (tiered memory, DESIGN.md §16) -----------------------------

std::uint64_t Store::decay_heat(std::uint64_t counter, std::uint64_t from,
                                std::uint64_t to) {
  if (to <= from) return counter;  // clock never runs heat backwards
  const std::uint64_t delta = to - from;
  return delta >= 64 ? 0 : counter >> delta;
}

void Store::touch_heat(std::string_view key, std::uint64_t epoch) {
  auto& h = heat_[std::string(key)];
  h.counter =
      std::min(kHeatCap, decay_heat(h.counter, h.epoch, epoch) + kHeatQuantum);
  if (epoch > h.epoch) h.epoch = epoch;
  h.seq = ++heat_seq_;
}

std::uint64_t Store::heat_of(std::string_view key, std::uint64_t epoch) const {
  auto it = heat_.find(std::string(key));
  if (it == heat_.end()) return 0;
  return decay_heat(it->second.counter, it->second.epoch, epoch);
}

std::vector<std::string> Store::keys_by_heat(std::uint64_t epoch) const {
  struct Rank {
    std::uint64_t heat;
    std::uint64_t seq;
    const std::string* key;
  };
  std::vector<Rank> ranks;
  ranks.reserve(map_.size());
  for (const auto& [k, v] : map_) {
    std::uint64_t heat = 0, seq = 0;
    if (auto it = heat_.find(k); it != heat_.end()) {
      heat = decay_heat(it->second.counter, it->second.epoch, epoch);
      seq = it->second.seq;
    }
    ranks.push_back({heat, seq, &k});
  }
  // (heat, seq, key) is a total order over distinct keys, so the result
  // is independent of unordered_map iteration order -- demotion picks
  // replay bit-identically across runs and platforms.
  std::sort(ranks.begin(), ranks.end(), [](const Rank& a, const Rank& b) {
    if (a.heat != b.heat) return a.heat < b.heat;
    if (a.seq != b.seq) return a.seq < b.seq;
    return *a.key < *b.key;
  });
  std::vector<std::string> out;
  out.reserve(ranks.size());
  for (const auto& r : ranks) out.push_back(*r.key);
  return out;
}

Status Store::restore(std::string_view key, Blob value) {
  const Bytes incoming = value.size() + kPerKeyOverhead;
  Bytes outgoing = 0;
  auto it = map_.find(std::string(key));
  if (it != map_.end()) outgoing = it->second.size() + kPerKeyOverhead;
  if (used_ - outgoing + incoming > capacity_)
    return {Errc::out_of_memory, "store capacity exceeded"};
  used_ = used_ - outgoing + incoming;
  map_[std::string(key)] = std::move(value);
  return {};
}

}  // namespace memfss::kvstore
