#include "kvstore/rate_meter.hpp"

#include <cmath>

namespace memfss::kvstore {

RateMeter::RateMeter(double halflife) : halflife_(halflife) {}

double RateMeter::decay_factor(SimTime dt) const {
  return std::exp2(-dt / halflife_);
}

void RateMeter::record(SimTime t, double count) {
  if (t > last_) {
    weight_ *= decay_factor(t - last_);
    last_ = t;
  }
  weight_ += count;
  total_ += count;
}

double RateMeter::rate(SimTime t) const {
  const double w = t > last_ ? weight_ * decay_factor(t - last_) : weight_;
  // The decayed mass integrates events over an effective window of
  // halflife / ln 2 seconds.
  const double window = halflife_ / std::log(2.0);
  return w / window;
}

}  // namespace memfss::kvstore
