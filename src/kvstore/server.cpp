#include "kvstore/server.hpp"

#include <vector>

#include "common/str.hpp"
#include "sim/sync.hpp"

namespace memfss::kvstore {

Server::Server(sim::Simulator& sim, net::Fabric& fabric, NodeId node,
               Bytes store_capacity, std::string auth_token,
               ResourceHooks hooks, ServerCosts costs)
    : sim_(sim),
      fabric_(fabric),
      node_(node),
      store_(store_capacity, std::move(auth_token)),
      hooks_(hooks),
      costs_(costs),
      engine_(sim, costs.engine_cores, "kv-engine") {
  if (hooks_.obs) {
    auto& m = hooks_.obs->metrics;
    h_put_ = &m.histogram("kv.put.service");
    h_get_ = &m.histogram("kv.get.service");
    g_queue_ = &m.gauge(strformat("kv.n%u.queue_depth", node_));
    g_mem_ = &m.gauge(strformat("kv.n%u.mem_bytes", node_));
  }
}

void Server::enter_request() {
  ++inflight_;
  if (g_queue_) g_queue_->set(static_cast<double>(inflight_));
}

void Server::leave_request() {
  --inflight_;
  if (g_queue_) g_queue_->set(static_cast<double>(inflight_));
  if (g_mem_) g_mem_->set(static_cast<double>(store_.used()));
}

double Server::request_rate() const { return meter_.rate(sim_.now()); }

double Server::byte_rate() const { return byte_meter_.rate(sim_.now()); }

void Server::close() { store_.close(); }

void Server::wipe() {
  const Bytes freed = store_.clear();
  if (hooks_.mem && freed > 0) hooks_.mem->free(freed);
  if (tier_) {
    const Bytes cold = tier_->clear();
    if (g_tier_bytes_ && cold > 0)
      g_tier_bytes_->add(-static_cast<double>(cold));
  }
}

// --- tiered hot/cold memory (DESIGN.md §16) ---------------------------------

void Server::attach_tier(std::unique_ptr<StorageTier> tier,
                         SimTime heat_epoch) {
  tier_ = std::move(tier);
  heat_epoch_len_ = heat_epoch > 0 ? heat_epoch : 1.0;
  if (hooks_.obs && tier_) {
    auto& m = hooks_.obs->metrics;
    c_demotions_ = &m.counter("tier.demotions");
    c_promotions_ = &m.counter("tier.promotions");
    c_cold_hits_ = &m.counter("tier.cold_hits");
    g_tier_bytes_ = &m.gauge("tier.resident_bytes");
    h_cold_ = &m.histogram("tier.cold_hit_latency");
  }
}

std::uint64_t Server::heat_epoch_now() const {
  return static_cast<std::uint64_t>(sim_.now() / heat_epoch_len_);
}

void Server::touch_heat(const std::string& key) {
  if (tier_) store_.touch_heat(key, heat_epoch_now());
}

bool Server::holds(std::string_view key) const {
  return store_.peek(key) != nullptr || (tier_ && tier_->contains(key));
}

Result<Bytes> Server::resident_size(std::string_view token,
                                    std::string_view key) const {
  auto hot = store_.value_size(token, key);
  if (hot.ok() || hot.code() != Errc::not_found) return hot;
  if (tier_) {
    if (auto cold = tier_->value_size(key); cold.ok()) return cold;
  }
  return hot;
}

std::vector<std::string> Server::all_keys() const {
  auto out = store_.keys();
  if (tier_) {
    auto cold = tier_->keys();
    out.insert(out.end(), std::make_move_iterator(cold.begin()),
               std::make_move_iterator(cold.end()));
  }
  return out;
}

std::vector<std::string> Server::demotion_order() const {
  return store_.keys_by_heat(heat_epoch_now());
}

sim::Task<> Server::charge_tier(Bytes payload, bool write) {
  if (!tier_) co_return;
  std::vector<sim::Task<>> work;
  const SimTime device =
      write ? tier_->write_cost(payload) : tier_->read_cost(payload);
  work.push_back([](sim::Simulator& s, SimTime d) -> sim::Task<> {
    co_await s.delay(d);
  }(sim_, device));
  // The demote/promote copy is server work like any request: it funnels
  // through the single-threaded engine and moves the payload over the
  // memory bus once.
  const double cycles = costs_.cpu_per_request +
                        costs_.cpu_per_byte * static_cast<double>(payload);
  work.push_back(engine_.consume(cycles, 1.0));
  if (hooks_.cpu) work.push_back(hooks_.cpu->consume(cycles, 1.0));
  if (hooks_.membw && payload > 0) {
    work.push_back(hooks_.membw->consume(
        costs_.membw_per_byte * static_cast<double>(payload)));
  }
  co_await sim::when_all(sim_, std::move(work));
}

bool Server::reinstall_hot(const std::string& key) {
  if (!tier_ || !tier_->contains(key)) return false;
  const auto size = tier_->value_size(key);
  if (!size.ok()) return false;
  const Bytes accounted = size.value() + Store::kPerKeyOverhead;
  if (store_.available() < accounted) return false;
  if (hooks_.mem && !hooks_.mem->try_alloc(accounted)) return false;
  auto blob = tier_->take(key);
  if (!blob) {  // unreachable single-threaded, but keep accounting exact
    if (hooks_.mem) hooks_.mem->free(accounted);
    return false;
  }
  if (!store_.restore(key, std::move(*blob)).ok()) {
    if (hooks_.mem) hooks_.mem->free(accounted);
    return false;
  }
  if (g_tier_bytes_) g_tier_bytes_->add(-static_cast<double>(accounted));
  if (c_promotions_) c_promotions_->inc();
  return true;
}

sim::Task<Status> Server::demote_key(std::string key) {
  if (!tier_) co_return Status{Errc::invalid_argument, "no cold tier"};
  if (live_ == Liveness::down)
    co_return Status{Errc::unavailable, "node down"};
  const Blob* b = store_.peek(key);
  if (b == nullptr) co_return Status{Errc::not_found, key};
  if (tier_->available() < b->size() + Store::kPerKeyOverhead)
    co_return Status{Errc::out_of_memory, "cold tier full"};
  const std::uint64_t inc = incarnation_;
  // Device write is charged *before* the move: a crash landing inside it
  // aborts with the entry still hot -- never resident in both tiers,
  // never half-moved.
  co_await charge_tier(b->size(), /*write=*/true);
  if (live_ == Liveness::down || incarnation_ != inc)
    co_return Status{Errc::io_error, "server died mid-demotion"};
  // Re-validate after the await: a concurrent writer may have replaced or
  // deleted the entry, and a concurrent demotion may have won the space.
  const Blob* hot = store_.peek(key);
  if (hot == nullptr) co_return Status{Errc::not_found, key};
  const Bytes accounted = hot->size() + Store::kPerKeyOverhead;
  // Copy into the tier before dropping the hot entry: a tier refusal then
  // leaves the entry exactly where it was. The moves below are synchronous
  // (no awaits), so no request ever observes the key in both tiers.
  if (auto st = tier_->put(key, *hot); !st.ok()) co_return st;
  (void)store_.drain(key);
  if (hooks_.mem) hooks_.mem->free(accounted);
  if (g_tier_bytes_) g_tier_bytes_->add(static_cast<double>(accounted));
  if (c_demotions_) c_demotions_->inc();
  co_return Status{};
}

sim::Task<Status> Server::promote_key(std::string key) {
  if (!tier_) co_return Status{Errc::invalid_argument, "no cold tier"};
  if (live_ == Liveness::down)
    co_return Status{Errc::unavailable, "node down"};
  const auto size = tier_->value_size(key);
  if (!size.ok()) co_return Status{Errc::not_found, key};
  const std::uint64_t inc = incarnation_;
  co_await charge_tier(size.value(), /*write=*/false);
  if (live_ == Liveness::down || incarnation_ != inc)
    co_return Status{Errc::io_error, "server died mid-promotion"};
  if (!reinstall_hot(key)) {
    if (!tier_->contains(key))
      co_return Status{Errc::not_found, key};  // raced a migration
    co_return Status{Errc::out_of_memory, "hot tier full"};
  }
  touch_heat(key);
  co_return Status{};
}

void Server::crash() {
  if (live_ == Liveness::down) return;
  live_ = Liveness::down;
  ++incarnation_;
  wipe();           // in-memory data is gone with the process
  store_.close();   // direct store users (drain paths) see unavailable
}

void Server::stall_for(SimTime duration) {
  if (live_ == Liveness::down || duration <= 0) return;
  live_ = Liveness::stalled;
  const SimTime until = sim_.now() + duration;
  if (until > stalled_until_) stalled_until_ = until;
  sim_.schedule(duration, [this] {
    if (live_ == Liveness::stalled && sim_.now() >= stalled_until_)
      live_ = Liveness::up;
  });
}

sim::Task<> Server::stall_gate() {
  while (live_ == Liveness::stalled && sim_.now() < stalled_until_)
    co_await sim_.delay(stalled_until_ - sim_.now());
}

sim::Task<> Server::charge(NodeId client, Bytes payload, bool to_client) {
  meter_.record(sim_.now());
  byte_meter_.record(sim_.now(), static_cast<double>(payload));
  std::vector<sim::Task<>> work;
  // Wire: the payload moves between client and server under the scavenge
  // bandwidth cap (if any).
  const NodeId src = to_client ? node_ : client;
  const NodeId dst = to_client ? client : node_;
  work.push_back(fabric_.transfer(src, dst, payload, net::Fabric::kUncapped,
                                  hooks_.net_cap));
  const double cycles = costs_.cpu_per_request +
                        costs_.cpu_per_byte * static_cast<double>(payload);
  // The single-threaded engine is the per-server service-rate limit; the
  // same cycles also land on the node CPU so telemetry and contention
  // with co-located work stay correct.
  work.push_back(engine_.consume(cycles, 1.0));
  if (hooks_.cpu) work.push_back(hooks_.cpu->consume(cycles, 1.0));
  if (hooks_.membw && payload > 0) {
    work.push_back(hooks_.membw->consume(
        costs_.membw_per_byte * static_cast<double>(payload)));
  }
  co_await sim::when_all(sim_, std::move(work));
}

sim::Task<Status> Server::put(NodeId client, std::string_view token,
                              std::string key, Blob value) {
  const SimTime t0 = sim_.now();
  enter_request();
  Status st =
      co_await put_impl(client, token, std::move(key), std::move(value));
  leave_request();
  if (h_put_) h_put_->add(sim_.now() - t0);
  if (hooks_.obs && hooks_.obs->tracer.enabled(obs::Component::kvstore))
    hooks_.obs->tracer.span(obs::Component::kvstore, node_, "kv.put", t0,
                            st.ok() ? "" : "err");
  co_return st;
}

sim::Task<Result<Blob>> Server::get(NodeId client, std::string_view token,
                                    std::string key) {
  const SimTime t0 = sim_.now();
  enter_request();
  Result<Blob> r = co_await get_impl(client, token, std::move(key));
  leave_request();
  if (h_get_) h_get_->add(sim_.now() - t0);
  if (hooks_.obs && hooks_.obs->tracer.enabled(obs::Component::kvstore))
    hooks_.obs->tracer.span(obs::Component::kvstore, node_, "kv.get", t0,
                            r.ok() ? "" : "err");
  co_return r;
}

sim::Task<Status> Server::put_impl(NodeId client, std::string_view token,
                                   std::string key, Blob value) {
  // A cut forward link fails fast (no route), like ENETUNREACH. A cut
  // *reverse* link is deliberately not checked here: the request lands
  // and executes but the reply stalls, so the client sees a timeout --
  // the observable signature of an asymmetric partition.
  if (!fabric_.reachable(client, node_))
    co_return Status{Errc::unreachable, "no route to node"};
  // Request envelope to the server, then payload + processing, then reply.
  co_await fabric_.message(client, node_);
  if (live_ == Liveness::down)  // connection refused
    co_return Status{Errc::unavailable, "node down"};
  co_await stall_gate();
  const std::uint64_t inc = incarnation_;
  const Bytes payload = value.size();
  co_await charge(client, payload, /*to_client=*/false);
  if (live_ == Liveness::down || incarnation_ != inc)
    co_return Status{Errc::io_error, "server died mid-transfer"};
  // The pool mirror must track overwrites the way the store does: a put
  // onto an existing key (client retry whose first attempt landed, repair
  // re-replicating onto a holder) releases the replaced value's bytes.
  Bytes replaced = 0;
  if (const Blob* old = store_.peek(key))
    replaced = old->size() + Store::kPerKeyOverhead;
  Status st = store_.put(token, key, std::move(value));
  if (st.ok() && hooks_.mem) {
    if (replaced > 0) hooks_.mem->free(replaced);
    if (!hooks_.mem->try_alloc(payload + Store::kPerKeyOverhead)) {
      // Node memory exhausted even though the store cap allowed it:
      // undo and report. (Store cap <= node memory normally prevents this.)
      (void)store_.del(token, key);
      st = Status{Errc::out_of_memory, "node memory exhausted"};
    }
  }
  if (st.ok() && tier_ && tier_->contains(key)) {
    // Overwrite of a cold-resident key: the fresh hot value is
    // authoritative -- drop the stale cold copy so the key is never
    // resident in both tiers.
    const auto stale = tier_->value_size(key);
    if (tier_->del(key).ok() && g_tier_bytes_ && stale.ok())
      g_tier_bytes_->add(
          -static_cast<double>(stale.value() + Store::kPerKeyOverhead));
  }
  if (st.ok()) touch_heat(key);
  co_await fabric_.message(node_, client);
  co_return st;
}

sim::Task<Result<Blob>> Server::get_impl(NodeId client,
                                         std::string_view token,
                                         std::string key) {
  if (!fabric_.reachable(client, node_))
    co_return Error{Errc::unreachable, "no route to node"};
  co_await fabric_.message(client, node_);
  if (live_ == Liveness::down)
    co_return Error{Errc::unavailable, "node down"};
  co_await stall_gate();
  const std::uint64_t inc = incarnation_;
  Result<Blob> r = store_.get(token, key);
  if (r.ok()) touch_heat(key);
  bool cold_hit = false;
  const SimTime cold_t0 = sim_.now();
  if (!r.ok() && r.code() == Errc::not_found && tier_ &&
      tier_->contains(key)) {
    // Transparent cold hit: fetch from the tier (charging the device
    // read), serve the bytes, and promote-on-access so the next read is
    // hot. The hit is served even if promotion fails for space -- the
    // entry just stays cold.
    auto cold = tier_->get(key);
    if (cold.ok()) {
      cold_hit = true;
      co_await charge_tier(cold.value().size(), /*write=*/false);
      if (live_ == Liveness::down || incarnation_ != inc)
        co_return Error{Errc::io_error, "server died mid-transfer"};
      if (c_cold_hits_) c_cold_hits_->inc();
      if (reinstall_hot(key)) touch_heat(key);
      r = std::move(cold).value();
    }
  }
  const Bytes payload = r.ok() ? r.value().size() : 0;
  co_await charge(client, payload, /*to_client=*/true);
  if (live_ == Liveness::down || incarnation_ != inc)
    co_return Error{Errc::io_error, "server died mid-transfer"};
  co_await fabric_.message(node_, client);
  if (cold_hit && h_cold_) h_cold_->add(sim_.now() - cold_t0);
  co_return r;
}

sim::Task<Result<bool>> Server::exists(NodeId client, std::string_view token,
                                       std::string key) {
  if (!fabric_.reachable(client, node_))
    co_return Error{Errc::unreachable, "no route to node"};
  co_await fabric_.message(client, node_);
  if (live_ == Liveness::down)
    co_return Error{Errc::unavailable, "node down"};
  co_await stall_gate();
  meter_.record(sim_.now());
  Result<bool> r = store_.exists(token, key);
  if (r.ok() && !r.value() && tier_ && tier_->contains(key)) r = true;
  co_await fabric_.message(node_, client);
  co_return r;
}

sim::Task<Status> Server::del(NodeId client, std::string_view token,
                              std::string key) {
  if (!fabric_.reachable(client, node_))
    co_return Status{Errc::unreachable, "no route to node"};
  co_await fabric_.message(client, node_);
  if (live_ == Liveness::down)
    co_return Status{Errc::unavailable, "node down"};
  co_await stall_gate();
  meter_.record(sim_.now());
  Bytes freed = 0;
  if (auto sz = store_.value_size(token, key); sz.ok())
    freed = sz.value() + Store::kPerKeyOverhead;
  Status st = store_.del(token, key);
  if (st.ok() && hooks_.mem && freed > 0) hooks_.mem->free(freed);
  if (st.code() == Errc::not_found && tier_ && tier_->contains(key)) {
    // Cold-resident delete: no node memory to release (the bytes live in
    // the tier, outside the pool).
    const auto cold = tier_->value_size(key);
    if (tier_->del(key).ok()) {
      st = Status{};
      if (g_tier_bytes_ && cold.ok())
        g_tier_bytes_->add(
            -static_cast<double>(cold.value() + Store::kPerKeyOverhead));
    }
  }
  co_await fabric_.message(node_, client);
  co_return st;
}

sim::Task<> Server::request_burst(NodeId client, double count) {
  if (count <= 0.0 || live_ == Liveness::down) co_return;
  co_await stall_gate();
  meter_.record(sim_.now(), count);
  std::vector<sim::Task<>> work;
  // Request envelopes on the wire (aggregated into one transfer).
  work.push_back(fabric_.transfer(client, node_,
                                  static_cast<Bytes>(count * 64.0),
                                  net::Fabric::kUncapped, hooks_.net_cap));
  work.push_back(engine_.consume(costs_.cpu_per_request * count, 1.0));
  if (hooks_.cpu)
    work.push_back(hooks_.cpu->consume(costs_.cpu_per_request * count, 1.0));
  co_await sim::when_all(sim_, std::move(work));
}

sim::Task<Status> Server::replicate_key(std::string_view token,
                                        std::string key, Server& dst) {
  auto blob = store_.get(token, key);
  if (!blob.ok() && blob.code() == Errc::not_found && tier_) {
    // Repair may source from a cold-resident copy: read it in place
    // (charging the device) without promoting -- repair traffic should
    // not displace hot tenant bytes.
    auto cold = tier_->get(key);
    if (cold.ok()) {
      const std::uint64_t inc = incarnation_;
      co_await charge_tier(cold.value().size(), /*write=*/false);
      if (live_ == Liveness::down || incarnation_ != inc)
        co_return Status{Errc::unavailable, "node down"};
      co_return co_await dst.put(node_, token, std::move(key),
                                 std::move(cold).value());
    }
  }
  if (!blob.ok()) co_return Status{blob.error()};
  co_return co_await dst.put(node_, token, std::move(key),
                             std::move(blob).value());
}

sim::Task<Status> Server::migrate_key(std::string_view token, std::string key,
                                      Server& dst) {
  // Local read (no wire cost), bulk ship, remote write. Used by lazy
  // rebalance and by victim evacuation.
  bool was_cold = false;
  auto blob = store_.drain(key);
  if (!blob && tier_) {
    blob = tier_->take(key);
    was_cold = blob.has_value();
  }
  if (!blob) co_return Status{Errc::not_found, key};
  const Bytes payload = blob->size();
  if (was_cold) {
    if (g_tier_bytes_)
      g_tier_bytes_->add(
          -static_cast<double>(payload + Store::kPerKeyOverhead));
    const std::uint64_t inc = incarnation_;
    co_await charge_tier(payload, /*write=*/false);  // device read-out
    if (live_ == Liveness::down || incarnation_ != inc)
      co_return Status{Errc::unavailable, "node down"};
  } else if (hooks_.mem) {
    hooks_.mem->free(payload + Store::kPerKeyOverhead);
  }
  Status st = co_await dst.put(node_, token, key, *blob);
  if (!st.ok()) {
    // The destination refused or was unreachable/partitioned. Draining
    // already removed the local copy -- put it back so a failed
    // migration degrades to "not moved yet" instead of silent data loss.
    // (If this node died mid-flight, the crash wiped the store and
    // repair owns the data now; don't resurrect bytes into a wiped pool.)
    if (live_ != Liveness::down && was_cold) {
      // Cold copies go back where they came from -- unless a concurrent
      // writer re-created the key hot, in which case that value wins.
      if (store_.peek(key) == nullptr &&
          tier_->put(key, std::move(*blob)).ok() && g_tier_bytes_) {
        g_tier_bytes_->add(
            static_cast<double>(payload + Store::kPerKeyOverhead));
      }
    } else if (live_ != Liveness::down) {
      // A concurrent writer may have re-created the key while the failed
      // migration was in flight; restore overwrites it, so the pool
      // mirror must release the replaced bytes like put does.
      Bytes replaced = 0;
      if (const Blob* now = store_.peek(key))
        replaced = now->size() + Store::kPerKeyOverhead;
      if (!hooks_.mem ||
          hooks_.mem->try_alloc(payload + Store::kPerKeyOverhead)) {
        if (store_.restore(key, std::move(*blob)).ok()) {
          if (hooks_.mem && replaced > 0) hooks_.mem->free(replaced);
        } else if (hooks_.mem) {
          hooks_.mem->free(payload + Store::kPerKeyOverhead);
        }
      }
    }
  }
  co_return st;
}

}  // namespace memfss::kvstore
