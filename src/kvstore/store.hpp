// In-memory key-value store -- the Redis stand-in (paper §III-D).
//
// Pure data structure: no simulation dependencies, usable standalone (the
// quickstart example runs one in-process). Features mirrored from the
// paper's Redis usage:
//   - byte-blob values with memory-cap accounting (container memory limit,
//     §III-F): puts beyond the cap fail with out_of_memory;
//   - AUTH: operations carry a token checked against the store's;
//   - eviction/evacuation: close() flips the store to `unavailable` and
//     the owner drains keys for migration.
//
// A single Store instance is not thread-safe and performs no locking:
// in the simulator everything runs on one logical thread. The concurrent
// deployment is rt::ShardedStore (src/rt/sharded_store.hpp), which
// partitions keys over many Store shards, one mutex each, with atomic
// aggregate accounting -- see DESIGN.md §11 for the concurrency model.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "kvstore/blob.hpp"

namespace memfss::kvstore {

struct StoreStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t dels = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t auth_failures = 0;
  Bytes bytes_in = 0;
  Bytes bytes_out = 0;
};

class Store {
 public:
  /// `capacity`: memory cap in bytes. `auth_token`: required by every
  /// operation (empty disables auth, like a Redis with no requirepass).
  Store(Bytes capacity, std::string auth_token = {});

  Bytes capacity() const { return capacity_; }
  Bytes used() const { return used_; }
  Bytes available() const { return capacity_ - used_; }
  std::size_t key_count() const { return map_.size(); }
  const StoreStats& stats() const { return stats_; }
  bool closed() const { return closed_; }

  /// Store/overwrite a value. Fails with out_of_memory past the cap and
  /// permission on a bad token.
  Status put(std::string_view token, std::string_view key, Blob value);

  /// Fetch a value.
  Result<Blob> get(std::string_view token, std::string_view key);

  /// Presence check (no bytes_out accounting).
  Result<bool> exists(std::string_view token, std::string_view key) const;

  /// Delete; not_found if absent.
  Status del(std::string_view token, std::string_view key);

  /// Size of a stored value without fetching it.
  Result<Bytes> value_size(std::string_view token,
                           std::string_view key) const;

  /// All keys (for evacuation / rebalance scans).
  std::vector<std::string> keys() const;

  /// Stop serving: every later operation fails with `unavailable`.
  /// Stored data remains readable via drain().
  void close() { closed_ = true; }

  /// Remove and return one key's value regardless of closed state
  /// (the evacuation path uses this after close()).
  std::optional<Blob> drain(std::string_view key);

  /// Inverse of drain(): put a value back, bypassing auth and closed
  /// state. Owner-side only -- the evacuation path uses it to undo a
  /// drain whose migration failed (e.g. destination unreachable), so the
  /// data survives until a later retry or repair.
  Status restore(std::string_view key, Blob value);

  /// Drop everything; returns the bytes that were accounted (payloads +
  /// per-key overhead) so owners can release external accounting.
  Bytes clear();

  /// Zero-cost inspection (scrubber internals); nullptr if absent.
  const Blob* peek(std::string_view key) const;

  /// Test hook: damage a stored value so scrub/fault-injection tests have
  /// something to detect.
  Status corrupt_for_test(std::string_view key);

  // --- access heat (tiered memory, DESIGN.md §16) ---------------------------
  //
  // Sampled recency+frequency counters: each access adds kHeatQuantum and
  // the counter halves per elapsed decay epoch (a right shift -- exact
  // integer math, so replays are bit-identical). Epochs are supplied by
  // the caller (the Server derives them from sim time), keeping the store
  // free of simulation dependencies. O(1) per access.

  /// Record one access to `key` at decay epoch `epoch`. Epochs that run
  /// backwards are clamped (no underflow); the counter saturates at
  /// kHeatCap (no overflow).
  void touch_heat(std::string_view key, std::uint64_t epoch);

  /// Decayed heat of `key` as observed at `epoch`; 0 if never touched.
  std::uint64_t heat_of(std::string_view key, std::uint64_t epoch) const;

  /// Every resident key ordered coldest-first at `epoch`: ascending
  /// (decayed heat, last-touch sequence, key) -- a deterministic total
  /// order. Demotion victims are always a prefix of this list.
  std::vector<std::string> keys_by_heat(std::uint64_t epoch) const;

  /// Heat added per access; the halving decay needs headroom below the
  /// quantum to distinguish "accessed long ago" from "never accessed".
  static constexpr std::uint64_t kHeatQuantum = 256;
  /// Saturation ceiling (~2^40): far above any achievable access rate,
  /// low enough that counter + quantum can never wrap.
  static constexpr std::uint64_t kHeatCap = std::uint64_t{1} << 40;

  /// Bytes of bookkeeping charged per key in addition to the payload.
  static constexpr Bytes kPerKeyOverhead = 64;

 private:
  Status check(std::string_view token) const;

  struct HeatEntry {
    std::uint64_t counter = 0;  ///< decayed-to-`epoch` heat value
    std::uint64_t epoch = 0;    ///< epoch the counter was last folded at
    std::uint64_t seq = 0;      ///< global access sequence (recency tiebreak)
  };
  /// `counter` halved once per epoch between `from` and `to` (shifts of
  /// 64+ flush to zero -- extreme sim-time deltas cannot overflow the
  /// shift count into UB).
  static std::uint64_t decay_heat(std::uint64_t counter, std::uint64_t from,
                                  std::uint64_t to);

  Bytes capacity_;
  std::string token_;
  bool closed_ = false;
  Bytes used_ = 0;
  std::unordered_map<std::string, Blob> map_;
  std::unordered_map<std::string, HeatEntry> heat_;
  std::uint64_t heat_seq_ = 0;
  mutable StoreStats stats_;
};

}  // namespace memfss::kvstore
