// StorageTier: pluggable slow-tier backend for the hot/cold memory
// hierarchy (DESIGN.md §16).
//
// The hot tier is the node's in-memory Store; a StorageTier is the place
// cold data is demoted to -- a simulated local disk or far-memory segment
// with its own capacity and a bandwidth/latency cost model. The tier is a
// pure data structure like Store (no simulation dependencies): it reports
// device *costs* in seconds and the owner (kvstore::Server) charges them
// against simulated time. Tier-resident bytes are deliberately NOT part
// of the node's MemoryPool: demotion is what gives reclaimed RAM back to
// the tenant.
//
// Accounting matches the hot store byte-for-byte (payload plus
// Store::kPerKeyOverhead per key) so the tiering conservation invariant
// -- hot_bytes + cold_bytes == accounted bytes -- holds at every event
// boundary.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "kvstore/blob.hpp"
#include "kvstore/store.hpp"

namespace memfss::kvstore {

/// Cost model of a cold-tier device. Defaults approximate a fast NVMe /
/// far-memory segment: sub-millisecond access, GB/s-class streaming.
struct TierCosts {
  Rate read_bw = 2.0e9;             ///< device read bandwidth (B/s)
  Rate write_bw = 1.2e9;            ///< device write bandwidth (B/s)
  SimTime access_latency = 200e-6;  ///< fixed per-operation latency (s)
};

struct TierStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t dels = 0;
  Bytes bytes_in = 0;
  Bytes bytes_out = 0;
};

class StorageTier {
 public:
  virtual ~StorageTier() = default;

  virtual std::string_view name() const = 0;
  virtual Bytes capacity() const = 0;
  virtual Bytes used() const = 0;
  virtual std::size_t key_count() const = 0;
  Bytes available() const { return capacity() - used(); }

  /// Store a value; out_of_memory past the capacity (no partial writes).
  virtual Status put(std::string_view key, Blob value) = 0;
  /// Copy of a resident value; not_found if absent.
  virtual Result<Blob> get(std::string_view key) const = 0;
  /// Remove and return a value (promotion / migration path).
  virtual std::optional<Blob> take(std::string_view key) = 0;
  virtual Status del(std::string_view key) = 0;
  virtual bool contains(std::string_view key) const = 0;
  virtual Result<Bytes> value_size(std::string_view key) const = 0;
  /// Resident keys in deterministic (sorted) order.
  virtual std::vector<std::string> keys() const = 0;
  /// Drop everything; returns the bytes that were accounted.
  virtual Bytes clear() = 0;

  /// Device time to read / write a payload of `n` bytes.
  virtual SimTime read_cost(Bytes n) const = 0;
  virtual SimTime write_cost(Bytes n) const = 0;

  virtual const TierStats& stats() const = 0;
};

/// The default StorageTier: an in-process map behind the TierCosts model.
class ColdTier final : public StorageTier {
 public:
  explicit ColdTier(Bytes capacity, TierCosts costs = {});

  std::string_view name() const override { return "cold"; }
  Bytes capacity() const override { return capacity_; }
  Bytes used() const override { return used_; }
  std::size_t key_count() const override { return map_.size(); }

  Status put(std::string_view key, Blob value) override;
  Result<Blob> get(std::string_view key) const override;
  std::optional<Blob> take(std::string_view key) override;
  Status del(std::string_view key) override;
  bool contains(std::string_view key) const override;
  Result<Bytes> value_size(std::string_view key) const override;
  std::vector<std::string> keys() const override;
  Bytes clear() override;

  SimTime read_cost(Bytes n) const override;
  SimTime write_cost(Bytes n) const override;

  const TierStats& stats() const override { return stats_; }
  const TierCosts& costs() const { return costs_; }

 private:
  Bytes capacity_;
  TierCosts costs_;
  Bytes used_ = 0;
  // std::map: keys() iterates in sorted order, so every scan over the
  // tier is deterministic without an explicit sort.
  std::map<std::string, Blob, std::less<>> map_;
  mutable TierStats stats_;
};

}  // namespace memfss::kvstore
