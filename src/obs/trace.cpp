#include "obs/trace.hpp"

#include <algorithm>

#include "common/str.hpp"

namespace memfss::obs {

std::string_view component_name(Component c) {
  switch (c) {
    case Component::fs: return "fs";
    case Component::kvstore: return "kvstore";
    case Component::net: return "net";
    case Component::cluster: return "cluster";
    case Component::workflow: return "workflow";
    case Component::kCount: break;
  }
  return "?";
}

void Tracer::enable(Component c, bool on) {
  const std::uint32_t bit = 1u << static_cast<unsigned>(c);
  mask_ = on ? (mask_ | bit) : (mask_ & ~bit);
}

void Tracer::enable_all(bool on) {
  mask_ = on ? (1u << static_cast<unsigned>(Component::kCount)) - 1u : 0u;
}

void Tracer::set_capacity(std::size_t cap) {
  capacity_ = std::max<std::size_t>(cap, 1);
  while (events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_;
  }
}

void Tracer::push(TraceEvent ev) {
  ev.seq = next_seq_++;
  events_.push_back(std::move(ev));
  if (events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_;
  }
}

void Tracer::span(Component c, NodeId node, std::string_view name,
                  SimTime begin, std::string detail) {
  if (!enabled(c)) return;
  TraceEvent ev;
  ev.phase = 'X';
  ev.ts = begin;
  ev.dur = std::max(0.0, sim_.now() - begin);
  ev.comp = c;
  ev.node = node;
  ev.name = std::string(name);
  ev.detail = std::move(detail);
  push(std::move(ev));
}

void Tracer::instant(Component c, NodeId node, std::string_view name,
                     std::string detail) {
  if (!enabled(c)) return;
  TraceEvent ev;
  ev.phase = 'i';
  ev.ts = sim_.now();
  ev.dur = 0.0;
  ev.comp = c;
  ev.node = node;
  ev.name = std::string(name);
  ev.detail = std::move(detail);
  push(std::move(ev));
}

void Tracer::clear() {
  events_.clear();
  next_seq_ = 0;
  dropped_ = 0;
}

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          out += strformat("\\u%04x", ch);
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// Chrome trace tids are ints; map the invalid-node sentinel to -1.
long long tid_of(NodeId node) {
  return node == kInvalidNode ? -1ll : static_cast<long long>(node);
}

}  // namespace

std::string Tracer::chrome_json() const {
  // ts/dur are microseconds in the trace_event format.
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const auto& ev : events_) {
    if (!first) out += ",\n";
    first = false;
    out += strformat(
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"ts\":%.3f",
        json_escape(ev.name).c_str(),
        std::string(component_name(ev.comp)).c_str(), ev.phase,
        ev.ts * 1e6);
    if (ev.phase == 'X') out += strformat(",\"dur\":%.3f", ev.dur * 1e6);
    if (ev.phase == 'i') out += ",\"s\":\"t\"";
    out += strformat(",\"pid\":%u,\"tid\":%lld",
                     static_cast<unsigned>(ev.comp), tid_of(ev.node));
    if (!ev.detail.empty())
      out += ",\"args\":{\"detail\":\"" + json_escape(ev.detail) + "\"}";
    out += "}";
  }
  out += "\n],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{";
  out += strformat("\"recorded\":%llu,\"dropped\":%llu",
                   static_cast<unsigned long long>(next_seq_),
                   static_cast<unsigned long long>(dropped_));
  out += "}}\n";
  return out;
}

std::string Tracer::text_dump() const {
  std::string out;
  for (const auto& ev : events_) {
    out += strformat("%c t=%.9f", ev.phase, ev.ts);
    if (ev.phase == 'X') out += strformat(" dur=%.9f", ev.dur);
    out += strformat(" %s", std::string(component_name(ev.comp)).c_str());
    if (ev.node == kInvalidNode) {
      out += " n=-";
    } else {
      out += strformat(" n=%u", ev.node);
    }
    out += " " + ev.name;
    if (!ev.detail.empty()) out += " " + ev.detail;
    out += '\n';
  }
  return out;
}

}  // namespace memfss::obs
