// Observability bundle: one MetricsRegistry + one Tracer per simulated
// deployment. Owned by cluster::Cluster so every layer that can reach the
// cluster (fabric, servers, filesystem, fault injector, experiment
// drivers) shares a single accounting point, and independent scenarios
// in one process never mix their telemetry.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace memfss::obs {

struct Observability {
  MetricsRegistry metrics;
  Tracer tracer;

  explicit Observability(sim::Simulator& sim) : tracer(sim) {}
};

}  // namespace memfss::obs
