// MetricsRegistry: named counters, gauges, and log-scale latency
// histograms for the observability layer.
//
// Hot paths resolve their instruments once (counter()/gauge()/histogram()
// create-or-get; returned references stay valid for the registry's
// lifetime -- node-based map) and then update them with plain arithmetic.
// snapshot() copies every instrument into a value type at one instant, so
// reports never see a half-updated registry, and exports are sorted by
// name for deterministic output.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "obs/histogram.hpp"

namespace memfss::obs {

/// Monotone event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time level with a high-watermark (peak) memory.
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    if (v > peak_) peak_ = v;
  }
  void add(double delta) { set(value_ + delta); }
  double value() const { return value_; }
  double peak() const { return peak_; }

 private:
  double value_ = 0.0;
  double peak_ = 0.0;
};

/// One instrument in a snapshot (kind tells which fields are meaningful).
struct MetricRow {
  enum class Kind { counter, gauge, histogram };
  Kind kind = Kind::counter;
  std::string name;
  std::uint64_t count = 0;     ///< counter value / histogram count
  double value = 0.0;          ///< gauge level
  double peak = 0.0;           ///< gauge high watermark
  HistogramSummary hist;       ///< histogram summary
};

struct MetricsSnapshot {
  SimTime at = 0.0;
  std::vector<MetricRow> rows;  ///< sorted by name within each kind group

  /// One row per instrument:
  /// kind,name,count,value,peak,sum,min,max,p50,p95,p99
  std::string to_csv() const;

  /// Row for `name`, or nullptr.
  const MetricRow* find(std::string_view name) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Create-or-get. References remain valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name,
                       Histogram::Layout layout = Histogram::Layout{});

  /// Consistent copy of every instrument at time `at`.
  MetricsSnapshot snapshot(SimTime at = 0.0) const;

  /// Convenience: summary of a histogram (empty summary if absent) --
  /// read-only, does not create the instrument.
  HistogramSummary histogram_summary(std::string_view name) const;
  std::uint64_t counter_value(std::string_view name) const;

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  void reset();  ///< drop all instruments (between experiment repetitions)

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace memfss::obs
