#include "obs/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace memfss::obs {

Histogram::Histogram() : Histogram(Layout{}) {}

Histogram::Histogram(Layout layout)
    : layout_(layout),
      inv_log_growth_(1.0 / std::log(layout.growth)),
      counts_(layout.buckets, 0) {
  assert(layout.lo > 0.0 && layout.growth > 1.0 && layout.buckets >= 2);
}

std::size_t Histogram::bucket_index(double x) const {
  if (!(x > layout_.lo)) return 0;  // also catches NaN and negatives
  const double idx = std::log(x / layout_.lo) * inv_log_growth_;
  const auto i = static_cast<std::size_t>(idx) + 1;  // bucket 0 is (-inf, lo]
  return std::min(i, counts_.size() - 1);
}

void Histogram::add(double x) {
  ++counts_[bucket_index(x)];
  ++count_;
  sum_ += x;
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

void Histogram::merge(const Histogram& other) {
  assert(layout_ == other.layout_);
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::bucket_lo(std::size_t i) const {
  if (i == 0) return 0.0;
  return layout_.lo * std::pow(layout_.growth, static_cast<double>(i - 1));
}

double Histogram::bucket_hi(std::size_t i) const {
  return layout_.lo * std::pow(layout_.growth, static_cast<double>(i));
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank in [1, count]; find the bucket holding it.
  const double rank = q * static_cast<double>(count_ - 1) + 1.0;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double before = static_cast<double>(cum);
    cum += counts_[i];
    if (rank <= static_cast<double>(cum)) {
      const double frac =
          (rank - before) / static_cast<double>(counts_[i]);
      const double v = bucket_lo(i) + frac * (bucket_hi(i) - bucket_lo(i));
      return std::clamp(v, min_, max_);
    }
  }
  return max_;
}

HistogramSummary Histogram::summary() const {
  HistogramSummary s;
  s.count = count_;
  s.sum = sum_;
  s.min = min();
  s.max = max();
  s.p50 = quantile(0.50);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  return s;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

}  // namespace memfss::obs
