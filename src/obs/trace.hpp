// Structured event tracing against sim-time.
//
// The tracer records typed span ('X', with a duration) and instant ('i')
// events -- stripe writes, RPCs, repairs, evictions, faults -- tagged
// with the emitting component and node. Because the simulator is
// deterministic, two identically-seeded runs produce byte-identical
// event sequences, which makes traces usable as regression oracles
// (tests/test_golden_trace.cpp) and not just debugging aids.
//
// Recording is gated per component: a disabled component costs one bit
// test. The buffer is a ring capped at `capacity` events; when full, the
// oldest events are dropped (and counted), so a runaway scenario cannot
// eat unbounded memory.
//
// Exports:
//   chrome_json() -- Chrome trace_event array ("catapult") JSON; load it
//                    in chrome://tracing or https://ui.perfetto.dev.
//                    pid = component, tid = node.
//   text_dump()   -- one line per event, fixed formatting; the compact
//                    deterministic form golden-trace tests diff against.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace memfss::obs {

enum class Component : std::uint8_t {
  fs = 0,        ///< client striping / redundancy / repair paths
  kvstore = 1,   ///< per-node store servers
  net = 2,       ///< fabric flows
  cluster = 3,   ///< faults, evictions, recovery
  workflow = 4,  ///< task scheduling (reserved for engine instrumentation)
  kCount = 5,
};

std::string_view component_name(Component c);

struct TraceEvent {
  std::uint64_t seq = 0;  ///< global record order (stable tie-break)
  char phase = 'i';       ///< 'X' span, 'i' instant
  SimTime ts = 0.0;       ///< span begin / instant time (sim seconds)
  SimTime dur = 0.0;      ///< span length; 0 for instants
  Component comp = Component::fs;
  NodeId node = kInvalidNode;
  std::string name;    ///< event type, e.g. "write_stripe", "fault.crash"
  std::string detail;  ///< freeform "k=v ..." payload (deterministic)
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit Tracer(sim::Simulator& sim) : sim_(sim) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // --- per-component enable flags -----------------------------------------
  void enable(Component c, bool on = true);
  void enable_all(bool on = true);
  bool enabled(Component c) const {
    return (mask_ >> static_cast<unsigned>(c)) & 1u;
  }
  bool any_enabled() const { return mask_ != 0; }

  void set_capacity(std::size_t cap);
  std::size_t capacity() const { return capacity_; }

  // --- recording ----------------------------------------------------------
  /// Record a completed span that began at `begin` (sim-time) and ends
  /// now. Callers capture `sim.now()` before the operation and report
  /// after it -- the natural shape for coroutine hot paths.
  void span(Component c, NodeId node, std::string_view name, SimTime begin,
            std::string detail = {});

  /// Record a point event at the current sim-time.
  void instant(Component c, NodeId node, std::string_view name,
               std::string detail = {});

  // --- inspection / export -------------------------------------------------
  const std::deque<TraceEvent>& events() const { return events_; }
  std::uint64_t recorded() const { return next_seq_; }
  std::uint64_t dropped() const { return dropped_; }
  void clear();

  /// Chrome trace_event JSON (object form: {"traceEvents":[...]}).
  std::string chrome_json() const;

  /// Deterministic one-line-per-event dump for golden-file diffs.
  std::string text_dump() const;

 private:
  void push(TraceEvent ev);

  sim::Simulator& sim_;
  std::uint32_t mask_ = 0;  ///< all components disabled by default
  std::size_t capacity_ = kDefaultCapacity;
  std::deque<TraceEvent> events_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace memfss::obs
