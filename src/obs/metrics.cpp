#include "obs/metrics.hpp"

#include "common/str.hpp"
#include "common/table.hpp"

namespace memfss::obs {

namespace {

template <typename Map, typename Make>
decltype(auto) get_or_make(Map& map, std::string_view name, Make make) {
  if (auto it = map.find(name); it != map.end()) return (it->second);
  return (map.emplace(std::string(name), make()).first->second);
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  return get_or_make(counters_, name, [] { return Counter{}; });
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return get_or_make(gauges_, name, [] { return Gauge{}; });
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      Histogram::Layout layout) {
  return get_or_make(histograms_, name,
                     [&] { return Histogram(layout); });
}

MetricsSnapshot MetricsRegistry::snapshot(SimTime at) const {
  MetricsSnapshot snap;
  snap.at = at;
  snap.rows.reserve(size());
  for (const auto& [name, c] : counters_) {
    MetricRow r;
    r.kind = MetricRow::Kind::counter;
    r.name = name;
    r.count = c.value();
    snap.rows.push_back(std::move(r));
  }
  for (const auto& [name, g] : gauges_) {
    MetricRow r;
    r.kind = MetricRow::Kind::gauge;
    r.name = name;
    r.value = g.value();
    r.peak = g.peak();
    snap.rows.push_back(std::move(r));
  }
  for (const auto& [name, h] : histograms_) {
    MetricRow r;
    r.kind = MetricRow::Kind::histogram;
    r.name = name;
    r.count = h.count();
    r.hist = h.summary();
    snap.rows.push_back(std::move(r));
  }
  return snap;
}

HistogramSummary MetricsRegistry::histogram_summary(
    std::string_view name) const {
  if (auto it = histograms_.find(name); it != histograms_.end())
    return it->second.summary();
  return {};
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  if (auto it = counters_.find(name); it != counters_.end())
    return it->second.value();
  return 0;
}

void MetricsRegistry::reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

const MetricRow* MetricsSnapshot::find(std::string_view name) const {
  for (const auto& r : rows)
    if (r.name == name) return &r;
  return nullptr;
}

std::string MetricsSnapshot::to_csv() const {
  std::string out = "kind,name,count,value,peak,sum,min,max,p50,p95,p99\n";
  for (const auto& r : rows) {
    switch (r.kind) {
      case MetricRow::Kind::counter:
        out += "counter," + csv_escape(r.name) +
               strformat(",%llu,,,,,,,,\n",
                         static_cast<unsigned long long>(r.count));
        break;
      case MetricRow::Kind::gauge:
        out += "gauge," + csv_escape(r.name) +
               strformat(",,%.6g,%.6g,,,,,,\n", r.value, r.peak);
        break;
      case MetricRow::Kind::histogram:
        out += "histogram," + csv_escape(r.name) +
               strformat(",%llu,,,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g\n",
                         static_cast<unsigned long long>(r.count),
                         r.hist.sum, r.hist.min, r.hist.max, r.hist.p50,
                         r.hist.p95, r.hist.p99);
        break;
    }
  }
  return out;
}

}  // namespace memfss::obs
