// Log-scale latency histogram for the observability layer.
//
// Fixed geometric buckets (each `growth` times wider than the previous
// one) cover the whole latency range of the simulator -- microsecond RPC
// envelopes to hundreds of seconds of saturated bulk transfers -- with a
// bounded relative quantile error of `growth - 1`. Recording is a clamp,
// a log, and an array increment: cheap enough for per-stripe and
// per-request hot paths.
//
// Histograms with the same Layout form a commutative monoid under
// merge(): merging preserves the total count and sum exactly, which is
// what lets per-run registries be combined across repetitions (and what
// tests/test_obs_props.cpp locks down).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace memfss::obs {

/// Point summary of a histogram (what reports and CSV dumps carry).
struct HistogramSummary {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
};

class Histogram {
 public:
  struct Layout {
    double lo = 1e-7;       ///< upper bound of the first bucket (seconds)
    double growth = 1.1892; ///< bucket-width ratio (2^(1/4): 4 per octave)
    std::size_t buckets = 128;  ///< covers lo .. lo * growth^(buckets-1)

    bool operator==(const Layout& o) const {
      return lo == o.lo && growth == o.growth && buckets == o.buckets;
    }
  };

  Histogram();  ///< default Layout
  explicit Histogram(Layout layout);

  /// Record one observation. Values <= lo land in bucket 0; values past
  /// the top bound clamp to the last bucket (no observation is dropped).
  void add(double x);

  void merge(const Histogram& other);  ///< other.layout() must match

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Quantile estimate for q in [0, 1]: linear interpolation inside the
  /// owning bucket, clamped to the observed [min, max]. Monotone in q.
  double quantile(double q) const;

  HistogramSummary summary() const;

  const Layout& layout() const { return layout_; }
  const std::vector<std::uint64_t>& buckets() const { return counts_; }
  double bucket_lo(std::size_t i) const;  ///< lower bound of bucket i
  double bucket_hi(std::size_t i) const;  ///< upper bound of bucket i

  void reset();

 private:
  std::size_t bucket_index(double x) const;

  Layout layout_;
  double inv_log_growth_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace memfss::obs
