// Simulated cluster: a set of uniform nodes plus the network fabric.
//
// Node defaults mirror the paper's DAS-5 testbed: dual 8-core E5-2630v3
// (16 physical cores), 64 GB DRAM, FDR InfiniBand at ~3 GB/s IPoIB.
#pragma once

#include <memory>
#include <vector>

#include "common/types.hpp"
#include "net/fabric.hpp"
#include "obs/obs.hpp"
#include "sim/fluid.hpp"
#include "sim/memory.hpp"
#include "sim/simulator.hpp"

namespace memfss::cluster {

struct NodeSpec {
  double cores = 16.0;            ///< CPU capacity in core-seconds/s
  Bytes memory = 64 * units::GiB;
  Rate memory_bandwidth = 60e9;   ///< bytes/s (dual-socket DDR4-1866)
  net::NicSpec nic{};             ///< defaults to ~3 GB/s IPoIB
};

/// Per-node simulated resources. CPU and memory bandwidth are fluid
/// (max-min shared); memory capacity is accounted.
class Node {
 public:
  Node(sim::Simulator& sim, NodeId id, const NodeSpec& spec);

  NodeId id() const { return id_; }
  const NodeSpec& spec() const { return spec_; }
  sim::FluidResource& cpu() { return *cpu_; }
  sim::FluidResource& membw() { return *membw_; }
  sim::MemoryPool& memory() { return *mem_; }
  const sim::FluidResource& cpu() const { return *cpu_; }
  const sim::FluidResource& membw() const { return *membw_; }
  const sim::MemoryPool& memory() const { return *mem_; }

 private:
  NodeId id_;
  NodeSpec spec_;
  std::unique_ptr<sim::FluidResource> cpu_;
  std::unique_ptr<sim::FluidResource> membw_;
  std::unique_ptr<sim::MemoryPool> mem_;
};

class Cluster {
 public:
  Cluster(sim::Simulator& sim, std::size_t node_count,
          NodeSpec spec = NodeSpec{});

  sim::Simulator& sim() { return sim_; }
  net::Fabric& fabric() { return fabric_; }

  /// Deployment-wide metrics registry + event tracer. Every layer that
  /// holds a Cluster (or is handed the pointer, like fabric and servers)
  /// reports here.
  obs::Observability& obs() { return obs_; }
  const obs::Observability& obs() const { return obs_; }

  std::size_t node_count() const { return nodes_.size(); }
  Node& node(NodeId n) { return *nodes_[n]; }
  const Node& node(NodeId n) const { return *nodes_[n]; }

  /// All node ids, in order.
  std::vector<NodeId> all_nodes() const;

 private:
  sim::Simulator& sim_;
  obs::Observability obs_;  ///< before fabric_: fabric keeps a pointer
  net::Fabric fabric_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace memfss::cluster
