#include "cluster/cluster.hpp"

#include "common/str.hpp"

namespace memfss::cluster {

Node::Node(sim::Simulator& sim, NodeId id, const NodeSpec& spec)
    : id_(id),
      spec_(spec),
      cpu_(std::make_unique<sim::FluidResource>(
          sim, spec.cores, strformat("cpu[%u]", id))),
      membw_(std::make_unique<sim::FluidResource>(
          sim, spec.memory_bandwidth, strformat("membw[%u]", id))),
      mem_(std::make_unique<sim::MemoryPool>(spec.memory,
                                             strformat("mem[%u]", id))) {}

Cluster::Cluster(sim::Simulator& sim, std::size_t node_count, NodeSpec spec)
    : sim_(sim), obs_(sim), fabric_(sim, node_count, spec.nic) {
  fabric_.set_observability(&obs_);
  nodes_.reserve(node_count);
  for (std::size_t n = 0; n < node_count; ++n)
    nodes_.push_back(
        std::make_unique<Node>(sim, static_cast<NodeId>(n), spec));
}

std::vector<NodeId> Cluster::all_nodes() const {
  std::vector<NodeId> out(nodes_.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = static_cast<NodeId>(i);
  return out;
}

}  // namespace memfss::cluster
