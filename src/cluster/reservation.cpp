#include "cluster/reservation.hpp"

#include <algorithm>

#include "common/str.hpp"

namespace memfss::cluster {

ReservationSystem::ReservationSystem(sim::Simulator& sim,
                                     std::size_t node_count)
    : sim_(sim), in_use_(node_count, false), offers_(node_count) {}

std::size_t ReservationSystem::free_nodes() const {
  return static_cast<std::size_t>(
      std::count(in_use_.begin(), in_use_.end(), false));
}

Result<Reservation> ReservationSystem::reserve(std::string owner,
                                               std::size_t n) {
  if (n == 0) return Error{Errc::invalid_argument, "empty reservation"};
  if (n > free_nodes())
    return Error{Errc::unavailable,
                 strformat("%zu nodes requested, %zu free", n, free_nodes())};
  Reservation r;
  r.id = next_id_++;
  r.owner = std::move(owner);
  r.start = sim_.now();
  for (NodeId i = 0; i < in_use_.size() && r.nodes.size() < n; ++i) {
    if (!in_use_[i]) {
      in_use_[i] = true;
      r.nodes.push_back(i);
    }
  }
  return r;
}

double ReservationSystem::release(const Reservation& r) {
  for (NodeId n : r.nodes) {
    in_use_[n] = false;
    offers_[n].reset();  // offers die with the reservation
  }
  const double hours =
      static_cast<double>(r.nodes.size()) * (sim_.now() - r.start) / 3600.0;
  consumed_.emplace_back(r.owner, hours);
  return hours;
}

Status ReservationSystem::register_offer(const Reservation& r, NodeId node,
                                         Bytes memory_cap, Rate net_cap) {
  if (std::find(r.nodes.begin(), r.nodes.end(), node) == r.nodes.end())
    return {Errc::permission, "node not in this reservation"};
  if (offers_[node].has_value())
    return {Errc::already_exists, "offer already registered"};
  offers_[node] = ScavengeOffer{node, memory_cap, net_cap, r.owner};
  return {};
}

Status ReservationSystem::withdraw_offer(NodeId node) {
  if (node >= offers_.size() || !offers_[node].has_value())
    return {Errc::not_found, "no offer on node"};
  offers_[node].reset();
  return {};
}

std::vector<ScavengeOffer> ReservationSystem::offers() const {
  std::vector<ScavengeOffer> out;
  for (const auto& o : offers_)
    if (o.has_value()) out.push_back(*o);
  return out;
}

Result<ScavengeOffer> ReservationSystem::claim_offer(NodeId node) {
  if (node >= offers_.size() || !offers_[node].has_value())
    return Error{Errc::not_found, "no offer on node"};
  ScavengeOffer o = *offers_[node];
  offers_[node].reset();
  return o;
}

double ReservationSystem::consumed_node_hours(const std::string& owner) const {
  double total = 0.0;
  for (const auto& [o, h] : consumed_)
    if (o == owner) total += h;
  return total;
}

}  // namespace memfss::cluster
