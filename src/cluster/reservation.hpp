// Cluster reservation system with the paper's two-queue extension
// (§III-A): a primary queue hands out exclusive node reservations; a
// *secondary* queue lists nodes whose tenants registered spare memory for
// scavenging, each offer capped in bytes (and, per §III-F, in network
// bandwidth for the container running the scavenged store).
//
// Node-hour accounting lives here too: Table II's "resource consumption"
// column is reservation_size x wall time, which release() finalizes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace memfss::cluster {

struct ScavengeOffer {
  NodeId node = kInvalidNode;
  Bytes memory_cap = 0;           ///< max bytes the scavenger may store
  Rate net_cap = 0;               ///< container bandwidth ceiling (B/s)
  std::string tenant;             ///< owning reservation (diagnostics)
};

struct Reservation {
  std::uint64_t id = 0;
  std::string owner;
  std::vector<NodeId> nodes;
  SimTime start = 0;
};

class ReservationSystem {
 public:
  ReservationSystem(sim::Simulator& sim, std::size_t node_count);

  std::size_t free_nodes() const;

  /// Reserve `n` nodes exclusively. Fails when fewer are free
  /// (the paper's "unable to run, data does not fit" row comes from the
  /// feasibility check built on top of this).
  Result<Reservation> reserve(std::string owner, std::size_t n);

  /// Release a reservation; returns the node-hours consumed
  /// (nodes x wall-clock hours since reserve()).
  double release(const Reservation& r);

  // --- secondary (scavenging) queue ---------------------------------------

  /// A tenant voluntarily registers spare memory on one of its nodes.
  /// A node can carry at most one active offer.
  Status register_offer(const Reservation& r, NodeId node, Bytes memory_cap,
                        Rate net_cap);

  /// Withdraw an offer (tenant wants its memory back / job finished).
  Status withdraw_offer(NodeId node);

  /// Snapshot of currently available offers.
  std::vector<ScavengeOffer> offers() const;

  /// Claim an offer (a scavenger filesystem took it).
  Result<ScavengeOffer> claim_offer(NodeId node);

  /// Node-hours consumed by completed reservations of `owner`.
  double consumed_node_hours(const std::string& owner) const;

 private:
  sim::Simulator& sim_;
  std::vector<bool> in_use_;
  std::uint64_t next_id_ = 1;
  std::vector<std::optional<ScavengeOffer>> offers_;  // indexed by node
  std::vector<std::pair<std::string, double>> consumed_;
};

}  // namespace memfss::cluster
