// Fault injection: declarative, seed-deterministic failure schedules for
// the scavenging premise the paper rests on -- victim memory is *borrowed*
// and can vanish at any time (node crash, tenant reclaiming its machines,
// stragglers, degraded links).
//
// Layering: the injector lives in the cluster layer and does not know the
// filesystem. It owns the schedule, the event bus, and the one fault it
// can apply by itself (NIC degradation, via the fabric). Everything that
// involves a kvstore::Server -- crashing it, stalling it, draining it --
// is performed by subscribers (fs::FileSystem attaches its handlers with
// attach_fault_injector). Monitor-driven evictions are routed through the
// same bus so every "victim leaves" path shares one accounting point.
//
// Determinism: FaultPlan::random draws all arrival times from a caller-
// provided Rng up front; arming a plan schedules plain simulator events,
// so two runs with the same seed inject byte-identical fault sequences.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace memfss::cluster {

enum class FaultKind : std::uint8_t {
  crash_node,    ///< process dies, memory contents lost, never returns
  revoke_class,  ///< owner tenant reclaims every machine of a victim class
  stall_node,    ///< transient straggler: requests hang for `duration`
  degrade_nic,   ///< NIC up/down rates scaled by `factor` for `duration`
  partition,     ///< link(s) cut: node isolated, or node<->peer severed
  heal,          ///< cut link(s) restored
};

constexpr std::string_view fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::crash_node: return "crash";
    case FaultKind::revoke_class: return "revoke";
    case FaultKind::stall_node: return "stall";
    case FaultKind::degrade_nic: return "degrade-nic";
    case FaultKind::partition: return "partition";
    case FaultKind::heal: return "heal";
  }
  return "?";
}

struct FaultEvent {
  SimTime at = 0.0;
  FaultKind kind = FaultKind::crash_node;
  NodeId node = kInvalidNode;      ///< crash / stall / degrade / cut target
  std::uint32_t victim_class = 0;  ///< revoke_class target
  SimTime duration = 0.0;          ///< stall / degrade / partition length
  double factor = 1.0;             ///< degrade: rate multiplier in (0, 1]
  NodeId peer = kInvalidNode;      ///< partition/heal: other end of the
                                   ///< link; kInvalidNode = all links of
                                   ///< `node` (and heal with both ends
                                   ///< invalid = heal every cut)
  bool oneway = false;             ///< partition: cut node->peer only
};

/// A declarative fault schedule. Build it fluently, or derive one from a
/// seeded Rng with random(); the injector replays it against the cluster.
class FaultPlan {
 public:
  FaultPlan& crash(SimTime at, NodeId node);
  FaultPlan& revoke_class(SimTime at, std::uint32_t class_id);
  FaultPlan& stall(SimTime at, NodeId node, SimTime duration);
  FaultPlan& degrade_nic(SimTime at, NodeId node, double factor,
                         SimTime duration);
  /// Isolate `node` from every other node for `duration` (auto-heals).
  FaultPlan& partition(SimTime at, NodeId node, SimTime duration);
  /// Sever the node<->peer link for `duration` (auto-heals). With
  /// `oneway`, only node->peer drops: requests arrive, replies vanish.
  FaultPlan& cut_link(SimTime at, NodeId node, NodeId peer, SimTime duration,
                      bool oneway = false);
  /// Explicit heal: of node<->peer, of all of `node`'s links
  /// (peer == kInvalidNode), or of every cut (both invalid).
  FaultPlan& heal(SimTime at, NodeId node = kInvalidNode,
                  NodeId peer = kInvalidNode);
  /// Append every event of `other` to this plan.
  FaultPlan& append(const FaultPlan& other);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Events sorted by time (stable: insertion order breaks ties).
  std::vector<FaultEvent> sorted() const;

  struct RandomParams {
    SimTime horizon = 300.0;       ///< schedule faults in [0, horizon)
    double crash_rate = 0.0;       ///< expected crashes per node over horizon
    double stall_rate = 0.0;       ///< expected stalls per node over horizon
    SimTime stall_duration = 1.0;  ///< mean stall length (exponential)
    double degrade_rate = 0.0;     ///< expected NIC events per node
    double degrade_factor = 0.25;  ///< rate multiplier while degraded
    SimTime degrade_duration = 5.0;
    double partition_rate = 0.0;   ///< expected partitions per node
    SimTime partition_duration = 1.0;  ///< mean cut length (exponential)
    double partition_link_fraction = 0.5;  ///< P(single link vs isolation)
    double partition_oneway_fraction = 0.25;  ///< P(link cut is one-way)
  };

  /// Seed-deterministic random plan over `nodes`: per-node Poisson
  /// arrivals for each fault kind (at most one crash per node -- a crashed
  /// node stays dead). Same Rng state in => same plan out.
  static FaultPlan random(Rng& rng, const std::vector<NodeId>& nodes,
                          const RandomParams& params);

 private:
  std::vector<FaultEvent> events_;
};

struct FaultInjectorStats {
  std::size_t crashes = 0;
  std::size_t revocations = 0;        ///< classes revoked
  std::size_t stalls = 0;
  std::size_t nic_degradations = 0;
  std::size_t evictions = 0;          ///< monitor-driven reclaims routed through
  std::size_t partitions = 0;         ///< link cuts / isolations applied
  std::size_t heals = 0;              ///< cut restorations applied
};

class FaultInjector {
 public:
  FaultInjector(sim::Simulator& sim, Cluster& cluster);

  using NodeHook = std::function<void(NodeId)>;
  using StallHook = std::function<void(NodeId, SimTime)>;
  using ClassHook = std::function<void(std::uint32_t)>;
  using LinkHook = std::function<void(NodeId, NodeId)>;  ///< (node, peer)

  // --- subscriptions (multiple subscribers allowed) -----------------------
  void on_crash(NodeHook h) { crash_hooks_.push_back(std::move(h)); }
  void on_revoke(ClassHook h) { revoke_hooks_.push_back(std::move(h)); }
  void on_stall(StallHook h) { stall_hooks_.push_back(std::move(h)); }
  void on_evict(NodeHook h) { evict_hooks_.push_back(std::move(h)); }
  void on_partition(LinkHook h) { partition_hooks_.push_back(std::move(h)); }
  void on_heal(LinkHook h) { heal_hooks_.push_back(std::move(h)); }

  /// Schedule every event of `plan` on the simulator (relative to now).
  void arm(const FaultPlan& plan);

  // --- immediate injection (also used by scheduled events) ----------------
  void crash_now(NodeId node);
  void revoke_class_now(std::uint32_t class_id);
  void stall_now(NodeId node, SimTime duration);
  void degrade_nic_now(NodeId node, double factor, SimTime duration);
  /// Cut links now: node<->peer, or all of `node`'s links when peer is
  /// kInvalidNode. duration > 0 schedules the matching heal.
  void partition_now(NodeId node, NodeId peer, SimTime duration,
                     bool oneway = false);
  /// Restore links now: node<->peer, all of `node`'s (peer invalid), or
  /// every cut in the fabric (both invalid).
  void heal_now(NodeId node = kInvalidNode, NodeId peer = kInvalidNode,
                bool oneway = false);

  /// Route a monitor-driven eviction (tenant wants its memory back)
  /// through the fault bus so subscribers and stats see it.
  void evict_now(NodeId node);

  const FaultInjectorStats& stats() const { return stats_; }
  const std::vector<FaultEvent>& injected() const { return injected_; }

 private:
  void fire(const FaultEvent& ev);
  /// Count the fault in the metrics registry and (when cluster tracing is
  /// on) drop an instant event on the timeline.
  void observe(const char* name, NodeId node, const std::string& detail);

  sim::Simulator& sim_;
  Cluster& cluster_;
  FaultInjectorStats stats_;
  std::vector<FaultEvent> injected_;  ///< log, in injection order
  std::vector<NodeHook> crash_hooks_, evict_hooks_;
  std::vector<StallHook> stall_hooks_;
  std::vector<ClassHook> revoke_hooks_;
  std::vector<LinkHook> partition_hooks_, heal_hooks_;
};

}  // namespace memfss::cluster
