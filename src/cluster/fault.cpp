#include "cluster/fault.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "common/str.hpp"

namespace memfss::cluster {

FaultPlan& FaultPlan::crash(SimTime at, NodeId node) {
  events_.push_back({at, FaultKind::crash_node, node, 0, 0.0, 1.0});
  return *this;
}

FaultPlan& FaultPlan::revoke_class(SimTime at, std::uint32_t class_id) {
  events_.push_back(
      {at, FaultKind::revoke_class, kInvalidNode, class_id, 0.0, 1.0});
  return *this;
}

FaultPlan& FaultPlan::stall(SimTime at, NodeId node, SimTime duration) {
  events_.push_back({at, FaultKind::stall_node, node, 0, duration, 1.0});
  return *this;
}

FaultPlan& FaultPlan::degrade_nic(SimTime at, NodeId node, double factor,
                                  SimTime duration) {
  events_.push_back(
      {at, FaultKind::degrade_nic, node, 0, duration, factor});
  return *this;
}

std::vector<FaultEvent> FaultPlan::sorted() const {
  std::vector<FaultEvent> out = events_;
  std::stable_sort(out.begin(), out.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return out;
}

FaultPlan FaultPlan::random(Rng& rng, const std::vector<NodeId>& nodes,
                            const RandomParams& p) {
  FaultPlan plan;
  // Per-node, per-kind Poisson arrivals. Iterating nodes then kinds in a
  // fixed order keeps the draw sequence (hence the plan) a pure function
  // of the Rng state.
  for (NodeId n : nodes) {
    if (p.crash_rate > 0 && rng.chance(1.0 - std::exp(-p.crash_rate))) {
      plan.crash(rng.uniform(0.0, p.horizon), n);
    }
    if (p.stall_rate > 0) {
      const double mean_gap = p.horizon / p.stall_rate;
      for (SimTime t = rng.exponential(mean_gap); t < p.horizon;
           t += rng.exponential(mean_gap)) {
        plan.stall(t, n, rng.exponential(p.stall_duration));
      }
    }
    if (p.degrade_rate > 0) {
      const double mean_gap = p.horizon / p.degrade_rate;
      for (SimTime t = rng.exponential(mean_gap); t < p.horizon;
           t += rng.exponential(mean_gap)) {
        plan.degrade_nic(t, n, p.degrade_factor, p.degrade_duration);
      }
    }
  }
  return plan;
}

FaultInjector::FaultInjector(sim::Simulator& sim, Cluster& cluster)
    : sim_(sim), cluster_(cluster) {}

void FaultInjector::observe(const char* name, NodeId node,
                            const std::string& detail) {
  auto& obs = cluster_.obs();
  obs.metrics.counter(name).inc();
  if (obs.tracer.enabled(obs::Component::cluster))
    obs.tracer.instant(obs::Component::cluster, node, name, detail);
}

void FaultInjector::arm(const FaultPlan& plan) {
  for (const FaultEvent& ev : plan.sorted()) {
    sim_.schedule(ev.at, [this, ev] { fire(ev); });
  }
}

void FaultInjector::fire(const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultKind::crash_node:
      crash_now(ev.node);
      break;
    case FaultKind::revoke_class:
      revoke_class_now(ev.victim_class);
      break;
    case FaultKind::stall_node:
      stall_now(ev.node, ev.duration);
      break;
    case FaultKind::degrade_nic:
      degrade_nic_now(ev.node, ev.factor, ev.duration);
      break;
  }
}

void FaultInjector::crash_now(NodeId node) {
  ++stats_.crashes;
  injected_.push_back({sim_.now(), FaultKind::crash_node, node, 0, 0.0, 1.0});
  observe("fault.crash", node, "");
  LOG_INFO("fault") << "crash: node " << node;
  for (const auto& h : crash_hooks_) h(node);
}

void FaultInjector::revoke_class_now(std::uint32_t class_id) {
  ++stats_.revocations;
  injected_.push_back(
      {sim_.now(), FaultKind::revoke_class, kInvalidNode, class_id, 0.0, 1.0});
  observe("fault.revoke", kInvalidNode, strformat("class=%u", class_id));
  LOG_INFO("fault") << "revoke: victim class " << class_id;
  for (const auto& h : revoke_hooks_) h(class_id);
}

void FaultInjector::stall_now(NodeId node, SimTime duration) {
  ++stats_.stalls;
  injected_.push_back(
      {sim_.now(), FaultKind::stall_node, node, 0, duration, 1.0});
  observe("fault.stall", node, strformat("dur=%.6f", duration));
  LOG_INFO("fault") << "stall: node " << node << " for " << duration << "s";
  for (const auto& h : stall_hooks_) h(node, duration);
}

void FaultInjector::degrade_nic_now(NodeId node, double factor,
                                    SimTime duration) {
  if (node >= cluster_.node_count() || factor <= 0.0) return;
  ++stats_.nic_degradations;
  injected_.push_back(
      {sim_.now(), FaultKind::degrade_nic, node, 0, duration, factor});
  observe("fault.degrade_nic", node, strformat("x%.3f", factor));
  net::Fabric& fabric = cluster_.fabric();
  const net::NicSpec original = fabric.nic(node);
  net::NicSpec degraded = original;
  degraded.up = original.up * factor;
  degraded.down = original.down * factor;
  fabric.set_nic(node, degraded);
  LOG_INFO("fault") << "degrade-nic: node " << node << " x" << factor
                    << " for " << duration << "s";
  // Restore by scaling back up rather than reinstating `original`, so
  // overlapping degradations compose instead of clobbering each other.
  sim_.schedule(duration, [this, node, factor] {
    net::Fabric& f = cluster_.fabric();
    net::NicSpec spec = f.nic(node);
    spec.up /= factor;
    spec.down /= factor;
    f.set_nic(node, spec);
  });
}

void FaultInjector::evict_now(NodeId node) {
  ++stats_.evictions;
  injected_.push_back({sim_.now(), FaultKind::revoke_class, node, 0, 0.0, 1.0});
  observe("fault.evict", node, "");
  LOG_INFO("fault") << "evict: node " << node << " (monitor reclaim)";
  for (const auto& h : evict_hooks_) h(node);
}

}  // namespace memfss::cluster
