#include "cluster/fault.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "common/str.hpp"

namespace memfss::cluster {

FaultPlan& FaultPlan::crash(SimTime at, NodeId node) {
  events_.push_back({at, FaultKind::crash_node, node, 0, 0.0, 1.0});
  return *this;
}

FaultPlan& FaultPlan::revoke_class(SimTime at, std::uint32_t class_id) {
  events_.push_back(
      {at, FaultKind::revoke_class, kInvalidNode, class_id, 0.0, 1.0});
  return *this;
}

FaultPlan& FaultPlan::stall(SimTime at, NodeId node, SimTime duration) {
  events_.push_back({at, FaultKind::stall_node, node, 0, duration, 1.0});
  return *this;
}

FaultPlan& FaultPlan::degrade_nic(SimTime at, NodeId node, double factor,
                                  SimTime duration) {
  events_.push_back(
      {at, FaultKind::degrade_nic, node, 0, duration, factor});
  return *this;
}

FaultPlan& FaultPlan::partition(SimTime at, NodeId node, SimTime duration) {
  events_.push_back(
      {at, FaultKind::partition, node, 0, duration, 1.0, kInvalidNode, false});
  return *this;
}

FaultPlan& FaultPlan::cut_link(SimTime at, NodeId node, NodeId peer,
                               SimTime duration, bool oneway) {
  events_.push_back(
      {at, FaultKind::partition, node, 0, duration, 1.0, peer, oneway});
  return *this;
}

FaultPlan& FaultPlan::heal(SimTime at, NodeId node, NodeId peer) {
  events_.push_back({at, FaultKind::heal, node, 0, 0.0, 1.0, peer, false});
  return *this;
}

FaultPlan& FaultPlan::append(const FaultPlan& other) {
  events_.insert(events_.end(), other.events_.begin(), other.events_.end());
  return *this;
}

std::vector<FaultEvent> FaultPlan::sorted() const {
  std::vector<FaultEvent> out = events_;
  std::stable_sort(out.begin(), out.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return out;
}

FaultPlan FaultPlan::random(Rng& rng, const std::vector<NodeId>& nodes,
                            const RandomParams& p) {
  FaultPlan plan;
  // Per-node, per-kind Poisson arrivals. Iterating nodes then kinds in a
  // fixed order keeps the draw sequence (hence the plan) a pure function
  // of the Rng state.
  for (NodeId n : nodes) {
    if (p.crash_rate > 0 && rng.chance(1.0 - std::exp(-p.crash_rate))) {
      plan.crash(rng.uniform(0.0, p.horizon), n);
    }
    if (p.stall_rate > 0) {
      const double mean_gap = p.horizon / p.stall_rate;
      for (SimTime t = rng.exponential(mean_gap); t < p.horizon;
           t += rng.exponential(mean_gap)) {
        plan.stall(t, n, rng.exponential(p.stall_duration));
      }
    }
    if (p.degrade_rate > 0) {
      const double mean_gap = p.horizon / p.degrade_rate;
      for (SimTime t = rng.exponential(mean_gap); t < p.horizon;
           t += rng.exponential(mean_gap)) {
        plan.degrade_nic(t, n, p.degrade_factor, p.degrade_duration);
      }
    }
    if (p.partition_rate > 0) {
      const double mean_gap = p.horizon / p.partition_rate;
      for (SimTime t = rng.exponential(mean_gap); t < p.horizon;
           t += rng.exponential(mean_gap)) {
        const SimTime dur = rng.exponential(p.partition_duration);
        if (nodes.size() > 1 && rng.chance(p.partition_link_fraction)) {
          // Single-link cut against a random distinct peer.
          NodeId peer = n;
          while (peer == n)
            peer = nodes[static_cast<std::size_t>(
                rng.uniform_u64(0, nodes.size() - 1))];
          plan.cut_link(t, n, peer, dur,
                        rng.chance(p.partition_oneway_fraction));
        } else {
          plan.partition(t, n, dur);
        }
      }
    }
  }
  return plan;
}

FaultInjector::FaultInjector(sim::Simulator& sim, Cluster& cluster)
    : sim_(sim), cluster_(cluster) {}

void FaultInjector::observe(const char* name, NodeId node,
                            const std::string& detail) {
  auto& obs = cluster_.obs();
  obs.metrics.counter(name).inc();
  if (obs.tracer.enabled(obs::Component::cluster))
    obs.tracer.instant(obs::Component::cluster, node, name, detail);
}

void FaultInjector::arm(const FaultPlan& plan) {
  for (const FaultEvent& ev : plan.sorted()) {
    sim_.schedule(ev.at, [this, ev] { fire(ev); });
  }
}

void FaultInjector::fire(const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultKind::crash_node:
      crash_now(ev.node);
      break;
    case FaultKind::revoke_class:
      revoke_class_now(ev.victim_class);
      break;
    case FaultKind::stall_node:
      stall_now(ev.node, ev.duration);
      break;
    case FaultKind::degrade_nic:
      degrade_nic_now(ev.node, ev.factor, ev.duration);
      break;
    case FaultKind::partition:
      partition_now(ev.node, ev.peer, ev.duration, ev.oneway);
      break;
    case FaultKind::heal:
      heal_now(ev.node, ev.peer, ev.oneway);
      break;
  }
}

void FaultInjector::crash_now(NodeId node) {
  ++stats_.crashes;
  injected_.push_back({sim_.now(), FaultKind::crash_node, node, 0, 0.0, 1.0});
  observe("fault.crash", node, "");
  LOG_INFO("fault") << "crash: node " << node;
  for (const auto& h : crash_hooks_) h(node);
}

void FaultInjector::revoke_class_now(std::uint32_t class_id) {
  ++stats_.revocations;
  injected_.push_back(
      {sim_.now(), FaultKind::revoke_class, kInvalidNode, class_id, 0.0, 1.0});
  observe("fault.revoke", kInvalidNode, strformat("class=%u", class_id));
  LOG_INFO("fault") << "revoke: victim class " << class_id;
  for (const auto& h : revoke_hooks_) h(class_id);
}

void FaultInjector::stall_now(NodeId node, SimTime duration) {
  ++stats_.stalls;
  injected_.push_back(
      {sim_.now(), FaultKind::stall_node, node, 0, duration, 1.0});
  observe("fault.stall", node, strformat("dur=%.6f", duration));
  LOG_INFO("fault") << "stall: node " << node << " for " << duration << "s";
  for (const auto& h : stall_hooks_) h(node, duration);
}

void FaultInjector::degrade_nic_now(NodeId node, double factor,
                                    SimTime duration) {
  if (node >= cluster_.node_count() || factor <= 0.0) return;
  ++stats_.nic_degradations;
  injected_.push_back(
      {sim_.now(), FaultKind::degrade_nic, node, 0, duration, factor});
  observe("fault.degrade_nic", node, strformat("x%.3f", factor));
  net::Fabric& fabric = cluster_.fabric();
  const net::NicSpec original = fabric.nic(node);
  net::NicSpec degraded = original;
  degraded.up = original.up * factor;
  degraded.down = original.down * factor;
  fabric.set_nic(node, degraded);
  LOG_INFO("fault") << "degrade-nic: node " << node << " x" << factor
                    << " for " << duration << "s";
  // Restore by scaling back up rather than reinstating `original`, so
  // overlapping degradations compose instead of clobbering each other.
  sim_.schedule(duration, [this, node, factor] {
    net::Fabric& f = cluster_.fabric();
    net::NicSpec spec = f.nic(node);
    spec.up /= factor;
    spec.down /= factor;
    f.set_nic(node, spec);
  });
}

void FaultInjector::partition_now(NodeId node, NodeId peer, SimTime duration,
                                  bool oneway) {
  if (node >= cluster_.node_count()) return;
  if (peer != kInvalidNode && (peer >= cluster_.node_count() || peer == node))
    return;
  ++stats_.partitions;
  injected_.push_back(
      {sim_.now(), FaultKind::partition, node, 0, duration, 1.0, peer, oneway});
  net::Fabric& fabric = cluster_.fabric();
  if (peer == kInvalidNode) {
    observe("fault.partition", node, "isolate");
    LOG_INFO("fault") << "partition: node " << node << " isolated for "
                      << duration << "s";
    fabric.isolate(node);
  } else {
    observe("fault.partition", node,
            strformat("peer=%u%s", peer, oneway ? " oneway" : ""));
    LOG_INFO("fault") << "partition: link " << node
                      << (oneway ? " -> " : " <-> ") << peer << " for "
                      << duration << "s";
    fabric.cut_link(node, peer, oneway);
  }
  for (const auto& h : partition_hooks_) h(node, peer);
  // Cuts are a set: an overlapping later cut of the same link is healed
  // by whichever heal fires first (documented in net::Fabric).
  if (duration > 0.0)
    sim_.schedule(duration,
                  [this, node, peer, oneway] { heal_now(node, peer, oneway); });
}

void FaultInjector::heal_now(NodeId node, NodeId peer, bool oneway) {
  ++stats_.heals;
  injected_.push_back(
      {sim_.now(), FaultKind::heal, node, 0, 0.0, 1.0, peer, oneway});
  net::Fabric& fabric = cluster_.fabric();
  if (node == kInvalidNode) {
    observe("fault.heal", kInvalidNode, "all");
    LOG_INFO("fault") << "heal: all links";
    fabric.heal_all();
  } else if (peer == kInvalidNode) {
    observe("fault.heal", node, "node");
    LOG_INFO("fault") << "heal: node " << node;
    fabric.heal_node(node);
  } else {
    observe("fault.heal", node, strformat("peer=%u", peer));
    LOG_INFO("fault") << "heal: link " << node << " <-> " << peer;
    fabric.heal_link(node, peer, oneway);
  }
  for (const auto& h : heal_hooks_) h(node, peer);
}

void FaultInjector::evict_now(NodeId node) {
  ++stats_.evictions;
  injected_.push_back({sim_.now(), FaultKind::revoke_class, node, 0, 0.0, 1.0});
  observe("fault.evict", node, "");
  LOG_INFO("fault") << "evict: node " << node << " (monitor reclaim)";
  for (const auto& h : evict_hooks_) h(node);
}

}  // namespace memfss::cluster
