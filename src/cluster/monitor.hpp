// Victim-node monitor (paper §III-A, second victim-selection mechanism):
// "whenever the tenant applications would need more memory, a monitoring
// process would send a signal to MemFSS to free its memory and remove
// itself from that node."
//
// The monitor watches the node's MemoryPool; when tenant allocations push
// utilization past the threshold it fires the eviction handler once per
// upward crossing: the pool re-arms the pressure callback when usage
// recedes below the threshold, so a recede-and-return cycle fires again.
// The filesystem wires the handler to its victim-evacuation protocol.
#pragma once

#include <cstddef>
#include <functional>

#include "common/types.hpp"
#include "sim/memory.hpp"
#include "sim/simulator.hpp"

namespace memfss::cluster {

class VictimMonitor {
 public:
  /// Fires `on_evict` when `pool` usage reaches `threshold_fraction` of
  /// capacity. The handler runs inside the allocation that crossed the
  /// threshold; heavy work should be spawned onto the simulator.
  VictimMonitor(sim::Simulator& sim, sim::MemoryPool& pool, NodeId node,
                double threshold_fraction, std::function<void(NodeId)> on_evict);

  /// Manual trigger (tests / operator-initiated reclaim).
  void demand_memory();

  NodeId node() const { return node_; }
  /// Whether the monitor has fired at least once.
  bool fired() const { return fire_count_ > 0; }
  /// Number of pressure crossings that fired the handler. The MemoryPool
  /// callback re-arms when usage recedes below the threshold, so this
  /// grows by one per crossing -- the monitor is *not* one-shot.
  std::size_t fire_count() const { return fire_count_; }

 private:
  sim::Simulator& sim_;
  NodeId node_;
  std::function<void(NodeId)> on_evict_;
  std::size_t fire_count_ = 0;
};

}  // namespace memfss::cluster
