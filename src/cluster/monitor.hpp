// Victim-node monitor (paper §III-A, second victim-selection mechanism):
// "whenever the tenant applications would need more memory, a monitoring
// process would send a signal to MemFSS to free its memory and remove
// itself from that node."
//
// The monitor watches the node's MemoryPool; when tenant allocations push
// utilization past the threshold it fires the eviction handler exactly
// once (re-arming if pressure recedes and returns). The filesystem wires
// the handler to its victim-evacuation protocol.
#pragma once

#include <functional>

#include "common/types.hpp"
#include "sim/memory.hpp"
#include "sim/simulator.hpp"

namespace memfss::cluster {

class VictimMonitor {
 public:
  /// Fires `on_evict` when `pool` usage reaches `threshold_fraction` of
  /// capacity. The handler runs inside the allocation that crossed the
  /// threshold; heavy work should be spawned onto the simulator.
  VictimMonitor(sim::Simulator& sim, sim::MemoryPool& pool, NodeId node,
                double threshold_fraction, std::function<void(NodeId)> on_evict);

  /// Manual trigger (tests / operator-initiated reclaim).
  void demand_memory();

  NodeId node() const { return node_; }
  bool fired() const { return fired_; }

 private:
  sim::Simulator& sim_;
  NodeId node_;
  std::function<void(NodeId)> on_evict_;
  bool fired_ = false;
};

}  // namespace memfss::cluster
