#include "cluster/monitor.hpp"

#include <cmath>

namespace memfss::cluster {

VictimMonitor::VictimMonitor(sim::Simulator& sim, sim::MemoryPool& pool,
                             NodeId node, double threshold_fraction,
                             std::function<void(NodeId)> on_evict)
    : sim_(sim), node_(node), on_evict_(std::move(on_evict)) {
  const auto threshold = static_cast<Bytes>(
      std::llround(threshold_fraction * static_cast<double>(pool.capacity())));
  pool.set_pressure_callback(threshold, [this] { demand_memory(); });
}

void VictimMonitor::demand_memory() {
  ++fire_count_;
  if (on_evict_) {
    // Defer to the event queue so the handler never re-enters the
    // allocation path that tripped the pressure callback.
    sim_.schedule(0.0, [this] { on_evict_(node_); });
  }
}

}  // namespace memfss::cluster
