#include "tenant/app.hpp"

namespace memfss::tenant {

double TenantApp::declared_base_seconds() const {
  double total = 0.0;
  for (const auto& p : phases)
    total += p.sensitive.base_seconds + p.cache_bound_seconds;
  return total * iterations;
}

}  // namespace memfss::tenant
